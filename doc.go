// Package waran is the root of the WA-RAN reproduction: a WebAssembly-based
// 5G O-RAN integration framework (HotNets '24) built entirely on the Go
// standard library.
//
// The implementation lives under internal/: a from-scratch Wasm runtime
// (internal/wasm) and WAT compiler (internal/wat), the plugin ABI
// (internal/wabi), the RAN substrate (internal/ran), the two-level slice
// scheduler (internal/sched, internal/slicing), the E2-lite interface
// (internal/e2), the near-RT RIC (internal/ric), and the experiment harness
// (internal/core). Executables are under cmd/, runnable scenarios under
// examples/, and bench_test.go regenerates every figure of the paper's
// evaluation.
package waran

GO ?= go

.PHONY: build test check check-e2 bench fuzz

## build: compile every package.
build:
	$(GO) build ./...

## test: the tier-1 gate — what CI and the roadmap treat as "green".
test: build
	$(GO) test ./...

## check: the deeper tier — vet, the full suite under the race detector,
## the association-resilience suite, and a 10 s fuzz smoke of the wasm
## decode/compile/execute gauntlet.
check: build check-e2
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -run '^FuzzDecode$$' -fuzz '^FuzzDecode$$' -fuzztime 10s ./internal/wasm

## check-e2: race-enabled association-resilience suite (E2 transport,
## fault-injecting conn, RIC/agent sessions, faulty-link e2e recovery).
check-e2:
	$(GO) test -race -count=1 ./internal/e2 ./internal/ric

## bench: the paper's evaluation benchmarks.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

## fuzz: open-ended fuzzing of the plugin upload path (Ctrl-C to stop).
fuzz:
	$(GO) test -run '^FuzzDecode$$' -fuzz '^FuzzDecode$$' ./internal/wasm

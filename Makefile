GO ?= go

.PHONY: build test check check-e2 check-obs check-guard check-trace check-abi check-tier check-scale check-overload check-flight lint-metrics bench fuzz

## build: compile every package.
build:
	$(GO) build ./...

## test: the tier-1 gate — what CI and the roadmap treat as "green".
test: build
	$(GO) test ./...

## check: the deeper tier — vet, the full suite under the race detector,
## the association-resilience suite, and a 10 s fuzz smoke of the wasm
## decode/compile/execute gauntlet.
check: build check-e2 check-obs check-guard check-trace check-abi check-tier check-scale check-overload check-flight lint-metrics
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -run '^FuzzDecode$$' -fuzz '^FuzzDecode$$' -fuzztime 10s ./internal/wasm

## check-e2: race-enabled association-resilience suite (E2 transport,
## fault-injecting conn, RIC/agent sessions, faulty-link e2e recovery).
check-e2:
	$(GO) test -race -count=1 ./internal/e2 ./internal/ric

## check-obs: observability-layer gate — vet plus race-enabled tests over
## the registry, its instrument sources, and the HTTP exposition e2e
## (cmd/gnb scrapes its own /metrics and /debug/slots).
check-obs:
	$(GO) vet ./internal/obs ./internal/metrics
	$(GO) test -race -count=1 ./internal/obs ./internal/metrics ./internal/core ./internal/wabi ./cmd/gnb

## check-guard: plugin-lifecycle-supervisor gate — race-enabled tests over
## the breaker/supervisor, the wabi failure taxonomy and chaos harness, and
## the hardened scheduler ABI decode, plus a 10 s fuzz smoke of the
## failure-classification invariant (every plugin failure maps to exactly
## one stable class).
check-guard:
	$(GO) test -race -count=1 ./internal/guard ./internal/wabi ./internal/sched
	$(GO) test -run '^FuzzClassify$$' -fuzz '^FuzzClassify$$' -fuzztime 10s ./internal/wabi

## check-trace: control-loop tracing gate — race-enabled tests over the
## span tracer, the trace-aware HTTP surface, and the wasm fuel profiler,
## plus a 10 s fuzz smoke of the E2 trace-trailer compatibility contract
## (untraced frames stay byte-identical; traced frames round-trip).
check-trace:
	$(GO) test -race -count=1 ./internal/obs/trace ./internal/obs ./internal/wasm ./internal/e2
	$(GO) test -run '^FuzzMessageHeaderRoundTrip$$' -fuzz '^FuzzMessageHeaderRoundTrip$$' -fuzztime 10s ./internal/e2

## check-abi: zero-copy plugin ABI gate — race-enabled differential suites
## (region negotiation/lifecycle in wabi, delta writer + response reader in
## sched, codec-vs-zerocopy bit-identity over real guests in plugins), plus
## a 10 s fuzz smoke of the request/response byte-equivalence contract
## between the zero-copy regions and the serializing binary codec.
check-abi:
	$(GO) test -race -count=1 -run 'ZeroCopy|ZC|Region|Differential|ABI' ./internal/wabi ./internal/sched ./internal/plugins
	$(GO) test -run '^FuzzABIDifferential$$' -fuzz '^FuzzABIDifferential$$' -fuzztime 10s ./internal/sched

## check-tier: tiered-execution gate — race-enabled tier suites (wasm tier
## equivalence / fuel sweep / deadline back-edge polling, wabi promotion
## policy, sched/core per-tier call accounting, interp-vs-fused-vs-closure
## differential over the real scheduler guests), plus a 10 s fuzz smoke of
## the cross-tier bit-identity contract (results, trap classes, fuel).
check-tier:
	$(GO) test -race -count=1 -run 'Tier|MemoryGrowOverflow|Deadline' ./internal/wasm ./internal/wabi ./internal/sched ./internal/core ./internal/plugins
	$(GO) test -run '^FuzzTierDifferential$$' -fuzz '^FuzzTierDifferential$$' -fuzztime 10s ./internal/plugins

## check-scale: city-scale gate — race-enabled sharded-association and
## windowed-batching suites (batch framing + capability negotiation in e2,
## batched-vs-unbatched bit-identity at the xApp boundary + shard fan-in in
## ric, the UE fleet aggregate in ran, the sharded fleet driver in core),
## plus a 10 s fuzz smoke of the batch frame round-trip across codecs.
check-scale:
	$(GO) test -race -count=1 -run 'Batch|Shard|Fleet|Capability' ./internal/e2 ./internal/ric ./internal/ran ./internal/core
	$(GO) test -run '^FuzzIndicationBatchRoundTrip$$' -fuzz '^FuzzIndicationBatchRoundTrip$$' -fuzztime 10s ./internal/e2

## check-overload: overload-control gate — race-enabled admission / busy-frame
## / brownout / shed-ledger / shard-spill / reconnect-jitter suites across the
## E2 frame layer and the RIC (the small-scale chaos experiment included),
## plus a 10 s fuzz smoke of the TypeBusy round-trip across all three codecs.
check-overload:
	$(GO) test -race -count=1 -run 'Overload|Busy|Brownout|Shed|Spill|Jitter|Renegotiation|SlowXApp|Admit' ./internal/e2 ./internal/ric
	$(GO) test -run '^FuzzBusyRoundTrip$$' -fuzz '^FuzzBusyRoundTrip$$' -fuzztime 10s ./internal/e2

## check-flight: flight-recorder gate — race-enabled journal / detector /
## bundle suites plus every plane's journaling wiring (slot watchdog in
## core, supervisor lifecycle in guard, association lifecycle in e2, the
## overload sites and the flightrec causal-chain experiment in ric), plus a
## 10 s fuzz smoke of the journal's binary event codec round-trip.
check-flight:
	$(GO) test -race -count=1 ./internal/obs/flight
	$(GO) test -race -count=1 -run 'Flight|Journal|Detector|Bundle|Summarize|TransitionHook|SnapshotSince|SnapshotHeader' ./internal/core ./internal/guard ./internal/e2 ./internal/ric ./internal/obs ./internal/obs/trace
	$(GO) test -run '^FuzzEventCodec$$' -fuzz '^FuzzEventCodec$$' -fuzztime 10s ./internal/obs/flight

## lint-metrics: telemetry must go through internal/obs — fail on raw
## atomic.Uint64 counter fields outside internal/obs and internal/metrics.
## Deliberate non-metric uses carry a "metric-exempt:" comment.
lint-metrics:
	@bad=$$(grep -rn --include='*.go' 'atomic\.Uint64' internal cmd examples \
		| grep -v '^internal/obs/' | grep -v '^internal/metrics/' | grep -v 'metric-exempt' || true); \
	if [ -n "$$bad" ]; then \
		echo "lint-metrics: raw atomic.Uint64 counters outside internal/obs|internal/metrics"; \
		echo "(register an obs.Counter instead, or annotate the line with 'metric-exempt: <why>'):"; \
		echo "$$bad"; \
		exit 1; \
	fi; \
	bad=$$(grep -rn --include='*.go' 'Tier[A-Za-z]*Calls  *uint64\|TierPromotions  *uint64' internal cmd examples 2>/dev/null \
		| grep -v 'metric-exempt' | cut -d: -f1 | sort -u \
		| while read -r f; do \
			grep -qr --include='*.go' '_tier_[a-z_]*_total' "$$(dirname $$f)" || echo "$$f"; \
		done); \
	if [ -n "$$bad" ]; then \
		echo "lint-metrics: tier counters must be exposed through internal/obs"; \
		echo "(packages declaring Tier*Calls/TierPromotions fields must register matching _tier_*_total samples):"; \
		echo "$$bad"; \
		exit 1; \
	fi; \
	bad=$$(grep -rn --include='*.go' 'Shed[A-Za-z]*  *uint64\|BrownoutTransitions  *uint64' internal cmd examples 2>/dev/null \
		| grep -v 'metric-exempt' | cut -d: -f1 | sort -u \
		| while read -r f; do \
			grep -qr --include='*.go' '_shed_[a-z_]*_total' "$$(dirname $$f)" || echo "$$f"; \
		done); \
	if [ -n "$$bad" ]; then \
		echo "lint-metrics: shed/brownout counters must be exposed through internal/obs"; \
		echo "(packages declaring Shed*/BrownoutTransitions fields must register matching _shed_*_total samples):"; \
		echo "$$bad"; \
		exit 1; \
	fi; \
	bad=$$(grep -rn --include='*.go' 'waran_flight_' internal cmd examples \
		| grep -v '^internal/obs/flight/' | grep -v '_test\.go:' || true); \
	if [ -n "$$bad" ]; then \
		echo "lint-metrics: waran_flight_* series must originate in internal/obs/flight"; \
		echo "(journal through a flight.Recorder and let its Register expose the counts):"; \
		echo "$$bad"; \
		exit 1; \
	fi; \
	bad=$$(grep -rn --include='*.go' 'Span[A-Za-z]* = "' internal cmd examples \
		| grep -v '^internal/obs/trace/spans\.go:' || true); \
	if [ -n "$$bad" ]; then \
		echo "lint-metrics: span name constants must live in internal/obs/trace/spans.go"; \
		echo "(add the hop there and to its SpanNames table so HopStats and the lint see it):"; \
		echo "$$bad"; \
		exit 1; \
	fi; \
	echo "lint-metrics: ok"

## bench: the paper's evaluation benchmarks.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

## fuzz: open-ended fuzzing of the plugin upload path (Ctrl-C to stop).
fuzz:
	$(GO) test -run '^FuzzDecode$$' -fuzz '^FuzzDecode$$' ./internal/wasm

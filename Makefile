GO ?= go

.PHONY: build test check bench fuzz

## build: compile every package.
build:
	$(GO) build ./...

## test: the tier-1 gate — what CI and the roadmap treat as "green".
test: build
	$(GO) test ./...

## check: the deeper tier — vet, the full suite under the race detector,
## and a 10 s fuzz smoke of the wasm decode/compile/execute gauntlet.
check: build
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -run '^FuzzDecode$$' -fuzz '^FuzzDecode$$' -fuzztime 10s ./internal/wasm

## bench: the paper's evaluation benchmarks.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

## fuzz: open-ended fuzzing of the plugin upload path (Ctrl-C to stop).
fuzz:
	$(GO) test -run '^FuzzDecode$$' -fuzz '^FuzzDecode$$' ./internal/wasm

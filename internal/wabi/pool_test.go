package wabi

import (
	"sync"
	"testing"
)

func TestPoolReusesInstances(t *testing.T) {
	mod, err := CompileWAT(echoWAT)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(mod, Policy{}, Env{}, 4)
	a, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(a)
	b, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("idle instance not reused")
	}
	pool.Put(b)
	if created, idle := pool.Stats(); created != 1 || idle != 1 {
		t.Fatalf("stats = %d/%d", created, idle)
	}
}

func TestPoolConcurrentCalls(t *testing.T) {
	mod, err := CompileWAT(echoWAT)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(mod, Policy{}, Env{}, 4)
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			msg := []byte{byte(g), byte(g + 1), byte(g + 2)}
			for i := 0; i < 50; i++ {
				out, err := pool.Call("run", msg)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if string(out) != string(msg) {
					t.Errorf("goroutine %d: cross-talk: %v != %v", g, out, msg)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	created, idle := pool.Stats()
	if created > 4 {
		t.Fatalf("pool created %d instances, max 4", created)
	}
	if idle != created {
		t.Fatalf("leaked instances: created=%d idle=%d", created, idle)
	}
}

func TestPoolBlocksWhenExhausted(t *testing.T) {
	mod, err := CompileWAT(echoWAT)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(mod, Policy{}, Env{}, 1)
	only, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan *Plugin)
	go func() {
		p, _ := pool.Get()
		got <- p
	}()
	select {
	case <-got:
		t.Fatal("Get returned despite exhausted pool")
	default:
	}
	pool.Put(only)
	if p := <-got; p != only {
		t.Fatal("waiter did not receive the returned instance")
	}
}

func TestPoolBadModulePropagatesError(t *testing.T) {
	mod, err := CompileWAT(`(module (func (export "run") (result i32) i32.const 0))`) // no memory
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(mod, Policy{}, Env{}, 2)
	if _, err := pool.Get(); err == nil {
		t.Fatal("instantiation failure swallowed")
	}
	// The failed slot is released: the pool can still try again.
	if created, _ := pool.Stats(); created != 0 {
		t.Fatalf("created = %d after failure", created)
	}
}

package wabi

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolReusesInstances(t *testing.T) {
	mod, err := CompileWAT(echoWAT)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(mod, Policy{}, Env{}, 4)
	a, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(a)
	b, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("idle instance not reused")
	}
	pool.Put(b)
	if st := pool.Stats(); st.Created != 1 || st.Idle != 1 {
		t.Fatalf("stats = %d/%d", st.Created, st.Idle)
	}
}

func TestPoolConcurrentCalls(t *testing.T) {
	mod, err := CompileWAT(echoWAT)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(mod, Policy{}, Env{}, 4)
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			msg := []byte{byte(g), byte(g + 1), byte(g + 2)}
			for i := 0; i < 50; i++ {
				out, err := pool.Call("run", msg)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if string(out) != string(msg) {
					t.Errorf("goroutine %d: cross-talk: %v != %v", g, out, msg)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := pool.Stats()
	created, idle := st.Created, st.Idle
	if created > 4 {
		t.Fatalf("pool created %d instances, max 4", created)
	}
	if idle != created {
		t.Fatalf("leaked instances: created=%d idle=%d", created, idle)
	}
}

func TestPoolBlocksWhenExhausted(t *testing.T) {
	mod, err := CompileWAT(echoWAT)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(mod, Policy{}, Env{}, 1)
	only, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan *Plugin)
	go func() {
		p, _ := pool.Get()
		got <- p
	}()
	select {
	case <-got:
		t.Fatal("Get returned despite exhausted pool")
	default:
	}
	pool.Put(only)
	if p := <-got; p != only {
		t.Fatal("waiter did not receive the returned instance")
	}
}

// TestPoolStressPastExhaustion hammers Get/Put from many more goroutines
// than the pool holds instances, so every goroutine repeatedly takes the
// waiter path. Run under -race this is the pool's concurrency audit; the
// invariants checked at the end catch leaked or double-released instances.
func TestPoolStressPastExhaustion(t *testing.T) {
	mod, err := CompileWAT(echoWAT)
	if err != nil {
		t.Fatal(err)
	}
	const max = 3
	pool := NewPool(mod, Policy{}, Env{}, max)
	var inFlight, peak atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 48; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			msg := []byte{byte(g)}
			for i := 0; i < 60; i++ {
				pl, err := pool.Get()
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if n := inFlight.Add(1); n > peak.Load() {
					peak.Store(n)
				}
				out, err := pl.Call("run", msg)
				if err != nil || string(out) != string(msg) {
					t.Errorf("goroutine %d: out=%q err=%v", g, out, err)
				}
				inFlight.Add(-1)
				pool.Put(pl)
			}
		}(g)
	}
	wg.Wait()
	st := pool.Stats()
	created, idle := st.Created, st.Idle
	if created > max {
		t.Fatalf("created %d instances, max %d", created, max)
	}
	if idle != created {
		t.Fatalf("leaked instances: created=%d idle=%d", created, idle)
	}
	if p := peak.Load(); p > max {
		t.Fatalf("%d instances checked out concurrently, max %d", p, max)
	}
}

// TestPoolCreateFailureWakesWaiter is the regression test for the stranded
// waiter: a Get that queues while another Get holds the last creation slot
// must be woken when that creation fails, so it can retry the freed slot
// instead of blocking until some unrelated Put.
func TestPoolCreateFailureWakesWaiter(t *testing.T) {
	mod, err := CompileWAT(echoWAT)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(mod, Policy{}, Env{}, 1)
	entered := make(chan struct{})
	release := make(chan struct{})
	var attempts atomic.Int64
	realNew := pool.newFn
	pool.newFn = func() (*Plugin, error) {
		if attempts.Add(1) == 1 {
			close(entered)
			<-release
			return nil, errors.New("injected create failure")
		}
		return realNew()
	}

	failErr := make(chan error, 1)
	go func() {
		_, err := pool.Get()
		failErr <- err
	}()
	<-entered // first Get now owns the only creation slot

	got := make(chan *Plugin, 1)
	go func() {
		pl, err := pool.Get()
		if err != nil {
			t.Errorf("waiter Get: %v", err)
		}
		got <- pl
	}()
	// Wait for the second Get to be queued as a waiter.
	for deadline := time.Now().Add(5 * time.Second); ; {
		pool.mu.Lock()
		n := len(pool.waiters)
		pool.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second Get never queued as waiter")
		}
		time.Sleep(time.Millisecond)
	}

	close(release) // first creation fails with a waiter queued
	if err := <-failErr; err == nil {
		t.Fatal("failed creation did not surface its error")
	}
	select {
	case pl := <-got:
		if pl == nil {
			t.Fatal("waiter received nil instance")
		}
		pool.Put(pl)
	case <-time.After(5 * time.Second):
		t.Fatal("waiter stranded after create failure")
	}
	if st := pool.Stats(); st.Created != 1 || st.Idle != 1 {
		t.Fatalf("stats = %d/%d after recovery, want 1/1", st.Created, st.Idle)
	}
}

// TestPoolAllCreationsFailNobodyHangs: with every instantiation failing,
// concurrent Gets past exhaustion must all return errors — the failure
// wake-up chains from waiter to waiter rather than stranding the tail.
func TestPoolAllCreationsFailNobodyHangs(t *testing.T) {
	mod, err := CompileWAT(echoWAT)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(mod, Policy{}, Env{}, 1)
	pool.newFn = func() (*Plugin, error) {
		time.Sleep(time.Millisecond) // widen the window where waiters queue
		return nil, errors.New("always fails")
	}
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			_, err := pool.Get()
			errs <- err
		}()
	}
	for i := 0; i < 8; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Fatal("Get succeeded with failing creator")
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("Get %d hung", i)
		}
	}
	if st := pool.Stats(); st.Created != 0 || st.Idle != 0 {
		t.Fatalf("stats = %d/%d, want 0/0", st.Created, st.Idle)
	}
}

func TestPoolBadModulePropagatesError(t *testing.T) {
	mod, err := CompileWAT(`(module (func (export "run") (result i32) i32.const 0))`) // no memory
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(mod, Policy{}, Env{}, 2)
	if _, err := pool.Get(); err == nil {
		t.Fatal("instantiation failure swallowed")
	}
	// The failed slot is released: the pool can still try again.
	if st := pool.Stats(); st.Created != 0 {
		t.Fatalf("created = %d after failure", st.Created)
	}
}

package wabi

import (
	"strings"
	"testing"

	"waran/internal/wasm"
)

// zcEchoWAT is a minimal zero-copy-capable guest with statically placed
// regions: it copies the first 4 bytes of its request region into its
// response region when "poke" runs.
const zcEchoWAT = `(module
  (import "waran" "output_write" (func $output_write (param i32 i32)))
  (memory (export "memory") 1)
  (func (export "zc_req_region") (result i32) (i32.const 1024))
  (func (export "zc_resp_region") (result i32) (i32.const 4096))
  (func (export "poke") (result i32)
    (i32.store (i32.const 4096) (i32.load (i32.const 1024)))
    (i32.const 0))
)`

// zcGrowWAT negotiates regions from memory grown on first use, the way an
// allocator-backed guest would. A fresh instance starts back at one page,
// so any cached layout from a previous instance points past the end of the
// replacement's memory.
const zcGrowWAT = `(module
  (import "waran" "output_write" (func $output_write (param i32 i32)))
  (memory (export "memory") 1 4)
  (global $base (mut i32) (i32.const 0))
  (func $alloc (result i32)
    (if (i32.eqz (global.get $base))
      (then
        (global.set $base
          (i32.mul (memory.grow (i32.const 1)) (i32.const 65536)))))
    (global.get $base))
  (func (export "zc_req_region") (result i32) (call $alloc))
  (func (export "zc_resp_region") (result i32)
    (i32.add (call $alloc) (i32.const 4096)))
  (func (export "poke") (result i32)
    (i32.store (i32.add (call $alloc) (i32.const 4096))
      (i32.load (call $alloc)))
    (i32.const 0))
)`

// zcOverlapWAT returns regions that alias each other.
const zcOverlapWAT = `(module
  (import "waran" "output_write" (func $output_write (param i32 i32)))
  (memory (export "memory") 1)
  (func (export "zc_req_region") (result i32) (i32.const 1024))
  (func (export "zc_resp_region") (result i32) (i32.const 1040))
)`

// zcTrapWAT traps during negotiation itself.
const zcTrapWAT = `(module
  (import "waran" "output_write" (func $output_write (param i32 i32)))
  (memory (export "memory") 1)
  (func (export "zc_req_region") (result i32) (unreachable))
  (func (export "zc_resp_region") (result i32) (i32.const 4096))
)`

func TestZeroCopyCapable(t *testing.T) {
	if p := mustPlugin(t, zcEchoWAT, Policy{}, Env{}); !p.ZeroCopyCapable() {
		t.Fatal("guest with both region exports not reported capable")
	}
	if p := mustPlugin(t, echoWAT, Policy{}, Env{}); p.ZeroCopyCapable() {
		t.Fatal("legacy guest without region exports reported capable")
	}
	// Wrong signature must not count: a region export taking a parameter.
	src := `(module
	  (import "waran" "output_write" (func $output_write (param i32 i32)))
	  (memory (export "memory") 1)
	  (func (export "zc_req_region") (param i32) (result i32) (i32.const 1024))
	  (func (export "zc_resp_region") (result i32) (i32.const 4096))
	)`
	if p := mustPlugin(t, src, Policy{}, Env{}); p.ZeroCopyCapable() {
		t.Fatal("guest with mis-typed region export reported capable")
	}
}

func TestRegionNegotiationCachesLayout(t *testing.T) {
	p := mustPlugin(t, zcEchoWAT, Policy{Fuel: 1_000_000}, Env{})
	rg, err := p.Regions(256, 128)
	if err != nil {
		t.Fatal(err)
	}
	want := RegionLayout{ReqPtr: 1024, ReqLen: 256, RespPtr: 4096, RespLen: 128}
	if rg.Layout != want {
		t.Fatalf("layout = %+v, want %+v", rg.Layout, want)
	}
	again, err := p.Regions(256, 128)
	if err != nil {
		t.Fatal(err)
	}
	if again != rg {
		t.Fatal("second Regions call did not return the cached state")
	}
	if n := p.RegionNegotiations(); n != 1 {
		t.Fatalf("negotiations = %d, want 1", n)
	}
	// A caller demanding different window sizes must not silently reuse the
	// old negotiation.
	if _, err := p.Regions(512, 128); err == nil {
		t.Fatal("size mismatch against cached layout accepted")
	}
}

func TestRegionNegotiationRejectsBadLayouts(t *testing.T) {
	t.Run("overlap", func(t *testing.T) {
		p := mustPlugin(t, zcOverlapWAT, Policy{}, Env{})
		if _, err := p.Regions(256, 128); err == nil || !strings.Contains(err.Error(), "overlap") {
			t.Fatalf("overlapping regions accepted (err=%v)", err)
		}
	})
	t.Run("out of bounds", func(t *testing.T) {
		p := mustPlugin(t, zcEchoWAT, Policy{}, Env{})
		// One page of memory: a request window of 64 KiB starting at 1024
		// runs past the end.
		if _, err := p.Regions(65536, 128); err == nil || !strings.Contains(err.Error(), "exceeds memory") {
			t.Fatalf("out-of-bounds request region accepted (err=%v)", err)
		}
	})
	t.Run("missing export", func(t *testing.T) {
		p := mustPlugin(t, echoWAT, Policy{}, Env{})
		if _, err := p.Regions(256, 128); err == nil {
			t.Fatal("negotiation with a legacy guest succeeded")
		}
	})
}

func TestRegionNegotiationTrapPoisons(t *testing.T) {
	p := mustPlugin(t, zcTrapWAT, Policy{Fuel: 1_000_000}, Env{})
	if _, err := p.Regions(256, 128); err == nil {
		t.Fatal("negotiation with a trapping guest succeeded")
	}
	if !p.Poisoned() {
		t.Fatal("trap during negotiation did not poison the instance")
	}
}

func TestValidateRegionLayoutUnits(t *testing.T) {
	mem := wasm.NewMemory(1, 1) // 65536 bytes
	cases := []struct {
		name string
		lay  RegionLayout
		ok   bool
	}{
		{"disjoint", RegionLayout{ReqPtr: 0, ReqLen: 100, RespPtr: 200, RespLen: 100}, true},
		{"adjacent", RegionLayout{ReqPtr: 0, ReqLen: 100, RespPtr: 100, RespLen: 100}, true},
		{"resp before req", RegionLayout{ReqPtr: 1000, ReqLen: 100, RespPtr: 0, RespLen: 100}, true},
		{"overlap head", RegionLayout{ReqPtr: 0, ReqLen: 101, RespPtr: 100, RespLen: 100}, false},
		{"resp inside req", RegionLayout{ReqPtr: 0, ReqLen: 1000, RespPtr: 10, RespLen: 10}, false},
		{"req oob", RegionLayout{ReqPtr: 65500, ReqLen: 100, RespPtr: 0, RespLen: 100}, false},
		{"resp oob", RegionLayout{ReqPtr: 0, ReqLen: 100, RespPtr: 65535, RespLen: 2}, false},
		{"oob via overflow", RegionLayout{ReqPtr: 0xffff_ff00, ReqLen: 0x200, RespPtr: 0, RespLen: 100}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateRegionLayout(tc.lay, mem)
			if (err == nil) != tc.ok {
				t.Fatalf("validate(%+v) err = %v, want ok=%v", tc.lay, err, tc.ok)
			}
		})
	}
}

// TestResetRenegotiatesGrownRegions pins the stale-layout hazard: a guest
// that carves its regions from grown memory negotiates pointers past the
// first page; after Reset the fresh instance is back to one page, so
// reusing the cached layout would address unmapped memory. Reset must force
// a renegotiation (which grows the fresh instance again).
func TestResetRenegotiatesGrownRegions(t *testing.T) {
	p := mustPlugin(t, zcGrowWAT, Policy{Fuel: 1_000_000}, Env{})
	rg, err := p.Regions(256, 128)
	if err != nil {
		t.Fatal(err)
	}
	if rg.Layout.ReqPtr != 65536 {
		t.Fatalf("grown request region at %d, want 65536", rg.Layout.ReqPtr)
	}
	if err := p.Reset(); err != nil {
		t.Fatal(err)
	}
	// The fresh instance has one page again: the old layout is unmappable.
	if got := p.MemoryBytes(); got != 65536 {
		t.Fatalf("fresh instance memory = %d, want 65536", got)
	}
	rg2, err := p.Regions(256, 128)
	if err != nil {
		t.Fatalf("renegotiation after Reset: %v", err)
	}
	if p.RegionNegotiations() != 2 {
		t.Fatalf("negotiations = %d, want 2", p.RegionNegotiations())
	}
	// The regrown layout must be valid against the new memory.
	if err := validateRegionLayout(rg2.Layout, p.Instance().Memory()); err != nil {
		t.Fatal(err)
	}
	// And usable: write through it, run the guest, read back.
	mem := p.Instance().Memory()
	if err := mem.WriteUint32(rg2.Layout.ReqPtr, 0xc0ffee); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Call("poke", nil); err != nil {
		t.Fatal(err)
	}
	// Call on a non-FreshInstance policy keeps the instance; the response
	// region now holds the echoed word.
	got, err := p.Instance().Memory().ReadUint32(p.zc.Layout.RespPtr)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xc0ffee {
		t.Fatalf("guest echoed %#x through regions, want 0xc0ffee", got)
	}
}

// TestFreshInstancePolicyInvalidatesRegions: with FreshInstance, every call
// replaces the instance, so a layout negotiated before the call is dead
// after it.
func TestFreshInstancePolicyInvalidatesRegions(t *testing.T) {
	p := mustPlugin(t, zcGrowWAT, Policy{FreshInstance: true, Fuel: 1_000_000}, Env{})
	if _, err := p.Regions(256, 128); err != nil {
		t.Fatal(err)
	}
	// poke runs on a brand-new instance ($base back to 0) and succeeds; the
	// point is the layout negotiated against the previous instance must be
	// gone afterwards.
	if _, err := p.Call("poke", nil); err != nil {
		t.Fatal(err)
	}
	if p.zc != nil {
		t.Fatal("FreshInstance call left a cached region layout behind")
	}
	if _, err := p.Regions(256, 128); err != nil {
		t.Fatalf("renegotiation after fresh-instance call: %v", err)
	}
	if p.RegionNegotiations() != 2 {
		t.Fatalf("negotiations = %d, want 2", p.RegionNegotiations())
	}
}

// TestPoolZeroCopyTrapThenReuse is the pool-level regression for the
// stale-layout hazard: instance serves zero-copy traffic, traps, is
// discarded by Put, and the replacement instance must renegotiate its
// regions from scratch rather than inherit the poisoned predecessor's
// layout. With a grow-based guest the stale layout would not even be
// mappable on the one-page replacement.
func TestPoolZeroCopyTrapThenReuse(t *testing.T) {
	mod, err := CompileWAT(zcGrowWAT)
	if err != nil {
		t.Fatal(err)
	}
	ch := NewChaos(ChaosConfig{TrapProb: 1, ActivateAfter: 1, Seed: 7})
	pool := NewPool(mod, Policy{Fuel: 1_000_000}, Env{Chaos: ch}, 1)

	zcRound := func(pl *Plugin, wantWord uint32) error {
		rg, err := pl.Regions(256, 128)
		if err != nil {
			return err
		}
		mem := pl.Instance().Memory()
		if err := mem.WriteUint32(rg.Layout.ReqPtr, wantWord); err != nil {
			return err
		}
		if _, err := pl.Call("poke", nil); err != nil {
			return err
		}
		got, err := mem.ReadUint32(rg.Layout.RespPtr)
		if err != nil {
			return err
		}
		if got != wantWord {
			t.Fatalf("guest echoed %#x, want %#x", got, wantWord)
		}
		return nil
	}

	// Call 1: clean (chaos activates after 1 call).
	pl, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if err := zcRound(pl, 0x1111); err != nil {
		t.Fatal(err)
	}
	pool.Put(pl)

	// Call 2: same recycled instance, chaos forces a trap mid-call.
	pl, err = pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if pl.RegionNegotiations() != 1 {
		t.Fatalf("recycled instance renegotiated (%d), want cached layout", pl.RegionNegotiations())
	}
	if err := zcRound(pl, 0x2222); err == nil {
		t.Fatal("chaos-armed call did not trap")
	}
	if !pl.Poisoned() {
		t.Fatal("trapped instance not poisoned")
	}
	pool.Put(pl) // discards, invalidates regions
	if d := pool.Stats().Discards; d != 1 {
		t.Fatalf("discards = %d, want 1", d)
	}
	if pl.zc != nil {
		t.Fatal("poisoned discard left a cached region layout on the wrapper")
	}

	// Call 3: replacement instance. Must renegotiate (grow again) and serve
	// a correct decision; stale 65536-based pointers on the fresh one-page
	// memory would make zcRound's writes fail.
	ch.SetConfig(ChaosConfig{}) // stop injecting
	pl, err = pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if pl.RegionNegotiations() != 0 {
		t.Fatalf("fresh wrapper carries %d negotiations", pl.RegionNegotiations())
	}
	if err := zcRound(pl, 0x3333); err != nil {
		t.Fatalf("replacement instance zero-copy round: %v", err)
	}
	if pl.RegionNegotiations() != 1 {
		t.Fatalf("replacement negotiations = %d, want 1", pl.RegionNegotiations())
	}
	pool.Put(pl)
}

// TestChaosScribbleLeavesPoisonDetectable: a forced trap on a zero-copy
// plugin scribbles the response region; whatever the host might read there
// must look like garbage (the scribble pattern), not a valid table.
func TestChaosScribbleCoversResponseRegion(t *testing.T) {
	ch := NewChaos(ChaosConfig{TrapProb: 1, ActivateAfter: 1, Seed: 3})
	p := mustPlugin(t, zcEchoWAT, Policy{Fuel: 1_000_000}, Env{Chaos: ch})
	rg, err := p.Regions(256, 128)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Call("poke", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Call("poke", nil); err == nil {
		t.Fatal("chaos-armed call did not trap")
	}
	head, err := p.Instance().Memory().Read(rg.Layout.RespPtr, rg.Layout.RespLen/2)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range head {
		if b != 0xa5 {
			t.Fatalf("response region byte %d = %#x, want scribble 0xa5", i, b)
		}
	}
}

package wabi

import (
	"crypto/sha256"
	"fmt"
	"sync"

	"waran/internal/obs"
	"waran/internal/obs/flight"
)

// ModuleCache is a content-addressed cache of compiled plugin modules:
// SHA-256 of the bytecode -> *Module. Pushing the same plugin onto 64 cells
// (or re-uploading an unchanged plugin over E2) then decodes, validates and
// flattens the bytecode exactly once, which is how the paper's hot-swap
// path amortizes compilation cost across a deployment.
//
// The cache is safe for concurrent use and deduplicates in-flight work:
// concurrent Load calls for the same bytecode share one compilation, with
// the losers blocking until the winner finishes (singleflight). Failed
// compilations are not cached — a corrupt upload does not poison the key.
type ModuleCache struct {
	mu      sync.Mutex
	entries map[[sha256.Size]byte]*cacheEntry
	hits    uint64
	misses  uint64

	// tierPolicy, when set, is applied to every module the cache hands out;
	// tierPromotions counts modules the fuel profile has promoted off the
	// interpreter (see tier.go).
	tierPolicy     *TierPolicy
	tierPromotions uint64

	// flightRec, when set, journals tier promotions (see tier.go).
	flightRec *flight.Recorder
}

type cacheEntry struct {
	done chan struct{} // closed when compilation finishes
	mod  *Module
	err  error
}

// NewModuleCache creates an empty cache.
func NewModuleCache() *ModuleCache {
	return &ModuleCache{entries: make(map[[sha256.Size]byte]*cacheEntry)}
}

// Load returns the compiled module for bin, compiling it on first sight.
// Concurrent loads of identical bytecode compile once.
func (c *ModuleCache) Load(bin []byte) (*Module, error) {
	if len(bin) == 0 {
		return nil, fmt.Errorf("wabi: empty module bytecode")
	}
	key := sha256.Sum256(bin)

	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-e.done
		return e.mod, e.err
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	e.mod, e.err = CompileWasm(bin)
	if e.err == nil {
		c.mu.Lock()
		tp := c.tierPolicy
		c.mu.Unlock()
		if tp != nil {
			c.applyTierPolicy(e.mod, *tp)
		}
	}
	close(e.done)
	if e.err != nil {
		// Drop the failed entry so the error is not cached; identical bad
		// bytecode will fail identically anyway, and a hash collision with
		// good bytecode must not be wedged forever.
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
	}
	return e.mod, e.err
}

// Contains reports whether bytecode with this exact content is cached.
func (c *ModuleCache) Contains(bin []byte) bool {
	key := sha256.Sum256(bin)
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return false
	}
	select {
	case <-e.done:
		return e.err == nil
	default:
		return false // still compiling
	}
}

// Len reports the number of cached modules (including in-flight ones).
func (c *ModuleCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// CacheStats is the flat snapshot of a ModuleCache.
type CacheStats struct {
	Modules int    `json:"modules"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	// TierPromotions counts cached modules whose fuel profile crossed the
	// promotion threshold and moved them to the closure tier.
	TierPromotions uint64 `json:"tier_promotions"`
}

// Stats returns cache occupancy plus hits and misses since creation.
func (c *ModuleCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Modules:        len(c.entries),
		Hits:           c.hits,
		Misses:         c.misses,
		TierPromotions: c.tierPromotions,
	}
}

// Register exposes the cache on reg under waran_wabi_module_cache_*.
func (c *ModuleCache) Register(reg *obs.Registry, labels ...obs.Label) {
	reg.MustRegister("waran_wabi_module_cache", "content-addressed compiled-module cache", obs.Func{
		Kind: obs.KindUntyped,
		Collect: func() []obs.Sample {
			s := c.Stats()
			return []obs.Sample{
				{Suffix: "_modules", Value: float64(s.Modules)},
				{Suffix: "_hits_total", Value: float64(s.Hits)},
				{Suffix: "_misses_total", Value: float64(s.Misses)},
				{Suffix: "_tier_promotions_total", Value: float64(s.TierPromotions)},
			}
		},
		JSON: func() any { return c.Stats() },
	}, labels...)
}

// Purge empties the cache (e.g. after a policy change that invalidates
// previously vetted plugins).
func (c *ModuleCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[[sha256.Size]byte]*cacheEntry)
}

// String implements fmt.Stringer.
func (c *ModuleCache) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fmt.Sprintf("wabi.ModuleCache{modules=%d hits=%d misses=%d}", len(c.entries), c.hits, c.misses)
}

package wabi

import (
	"errors"
	"fmt"

	"waran/internal/wasm"
)

// Shared-memory region negotiation: the zero-copy plugin ABI.
//
// A zero-copy-capable plugin exports, in addition to its entry points, two
// pointer functions:
//
//	(func (export "zc_req_region")  (result i32))  ;; request region base
//	(func (export "zc_resp_region") (result i32))  ;; response region base
//
// The host calls them once per instance ("negotiation") and then exchanges
// scheduling state through the returned linear-memory windows instead of the
// input_read/output_write copy ABI: the request region is written in place
// (delta-updated between slots by the layer above), the guest reads it
// directly, writes its response table directly, and the host validates the
// response region with the same hardened rules as the serializing decode.
//
// Contract: the returned pointers must be stable for the lifetime of the
// instance, and the guest must reserve at least the host-requested number of
// bytes at each pointer (growing memory during negotiation is allowed — this
// is how allocator-backed guests carve regions from the heap). The two
// regions must not overlap. A fresh instance of the same module may
// legitimately return different pointers (its heap starts over), which is
// why every cached RegionLayout dies with its instance: Reset, per-call
// fresh instantiation and Pool.Put's poisoned-instance discard all
// invalidate, forcing re-negotiation on the replacement.
const (
	RegionRequestExport  = "zc_req_region"
	RegionResponseExport = "zc_resp_region"
)

// RegionLayout is one instance's negotiated shared-memory windows.
type RegionLayout struct {
	ReqPtr  uint32 `json:"req_ptr"`
	ReqLen  uint32 `json:"req_len"`
	RespPtr uint32 `json:"resp_ptr"`
	RespLen uint32 `json:"resp_len"`
}

// Regions is the per-instance zero-copy state: the negotiated layout plus
// the host's shadow of the request region, which the caller (the scheduling
// ABI layer) diffs against to write only records that changed since the
// last slot. Regions is owned by exactly one Plugin and shares its
// single-goroutine discipline.
type Regions struct {
	Layout RegionLayout
	// Shadow mirrors what the host has written into this instance's request
	// region; ShadowLen is the valid prefix in bytes. A fresh negotiation
	// starts with ShadowLen 0 (everything dirty).
	Shadow    []byte
	ShadowLen int
}

// ZeroCopyCapable reports whether the plugin exports both region pointer
// functions with the () -> i32 signature.
func (p *Plugin) ZeroCopyCapable() bool {
	return p.hasPtrExport(RegionRequestExport) && p.hasPtrExport(RegionResponseExport)
}

func (p *Plugin) hasPtrExport(name string) bool {
	ft, ok := p.inst.FuncType(name)
	if !ok {
		return false
	}
	return len(ft.Params) == 0 && len(ft.Results) == 1 && ft.Results[0] == wasm.ValI32
}

// Regions returns the current instance's negotiated zero-copy state,
// negotiating on first use. reqLen/respLen are the window sizes the host
// requires; the cached state is only valid for those exact sizes.
func (p *Plugin) Regions(reqLen, respLen uint32) (*Regions, error) {
	if p.zc != nil {
		if p.zc.Layout.ReqLen != reqLen || p.zc.Layout.RespLen != respLen {
			return nil, fmt.Errorf("wabi: region size mismatch: negotiated %d/%d bytes, caller wants %d/%d",
				p.zc.Layout.ReqLen, p.zc.Layout.RespLen, reqLen, respLen)
		}
		return p.zc, nil
	}
	reqPtr, err := p.callRegionExport(RegionRequestExport)
	if err != nil {
		return nil, err
	}
	respPtr, err := p.callRegionExport(RegionResponseExport)
	if err != nil {
		return nil, err
	}
	lay := RegionLayout{ReqPtr: reqPtr, ReqLen: reqLen, RespPtr: respPtr, RespLen: respLen}
	if err := validateRegionLayout(lay, p.inst.Memory()); err != nil {
		return nil, err
	}
	p.zc = &Regions{Layout: lay}
	p.zcNegotiations++
	return p.zc, nil
}

// RegionNegotiations counts how many times this Plugin negotiated a region
// layout — one per instance that served zero-copy calls. Tests use it to
// pin the "fresh instance re-negotiates" contract.
func (p *Plugin) RegionNegotiations() uint64 { return p.zcNegotiations }

// callRegionExport invokes one pointer export under the plugin's fuel
// policy. A trap during negotiation leaves the instance in an unknown state,
// so it is classified and poisons the instance like any mid-call abort.
func (p *Plugin) callRegionExport(name string) (uint32, error) {
	if !p.hasPtrExport(name) {
		return 0, fmt.Errorf("wabi: plugin does not export %q with signature () -> i32: not zero-copy capable", name)
	}
	if p.policy.Fuel > 0 {
		p.inst.SetFuel(p.policy.Fuel)
	}
	res, err := p.inst.Call(name)
	if err != nil {
		p.faults++
		var trap *wasm.Trap
		if errors.As(err, &trap) {
			ce := &CallError{Entry: name, Trap: trap}
			p.lastClass = ce.FailureClass()
			return 0, ce
		}
		p.lastClass = FailUnknown
		return 0, err
	}
	return uint32(res[0]), nil
}

// validateRegionLayout checks both windows fit in the instance's current
// memory (after the guest had its chance to grow during negotiation) and do
// not overlap each other — the host writes the request window while the
// guest owns the response window, so an overlap would let a hostile pointer
// alias the two.
func validateRegionLayout(lay RegionLayout, mem *wasm.Memory) error {
	size := uint64(mem.Len())
	reqEnd := uint64(lay.ReqPtr) + uint64(lay.ReqLen)
	respEnd := uint64(lay.RespPtr) + uint64(lay.RespLen)
	if reqEnd > size {
		return fmt.Errorf("wabi: negotiated request region [%d, %d) exceeds memory size %d", lay.ReqPtr, reqEnd, size)
	}
	if respEnd > size {
		return fmt.Errorf("wabi: negotiated response region [%d, %d) exceeds memory size %d", lay.RespPtr, respEnd, size)
	}
	if uint64(lay.ReqPtr) < respEnd && uint64(lay.RespPtr) < reqEnd {
		return fmt.Errorf("wabi: negotiated regions overlap: request [%d, %d) vs response [%d, %d)",
			lay.ReqPtr, reqEnd, lay.RespPtr, respEnd)
	}
	return nil
}

// invalidateRegions drops the cached layout and shadow. Called whenever the
// underlying instance is replaced (Reset, fresh-instance calls) or discarded
// (Pool.Put of a poisoned instance): the replacement's heap starts over, so
// reusing the old offsets would read and write the wrong memory.
func (p *Plugin) invalidateRegions() { p.zc = nil }

// chaosScribbleRegions simulates a guest that trapped midway through writing
// its response: the first half of the response region (count word included)
// is overwritten with a recognizable garbage pattern. Validation above must
// reject anything read from it.
func (p *Plugin) chaosScribbleRegions() {
	rg := p.zc
	if rg == nil {
		return
	}
	n := rg.Layout.RespLen / 2
	if n == 0 {
		n = rg.Layout.RespLen
	}
	junk := make([]byte, n)
	for i := range junk {
		junk[i] = 0xa5
	}
	// Best effort: the region was validated at negotiation, so this cannot
	// fail unless the instance is already broken.
	_ = p.inst.Memory().Write(rg.Layout.RespPtr, junk)
}

// chaosCorruptRegions is the zero-copy analogue of corruptOutput: the call
// completed, but the allocation count is replaced with an absurd claim so
// only the hardened region validation above can catch the lie.
func (p *Plugin) chaosCorruptRegions() {
	rg := p.zc
	if rg == nil {
		return
	}
	_ = p.inst.Memory().WriteUint32(rg.Layout.RespPtr, 0xffff_ffff)
}

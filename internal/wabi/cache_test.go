package wabi

import (
	"strings"
	"sync"
	"testing"

	"waran/internal/wat"
)

func echoBinary(t *testing.T) []byte {
	t.Helper()
	bin, err := wat.CompileToBinary(echoWAT)
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

func TestModuleCacheCompilesOnce(t *testing.T) {
	bin := echoBinary(t)
	c := NewModuleCache()
	a, err := c.Load(bin)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh copy of the same bytes must hit: the cache is keyed by
	// content, not by slice identity.
	b, err := c.Load(append([]byte(nil), bin...))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical bytecode compiled twice")
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1/1", st.Hits, st.Misses)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	if !c.Contains(bin) {
		t.Fatal("Contains = false for cached bytecode")
	}
}

func TestModuleCacheConcurrentLoadSingleflight(t *testing.T) {
	bin := echoBinary(t)
	c := NewModuleCache()
	const n = 32
	mods := make([]*Module, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := c.Load(bin)
			if err != nil {
				t.Error(err)
				return
			}
			mods[i] = m
		}(i)
	}
	wg.Wait()
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("concurrent loads compiled %d times, want 1", st.Misses)
	}
	for i := 1; i < n; i++ {
		if mods[i] != mods[0] {
			t.Fatalf("goroutine %d got a different module", i)
		}
	}
}

func TestModuleCacheDoesNotCacheFailures(t *testing.T) {
	c := NewModuleCache()
	bad := []byte("\x00asm garbage that is not wasm")
	if _, err := c.Load(bad); err == nil {
		t.Fatal("garbage accepted")
	}
	if c.Len() != 0 {
		t.Fatalf("failed compile left %d entries", c.Len())
	}
	if _, err := c.Load(bad); err == nil {
		t.Fatal("garbage accepted on retry")
	}
	if _, err := c.Load(nil); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("empty bytecode: %v", err)
	}
}

func TestModuleCacheDistinctBytecodeDistinctEntries(t *testing.T) {
	c := NewModuleCache()
	binA := echoBinary(t)
	binB, err := wat.CompileToBinary(`(module (memory (export "memory") 1)
	  (func (export "run") (result i32) i32.const 0))`)
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Load(binA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Load(binB)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("distinct bytecode shared a cache entry")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatal("purge left entries")
	}
}

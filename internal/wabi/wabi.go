// Package wabi is WA-RAN's plugin application binary interface: the
// host-side layer that loads untrusted WebAssembly plugins and exchanges
// byte-oriented requests and responses with them, in the role Extism plays
// in the paper's prototype.
//
// # ABI contract
//
// A plugin is a wasm module that:
//
//   - exports a linear memory named "memory";
//
//   - exports one or more entry functions with signature () -> i32, where 0
//     means success and any other value is a plugin-defined error code;
//
//   - imports its I/O primitives from module "waran":
//
//     (import "waran" "input_length" (func (result i32)))
//     (import "waran" "input_read"   (func (param i32 i32 i32) (result i32)))
//     (import "waran" "output_write" (func (param i32 i32)))
//     (import "waran" "error_set"    (func (param i32 i32)))
//     (import "waran" "log"          (func (param i32 i32)))
//
// input_read(dst, off, n) copies up to n bytes of the call input starting at
// offset off into guest memory at dst and returns the number copied.
// output_write replaces the call output with the given guest-memory range.
// error_set records a guest-readable error string surfaced in CallError.
//
// Hosts may expose additional domain host functions (gNB control, RIC
// messaging) under other module names via Env.
package wabi

import (
	"errors"
	"fmt"
	"time"

	"waran/internal/wasm"
	"waran/internal/wat"
)

// Default resource policy values.
const (
	DefaultMaxMemoryPages = 256 // 16 MiB
	DefaultMaxInputBytes  = 1 << 20
	DefaultMaxOutputBytes = 1 << 20
)

// Policy bounds the resources one plugin may consume per call and overall.
type Policy struct {
	// MaxMemoryPages caps the plugin's linear memory (64 KiB pages).
	// Zero means DefaultMaxMemoryPages.
	MaxMemoryPages uint32
	// Fuel is the per-call instruction budget. Zero disables metering.
	Fuel int64
	// CallTimeout is a wall-clock bound per call, enforced inside the
	// interpreter (checked every 64 Ki instructions; requires Fuel > 0).
	// Zero disables it. Fuel is the deterministic budget; CallTimeout is
	// the belt-and-braces bound against slow host functions.
	CallTimeout time.Duration
	// MaxInputBytes bounds Call input size. Zero means the default.
	MaxInputBytes int
	// MaxOutputBytes bounds what the guest may emit. Zero means the default.
	MaxOutputBytes int
	// FreshInstance re-instantiates the module for every call, giving
	// maximum isolation between invocations at extra cost (ablation:
	// BenchmarkAblationInstanceReuse).
	FreshInstance bool
	// Tier pins every call by this plugin to one wasm execution tier.
	// TierAuto (the zero value) follows the module's default tier, which
	// starts at the interpreter and may be promoted by the fuel profile.
	Tier wasm.Tier
	// TierPromoteFuel, when non-zero, arms fuel-profiled tier promotion on
	// the plugin's module at this cumulative-fuel threshold (negative
	// disarms it). Zero leaves the module's existing promotion setting —
	// typically the one installed by ModuleCache.SetTierPolicy — untouched.
	TierPromoteFuel int64
}

func (p Policy) withDefaults() Policy {
	if p.MaxMemoryPages == 0 {
		p.MaxMemoryPages = DefaultMaxMemoryPages
	}
	if p.MaxInputBytes == 0 {
		p.MaxInputBytes = DefaultMaxInputBytes
	}
	if p.MaxOutputBytes == 0 {
		p.MaxOutputBytes = DefaultMaxOutputBytes
	}
	return p
}

// Env supplies optional host extensions and observers.
type Env struct {
	// HostFuncs maps module name -> function name -> implementation, merged
	// with (and unable to override) the "waran" ABI module.
	HostFuncs wasm.Imports
	// OnLog receives guest log lines, if set.
	OnLog func(msg string)
	// Chaos, when non-nil, injects seeded faults into every call made by
	// plugins sharing this Env — the wasm-layer counterpart of
	// e2.FaultConn, for supervisor and containment testing. Production
	// environments leave it nil.
	Chaos *Chaos
	// Profile, when non-nil, attaches the per-function fuel/wall-time
	// profiler to every instance created under this Env (including pool
	// refills, resets and fresh-instance calls). ProfileTag prefixes the
	// recorded function names ("sla:on_indication") so one collector can
	// aggregate scheduler plugins and xApps side by side.
	Profile    *wasm.Profile
	ProfileTag string
}

// Module is compiled plugin code, instantiable many times.
type Module struct {
	cm *wasm.CompiledModule

	// tier accumulates the fuel profile that drives interpreter-to-closure
	// promotion; shared by every Plugin instantiated from this Module.
	tier tierState
}

// CompileWasm compiles plugin bytecode (decode + validate + flatten).
// Failures are *InstantiateError: the bytecode can never become a runnable
// instance.
func CompileWasm(bin []byte) (*Module, error) {
	m, err := wasm.Decode(bin)
	if err != nil {
		return nil, &InstantiateError{Err: err}
	}
	cm, err := wasm.Compile(m)
	if err != nil {
		return nil, &InstantiateError{Err: err}
	}
	return &Module{cm: cm}, nil
}

// CompileWAT compiles plugin source in the WebAssembly text format.
func CompileWAT(src string) (*Module, error) {
	m, err := wat.Compile(src)
	if err != nil {
		return nil, &InstantiateError{Err: err}
	}
	cm, err := wasm.Compile(m)
	if err != nil {
		return nil, &InstantiateError{Err: err}
	}
	return &Module{cm: cm}, nil
}

// CallError is returned when a plugin invocation fails. It distinguishes
// sandbox faults (Trap != nil) from plugin-reported errors (Code/Message).
type CallError struct {
	Entry   string
	Trap    *wasm.Trap
	Code    int32  // non-zero entry function return
	Message string // guest-set error string
}

// Error implements the error interface.
func (e *CallError) Error() string {
	switch {
	case e.Trap != nil:
		return fmt.Sprintf("wabi: plugin %q faulted: %v", e.Entry, e.Trap)
	case e.Message != "":
		return fmt.Sprintf("wabi: plugin %q failed (code %d): %s", e.Entry, e.Code, e.Message)
	default:
		return fmt.Sprintf("wabi: plugin %q failed with code %d", e.Entry, e.Code)
	}
}

// Unwrap exposes the trap for errors.As / errors.Is.
func (e *CallError) Unwrap() error {
	if e.Trap != nil {
		return e.Trap
	}
	return nil
}

// Plugin is an instantiated plugin ready to receive calls. Not safe for
// concurrent use; callers serialize or use one Plugin per goroutine.
type Plugin struct {
	mod    *Module
	policy Policy
	env    Env
	inst   *wasm.Instance

	input    []byte
	output   []byte
	guestErr string

	// zc is the negotiated zero-copy region state for the current instance,
	// nil until the first Regions call and invalidated whenever the instance
	// is replaced or discarded. zcNegotiations counts negotiations across
	// the Plugin's lifetime.
	zc             *Regions
	zcNegotiations uint64

	// Per-call accounting, read through Stats(). Unsynchronized like the
	// rest of the Plugin: one goroutine at a time.
	calls     uint64
	totalDur  time.Duration
	lastDur   time.Duration
	faults    uint64
	lastFuel  int64
	totalFuel int64
	lastClass FailureClass
}

// PluginStats is the flat snapshot of a Plugin's per-call accounting.
// Durations marshal as nanoseconds; fuel is in interpreter instructions
// (zero when metering is disabled).
type PluginStats struct {
	Calls         uint64        `json:"calls"`
	Faults        uint64        `json:"faults"`
	TotalDuration time.Duration `json:"total_duration_ns"`
	LastDuration  time.Duration `json:"last_duration_ns"`
	LastFuel      int64         `json:"last_fuel"`
	TotalFuel     int64         `json:"total_fuel"`
}

// Stats returns accounting accumulated across calls.
func (p *Plugin) Stats() PluginStats {
	return PluginStats{
		Calls:         p.calls,
		Faults:        p.faults,
		TotalDuration: p.totalDur,
		LastDuration:  p.lastDur,
		LastFuel:      p.lastFuel,
		TotalFuel:     p.totalFuel,
	}
}

// LastFuelUsed reports the instruction budget consumed by the most recent
// call, or 0 when fuel metering is disabled.
func (p *Plugin) LastFuelUsed() int64 { return p.lastFuel }

// LastFailureClass reports the classification of the most recent call's
// outcome (FailNone after a successful call or before any call).
func (p *Plugin) LastFailureClass() FailureClass { return p.lastClass }

// Poisoned reports whether the last call aborted mid-execution — a trap,
// fuel exhaustion or deadline overrun — leaving the linear memory in an
// unknown intermediate state. Poisoned instances must not be handed to
// another caller; Pool.Put discards them.
func (p *Plugin) Poisoned() bool {
	switch p.lastClass {
	case FailTrap, FailFuel, FailDeadline:
		return true
	default:
		return false
	}
}

// NewPlugin instantiates mod under the given policy and environment.
// Failures are *InstantiateError.
func NewPlugin(mod *Module, policy Policy, env Env) (*Plugin, error) {
	p := &Plugin{mod: mod, policy: policy.withDefaults(), env: env}
	if p.policy.TierPromoteFuel != 0 {
		mod.SetTierPromotion(p.policy.TierPromoteFuel)
	}
	inst, err := p.instantiate()
	if err != nil {
		return nil, &InstantiateError{Err: err}
	}
	p.inst = inst
	return p, nil
}

func (p *Plugin) instantiate() (*wasm.Instance, error) {
	imports := wasm.Imports{"waran": p.abiModule()}
	for mod, fns := range p.env.HostFuncs {
		if mod == "waran" {
			return nil, errors.New(`wabi: Env.HostFuncs may not define module "waran"`)
		}
		imports[mod] = fns
	}
	inst, err := p.mod.cm.Instantiate(imports, wasm.Config{
		MaxMemoryPages: p.policy.MaxMemoryPages,
		MeterFuel:      p.policy.Fuel > 0,
		Tier:           p.policy.Tier,
	})
	if err != nil {
		return nil, fmt.Errorf("wabi: instantiate plugin: %w", err)
	}
	if inst.Memory() == nil {
		return nil, errors.New("wabi: plugin must define a linear memory")
	}
	inst.HostData = p
	if p.env.Profile != nil {
		inst.SetProfile(p.env.Profile, p.env.ProfileTag)
	}
	return inst, nil
}

// abiModule builds the "waran" import namespace bound to this Plugin.
func (p *Plugin) abiModule() map[string]*wasm.HostFunc {
	i32 := wasm.ValI32
	return map[string]*wasm.HostFunc{
		"input_length": {
			Name: "input_length",
			Type: wasm.FuncType{Results: []wasm.ValType{i32}},
			Fn: func(ctx *wasm.CallContext, args []uint64) ([]uint64, error) {
				return []uint64{uint64(uint32(len(p.input)))}, nil
			},
		},
		"input_read": {
			Name: "input_read",
			Type: wasm.FuncType{Params: []wasm.ValType{i32, i32, i32}, Results: []wasm.ValType{i32}},
			Fn: func(ctx *wasm.CallContext, args []uint64) ([]uint64, error) {
				dst, off, n := uint32(args[0]), uint32(args[1]), uint32(args[2])
				if off >= uint32(len(p.input)) {
					return []uint64{0}, nil
				}
				src := p.input[off:]
				if uint32(len(src)) > n {
					src = src[:n]
				}
				if err := ctx.Memory().Write(dst, src); err != nil {
					return nil, err
				}
				return []uint64{uint64(uint32(len(src)))}, nil
			},
		},
		"output_write": {
			Name: "output_write",
			Type: wasm.FuncType{Params: []wasm.ValType{i32, i32}},
			Fn: func(ctx *wasm.CallContext, args []uint64) ([]uint64, error) {
				ptr, n := uint32(args[0]), uint32(args[1])
				if int(n) > p.policy.MaxOutputBytes {
					return nil, fmt.Errorf("wabi: output of %d bytes exceeds limit %d", n, p.policy.MaxOutputBytes)
				}
				b, err := ctx.Memory().Read(ptr, n)
				if err != nil {
					return nil, err
				}
				p.output = b
				return nil, nil
			},
		},
		"error_set": {
			Name: "error_set",
			Type: wasm.FuncType{Params: []wasm.ValType{i32, i32}},
			Fn: func(ctx *wasm.CallContext, args []uint64) ([]uint64, error) {
				b, err := ctx.Memory().Read(uint32(args[0]), uint32(args[1]))
				if err != nil {
					return nil, err
				}
				p.guestErr = string(b)
				return nil, nil
			},
		},
		"log": {
			Name: "log",
			Type: wasm.FuncType{Params: []wasm.ValType{i32, i32}},
			Fn: func(ctx *wasm.CallContext, args []uint64) ([]uint64, error) {
				if p.env.OnLog == nil {
					return nil, nil
				}
				b, err := ctx.Memory().Read(uint32(args[0]), uint32(args[1]))
				if err != nil {
					return nil, err
				}
				p.env.OnLog(string(b))
				return nil, nil
			},
		},
	}
}

// HasEntry reports whether the plugin exports entry with the () -> i32
// signature.
func (p *Plugin) HasEntry(entry string) bool {
	ft, ok := p.inst.FuncType(entry)
	if !ok {
		return false
	}
	return len(ft.Params) == 0 && len(ft.Results) == 1 && ft.Results[0] == wasm.ValI32
}

// Instance exposes the underlying sandbox, for diagnostics and tests.
func (p *Plugin) Instance() *wasm.Instance { return p.inst }

// MemoryBytes returns the plugin's current linear memory size in bytes —
// the quantity plotted in Fig. 5c.
func (p *Plugin) MemoryBytes() int {
	if p.inst == nil || p.inst.Memory() == nil {
		return 0
	}
	return p.inst.Memory().Len()
}

// Call invokes the exported entry function with input, returning the bytes
// the guest wrote via output_write. All failure modes — traps, fuel
// exhaustion, non-zero return codes — surface as *CallError; the host and
// the plugin's module remain usable.
func (p *Plugin) Call(entry string, input []byte) ([]byte, error) {
	if len(input) > p.policy.MaxInputBytes {
		return nil, fmt.Errorf("wabi: input of %d bytes exceeds limit %d", len(input), p.policy.MaxInputBytes)
	}
	if p.policy.FreshInstance {
		inst, err := p.instantiate()
		if err != nil {
			p.lastClass = FailInstantiate
			return nil, &InstantiateError{Err: err}
		}
		p.inst = inst
		// The fresh instance's memory starts over; any region layout and
		// request shadow negotiated against the old one is stale.
		p.invalidateRegions()
	}
	p.input = input
	p.output = nil
	p.guestErr = ""
	p.lastClass = FailNone

	// Chaos injection point: a forced trap or stall replaces the guest call
	// entirely; fuel theft and output corruption pass through it.
	var act chaosAction
	var stall time.Duration
	if p.env.Chaos != nil {
		act, stall = p.env.Chaos.decide()
	}
	switch act {
	case chaosForceTrap:
		p.calls++
		p.faults++
		p.lastClass = FailTrap
		// For zero-copy plugins the forced trap models a guest dying midway
		// through writing its response region: scribble garbage over it so
		// a host that (wrongly) read the region anyway could never mistake
		// the half-written table for a decision.
		p.chaosScribbleRegions()
		return nil, &CallError{Entry: entry, Trap: &wasm.Trap{Code: wasm.TrapUnreachable}}
	case chaosStallCall:
		time.Sleep(stall)
		p.calls++
		p.faults++
		p.lastClass = FailDeadline
		return nil, &CallError{Entry: entry, Trap: &wasm.Trap{Code: wasm.TrapDeadlineExceeded}}
	}

	fuel := p.policy.Fuel
	if act == chaosStealFuel {
		if fuel > stolenFuelBudget {
			fuel = stolenFuelBudget
		} else if fuel == 0 {
			// Metering is off; the theft degenerates to a forced fuel trap.
			p.calls++
			p.faults++
			p.lastClass = FailFuel
			return nil, &CallError{Entry: entry, Trap: &wasm.Trap{Code: wasm.TrapFuelExhausted}}
		}
	}
	if p.policy.Fuel > 0 {
		p.inst.SetFuel(fuel)
		if p.policy.CallTimeout > 0 {
			p.inst.SetDeadline(time.Now().Add(p.policy.CallTimeout))
		}
	}

	start := time.Now()
	res, err := p.inst.Call(entry)
	p.lastDur = time.Since(start)
	p.totalDur += p.lastDur
	p.calls++
	if p.policy.Fuel > 0 {
		p.lastFuel = fuel - p.inst.Fuel()
		p.totalFuel += p.lastFuel
		p.mod.observeFuel(p.lastFuel)
	}

	if err != nil {
		p.faults++
		var trap *wasm.Trap
		if errors.As(err, &trap) {
			ce := &CallError{Entry: entry, Trap: trap, Message: p.guestErr}
			p.lastClass = ce.FailureClass()
			return nil, ce
		}
		p.lastClass = FailUnknown
		return nil, err
	}
	if code := int32(uint32(res[0])); code != 0 {
		p.faults++
		p.lastClass = FailGuestError
		return nil, &CallError{Entry: entry, Code: code, Message: p.guestErr}
	}
	if act == chaosCorruptOutput {
		p.output = corruptOutput(p.output)
		p.chaosCorruptRegions()
	}
	return p.output, nil
}

// Reset discards the current instance and creates a fresh one, wiping all
// guest state. Used when quarantining plugins after faults. Any negotiated
// zero-copy region layout dies with the old instance: the fresh memory may
// lay its heap out differently, so the next zero-copy call re-negotiates.
func (p *Plugin) Reset() error {
	inst, err := p.instantiate()
	if err != nil {
		return err
	}
	p.inst = inst
	p.invalidateRegions()
	return nil
}

package wabi

import (
	"errors"
	"testing"
	"time"
)

func chaosPlugin(t *testing.T, cfg ChaosConfig, policy Policy) (*Plugin, *Chaos) {
	t.Helper()
	ch := NewChaos(cfg)
	return mustPlugin(t, echoWAT, policy, Env{Chaos: ch}), ch
}

func TestChaosForcedTrap(t *testing.T) {
	p, ch := chaosPlugin(t, ChaosConfig{TrapProb: 1}, Policy{})
	for i := 0; i < 5; i++ {
		_, err := p.Call("run", []byte("x"))
		if got := ClassOf(err); got != FailTrap {
			t.Fatalf("call %d: class = %v, want %v (err=%v)", i, got, FailTrap, err)
		}
		if !p.Poisoned() {
			t.Fatal("forced trap did not poison the instance")
		}
	}
	s := ch.Stats()
	if s.Traps != 5 || s.Total() != 5 || s.Calls != 5 {
		t.Fatalf("stats = %+v", s)
	}
	if st := p.Stats(); st.Calls != 5 || st.Faults != 5 {
		t.Fatalf("plugin stats = %+v", st)
	}
}

func TestChaosFuelTheftWithMetering(t *testing.T) {
	p, ch := chaosPlugin(t, ChaosConfig{FuelTheftProb: 1}, Policy{Fuel: 10_000_000})
	_, err := p.Call("run", []byte("payload"))
	if got := ClassOf(err); got != FailFuel {
		t.Fatalf("class = %v, want %v (err=%v)", got, FailFuel, err)
	}
	if !p.Poisoned() {
		t.Fatal("fuel theft did not poison the instance")
	}
	if ch.Stats().FuelThefts != 1 {
		t.Fatalf("stats = %+v", ch.Stats())
	}
}

func TestChaosFuelTheftWithoutMetering(t *testing.T) {
	p, _ := chaosPlugin(t, ChaosConfig{FuelTheftProb: 1}, Policy{})
	_, err := p.Call("run", nil)
	if got := ClassOf(err); got != FailFuel {
		t.Fatalf("class = %v, want %v (err=%v)", got, FailFuel, err)
	}
}

func TestChaosStall(t *testing.T) {
	p, ch := chaosPlugin(t, ChaosConfig{StallProb: 1, Stall: 5 * time.Millisecond}, Policy{})
	start := time.Now()
	_, err := p.Call("run", nil)
	if got := ClassOf(err); got != FailDeadline {
		t.Fatalf("class = %v, want %v (err=%v)", got, FailDeadline, err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("stall only lasted %v", elapsed)
	}
	if ch.Stats().Stalls != 1 {
		t.Fatalf("stats = %+v", ch.Stats())
	}
}

func TestChaosCorruptOutput(t *testing.T) {
	p, ch := chaosPlugin(t, ChaosConfig{CorruptProb: 1}, Policy{})
	out, err := p.Call("run", []byte("abcd"))
	if err != nil {
		t.Fatalf("corruption must not error at the wabi layer: %v", err)
	}
	if string(out) != "abc" {
		t.Fatalf("out = %q, want truncated %q", out, "abc")
	}
	// Empty output is replaced with a non-empty garbage blob so the decode
	// layer above still has something malformed to choke on.
	out, err = p.Call("run", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("empty output not corrupted")
	}
	if ch.Stats().Corruptions != 2 {
		t.Fatalf("stats = %+v", ch.Stats())
	}
}

func TestChaosActivateAfter(t *testing.T) {
	p, _ := chaosPlugin(t, ChaosConfig{TrapProb: 1, ActivateAfter: 3}, Policy{})
	for i := 0; i < 3; i++ {
		if _, err := p.Call("run", []byte("ok")); err != nil {
			t.Fatalf("sleeper fired during grace call %d: %v", i, err)
		}
	}
	_, err := p.Call("run", []byte("ok"))
	if got := ClassOf(err); got != FailTrap {
		t.Fatalf("post-activation class = %v, want %v", got, FailTrap)
	}
}

func TestChaosDeterministicSchedule(t *testing.T) {
	run := func() []FailureClass {
		p, _ := chaosPlugin(t, ChaosConfig{Seed: 42, TrapProb: 0.3, CorruptProb: 0.3}, Policy{})
		var classes []FailureClass
		for i := 0; i < 64; i++ {
			_, err := p.Call("run", []byte("z"))
			classes = append(classes, ClassOf(err))
		}
		return classes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at call %d: %v vs %v", i, a[i], b[i])
		}
	}
	var faults int
	for _, c := range a {
		if c != FailNone {
			faults++
		}
	}
	if faults == 0 || faults == len(a) {
		t.Fatalf("degenerate schedule: %d/%d faults", faults, len(a))
	}
}

// TestChaosThroughPool checks the harness composes with Pool: a shared Env
// rolls one schedule across all instances, and poisoned ones are discarded.
func TestChaosThroughPool(t *testing.T) {
	mod, err := CompileWAT(echoWAT)
	if err != nil {
		t.Fatal(err)
	}
	ch := NewChaos(ChaosConfig{Seed: 7, TrapProb: 0.5})
	pool := NewPool(mod, Policy{}, Env{Chaos: ch}, 2)
	var traps, oks int
	for i := 0; i < 100; i++ {
		_, err := pool.Call("run", []byte("m"))
		switch ClassOf(err) {
		case FailNone:
			oks++
		case FailTrap:
			traps++
		default:
			t.Fatalf("call %d: unexpected error %v", i, err)
		}
	}
	if got := ch.Stats().Calls; got != 100 {
		t.Fatalf("chaos saw %d calls, want 100", got)
	}
	if uint64(traps) != ch.Stats().Traps {
		t.Fatalf("observed %d traps, chaos injected %d", traps, ch.Stats().Traps)
	}
	if traps == 0 || oks == 0 {
		t.Fatalf("degenerate run: traps=%d oks=%d", traps, oks)
	}
	if st := pool.Stats(); st.Discards != uint64(traps) {
		t.Fatalf("discards = %d, want %d (every trapped instance discarded)", st.Discards, traps)
	}
}

func TestChaosZeroConfigInjectsNothing(t *testing.T) {
	p, ch := chaosPlugin(t, ChaosConfig{}, Policy{})
	for i := 0; i < 20; i++ {
		if _, err := p.Call("run", []byte("q")); err != nil {
			t.Fatal(err)
		}
	}
	if ch.Stats().Total() != 0 {
		t.Fatalf("zero config injected faults: %+v", ch.Stats())
	}
}

func TestChaosErrorsAreCallErrors(t *testing.T) {
	p, _ := chaosPlugin(t, ChaosConfig{TrapProb: 1}, Policy{})
	_, err := p.Call("run", nil)
	var ce *CallError
	if !errors.As(err, &ce) || ce.Trap == nil {
		t.Fatalf("injected fault is not a trap-carrying CallError: %v", err)
	}
}

package wabi

import (
	"testing"
	"time"

	"waran/internal/wasm"
	"waran/internal/wat"
)

// FuzzClassify fuzzes raw wasm bodies through the full plugin lifecycle and
// checks the taxonomy invariant the supervisor depends on: every failure —
// compile, instantiate, or call — maps to exactly one stable FailureClass,
// and a call failure is never left unclassified (FailNone/FailUnknown). The
// breaker's per-class ledger is only exact if this holds for arbitrary
// hostile bytecode, not just the built-in schedulers. `make check` runs a
// 10 s smoke of this; longer campaigns via
// go test -fuzz=FuzzClassify ./internal/wabi.
func FuzzClassify(f *testing.F) {
	seeds := []string{
		`(module (func (export "run") (result i32) i32.const 0))`,
		`(module (func (export "run") (result i32) unreachable))`,
		`(module (func (export "run") (result i32) (loop $l br $l) i32.const 0))`,
		`(module (func (export "run") (result i32) i32.const 7))`,
	}
	for _, s := range seeds {
		bin, err := wat.CompileToBinary(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(bin)
	}
	f.Add([]byte{0x00, 0x61, 0x73, 0x6D, 0x01, 0x00, 0x00, 0x00}) // empty module
	f.Add([]byte("not wasm at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		mod, err := CompileWasm(data)
		if err != nil {
			if got := ClassOf(err); got != FailInstantiate {
				t.Fatalf("compile error classified %v, want %v: %v", got, FailInstantiate, err)
			}
			return
		}
		p, err := NewPlugin(mod, Policy{
			MaxMemoryPages: 4,
			Fuel:           20_000,
			CallTimeout:    50 * time.Millisecond,
		}, Env{})
		if err != nil {
			if got := ClassOf(err); got != FailInstantiate {
				t.Fatalf("instantiate error classified %v, want %v: %v", got, FailInstantiate, err)
			}
			return
		}
		for _, e := range p.Instance().Module().Exports {
			if e.Kind != wasm.ExternFunc || !p.HasEntry(e.Name) {
				continue
			}
			_, err := p.Call(e.Name, []byte{1, 2, 3})
			if err == nil {
				if got := p.LastFailureClass(); got != FailNone {
					t.Fatalf("successful call left class %v, want %v", got, FailNone)
				}
				continue
			}
			got := ClassOf(err)
			switch got {
			case FailTrap, FailFuel, FailDeadline, FailGuestError:
				// A fuzzed guest may only fail in ways the supervisor meters.
			default:
				t.Fatalf("call error classified %v, want a call-failure class: %v", got, err)
			}
			if last := p.LastFailureClass(); last != got {
				t.Fatalf("LastFailureClass %v disagrees with ClassOf %v", last, got)
			}
		}
	})
}

package wabi

import (
	"fmt"
	"sync"

	"waran/internal/obs"
)

// Pool hands out Plugin instances of one compiled module to concurrent
// callers. A Plugin is single-threaded by design (one linear memory, one
// I/O buffer pair); a multi-cell gNB or a RIC serving several E2
// associations checks instances out per call instead of serializing on one
// sandbox. Instances are created lazily up to Max and reused afterwards.
type Pool struct {
	mod    *Module
	policy Policy
	env    Env

	mu      sync.Mutex
	idle    []*Plugin
	created int
	max     int
	waiters []chan *Plugin

	// Occupancy counters, read through Stats(); guarded by mu.
	gets        uint64
	waits       uint64
	createFails uint64
	discards    uint64

	// newFn creates one instance; overridable in tests to exercise
	// creation-failure orderings deterministically.
	newFn func() (*Plugin, error)
}

// NewPool creates a pool bounded to max concurrent instances (0 means 16).
func NewPool(mod *Module, policy Policy, env Env, max int) *Pool {
	if max <= 0 {
		max = 16
	}
	p := &Pool{mod: mod, policy: policy, env: env, max: max}
	p.newFn = func() (*Plugin, error) { return NewPlugin(p.mod, p.policy, p.env) }
	return p
}

// Get checks out an instance, instantiating one if under the limit and
// blocking when the pool is exhausted.
func (p *Pool) Get() (*Plugin, error) {
	p.mu.Lock()
	p.gets++
	p.mu.Unlock()
	for {
		p.mu.Lock()
		if n := len(p.idle); n > 0 {
			pl := p.idle[n-1]
			p.idle = p.idle[:n-1]
			p.mu.Unlock()
			return pl, nil
		}
		if p.created < p.max {
			p.created++
			newFn := p.newFn
			p.mu.Unlock()
			pl, err := newFn()
			if err != nil {
				p.mu.Lock()
				p.created--
				p.createFails++
				// The creation slot just freed. A waiter may have queued
				// while this Get held the last slot; wake one so it retries
				// instead of waiting for a Put that may never come.
				if len(p.waiters) > 0 {
					ch := p.waiters[0]
					p.waiters = p.waiters[1:]
					ch <- nil
				}
				p.mu.Unlock()
				return nil, err
			}
			return pl, nil
		}
		// Exhausted: wait for a Put (instance delivered) or a failed
		// creation (nil delivered; loop and retry the slot).
		ch := make(chan *Plugin, 1)
		p.waiters = append(p.waiters, ch)
		p.waits++
		p.mu.Unlock()
		if pl := <-ch; pl != nil {
			return pl, nil
		}
	}
}

// Put returns an instance to the pool. Instances whose last call aborted
// mid-execution (trap, fuel exhaustion, deadline) are discarded instead of
// recycled: their linear memory is in an unknown intermediate state and must
// never be handed to the next caller. The creation slot is released so a
// future Get instantiates a fresh, zeroed replacement. The discarded
// wrapper's cached zero-copy region layout is invalidated with it — a fresh
// instance's heap starts over, so its region pointers must be re-negotiated
// rather than inherited from the poisoned predecessor (regression:
// TestPoolZeroCopyTrapThenReuse).
func (p *Pool) Put(pl *Plugin) {
	if pl == nil {
		return
	}
	if pl.Poisoned() {
		pl.invalidateRegions()
		p.mu.Lock()
		p.created--
		p.discards++
		// A waiter may be parked; wake one with nil so it retries the freed
		// creation slot instead of waiting for a Put that never comes.
		if len(p.waiters) > 0 {
			ch := p.waiters[0]
			p.waiters = p.waiters[1:]
			ch <- nil
		}
		p.mu.Unlock()
		return
	}
	p.mu.Lock()
	if len(p.waiters) > 0 {
		ch := p.waiters[0]
		p.waiters = p.waiters[1:]
		p.mu.Unlock()
		ch <- pl
		return
	}
	p.idle = append(p.idle, pl)
	p.mu.Unlock()
}

// Call is the checkout-call-return convenience wrapper.
func (p *Pool) Call(entry string, input []byte) ([]byte, error) {
	pl, err := p.Get()
	if err != nil {
		return nil, err
	}
	defer p.Put(pl)
	return pl.Call(entry, input)
}

// PoolStats is the flat snapshot of a Pool: occupancy plus the checkout
// counters the observability layer exposes.
type PoolStats struct {
	Created     int    `json:"created"`
	Idle        int    `json:"idle"`
	Max         int    `json:"max"`
	Gets        uint64 `json:"gets"`
	Waits       uint64 `json:"waits"`
	CreateFails uint64 `json:"create_fails"`
	Discards    uint64 `json:"discards"`
}

// Stats returns current pool accounting.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Created:     p.created,
		Idle:        len(p.idle),
		Max:         p.max,
		Gets:        p.gets,
		Waits:       p.waits,
		CreateFails: p.createFails,
		Discards:    p.discards,
	}
}

// Register exposes the pool on reg under waran_wabi_pool_* with the given
// labels (typically the cell or slice the pool serves).
func (p *Pool) Register(reg *obs.Registry, labels ...obs.Label) {
	reg.MustRegister("waran_wabi_pool", "plugin instance pool occupancy and checkout counters", obs.Func{
		Kind: obs.KindUntyped,
		Collect: func() []obs.Sample {
			s := p.Stats()
			return []obs.Sample{
				{Suffix: "_created", Value: float64(s.Created)},
				{Suffix: "_idle", Value: float64(s.Idle)},
				{Suffix: "_max", Value: float64(s.Max)},
				{Suffix: "_gets_total", Value: float64(s.Gets)},
				{Suffix: "_waits_total", Value: float64(s.Waits)},
				{Suffix: "_create_fails_total", Value: float64(s.CreateFails)},
				{Suffix: "_discards_total", Value: float64(s.Discards)},
			}
		},
		JSON: func() any { return p.Stats() },
	}, labels...)
}

// String implements fmt.Stringer.
func (p *Pool) String() string {
	s := p.Stats()
	return fmt.Sprintf("wabi.Pool{created=%d idle=%d max=%d}", s.Created, s.Idle, s.Max)
}

package wabi

import (
	"errors"
	"fmt"
	"testing"

	"waran/internal/wasm"
)

// taintWAT writes a marker into linear memory and then traps ("taint"), or
// echoes the first 4 bytes of memory ("peek") — the probe pair for
// poisoned-instance recycling.
const taintWAT = `(module
  (import "waran" "output_write" (func $output_write (param i32 i32)))
  (memory (export "memory") 1)
  (func (export "taint") (result i32)
    (i32.store (i32.const 0) (i32.const 0xbadc0de))
    (unreachable))
  (func (export "peek") (result i32)
    (call $output_write (i32.const 0) (i32.const 4))
    (i32.const 0))
)`

func TestClassOfTaxonomy(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want FailureClass
	}{
		{"nil", nil, FailNone},
		{"unreachable-trap", &CallError{Entry: "run", Trap: &wasm.Trap{Code: wasm.TrapUnreachable}}, FailTrap},
		{"oob-trap", &CallError{Entry: "run", Trap: &wasm.Trap{Code: wasm.TrapOutOfBoundsMemory}}, FailTrap},
		{"host-trap", &CallError{Entry: "run", Trap: &wasm.Trap{Code: wasm.TrapHostError}}, FailTrap},
		{"fuel", &CallError{Entry: "run", Trap: &wasm.Trap{Code: wasm.TrapFuelExhausted}}, FailFuel},
		{"deadline", &CallError{Entry: "run", Trap: &wasm.Trap{Code: wasm.TrapDeadlineExceeded}}, FailDeadline},
		{"guest-code", &CallError{Entry: "run", Code: 3}, FailGuestError},
		{"instantiate", &InstantiateError{Err: errors.New("no memory")}, FailInstantiate},
		{"bare-trap", &wasm.Trap{Code: wasm.TrapIntegerDivideByZero}, FailTrap},
		{"unclassed", errors.New("disk on fire"), FailUnknown},
	}
	for _, tc := range cases {
		if got := ClassOf(tc.err); got != tc.want {
			t.Errorf("%s: ClassOf = %v, want %v", tc.name, got, tc.want)
		}
		if tc.err == nil {
			continue
		}
		// Wrapping with %w must preserve the class through errors.As.
		wrapped := fmt.Errorf("sched: plugin %q: %w", "p", tc.err)
		if got := ClassOf(wrapped); got != tc.want {
			t.Errorf("%s: ClassOf(wrapped) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestFailureClassLabelsStable(t *testing.T) {
	want := map[FailureClass]string{
		FailNone:        "none",
		FailTrap:        "trap",
		FailFuel:        "fuel-exhausted",
		FailDeadline:    "deadline-overrun",
		FailBadOutput:   "bad-output",
		FailInstantiate: "instantiation-failure",
		FailGuestError:  "guest-error",
		FailUnknown:     "unknown",
	}
	for c, label := range want {
		if c.String() != label {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), label)
		}
	}
	seen := map[FailureClass]bool{}
	for _, c := range FailureClasses() {
		if c == FailNone {
			t.Error("FailureClasses includes FailNone")
		}
		if seen[c] {
			t.Errorf("FailureClasses lists %v twice", c)
		}
		seen[c] = true
	}
	if len(seen) != len(want)-1 {
		t.Fatalf("FailureClasses covers %d classes, want %d", len(seen), len(want)-1)
	}
}

func TestCompileFailureIsInstantiateClass(t *testing.T) {
	_, err := CompileWAT(`(module (garbage))`)
	if err == nil {
		t.Fatal("garbage WAT compiled")
	}
	if got := ClassOf(err); got != FailInstantiate {
		t.Fatalf("compile error class = %v, want %v", got, FailInstantiate)
	}
	mod, err := CompileWAT(`(module (func (export "run") (result i32) i32.const 0))`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewPlugin(mod, Policy{}, Env{})
	if got := ClassOf(err); got != FailInstantiate {
		t.Fatalf("no-memory instantiate class = %v, want %v", got, FailInstantiate)
	}
}

func TestLastFailureClassAndPoisoned(t *testing.T) {
	// Success: class none, not poisoned.
	echo := mustPlugin(t, echoWAT, Policy{}, Env{})
	if _, err := echo.Call("run", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if echo.LastFailureClass() != FailNone || echo.Poisoned() {
		t.Fatalf("after success: class=%v poisoned=%v", echo.LastFailureClass(), echo.Poisoned())
	}

	// Trap: poisoned.
	taint := mustPlugin(t, taintWAT, Policy{}, Env{})
	if _, err := taint.Call("taint", nil); err == nil {
		t.Fatal("taint did not trap")
	}
	if taint.LastFailureClass() != FailTrap || !taint.Poisoned() {
		t.Fatalf("after trap: class=%v poisoned=%v", taint.LastFailureClass(), taint.Poisoned())
	}

	// Fuel exhaustion: poisoned.
	spin := mustPlugin(t, `(module (memory (export "memory") 1)
	  (func (export "run") (result i32) (loop $s br $s) (i32.const 0)))`,
		Policy{Fuel: 5000}, Env{})
	if _, err := spin.Call("run", nil); err == nil {
		t.Fatal("spin did not exhaust fuel")
	}
	if spin.LastFailureClass() != FailFuel || !spin.Poisoned() {
		t.Fatalf("after fuel: class=%v poisoned=%v", spin.LastFailureClass(), spin.Poisoned())
	}

	// Guest-declared error: clean completion, not poisoned.
	guest := mustPlugin(t, `(module (memory (export "memory") 1)
	  (func (export "run") (result i32) (i32.const 7)))`, Policy{}, Env{})
	if _, err := guest.Call("run", nil); err == nil {
		t.Fatal("guest error not surfaced")
	}
	if guest.LastFailureClass() != FailGuestError || guest.Poisoned() {
		t.Fatalf("after guest error: class=%v poisoned=%v", guest.LastFailureClass(), guest.Poisoned())
	}

	// A success after a failure clears the class.
	if _, err := guest.Call("run", nil); err == nil {
		t.Fatal("guest error not surfaced")
	}
	if _, err := echo.Call("run", nil); err != nil {
		t.Fatal(err)
	}
	if echo.LastFailureClass() != FailNone {
		t.Fatalf("class sticky after success: %v", echo.LastFailureClass())
	}
}

// TestPoolDiscardsPoisonedInstance is the regression test for recycling an
// instance whose last call trapped: Put must discard it, and the next Get
// must hand back a fresh instance with zeroed linear memory.
func TestPoolDiscardsPoisonedInstance(t *testing.T) {
	mod, err := CompileWAT(taintWAT)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(mod, Policy{}, Env{}, 2)

	a, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Call("taint", nil); err == nil {
		t.Fatal("taint did not trap")
	}
	pool.Put(a) // must discard, not recycle

	st := pool.Stats()
	if st.Discards != 1 || st.Idle != 0 || st.Created != 0 {
		t.Fatalf("after poisoned Put: discards=%d idle=%d created=%d", st.Discards, st.Idle, st.Created)
	}

	b, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if b == a {
		t.Fatal("poisoned instance recycled")
	}
	out, err := b.Call("peek", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != 0 {
			t.Fatalf("fresh instance memory[%d] = %#x, want 0 (tainted memory leaked)", i, v)
		}
	}
	pool.Put(b)
	if st := pool.Stats(); st.Idle != 1 || st.Created != 1 {
		t.Fatalf("healthy instance not recycled: idle=%d created=%d", st.Idle, st.Created)
	}
}

// TestPoolDiscardWakesWaiter pins the waiter handoff: when a poisoned
// instance is discarded while a Get is parked, the waiter must be woken to
// claim the freed creation slot rather than waiting forever.
func TestPoolDiscardWakesWaiter(t *testing.T) {
	mod, err := CompileWAT(taintWAT)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(mod, Policy{}, Env{}, 1)
	a, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Call("taint", nil); err == nil {
		t.Fatal("taint did not trap")
	}

	got := make(chan *Plugin, 1)
	go func() {
		pl, err := pool.Get()
		if err != nil {
			t.Error(err)
		}
		got <- pl
	}()
	// Wait for the goroutine to park as a waiter, then discard.
	for {
		pool.mu.Lock()
		parked := len(pool.waiters) > 0
		pool.mu.Unlock()
		if parked {
			break
		}
	}
	pool.Put(a)
	b := <-got
	if b == nil || b == a {
		t.Fatalf("waiter got %v after discard", b)
	}
	if _, err := b.Call("peek", nil); err != nil {
		t.Fatal(err)
	}
}

package wabi

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"waran/internal/wasm"
)

// busyWAT spins for (input length) iterations, then succeeds.
const busyWAT = `(module
  (import "waran" "input_length" (func $input_length (result i32)))
  (import "waran" "output_write" (func $output_write (param i32 i32)))
  (memory (export "memory") 1)
  (func (export "run") (result i32)
    (local $i i32) (local $n i32)
    (local.set $n (call $input_length))
    (block $done (loop $top
      (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
      (local.set $i (i32.add (local.get $i) (i32.const 1)))
      (br $top)))
    (call $output_write (i32.const 0) (i32.const 0))
    (i32.const 0)))`

func TestBudgetPoolWeightedShares(t *testing.T) {
	mkPlugin := func() *Plugin { return mustPlugin(t, busyWAT, Policy{Fuel: 1}, Env{}) }
	heavy, light := mkPlugin(), mkPlugin()
	pool := NewBudgetPool(1_000_000)
	if err := pool.Register("heavy", heavy, 3); err != nil {
		t.Fatal(err)
	}
	if err := pool.Register("light", light, 1); err != nil {
		t.Fatal(err)
	}
	pool.BeginSlot()
	if s, _ := pool.Share("heavy"); s != 750_000 {
		t.Fatalf("heavy share = %d", s)
	}
	if s, _ := pool.Share("light"); s != 250_000 {
		t.Fatalf("light share = %d", s)
	}

	// A workload needing ~600k instructions fits the heavy share but
	// exhausts the light one.
	work := make([]byte, 50_000) // ~9 instructions per loop iteration => ~450k total
	if _, err := heavy.Call("run", work); err != nil {
		t.Fatalf("heavy plugin should fit its share: %v", err)
	}
	_, err := light.Call("run", work)
	var ce *CallError
	if !errors.As(err, &ce) || ce.Trap == nil || ce.Trap.Code != wasm.TrapFuelExhausted {
		t.Fatalf("light plugin should exhaust its share, got %v", err)
	}

	usage := pool.EndSlot()
	if usage["heavy"] == 0 || usage["light"] == 0 {
		t.Fatalf("usage accounting: %v", usage)
	}
	if usage["light"] > 260_000 {
		t.Fatalf("light used %d instructions, above its 250k share", usage["light"])
	}
}

func TestBudgetPoolValidation(t *testing.T) {
	p := mustPlugin(t, busyWAT, Policy{Fuel: 100}, Env{})
	pool := NewBudgetPool(1000)
	if err := pool.Register("a", p, 0); err == nil {
		t.Fatal("zero weight accepted")
	}
	unmetered := mustPlugin(t, busyWAT, Policy{}, Env{})
	if err := pool.Register("a", unmetered, 1); !errors.Is(err, ErrNotMetered) {
		t.Fatalf("got %v", err)
	}
	if err := pool.Register("a", p, 1); err != nil {
		t.Fatal(err)
	}
	if err := pool.Register("a", p, 1); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if got := pool.Members(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("members = %v", got)
	}
	pool.Unregister("a")
	if len(pool.Members()) != 0 {
		t.Fatal("unregister failed")
	}
	if _, ok := pool.Share("a"); ok {
		t.Fatal("share of removed member")
	}
}

func TestBudgetPoolRebalancesOnMembershipChange(t *testing.T) {
	a := mustPlugin(t, busyWAT, Policy{Fuel: 1}, Env{})
	b := mustPlugin(t, busyWAT, Policy{Fuel: 1}, Env{})
	pool := NewBudgetPool(1000)
	if err := pool.Register("a", a, 1); err != nil {
		t.Fatal(err)
	}
	pool.BeginSlot()
	if s, _ := pool.Share("a"); s != 1000 {
		t.Fatalf("solo share = %d", s)
	}
	if err := pool.Register("b", b, 1); err != nil {
		t.Fatal(err)
	}
	pool.BeginSlot()
	sa, _ := pool.Share("a")
	sb, _ := pool.Share("b")
	if sa != 500 || sb != 500 {
		t.Fatalf("shares after join = %d/%d", sa, sb)
	}
	pool.SetTotal(2000)
	pool.BeginSlot()
	if sa, _ := pool.Share("a"); sa != 1000 {
		t.Fatalf("share after SetTotal = %d", sa)
	}
	if pool.Total() != 2000 {
		t.Fatalf("total = %d", pool.Total())
	}
}

// Property: shares are conserved — the sum of assigned per-call budgets
// never exceeds the pool total (plus one unit of rounding per member).
func TestQuickBudgetShares(t *testing.T) {
	mod, err := CompileWAT(busyWAT)
	if err != nil {
		t.Fatal(err)
	}
	f := func(rawWeights []uint8, rawTotal uint32) bool {
		total := int64(rawTotal%1_000_000) + 1
		pool := NewBudgetPool(total)
		n := 0
		for i, w := range rawWeights {
			if n >= 6 {
				break
			}
			weight := float64(w%16) + 1
			p, err := NewPlugin(mod, Policy{Fuel: 1}, Env{})
			if err != nil {
				return false
			}
			if err := pool.Register(fmt.Sprintf("m%d", i), p, weight); err != nil {
				return false
			}
			n++
		}
		if n == 0 {
			return true
		}
		pool.BeginSlot()
		var sum int64
		for _, name := range pool.Members() {
			s, ok := pool.Share(name)
			if !ok || s < 1 {
				return false
			}
			sum += s
		}
		return sum <= total+int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

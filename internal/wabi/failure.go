package wabi

import (
	"errors"

	"waran/internal/wasm"
)

// FailureClass is the stable taxonomy of plugin failure modes. Every error a
// plugin invocation can produce — at compile, instantiation or call time, in
// this package or in the scheduling ABI above it — maps to exactly one class,
// so supervisors can meter, threshold and alert per failure mode instead of
// string-matching undifferentiated errors. The set is append-only: consumers
// (circuit breakers, metrics, experiment reports) key on it.
type FailureClass uint8

// Failure classes, in severity-neutral registration order.
const (
	// FailNone classifies a nil error: the call succeeded.
	FailNone FailureClass = iota
	// FailTrap is a sandbox trap other than resource exhaustion:
	// unreachable, out-of-bounds access, divide by zero, stack overflow,
	// indirect-call mismatch, or a host function fault.
	FailTrap
	// FailFuel is per-call instruction-budget exhaustion (infinite loops,
	// runaway computation) converted to a deterministic trap by the meter.
	FailFuel
	// FailDeadline is the wall-clock bound tripping inside the interpreter —
	// the plugin was on course to blow the slot deadline.
	FailDeadline
	// FailBadOutput is a structurally complete call whose result the host
	// rejected: malformed response bytes, out-of-bounds or overlapping
	// allocation regions, over-budget grants.
	FailBadOutput
	// FailInstantiate covers everything that prevents a runnable instance:
	// bytecode that fails decode/validate/flatten, missing exports, memory
	// configuration the policy refuses.
	FailInstantiate
	// FailGuestError is a plugin-reported failure: the entry function
	// returned a non-zero code (optionally with an error_set message). The
	// sandbox completed cleanly; the plugin itself declined.
	FailGuestError
	// FailUnknown is the catch-all for errors outside the plugin taxonomy
	// (host misuse, I/O). Supervisors treat it as a failure; the chaos fuzz
	// target asserts plugin-originated failures never land here.
	FailUnknown
)

// String returns the stable label used in metrics and experiment JSON.
func (c FailureClass) String() string {
	switch c {
	case FailNone:
		return "none"
	case FailTrap:
		return "trap"
	case FailFuel:
		return "fuel-exhausted"
	case FailDeadline:
		return "deadline-overrun"
	case FailBadOutput:
		return "bad-output"
	case FailInstantiate:
		return "instantiation-failure"
	case FailGuestError:
		return "guest-error"
	default:
		return "unknown"
	}
}

// FailureClasses lists every non-nil class in stable order, for metric
// registration and report rendering loops.
func FailureClasses() []FailureClass {
	return []FailureClass{
		FailTrap, FailFuel, FailDeadline, FailBadOutput,
		FailInstantiate, FailGuestError, FailUnknown,
	}
}

// ClassedError is implemented by errors that know their own failure class.
// wabi's CallError and InstantiateError implement it, as does the scheduling
// ABI's BadOutputError; wrapping with fmt.Errorf("...: %w", err) preserves
// the class through errors.As.
type ClassedError interface {
	error
	FailureClass() FailureClass
}

// ClassOf classifies any error from the plugin plane into its FailureClass.
// nil maps to FailNone; errors carrying no class map to FailUnknown.
func ClassOf(err error) FailureClass {
	if err == nil {
		return FailNone
	}
	var ce ClassedError
	if errors.As(err, &ce) {
		return ce.FailureClass()
	}
	var trap *wasm.Trap
	if errors.As(err, &trap) {
		return classOfTrap(trap)
	}
	return FailUnknown
}

func classOfTrap(t *wasm.Trap) FailureClass {
	switch t.Code {
	case wasm.TrapFuelExhausted:
		return FailFuel
	case wasm.TrapDeadlineExceeded:
		return FailDeadline
	default:
		return FailTrap
	}
}

// FailureClass implements ClassedError: traps split into trap / fuel /
// deadline by trap code; a non-zero entry return is a guest error.
func (e *CallError) FailureClass() FailureClass {
	if e.Trap != nil {
		return classOfTrap(e.Trap)
	}
	return FailGuestError
}

// InstantiateError marks failures to produce a runnable plugin instance —
// compile rejections, import/export mismatches, memory policy violations.
type InstantiateError struct {
	Err error
}

// Error implements the error interface.
func (e *InstantiateError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying cause.
func (e *InstantiateError) Unwrap() error { return e.Err }

// FailureClass implements ClassedError.
func (e *InstantiateError) FailureClass() FailureClass { return FailInstantiate }

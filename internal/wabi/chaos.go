package wabi

import (
	"math/rand"
	"sync"
	"time"
)

// stolenFuelBudget is what a fuel-theft fault leaves the guest: enough to
// enter the entry function, never enough to finish a slot's work, so the
// meter raises a genuine TrapFuelExhausted.
const stolenFuelBudget = 2

// ChaosConfig is a seeded schedule of plugin-plane faults — the wasm-layer
// counterpart of e2.FaultConfig. The zero value injects nothing. All
// probabilities are evaluated independently per Call in the order trap,
// fuel theft, stall, corrupt; the same Seed over the same call sequence
// reproduces the same schedule, so supervisor and containment behaviour is
// testable without writing hostile bytecode for every failure mode.
type ChaosConfig struct {
	// Seed selects the deterministic schedule (0 behaves as 1).
	Seed int64

	// TrapProb aborts the call before the guest runs, surfacing an
	// unreachable trap — the injected analogue of a null deref or OOB
	// access anywhere in the plugin.
	TrapProb float64

	// FuelTheftProb strands the instance with stolenFuelBudget units so the
	// meter trips mid-entry: a runaway-computation fault without the cost of
	// actually looping. With metering disabled it degenerates to a forced
	// fuel-exhausted error.
	FuelTheftProb float64

	// StallProb sleeps Stall and then surfaces a deadline trap — a plugin
	// that was on course to blow the slot budget. Stall defaults to 2ms
	// (double the slot) when StallProb is set.
	StallProb float64
	Stall     time.Duration

	// CorruptProb lets the call complete and then mangles the output bytes,
	// so the fault is only catchable by the decode/validate layer above —
	// the "lying plugin" case.
	CorruptProb float64

	// ActivateAfter, when > 0, makes the schedule inert for the first N
	// calls. This builds sleeper candidates: plugins that behave during
	// shadow validation and turn hostile inside the probation window.
	ActivateAfter int
}

// ChaosStats counts injected faults by class.
type ChaosStats struct {
	Calls       uint64 `json:"calls"`
	Traps       uint64 `json:"traps"`
	FuelThefts  uint64 `json:"fuel_thefts"`
	Stalls      uint64 `json:"stalls"`
	Corruptions uint64 `json:"corruptions"`
}

// Total sums all injected faults.
func (s ChaosStats) Total() uint64 {
	return s.Traps + s.FuelThefts + s.Stalls + s.Corruptions
}

// Chaos deterministically injects plugin faults from a seeded schedule.
// Hang one on Env.Chaos and every plugin sharing that Env — including all
// instances of a Pool — rolls the same schedule in call order.
type Chaos struct {
	cfg ChaosConfig

	mu    sync.Mutex
	rng   *rand.Rand
	stats ChaosStats
}

// chaosAction is one decided outcome for a Call.
type chaosAction int

const (
	chaosNone chaosAction = iota
	chaosForceTrap
	chaosStealFuel
	chaosStallCall
	chaosCorruptOutput
)

// NewChaos builds an injector for the given schedule.
func NewChaos(cfg ChaosConfig) *Chaos {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	if cfg.Stall == 0 {
		cfg.Stall = 2 * time.Millisecond
	}
	return &Chaos{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// SetConfig replaces the fault schedule in place; counters and PRNG state
// are kept. This lets a test disarm or re-arm an injector already shared by
// live plugins — e.g. trap exactly once, then verify the replacement
// instance recovers cleanly.
func (c *Chaos) SetConfig(cfg ChaosConfig) {
	if cfg.Stall == 0 {
		cfg.Stall = 2 * time.Millisecond
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cfg = cfg
}

// Stats returns the injected-fault counters so far.
func (c *Chaos) Stats() ChaosStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// decide rolls the seeded schedule for one Call, returning the action and,
// for stalls, how long to sleep.
func (c *Chaos) decide() (chaosAction, time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Calls++
	if c.cfg.ActivateAfter > 0 && c.stats.Calls <= uint64(c.cfg.ActivateAfter) {
		return chaosNone, 0
	}
	switch {
	case c.roll(c.cfg.TrapProb):
		c.stats.Traps++
		return chaosForceTrap, 0
	case c.roll(c.cfg.FuelTheftProb):
		c.stats.FuelThefts++
		return chaosStealFuel, 0
	case c.roll(c.cfg.StallProb):
		c.stats.Stalls++
		return chaosStallCall, c.cfg.Stall
	case c.roll(c.cfg.CorruptProb):
		c.stats.Corruptions++
		return chaosCorruptOutput, 0
	}
	return chaosNone, 0
}

// roll consumes one PRNG draw when p > 0 so the schedule depends only on
// the configured fault classes and the call sequence.
func (c *Chaos) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	return c.rng.Float64() < p
}

// corruptOutput mangles a successful call's result so only the decode layer
// above can catch it: a truncated tail for real payloads, a short garbage
// blob when the plugin returned nothing.
func corruptOutput(out []byte) []byte {
	if len(out) > 0 {
		return out[:len(out)-1]
	}
	return []byte{0xff, 0xff, 0xff}
}

package wabi

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// BudgetPool implements the joint resource-management policy the paper
// lists as open problem §6B: the host owns one per-slot execution budget
// (in interpreter instructions, the deterministic proxy for CPU time) and
// divides it among all registered plugins by weight, so the aggregate
// plugin workload can never exceed what the slot deadline allows, no matter
// how many MVNOs or xApps are onboarded.
//
// Usage per slot:
//
//	pool.BeginSlot()            // distribute shares
//	... plugin calls happen ...
//	usage := pool.EndSlot()     // per-plugin instructions consumed
type BudgetPool struct {
	mu      sync.Mutex
	total   int64
	members map[string]*budgetMember
}

type budgetMember struct {
	plugin    *Plugin
	weight    float64
	lastStart uint64 // InstrCount at BeginSlot
	lastUsed  uint64
}

// ErrNotMetered is returned when a plugin without fuel metering is
// registered into a pool.
var ErrNotMetered = errors.New("wabi: plugin has fuel metering disabled (Policy.Fuel == 0)")

// NewBudgetPool creates a pool with the given per-slot instruction budget.
func NewBudgetPool(totalPerSlot int64) *BudgetPool {
	return &BudgetPool{total: totalPerSlot, members: make(map[string]*budgetMember)}
}

// Total returns the per-slot budget.
func (b *BudgetPool) Total() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// SetTotal adjusts the per-slot budget (effective from the next BeginSlot).
func (b *BudgetPool) SetTotal(total int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.total = total
}

// Register adds a plugin with the given share weight (must be positive).
// The plugin must have been created with fuel metering enabled.
func (b *BudgetPool) Register(name string, p *Plugin, weight float64) error {
	if weight <= 0 {
		return fmt.Errorf("wabi: budget weight must be positive, got %v", weight)
	}
	if p.policy.Fuel <= 0 {
		return fmt.Errorf("%w: %q", ErrNotMetered, name)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, dup := b.members[name]; dup {
		return fmt.Errorf("wabi: budget member %q already registered", name)
	}
	b.members[name] = &budgetMember{plugin: p, weight: weight}
	return nil
}

// Unregister removes a plugin from the pool.
func (b *BudgetPool) Unregister(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.members, name)
}

// Members returns the registered plugin names, sorted.
func (b *BudgetPool) Members() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.members))
	for name := range b.members {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// BeginSlot distributes the slot budget: each plugin's per-call fuel is set
// to total * weight / sum(weights). Call once at the top of every slot.
func (b *BudgetPool) BeginSlot() {
	b.mu.Lock()
	defer b.mu.Unlock()
	var totalW float64
	for _, m := range b.members {
		totalW += m.weight
	}
	if totalW == 0 {
		return
	}
	for _, m := range b.members {
		share := int64(float64(b.total) * m.weight / totalW)
		if share < 1 {
			share = 1
		}
		m.plugin.policy.Fuel = share
		m.lastStart = m.plugin.inst.InstrCount
	}
}

// EndSlot snapshots per-plugin instruction usage since BeginSlot.
func (b *BudgetPool) EndSlot() map[string]uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]uint64, len(b.members))
	for name, m := range b.members {
		m.lastUsed = m.plugin.inst.InstrCount - m.lastStart
		out[name] = m.lastUsed
	}
	return out
}

// Share returns the current per-call fuel assigned to the named plugin.
func (b *BudgetPool) Share(name string) (int64, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	m, ok := b.members[name]
	if !ok {
		return 0, false
	}
	return m.plugin.policy.Fuel, true
}

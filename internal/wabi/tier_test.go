package wabi

import (
	"errors"
	"testing"
	"time"

	"waran/internal/wasm"
	"waran/internal/wat"
)

// watBin compiles WAT source to the binary form ModuleCache.Load expects.
func watBin(t *testing.T, src string) []byte {
	t.Helper()
	bin, err := wat.CompileToBinary(src)
	if err != nil {
		t.Fatalf("wat: %v", err)
	}
	return bin
}

// spinWAT burns a deterministic ~600 instructions per call: enough to drive
// the promotion profile with small thresholds.
const spinWAT = `(module
  (memory (export "memory") 1)
  (func (export "run") (result i32)
    (local $i i32)
    (block $done
      (loop $l
        (br_if $done (i32.ge_u (local.get $i) (i32.const 100)))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $l)))
    (i32.const 0)))`

func TestPluginTierPin(t *testing.T) {
	for _, tier := range []wasm.Tier{wasm.TierInterp, wasm.TierFused, wasm.TierClosure} {
		p := mustPlugin(t, spinWAT, Policy{Fuel: 100_000, Tier: tier}, Env{})
		if _, err := p.Call("run", nil); err != nil {
			t.Fatalf("tier %v: %v", tier, err)
		}
		if got := p.LastTier(); got != tier {
			t.Fatalf("LastTier = %v, want %v", got, tier)
		}
	}
}

// TestTierFuelIdenticalAcrossTiers checks the wabi-visible half of the
// bit-identity contract: LastFuelUsed must not depend on the tier.
func TestTierFuelIdenticalAcrossTiers(t *testing.T) {
	fuelOn := func(tier wasm.Tier) int64 {
		p := mustPlugin(t, spinWAT, Policy{Fuel: 100_000, Tier: tier}, Env{})
		if _, err := p.Call("run", nil); err != nil {
			t.Fatalf("tier %v: %v", tier, err)
		}
		return p.LastFuelUsed()
	}
	interp := fuelOn(wasm.TierInterp)
	if interp == 0 {
		t.Fatal("no fuel recorded")
	}
	if fused := fuelOn(wasm.TierFused); fused != interp {
		t.Fatalf("fused tier burned %d fuel, interpreter %d", fused, interp)
	}
	if clos := fuelOn(wasm.TierClosure); clos != interp {
		t.Fatalf("closure tier burned %d fuel, interpreter %d", clos, interp)
	}
}

func TestModuleTierPromotion(t *testing.T) {
	mod, err := CompileWAT(spinWAT)
	if err != nil {
		t.Fatal(err)
	}
	// Threshold of ~2 calls' worth of fuel.
	p, err := NewPlugin(mod, Policy{Fuel: 100_000, TierPromoteFuel: 1000}, Env{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Call("run", nil); err != nil {
		t.Fatal(err)
	}
	if got := p.LastTier(); got != wasm.TierInterp {
		t.Fatalf("first call ran on %v, want interpreter", got)
	}
	for i := 0; i < 4 && !mod.TierPromoted(); i++ {
		if _, err := p.Call("run", nil); err != nil {
			t.Fatal(err)
		}
	}
	if !mod.TierPromoted() {
		t.Fatal("module never promoted")
	}
	if got := mod.DefaultTier(); got != wasm.TierClosure {
		t.Fatalf("promoted default tier = %v", got)
	}
	// The existing TierAuto instance follows the module default on its next
	// top-level call — promotion needs no re-instantiation.
	if _, err := p.Call("run", nil); err != nil {
		t.Fatal(err)
	}
	if got := p.LastTier(); got != wasm.TierClosure {
		t.Fatalf("post-promotion call ran on %v, want closure", got)
	}
}

func TestModulePromotionDisarmed(t *testing.T) {
	mod, err := CompileWAT(spinWAT)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlugin(mod, Policy{Fuel: 100_000, TierPromoteFuel: -1}, Env{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := p.Call("run", nil); err != nil {
			t.Fatal(err)
		}
	}
	if mod.TierPromoted() {
		t.Fatal("disarmed module promoted anyway")
	}
	if got := p.LastTier(); got != wasm.TierInterp {
		t.Fatalf("tier = %v, want interpreter", got)
	}
}

func TestCacheTierPolicyPromotes(t *testing.T) {
	c := NewModuleCache()
	bin := watBin(t, spinWAT)
	// Policy installed before the load: promotion must arm at Load time.
	c.SetTierPolicy(TierPolicy{PromoteFuel: 1000})
	mod, err := c.Load(bin)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlugin(mod, Policy{Fuel: 100_000}, Env{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5 && !mod.TierPromoted(); i++ {
		if _, err := p.Call("run", nil); err != nil {
			t.Fatal(err)
		}
	}
	if !mod.TierPromoted() {
		t.Fatal("cache-armed module never promoted")
	}
	if got := c.Stats().TierPromotions; got != 1 {
		t.Fatalf("TierPromotions = %d, want 1", got)
	}
	// Re-promotion of the same module must not double count.
	for i := 0; i < 3; i++ {
		if _, err := p.Call("run", nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Stats().TierPromotions; got != 1 {
		t.Fatalf("TierPromotions after more calls = %d, want 1", got)
	}
}

func TestCacheTierPolicyRetroactive(t *testing.T) {
	c := NewModuleCache()
	mod, err := c.Load(watBin(t, spinWAT))
	if err != nil {
		t.Fatal(err)
	}
	// Pin applied after the module is already cached.
	c.SetTierPolicy(TierPolicy{Pin: wasm.TierFused})
	if got := mod.DefaultTier(); got != wasm.TierFused {
		t.Fatalf("retroactive pin: default tier = %v", got)
	}
	p, err := NewPlugin(mod, Policy{Fuel: 100_000}, Env{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Call("run", nil); err != nil {
		t.Fatal(err)
	}
	if got := p.LastTier(); got != wasm.TierFused {
		t.Fatalf("pinned module ran on %v", got)
	}
}

// TestSlowHostFunctionDeadline is the regression test for the deadline
// escape at call boundaries: a guest that executes only a handful of
// instructions — far under the 64 Ki periodic check — but blocks in a slow
// host function must still trap once the host call returns past the
// deadline. Before the call-boundary check, this call succeeded.
func TestSlowHostFunctionDeadline(t *testing.T) {
	src := `(module
	  (import "test" "slow" (func $slow))
	  (memory (export "memory") 1)
	  (func (export "run") (result i32)
	    (call $slow)
	    (i32.const 0)))`
	hostDelay := 30 * time.Millisecond
	env := Env{HostFuncs: wasm.Imports{"test": {
		"slow": &wasm.HostFunc{
			Name: "slow",
			Type: wasm.FuncType{},
			Fn: func(ctx *wasm.CallContext, args []uint64) ([]uint64, error) {
				time.Sleep(hostDelay)
				return nil, nil
			},
		},
	}}}
	for _, tier := range []wasm.Tier{wasm.TierInterp, wasm.TierFused, wasm.TierClosure} {
		p := mustPlugin(t, src, Policy{Fuel: 10_000, CallTimeout: time.Millisecond, Tier: tier}, Env{HostFuncs: env.HostFuncs})
		_, err := p.Call("run", nil)
		var ce *CallError
		if !errors.As(err, &ce) || ce.Trap == nil || ce.Trap.Code != wasm.TrapDeadlineExceeded {
			t.Fatalf("tier %v: slow host call returned %v, want deadline trap", tier, err)
		}
		if got := p.LastFailureClass(); got != FailDeadline {
			t.Fatalf("tier %v: failure class %v, want FailDeadline", tier, got)
		}
		if !p.Poisoned() {
			t.Fatalf("tier %v: deadline overrun did not poison the instance", tier)
		}
	}
}

package wabi

import (
	"sync/atomic"

	"waran/internal/obs/flight"
	"waran/internal/wasm"
)

// DefaultTierPromoteFuel is the cumulative fuel a module must burn before
// the cache promotes it off the interpreter. Roughly 200 scheduler calls at
// the 10k-instruction scale: long enough that one-shot plugins never pay
// compilation, short enough that a per-slot scheduler promotes within its
// first frame.
const DefaultTierPromoteFuel = 2_000_000

// TierPolicy configures how a ModuleCache assigns execution tiers to the
// modules it compiles.
type TierPolicy struct {
	// Pin, when not TierAuto, becomes every loaded module's default tier
	// immediately — no profiling, no promotion.
	Pin wasm.Tier
	// PromoteFuel arms fuel-profiled promotion: once a module's plugins have
	// burned this much cumulative fuel, its default tier moves to the
	// closure tier and all TierAuto instances follow. Zero means
	// DefaultTierPromoteFuel; negative disables promotion.
	PromoteFuel int64
}

// tierState is the per-Module promotion accumulator. It lives on Module so
// that every Plugin sharing the compiled code (across cells, pools and
// fresh-instance calls) contributes to one profile.
type tierState struct {
	promoteFuel atomic.Int64 // threshold; <= 0 means promotion disarmed
	spentFuel   atomic.Int64
	promoted    atomic.Bool
	onPromote   atomic.Pointer[func()]
}

// SetTierPromotion arms (or, with threshold <= 0, disarms) fuel-profiled
// promotion for this module. Safe to call concurrently with plugin calls.
func (m *Module) SetTierPromotion(threshold int64) {
	m.tier.promoteFuel.Store(threshold)
}

// TierPromoted reports whether this module has been promoted off the
// interpreter by the fuel profile.
func (m *Module) TierPromoted() bool { return m.tier.promoted.Load() }

// DefaultTier exposes the compiled module's current default execution tier.
func (m *Module) DefaultTier() wasm.Tier { return m.cm.DefaultTier() }

// SetDefaultTier pins the module's default execution tier directly,
// bypassing the fuel profile. TierAuto resolves to the interpreter.
func (m *Module) SetDefaultTier(t wasm.Tier) { m.cm.SetDefaultTier(t) }

// observeFuel feeds one call's fuel burn into the promotion profile.
func (m *Module) observeFuel(fuel int64) {
	if fuel <= 0 || m.tier.promoted.Load() {
		return
	}
	threshold := m.tier.promoteFuel.Load()
	if threshold <= 0 {
		return
	}
	if m.tier.spentFuel.Add(fuel) < threshold {
		return
	}
	if !m.tier.promoted.CompareAndSwap(false, true) {
		return // another caller won the race
	}
	m.cm.SetDefaultTier(wasm.TierClosure)
	if fn := m.tier.onPromote.Load(); fn != nil {
		(*fn)()
	}
}

// LastTier reports the execution tier used by the plugin's most recent call
// (TierAuto before any call).
func (p *Plugin) LastTier() wasm.Tier { return p.inst.EffectiveTier() }

// SetTierPolicy applies tp to every module this cache has already compiled
// and to all future loads. Passing the zero TierPolicy arms promotion at
// DefaultTierPromoteFuel, which is the intended production setting.
func (c *ModuleCache) SetTierPolicy(tp TierPolicy) {
	if tp.PromoteFuel == 0 {
		tp.PromoteFuel = DefaultTierPromoteFuel
	}
	c.mu.Lock()
	c.tierPolicy = &tp
	entries := make([]*cacheEntry, 0, len(c.entries))
	for _, e := range c.entries {
		entries = append(entries, e)
	}
	c.mu.Unlock()
	for _, e := range entries {
		<-e.done
		if e.err == nil {
			c.applyTierPolicy(e.mod, tp)
		}
	}
}

// SetFlightRecorder journals every fuel-profiled tier promotion into rec
// as an EvTierPromotion event (nil detaches). Promotions are rare edges —
// once per module lifetime — so the journal write is off the call path.
func (c *ModuleCache) SetFlightRecorder(rec *flight.Recorder) {
	c.mu.Lock()
	c.flightRec = rec
	c.mu.Unlock()
}

// applyTierPolicy wires one module into the cache's tier policy.
func (c *ModuleCache) applyTierPolicy(m *Module, tp TierPolicy) {
	if tp.Pin != wasm.TierAuto {
		m.cm.SetDefaultTier(tp.Pin)
		m.SetTierPromotion(-1)
		return
	}
	bump := func() {
		c.mu.Lock()
		c.tierPromotions++
		n := c.tierPromotions
		rec := c.flightRec
		c.mu.Unlock()
		rec.Record(flight.Event{
			Class: flight.EvTierPromotion, Plane: flight.PlaneWasm,
			Detail: "fuel-profiled promotion to closure tier",
			Value:  float64(n),
		})
	}
	m.tier.onPromote.Store(&bump)
	m.SetTierPromotion(tp.PromoteFuel)
}

package wabi

import (
	"errors"
	"strings"
	"testing"
	"time"

	"waran/internal/wasm"
)

// echoWAT copies its input to its output and logs its length.
const echoWAT = `(module
  (import "waran" "input_length" (func $input_length (result i32)))
  (import "waran" "input_read"   (func $input_read (param i32 i32 i32) (result i32)))
  (import "waran" "output_write" (func $output_write (param i32 i32)))
  (import "waran" "log"          (func $log (param i32 i32)))
  (memory (export "memory") 1)
  (data (i32.const 0) "echoing")
  (func (export "run") (result i32)
    (local $n i32)
    (local.set $n (call $input_length))
    (drop (call $input_read (i32.const 1024) (i32.const 0) (local.get $n)))
    (call $log (i32.const 0) (i32.const 7))
    (call $output_write (i32.const 1024) (local.get $n))
    (i32.const 0))
)`

func mustPlugin(t *testing.T, src string, policy Policy, env Env) *Plugin {
	t.Helper()
	mod, err := CompileWAT(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	p, err := NewPlugin(mod, policy, env)
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	return p
}

func TestEchoRoundTrip(t *testing.T) {
	var logged []string
	p := mustPlugin(t, echoWAT, Policy{}, Env{OnLog: func(m string) { logged = append(logged, m) }})
	in := []byte("hello plugin world")
	out, err := p.Call("run", in)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(in) {
		t.Fatalf("echo = %q", out)
	}
	if len(logged) != 1 || logged[0] != "echoing" {
		t.Fatalf("logs = %v", logged)
	}
	if st := p.Stats(); st.Calls != 1 || st.Faults != 0 {
		t.Fatalf("stats: calls=%d faults=%d", st.Calls, st.Faults)
	}
}

func TestEmptyInputAndOutput(t *testing.T) {
	p := mustPlugin(t, echoWAT, Policy{}, Env{})
	out, err := p.Call("run", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("out = %q", out)
	}
}

func TestInputTooLarge(t *testing.T) {
	p := mustPlugin(t, echoWAT, Policy{MaxInputBytes: 8}, Env{})
	if _, err := p.Call("run", make([]byte, 9)); err == nil {
		t.Fatal("oversized input accepted")
	}
}

func TestOutputTooLarge(t *testing.T) {
	src := `(module
	  (import "waran" "output_write" (func $output_write (param i32 i32)))
	  (memory (export "memory") 1)
	  (func (export "run") (result i32)
	    (call $output_write (i32.const 0) (i32.const 60000))
	    (i32.const 0)))`
	p := mustPlugin(t, src, Policy{MaxOutputBytes: 1024}, Env{})
	_, err := p.Call("run", nil)
	var ce *CallError
	if !errors.As(err, &ce) || ce.Trap == nil {
		t.Fatalf("want trap-carrying CallError, got %v", err)
	}
	if !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("error does not mention the limit: %v", err)
	}
}

func TestInputReadChunked(t *testing.T) {
	// Plugin reads the input 4 bytes at a time and sums the chunks it got.
	src := `(module
	  (import "waran" "input_length" (func $input_length (result i32)))
	  (import "waran" "input_read"   (func $input_read (param i32 i32 i32) (result i32)))
	  (import "waran" "output_write" (func $output_write (param i32 i32)))
	  (memory (export "memory") 1)
	  (func (export "run") (result i32)
	    (local $off i32) (local $got i32) (local $total i32)
	    (block $done (loop $top
	      (local.set $got (call $input_read (i32.const 512) (local.get $off) (i32.const 4)))
	      (br_if $done (i32.eqz (local.get $got)))
	      (local.set $total (i32.add (local.get $total) (local.get $got)))
	      (local.set $off (i32.add (local.get $off) (local.get $got)))
	      (br $top)))
	    (i32.store (i32.const 0) (local.get $total))
	    (call $output_write (i32.const 0) (i32.const 4))
	    (i32.const 0)))`
	p := mustPlugin(t, src, Policy{}, Env{})
	out, err := p.Call("run", make([]byte, 11))
	if err != nil {
		t.Fatal(err)
	}
	if got := uint32(out[0]) | uint32(out[1])<<8; got != 11 {
		t.Fatalf("chunked read total = %d", got)
	}
}

func TestGuestErrorSurfaced(t *testing.T) {
	src := `(module
	  (import "waran" "error_set" (func $error_set (param i32 i32)))
	  (memory (export "memory") 1)
	  (data (i32.const 0) "bad input")
	  (func (export "run") (result i32)
	    (call $error_set (i32.const 0) (i32.const 9))
	    (i32.const 3)))`
	p := mustPlugin(t, src, Policy{}, Env{})
	_, err := p.Call("run", nil)
	var ce *CallError
	if !errors.As(err, &ce) {
		t.Fatalf("want CallError, got %v", err)
	}
	if ce.Code != 3 || ce.Message != "bad input" {
		t.Fatalf("code=%d msg=%q", ce.Code, ce.Message)
	}
	if st := p.Stats(); st.Faults != 1 {
		t.Fatalf("faults = %d", st.Faults)
	}
}

func TestMissingMemoryRejected(t *testing.T) {
	mod, err := CompileWAT(`(module (func (export "run") (result i32) i32.const 0))`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPlugin(mod, Policy{}, Env{}); err == nil {
		t.Fatal("plugin without memory accepted")
	}
}

func TestHostFuncsCannotShadowABI(t *testing.T) {
	mod, err := CompileWAT(echoWAT)
	if err != nil {
		t.Fatal(err)
	}
	env := Env{HostFuncs: wasm.Imports{"waran": {}}}
	if _, err := NewPlugin(mod, Policy{}, env); err == nil {
		t.Fatal(`custom "waran" module accepted`)
	}
}

func TestCustomHostFuncs(t *testing.T) {
	src := `(module
	  (import "gnb" "set_quota" (func $sq (param i32 i32) (result i32)))
	  (import "waran" "output_write" (func $output_write (param i32 i32)))
	  (memory (export "memory") 1)
	  (func (export "run") (result i32)
	    (drop (call $sq (i32.const 3) (i32.const 17)))
	    (i32.const 0)))`
	var gotSlice, gotQuota uint32
	env := Env{HostFuncs: wasm.Imports{"gnb": {
		"set_quota": &wasm.HostFunc{
			Name: "set_quota",
			Type: wasm.FuncType{
				Params:  []wasm.ValType{wasm.ValI32, wasm.ValI32},
				Results: []wasm.ValType{wasm.ValI32},
			},
			Fn: func(ctx *wasm.CallContext, args []uint64) ([]uint64, error) {
				gotSlice, gotQuota = uint32(args[0]), uint32(args[1])
				return []uint64{1}, nil
			},
		},
	}}}
	p := mustPlugin(t, src, Policy{}, env)
	if _, err := p.Call("run", nil); err != nil {
		t.Fatal(err)
	}
	if gotSlice != 3 || gotQuota != 17 {
		t.Fatalf("host func saw %d/%d", gotSlice, gotQuota)
	}
}

func TestFuelExhaustionIsDeterministic(t *testing.T) {
	src := `(module
	  (memory (export "memory") 1)
	  (func (export "run") (result i32)
	    (loop $spin br $spin)
	    (i32.const 0)))`
	p := mustPlugin(t, src, Policy{Fuel: 5000}, Env{})
	for i := 0; i < 3; i++ {
		_, err := p.Call("run", nil)
		var ce *CallError
		if !errors.As(err, &ce) || ce.Trap == nil || ce.Trap.Code != wasm.TrapFuelExhausted {
			t.Fatalf("call %d: want fuel trap, got %v", i, err)
		}
	}
	if st := p.Stats(); st.Faults != 3 {
		t.Fatalf("faults = %d", st.Faults)
	}
}

func TestFreshInstanceIsolation(t *testing.T) {
	// A plugin that increments a persistent counter; with FreshInstance the
	// counter must reset between calls.
	src := `(module
	  (import "waran" "output_write" (func $output_write (param i32 i32)))
	  (memory (export "memory") 1)
	  (global $n (mut i32) (i32.const 0))
	  (func (export "run") (result i32)
	    (global.set $n (i32.add (global.get $n) (i32.const 1)))
	    (i32.store (i32.const 0) (global.get $n))
	    (call $output_write (i32.const 0) (i32.const 4))
	    (i32.const 0)))`
	counter := func(p *Plugin) uint32 {
		out, err := p.Call("run", nil)
		if err != nil {
			t.Fatal(err)
		}
		return uint32(out[0])
	}
	reuse := mustPlugin(t, src, Policy{}, Env{})
	counter(reuse)
	if got := counter(reuse); got != 2 {
		t.Fatalf("reused instance counter = %d, want 2", got)
	}
	fresh := mustPlugin(t, src, Policy{FreshInstance: true}, Env{})
	counter(fresh)
	if got := counter(fresh); got != 1 {
		t.Fatalf("fresh instance counter = %d, want 1", got)
	}
}

func TestResetWipesState(t *testing.T) {
	src := `(module
	  (import "waran" "output_write" (func $output_write (param i32 i32)))
	  (memory (export "memory") 1)
	  (global $n (mut i32) (i32.const 0))
	  (func (export "run") (result i32)
	    (global.set $n (i32.add (global.get $n) (i32.const 1)))
	    (i32.store (i32.const 0) (global.get $n))
	    (call $output_write (i32.const 0) (i32.const 4))
	    (i32.const 0)))`
	p := mustPlugin(t, src, Policy{}, Env{})
	if _, err := p.Call("run", nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Reset(); err != nil {
		t.Fatal(err)
	}
	out, err := p.Call("run", nil)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 {
		t.Fatalf("counter after reset = %d, want 1", out[0])
	}
}

func TestHasEntrySignatureCheck(t *testing.T) {
	src := `(module
	  (memory (export "memory") 1)
	  (func (export "good") (result i32) i32.const 0)
	  (func (export "bad_params") (param i32) (result i32) i32.const 0)
	  (func (export "bad_results")))`
	p := mustPlugin(t, src, Policy{}, Env{})
	if !p.HasEntry("good") {
		t.Error("good entry not recognized")
	}
	if p.HasEntry("bad_params") || p.HasEntry("bad_results") || p.HasEntry("missing") {
		t.Error("invalid entries recognized")
	}
}

func TestCompileWasmBinary(t *testing.T) {
	mod, err := CompileWAT(echoWAT)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := wasm.Encode(mod.cm.Module())
	if err != nil {
		t.Fatal(err)
	}
	mod2, err := CompileWasm(bin)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlugin(mod2, Policy{}, Env{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Call("run", []byte("xyz"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "xyz" {
		t.Fatalf("binary-path echo = %q", out)
	}
}

func TestCallErrorMessageFormats(t *testing.T) {
	trapErr := &CallError{Entry: "run", Trap: &wasm.Trap{Code: wasm.TrapUnreachable}}
	if !strings.Contains(trapErr.Error(), "faulted") {
		t.Errorf("trap error: %v", trapErr)
	}
	codeErr := &CallError{Entry: "run", Code: 2, Message: "oops"}
	if !strings.Contains(codeErr.Error(), "oops") {
		t.Errorf("code error: %v", codeErr)
	}
	bare := &CallError{Entry: "run", Code: 9}
	if !strings.Contains(bare.Error(), "code 9") {
		t.Errorf("bare error: %v", bare)
	}
}

func TestCallTimeoutTrapsHangs(t *testing.T) {
	src := `(module
	  (memory (export "memory") 1)
	  (func (export "run") (result i32)
	    (loop $spin br $spin)
	    (i32.const 0)))`
	// Huge fuel so only the wall-clock deadline can fire.
	p := mustPlugin(t, src, Policy{Fuel: 1 << 60, CallTimeout: 20 * time.Millisecond}, Env{})
	start := time.Now()
	_, err := p.Call("run", nil)
	elapsed := time.Since(start)
	var ce *CallError
	if !errors.As(err, &ce) || ce.Trap == nil || ce.Trap.Code != wasm.TrapDeadlineExceeded {
		t.Fatalf("want deadline trap, got %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("deadline enforced after %v", elapsed)
	}
}

package e2

import (
	"strings"
	"testing"
	"time"

	"waran/internal/obs/trace"
)

func busyCodecs() []Codec {
	return []Codec{BinaryCodec{}, VarintCodec{}, JSONCodec{}}
}

func TestBusyRoundTrip(t *testing.T) {
	cases := []*Message{
		NewBusyMessage(500*time.Millisecond, "admission"),
		NewBusyMessage(0, ""),
		NewBusyMessage(MaxRetryAfter, "shard 3 budget exhausted"),
		{Type: TypeBusy, RequestID: 7, RANFunction: RANFunctionKPM,
			Busy: &BusyBody{RetryAfterMs: 42, Reason: "brownout L2"}},
	}
	for _, c := range busyCodecs() {
		for _, m := range cases {
			b, err := c.Encode(m)
			if err != nil {
				t.Fatalf("%s: encode: %v", c.Name(), err)
			}
			got, err := c.Decode(b)
			if err != nil {
				t.Fatalf("%s: decode: %v", c.Name(), err)
			}
			if got.Type != TypeBusy || got.Busy == nil {
				t.Fatalf("%s: round-trip lost busy body: %+v", c.Name(), got)
			}
			if got.Busy.RetryAfterMs != m.Busy.RetryAfterMs || got.Busy.Reason != m.Busy.Reason {
				t.Fatalf("%s: busy body mismatch: got %+v want %+v", c.Name(), got.Busy, m.Busy)
			}
			if got.RequestID != m.RequestID || got.RANFunction != m.RANFunction {
				t.Fatalf("%s: header mismatch: got %+v want %+v", c.Name(), got, m)
			}
		}
	}
}

func TestBusyRoundTripTraced(t *testing.T) {
	m := NewBusyMessage(250*time.Millisecond, "admission")
	m.Trace = trace.Context{TraceID: 0xfeed, SpanID: 3}
	for _, c := range busyCodecs() {
		b, err := c.Encode(m)
		if err != nil {
			t.Fatalf("%s: encode: %v", c.Name(), err)
		}
		got, err := c.Decode(b)
		if err != nil {
			t.Fatalf("%s: decode: %v", c.Name(), err)
		}
		if got.Trace != m.Trace {
			t.Fatalf("%s: trace context lost: got %+v want %+v", c.Name(), got.Trace, m.Trace)
		}
	}
}

func TestBusyValidate(t *testing.T) {
	if err := (&Message{Type: TypeBusy}).Validate(); err == nil {
		t.Fatal("busy without body validated")
	}
	m := NewBusyMessage(time.Second, "x")
	m.Error = &ErrorBody{Reason: "also"}
	if err := m.Validate(); err == nil {
		t.Fatal("busy with two bodies validated")
	}
}

func TestBusyRetryAfterClamped(t *testing.T) {
	b := &BusyBody{RetryAfterMs: 1 << 31}
	if got := b.RetryAfter(); got != MaxRetryAfter {
		t.Fatalf("RetryAfter not clamped: %v", got)
	}
	if m := NewBusyMessage(24*time.Hour, "x"); m.Busy.RetryAfter() != MaxRetryAfter {
		t.Fatalf("NewBusyMessage not clamped: %v", m.Busy.RetryAfter())
	}
	if m := NewBusyMessage(-time.Second, "x"); m.Busy.RetryAfterMs != 0 {
		t.Fatalf("negative retry-after not floored: %v", m.Busy.RetryAfterMs)
	}
}

func TestBusyErrorMessage(t *testing.T) {
	e := &BusyError{RetryAfter: 500 * time.Millisecond, Reason: "admission"}
	if !strings.Contains(e.Error(), "busy") || !strings.Contains(e.Error(), "admission") {
		t.Fatalf("unhelpful BusyError: %q", e.Error())
	}
}

func TestOverloadCapabilityToken(t *testing.T) {
	reason := AppendCapabilityToken("subscribed", TraceCapabilityToken)
	reason = AppendCapabilityToken(reason, OverloadCapabilityToken)
	if !HasCapabilityToken(reason, OverloadCapabilityToken) {
		t.Fatalf("token missing from %q", reason)
	}
	if HasCapabilityToken("subscribed busy-v2", OverloadCapabilityToken) {
		t.Fatal("matched wrong token")
	}
	if CapabilityBits&BusyCapabilityBit == 0 {
		t.Fatal("BusyCapabilityBit not in CapabilityBits mask")
	}
}

// FuzzBusyRoundTrip fuzzes the TypeBusy body across all three codecs: every
// encodable busy frame must decode back to itself, traced or not.
func FuzzBusyRoundTrip(f *testing.F) {
	f.Add(uint32(500), "admission", uint32(1), uint32(2), false)
	f.Add(uint32(0), "", uint32(0), uint32(0), true)
	f.Add(uint32(1<<31), strings.Repeat("r", 300), uint32(7), uint32(3), true)
	f.Fuzz(func(t *testing.T, retryMs uint32, reason string, rid, rf uint32, traced bool) {
		// The binary codec truncates strings at 64 KiB and JSON replaces
		// invalid UTF-8; keep the input inside what every codec round-trips.
		reason = strings.ToValidUTF8(reason, "?")
		if len(reason) > 1024 {
			reason = reason[:1024]
			reason = strings.ToValidUTF8(reason, "?")
		}
		m := &Message{
			Type: TypeBusy, RequestID: rid, RANFunction: rf,
			Busy: &BusyBody{RetryAfterMs: retryMs, Reason: reason},
		}
		if traced {
			m.Trace = trace.Context{TraceID: uint64(rid)<<32 | uint64(rf) | 1, SpanID: 1}
		}
		for _, c := range busyCodecs() {
			b, err := c.Encode(m)
			if err != nil {
				t.Fatalf("%s: encode: %v", c.Name(), err)
			}
			got, err := c.Decode(b)
			if err != nil {
				t.Fatalf("%s: decode: %v", c.Name(), err)
			}
			if got.Busy == nil || *got.Busy != *m.Busy {
				t.Fatalf("%s: busy body mismatch: got %+v want %+v", c.Name(), got.Busy, m.Busy)
			}
			if got.Trace != m.Trace {
				t.Fatalf("%s: trace mismatch", c.Name())
			}
		}
	})
}

package e2

import (
	"fmt"
	"strings"
)

// Windowed KPM indication batching on the E2 wire.
//
// A batch frame coalesces the per-slot KPM indications an agent would have
// sent as individual TypeIndication frames into one TypeIndicationBatch
// frame per reporting window. Each entry is the complete indication body —
// slot and cell included — so the receiver unbatches back to the exact
// per-slot indications, bit-identical to what the unbatched path delivers.
//
// Batch body layout (binary codec, little endian):
//
//	u16 count
//	per entry: one indication body (see body.go), oldest first
//
// The varint codec uses the same structure with its own integer encoding;
// the JSON codec carries an "indication_batch" object with an
// "indications" array.
//
// Like trace-context propagation (tracehdr.go), batching is capability
// negotiated so mixed-version associations interop unchanged: the RIC
// advertises BatchCapabilityBit in its SubscriptionRequest RANFunction (old
// agents echo the field without interpreting it), and a batch-capable agent
// answers by including BatchCapabilityToken in the SubscriptionResponse
// Reason token list. An agent only emits tokens for capabilities the RIC
// advertised, so an old RIC that compares Reason against the bare trace
// token still matches, and an old agent that never saw the bit keeps
// sending per-slot indications the new RIC handles as before.

// BatchCapabilityBit is OR-ed into SubscriptionRequest.RANFunction by a
// RIC willing to receive batched indications. Old agents echo the field
// untouched; new agents mask capability bits out before interpreting the
// RAN function.
const BatchCapabilityBit uint32 = 1 << 30

// BatchCapabilityToken is included in the SubscriptionResponse Reason token
// list by a batch-capable agent answering a batch-capable RIC.
const BatchCapabilityToken = "batch-v1"

// CapabilityBits masks every capability-advertisement bit a RIC may set in
// SubscriptionRequest.RANFunction.
const CapabilityBits = TraceCapabilityBit | BatchCapabilityBit | BusyCapabilityBit

// MaxBatchIndications bounds the entries in one batch frame: a full window
// at the longest sensible flush deadline stays far below this, and the
// decoder rejects anything larger before allocating.
const MaxBatchIndications = 4096

// IndicationBatch is one reporting window's worth of per-slot indications,
// oldest first.
type IndicationBatch struct {
	Indications []Indication `json:"indications"`
}

// HasCapabilityToken reports whether the space-separated capability token
// list in a SubscriptionResponse Reason contains tok. The pre-batch wire
// format carried a single bare token, which parses as a one-element list.
func HasCapabilityToken(reason, tok string) bool {
	for len(reason) > 0 {
		i := strings.IndexByte(reason, ' ')
		if i < 0 {
			return reason == tok
		}
		if reason[:i] == tok {
			return true
		}
		reason = reason[i+1:]
	}
	return false
}

// AppendCapabilityToken appends tok to a space-separated capability token
// list, returning the new list.
func AppendCapabilityToken(reason, tok string) string {
	if reason == "" {
		return tok
	}
	return reason + " " + tok
}

// appendBatchBody appends the encoded batch body (binary layout) to b.
func appendBatchBody(b []byte, batch *IndicationBatch) []byte {
	w := &bwriter{b: b}
	w.u16(uint16(len(batch.Indications)))
	for i := range batch.Indications {
		w.b = AppendIndicationBody(w.b, &batch.Indications[i])
	}
	return w.b
}

// readBatchBody parses a batch body (binary layout).
func readBatchBody(r *breader) (*IndicationBatch, error) {
	n, err := r.u16()
	if err != nil {
		return nil, err
	}
	if int(n) > MaxBatchIndications {
		return nil, fmt.Errorf("%w: batch of %d indications exceeds limit", ErrMalformed, n)
	}
	batch := &IndicationBatch{}
	for i := 0; i < int(n); i++ {
		ind, err := readIndicationBody(r)
		if err != nil {
			return nil, err
		}
		batch.Indications = append(batch.Indications, *ind)
	}
	return batch, nil
}

// validateBatch checks batch-specific invariants beyond body presence.
func validateBatch(batch *IndicationBatch) error {
	if len(batch.Indications) == 0 {
		return fmt.Errorf("%w: empty indication batch", ErrMalformed)
	}
	if len(batch.Indications) > MaxBatchIndications {
		return fmt.Errorf("%w: batch of %d indications exceeds limit", ErrMalformed, len(batch.Indications))
	}
	return nil
}

package e2

import (
	"io"
	"net"
	"testing"
	"time"
)

// nullConn is a net.Conn whose writes vanish: Send cost without a peer.
type nullConn struct{}

func (nullConn) Read(b []byte) (int, error)         { return 0, io.EOF }
func (nullConn) Write(b []byte) (int, error)        { return len(b), nil }
func (nullConn) Close() error                       { return nil }
func (nullConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (nullConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (nullConn) SetDeadline(t time.Time) error      { return nil }
func (nullConn) SetReadDeadline(t time.Time) error  { return nil }
func (nullConn) SetWriteDeadline(t time.Time) error { return nil }

func sendBenchMessage() *Message {
	return &Message{
		Type: TypeIndication, RequestID: 9, RANFunction: RANFunctionKPM,
		Indication: &Indication{
			Slot: 123456, Cell: 3,
			UEs: []UEMeasurement{
				{UEID: 1, SliceID: 1, MCS: 22, BufferBytes: 9000, TputBps: 1.1e7},
				{UEID: 2, SliceID: 1, MCS: 16, BufferBytes: 0, TputBps: 2.5e6},
				{UEID: 3, SliceID: 2, MCS: 28, BufferBytes: 512, TputBps: 9.9e7},
			},
			Slices: []SliceMeasurement{
				{SliceID: 1, TargetBps: 2e7, ServedBps: 1.35e7, UsedPRBs: 40},
				{SliceID: 2, TargetBps: 8e7, ServedBps: 9.9e7, UsedPRBs: 60},
			},
		},
	}
}

// TestSendAllocsPinned pins the bugfix for per-indication allocations: with
// an append-capable codec, a steady-state Send must not allocate at all —
// the frame buffer is reused across calls. At 1000+ associations streaming
// KPM this is the difference between flat memory and the GC dominating.
func TestSendAllocsPinned(t *testing.T) {
	for _, codec := range []Codec{BinaryCodec{}, VarintCodec{}} {
		conn := NewConn(nullConn{}, codec)
		m := sendBenchMessage()
		batch := &Message{
			Type: TypeIndicationBatch, RequestID: 9, RANFunction: RANFunctionKPM,
			Batch: sampleBatch(8, 3, 2, 1),
		}
		// Warm up so the retained buffer reaches steady-state capacity.
		for i := 0; i < 4; i++ {
			if err := conn.Send(m); err != nil {
				t.Fatalf("%s: warm-up send: %v", codec.Name(), err)
			}
			if err := conn.Send(batch); err != nil {
				t.Fatalf("%s: warm-up batch send: %v", codec.Name(), err)
			}
		}
		if allocs := testing.AllocsPerRun(100, func() {
			if err := conn.Send(m); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("%s: Send allocates %.1f objects per indication, want 0", codec.Name(), allocs)
		}
		if allocs := testing.AllocsPerRun(100, func() {
			if err := conn.Send(batch); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("%s: Send allocates %.1f objects per batch, want 0", codec.Name(), allocs)
		}
	}
}

// TestSendBufBounded pins the retention cap: a one-off giant frame must not
// pin its buffer on the association forever.
func TestSendBufBounded(t *testing.T) {
	conn := NewConn(nullConn{}, BinaryCodec{})
	big := &Message{
		Type: TypeControlRequest, RequestID: 1, RANFunction: RANFunctionRC,
		Control: &ControlRequest{
			Action: ActionUploadScheduler, SliceID: 1, Text: "blob",
			Blob: make([]byte, 2<<20),
		},
	}
	if err := conn.Send(big); err != nil {
		t.Fatal(err)
	}
	if cap(conn.sendBuf) > maxRetainedSendBuf {
		t.Fatalf("retained %d-byte send buffer, cap is %d", cap(conn.sendBuf), maxRetainedSendBuf)
	}
}

func BenchmarkConnSend(b *testing.B) {
	for _, codec := range []Codec{BinaryCodec{}, VarintCodec{}, JSONCodec{}} {
		b.Run(codec.Name(), func(b *testing.B) {
			conn := NewConn(nullConn{}, codec)
			m := sendBenchMessage()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := conn.Send(m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

package e2

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func allCodecs(t *testing.T) []Codec {
	t.Helper()
	sealed, err := NewSealedCodec(BinaryCodec{}, "test-passphrase")
	if err != nil {
		t.Fatal(err)
	}
	return []Codec{BinaryCodec{}, JSONCodec{}, VarintCodec{}, sealed}
}

func sampleMessages() []*Message {
	return []*Message{
		{Type: TypeHeartbeat},
		{
			Type: TypeSubscriptionRequest, RequestID: 1, RANFunction: RANFunctionKPM,
			Subscription: &SubscriptionRequest{ReportPeriodMs: 100, SliceIDs: []uint32{1, 2}},
		},
		{
			Type: TypeSubscriptionResponse, RequestID: 1,
			SubscriptionResp: &SubscriptionResponse{Accepted: true, Reason: ""},
		},
		{
			Type: TypeSubscriptionResponse, RequestID: 2,
			SubscriptionResp: &SubscriptionResponse{Accepted: false, Reason: "overloaded"},
		},
		{
			Type: TypeIndication, RequestID: 9, RANFunction: RANFunctionKPM,
			Indication: &Indication{
				Slot: 1 << 33, Cell: 7,
				UEs: []UEMeasurement{
					{UEID: 1, SliceID: 2, MCS: 28, BufferBytes: 4096, TputBps: 21.5e6},
					{UEID: 2, SliceID: 2, MCS: 0, BufferBytes: 0, TputBps: 0},
				},
				Slices: []SliceMeasurement{
					{SliceID: 2, TargetBps: 12e6, ServedBps: 11.8e6, UsedPRBs: 30},
				},
			},
		},
		{
			Type: TypeControlRequest, RequestID: 3, RANFunction: RANFunctionRC,
			Control: &ControlRequest{Action: ActionHandover, UEID: 5, Text: "cell-2"},
		},
		{
			Type: TypeControlRequest, RequestID: 4, RANFunction: RANFunctionRC,
			Control: &ControlRequest{Action: ActionSetSliceTarget, SliceID: 1, Value: 17e6},
		},
		{
			Type: TypeControlAck, RequestID: 3,
			ControlAck: &ControlAck{Accepted: false, Reason: "unknown UE"},
		},
		{
			Type: TypeError, Error: &ErrorBody{Reason: "protocol violation"},
		},
		{
			Type: TypeIndicationBatch, RequestID: 9, RANFunction: RANFunctionKPM,
			Batch: &IndicationBatch{Indications: []Indication{
				{
					Slot: 100, Cell: 7,
					UEs: []UEMeasurement{
						{UEID: 1, SliceID: 2, MCS: 28, BufferBytes: 4096, TputBps: 21.5e6},
					},
					Slices: []SliceMeasurement{
						{SliceID: 2, TargetBps: 12e6, ServedBps: 11.8e6, UsedPRBs: 30},
					},
				},
				{
					Slot: 101, Cell: 7,
					UEs: []UEMeasurement{
						{UEID: 1, SliceID: 2, MCS: 27, BufferBytes: 1024, TputBps: 20.1e6},
						{UEID: 2, SliceID: 2, MCS: 4, BufferBytes: 0, TputBps: 0},
					},
					Slices: []SliceMeasurement{
						{SliceID: 2, TargetBps: 12e6, ServedBps: 12.0e6, UsedPRBs: 28},
					},
				},
			}},
		},
	}
}

func TestCodecRoundTrips(t *testing.T) {
	for _, codec := range allCodecs(t) {
		for i, msg := range sampleMessages() {
			wire, err := codec.Encode(msg)
			if err != nil {
				t.Fatalf("%s message %d: encode: %v", codec.Name(), i, err)
			}
			got, err := codec.Decode(wire)
			if err != nil {
				t.Fatalf("%s message %d: decode: %v", codec.Name(), i, err)
			}
			if !reflect.DeepEqual(got, msg) {
				t.Errorf("%s message %d mismatch:\ngot  %+v\nwant %+v", codec.Name(), i, got, msg)
			}
		}
	}
}

func TestCodecSizes(t *testing.T) {
	ind := sampleMessages()[4]
	bin, _ := BinaryCodec{}.Encode(ind)
	vr, _ := VarintCodec{}.Encode(ind)
	js, _ := JSONCodec{}.Encode(ind)
	if len(vr) >= len(js) || len(bin) >= len(js) {
		t.Fatalf("compact codecs not smaller than JSON: bin=%d varint=%d json=%d",
			len(bin), len(vr), len(js))
	}
}

func TestValidateRejectsInconsistentBodies(t *testing.T) {
	bad := []*Message{
		{Type: TypeIndication},                                                 // missing body
		{Type: TypeHeartbeat, Error: &ErrorBody{}},                             // heartbeat with body
		{Type: TypeControlRequest, Indication: &Indication{}},                  // wrong body
		{Type: MessageType(77), Error: &ErrorBody{Reason: "x"}},                // unknown type
		{Type: TypeIndication, Indication: &Indication{}, Error: &ErrorBody{}}, // two bodies
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("message %d accepted: %+v", i, m)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, codec := range allCodecs(t) {
		for _, b := range [][]byte{nil, {0}, {99, 1, 2, 3}, []byte("garbage!!"), make([]byte, 64)} {
			if _, err := codec.Decode(b); err == nil {
				// JSON null decodes; ensure Validate catches it.
				if codec.Name() == "json" {
					continue
				}
				t.Errorf("%s decoded garbage %v", codec.Name(), b)
			}
		}
	}
}

func TestBinaryDecodeRejectsTrailingBytes(t *testing.T) {
	wire, _ := BinaryCodec{}.Encode(&Message{Type: TypeHeartbeat})
	wire = append(wire, 0xFF)
	if _, err := (BinaryCodec{}).Decode(wire); !errors.Is(err, ErrMalformed) {
		t.Fatalf("got %v", err)
	}
}

func TestSealedCodecAuthenticity(t *testing.T) {
	sealed, err := NewSealedCodec(BinaryCodec{}, "k1")
	if err != nil {
		t.Fatal(err)
	}
	wire, err := sealed.Encode(&Message{Type: TypeHeartbeat})
	if err != nil {
		t.Fatal(err)
	}
	// Tampering must be detected.
	wire[len(wire)-1] ^= 0x01
	if _, err := sealed.Decode(wire); err == nil {
		t.Fatal("tampered frame accepted")
	}
	// Wrong key must fail.
	other, _ := NewSealedCodec(BinaryCodec{}, "k2")
	wire2, _ := sealed.Encode(&Message{Type: TypeHeartbeat})
	if _, err := other.Decode(wire2); err == nil {
		t.Fatal("frame decrypted with wrong key")
	}
	if !strings.Contains(sealed.Name(), "aes-gcm") {
		t.Fatalf("name = %q", sealed.Name())
	}
}

func TestSealedFramesAreRandomized(t *testing.T) {
	sealed, _ := NewSealedCodec(BinaryCodec{}, "k")
	msg := &Message{Type: TypeHeartbeat}
	a, _ := sealed.Encode(msg)
	b, _ := sealed.Encode(msg)
	if reflect.DeepEqual(a, b) {
		t.Fatal("identical plaintexts produced identical ciphertexts (nonce reuse?)")
	}
}

func TestCodecByName(t *testing.T) {
	for _, name := range []string{"binary", "json", "varint"} {
		c, ok := CodecByName(name)
		if !ok || c.Name() != name {
			t.Errorf("CodecByName(%q) = %v, %v", name, c, ok)
		}
	}
	if _, ok := CodecByName("asn1"); ok {
		t.Error("unknown codec resolved")
	}
}

func randomIndication(rng *rand.Rand) *Indication {
	ind := &Indication{Slot: rng.Uint64(), Cell: rng.Uint32()}
	for i := 0; i < rng.Intn(20); i++ {
		ind.UEs = append(ind.UEs, UEMeasurement{
			UEID: rng.Uint32(), SliceID: rng.Uint32(), MCS: int32(rng.Intn(29)),
			BufferBytes: rng.Uint32(), TputBps: rng.Float64() * 1e8,
		})
	}
	for i := 0; i < rng.Intn(6); i++ {
		ind.Slices = append(ind.Slices, SliceMeasurement{
			SliceID: rng.Uint32(), TargetBps: rng.Float64() * 1e8,
			ServedBps: rng.Float64() * 1e8, UsedPRBs: rng.Uint32(),
		})
	}
	return ind
}

// Property: every codec round-trips randomized indications.
func TestQuickIndicationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	codecs := allCodecs(t)
	for trial := 0; trial < 200; trial++ {
		msg := &Message{Type: TypeIndication, RequestID: rng.Uint32(), Indication: randomIndication(rng)}
		for _, codec := range codecs {
			wire, err := codec.Encode(msg)
			if err != nil {
				t.Fatalf("%s: %v", codec.Name(), err)
			}
			got, err := codec.Decode(wire)
			if err != nil {
				t.Fatalf("%s: %v", codec.Name(), err)
			}
			if !reflect.DeepEqual(got, msg) {
				t.Fatalf("%s round trip mismatch", codec.Name())
			}
		}
	}
}

func TestBodyHelpersMatchCodec(t *testing.T) {
	// The body-level helpers (xApp ABI) must produce exactly the binary
	// codec's indication payload.
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		ind := randomIndication(rng)
		msg := &Message{Type: TypeIndication, Indication: ind}
		full, err := BinaryCodec{}.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		body := AppendIndicationBody(nil, ind)
		const header = 9 // type u8 + requestID u32 + ranFunction u32
		if !reflect.DeepEqual(full[header:], body) {
			t.Fatal("body helper and codec disagree on layout")
		}
		back, err := DecodeIndicationBody(body)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(back, ind) {
			t.Fatal("indication body round trip mismatch")
		}
	}
}

func TestControlListRoundTrip(t *testing.T) {
	list := []ControlRequest{
		{Action: ActionHandover, UEID: 3, Text: "cell-9"},
		{Action: ActionSetSliceWeight, SliceID: 1, Value: 2.5},
		{Action: ActionSwapScheduler, SliceID: 4, Text: "pf"},
	}
	b := AppendControlList(nil, list)
	got, err := DecodeControlList(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, list) {
		t.Fatalf("mismatch: %+v", got)
	}
	// Empty list.
	if got, err := DecodeControlList(AppendControlList(nil, nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty list: %v, %v", got, err)
	}
	// Trailing bytes rejected.
	if _, err := DecodeControlList(append(b, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestActionAndTypeStrings(t *testing.T) {
	if ActionHandover.String() != "handover" || ActionSetSliceTarget.String() != "set-slice-target" {
		t.Error("action names wrong")
	}
	if TypeIndication.String() != "indication" {
		t.Error("type name wrong")
	}
	if ControlAction(200).String() == "" || MessageType(200).String() == "" {
		t.Error("unknown enums must still format")
	}
}

package e2

import (
	"sync"
	"testing"

	"waran/internal/obs/flight"
)

// TestListenerJournalsAssociationLifecycle checks the transport is the single
// source of association events: accepting a connection journals e2.assoc_up,
// closing it journals e2.assoc_down exactly once (idempotent Close included),
// both on the E2 plane with the peer address in the detail.
func TestListenerJournalsAssociationLifecycle(t *testing.T) {
	rec := flight.NewRecorder(16)
	lis, err := Listen("127.0.0.1:0", BinaryCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	lis.SetFlightRecorder(rec)

	var wg sync.WaitGroup
	var server *Conn
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := lis.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		server = c
	}()
	client, err := Dial(lis.Addr().String(), BinaryCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	wg.Wait()
	if server == nil {
		t.Fatal("accept failed")
	}

	if n := rec.Count(flight.EvAssocUp); n != 1 {
		t.Fatalf("assoc_up events = %d, want 1", n)
	}
	if n := rec.Count(flight.EvAssocDown); n != 0 {
		t.Fatalf("assoc_down before close = %d, want 0", n)
	}

	server.Close()
	server.Close() // idempotent: the down event must not double-count
	if n := rec.Count(flight.EvAssocDown); n != 1 {
		t.Fatalf("assoc_down events = %d, want 1", n)
	}

	for _, ev := range rec.Tail(4) {
		if ev.Plane != flight.PlaneE2 {
			t.Fatalf("%v journaled on plane %v, want e2", ev.Class, ev.Plane)
		}
		if ev.Detail == "" {
			t.Fatalf("%v missing peer address detail", ev.Class)
		}
	}

	// A dialed (client-side) conn has no recorder: closing it journals
	// nothing, and the nil path must not panic.
	client.Close()
	if n := rec.Count(flight.EvAssocDown); n != 1 {
		t.Fatalf("client close journaled on the server recorder: %d down events", n)
	}
}

package e2

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"
)

// pair establishes a connected listener/dialer pair over loopback.
func pair(t *testing.T, codec Codec) (server, client *Conn) {
	t.Helper()
	lis, err := Listen("127.0.0.1:0", codec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := lis.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		server = c
	}()
	client, err = Dial(lis.Addr().String(), codec)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	t.Cleanup(func() {
		client.Close()
		if server != nil {
			server.Close()
		}
	})
	return server, client
}

func TestTransportRoundTrip(t *testing.T) {
	server, client := pair(t, BinaryCodec{})
	msgs := sampleMessages()
	go func() {
		for _, m := range msgs {
			if err := client.Send(m); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i, want := range msgs {
		got, err := server.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if got.Type != want.Type || got.RequestID != want.RequestID {
			t.Fatalf("message %d: got %v/%d want %v/%d", i, got.Type, got.RequestID, want.Type, want.RequestID)
		}
	}
	if st := client.Stats(); st.Sent != uint64(len(msgs)) || st.BytesSent == 0 {
		t.Fatalf("client stats: sent=%d bytes=%d", st.Sent, st.BytesSent)
	}
	if st := server.Stats(); st.Received != uint64(len(msgs)) || st.BytesReceived == 0 {
		t.Fatalf("server stats: received=%d bytes=%d", st.Received, st.BytesReceived)
	}
}

func TestTransportBidirectional(t *testing.T) {
	server, client := pair(t, VarintCodec{})
	done := make(chan error, 1)
	go func() {
		m, err := server.Recv()
		if err != nil {
			done <- err
			return
		}
		done <- server.Send(&Message{Type: TypeControlAck, RequestID: m.RequestID,
			ControlAck: &ControlAck{Accepted: true}})
	}()
	if err := client.Send(&Message{Type: TypeControlRequest, RequestID: 5,
		Control: &ControlRequest{Action: ActionHandover, UEID: 1, Text: "x"}}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	ack, err := client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Type != TypeControlAck || ack.RequestID != 5 || !ack.ControlAck.Accepted {
		t.Fatalf("ack = %+v", ack)
	}
}

func TestTransportLargeIndication(t *testing.T) {
	server, client := pair(t, BinaryCodec{})
	big := &Indication{Slot: 1, Cell: 1}
	for i := 0; i < 5000; i++ {
		big.UEs = append(big.UEs, UEMeasurement{UEID: uint32(i), TputBps: float64(i)})
	}
	go func() {
		if err := client.Send(&Message{Type: TypeIndication, Indication: big}); err != nil {
			t.Error(err)
		}
	}()
	got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Indication.UEs) != 5000 {
		t.Fatalf("UEs = %d", len(got.Indication.UEs))
	}
}

func TestTransportRejectsOversizedFrame(t *testing.T) {
	lis, err := Listen("127.0.0.1:0", BinaryCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		raw, err := net.Dial("tcp", lis.Addr().String())
		if err != nil {
			return
		}
		defer raw.Close()
		// Claim a 1 GiB frame.
		raw.Write([]byte{0x40, 0x00, 0x00, 0x00})
		time.Sleep(100 * time.Millisecond)
	}()
	conn, err := lis.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Recv(); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestTransportConcurrentSenders(t *testing.T) {
	server, client := pair(t, BinaryCodec{})
	const perSender, senders = 50, 8
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				if err := client.Send(&Message{Type: TypeHeartbeat}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		for i := 0; i < perSender*senders; i++ {
			if _, err := server.Recv(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	select {
	case <-recvDone:
	case <-time.After(5 * time.Second):
		t.Fatal("interleaved frames corrupted the stream")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", BinaryCodec{}); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

// TestReadPayloadShortStream verifies a length prefix claiming more data
// than arrives fails with ErrUnexpectedEOF instead of blocking or
// succeeding short.
func TestReadPayloadShortStream(t *testing.T) {
	r := bytes.NewReader(make([]byte, 10))
	if _, err := readPayload(r, 1<<20); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
}

// TestReadPayloadLarge exercises the incremental growth path with a frame
// much larger than the initial chunk.
func TestReadPayloadLarge(t *testing.T) {
	want := make([]byte, 300<<10)
	for i := range want {
		want[i] = byte(i * 31)
	}
	got, err := readPayload(bytes.NewReader(want), len(want))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("large payload corrupted by incremental read")
	}
}

// TestRecvDoesNotPreallocateFromLengthPrefix is the regression test for
// the hostile length prefix: a 4-byte header claiming MaxFrameBytes must
// not commit megabytes of memory before the payload actually arrives.
func TestRecvDoesNotPreallocateFromLengthPrefix(t *testing.T) {
	const rounds = 64
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < rounds; i++ {
		// Claims the full 4 MiB but delivers 16 bytes.
		_, err := readPayload(bytes.NewReader(make([]byte, 16)), MaxFrameBytes)
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("round %d: err = %v, want ErrUnexpectedEOF", i, err)
		}
	}
	runtime.ReadMemStats(&after)
	total := after.TotalAlloc - before.TotalAlloc
	// Eager allocation would cost rounds * 4 MiB = 256 MiB; incremental
	// reads stay near rounds * 64 KiB. Allow generous slack.
	if limit := uint64(rounds) * (1 << 20); total > limit {
		t.Fatalf("allocated %d bytes over %d hostile frames (limit %d): length prefix is trusted again", total, rounds, limit)
	}
}

// TestRecvRejectsOversizedFrame keeps the frame cap itself enforced.
func TestRecvRejectsOversizedFrame(t *testing.T) {
	server, client := pair(t, BinaryCodec{})
	go func() {
		raw := make([]byte, 4)
		binary.BigEndian.PutUint32(raw, MaxFrameBytes+1)
		// Reach under the framing: write a hostile header directly.
		client.c.Write(raw)
	}()
	if _, err := server.Recv(); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

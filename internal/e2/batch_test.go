package e2

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

func sampleBatch(nInd, nUE, nSlice int, seed int64) *IndicationBatch {
	rng := rand.New(rand.NewSource(seed))
	batch := &IndicationBatch{}
	for i := 0; i < nInd; i++ {
		ind := Indication{Slot: uint64(1000 + i), Cell: rng.Uint32() % 512}
		for u := 0; u < nUE; u++ {
			ind.UEs = append(ind.UEs, UEMeasurement{
				UEID: rng.Uint32(), SliceID: rng.Uint32() % 8, MCS: int32(rng.Intn(29)),
				BufferBytes: rng.Uint32(), TputBps: rng.Float64() * 1e8,
			})
		}
		for s := 0; s < nSlice; s++ {
			ind.Slices = append(ind.Slices, SliceMeasurement{
				SliceID: uint32(s + 1), TargetBps: rng.Float64() * 1e8,
				ServedBps: rng.Float64() * 1e8, UsedPRBs: rng.Uint32() % 100,
			})
		}
		batch.Indications = append(batch.Indications, ind)
	}
	return batch
}

func TestBatchRoundTripAllCodecs(t *testing.T) {
	msg := &Message{
		Type: TypeIndicationBatch, RequestID: 12, RANFunction: RANFunctionKPM,
		Batch: sampleBatch(5, 3, 2, 42),
	}
	for _, codec := range allCodecs(t) {
		wire, err := codec.Encode(msg)
		if err != nil {
			t.Fatalf("%s: encode: %v", codec.Name(), err)
		}
		got, err := codec.Decode(wire)
		if err != nil {
			t.Fatalf("%s: decode: %v", codec.Name(), err)
		}
		if !reflect.DeepEqual(got, msg) {
			t.Errorf("%s: mismatch:\ngot  %+v\nwant %+v", codec.Name(), got, msg)
		}
	}
}

// TestBatchBodyIsConcatenatedIndicationBodies pins the unbatching contract
// at the byte level: the binary batch body is exactly a u16 count followed
// by each per-slot indication body as AppendIndicationBody produces it —
// the same bytes the RIC hands an xApp on the unbatched path.
func TestBatchBodyIsConcatenatedIndicationBodies(t *testing.T) {
	batch := sampleBatch(4, 2, 2, 7)
	got := appendBatchBody(nil, batch)
	w := &bwriter{}
	w.u16(uint16(len(batch.Indications)))
	want := w.b
	for i := range batch.Indications {
		want = AppendIndicationBody(want, &batch.Indications[i])
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("batch body is not count + concatenated indication bodies")
	}
}

func TestBatchValidation(t *testing.T) {
	empty := &Message{Type: TypeIndicationBatch, Batch: &IndicationBatch{}}
	if err := empty.Validate(); !errors.Is(err, ErrMalformed) {
		t.Fatalf("empty batch accepted: %v", err)
	}
	over := &Message{Type: TypeIndicationBatch, Batch: &IndicationBatch{
		Indications: make([]Indication, MaxBatchIndications+1),
	}}
	if err := over.Validate(); !errors.Is(err, ErrMalformed) {
		t.Fatalf("oversized batch accepted: %v", err)
	}
	missing := &Message{Type: TypeIndicationBatch}
	if err := missing.Validate(); !errors.Is(err, ErrMalformed) {
		t.Fatalf("missing batch body accepted: %v", err)
	}
	two := &Message{Type: TypeIndicationBatch, Batch: sampleBatch(1, 0, 0, 1), Indication: &Indication{}}
	if err := two.Validate(); !errors.Is(err, ErrMalformed) {
		t.Fatalf("two bodies accepted: %v", err)
	}
}

// TestBatchDecodeRejectsOversizedCount feeds a binary batch frame whose
// count field promises more indications than the limit.
func TestBatchDecodeRejectsOversizedCount(t *testing.T) {
	w := &bwriter{}
	w.u8(uint8(TypeIndicationBatch))
	w.u32(1)
	w.u32(RANFunctionKPM)
	w.u16(uint16(MaxBatchIndications + 1))
	if _, err := (BinaryCodec{}).Decode(w.b); !errors.Is(err, ErrMalformed) {
		t.Fatalf("got %v, want ErrMalformed", err)
	}
}

func TestCapabilityTokens(t *testing.T) {
	cases := []struct {
		reason, tok string
		want        bool
	}{
		{"", TraceCapabilityToken, false},
		{TraceCapabilityToken, TraceCapabilityToken, true},
		{TraceCapabilityToken, BatchCapabilityToken, false},
		{"trace-v1 batch-v1", TraceCapabilityToken, true},
		{"trace-v1 batch-v1", BatchCapabilityToken, true},
		{"batch-v1", BatchCapabilityToken, true},
		{"trace-v10", TraceCapabilityToken, false},
		{"x trace-v1", TraceCapabilityToken, true},
	}
	for _, c := range cases {
		if got := HasCapabilityToken(c.reason, c.tok); got != c.want {
			t.Errorf("HasCapabilityToken(%q, %q) = %v, want %v", c.reason, c.tok, got, c.want)
		}
	}
	if got := AppendCapabilityToken("", TraceCapabilityToken); got != TraceCapabilityToken {
		t.Errorf("AppendCapabilityToken on empty = %q", got)
	}
	got := AppendCapabilityToken(TraceCapabilityToken, BatchCapabilityToken)
	if got != "trace-v1 batch-v1" {
		t.Errorf("AppendCapabilityToken = %q", got)
	}
}

// FuzzIndicationBatchRoundTrip builds a seeded batch from fuzzed shape
// parameters and drives it through every codec: decode(encode(x)) must be
// structurally identical, the binary body must stay the concatenation of
// per-slot indication bodies, and re-encoding the decoded form must be
// byte-stable.
func FuzzIndicationBatchRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint8(0), uint8(0), int64(0))
	f.Add(uint8(8), uint8(4), uint8(3), int64(99))
	f.Add(uint8(64), uint8(1), uint8(1), int64(-5))
	f.Fuzz(func(t *testing.T, nInd, nUE, nSlice uint8, seed int64) {
		if nInd == 0 {
			nInd = 1 // empty batches are invalid by contract
		}
		batch := sampleBatch(int(nInd), int(nUE)%16, int(nSlice)%8, seed)
		msg := &Message{Type: TypeIndicationBatch, RequestID: 5, RANFunction: RANFunctionKPM, Batch: batch}
		for _, codec := range traceCodecs() {
			wire, err := codec.Encode(msg)
			if err != nil {
				t.Fatalf("%s: encode: %v", codec.Name(), err)
			}
			got, err := codec.Decode(wire)
			if err != nil {
				t.Fatalf("%s: decode: %v", codec.Name(), err)
			}
			rewire, err := codec.Encode(got)
			if err != nil {
				t.Fatalf("%s: re-encode: %v", codec.Name(), err)
			}
			if !bytes.Equal(wire, rewire) {
				t.Fatalf("%s: re-encode not byte-stable", codec.Name())
			}
			if len(got.Batch.Indications) != len(batch.Indications) {
				t.Fatalf("%s: %d indications, want %d", codec.Name(),
					len(got.Batch.Indications), len(batch.Indications))
			}
			for i := range batch.Indications {
				a := AppendIndicationBody(nil, &got.Batch.Indications[i])
				b := AppendIndicationBody(nil, &batch.Indications[i])
				if !bytes.Equal(a, b) {
					t.Fatalf("%s: indication %d not bit-identical after round trip", codec.Name(), i)
				}
			}
		}
	})
}

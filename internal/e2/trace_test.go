package e2

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"waran/internal/obs/trace"
)

// traceCodecs are the three wire codecs the trace trailer must traverse;
// the sealed codec wraps one of these, so it inherits the property.
func traceCodecs() []Codec {
	return []Codec{BinaryCodec{}, JSONCodec{}, VarintCodec{}}
}

func TestTraceContextRoundTrips(t *testing.T) {
	ctx := trace.Context{TraceID: 0xDEADBEEFCAFE, SpanID: 42}
	for _, codec := range traceCodecs() {
		for i, msg := range sampleMessages() {
			m := *msg
			m.Trace = ctx
			wire, err := codec.Encode(&m)
			if err != nil {
				t.Fatalf("%s message %d: encode: %v", codec.Name(), i, err)
			}
			got, err := codec.Decode(wire)
			if err != nil {
				t.Fatalf("%s message %d: decode: %v", codec.Name(), i, err)
			}
			if got.Trace != ctx {
				t.Errorf("%s message %d: trace %+v, want %+v", codec.Name(), i, got.Trace, ctx)
			}
		}
	}
}

// TestUntracedEncodingUnchanged pins the compatibility contract: a message
// without a trace context encodes to exactly the pre-trace wire format — no
// marker, no reserved bytes — so untraced peers are byte-for-byte unaffected.
func TestUntracedEncodingUnchanged(t *testing.T) {
	for _, codec := range []Codec{BinaryCodec{}, VarintCodec{}} {
		for i, msg := range sampleMessages() {
			wire, err := codec.Encode(msg)
			if err != nil {
				t.Fatalf("%s message %d: encode: %v", codec.Name(), i, err)
			}
			traced := *msg
			traced.Trace = trace.Context{TraceID: 7, SpanID: 9}
			wireT, err := codec.Encode(&traced)
			if err != nil {
				t.Fatalf("%s message %d: traced encode: %v", codec.Name(), i, err)
			}
			if len(wireT) != len(wire)+traceTrailerLen {
				t.Fatalf("%s message %d: traced adds %d bytes, want %d",
					codec.Name(), i, len(wireT)-len(wire), traceTrailerLen)
			}
			if !bytes.Equal(wireT[:len(wire)], wire) {
				t.Errorf("%s message %d: traced prefix differs from untraced encoding", codec.Name(), i)
			}
		}
	}
}

// TestOldJSONDecoderSkipsTrace decodes a traced JSON frame with a pre-trace
// message replica: the unknown "trace" field must be silently ignored.
func TestOldJSONDecoderSkipsTrace(t *testing.T) {
	m := &Message{Type: TypeHeartbeat, Trace: trace.Context{TraceID: 3, SpanID: 4}}
	wire, err := JSONCodec{}.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	var old struct {
		Type MessageType `json:"type"`
	}
	if err := json.Unmarshal(wire, &old); err != nil {
		t.Fatalf("pre-trace replica rejected traced frame: %v", err)
	}
	if old.Type != TypeHeartbeat {
		t.Fatalf("type %v, want heartbeat", old.Type)
	}
}

func TestTraceTrailerRejectsCorruption(t *testing.T) {
	base, _ := BinaryCodec{}.Encode(&Message{Type: TypeHeartbeat})
	traced, _ := BinaryCodec{}.Encode(&Message{
		Type: TypeHeartbeat, Trace: trace.Context{TraceID: 1, SpanID: 2},
	})
	cases := map[string][]byte{
		"truncated trailer": traced[:len(traced)-1],
		"bad marker":        append(append([]byte(nil), base...), make([]byte, traceTrailerLen)...),
		"extra byte":        append(append([]byte(nil), traced...), 0xFF),
	}
	for name, wire := range cases {
		if _, err := (BinaryCodec{}).Decode(wire); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: got %v, want ErrMalformed", name, err)
		}
	}
}

// FuzzMessageHeaderRoundTrip drives arbitrary bytes through all three
// codecs and checks the trace-trailer contract on everything that decodes:
// the untraced encoding is a strict byte prefix of the traced one (old
// decoders see the exact pre-trace format), decoders tolerate absence, and
// a traced frame round-trips its context.
func FuzzMessageHeaderRoundTrip(f *testing.F) {
	for _, msg := range sampleMessages() {
		for _, codec := range traceCodecs() {
			if wire, err := codec.Encode(msg); err == nil {
				f.Add(wire, uint64(1), uint64(2))
			}
		}
	}
	f.Fuzz(func(t *testing.T, data []byte, tid, sid uint64) {
		ctx := trace.Context{TraceID: tid | 1, SpanID: sid}
		for _, codec := range traceCodecs() {
			m, err := codec.Decode(data)
			if err != nil || m.Validate() != nil {
				continue
			}
			m.Trace = trace.Context{}
			wireU, err := codec.Encode(m)
			if err != nil {
				t.Fatalf("%s: untraced re-encode: %v", codec.Name(), err)
			}
			gotU, err := codec.Decode(wireU)
			if err != nil {
				t.Fatalf("%s: untraced decode: %v", codec.Name(), err)
			}
			if gotU.Trace.Valid() {
				t.Fatalf("%s: untraced frame decoded a trace %+v", codec.Name(), gotU.Trace)
			}

			m.Trace = ctx
			wireT, err := codec.Encode(m)
			if err != nil {
				t.Fatalf("%s: traced encode: %v", codec.Name(), err)
			}
			gotT, err := codec.Decode(wireT)
			if err != nil {
				t.Fatalf("%s: traced decode: %v", codec.Name(), err)
			}
			if gotT.Trace != ctx {
				t.Fatalf("%s: trace %+v, want %+v", codec.Name(), gotT.Trace, ctx)
			}
			if codec.Name() != "json" {
				if !bytes.HasPrefix(wireT, wireU) || len(wireT) != len(wireU)+traceTrailerLen {
					t.Fatalf("%s: traced frame is not untraced + %d-byte trailer", codec.Name(), traceTrailerLen)
				}
			}
		}
	})
}

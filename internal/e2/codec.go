package e2

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"waran/internal/obs/trace"
)

// Codec serializes E2-lite messages to wire payloads. The choice of codec
// is an operator decision wrapped inside communication plugins (paper §4B):
// the fixed-layout binary codec is the smallest and fastest; the varint
// codec ("protobuf-lite") is compact for small values; JSON is the
// interoperability/debugging option.
type Codec interface {
	Name() string
	Encode(m *Message) ([]byte, error)
	Decode(b []byte) (*Message, error)
}

// AppendEncoder is the optional allocation-free encoding fast path: codecs
// that implement it encode into the caller's buffer instead of allocating a
// fresh payload per message. Conn.Send uses it to reuse one frame buffer
// per association, which keeps per-indication allocations flat when
// thousands of associations stream KPM reports.
type AppendEncoder interface {
	AppendEncode(dst []byte, m *Message) ([]byte, error)
}

// ---------------------------------------------------------------------------
// BinaryCodec: fixed little-endian layout ("ASN.1-lite" in spirit: compact,
// position-based).

// BinaryCodec is the compact fixed-layout codec.
type BinaryCodec struct{}

// Name implements Codec.
func (BinaryCodec) Name() string { return "binary" }

type bwriter struct{ b []byte }

func (w *bwriter) u8(v uint8)   { w.b = append(w.b, v) }
func (w *bwriter) u16(v uint16) { w.b = binary.LittleEndian.AppendUint16(w.b, v) }
func (w *bwriter) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *bwriter) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *bwriter) f64(v float64) {
	w.u64(math.Float64bits(v))
}
func (w *bwriter) str(s string) {
	if len(s) > 0xFFFF {
		s = s[:0xFFFF]
	}
	w.u16(uint16(len(s)))
	w.b = append(w.b, s...)
}

type breader struct {
	b   []byte
	pos int
}

func (r *breader) left() int { return len(r.b) - r.pos }

func (r *breader) u8() (uint8, error) {
	if r.left() < 1 {
		return 0, ErrMalformed
	}
	v := r.b[r.pos]
	r.pos++
	return v, nil
}

func (r *breader) u16() (uint16, error) {
	if r.left() < 2 {
		return 0, ErrMalformed
	}
	v := binary.LittleEndian.Uint16(r.b[r.pos:])
	r.pos += 2
	return v, nil
}

func (r *breader) u32() (uint32, error) {
	if r.left() < 4 {
		return 0, ErrMalformed
	}
	v := binary.LittleEndian.Uint32(r.b[r.pos:])
	r.pos += 4
	return v, nil
}

func (r *breader) u64() (uint64, error) {
	if r.left() < 8 {
		return 0, ErrMalformed
	}
	v := binary.LittleEndian.Uint64(r.b[r.pos:])
	r.pos += 8
	return v, nil
}

func (r *breader) f64() (float64, error) {
	v, err := r.u64()
	return math.Float64frombits(v), err
}

func (r *breader) str() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	if r.left() < int(n) {
		return "", ErrMalformed
	}
	s := string(r.b[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

// Encode implements Codec.
func (c BinaryCodec) Encode(m *Message) ([]byte, error) { return c.AppendEncode(nil, m) }

// AppendEncode implements AppendEncoder: it encodes into dst's spare
// capacity so the transport can reuse one send buffer per association.
func (BinaryCodec) AppendEncode(dst []byte, m *Message) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	w := &bwriter{b: dst}
	w.u8(uint8(m.Type))
	w.u32(m.RequestID)
	w.u32(m.RANFunction)
	switch m.Type {
	case TypeSubscriptionRequest:
		w.u32(m.Subscription.ReportPeriodMs)
		w.u16(uint16(len(m.Subscription.SliceIDs)))
		for _, id := range m.Subscription.SliceIDs {
			w.u32(id)
		}
	case TypeSubscriptionResponse:
		w.u8(boolByte(m.SubscriptionResp.Accepted))
		w.str(m.SubscriptionResp.Reason)
	case TypeIndication:
		w.b = AppendIndicationBody(w.b, m.Indication)
	case TypeIndicationBatch:
		w.b = appendBatchBody(w.b, m.Batch)
	case TypeControlRequest:
		w.b = AppendControlBody(w.b, m.Control)
	case TypeControlAck:
		w.u8(boolByte(m.ControlAck.Accepted))
		w.str(m.ControlAck.Reason)
	case TypeError:
		w.str(m.Error.Reason)
	case TypeBusy:
		w.u32(m.Busy.RetryAfterMs)
		w.str(m.Busy.Reason)
	case TypeHeartbeat:
	}
	w.b = appendTraceTrailer(w.b, m.Trace)
	return w.b, nil
}

// Decode implements Codec.
func (BinaryCodec) Decode(b []byte) (*Message, error) {
	r := &breader{b: b}
	t, err := r.u8()
	if err != nil {
		return nil, err
	}
	m := &Message{Type: MessageType(t)}
	if m.RequestID, err = r.u32(); err != nil {
		return nil, err
	}
	if m.RANFunction, err = r.u32(); err != nil {
		return nil, err
	}
	switch m.Type {
	case TypeSubscriptionRequest:
		sub := &SubscriptionRequest{}
		if sub.ReportPeriodMs, err = r.u32(); err != nil {
			return nil, err
		}
		n, err := r.u16()
		if err != nil {
			return nil, err
		}
		for i := 0; i < int(n); i++ {
			id, err := r.u32()
			if err != nil {
				return nil, err
			}
			sub.SliceIDs = append(sub.SliceIDs, id)
		}
		m.Subscription = sub
	case TypeSubscriptionResponse:
		resp := &SubscriptionResponse{}
		ok, err := r.u8()
		if err != nil {
			return nil, err
		}
		resp.Accepted = ok != 0
		if resp.Reason, err = r.str(); err != nil {
			return nil, err
		}
		m.SubscriptionResp = resp
	case TypeIndication:
		if m.Indication, err = readIndicationBody(r); err != nil {
			return nil, err
		}
	case TypeIndicationBatch:
		if m.Batch, err = readBatchBody(r); err != nil {
			return nil, err
		}
	case TypeControlRequest:
		if m.Control, err = readControlBody(r); err != nil {
			return nil, err
		}
	case TypeControlAck:
		ack := &ControlAck{}
		ok, err := r.u8()
		if err != nil {
			return nil, err
		}
		ack.Accepted = ok != 0
		if ack.Reason, err = r.str(); err != nil {
			return nil, err
		}
		m.ControlAck = ack
	case TypeError:
		e := &ErrorBody{}
		if e.Reason, err = r.str(); err != nil {
			return nil, err
		}
		m.Error = e
	case TypeBusy:
		busy := &BusyBody{}
		if busy.RetryAfterMs, err = r.u32(); err != nil {
			return nil, err
		}
		if busy.Reason, err = r.str(); err != nil {
			return nil, err
		}
		m.Busy = busy
	case TypeHeartbeat:
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, t)
	}
	switch r.left() {
	case 0: // untraced peer — the pre-trace wire format
	case traceTrailerLen:
		tc, ok := parseTraceTrailer(r.b[r.pos:])
		if !ok {
			return nil, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, r.left())
		}
		m.Trace = tc
	default:
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, r.left())
	}
	return m, nil
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// ---------------------------------------------------------------------------
// JSONCodec.

// JSONCodec encodes messages as JSON objects.
type JSONCodec struct{}

// Name implements Codec.
func (JSONCodec) Name() string { return "json" }

type jsonMessage struct {
	Type        uint8  `json:"type"`
	RequestID   uint32 `json:"request_id"`
	RANFunction uint32 `json:"ran_function"`
	// Trace is the JSON form of the trace context; old decoders built on
	// encoding/json skip the unknown field by construction.
	Trace   *trace.Context        `json:"trace,omitempty"`
	Sub     *SubscriptionRequest  `json:"subscription,omitempty"`
	SubResp *SubscriptionResponse `json:"subscription_response,omitempty"`
	Ind     *Indication           `json:"indication,omitempty"`
	Batch   *IndicationBatch      `json:"indication_batch,omitempty"`
	Ctrl    *ControlRequest       `json:"control,omitempty"`
	Ack     *ControlAck           `json:"control_ack,omitempty"`
	Err     *ErrorBody            `json:"error,omitempty"`
	Busy    *BusyBody             `json:"busy,omitempty"`
}

// Encode implements Codec.
func (JSONCodec) Encode(m *Message) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	jm := jsonMessage{
		Type: uint8(m.Type), RequestID: m.RequestID, RANFunction: m.RANFunction,
		Sub: m.Subscription, SubResp: m.SubscriptionResp, Ind: m.Indication,
		Batch: m.Batch, Ctrl: m.Control, Ack: m.ControlAck, Err: m.Error,
		Busy: m.Busy,
	}
	if m.Trace.Valid() {
		tc := m.Trace
		jm.Trace = &tc
	}
	return json.Marshal(jm)
}

// Decode implements Codec.
func (JSONCodec) Decode(b []byte) (*Message, error) {
	var jm jsonMessage
	if err := json.Unmarshal(b, &jm); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	m := &Message{
		Type: MessageType(jm.Type), RequestID: jm.RequestID, RANFunction: jm.RANFunction,
		Subscription: jm.Sub, SubscriptionResp: jm.SubResp, Indication: jm.Ind,
		Batch: jm.Batch, Control: jm.Ctrl, ControlAck: jm.Ack, Error: jm.Err,
		Busy: jm.Busy,
	}
	if jm.Trace != nil {
		m.Trace = *jm.Trace
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// ---------------------------------------------------------------------------
// VarintCodec: same structure as the binary codec but with unsigned varint
// integers — the "protobuf-lite" option, smallest when values are small.

// VarintCodec is the varint-packed codec.
type VarintCodec struct{}

// Name implements Codec.
func (VarintCodec) Name() string { return "varint" }

type vwriter struct{ b []byte }

func (w *vwriter) uv(v uint64)   { w.b = binary.AppendUvarint(w.b, v) }
func (w *vwriter) f64(v float64) { w.b = binary.LittleEndian.AppendUint64(w.b, math.Float64bits(v)) }
func (w *vwriter) str(s string) {
	w.uv(uint64(len(s)))
	w.b = append(w.b, s...)
}

type vreader struct {
	b   []byte
	pos int
}

func (r *vreader) uv() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		return 0, ErrMalformed
	}
	r.pos += n
	return v, nil
}

func (r *vreader) f64() (float64, error) {
	if len(r.b)-r.pos < 8 {
		return 0, ErrMalformed
	}
	v := binary.LittleEndian.Uint64(r.b[r.pos:])
	r.pos += 8
	return math.Float64frombits(v), nil
}

func (r *vreader) str() (string, error) {
	n, err := r.uv()
	if err != nil {
		return "", err
	}
	if uint64(len(r.b)-r.pos) < n {
		return "", ErrMalformed
	}
	s := string(r.b[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

// Encode implements Codec.
func (c VarintCodec) Encode(m *Message) ([]byte, error) { return c.AppendEncode(nil, m) }

// AppendEncode implements AppendEncoder: it encodes into dst's spare
// capacity so the transport can reuse one send buffer per association.
func (VarintCodec) AppendEncode(dst []byte, m *Message) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	w := &vwriter{b: dst}
	w.uv(uint64(m.Type))
	w.uv(uint64(m.RequestID))
	w.uv(uint64(m.RANFunction))
	switch m.Type {
	case TypeSubscriptionRequest:
		w.uv(uint64(m.Subscription.ReportPeriodMs))
		w.uv(uint64(len(m.Subscription.SliceIDs)))
		for _, id := range m.Subscription.SliceIDs {
			w.uv(uint64(id))
		}
	case TypeSubscriptionResponse:
		w.uv(uint64(boolByte(m.SubscriptionResp.Accepted)))
		w.str(m.SubscriptionResp.Reason)
	case TypeIndication:
		writeVarintIndication(w, m.Indication)
	case TypeIndicationBatch:
		w.uv(uint64(len(m.Batch.Indications)))
		for i := range m.Batch.Indications {
			writeVarintIndication(w, &m.Batch.Indications[i])
		}
	case TypeControlRequest:
		c := m.Control
		w.uv(uint64(c.Action))
		w.uv(uint64(c.SliceID))
		w.uv(uint64(c.UEID))
		w.f64(c.Value)
		w.str(c.Text)
		w.uv(uint64(len(c.Blob)))
		w.b = append(w.b, c.Blob...)
	case TypeControlAck:
		w.uv(uint64(boolByte(m.ControlAck.Accepted)))
		w.str(m.ControlAck.Reason)
	case TypeError:
		w.str(m.Error.Reason)
	case TypeBusy:
		w.uv(uint64(m.Busy.RetryAfterMs))
		w.str(m.Busy.Reason)
	case TypeHeartbeat:
	}
	w.b = appendTraceTrailer(w.b, m.Trace)
	return w.b, nil
}

// Decode implements Codec.
func (VarintCodec) Decode(b []byte) (*Message, error) {
	r := &vreader{b: b}
	t, err := r.uv()
	if err != nil {
		return nil, err
	}
	m := &Message{Type: MessageType(t)}
	rid, err := r.uv()
	if err != nil {
		return nil, err
	}
	m.RequestID = uint32(rid)
	rf, err := r.uv()
	if err != nil {
		return nil, err
	}
	m.RANFunction = uint32(rf)
	uvU32 := func() (uint32, error) {
		v, err := r.uv()
		return uint32(v), err
	}
	switch m.Type {
	case TypeSubscriptionRequest:
		sub := &SubscriptionRequest{}
		if sub.ReportPeriodMs, err = uvU32(); err != nil {
			return nil, err
		}
		n, err := r.uv()
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < n; i++ {
			id, err := uvU32()
			if err != nil {
				return nil, err
			}
			sub.SliceIDs = append(sub.SliceIDs, id)
		}
		m.Subscription = sub
	case TypeSubscriptionResponse:
		resp := &SubscriptionResponse{}
		ok, err := r.uv()
		if err != nil {
			return nil, err
		}
		resp.Accepted = ok != 0
		if resp.Reason, err = r.str(); err != nil {
			return nil, err
		}
		m.SubscriptionResp = resp
	case TypeIndication:
		if m.Indication, err = readVarintIndication(r); err != nil {
			return nil, err
		}
	case TypeIndicationBatch:
		n, err := r.uv()
		if err != nil {
			return nil, err
		}
		if n > MaxBatchIndications {
			return nil, fmt.Errorf("%w: batch of %d indications exceeds limit", ErrMalformed, n)
		}
		batch := &IndicationBatch{}
		for i := uint64(0); i < n; i++ {
			ind, err := readVarintIndication(r)
			if err != nil {
				return nil, err
			}
			batch.Indications = append(batch.Indications, *ind)
		}
		m.Batch = batch
	case TypeControlRequest:
		c := &ControlRequest{}
		a, err := r.uv()
		if err != nil {
			return nil, err
		}
		c.Action = ControlAction(a)
		if c.SliceID, err = uvU32(); err != nil {
			return nil, err
		}
		if c.UEID, err = uvU32(); err != nil {
			return nil, err
		}
		if c.Value, err = r.f64(); err != nil {
			return nil, err
		}
		if c.Text, err = r.str(); err != nil {
			return nil, err
		}
		blobLen, err := r.uv()
		if err != nil {
			return nil, err
		}
		if uint64(len(r.b)-r.pos) < blobLen {
			return nil, ErrMalformed
		}
		if blobLen > 0 {
			c.Blob = make([]byte, blobLen)
			copy(c.Blob, r.b[r.pos:])
			r.pos += int(blobLen)
		}
		m.Control = c
	case TypeControlAck:
		ack := &ControlAck{}
		ok, err := r.uv()
		if err != nil {
			return nil, err
		}
		ack.Accepted = ok != 0
		if ack.Reason, err = r.str(); err != nil {
			return nil, err
		}
		m.ControlAck = ack
	case TypeError:
		e := &ErrorBody{}
		if e.Reason, err = r.str(); err != nil {
			return nil, err
		}
		m.Error = e
	case TypeBusy:
		busy := &BusyBody{}
		if busy.RetryAfterMs, err = uvU32(); err != nil {
			return nil, err
		}
		if busy.Reason, err = r.str(); err != nil {
			return nil, err
		}
		m.Busy = busy
	case TypeHeartbeat:
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, t)
	}
	switch len(r.b) - r.pos {
	case 0: // untraced peer — the pre-trace wire format
	case traceTrailerLen:
		tc, ok := parseTraceTrailer(r.b[r.pos:])
		if !ok {
			return nil, fmt.Errorf("%w: trailing bytes", ErrMalformed)
		}
		m.Trace = tc
	default:
		return nil, fmt.Errorf("%w: trailing bytes", ErrMalformed)
	}
	return m, nil
}

// writeVarintIndication appends one indication body in the varint layout.
func writeVarintIndication(w *vwriter, ind *Indication) {
	w.uv(ind.Slot)
	w.uv(uint64(ind.Cell))
	w.uv(uint64(len(ind.UEs)))
	for _, u := range ind.UEs {
		w.uv(uint64(u.UEID))
		w.uv(uint64(u.SliceID))
		w.uv(uint64(uint32(u.MCS)))
		w.uv(uint64(u.BufferBytes))
		w.f64(u.TputBps)
	}
	w.uv(uint64(len(ind.Slices)))
	for _, s := range ind.Slices {
		w.uv(uint64(s.SliceID))
		w.f64(s.TargetBps)
		w.f64(s.ServedBps)
		w.uv(uint64(s.UsedPRBs))
	}
}

// readVarintIndication parses one indication body in the varint layout.
func readVarintIndication(r *vreader) (*Indication, error) {
	uvU32 := func() (uint32, error) {
		v, err := r.uv()
		return uint32(v), err
	}
	ind := &Indication{}
	var err error
	if ind.Slot, err = r.uv(); err != nil {
		return nil, err
	}
	if ind.Cell, err = uvU32(); err != nil {
		return nil, err
	}
	nUE, err := r.uv()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nUE; i++ {
		var u UEMeasurement
		if u.UEID, err = uvU32(); err != nil {
			return nil, err
		}
		if u.SliceID, err = uvU32(); err != nil {
			return nil, err
		}
		mcs, err := uvU32()
		if err != nil {
			return nil, err
		}
		u.MCS = int32(mcs)
		if u.BufferBytes, err = uvU32(); err != nil {
			return nil, err
		}
		if u.TputBps, err = r.f64(); err != nil {
			return nil, err
		}
		ind.UEs = append(ind.UEs, u)
	}
	nSl, err := r.uv()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nSl; i++ {
		var s SliceMeasurement
		if s.SliceID, err = uvU32(); err != nil {
			return nil, err
		}
		if s.TargetBps, err = r.f64(); err != nil {
			return nil, err
		}
		if s.ServedBps, err = r.f64(); err != nil {
			return nil, err
		}
		if s.UsedPRBs, err = uvU32(); err != nil {
			return nil, err
		}
		ind.Slices = append(ind.Slices, s)
	}
	return ind, nil
}

// CodecByName looks up a codec by its Name.
func CodecByName(name string) (Codec, bool) {
	switch name {
	case "binary":
		return BinaryCodec{}, true
	case "json":
		return JSONCodec{}, true
	case "varint":
		return VarintCodec{}, true
	default:
		return nil, false
	}
}

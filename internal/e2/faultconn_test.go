package e2

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// captureConn is a net.Conn that records writes, so tests can assert
// exactly which bytes a FaultConn let through.
type captureConn struct {
	mu     sync.Mutex
	buf    bytes.Buffer
	closed bool
}

func (c *captureConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, net.ErrClosed
	}
	return c.buf.Write(b)
}

func (c *captureConn) Read(b []byte) (int, error) { return 0, io.EOF }

func (c *captureConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

func (c *captureConn) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

func (c *captureConn) bytes() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.buf.Bytes()...)
}

func (c *captureConn) LocalAddr() net.Addr              { return nil }
func (c *captureConn) RemoteAddr() net.Addr             { return nil }
func (c *captureConn) SetDeadline(time.Time) error      { return nil }
func (c *captureConn) SetReadDeadline(time.Time) error  { return nil }
func (c *captureConn) SetWriteDeadline(time.Time) error { return nil }

func TestFaultConnClasses(t *testing.T) {
	payload := []byte("0123456789abcdef")
	full := len(payload)
	cases := []struct {
		name    string
		cfg     FaultConfig
		wantErr error
		// wantN is the expected Write return count; -1 means a non-empty
		// strict prefix.
		wantN int
		// written is what must have reached the inner conn: "all",
		// "prefix", or "none".
		written    string
		wantClosed bool
		count      func(FaultStats) uint64
	}{
		{
			name: "clean", cfg: FaultConfig{},
			wantN: full, written: "all",
			count: func(s FaultStats) uint64 { return 0 },
		},
		{
			name: "delay", cfg: FaultConfig{DelayProb: 1, Delay: 5 * time.Millisecond},
			wantN: full, written: "all",
			count: func(s FaultStats) uint64 { return s.Delays },
		},
		{
			name: "drop", cfg: FaultConfig{DropProb: 1},
			wantN: full, written: "none",
			count: func(s FaultStats) uint64 { return s.Drops },
		},
		{
			name: "partial", cfg: FaultConfig{PartialProb: 1},
			wantErr: ErrInjectedPartialWrite,
			wantN:   -1, written: "prefix", wantClosed: true,
			count: func(s FaultStats) uint64 { return s.Partials },
		},
		{
			name: "truncate", cfg: FaultConfig{TruncateProb: 1},
			wantN: full, written: "prefix", wantClosed: true,
			count: func(s FaultStats) uint64 { return s.Truncates },
		},
		{
			name: "reset", cfg: FaultConfig{ResetProb: 1},
			wantErr: ErrInjectedReset,
			wantN:   0, written: "none", wantClosed: true,
			count: func(s FaultStats) uint64 { return s.Resets },
		},
		{
			name: "blackhole", cfg: FaultConfig{BlackholeAfterWrites: 1},
			wantN: full, written: "none",
			count: func(s FaultStats) uint64 { return s.Blackholes },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inner := &captureConn{}
			fc := NewFaultConn(inner, tc.cfg)
			start := time.Now()
			n, err := fc.Write(payload)
			elapsed := time.Since(start)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("Write err = %v, want %v", err, tc.wantErr)
			}
			if tc.wantN == -1 {
				if n <= 0 || n >= full {
					t.Fatalf("Write n = %d, want non-empty strict prefix of %d", n, full)
				}
			} else if n != tc.wantN {
				t.Fatalf("Write n = %d, want %d", n, tc.wantN)
			}
			got := inner.bytes()
			switch tc.written {
			case "all":
				if !bytes.Equal(got, payload) {
					t.Fatalf("inner got %q, want full payload", got)
				}
			case "prefix":
				if len(got) == 0 || len(got) >= full || !bytes.Equal(got, payload[:len(got)]) {
					t.Fatalf("inner got %d bytes, want non-empty strict prefix", len(got))
				}
			case "none":
				if len(got) != 0 {
					t.Fatalf("inner got %d bytes, want none", len(got))
				}
			}
			if inner.isClosed() != tc.wantClosed {
				t.Fatalf("inner closed = %v, want %v", inner.isClosed(), tc.wantClosed)
			}
			if tc.name == "delay" && elapsed < tc.cfg.Delay {
				t.Fatalf("delayed write took %v, want >= %v", elapsed, tc.cfg.Delay)
			}
			if tc.name != "clean" {
				if c := tc.count(fc.Stats()); c != 1 {
					t.Fatalf("fault counter = %d, want 1 (stats %+v)", c, fc.Stats())
				}
			}
			if total := fc.Stats().Total(); tc.name == "clean" && total != 0 {
				t.Fatalf("clean conn injected %d faults", total)
			}
		})
	}
}

func TestFaultConnResetAfterWrites(t *testing.T) {
	inner := &captureConn{}
	fc := NewFaultConn(inner, FaultConfig{ResetAfterWrites: 3})
	for i := 0; i < 2; i++ {
		if n, err := fc.Write([]byte("ok")); err != nil || n != 2 {
			t.Fatalf("write %d: n=%d err=%v", i+1, n, err)
		}
	}
	if _, err := fc.Write([]byte("boom")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("write 3 err = %v, want ErrInjectedReset", err)
	}
	// Everything after the reset fails the same way, including reads.
	if _, err := fc.Write([]byte("after")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("post-reset write err = %v, want ErrInjectedReset", err)
	}
	if _, err := fc.Read(make([]byte, 1)); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("post-reset read err = %v, want ErrInjectedReset", err)
	}
	if st := fc.Stats(); st.Resets != 1 {
		t.Fatalf("Resets = %d, want 1", st.Resets)
	}
	if got := inner.bytes(); !bytes.Equal(got, []byte("okok")) {
		t.Fatalf("inner got %q, want only the pre-reset writes", got)
	}
}

// TestFaultConnDeterministic verifies the same seed over the same write
// sequence reproduces the same fault schedule.
func TestFaultConnDeterministic(t *testing.T) {
	run := func(seed int64) []FaultStats {
		fc := NewFaultConn(&captureConn{}, FaultConfig{
			Seed:     seed,
			DropProb: 0.3, DelayProb: 0.3, Delay: time.Microsecond,
		})
		var seq []FaultStats
		for i := 0; i < 64; i++ {
			fc.Write([]byte("x"))
			seq = append(seq, fc.Stats())
		}
		return seq
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("write %d: schedules diverge: %+v vs %+v", i, a[i], b[i])
		}
	}
	if last := a[len(a)-1]; last.Total() == 0 {
		t.Fatalf("schedule injected nothing in 64 writes at p=0.3")
	}
}

// tcpFaultPair joins an e2.Conn writing through a FaultConn to a plain
// server-side e2.Conn over loopback TCP.
func tcpFaultPair(t *testing.T, cfg FaultConfig) (client, server *Conn) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		raw, err := lis.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		server = NewConn(raw, BinaryCodec{})
	}()
	raw, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client = NewConn(NewFaultConn(raw, cfg), BinaryCodec{})
	wg.Wait()
	t.Cleanup(func() {
		client.Close()
		if server != nil {
			server.Close()
		}
	})
	return client, server
}

// TestFaultConnTruncatePeerSeesCutFrame verifies the peer of a truncated
// write observes a broken frame, the trigger for association teardown.
func TestFaultConnTruncatePeerSeesCutFrame(t *testing.T) {
	client, server := tcpFaultPair(t, FaultConfig{TruncateProb: 1})
	// The truncated write claims success; the peer sees the cut.
	_ = client.Send(&Message{Type: TypeHeartbeat})
	if _, err := server.Recv(); err == nil {
		t.Fatal("peer decoded a message from a truncated frame")
	}
}

// TestFaultConnDropDesyncsFraming verifies that dropping one of a frame's
// two writes desynchronizes the peer, which must fail rather than deliver
// garbage.
func TestFaultConnDropDesyncsFraming(t *testing.T) {
	// Seed 1's first p=0.6 rolls: the schedule is deterministic, so some
	// prefix of writes drops and some passes; sending enough frames
	// guarantees a header/payload split.
	client, server := tcpFaultPair(t, FaultConfig{Seed: 1, DropProb: 0.6})
	errCh := make(chan error, 1)
	go func() {
		for {
			if _, err := server.Recv(); err != nil {
				errCh <- err
				return
			}
		}
	}()
	ind := &Indication{Slot: 7, Cell: 1, Slices: []SliceMeasurement{{SliceID: 3, ServedBps: 1e6}}}
	for i := 0; i < 64; i++ {
		if err := client.Send(&Message{Type: TypeIndication, RANFunction: RANFunctionKPM, Indication: ind}); err != nil {
			break
		}
	}
	client.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("peer never saw the desync")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer hung instead of failing on desynced framing")
	}
}

package e2

import "fmt"

// Body-level encoding of indications and control requests in the binary
// codec's layout. These are the payloads crossing the xApp plugin boundary:
// the RIC host hands each xApp an encoded indication and receives back an
// encoded control list, so plugins written in any language parse one
// documented fixed layout.
//
// Indication body layout (little endian):
//
//	u64 slot | u32 cell | u16 nUE
//	per UE:    u32 ueID | u32 sliceID | u32 mcs | u32 bufferBytes | f64 tputBps   (24 B)
//	u16 nSlice
//	per slice: u32 sliceID | f64 targetBps | f64 servedBps | u32 usedPRBs        (24 B)
//
// Control request body layout:
//
//	u8 action | u32 sliceID | u32 ueID | f64 value | u16 len | text |
//	u32 blobLen | blob
//
// Control list layout: u16 count, then count control request bodies.

// AppendIndicationBody appends the encoded indication to b.
func AppendIndicationBody(b []byte, ind *Indication) []byte {
	w := &bwriter{b: b}
	w.u64(ind.Slot)
	w.u32(ind.Cell)
	w.u16(uint16(len(ind.UEs)))
	for _, u := range ind.UEs {
		w.u32(u.UEID)
		w.u32(u.SliceID)
		w.u32(uint32(u.MCS))
		w.u32(u.BufferBytes)
		w.f64(u.TputBps)
	}
	w.u16(uint16(len(ind.Slices)))
	for _, s := range ind.Slices {
		w.u32(s.SliceID)
		w.f64(s.TargetBps)
		w.f64(s.ServedBps)
		w.u32(s.UsedPRBs)
	}
	return w.b
}

// DecodeIndicationBody parses an encoded indication.
func DecodeIndicationBody(b []byte) (*Indication, error) {
	r := &breader{b: b}
	ind, err := readIndicationBody(r)
	if err != nil {
		return nil, err
	}
	if r.left() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in indication", ErrMalformed, r.left())
	}
	return ind, nil
}

func readIndicationBody(r *breader) (*Indication, error) {
	ind := &Indication{}
	var err error
	if ind.Slot, err = r.u64(); err != nil {
		return nil, err
	}
	if ind.Cell, err = r.u32(); err != nil {
		return nil, err
	}
	nUE, err := r.u16()
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(nUE); i++ {
		var u UEMeasurement
		if u.UEID, err = r.u32(); err != nil {
			return nil, err
		}
		if u.SliceID, err = r.u32(); err != nil {
			return nil, err
		}
		mcs, err := r.u32()
		if err != nil {
			return nil, err
		}
		u.MCS = int32(mcs)
		if u.BufferBytes, err = r.u32(); err != nil {
			return nil, err
		}
		if u.TputBps, err = r.f64(); err != nil {
			return nil, err
		}
		ind.UEs = append(ind.UEs, u)
	}
	nSl, err := r.u16()
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(nSl); i++ {
		var s SliceMeasurement
		if s.SliceID, err = r.u32(); err != nil {
			return nil, err
		}
		if s.TargetBps, err = r.f64(); err != nil {
			return nil, err
		}
		if s.ServedBps, err = r.f64(); err != nil {
			return nil, err
		}
		if s.UsedPRBs, err = r.u32(); err != nil {
			return nil, err
		}
		ind.Slices = append(ind.Slices, s)
	}
	return ind, nil
}

// AppendControlBody appends one encoded control request to b.
func AppendControlBody(b []byte, c *ControlRequest) []byte {
	w := &bwriter{b: b}
	w.u8(uint8(c.Action))
	w.u32(c.SliceID)
	w.u32(c.UEID)
	w.f64(c.Value)
	w.str(c.Text)
	w.u32(uint32(len(c.Blob)))
	w.b = append(w.b, c.Blob...)
	return w.b
}

func readControlBody(r *breader) (*ControlRequest, error) {
	c := &ControlRequest{}
	a, err := r.u8()
	if err != nil {
		return nil, err
	}
	c.Action = ControlAction(a)
	if c.SliceID, err = r.u32(); err != nil {
		return nil, err
	}
	if c.UEID, err = r.u32(); err != nil {
		return nil, err
	}
	if c.Value, err = r.f64(); err != nil {
		return nil, err
	}
	if c.Text, err = r.str(); err != nil {
		return nil, err
	}
	blobLen, err := r.u32()
	if err != nil {
		return nil, err
	}
	if r.left() < int(blobLen) {
		return nil, ErrMalformed
	}
	if blobLen > 0 {
		c.Blob = make([]byte, blobLen)
		copy(c.Blob, r.b[r.pos:])
		r.pos += int(blobLen)
	}
	return c, nil
}

// AppendControlList appends an encoded control list to b.
func AppendControlList(b []byte, list []ControlRequest) []byte {
	w := &bwriter{b: b}
	w.u16(uint16(len(list)))
	for i := range list {
		w.b = AppendControlBody(w.b, &list[i])
	}
	return w.b
}

// DecodeControlList parses an encoded control list.
func DecodeControlList(b []byte) ([]ControlRequest, error) {
	r := &breader{b: b}
	n, err := r.u16()
	if err != nil {
		return nil, err
	}
	list := make([]ControlRequest, 0, n)
	for i := 0; i < int(n); i++ {
		c, err := readControlBody(r)
		if err != nil {
			return nil, err
		}
		list = append(list, *c)
	}
	if r.left() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in control list", ErrMalformed, r.left())
	}
	return list, nil
}

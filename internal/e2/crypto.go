package e2

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
)

// SealedCodec wraps another codec with AES-256-GCM authenticated
// encryption: the operator-chosen "encrypt the packet in AES" option from
// §4B. Frames are nonce || ciphertext.
type SealedCodec struct {
	inner Codec
	aead  cipher.AEAD
}

// NewSealedCodec derives an AES-256 key from the passphrase (SHA-256) and
// wraps inner.
func NewSealedCodec(inner Codec, passphrase string) (*SealedCodec, error) {
	key := sha256.Sum256([]byte(passphrase))
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("e2: sealed codec: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("e2: sealed codec: %w", err)
	}
	return &SealedCodec{inner: inner, aead: aead}, nil
}

// Name implements Codec.
func (s *SealedCodec) Name() string { return s.inner.Name() + "+aes-gcm" }

// Encode implements Codec.
func (s *SealedCodec) Encode(m *Message) ([]byte, error) {
	plain, err := s.inner.Encode(m)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, s.aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("e2: sealed codec: %w", err)
	}
	return s.aead.Seal(nonce, nonce, plain, nil), nil
}

// Decode implements Codec.
func (s *SealedCodec) Decode(b []byte) (*Message, error) {
	ns := s.aead.NonceSize()
	if len(b) < ns {
		return nil, fmt.Errorf("%w: sealed frame too short", ErrMalformed)
	}
	plain, err := s.aead.Open(nil, b[:ns], b[ns:], nil)
	if err != nil {
		return nil, fmt.Errorf("%w: authentication failed", ErrMalformed)
	}
	return s.inner.Decode(plain)
}

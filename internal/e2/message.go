// Package e2 implements WA-RAN's E2-lite interface between near-RT RIC and
// E2 nodes (gNB CU/DU): a small message model (subscription, indication,
// control), pluggable payload codecs (compact binary "ASN.1-lite", varint
// "protobuf-lite", JSON), optional AES-GCM sealing, and a length-framed TCP
// transport.
//
// Per §4B of the paper, the wire protocol is deliberately NOT a fixed
// standard: operators pick codec, encryption and transport, and wrap the
// choice inside communication plugins on both sides. The Codec interface is
// the seam where a Wasm communication plugin slots in (see PluginCodec in
// package ric).
package e2

import (
	"errors"
	"fmt"

	"waran/internal/obs/trace"
)

// MessageType discriminates E2-lite messages.
type MessageType uint8

// Message types.
const (
	// TypeSubscriptionRequest asks an E2 node to stream indications.
	TypeSubscriptionRequest MessageType = iota + 1
	// TypeSubscriptionResponse acknowledges (or refuses) a subscription.
	TypeSubscriptionResponse
	// TypeIndication carries periodic KPM-style measurements.
	TypeIndication
	// TypeControlRequest carries a control action toward the RAN.
	TypeControlRequest
	// TypeControlAck reports the outcome of a control action.
	TypeControlAck
	// TypeHeartbeat keeps the association alive.
	TypeHeartbeat
	// TypeError reports a protocol-level failure.
	TypeError
	// TypeIndicationBatch carries one reporting window's per-slot KPM
	// indications coalesced into a single frame (see batch.go). Only sent
	// after capability negotiation, so old peers never see it.
	TypeIndicationBatch
	// TypeBusy tells the peer the receiver is overloaded and carries a
	// retry-after hint (see busy.go). Sent at admission (a refused
	// association should redial after the hint) or mid-association as
	// backpressure toward peers that negotiated OverloadCapabilityToken.
	TypeBusy
)

// String returns the message type name.
func (t MessageType) String() string {
	switch t {
	case TypeSubscriptionRequest:
		return "subscription-request"
	case TypeSubscriptionResponse:
		return "subscription-response"
	case TypeIndication:
		return "indication"
	case TypeControlRequest:
		return "control-request"
	case TypeControlAck:
		return "control-ack"
	case TypeHeartbeat:
		return "heartbeat"
	case TypeError:
		return "error"
	case TypeIndicationBatch:
		return "indication-batch"
	case TypeBusy:
		return "busy"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// RAN function identifiers, loosely mirroring O-RAN service models.
const (
	// RANFunctionKPM is the key-performance-measurement service.
	RANFunctionKPM uint32 = 2
	// RANFunctionRC is the RAN-control service.
	RANFunctionRC uint32 = 3
)

// Message is one E2-lite PDU. Body holds the typed payload before encoding
// / after decoding; exactly one of the pointer fields is non-nil according
// to Type.
type Message struct {
	Type        MessageType
	RequestID   uint32
	RANFunction uint32

	// Trace carries the causal tracing context (see tracehdr.go for the
	// wire format). The zero value means untraced and encodes to nothing.
	Trace trace.Context

	Subscription     *SubscriptionRequest
	SubscriptionResp *SubscriptionResponse
	Indication       *Indication
	Batch            *IndicationBatch
	Control          *ControlRequest
	ControlAck       *ControlAck
	Error            *ErrorBody
	Busy             *BusyBody
}

// SubscriptionRequest asks for periodic indications.
type SubscriptionRequest struct {
	// ReportPeriodMs is the indication cadence.
	ReportPeriodMs uint32
	// SliceIDs filters reporting to these slices (empty = all).
	SliceIDs []uint32
}

// SubscriptionResponse acknowledges a subscription.
type SubscriptionResponse struct {
	Accepted bool
	Reason   string
}

// UEMeasurement is one UE's KPM sample inside an indication.
type UEMeasurement struct {
	UEID        uint32
	SliceID     uint32
	MCS         int32
	BufferBytes uint32
	TputBps     float64
}

// SliceMeasurement is one slice's KPM sample inside an indication.
type SliceMeasurement struct {
	SliceID   uint32
	TargetBps float64
	ServedBps float64
	UsedPRBs  uint32
}

// Indication is a periodic measurement report from an E2 node.
type Indication struct {
	Slot   uint64
	Cell   uint32
	UEs    []UEMeasurement
	Slices []SliceMeasurement
}

// ControlAction discriminates control request kinds.
type ControlAction uint8

// Control actions.
const (
	// ActionSetSliceTarget updates a slice's contracted rate.
	ActionSetSliceTarget ControlAction = iota + 1
	// ActionSetSliceWeight updates a slice's inter-slice weight.
	ActionSetSliceWeight
	// ActionHandover requests a UE handover to a target cell.
	ActionHandover
	// ActionSwapScheduler hot-swaps a slice's intra-slice scheduler to a
	// named built-in plugin.
	ActionSwapScheduler
	// ActionUploadScheduler pushes new scheduler plugin bytecode into the
	// gNB and hot-swaps the slice to it — the paper's Fig. 1 flow:
	// software compiled to Wasm and pushed into the RAN over the wire.
	ActionUploadScheduler
)

// String returns the action name.
func (a ControlAction) String() string {
	switch a {
	case ActionSetSliceTarget:
		return "set-slice-target"
	case ActionSetSliceWeight:
		return "set-slice-weight"
	case ActionHandover:
		return "handover"
	case ActionSwapScheduler:
		return "swap-scheduler"
	case ActionUploadScheduler:
		return "upload-scheduler"
	default:
		return fmt.Sprintf("action(%d)", uint8(a))
	}
}

// ControlRequest is one control action toward the RAN.
type ControlRequest struct {
	Action  ControlAction
	SliceID uint32
	UEID    uint32
	// TargetBps for ActionSetSliceTarget; Weight for ActionSetSliceWeight
	// (both carried in Value).
	Value float64
	// TargetCell for ActionHandover; scheduler name for ActionSwapScheduler
	// (and a label for ActionUploadScheduler).
	Text string
	// Blob carries Wasm plugin bytecode for ActionUploadScheduler.
	Blob []byte
}

// ControlAck reports a control action outcome.
type ControlAck struct {
	Accepted bool
	Reason   string
}

// ErrorBody reports a protocol failure.
type ErrorBody struct {
	Reason string
}

// ErrUnknownType is returned when decoding an unrecognized message type.
var ErrUnknownType = errors.New("e2: unknown message type")

// ErrMalformed is returned when a frame cannot be decoded.
var ErrMalformed = errors.New("e2: malformed message")

// Validate checks internal consistency of a message.
func (m *Message) Validate() error {
	bodySet := 0
	if m.Subscription != nil {
		bodySet++
	}
	if m.SubscriptionResp != nil {
		bodySet++
	}
	if m.Indication != nil {
		bodySet++
	}
	if m.Batch != nil {
		bodySet++
	}
	if m.Control != nil {
		bodySet++
	}
	if m.ControlAck != nil {
		bodySet++
	}
	if m.Error != nil {
		bodySet++
	}
	if m.Busy != nil {
		bodySet++
	}
	switch m.Type {
	case TypeHeartbeat:
		if bodySet != 0 {
			return fmt.Errorf("%w: heartbeat with body", ErrMalformed)
		}
		return nil
	case TypeSubscriptionRequest:
		if m.Subscription == nil || bodySet != 1 {
			return fmt.Errorf("%w: subscription-request body mismatch", ErrMalformed)
		}
	case TypeSubscriptionResponse:
		if m.SubscriptionResp == nil || bodySet != 1 {
			return fmt.Errorf("%w: subscription-response body mismatch", ErrMalformed)
		}
	case TypeIndication:
		if m.Indication == nil || bodySet != 1 {
			return fmt.Errorf("%w: indication body mismatch", ErrMalformed)
		}
	case TypeIndicationBatch:
		if m.Batch == nil || bodySet != 1 {
			return fmt.Errorf("%w: indication-batch body mismatch", ErrMalformed)
		}
		if err := validateBatch(m.Batch); err != nil {
			return err
		}
	case TypeControlRequest:
		if m.Control == nil || bodySet != 1 {
			return fmt.Errorf("%w: control-request body mismatch", ErrMalformed)
		}
	case TypeControlAck:
		if m.ControlAck == nil || bodySet != 1 {
			return fmt.Errorf("%w: control-ack body mismatch", ErrMalformed)
		}
	case TypeError:
		if m.Error == nil || bodySet != 1 {
			return fmt.Errorf("%w: error body mismatch", ErrMalformed)
		}
	case TypeBusy:
		if m.Busy == nil || bodySet != 1 {
			return fmt.Errorf("%w: busy body mismatch", ErrMalformed)
		}
	default:
		return fmt.Errorf("%w: %d", ErrUnknownType, m.Type)
	}
	return nil
}

package e2

import (
	"fmt"
	"time"
)

// Busy / retry-after wire format (DESIGN.md §17).
//
// A TypeBusy frame is the RIC's explicit overload signal. It appears in two
// places:
//
//   - At admission: a RIC whose shard budgets or admission token bucket are
//     exhausted answers the association's first frame with TypeBusy instead
//     of accepting the subscription, then closes the connection. The body
//     carries RetryAfterMs, the earliest the peer should redial; AgentSession
//     spreads the actual redial uniformly over (0, hint] (full jitter) so a
//     thousand refused agents do not re-arrive in phase.
//
//   - Mid-association: a browned-out RIC may send TypeBusy to an agent that
//     negotiated OverloadCapabilityToken; the agent pauses KPM reporting for
//     the hinted duration and counts every skipped report as shed. Control
//     and heartbeat traffic is never paused — only measurement load.
//
// Old peers never see a mid-association TypeBusy (capability-gated); an old
// peer refused at admission treats the unknown frame like the TypeError
// refusal it replaces — a failed subscription followed by backoff — so the
// admission path needs no negotiation.

// BusyCapabilityBit is OR-ed into SubscriptionRequest.RANFunction by a RIC
// that can send mid-association TypeBusy backpressure. Agents that
// understand it answer with OverloadCapabilityToken.
const BusyCapabilityBit uint32 = 1 << 29

// OverloadCapabilityToken is included in the SubscriptionResponse Reason
// token list by an agent that honors mid-association TypeBusy frames.
const OverloadCapabilityToken = "busy-v1"

// MaxRetryAfter bounds the retry-after hint a peer will honor, so a
// corrupted or hostile frame cannot park an agent for hours.
const MaxRetryAfter = 5 * time.Minute

// BusyBody is the TypeBusy payload.
type BusyBody struct {
	// RetryAfterMs hints the earliest redial / resume, in milliseconds.
	// Zero means "immediately, at the peer's own backoff".
	RetryAfterMs uint32
	// Reason names what was exhausted ("admission", "shard 3 budget",
	// "brownout L2") for logs and tests; peers must not parse it.
	Reason string
}

// RetryAfter returns the clamped retry-after hint as a duration.
func (b *BusyBody) RetryAfter() time.Duration {
	d := time.Duration(b.RetryAfterMs) * time.Millisecond
	if d > MaxRetryAfter {
		return MaxRetryAfter
	}
	return d
}

// BusyError is returned by association setup when the peer answered
// TypeBusy: the caller should back off for RetryAfter (with jitter) and
// redial rather than treating the refusal as a protocol failure.
type BusyError struct {
	RetryAfter time.Duration
	Reason     string
}

// Error implements error.
func (e *BusyError) Error() string {
	return fmt.Sprintf("e2: peer busy (retry after %v): %s", e.RetryAfter, e.Reason)
}

// NewBusyMessage builds a TypeBusy frame with a clamped retry-after hint.
func NewBusyMessage(retryAfter time.Duration, reason string) *Message {
	if retryAfter < 0 {
		retryAfter = 0
	}
	if retryAfter > MaxRetryAfter {
		retryAfter = MaxRetryAfter
	}
	return &Message{
		Type: TypeBusy,
		Busy: &BusyBody{RetryAfterMs: uint32(retryAfter / time.Millisecond), Reason: reason},
	}
}

package e2

import (
	"encoding/binary"

	"waran/internal/obs/trace"
)

// Trace-context propagation on the E2 wire.
//
// A traced message carries a 17-byte trailer after its body:
//
//	+--------+-------------------+-------------------+
//	| 0x54   | TraceID (u64 LE)  | SpanID (u64 LE)   |
//	+--------+-------------------+-------------------+
//
// The trailer rides after the body (never inside it) for both the binary and
// varint codecs, so the byte stream of an untraced message is bit-identical
// to what pre-trace encoders produced. Decoders in this version consume the
// body exactly as before and then accept either zero remaining bytes
// (untraced peer) or exactly one trailer; anything else is still
// ErrMalformed. The JSON codec instead adds a "trace" object field, which
// old encoding/json-based decoders skip by construction.
//
// Old binary/varint decoders reject trailing bytes outright, so a new
// endpoint must never send the trailer to an old peer. That is negotiated in
// package ric: the RIC advertises trace support by setting
// TraceCapabilityBit in its SubscriptionRequest's RANFunction (a field old
// agents echo without interpreting), and a trace-capable agent answers with
// TraceCapabilityToken in the SubscriptionResponse Reason (a field old RICs
// ignore on acceptance). Each side stamps the trailer only after seeing the
// other's advertisement, so a mixed-version association simply runs
// untraced.
const (
	// traceMarker is the first trailer byte, 'T'.
	traceMarker byte = 0x54
	// traceTrailerLen is the full trailer size: marker + TraceID + SpanID.
	traceTrailerLen = 1 + 8 + 8
)

// TraceCapabilityBit is OR-ed into SubscriptionRequest.RANFunction by a
// trace-capable RIC. Old agents echo the field untouched; new agents mask it
// out before interpreting the RAN function.
const TraceCapabilityBit uint32 = 1 << 31

// TraceCapabilityToken is placed in SubscriptionResponse.Reason by a
// trace-capable agent answering a trace-capable RIC. Old RICs only read
// Reason on rejection, so the token is invisible to them.
const TraceCapabilityToken = "trace-v1"

// appendTraceTrailer appends the wire trailer for c; a zero context appends
// nothing, keeping untraced output byte-identical to pre-trace encoders.
func appendTraceTrailer(b []byte, c trace.Context) []byte {
	if !c.Valid() {
		return b
	}
	b = append(b, traceMarker)
	b = binary.LittleEndian.AppendUint64(b, c.TraceID)
	b = binary.LittleEndian.AppendUint64(b, c.SpanID)
	return b
}

// parseTraceTrailer decodes a trailer from exactly traceTrailerLen bytes.
func parseTraceTrailer(b []byte) (trace.Context, bool) {
	if len(b) != traceTrailerLen || b[0] != traceMarker {
		return trace.Context{}, false
	}
	c := trace.Context{
		TraceID: binary.LittleEndian.Uint64(b[1:]),
		SpanID:  binary.LittleEndian.Uint64(b[9:]),
	}
	return c, c.Valid()
}

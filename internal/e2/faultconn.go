package e2

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Injected-fault errors. They are distinct sentinels so tests can assert
// which fault fired, and wrap nothing: an injected fault is not a real
// transport error.
var (
	// ErrInjectedReset is surfaced when FaultConn abruptly kills the
	// connection (the injected analogue of a TCP RST).
	ErrInjectedReset = errors.New("e2: injected connection reset")
	// ErrInjectedPartialWrite is surfaced after FaultConn wrote only a
	// prefix of the caller's buffer and failed the connection.
	ErrInjectedPartialWrite = errors.New("e2: injected partial write")
)

// FaultConfig is a seeded schedule of transport faults. The zero value
// injects nothing. All probabilities are evaluated independently per Write
// call in the order reset, truncate, partial, drop, delay; the same Seed
// over the same call sequence reproduces the same schedule, so failure
// scenarios are testable without real networks.
type FaultConfig struct {
	// Seed selects the deterministic schedule (0 behaves as 1).
	Seed int64

	// DelayProb stalls a write by Delay before it proceeds — injected
	// latency/jitter. Delay defaults to 1ms when DelayProb is set.
	DelayProb float64
	Delay     time.Duration

	// DropProb silently discards a write while reporting it fully written
	// — the frame vanishes and the peer's framing desynchronizes, as after
	// loss on a misbehaving middlebox.
	DropProb float64

	// PartialProb writes a random non-empty prefix of the buffer, then
	// fails the connection with ErrInjectedPartialWrite. The peer is left
	// holding a truncated frame.
	PartialProb float64

	// TruncateProb writes a random prefix and closes the underlying conn:
	// the peer sees a truncated frame followed by EOF, while this side's
	// write "succeeds" and only the next operation notices.
	TruncateProb float64

	// ResetProb kills the connection before the write: the write fails
	// with ErrInjectedReset and all later operations fail too.
	ResetProb float64

	// ResetAfterWrites, when > 0, forces a reset on the Nth Write call
	// regardless of the probabilities — the deterministic kill switch for
	// reconnect tests.
	ResetAfterWrites int

	// BlackholeAfterWrites, when > 0, silently discards every write from
	// the Nth on while leaving the connection open — the injected analogue
	// of a half-open TCP connection whose peer vanished. No error is ever
	// surfaced on this side; only heartbeat liveness can detect it.
	BlackholeAfterWrites int
}

// FaultStats counts injected faults by class.
type FaultStats struct {
	Delays     uint64
	Drops      uint64
	Partials   uint64
	Truncates  uint64
	Resets     uint64
	Blackholes uint64
}

// Total sums all injected faults.
func (s FaultStats) Total() uint64 {
	return s.Delays + s.Drops + s.Partials + s.Truncates + s.Resets + s.Blackholes
}

// FaultConn wraps a net.Conn and deterministically injects transport
// faults — delays, drops, partial writes, truncated frames, resets — from
// a seeded schedule. Wrap the conn handed to NewConn on one endpoint and
// every failure mode of the association layer becomes reproducible:
// heartbeat loss, mid-frame cuts, abrupt resets. Faults are injected on
// the write side; reads pass through (a reset kills both directions).
type FaultConn struct {
	inner net.Conn
	cfg   FaultConfig

	mu     sync.Mutex
	rng    *rand.Rand
	writes int
	closed bool
	stats  FaultStats
}

// faultAction is one decided outcome for a Write call.
type faultAction int

const (
	faultNone faultAction = iota
	faultDelay
	faultDrop
	faultPartial
	faultTruncate
	faultReset
)

// NewFaultConn wraps inner with the fault schedule in cfg.
func NewFaultConn(inner net.Conn, cfg FaultConfig) *FaultConn {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	if cfg.Delay == 0 {
		cfg.Delay = time.Millisecond
	}
	return &FaultConn{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Stats returns the injected-fault counters so far.
func (f *FaultConn) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// decide rolls the seeded schedule for one Write of n bytes, returning the
// action and, for prefix faults, how many bytes to let through.
func (f *FaultConn) decide(n int) (faultAction, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return faultReset, 0
	}
	f.writes++
	if f.cfg.ResetAfterWrites > 0 && f.writes == f.cfg.ResetAfterWrites {
		f.stats.Resets++
		f.closed = true
		return faultReset, 0
	}
	if f.cfg.BlackholeAfterWrites > 0 && f.writes >= f.cfg.BlackholeAfterWrites {
		f.stats.Blackholes++
		return faultDrop, 0
	}
	switch {
	case f.roll(f.cfg.ResetProb):
		f.stats.Resets++
		f.closed = true
		return faultReset, 0
	case f.roll(f.cfg.TruncateProb):
		f.stats.Truncates++
		f.closed = true
		return faultTruncate, f.prefix(n)
	case f.roll(f.cfg.PartialProb):
		f.stats.Partials++
		f.closed = true
		return faultPartial, f.prefix(n)
	case f.roll(f.cfg.DropProb):
		f.stats.Drops++
		return faultDrop, 0
	case f.roll(f.cfg.DelayProb):
		f.stats.Delays++
		return faultDelay, 0
	}
	return faultNone, 0
}

// roll consumes one PRNG draw when p > 0 so the schedule depends only on
// the configured fault classes and the call sequence.
func (f *FaultConn) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	return f.rng.Float64() < p
}

// prefix picks a non-empty strict prefix length of an n-byte buffer.
func (f *FaultConn) prefix(n int) int {
	if n <= 1 {
		return n
	}
	return 1 + f.rng.Intn(n-1)
}

// Write implements net.Conn with the configured fault schedule applied.
func (f *FaultConn) Write(b []byte) (int, error) {
	action, pfx := f.decide(len(b))
	switch action {
	case faultReset:
		f.inner.Close()
		return 0, ErrInjectedReset
	case faultTruncate:
		n, _ := f.inner.Write(b[:pfx])
		f.inner.Close()
		// The cut happens "in flight": this write reports success and the
		// sender learns on its next operation, like a real half-sent frame.
		_ = n
		return len(b), nil
	case faultPartial:
		n, err := f.inner.Write(b[:pfx])
		if err != nil {
			return n, err
		}
		f.inner.Close()
		return n, ErrInjectedPartialWrite
	case faultDrop:
		return len(b), nil
	case faultDelay:
		time.Sleep(f.cfg.Delay)
	}
	return f.inner.Write(b)
}

// Read implements net.Conn. Reads pass through; after an injected reset
// they fail like the rest of the connection.
func (f *FaultConn) Read(b []byte) (int, error) {
	f.mu.Lock()
	closed := f.closed
	f.mu.Unlock()
	if closed {
		return 0, ErrInjectedReset
	}
	return f.inner.Read(b)
}

// Close implements net.Conn.
func (f *FaultConn) Close() error {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	return f.inner.Close()
}

// LocalAddr implements net.Conn.
func (f *FaultConn) LocalAddr() net.Addr { return f.inner.LocalAddr() }

// RemoteAddr implements net.Conn.
func (f *FaultConn) RemoteAddr() net.Addr { return f.inner.RemoteAddr() }

// SetDeadline implements net.Conn.
func (f *FaultConn) SetDeadline(t time.Time) error { return f.inner.SetDeadline(t) }

// SetReadDeadline implements net.Conn.
func (f *FaultConn) SetReadDeadline(t time.Time) error { return f.inner.SetReadDeadline(t) }

// SetWriteDeadline implements net.Conn.
func (f *FaultConn) SetWriteDeadline(t time.Time) error { return f.inner.SetWriteDeadline(t) }

package e2

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// MaxFrameBytes bounds a single E2-lite frame on the wire; oversized frames
// indicate corruption or abuse and terminate the association.
const MaxFrameBytes = 4 << 20

// Conn is a framed, codec-aware E2-lite association over a byte stream.
// Frames are u32 big-endian length prefixes followed by the codec payload.
// Send is safe for concurrent use; Recv must be called from one goroutine.
type Conn struct {
	c      net.Conn
	codec  Codec
	br     *bufio.Reader
	sendMu sync.Mutex

	// Stats (atomic: Stats may be read while Send/Recv run).
	sent, received atomic.Uint64
	bytesSent      atomic.Uint64
	bytesReceived  atomic.Uint64
}

// NewConn wraps an established net.Conn.
func NewConn(c net.Conn, codec Codec) *Conn {
	return &Conn{c: c, codec: codec, br: bufio.NewReaderSize(c, 64<<10)}
}

// Dial connects to an E2-lite endpoint.
func Dial(addr string, codec Codec) (*Conn, error) {
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("e2: dial %s: %w", addr, err)
	}
	return NewConn(c, codec), nil
}

// Send encodes and writes one message.
func (c *Conn) Send(m *Message) error {
	payload, err := c.codec.Encode(m)
	if err != nil {
		return err
	}
	if len(payload) > MaxFrameBytes {
		return fmt.Errorf("e2: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if _, err := c.c.Write(hdr[:]); err != nil {
		return fmt.Errorf("e2: send: %w", err)
	}
	if _, err := c.c.Write(payload); err != nil {
		return fmt.Errorf("e2: send: %w", err)
	}
	c.sent.Add(1)
	c.bytesSent.Add(uint64(len(payload)) + 4)
	return nil
}

// Recv reads and decodes one message, blocking until available.
func (c *Conn) Recv() (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("e2: incoming frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(c.br, payload); err != nil {
		return nil, err
	}
	m, err := c.codec.Decode(payload)
	if err != nil {
		return nil, err
	}
	c.received.Add(1)
	c.bytesReceived.Add(uint64(n) + 4)
	return m, nil
}

// SetDeadline applies to both reads and writes.
func (c *Conn) SetDeadline(t time.Time) error { return c.c.SetDeadline(t) }

// Close terminates the association.
func (c *Conn) Close() error { return c.c.Close() }

// Stats reports frame and byte counters: sent, received, bytesSent,
// bytesReceived.
func (c *Conn) Stats() (sent, received, bytesSent, bytesReceived uint64) {
	return c.sent.Load(), c.received.Load(), c.bytesSent.Load(), c.bytesReceived.Load()
}

// Listener accepts E2-lite associations.
type Listener struct {
	l     net.Listener
	codec Codec
}

// Listen starts accepting on addr ("host:port", empty host for all).
func Listen(addr string, codec Codec) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("e2: listen %s: %w", addr, err)
	}
	return &Listener{l: l, codec: codec}, nil
}

// Accept waits for the next association.
func (l *Listener) Accept() (*Conn, error) {
	c, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	return NewConn(c, l.codec), nil
}

// Addr returns the bound address (useful with port 0).
func (l *Listener) Addr() net.Addr { return l.l.Addr() }

// Close stops accepting.
func (l *Listener) Close() error { return l.l.Close() }

package e2

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"waran/internal/obs"
	"waran/internal/obs/flight"
)

// MaxFrameBytes bounds a single E2-lite frame on the wire; oversized frames
// indicate corruption or abuse and terminate the association.
const MaxFrameBytes = 4 << 20

// recvChunkBytes bounds how much Recv allocates ahead of payload bytes that
// have actually arrived, so a hostile length prefix cannot reserve
// MaxFrameBytes with a 4-byte header.
const recvChunkBytes = 64 << 10

// maxRetainedSendBuf caps the encode buffer kept between Sends: a one-off
// giant frame (scheduler blob upload) must not pin megabytes per
// association for the rest of its life.
const maxRetainedSendBuf = 1 << 20

// ErrAssociationDead reports that a peer was declared dead by heartbeat
// liveness tracking (no inbound traffic for the configured number of
// heartbeat intervals) and the association was torn down locally.
var ErrAssociationDead = errors.New("e2: association dead: missed heartbeats")

// Conn is a framed, codec-aware E2-lite association over a byte stream.
// Frames are u32 big-endian length prefixes followed by the codec payload.
// Send is safe for concurrent use; Recv must be called from one goroutine.
type Conn struct {
	c      net.Conn
	codec  Codec
	br     *bufio.Reader
	sendMu sync.Mutex
	// sendBuf is the frame buffer reused across Sends (guarded by sendMu):
	// 4-byte length header followed by the encoded payload, written in one
	// Write call.
	sendBuf []byte

	// Counters (obs.Counter is atomic: Stats may be read while Send/Recv
	// run, or scraped through a registry).
	sent, received obs.Counter
	bytesSent      obs.Counter
	bytesReceived  obs.Counter
	lastRecv       atomic.Int64 // unix nanos of the last complete frame

	// Codec timing for the tracing layer: how long the last Send spent in
	// Encode and the last Recv in Decode, so transport spans can separate
	// wire time from codec time.
	lastEncNs atomic.Int64
	lastDecNs atomic.Int64

	// flight, when set, journals the association's teardown. Written once
	// before the Conn is shared (Accept, or SetFlightRecorder right after
	// Dial) and read on Close; closeOnce keeps a double Close from
	// journaling two EvAssocDown events for one association.
	flight    *flight.Recorder
	closeOnce sync.Once
}

// NewConn wraps an established net.Conn.
func NewConn(c net.Conn, codec Codec) *Conn {
	conn := &Conn{c: c, codec: codec, br: bufio.NewReaderSize(c, 64<<10)}
	// A fresh association counts as just-seen so liveness tracking starts
	// from establishment, not from the epoch.
	conn.lastRecv.Store(time.Now().UnixNano())
	return conn
}

// Dial connects to an E2-lite endpoint.
func Dial(addr string, codec Codec) (*Conn, error) {
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("e2: dial %s: %w", addr, err)
	}
	return NewConn(c, codec), nil
}

// Send encodes and writes one message. Codecs implementing AppendEncoder
// encode straight into a per-association buffer reused across calls, so a
// steady indication stream allocates nothing; other codecs fall back to a
// fresh payload copied into the same buffer. Header and payload go out in
// one Write.
func (c *Conn) Send(m *Message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	buf := append(c.sendBuf[:0], 0, 0, 0, 0) // length header, patched below
	encStart := time.Now()
	var err error
	if ae, ok := c.codec.(AppendEncoder); ok {
		buf, err = ae.AppendEncode(buf, m)
	} else {
		var payload []byte
		payload, err = c.codec.Encode(m)
		buf = append(buf, payload...)
	}
	c.lastEncNs.Store(int64(time.Since(encStart)))
	if err != nil {
		return err
	}
	n := len(buf) - 4
	if n > MaxFrameBytes {
		return fmt.Errorf("e2: frame of %d bytes exceeds limit", n)
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(n))
	if cap(buf) <= maxRetainedSendBuf {
		c.sendBuf = buf
	} else {
		c.sendBuf = nil
	}
	if _, err := c.c.Write(buf); err != nil {
		return fmt.Errorf("e2: send: %w", err)
	}
	c.sent.Inc()
	c.bytesSent.Add(uint64(n) + 4)
	return nil
}

// Recv reads and decodes one message, blocking until available.
func (c *Conn) Recv() (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("e2: incoming frame of %d bytes exceeds limit", n)
	}
	payload, err := readPayload(c.br, int(n))
	if err != nil {
		return nil, err
	}
	decStart := time.Now()
	m, err := c.codec.Decode(payload)
	c.lastDecNs.Store(int64(time.Since(decStart)))
	if err != nil {
		return nil, err
	}
	c.received.Inc()
	c.bytesReceived.Add(uint64(n) + 4)
	c.lastRecv.Store(time.Now().UnixNano())
	return m, nil
}

// readPayload reads an n-byte frame payload incrementally: at most
// recvChunkBytes are allocated up front and the buffer doubles only after
// the bytes already allocated have arrived, so an untrusted length prefix
// cannot hold MaxFrameBytes per association without sending the data.
func readPayload(r io.Reader, n int) ([]byte, error) {
	chunk := n
	if chunk > recvChunkBytes {
		chunk = recvChunkBytes
	}
	payload := make([]byte, chunk)
	read := 0
	for read < n {
		if read == len(payload) {
			// Everything allocated so far has arrived; double, capped at n.
			grown := 2 * len(payload)
			if grown > n {
				grown = n
			}
			next := make([]byte, grown)
			copy(next, payload)
			payload = next
		}
		m, err := io.ReadFull(r, payload[read:])
		read += m
		if err != nil {
			if err == io.EOF && read > 0 {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	return payload, nil
}

// LastRecv reports when the last complete frame arrived (the association's
// establishment time if none has). Heartbeat liveness checks compare this
// against the heartbeat cadence.
func (c *Conn) LastRecv() time.Time {
	return time.Unix(0, c.lastRecv.Load())
}

// LastEncodeDur reports how long the most recent Send spent encoding.
func (c *Conn) LastEncodeDur() time.Duration { return time.Duration(c.lastEncNs.Load()) }

// LastDecodeDur reports how long the most recent Recv spent decoding.
func (c *Conn) LastDecodeDur() time.Duration { return time.Duration(c.lastDecNs.Load()) }

// SetDeadline applies to both reads and writes.
func (c *Conn) SetDeadline(t time.Time) error { return c.c.SetDeadline(t) }

// SetReadDeadline bounds blocking Recv calls.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.c.SetReadDeadline(t) }

// SetWriteDeadline bounds blocking Send calls.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.c.SetWriteDeadline(t) }

// SetFlightRecorder journals this association's teardown into rec as an
// EvAssocDown event (nil leaves the journal off). Call before sharing the
// Conn across goroutines; Accept does this automatically when the Listener
// carries a recorder.
func (c *Conn) SetFlightRecorder(rec *flight.Recorder) { c.flight = rec }

// Close terminates the association.
func (c *Conn) Close() error {
	err := c.c.Close()
	c.closeOnce.Do(func() {
		if rec := c.flight; rec.Enabled() {
			rec.Record(flight.Event{
				Class: flight.EvAssocDown, Plane: flight.PlaneE2,
				Detail: addrString(c.RemoteAddr()),
				Value:  float64(c.received.Value()),
			})
		}
	})
	return err
}

// addrString formats a peer address for journal details, tolerating the
// nil addresses synthetic transports report.
func addrString(a net.Addr) string {
	if a == nil {
		return ""
	}
	return a.String()
}

// RemoteAddr returns the peer's address (nil when the underlying transport
// has none). The RIC hashes it to pick an association shard.
func (c *Conn) RemoteAddr() net.Addr { return c.c.RemoteAddr() }

// ConnStats is the flat snapshot of an association's frame and byte
// counters.
type ConnStats struct {
	Sent          uint64 `json:"sent"`
	Received      uint64 `json:"received"`
	BytesSent     uint64 `json:"bytes_sent"`
	BytesReceived uint64 `json:"bytes_received"`
}

// Stats returns current frame and byte counters.
func (c *Conn) Stats() ConnStats {
	return ConnStats{
		Sent:          c.sent.Value(),
		Received:      c.received.Value(),
		BytesSent:     c.bytesSent.Value(),
		BytesReceived: c.bytesReceived.Value(),
	}
}

// Register exposes the association on reg under waran_e2_conn_*.
func (c *Conn) Register(reg *obs.Registry, labels ...obs.Label) {
	reg.MustRegister("waran_e2_conn", "E2-lite association frame and byte counters", obs.Func{
		Kind: obs.KindUntyped,
		Collect: func() []obs.Sample {
			s := c.Stats()
			return []obs.Sample{
				{Suffix: "_sent_total", Value: float64(s.Sent)},
				{Suffix: "_received_total", Value: float64(s.Received)},
				{Suffix: "_bytes_sent_total", Value: float64(s.BytesSent)},
				{Suffix: "_bytes_received_total", Value: float64(s.BytesReceived)},
			}
		},
		JSON: func() any { return c.Stats() },
	}, labels...)
}

// Listener accepts E2-lite associations.
type Listener struct {
	l     net.Listener
	codec Codec

	// flight, when set, journals association establishment (EvAssocUp on
	// Accept) and is inherited by each accepted Conn for teardown events.
	// Set it before the accept loop starts.
	flight *flight.Recorder
}

// Listen starts accepting on addr ("host:port", empty host for all).
func Listen(addr string, codec Codec) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("e2: listen %s: %w", addr, err)
	}
	return &Listener{l: l, codec: codec}, nil
}

// SetFlightRecorder journals association lifecycle (EvAssocUp on Accept,
// EvAssocDown on each accepted Conn's Close) into rec. Call before the
// accept loop starts; nil leaves the journal off.
func (l *Listener) SetFlightRecorder(rec *flight.Recorder) { l.flight = rec }

// Accept waits for the next association.
func (l *Listener) Accept() (*Conn, error) {
	c, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	conn := NewConn(c, l.codec)
	if rec := l.flight; rec.Enabled() {
		conn.SetFlightRecorder(rec)
		rec.Record(flight.Event{
			Class: flight.EvAssocUp, Plane: flight.PlaneE2,
			Detail: addrString(conn.RemoteAddr()),
		})
	}
	return conn, nil
}

// Addr returns the bound address (useful with port 0).
func (l *Listener) Addr() net.Addr { return l.l.Addr() }

// Close stops accepting.
func (l *Listener) Close() error { return l.l.Close() }

package core

import (
	"runtime"
	"strings"
	"time"

	"waran/internal/e2"
	"waran/internal/plugins"
	"waran/internal/ran"
	"waran/internal/sched"
	"waran/internal/wabi"
	"waran/internal/wasm"
	"waran/internal/wat"
)

// MulticellResult is the multi-cell scaling experiment outcome: one cell
// group stepped serially and then with the worker pool, plus a fleet-wide
// plugin hot swap through the content-addressed module cache. When the run
// was instrumented (ExpConfig.Obs), Obs carries the registry snapshot.
type MulticellResult struct {
	Cells               int     `json:"cells"`
	Slots               int     `json:"slots"`
	Parallelism         int     `json:"parallelism"`
	GOMAXPROCS          int     `json:"gomaxprocs"`
	SerialSlotsPerSec   float64 `json:"serial_slots_per_sec"`
	ParallelSlotsPerSec float64 `json:"parallel_slots_per_sec"`
	Speedup             float64 `json:"speedup"`
	DeadlineUs          float64 `json:"deadline_us"`
	Overruns            uint64  `json:"overruns"`
	WorstSlotUs         float64 `json:"worst_slot_us"`
	P99SlotUs           float64 `json:"p99_slot_us"`
	HotSwapCells        int     `json:"hot_swap_cells"`
	HotSwapCompiles     uint64  `json:"hot_swap_compiles"`
	CacheHits           uint64  `json:"cache_hits"`
	CacheMisses         uint64  `json:"cache_misses"`

	// Plugin ABI accounting for the parallel run: which call path the
	// schedulers used, the host-side cost per decision, and — over zero-copy
	// — how effective the delta writer was (dirty records as a percentage of
	// records carried; 100 means every record was rewritten every call).
	ABI              string  `json:"abi"`
	SchedCalls       uint64  `json:"sched_calls"`
	SchedNsPerCall   float64 `json:"sched_ns_per_call"`
	SchedFuelPerCall float64 `json:"sched_fuel_per_call"`
	ZCCalls          uint64  `json:"zc_calls"`
	ZCDirtyRecordPct float64 `json:"zc_dirty_record_pct"`
	// ABIWallSharePct is the share of in-sandbox wall time spent inside the
	// "waran.*" ABI import functions (input_read, output_write, ...),
	// measured by the wasm profiler over a short instrumented pass. The
	// zero-copy path never calls them, so this is the serialization overhead
	// the region ABI removes from the sandbox.
	ABIWallSharePct float64 `json:"abi_wall_share_pct"`

	// Execution-tier accounting for the parallel run: the requested tier
	// ("auto" means profile-guided), per-tier sandbox call counts, and how
	// many modules the fuel profile promoted off the interpreter.
	Tier             string `json:"tier"`
	TierInterpCalls  uint64 `json:"tier_interp_calls"`  // metric-exempt: report field aggregated from sched's registered counters
	TierFusedCalls   uint64 `json:"tier_fused_calls"`   // metric-exempt: report field aggregated from sched's registered counters
	TierClosureCalls uint64 `json:"tier_closure_calls"` // metric-exempt: report field aggregated from sched's registered counters
	TierPromotions   uint64 `json:"tier_promotions"`    // metric-exempt: report field aggregated from wabi's cache counter

	Obs map[string]any `json:"obs,omitempty"`
}

// BuildMulticellGroup assembles a group of Fig. 5a-shaped cells whose
// slices share pool-backed built-in schedulers: the deployment the
// multicell experiment (and cmd/gnb's multi-cell mode) steps.
func BuildMulticellGroup(cells, par int) (*CellGroup, error) {
	cg, _, err := BuildMulticellGroupABI(cells, par, sched.ABIAuto, wabi.Env{})
	return cg, err
}

// BuildMulticellGroupABI is BuildMulticellGroup with the plugin ABI forced
// and an environment (profiler, chaos) merged into every pool. It also
// returns the installed pool schedulers so callers can read per-path call
// accounting after the run.
func BuildMulticellGroupABI(cells, par int, abi sched.ABIMode, env wabi.Env) (*CellGroup, []*sched.PoolScheduler, error) {
	return BuildMulticellGroupTiered(cells, par, abi, wasm.TierAuto, 0, env)
}

// BuildMulticellGroupTiered is BuildMulticellGroupABI with the wasm
// execution tier pinned (TierAuto enables profile-guided promotion at the
// promoteFuel threshold; promoteFuel 0 keeps wabi's default arming,
// negative disables promotion).
func BuildMulticellGroupTiered(cells, par int, abi sched.ABIMode, tier wasm.Tier, promoteFuel int64, env wabi.Env) (*CellGroup, []*sched.PoolScheduler, error) {
	cg, err := NewCellGroup(ran.CellConfig{}, CellGroupConfig{Cells: cells, Parallelism: par})
	if err != nil {
		return nil, nil, err
	}
	cg.PluginABI = abi
	cg.PluginEnv = env
	cg.PluginTier = tier
	cg.TierPromoteFuel = promoteFuel
	if tier == wasm.TierAuto {
		// Uploads resolved through the group cache promote the same way the
		// preinstalled pools do.
		cg.Modules.SetTierPolicy(wabi.TierPolicy{PromoteFuel: promoteFuel})
	} else {
		cg.Modules.SetTierPolicy(wabi.TierPolicy{Pin: tier})
	}
	specs := DefaultFig5aSpecs()
	for c := 0; c < cells; c++ {
		gnb := cg.Cell(c)
		ueID := uint32(1)
		for _, sp := range specs {
			if _, err := gnb.Slices.AddSlice(sp.ID, sp.Name, sp.TargetBps, sched.RoundRobin{}, nil); err != nil {
				return nil, nil, err
			}
			for k := 0; k < sp.NumUEs; k++ {
				ue := ran.NewUE(ueID, sp.ID, 22+2*k)
				ue.Traffic = ran.NewCBR(1.4 * sp.TargetBps / float64(sp.NumUEs))
				if err := gnb.AttachUE(ue); err != nil {
					return nil, nil, err
				}
				ueID++
			}
		}
	}
	var scheds []*sched.PoolScheduler
	for _, sp := range specs {
		ps, err := cg.InstallPooledScheduler(sp.ID, sp.Scheduler, wabi.Policy{}, cells)
		if err != nil {
			return nil, nil, err
		}
		scheds = append(scheds, ps)
	}
	return cg, scheds, nil
}

// RunMulticell steps a cell group serially and with the worker pool, then
// fans one plugin upload across every cell. The serial baseline always runs
// un-instrumented; when cfg.Obs is set the parallel group registers its
// instruments (and streams traces into cfg.Trace) and the result embeds the
// registry snapshot.
func RunMulticell(cfg ExpConfig) (*MulticellResult, error) {
	cells := cfg.Cells
	if cells <= 0 {
		cells = 8
	}
	slots := cfg.Slots
	if slots <= 0 {
		slots = 2000
	}
	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	abi, err := sched.ParseABIMode(cfg.ABI)
	if err != nil {
		return nil, err
	}
	tier, err := wasm.ParseTier(cfg.Tier)
	if err != nil {
		return nil, err
	}
	rep := &MulticellResult{
		Cells:       cells,
		Slots:       slots,
		Parallelism: par,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		ABI:         abi.String(),
		Tier:        tier.String(),
	}

	timeRun := func(parallelism int, reg bool) (float64, *CellGroup, []*sched.PoolScheduler, error) {
		cg, scheds, err := BuildMulticellGroupTiered(cells, parallelism, abi, tier, 0, wabi.Env{})
		if err != nil {
			return 0, nil, nil, err
		}
		if reg && cfg.Obs != nil {
			cg.EnableObservability(cfg.Obs, cfg.Trace)
		}
		start := time.Now()
		cg.RunSlots(slots, nil)
		elapsed := time.Since(start)
		return float64(slots) / elapsed.Seconds(), cg, scheds, nil
	}

	if rep.SerialSlotsPerSec, _, _, err = timeRun(1, false); err != nil {
		return nil, err
	}
	parRate, cg, scheds, err := timeRun(par, true)
	if err != nil {
		return nil, err
	}
	rep.ParallelSlotsPerSec = parRate
	rep.Speedup = rep.ParallelSlotsPerSec / rep.SerialSlotsPerSec

	var totalNs, totalFuel int64
	var dirty, records uint64
	for _, ps := range scheds {
		st := ps.Stats()
		rep.SchedCalls += st.Calls
		rep.ZCCalls += st.ZCCalls
		totalNs += st.TotalTime.Nanoseconds()
		totalFuel += st.TotalFuel
		dirty += st.ZCDirtyRecords
		records += st.ZCRecords
		rep.TierInterpCalls += st.TierInterpCalls
		rep.TierFusedCalls += st.TierFusedCalls
		rep.TierClosureCalls += st.TierClosureCalls
	}
	if rep.SchedCalls > 0 {
		rep.SchedNsPerCall = float64(totalNs) / float64(rep.SchedCalls)
		rep.SchedFuelPerCall = float64(totalFuel) / float64(rep.SchedCalls)
	}
	if records > 0 {
		rep.ZCDirtyRecordPct = 100 * float64(dirty) / float64(records)
	}
	rep.ABIWallSharePct, err = measureABIWallShare(abi)
	if err != nil {
		return nil, err
	}

	for _, st := range cg.WatchdogStats() {
		rep.DeadlineUs = float64(st.Deadline.Microseconds())
		rep.Overruns += st.Overruns
		if w := float64(st.Worst.Nanoseconds()) / 1e3; w > rep.WorstSlotUs {
			rep.WorstSlotUs = w
		}
		if st.P99us > rep.P99SlotUs {
			rep.P99SlotUs = st.P99us
		}
	}

	// Fleet-wide hot swap of one compiled module through the shared cache.
	blob, err := wat.CompileToBinary(plugins.ProportionalFairWAT)
	if err != nil {
		return nil, err
	}
	before := wasm.CompileCount()
	if _, err := cg.UploadSchedulerAll(1, "pf-v2", blob, wabi.Policy{}, par); err != nil {
		return nil, err
	}
	for i := 0; i < cells; i++ {
		err := cg.Cell(i).Apply(&e2.ControlRequest{
			Action: e2.ActionUploadScheduler, SliceID: 1, Text: "pf-v2", Blob: blob,
		})
		if err != nil {
			return nil, err
		}
	}
	rep.HotSwapCells = cells
	rep.HotSwapCompiles = wasm.CompileCount() - before
	cs := cg.Modules.Stats()
	rep.CacheHits, rep.CacheMisses = cs.Hits, cs.Misses
	rep.TierPromotions = cs.TierPromotions

	if cfg.Obs != nil {
		rep.Obs = cfg.Obs.Snapshot()
	}
	return rep, nil
}

// measureABIWallShare runs a short profiled pass of a small cell group and
// returns the percentage of in-sandbox wall time spent inside the "waran.*"
// ABI import functions — the serialization plumbing the zero-copy path
// bypasses. Profiling distorts absolute timings, so this runs apart from
// the timed passes and only the ratio is reported. Function names carry a
// per-scheduler tag prefix ("rr:waran.input_read"), hence the substring
// match.
func measureABIWallShare(abi sched.ABIMode) (float64, error) {
	prof := wasm.NewProfile()
	cg, _, err := BuildMulticellGroupABI(2, 1, abi, wabi.Env{Profile: prof})
	if err != nil {
		return 0, err
	}
	cg.RunSlots(256, nil)
	var abiNs, allNs int64
	for _, f := range prof.Snapshot().Functions {
		allNs += f.SelfNs
		if strings.Contains(f.Name, "waran.") {
			abiNs += f.SelfNs
		}
	}
	if allNs == 0 {
		return 0, nil
	}
	return 100 * float64(abiNs) / float64(allNs), nil
}

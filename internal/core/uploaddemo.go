package core

import (
	"fmt"
	"time"

	"waran/internal/e2"
	"waran/internal/plugins"
	"waran/internal/ran"
	"waran/internal/wabi"
	"waran/internal/wat"
)

// UploadDemoResult reports the Fig. 1 deployment flow: new scheduler
// bytecode pushed into a running gNB through the E2 control plane.
type UploadDemoResult struct {
	BeforeScheduler string        `json:"before_scheduler"`
	AfterScheduler  string        `json:"after_scheduler"`
	BlobBytes       int           `json:"blob_bytes"`
	SwapTime        time.Duration `json:"swap_time_ns"`
	UEKept          bool          `json:"ue_kept"`
}

// RunUploadDemo demonstrates the Fig. 1 deployment flow: a gNB scheduling a
// tenant slice with the round-robin plugin, then hot-swapped to freshly
// compiled proportional-fair bytecode via an E2 upload control, without
// stopping the slot loop or detaching the UE.
func RunUploadDemo() (*UploadDemoResult, error) {
	gnb, err := NewGNB(ran.CellConfig{})
	if err != nil {
		return nil, err
	}
	rr, err := NewPluginScheduler("rr", wabi.Policy{})
	if err != nil {
		return nil, err
	}
	s, err := gnb.Slices.AddSlice(1, "tenant", 10e6, rr, nil)
	if err != nil {
		return nil, err
	}
	ue := ran.NewUE(1, 1, 24)
	ue.Traffic = ran.NewCBR(5e6)
	if err := gnb.AttachUE(ue); err != nil {
		return nil, err
	}
	gnb.RunSlots(100, nil)
	res := &UploadDemoResult{BeforeScheduler: s.SchedulerName()}

	blob, err := wat.CompileToBinary(plugins.ProportionalFairWAT)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	err = gnb.Apply(&e2.ControlRequest{
		Action: e2.ActionUploadScheduler, SliceID: 1, Text: "pf-v2", Blob: blob,
	})
	if err != nil {
		return nil, err
	}
	res.SwapTime = time.Since(start).Round(time.Microsecond)
	res.BlobBytes = len(blob)
	res.AfterScheduler = s.SchedulerName()
	gnb.RunSlots(100, nil)
	_, res.UEKept = gnb.UE(1)
	if !res.UEKept {
		return nil, fmt.Errorf("core: upload demo: UE lost across hot swap")
	}
	return res, nil
}

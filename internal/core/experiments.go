package core

import (
	"errors"
	"fmt"
	"time"

	"waran/internal/metrics"
	"waran/internal/plugins"
	"waran/internal/ran"
	"waran/internal/sched"
	"waran/internal/wabi"
	"waran/internal/wasm"
)

// This file is the per-figure experiment harness. Each RunFigXX function
// reproduces one element of the paper's evaluation (§5) and returns the
// series the paper plots, so benches, examples and cmd/waranbench all share
// one implementation.

// ---------------------------------------------------------------------------
// Fig. 5a — Co-existence of MVNOs.

// MVNOSpec configures one slice for the co-existence experiment.
type MVNOSpec struct {
	ID        uint32
	Name      string
	Scheduler string // "rr", "pf", "mt"
	TargetBps float64
	NumUEs    int
	// OfferedBpsPerUE is each UE's offered CBR load. Zero means
	// 1.4 x TargetBps / NumUEs (saturating, like the paper's iperf3 DL).
	OfferedBpsPerUE float64
	// MinMCS/MaxMCS bound the UEs' static channels (defaults 22..28).
	MinMCS, MaxMCS int
}

// MVNOSeries is the measured outcome for one MVNO.
type MVNOSeries struct {
	Spec      MVNOSpec
	Series    []metrics.RatePoint
	MeanBps   float64 // steady-state mean (first second excluded)
	TargetBps float64
}

// Fig5aResult is the co-existence experiment outcome.
type Fig5aResult struct {
	Cell     ran.CellConfig
	Duration time.Duration
	MVNOs    []MVNOSeries
}

// DefaultFig5aSpecs mirrors the paper: MVNO 1 MT @ 3 Mb/s, MVNO 2 RR @
// 12 Mb/s, MVNO 3 PF @ 15 Mb/s.
func DefaultFig5aSpecs() []MVNOSpec {
	return []MVNOSpec{
		{ID: 1, Name: "MVNO-1", Scheduler: "mt", TargetBps: 3e6, NumUEs: 3},
		{ID: 2, Name: "MVNO-2", Scheduler: "rr", TargetBps: 12e6, NumUEs: 3},
		{ID: 3, Name: "MVNO-3", Scheduler: "pf", TargetBps: 15e6, NumUEs: 3},
	}
}

// RunFig5a runs the co-existence experiment: all MVNOs scheduled by their
// own Wasm plugin on one gNB, each reaching its contracted rate.
func RunFig5a(specs []MVNOSpec, duration time.Duration) (*Fig5aResult, error) {
	if len(specs) == 0 {
		specs = DefaultFig5aSpecs()
	}
	if duration == 0 {
		duration = 10 * time.Second
	}
	gnb, err := NewGNB(ran.CellConfig{})
	if err != nil {
		return nil, err
	}
	meters := make(map[uint32]*metrics.RateMeter)
	nextUE := uint32(1)
	for i := range specs {
		sp := &specs[i]
		if sp.MinMCS == 0 {
			sp.MinMCS = 22
		}
		if sp.MaxMCS == 0 {
			sp.MaxMCS = 28
		}
		if sp.OfferedBpsPerUE == 0 {
			sp.OfferedBpsPerUE = 1.4 * sp.TargetBps / float64(sp.NumUEs)
		}
		plugin, err := NewPluginScheduler(sp.Scheduler, wabi.Policy{})
		if err != nil {
			return nil, fmt.Errorf("core: fig5a: %w", err)
		}
		if _, err := gnb.Slices.AddSlice(sp.ID, sp.Name, sp.TargetBps, plugin, nil); err != nil {
			return nil, err
		}
		for k := 0; k < sp.NumUEs; k++ {
			mcs := sp.MinMCS
			if sp.NumUEs > 1 {
				mcs = sp.MinMCS + k*(sp.MaxMCS-sp.MinMCS)/(sp.NumUEs-1)
			}
			ue := ran.NewUE(nextUE, sp.ID, mcs)
			ue.Traffic = ran.NewCBR(sp.OfferedBpsPerUE)
			ue.Channel = &ran.StaticChannel{MCS: mcs}
			if err := gnb.AttachUE(ue); err != nil {
				return nil, err
			}
			nextUE++
		}
		meters[sp.ID] = metrics.NewRateMeter(gnb.Cell.SlotDuration, 500*time.Millisecond)
	}

	slots := SlotsForDuration(gnb.Cell, duration)
	gnb.RunSlots(slots, func(r SlotResult) {
		for id, ss := range r.PerSlice {
			meters[id].AddSlot(ss.Bits)
		}
	})

	res := &Fig5aResult{Cell: gnb.Cell, Duration: duration}
	for _, sp := range specs {
		m := meters[sp.ID]
		res.MVNOs = append(res.MVNOs, MVNOSeries{
			Spec:      sp,
			Series:    m.Series(),
			MeanBps:   m.MeanBpsAfter(time.Second),
			TargetBps: sp.TargetBps,
		})
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Fig. 5b — Live swap of the MVNO scheduler.

// Fig5bPhase describes one scheduler phase of the live-swap experiment.
type Fig5bPhase struct {
	Scheduler string
	Start     time.Duration
}

// Fig5bUESeries is the per-UE bitrate trace.
type Fig5bUESeries struct {
	UEID   uint32
	MCS    int
	Series []metrics.RatePoint
}

// Fig5bResult is the live-swap experiment outcome.
type Fig5bResult struct {
	Cell     ran.CellConfig
	Duration time.Duration
	Phases   []Fig5bPhase
	UEs      []Fig5bUESeries
	// Swaps confirms how many hot swaps were applied mid-run.
	Swaps uint64
	// UEsDetached would be non-zero if any UE lost attachment during the
	// swaps; the experiment's point is that it stays zero.
	UEsDetached int
}

// RunFig5b reproduces the live-swap experiment: one MVNO, three UEs at MCS
// 20/24/28 each offered 22 Mb/s, scheduler hot-swapped MT -> PF -> RR at
// thirds of the run, without stopping the gNB or detaching UEs.
func RunFig5b(duration time.Duration, pfTimeConstant float64) (*Fig5bResult, error) {
	if duration == 0 {
		duration = 30 * time.Second
	}
	if pfTimeConstant == 0 {
		// Deliberately large, as in the paper, to stress PF's memory.
		pfTimeConstant = 4000
	}
	gnb, err := NewGNB(ran.CellConfig{})
	if err != nil {
		return nil, err
	}
	gnb.PFTimeConstant = pfTimeConstant

	const sliceID = 1
	mt, err := NewPluginScheduler("mt", wabi.Policy{})
	if err != nil {
		return nil, err
	}
	if _, err := gnb.Slices.AddSlice(sliceID, "MVNO", 0, mt, nil); err != nil {
		return nil, err
	}

	mcss := []int{20, 24, 28}
	meters := make(map[uint32]*metrics.RateMeter)
	for i, mcs := range mcss {
		ue := ran.NewUE(uint32(i+1), sliceID, mcs)
		ue.Traffic = ran.NewCBR(22e6)
		ue.Channel = &ran.StaticChannel{MCS: mcs}
		if err := gnb.AttachUE(ue); err != nil {
			return nil, err
		}
		meters[ue.ID] = metrics.NewRateMeter(gnb.Cell.SlotDuration, 500*time.Millisecond)
	}

	phases := []Fig5bPhase{
		{Scheduler: "mt", Start: 0},
		{Scheduler: "pf", Start: duration / 3},
		{Scheduler: "rr", Start: 2 * duration / 3},
	}
	totalSlots := SlotsForDuration(gnb.Cell, duration)
	swapAt := map[int]string{
		SlotsForDuration(gnb.Cell, phases[1].Start): "pf",
		SlotsForDuration(gnb.Cell, phases[2].Start): "rr",
	}

	attachedBefore := len(gnb.UEs())
	for slot := 0; slot < totalSlots; slot++ {
		if name, ok := swapAt[slot]; ok {
			next, err := NewPluginScheduler(name, wabi.Policy{})
			if err != nil {
				return nil, err
			}
			if err := gnb.Slices.HotSwap(sliceID, next); err != nil {
				return nil, err
			}
		}
		r := gnb.Step()
		for _, ue := range gnb.UEs() {
			meters[ue.ID].AddSlot(r.PerUE[ue.ID].Bits)
		}
	}

	s, _ := gnb.Slices.Slice(sliceID)
	res := &Fig5bResult{
		Cell:        gnb.Cell,
		Duration:    duration,
		Phases:      phases,
		Swaps:       s.Stats().Swaps,
		UEsDetached: attachedBefore - len(gnb.UEs()),
	}
	for i, mcs := range mcss {
		id := uint32(i + 1)
		res.UEs = append(res.UEs, Fig5bUESeries{UEID: id, MCS: mcs, Series: meters[id].Series()})
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Fig. 5c — Memory growth: leaky code sandboxed vs native.

// Fig5cPoint is one sample of the memory-over-time comparison.
type Fig5cPoint struct {
	Time        time.Duration
	PluginBytes int64 // real sandbox linear-memory footprint (capped)
	NativeBytes int64 // modelled unbounded leak of the same code run natively
}

// Fig5cResult is the memory-safety-over-time comparison. The "native"
// column models the same allocate-without-free pattern executed in the gNB
// process, where nothing bounds it (the paper demonstrates the host crash
// separately; here the linear growth is the signal).
type Fig5cResult struct {
	CapBytes int64
	Duration time.Duration
	Points   []Fig5cPoint
}

// RunFig5c executes the leaky scheduler plugin once per slot for the given
// duration, sampling the sandbox's real memory footprint, alongside the
// modelled native leak (leak rate x slots).
func RunFig5c(duration time.Duration, capPages uint32) (*Fig5cResult, error) {
	if duration == 0 {
		duration = 100 * time.Second
	}
	if capPages == 0 {
		capPages = 256 // 16 MiB, the plugin's hard ceiling
	}
	mod, err := wabi.CompileWAT(plugins.LeakWAT)
	if err != nil {
		return nil, err
	}
	p, err := wabi.NewPlugin(mod, wabi.Policy{MaxMemoryPages: capPages}, wabi.Env{})
	if err != nil {
		return nil, err
	}

	cell := ran.CellConfig{}.WithDefaults()
	slots := int(duration / cell.SlotDuration)
	const leakPerSlot = wasm.PageSize // the plugin leaks one page per call
	sampleEvery := slots / 100
	if sampleEvery == 0 {
		sampleEvery = 1
	}
	res := &Fig5cResult{CapBytes: int64(capPages) * wasm.PageSize, Duration: duration}
	var nativeBytes int64
	for slot := 0; slot < slots; slot++ {
		if _, err := p.Call("schedule", nil); err != nil {
			return nil, fmt.Errorf("core: fig5c: slot %d: %w", slot, err)
		}
		nativeBytes += leakPerSlot
		if slot%sampleEvery == 0 {
			res.Points = append(res.Points, Fig5cPoint{
				Time:        time.Duration(slot) * cell.SlotDuration,
				PluginBytes: int64(p.MemoryBytes()),
				NativeBytes: nativeBytes,
			})
		}
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Fig. 5d — Execution time of scheduler plugins.

// Fig5dCell is one bar of Fig. 5d: a scheduler x UE-count combination.
type Fig5dCell struct {
	Scheduler string
	NumUEs    int
	P50us     float64
	P99us     float64
	Meanus    float64
	Samples   int
}

// Fig5dResult is the execution-time experiment outcome.
type Fig5dResult struct {
	SlotDeadlineUs float64
	Cells          []Fig5dCell
}

// RunFig5d measures wall-clock plugin execution time — including request
// serialization and response decoding on the host, as in the paper — for
// every scheduler and UE count combination.
func RunFig5d(schedulers []string, ueCounts []int, invocations int) (*Fig5dResult, error) {
	if len(schedulers) == 0 {
		schedulers = []string{"mt", "pf", "rr"}
	}
	if len(ueCounts) == 0 {
		ueCounts = []int{1, 10, 20}
	}
	if invocations == 0 {
		invocations = 2000
	}
	cell := ran.CellConfig{}.WithDefaults()
	res := &Fig5dResult{SlotDeadlineUs: float64(cell.SlotDuration.Microseconds())}

	for _, name := range schedulers {
		for _, n := range ueCounts {
			ps, err := NewPluginScheduler(name, wabi.Policy{})
			if err != nil {
				return nil, err
			}
			req := syntheticRequest(cell, n)
			// Warm up: exclude one-time costs (lazy allocations, cold
			// caches) that a long-running gNB would not see per slot.
			for i := 0; i < 50; i++ {
				req.Slot = uint64(i)
				if _, err := ps.Schedule(req); err != nil {
					return nil, fmt.Errorf("core: fig5d warmup: %s/%d UEs: %w", name, n, err)
				}
			}
			var q metrics.Quantile
			for i := 0; i < invocations; i++ {
				req.Slot = uint64(i)
				start := time.Now()
				if _, err := ps.Schedule(req); err != nil {
					return nil, fmt.Errorf("core: fig5d: %s/%d UEs: %w", name, n, err)
				}
				q.AddDuration(time.Since(start))
			}
			res.Cells = append(res.Cells, Fig5dCell{
				Scheduler: name,
				NumUEs:    n,
				P50us:     q.Value(0.50),
				P99us:     q.Value(0.99),
				Meanus:    q.Mean(),
				Samples:   q.Count(),
			})
		}
	}
	return res, nil
}

func syntheticRequest(cell ran.CellConfig, nUE int) *sched.Request {
	req := &sched.Request{SliceID: 1, PRBBudget: uint32(cell.PRBs)}
	for i := 0; i < nUE; i++ {
		mcs := 20 + (i % 9)
		req.UEs = append(req.UEs, sched.UEInfo{
			ID:          uint32(i + 1),
			MCS:         int32(mcs),
			BitsPerPRB:  uint32(cell.BitsPerPRB(mcs)),
			BufferBytes: uint32(50_000 + 1000*i),
			AvgTputBps:  float64(1_000_000 * (i + 1)),
		})
	}
	return req
}

// ---------------------------------------------------------------------------
// §5D — memory-safety fault matrix.

// SafetyRow is one row of the fault matrix.
type SafetyRow struct {
	Fault string
	// TrapCode is how the sandbox classified the fault.
	TrapCode string
	// HostSurvived: the gNB process kept scheduling afterwards.
	HostSurvived bool
	// SliceRescued: the slot was still served (fallback scheduler).
	SliceRescued bool
}

// RunSafetyMatrix injects each fault plugin into a live slice and records
// how the system responds: the sandbox traps, the slice falls back to the
// native default scheduler, and the gNB keeps running.
func RunSafetyMatrix() ([]SafetyRow, error) {
	faults := []string{"null-deref", "oob-access", "double-free", "stack-overflow", "infinite-loop"}
	var rows []SafetyRow
	for _, name := range faults {
		src, err := plugins.FaultWAT(name)
		if err != nil {
			return nil, err
		}
		mod, err := wabi.CompileWAT(src)
		if err != nil {
			return nil, fmt.Errorf("core: safety: compile %s: %w", name, err)
		}
		p, err := wabi.NewPlugin(mod, wabi.Policy{Fuel: 1_000_000}, wabi.Env{})
		if err != nil {
			return nil, err
		}
		ps, err := sched.NewPluginScheduler(name, p, nil)
		if err != nil {
			return nil, err
		}

		gnb, err := NewGNB(ran.CellConfig{})
		if err != nil {
			return nil, err
		}
		var faultErr error
		gnb.Slices.OnFault = func(_ uint32, err error) {
			if faultErr == nil {
				faultErr = err
			}
		}
		if _, err := gnb.Slices.AddSlice(1, name, 10e6, ps, nil); err != nil {
			return nil, err
		}
		ue := ran.NewUE(1, 1, 24)
		ue.Traffic = ran.NewCBR(5e6)
		if err := gnb.AttachUE(ue); err != nil {
			return nil, err
		}

		row := SafetyRow{Fault: name}
		for i := 0; i < 10; i++ {
			r := gnb.Step()
			if ss, ok := r.PerSlice[1]; ok && ss.Bits > 0 {
				row.SliceRescued = true
			}
		}
		row.HostSurvived = true // reaching here means no crash
		var trap *wasm.Trap
		if errors.As(faultErr, &trap) {
			row.TrapCode = trap.Code.String()
		} else if faultErr != nil {
			row.TrapCode = faultErr.Error()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

package core

import (
	"reflect"
	"testing"

	"waran/internal/sched"
	"waran/internal/wabi"
	"waran/internal/wasm"
)

// tierGroupStats sums the scheduler accounting across a group's pools.
func tierGroupStats(scheds []*sched.PoolScheduler) sched.SchedStats {
	var total sched.SchedStats
	for _, ps := range scheds {
		st := ps.Stats()
		total.Calls += st.Calls
		total.TierInterpCalls += st.TierInterpCalls
		total.TierFusedCalls += st.TierFusedCalls
		total.TierClosureCalls += st.TierClosureCalls
	}
	return total
}

// TestMulticellTierDecisionsIdentical is the system-level half of the tier
// bit-identity contract: the same deterministic cell group stepped with the
// scheduler sandboxes pinned to each tier must emit identical per-cell
// SlotResult sequences, and the tier counters must attribute every sandbox
// call to the pinned tier.
func TestMulticellTierDecisionsIdentical(t *testing.T) {
	const cells, slots = 2, 120
	run := func(tier wasm.Tier) ([][]SlotResult, sched.SchedStats) {
		cg, scheds, err := BuildMulticellGroupTiered(cells, 1, sched.ABIAuto, tier, 0, wabi.Env{})
		if err != nil {
			t.Fatal(err)
		}
		var seq [][]SlotResult
		for i := 0; i < slots; i++ {
			seq = append(seq, cg.StepAll())
		}
		return seq, tierGroupStats(scheds)
	}

	base, baseStats := run(wasm.TierInterp)
	if baseStats.Calls == 0 || baseStats.TierInterpCalls != baseStats.Calls {
		t.Fatalf("interp pin: %d of %d calls on interpreter", baseStats.TierInterpCalls, baseStats.Calls)
	}
	for _, tier := range []wasm.Tier{wasm.TierFused, wasm.TierClosure} {
		seq, st := run(tier)
		if !reflect.DeepEqual(seq, base) {
			t.Fatalf("tier %v: slot results diverged from interpreter run", tier)
		}
		want := st.Calls
		var got uint64
		if tier == wasm.TierFused {
			got = st.TierFusedCalls
		} else {
			got = st.TierClosureCalls
		}
		if want == 0 || got != want {
			t.Fatalf("tier %v: %d of %d calls attributed to the pinned tier", tier, got, want)
		}
	}
}

// TestMulticellTierPromotion drives a TierAuto group until the fuel profile
// promotes the scheduler modules: early calls run on the interpreter, later
// calls on the closure tier, and the cache counts the promotions.
func TestMulticellTierPromotion(t *testing.T) {
	const cells = 2
	// A few thousand fuel per decision: a tiny threshold promotes within the
	// first few slots.
	cg, scheds, err := BuildMulticellGroupTiered(cells, 1, sched.ABIAuto, wasm.TierAuto, 5000, wabi.Env{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		cg.StepAll()
	}
	st := tierGroupStats(scheds)
	if st.TierInterpCalls == 0 {
		t.Fatal("no calls ran on the interpreter before promotion")
	}
	if st.TierClosureCalls == 0 {
		t.Fatal("promotion never moved calls to the closure tier")
	}
	if st.TierInterpCalls+st.TierFusedCalls+st.TierClosureCalls != st.Calls {
		t.Fatalf("tier counters (%d+%d+%d) do not cover %d calls",
			st.TierInterpCalls, st.TierFusedCalls, st.TierClosureCalls, st.Calls)
	}
}

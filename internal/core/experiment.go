package core

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"waran/internal/obs"
)

// This file is the experiment registry: the single front door through which
// cmd/waranbench (and anything else) discovers and runs the paper's
// evaluation. Each figure self-registers an Experiment at init time, so
// adding a figure means adding a Run function plus one RegisterExperiment
// call — no switch statement in any binary to keep in sync.

// ExpConfig is the flat knob set shared by every experiment. Experiments
// read only the fields they care about; zero values mean "use the figure's
// published default", so an empty ExpConfig reproduces the paper.
type ExpConfig struct {
	// Duration overrides the experiment's simulated duration (figures
	// 5a-5c). Zero keeps the per-figure default.
	Duration time.Duration
	// Cells / Slots / Parallelism shape the multi-cell experiments.
	Cells       int
	Slots       int
	Parallelism int
	// Seed selects deterministic fault/jitter schedules where applicable.
	Seed int64
	// Drop / ResetAfterWrites / Heartbeat parameterize transport-fault
	// experiments.
	Drop             float64
	ResetAfterWrites int
	Heartbeat        time.Duration
	// SlotDeadline overrides the per-cell wall-clock slot budget in
	// experiments that run a watchdog-timed cell group. Zero keeps the
	// paper's 1 ms; tests raise it so shared-machine jitter cannot register
	// as a missed deadline.
	SlotDeadline time.Duration
	// ABI selects the plugin call path in experiments that install wasm
	// schedulers: "auto" (default), "codec" or "zerocopy" (sched.ParseABIMode).
	ABI string
	// Tier pins the wasm execution tier for experiments that install wasm
	// schedulers: "auto" (default, profile-guided promotion), "interp",
	// "fused" or "closure" (wasm.ParseTier).
	Tier string
	// Obs, when non-nil, is the metric registry the experiment should wire
	// its subsystems into; experiments that support it embed
	// Obs.Snapshot() in their result. Nil disables instrumentation.
	Obs *obs.Registry
	// Trace, when non-nil (and Obs is set), receives per-slot trace events
	// from experiments that drive an instrumented slot loop.
	Trace *obs.TraceRing
}

// Experiment is one self-contained, runnable element of the evaluation.
type Experiment interface {
	// Name is the registry key (e.g. "5a", "multicell").
	Name() string
	// Describe is a one-line summary for listings.
	Describe() string
	// Run executes the experiment and returns its result. Results that
	// implement TextRenderer print as text tables; anything else is
	// presented as JSON by callers.
	Run(cfg ExpConfig) (any, error)
}

// TextRenderer is implemented by experiment results that render themselves
// as the human-readable tables waranbench prints. Results without it are
// JSON-encoded instead.
type TextRenderer interface {
	RenderText(w io.Writer) error
}

// expFunc adapts a plain function to Experiment.
type expFunc struct {
	name, desc string
	run        func(ExpConfig) (any, error)
}

func (e expFunc) Name() string                   { return e.name }
func (e expFunc) Describe() string               { return e.desc }
func (e expFunc) Run(cfg ExpConfig) (any, error) { return e.run(cfg) }

var (
	expMu     sync.Mutex
	expByName = make(map[string]Experiment)
	expOrder  []string // registration order, the canonical "all" order
)

// RegisterExperiment adds e to the registry; duplicate names panic (they
// are a programming error, caught at init time).
func RegisterExperiment(e Experiment) {
	expMu.Lock()
	defer expMu.Unlock()
	name := e.Name()
	if _, dup := expByName[name]; dup {
		panic(fmt.Sprintf("core: experiment %q registered twice", name))
	}
	expByName[name] = e
	expOrder = append(expOrder, name)
}

// RegisterExperimentFunc registers a function-backed experiment.
func RegisterExperimentFunc(name, desc string, run func(ExpConfig) (any, error)) {
	RegisterExperiment(expFunc{name: name, desc: desc, run: run})
}

// LookupExperiment resolves a registered experiment by name.
func LookupExperiment(name string) (Experiment, bool) {
	expMu.Lock()
	defer expMu.Unlock()
	e, ok := expByName[name]
	return e, ok
}

// Experiments returns every registered experiment in registration order —
// the order "run everything" callers should use, which follows the paper's
// figure sequence.
func Experiments() []Experiment {
	expMu.Lock()
	defer expMu.Unlock()
	out := make([]Experiment, 0, len(expOrder))
	for _, name := range expOrder {
		out = append(out, expByName[name])
	}
	return out
}

// ExperimentNames returns the registered names sorted alphabetically (for
// error messages and completion).
func ExperimentNames() []string {
	expMu.Lock()
	defer expMu.Unlock()
	out := append([]string(nil), expOrder...)
	sort.Strings(out)
	return out
}

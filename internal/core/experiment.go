package core

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"waran/internal/obs"
)

// This file is the experiment registry: the single front door through which
// cmd/waranbench (and anything else) discovers and runs the paper's
// evaluation. Each figure self-registers an Experiment at init time, so
// adding a figure means adding a Run function plus one RegisterExperiment
// call — no switch statement in any binary to keep in sync.

// ExpConfig is the flat knob set shared by every experiment. Experiments
// read only the fields they care about; zero values mean "use the figure's
// published default", so an empty ExpConfig reproduces the paper.
type ExpConfig struct {
	// Duration overrides the experiment's simulated duration (figures
	// 5a-5c). Zero keeps the per-figure default.
	Duration time.Duration
	// Cells / Slots / Parallelism shape the multi-cell experiments.
	Cells       int
	Slots       int
	Parallelism int
	// Seed selects deterministic fault/jitter schedules where applicable.
	Seed int64
	// Drop / ResetAfterWrites / Heartbeat parameterize transport-fault
	// experiments.
	Drop             float64
	ResetAfterWrites int
	Heartbeat        time.Duration
	// SlotDeadline overrides the per-cell wall-clock slot budget in
	// experiments that run a watchdog-timed cell group. Zero keeps the
	// paper's 1 ms; tests raise it so shared-machine jitter cannot register
	// as a missed deadline.
	SlotDeadline time.Duration
	// ABI selects the plugin call path in experiments that install wasm
	// schedulers: "auto" (default), "codec" or "zerocopy" (sched.ParseABIMode).
	ABI string
	// Tier pins the wasm execution tier for experiments that install wasm
	// schedulers: "auto" (default, profile-guided promotion), "interp",
	// "fused" or "closure" (wasm.ParseTier).
	Tier string
	// UEsPerCell / Sectors / Shards / BatchWindow shape the city-scale
	// experiment (citysim): modeled UEs per cell, E2 associations per cell,
	// RIC association shards, and the KPM batching window in report periods.
	UEsPerCell  int
	Sectors     int
	Shards      int
	BatchWindow int
	// Agents / AdmitRate / AdmitBurst / Outage / Dwell / StallIters shape
	// the overload chaos experiment: reconnect-storm fleet size, per-shard
	// admission rate and burst, RIC downtime before the restart, the
	// slow-xApp measurement window, and the stalling xApp's spin length.
	Agents     int
	AdmitRate  float64
	AdmitBurst int
	Outage     time.Duration
	Dwell      time.Duration
	StallIters int
	// Overload, when nonzero, enables the RIC overload guard in experiments
	// that support it as an optional arm (citysim).
	Overload int
	// Flight, when nonzero, arms the flight recorder in experiments that
	// support it (overload, pluginfaults; flightrec is always armed): state
	// transitions are journaled and anomaly triggers capture diagnostic
	// bundles, and the run fails if the storm's expected trigger classes
	// produced no bundle.
	Flight int
	// FlightDir is where flight-armed experiments write diagnostic bundles
	// (empty = a fresh temporary directory).
	FlightDir string
	// Obs, when non-nil, is the metric registry the experiment should wire
	// its subsystems into; experiments that support it embed
	// Obs.Snapshot() in their result. Nil disables instrumentation.
	Obs *obs.Registry
	// Trace, when non-nil (and Obs is set), receives per-slot trace events
	// from experiments that drive an instrumented slot loop.
	Trace *obs.TraceRing
}

// Experiment is one self-contained, runnable element of the evaluation.
type Experiment interface {
	// Name is the registry key (e.g. "5a", "multicell").
	Name() string
	// Describe is a one-line summary for listings.
	Describe() string
	// Run executes the experiment and returns its result. Results that
	// implement TextRenderer print as text tables; anything else is
	// presented as JSON by callers.
	Run(cfg ExpConfig) (any, error)
}

// TextRenderer is implemented by experiment results that render themselves
// as the human-readable tables waranbench prints. Results without it are
// JSON-encoded instead.
type TextRenderer interface {
	RenderText(w io.Writer) error
}

// ExpFlag declares one experiment-owned command-line knob. Binaries expose
// it under the experiment's namespace (waranbench: -<experiment>.<name>) and
// apply the parsed value onto that experiment's ExpConfig just before Run —
// so every figure declares its own parameters here and no binary grows
// experiment-specific globals.
type ExpFlag struct {
	// Name is the knob's short name within the experiment ("cells").
	Name string
	// Default is the value used when the flag is not given, in the same
	// textual form the command line would use.
	Default string
	// Usage is the one-line help string.
	Usage string
	// Set parses value and applies it onto cfg.
	Set func(cfg *ExpConfig, value string) error
}

// IntExpFlag binds an integer knob onto an ExpConfig field.
func IntExpFlag(name string, def int, usage string, set func(*ExpConfig, int)) ExpFlag {
	return ExpFlag{Name: name, Default: strconv.Itoa(def), Usage: usage,
		Set: func(cfg *ExpConfig, v string) error {
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			set(cfg, n)
			return nil
		}}
}

// Int64ExpFlag binds a 64-bit integer knob (seeds) onto an ExpConfig field.
func Int64ExpFlag(name string, def int64, usage string, set func(*ExpConfig, int64)) ExpFlag {
	return ExpFlag{Name: name, Default: strconv.FormatInt(def, 10), Usage: usage,
		Set: func(cfg *ExpConfig, v string) error {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			set(cfg, n)
			return nil
		}}
}

// FloatExpFlag binds a float knob onto an ExpConfig field.
func FloatExpFlag(name string, def float64, usage string, set func(*ExpConfig, float64)) ExpFlag {
	return ExpFlag{Name: name, Default: strconv.FormatFloat(def, 'g', -1, 64), Usage: usage,
		Set: func(cfg *ExpConfig, v string) error {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			set(cfg, f)
			return nil
		}}
}

// DurationExpFlag binds a time.Duration knob onto an ExpConfig field.
func DurationExpFlag(name string, def time.Duration, usage string, set func(*ExpConfig, time.Duration)) ExpFlag {
	return ExpFlag{Name: name, Default: def.String(), Usage: usage,
		Set: func(cfg *ExpConfig, v string) error {
			d, err := time.ParseDuration(v)
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			set(cfg, d)
			return nil
		}}
}

// StringExpFlag binds a string knob onto an ExpConfig field.
func StringExpFlag(name, def, usage string, set func(*ExpConfig, string)) ExpFlag {
	return ExpFlag{Name: name, Default: def, Usage: usage,
		Set: func(cfg *ExpConfig, v string) error {
			set(cfg, v)
			return nil
		}}
}

// FlaggedExperiment is implemented by experiments that declare their own
// command-line knobs.
type FlaggedExperiment interface {
	Experiment
	Flags() []ExpFlag
}

// ExperimentFlags returns e's declared knobs (nil for experiments without
// any).
func ExperimentFlags(e Experiment) []ExpFlag {
	if fe, ok := e.(FlaggedExperiment); ok {
		return fe.Flags()
	}
	return nil
}

// expFunc adapts a plain function to Experiment.
type expFunc struct {
	name, desc string
	flags      []ExpFlag
	run        func(ExpConfig) (any, error)
}

func (e expFunc) Name() string                   { return e.name }
func (e expFunc) Describe() string               { return e.desc }
func (e expFunc) Flags() []ExpFlag               { return e.flags }
func (e expFunc) Run(cfg ExpConfig) (any, error) { return e.run(cfg) }

var (
	expMu     sync.Mutex
	expByName = make(map[string]Experiment)
	expOrder  []string // registration order, the canonical "all" order
)

// RegisterExperiment adds e to the registry; duplicate names panic (they
// are a programming error, caught at init time).
func RegisterExperiment(e Experiment) {
	expMu.Lock()
	defer expMu.Unlock()
	name := e.Name()
	if _, dup := expByName[name]; dup {
		panic(fmt.Sprintf("core: experiment %q registered twice", name))
	}
	expByName[name] = e
	expOrder = append(expOrder, name)
}

// RegisterExperimentFunc registers a function-backed experiment.
func RegisterExperimentFunc(name, desc string, run func(ExpConfig) (any, error)) {
	RegisterExperiment(expFunc{name: name, desc: desc, run: run})
}

// RegisterExperimentWithFlags registers a function-backed experiment that
// declares its own command-line knobs.
func RegisterExperimentWithFlags(name, desc string, flags []ExpFlag, run func(ExpConfig) (any, error)) {
	RegisterExperiment(expFunc{name: name, desc: desc, flags: flags, run: run})
}

// LookupExperiment resolves a registered experiment by name.
func LookupExperiment(name string) (Experiment, bool) {
	expMu.Lock()
	defer expMu.Unlock()
	e, ok := expByName[name]
	return e, ok
}

// Experiments returns every registered experiment in registration order —
// the order "run everything" callers should use, which follows the paper's
// figure sequence.
func Experiments() []Experiment {
	expMu.Lock()
	defer expMu.Unlock()
	out := make([]Experiment, 0, len(expOrder))
	for _, name := range expOrder {
		out = append(out, expByName[name])
	}
	return out
}

// ExperimentNames returns the registered names sorted alphabetically (for
// error messages and completion).
func ExperimentNames() []string {
	expMu.Lock()
	defer expMu.Unlock()
	out := append([]string(nil), expOrder...)
	sort.Strings(out)
	return out
}

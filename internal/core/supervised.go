package core

import (
	"fmt"
	"sort"
	"strconv"

	"waran/internal/guard"
	"waran/internal/obs"
	"waran/internal/plugins"
	"waran/internal/sched"
	"waran/internal/wabi"
)

// This file wires the plugin lifecycle supervisor (internal/guard) into the
// multi-cell slot engine: every cell sharing a slice shares one supervisor,
// so per-class failure metering, breaker state and rollback targets are
// group-wide — a trap seen by any cell counts once, and a hot-swap promotes
// (or rolls back) for all cells atomically.

// InstallSupervisedScheduler compiles the named built-in scheduler, wraps it
// in a shared instance pool under env (hang a wabi.Chaos on env to storm the
// plugin), and installs a guard.Supervisor over it on every cell that has
// sliceID. The supervisor falls back to the native round-robin scheduler
// whenever the plugin fails or its breaker is open.
func (cg *CellGroup) InstallSupervisedScheduler(sliceID uint32, name string, policy wabi.Policy, env wabi.Env, poolMax int, gcfg guard.Config) (*guard.Supervisor, error) {
	mod, err := plugins.CompileScheduler(name)
	if err != nil {
		return nil, err
	}
	ps, err := cg.buildPool(name, mod, policy, env, poolMax)
	if err != nil {
		return nil, err
	}
	sup := guard.New(name, ps, sched.RoundRobin{}, gcfg)
	if cg.flight != nil {
		sup.SetFlightRecorder(cg.flight)
	}
	if err := cg.hotSwapAll(sliceID, sup); err != nil {
		return nil, err
	}
	if cg.sups == nil {
		cg.sups = make(map[uint32]*guard.Supervisor)
	}
	cg.sups[sliceID] = sup
	return sup, nil
}

// Supervisor returns the supervisor installed on sliceID, or nil.
func (cg *CellGroup) Supervisor(sliceID uint32) *guard.Supervisor { return cg.sups[sliceID] }

// BuildPooledCandidate resolves uploaded bytecode through the group's
// content-addressed module cache and wraps it in a pool-backed scheduler
// without installing it anywhere — the candidate half of a supervised
// hot-swap. Because the cache retains every compiled module by hash, the
// incumbent it may replace stays available as the rollback target.
func (cg *CellGroup) BuildPooledCandidate(name string, bin []byte, policy wabi.Policy, env wabi.Env, poolMax int) (*sched.PoolScheduler, error) {
	mod, err := cg.Modules.Load(bin)
	if err != nil {
		return nil, fmt.Errorf("core: cell group rejected uploaded bytecode: %w", err)
	}
	return cg.buildPool(name, mod, policy, env, poolMax)
}

// UploadSupervisedAll is the supervised multi-cell hot-swap path: the
// uploaded bytecode becomes a pooled candidate, the slice's supervisor
// shadow-validates it against recorded slot inputs, and only on pass does it
// replace the incumbent (which is retained as the rollback target while the
// candidate serves its probation). The returned report says what the shadow
// run saw either way.
func (cg *CellGroup) UploadSupervisedAll(sliceID uint32, name string, bin []byte, policy wabi.Policy, poolMax int) (*guard.ShadowReport, error) {
	sup := cg.sups[sliceID]
	if sup == nil {
		return nil, fmt.Errorf("core: slice %d has no supervisor; use UploadSchedulerAll", sliceID)
	}
	ps, err := cg.BuildPooledCandidate(name, bin, policy, wabi.Env{}, poolMax)
	if err != nil {
		return nil, err
	}
	return sup.Swap(ps)
}

// buildPool applies the group's default sandbox policy and wraps mod in a
// pool-backed scheduler. The group's PluginEnv profiler is inherited unless
// the caller's env brings its own, so supervised and candidate pools are
// profiled alongside the plain pooled ones.
func (cg *CellGroup) buildPool(name string, mod *wabi.Module, policy wabi.Policy, env wabi.Env, poolMax int) (*sched.PoolScheduler, error) {
	if policy.MaxMemoryPages == 0 {
		policy.MaxMemoryPages = 256
	}
	if policy.Fuel == 0 {
		policy.Fuel = 10_000_000
	}
	if env.Profile == nil && cg.PluginEnv.Profile != nil {
		env.Profile = cg.PluginEnv.Profile
		env.ProfileTag = cg.PluginEnv.ProfileTag
	}
	if env.Profile != nil && env.ProfileTag == "" {
		env.ProfileTag = name
	}
	pool := wabi.NewPool(mod, policy, env, poolMax)
	return sched.NewPoolScheduler(name, pool, nil)
}

// hotSwapAll swaps scheduler onto every cell that has sliceID.
func (cg *CellGroup) hotSwapAll(sliceID uint32, scheduler sched.IntraSlice) error {
	swapped := 0
	for _, g := range cg.cells {
		if _, ok := g.Slices.Slice(sliceID); !ok {
			continue
		}
		if err := g.Slices.HotSwap(sliceID, scheduler); err != nil {
			return err
		}
		swapped++
	}
	if swapped == 0 {
		return fmt.Errorf("core: no cell in the group has slice %d", sliceID)
	}
	return nil
}

// registerSupervisors exposes every installed supervisor on reg, one series
// set per supervised slice.
func (cg *CellGroup) registerSupervisors(reg *obs.Registry) {
	ids := make([]uint32, 0, len(cg.sups))
	for id := range cg.sups {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		cg.sups[id].Register(reg, obs.L("slice", strconv.FormatUint(uint64(id), 10)))
	}
}

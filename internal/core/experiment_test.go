package core

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"waran/internal/obs"
)

// TestExperimentRegistry checks that every core-owned figure self-registered
// in paper order and that lookups behave.
func TestExperimentRegistry(t *testing.T) {
	want := []string{"5a", "5b", "5c", "5d", "safety", "upload", "multicell"}
	var order []string
	for _, e := range Experiments() {
		order = append(order, e.Name())
		if e.Describe() == "" {
			t.Errorf("experiment %q has no description", e.Name())
		}
	}
	// The core experiments must appear in figure order (other packages may
	// append theirs after, so compare as a subsequence).
	i := 0
	for _, name := range order {
		if i < len(want) && name == want[i] {
			i++
		}
	}
	if i != len(want) {
		t.Fatalf("registration order %v does not contain %v in order", order, want)
	}

	if _, ok := LookupExperiment("5a"); !ok {
		t.Fatal("lookup 5a failed")
	}
	if _, ok := LookupExperiment("no-such-figure"); ok {
		t.Fatal("lookup of unknown name succeeded")
	}
	if names := ExperimentNames(); !sort.StringsAreSorted(names) {
		t.Fatalf("ExperimentNames not sorted: %v", names)
	}
}

func TestRegisterExperimentDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	RegisterExperimentFunc("5a", "dup", func(ExpConfig) (any, error) { return nil, nil })
}

// TestUploadExperimentRenders runs the Fig. 1 flow through the registry and
// checks its result renders the deployment narrative.
func TestUploadExperimentRenders(t *testing.T) {
	e, ok := LookupExperiment("upload")
	if !ok {
		t.Fatal("upload experiment not registered")
	}
	res, err := e.Run(ExpConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tr, ok := res.(TextRenderer)
	if !ok {
		t.Fatalf("upload result %T does not render as text", res)
	}
	var buf bytes.Buffer
	if err := tr.RenderText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, wantS := range []string{"Fig. 1 flow", `"plugin:pf-v2"`, "UE stayed attached"} {
		if !strings.Contains(out, wantS) {
			t.Errorf("rendered upload result missing %q:\n%s", wantS, out)
		}
	}
}

// TestRunMulticellEmbedsSnapshot checks the multicell experiment honors
// ExpConfig.Obs: the instrumented parallel run populates the registry and
// the report embeds its snapshot alongside the timing figures.
func TestRunMulticellEmbedsSnapshot(t *testing.T) {
	cfg := ExpConfig{
		Cells:       2,
		Slots:       50,
		Parallelism: 2,
		Obs:         obs.NewRegistry(),
		Trace:       obs.NewTraceRing(64),
	}
	rep, err := RunMulticell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SerialSlotsPerSec <= 0 || rep.ParallelSlotsPerSec <= 0 {
		t.Fatalf("timing figures missing: %+v", rep)
	}
	if rep.CacheHits == 0 {
		t.Fatalf("hot swap through the shared cache recorded no hits: %+v", rep)
	}
	if rep.Obs == nil {
		t.Fatal("report has no registry snapshot")
	}
	for _, key := range []string{
		`waran_slot_latency_us{cell="0"}`,
		`waran_slot_latency_us{cell="1"}`,
		`waran_cell_deadline{cell="0"}`,
		"waran_wabi_module_cache",
	} {
		if _, ok := rep.Obs[key]; !ok {
			t.Errorf("snapshot missing %q", key)
		}
	}
	if cfg.Trace.Len() == 0 {
		t.Fatal("instrumented run produced no trace events")
	}
}

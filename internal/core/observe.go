package core

import (
	"strconv"
	"sync"
	"time"

	"waran/internal/obs"
	"waran/internal/sched"
	"waran/internal/slicing"
)

// gnbObs holds one gNB's registered instruments plus the shared trace ring.
// It is created by EnableObservability and read by Step on the cell's slot
// goroutine; the lazily created per-slice counters are the only shared
// mutable state and carry their own lock.
type gnbObs struct {
	reg      *obs.Registry
	ring     *obs.TraceRing
	cell     int
	deadline time.Duration

	slotLatency *obs.Histogram
	overruns    *obs.Counter
	fallbacks   *obs.Counter
	fuel        *obs.Histogram

	mu        sync.Mutex
	prbGrants map[uint32]*obs.Counter
}

// EnableObservability registers this gNB's slot instruments on reg under
// the given cell index and streams per-slot trace events into ring (nil
// disables tracing but keeps the metrics). deadline, when positive, marks
// slots slower than it as overruns in both the counter and the trace.
// Call before the slot loop starts; instruments live for the gNB's
// lifetime.
func (g *GNB) EnableObservability(reg *obs.Registry, ring *obs.TraceRing, cell int, deadline time.Duration) {
	cellLabel := obs.L("cell", strconv.Itoa(cell))
	o := &gnbObs{
		reg:         reg,
		ring:        ring,
		cell:        cell,
		deadline:    deadline,
		slotLatency: reg.Histogram("waran_slot_latency_us", "wall time of one MAC slot in microseconds", cellLabel),
		overruns:    reg.Counter("waran_slot_overruns_total", "slots exceeding the deadline budget", cellLabel),
		fallbacks:   reg.Counter("waran_slice_fallback_slots_total", "slice-slots served by the native fallback scheduler", cellLabel),
		fuel:        reg.Histogram("waran_plugin_fuel_per_call", "fuel consumed per intra-slice plugin call", cellLabel),
		prbGrants:   make(map[uint32]*obs.Counter),
	}
	g.mu.Lock()
	g.obsv = o
	g.mu.Unlock()
}

// grantCounter returns the per-slice PRB-grant counter, creating the series
// on first sight of the slice.
func (o *gnbObs) grantCounter(sliceID uint32) *obs.Counter {
	o.mu.Lock()
	defer o.mu.Unlock()
	c, ok := o.prbGrants[sliceID]
	if !ok {
		c = o.reg.Counter("waran_sched_granted_prbs_total", "PRBs granted by intra-slice schedulers",
			obs.L("cell", strconv.Itoa(o.cell)), obs.L("slice", strconv.FormatUint(uint64(sliceID), 10)))
		o.prbGrants[sliceID] = c
	}
	return c
}

// observeSlice records one slice's outcome: PRB grants, fallback and fuel
// accounting, plus the trace entry when tracing is on.
func (o *gnbObs) observeSlice(ev *obs.SlotEvent, s *slicing.Slice, ss SliceSlot, wall time.Duration) {
	o.grantCounter(s.ID).Add(uint64(ss.GrantedPRBs))
	if ss.UsedFallback {
		o.fallbacks.Inc()
	}
	var fuelUsed int64
	if fr, ok := s.Scheduler().(sched.FuelReporter); ok && !ss.UsedFallback {
		if fuelUsed = fr.LastFuelUsed(); fuelUsed > 0 {
			o.fuel.Observe(float64(fuelUsed))
		}
	}
	if ev != nil {
		ev.Slices = append(ev.Slices, obs.SliceTrace{
			Slice:    strconv.FormatUint(uint64(s.ID), 10),
			Sched:    s.SchedulerName(),
			PRBs:     int(ss.GrantedPRBs),
			Bits:     int(ss.Bits),
			Fallback: ss.UsedFallback,
			FuelUsed: fuelUsed,
			WallUs:   wall.Microseconds(),
		})
	}
}

// finishSlot closes out one slot's accounting and publishes the trace.
func (o *gnbObs) finishSlot(ev *obs.SlotEvent, slot uint64, wall time.Duration) {
	o.slotLatency.ObserveDuration(wall)
	overrun := o.deadline > 0 && wall > o.deadline
	if overrun {
		o.overruns.Inc()
	}
	if ev != nil && o.ring != nil {
		ev.Slot = slot
		ev.Cell = o.cell
		ev.WallUs = wall.Microseconds()
		ev.DeadlineUs = o.deadline.Microseconds()
		ev.Overrun = overrun
		for _, st := range ev.Slices {
			if st.Fallback {
				ev.Fallback = true
			}
		}
		o.ring.Add(*ev)
	}
}

package core

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"waran/internal/e2"
	"waran/internal/plugins"
	"waran/internal/ran"
	"waran/internal/sched"
	"waran/internal/wabi"
	"waran/internal/wasm"
	"waran/internal/wat"
)

// populateCell loads one cell with two slices and seeded UEs. Seeds derive
// from the cell index only, so calling this twice for the same index builds
// byte-identical cells — the foundation of the determinism tests.
func populateCell(t testing.TB, g *GNB, cell int) {
	t.Helper()
	rr, err := NewPluginScheduler("rr", wabi.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	pf, err := NewPluginScheduler("pf", wabi.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Slices.AddSlice(1, "embb", 12e6, rr, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Slices.AddSlice(2, "mvno", 8e6, pf, nil); err != nil {
		t.Fatal(err)
	}
	ueID := uint32(1)
	for s := uint32(1); s <= 2; s++ {
		for k := 0; k < 3; k++ {
			seed := int64(1000*cell + 10*int(s) + k)
			ue := ran.NewUE(ueID, s, 18+2*k)
			ue.Traffic = ran.NewOnOff(6e6, 40*time.Millisecond, 20*time.Millisecond, seed)
			ue.Channel = ran.NewRandomWalkChannel(6, 15, 0.3, seed+7)
			if err := g.AttachUE(ue); err != nil {
				t.Fatal(err)
			}
			ueID++
		}
	}
}

func buildGroup(t testing.TB, cells, parallelism int) *CellGroup {
	t.Helper()
	cg, err := NewCellGroup(ran.CellConfig{}, CellGroupConfig{Cells: cells, Parallelism: parallelism})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cells; i++ {
		populateCell(t, cg.Cell(i), i)
	}
	return cg
}

// TestCellGroupSerialMatchesSingleCellLoop: parallelism 1 must be
// byte-identical to today's serial loop over standalone gNBs.
func TestCellGroupSerialMatchesSingleCellLoop(t *testing.T) {
	const cells, slots = 3, 300
	cg := buildGroup(t, cells, 1)

	standalone := make([]*GNB, cells)
	for i := range standalone {
		g, err := NewGNB(ran.CellConfig{})
		if err != nil {
			t.Fatal(err)
		}
		populateCell(t, g, i)
		standalone[i] = g
	}

	for slot := 0; slot < slots; slot++ {
		group := cg.StepAll()
		for i, g := range standalone {
			serial := g.Step()
			if !reflect.DeepEqual(serial, group[i]) {
				t.Fatalf("slot %d cell %d: group result diverged from serial loop\nserial: %+v\ngroup:  %+v",
					slot, i, serial, group[i])
			}
		}
	}
}

// TestCellGroupDeterminism is the tentpole's safety net: a 4-cell group
// stepped with parallelism 1 and parallelism NumCPU over 2000 slots must
// produce identical per-cell SlotResult sequences.
func TestCellGroupDeterminism(t *testing.T) {
	const cells = 4
	slots := 2000
	if testing.Short() {
		slots = 300
	}

	run := func(par int) [][]SlotResult {
		cg := buildGroup(t, cells, par)
		// Shared pool-backed schedulers across all cells: the maximally
		// concurrent configuration, and still deterministic because the
		// built-in plugins are pure functions of the request.
		if _, err := cg.InstallPooledScheduler(1, "rr", wabi.Policy{}, 2*cells); err != nil {
			t.Fatal(err)
		}
		if _, err := cg.InstallPooledScheduler(2, "pf", wabi.Policy{}, 2*cells); err != nil {
			t.Fatal(err)
		}
		seq := make([][]SlotResult, cells)
		for s := 0; s < slots; s++ {
			res := cg.StepAll()
			for i := range res {
				seq[i] = append(seq[i], res[i])
			}
		}
		return seq
	}

	serial := run(1)
	parallel := run(runtime.NumCPU())
	for i := 0; i < cells; i++ {
		for s := range serial[i] {
			if !reflect.DeepEqual(serial[i][s], parallel[i][s]) {
				t.Fatalf("cell %d slot %d: parallel result differs\nserial:   %+v\nparallel: %+v",
					i, s, serial[i][s], parallel[i][s])
			}
		}
	}
}

// TestCellGroupModuleCacheCompilesOnce: hot-swapping identical bytecode
// onto 64 cells — via the group path and then again per cell through the
// E2 control path — must run wasm.Compile exactly once.
func TestCellGroupModuleCacheCompilesOnce(t *testing.T) {
	const cells = 64
	cg, err := NewCellGroup(ran.CellConfig{}, CellGroupConfig{Cells: cells, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cells; i++ {
		if _, err := cg.Cell(i).Slices.AddSlice(1, "tenant", 10e6, sched.RoundRobin{}, nil); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := wat.CompileToBinary(plugins.ProportionalFairWAT)
	if err != nil {
		t.Fatal(err)
	}

	before := wasm.CompileCount()
	if _, err := cg.UploadSchedulerAll(1, "pf-v2", blob, wabi.Policy{}, 8); err != nil {
		t.Fatal(err)
	}
	// Re-upload the same bytes onto every cell individually through the
	// E2 control surface; all 64 must hit the shared cache.
	for i := 0; i < cells; i++ {
		err := cg.Cell(i).Apply(&e2.ControlRequest{
			Action: e2.ActionUploadScheduler, SliceID: 1, Text: "pf-up", Blob: blob,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := wasm.CompileCount() - before; got != 1 {
		t.Fatalf("64-cell hot-swap ran wasm.Compile %d times, want exactly 1", got)
	}
	if st := cg.Modules.Stats(); st.Misses != 1 || st.Hits != uint64(cells) {
		t.Fatalf("cache stats = %d hits / %d misses, want %d/1", st.Hits, st.Misses, cells)
	}
	for i := 0; i < cells; i++ {
		if name := cg.Cell(i).Slices.Slices()[0].SchedulerName(); name != "plugin:pf-up" {
			t.Fatalf("cell %d runs %q after upload", i, name)
		}
	}
}

// TestCellGroupWatchdogPinsSlowCell: consecutive deadline overruns must pin
// the cell to native fallback scheduling, exactly like the per-slice
// quarantine path, and ReleaseCell must lift the pin.
func TestCellGroupWatchdogPinsSlowCell(t *testing.T) {
	cg, err := NewCellGroup(ran.CellConfig{}, CellGroupConfig{
		Cells:             2,
		Parallelism:       2,
		SlotDeadline:      time.Nanosecond, // everything overruns
		FallbackOnOverrun: true,
		OverrunThreshold:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		populateCell(t, cg.Cell(i), i)
	}
	cg.RunSlots(5, nil)

	for i := 0; i < 2; i++ {
		if !cg.CellPinned(i) {
			t.Fatalf("cell %d not pinned after persistent overruns", i)
		}
		st := cg.WatchdogStats()[i]
		if st.Slots != 5 || st.Overruns != 5 {
			t.Fatalf("cell %d watchdog = %+v", i, st)
		}
	}
	// Pinned cells schedule natively: the next slot uses fallback.
	res := cg.StepAll()
	for i := 0; i < 2; i++ {
		for sliceID, ss := range res[i].PerSlice {
			if ss.BudgetPRBs > 0 && !ss.UsedFallback {
				t.Fatalf("cell %d slice %d still ran its plugin while pinned", i, sliceID)
			}
		}
	}
	cg.ReleaseCell(0)
	if cg.CellPinned(0) || cg.Cell(0).Slices.ForceFallback() {
		t.Fatal("ReleaseCell did not lift the pin")
	}
}

// TestCellGroupValidation covers constructor edges.
func TestCellGroupValidation(t *testing.T) {
	if _, err := NewCellGroup(ran.CellConfig{}, CellGroupConfig{Cells: 0}); err == nil {
		t.Fatal("0-cell group accepted")
	}
	cg, err := NewCellGroup(ran.CellConfig{}, CellGroupConfig{Cells: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cg.UploadSchedulerAll(9, "x", []byte{1, 2, 3}, wabi.Policy{}, 2); err == nil {
		t.Fatal("garbage bytecode accepted")
	}
	blob, err := wat.CompileToBinary(plugins.RoundRobinWAT)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cg.UploadSchedulerAll(9, "x", blob, wabi.Policy{}, 2); err == nil {
		t.Fatal("swap onto unknown slice accepted")
	}
}

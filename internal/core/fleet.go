package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"waran/internal/metrics"
	"waran/internal/ran"
	"waran/internal/wabi"
)

// FleetDriverConfig shapes a city-scale cell fleet.
type FleetDriverConfig struct {
	// Cells is the total cell count across the fleet (at least 1).
	Cells int
	// Shards is how many worker shards the cells are divided across; each
	// shard steps its cells serially on its own goroutine, so Shards is
	// also the fleet's slot-loop parallelism. 0 means min(GOMAXPROCS,
	// Cells).
	Shards int
	// SlotDeadline is the wall-clock budget each shard has to step all its
	// cells in one slot. 0 means the cell's slot duration (the fleet is
	// real-time only if every shard finishes its whole stripe within one
	// slot).
	SlotDeadline time.Duration
}

// MaxFleetShards bounds the fleet's worker count.
const MaxFleetShards = 1024

// Fleet steps hundreds of cells per slot by sharding them across persistent
// worker goroutines: cell i lives on shard i%Shards, each shard steps its
// stripe serially, and a per-shard deadline watchdog times the stripe
// against the slot budget — the aggregate telling an operator not "did one
// cell overrun" (CellGroup's per-cell meters still answer that) but "does
// this worker layout keep up with the slot clock".
//
// Every shard is an ordinary CellGroup, so the whole PR 1-7 surface
// (pooled schedulers, supervised swaps, observability, tracing) applies
// per shard unchanged; the fleet shares one content-addressed module cache
// across shards so a fleet-wide bytecode upload compiles exactly once.
type Fleet struct {
	cfg    FleetDriverConfig
	shards []*CellGroup
	watch  []*metrics.DeadlineMeter
	// Modules is the fleet-wide shared compiled-module cache.
	Modules *wabi.ModuleCache

	slot uint64

	startOnce sync.Once
	work      []chan uint64 // per-shard slot kick
	done      chan int      // shard completion fan-in
	stop      chan struct{}
}

// NewFleet creates a fleet of cfg.Cells identical cells divided across
// cfg.Shards worker shards. Populate cells via Cell(i)/Shard(s) before
// stepping.
func NewFleet(cell ran.CellConfig, cfg FleetDriverConfig) (*Fleet, error) {
	if cfg.Cells < 1 {
		return nil, fmt.Errorf("core: fleet needs at least 1 cell, got %d", cfg.Cells)
	}
	if cfg.Shards == 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Shards > cfg.Cells {
		cfg.Shards = cfg.Cells
	}
	if cfg.Shards < 0 || cfg.Shards > MaxFleetShards {
		return nil, fmt.Errorf("core: fleet shard count %d outside [1, %d]", cfg.Shards, MaxFleetShards)
	}
	cell = cell.WithDefaults()
	if cfg.SlotDeadline == 0 {
		cfg.SlotDeadline = cell.SlotDuration
	}
	f := &Fleet{
		cfg:     cfg,
		shards:  make([]*CellGroup, cfg.Shards),
		watch:   make([]*metrics.DeadlineMeter, cfg.Shards),
		Modules: wabi.NewModuleCache(),
	}
	for s := 0; s < cfg.Shards; s++ {
		// Cells are dealt round-robin: shard s owns cells s, s+Shards, ...
		n := (cfg.Cells - s + cfg.Shards - 1) / cfg.Shards
		cg, err := NewCellGroup(cell, CellGroupConfig{
			Cells:       n,
			Parallelism: 1, // serial stripe; parallelism is across shards
		})
		if err != nil {
			return nil, err
		}
		// One fleet-wide cache: rebind the group and its cells.
		cg.Modules = f.Modules
		for i := 0; i < cg.NumCells(); i++ {
			cg.Cell(i).Modules = f.Modules
		}
		f.shards[s] = cg
		f.watch[s] = metrics.NewDeadlineMeter(cfg.SlotDeadline)
	}
	return f, nil
}

// NumCells returns the fleet-wide cell count.
func (f *Fleet) NumCells() int { return f.cfg.Cells }

// NumShards returns the worker shard count.
func (f *Fleet) NumShards() int { return len(f.shards) }

// Shard returns worker shard s as its CellGroup (for installing schedulers,
// observability, tracing).
func (f *Fleet) Shard(s int) *CellGroup { return f.shards[s] }

// Cell returns the fleet-wide cell i (round-robin: shard i%Shards).
func (f *Fleet) Cell(i int) *GNB {
	return f.shards[i%len(f.shards)].Cell(i / len(f.shards))
}

// Slot returns the fleet slot counter (slots completed by StepAll).
func (f *Fleet) Slot() uint64 { return f.slot }

// startWorkers launches one persistent goroutine per shard; each steps its
// whole stripe when kicked and reports back through done.
func (f *Fleet) startWorkers() {
	f.work = make([]chan uint64, len(f.shards))
	f.done = make(chan int, len(f.shards))
	f.stop = make(chan struct{})
	for s := range f.shards {
		f.work[s] = make(chan uint64)
		go func(s int) {
			for {
				select {
				case <-f.stop:
					return
				case <-f.work[s]:
					start := time.Now()
					f.shards[s].StepAll()
					f.watch[s].Observe(time.Since(start))
					f.done <- s
				}
			}
		}(s)
	}
}

// StepAll advances every cell in the fleet by one slot, all shards
// concurrently, and blocks until the slowest shard finishes its stripe.
func (f *Fleet) StepAll() {
	f.startOnce.Do(f.startWorkers)
	for s := range f.work {
		f.work[s] <- f.slot
	}
	for range f.work {
		<-f.done
	}
	f.slot++
}

// Close stops the fleet's worker goroutines. The fleet must not be stepped
// afterwards.
func (f *Fleet) Close() {
	if f.stop != nil {
		close(f.stop)
	}
}

// WatchdogStats snapshots every shard's stripe-deadline accounting.
func (f *Fleet) WatchdogStats() []metrics.DeadlineStats {
	out := make([]metrics.DeadlineStats, len(f.watch))
	for s, w := range f.watch {
		out[s] = w.Stats()
	}
	return out
}

package core

import (
	"testing"
	"time"

	"waran/internal/e2"
	"waran/internal/ran"
	"waran/internal/sched"
	"waran/internal/wabi"
)

func newTestGNB(t *testing.T) *GNB {
	t.Helper()
	gnb, err := NewGNB(ran.CellConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gnb.Slices.AddSlice(1, "s1", 10e6, sched.RoundRobin{}, nil); err != nil {
		t.Fatal(err)
	}
	return gnb
}

func TestAttachDetach(t *testing.T) {
	gnb := newTestGNB(t)
	ue := ran.NewUE(1, 1, 20)
	if err := gnb.AttachUE(ue); err != nil {
		t.Fatal(err)
	}
	if err := gnb.AttachUE(ue); err == nil {
		t.Fatal("duplicate attach accepted")
	}
	if err := gnb.AttachUE(ran.NewUE(2, 99, 20)); err == nil {
		t.Fatal("attach to unknown slice accepted")
	}
	if _, ok := gnb.UE(1); !ok {
		t.Fatal("UE lookup failed")
	}
	if err := gnb.DetachUE(1); err != nil {
		t.Fatal(err)
	}
	if err := gnb.DetachUE(1); err == nil {
		t.Fatal("double detach accepted")
	}
	if len(gnb.UEs()) != 0 {
		t.Fatal("UE list not empty")
	}
}

func TestStepConservation(t *testing.T) {
	gnb := newTestGNB(t)
	if _, err := gnb.Slices.AddSlice(2, "s2", 20e6, sched.MaxThroughput{}, nil); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		ue := ran.NewUE(uint32(i), uint32(i%2+1), 16+2*i)
		ue.Traffic = ran.NewCBR(8e6)
		if err := gnb.AttachUE(ue); err != nil {
			t.Fatal(err)
		}
	}
	for slot := 0; slot < 500; slot++ {
		r := gnb.Step()
		var totalPRBs uint32
		var totalBits int64
		for _, g := range r.PerUE {
			totalPRBs += g.PRBs
			totalBits += g.Bits
		}
		if totalPRBs > uint32(gnb.Cell.PRBs) {
			t.Fatalf("slot %d: granted %d PRBs of %d", slot, totalPRBs, gnb.Cell.PRBs)
		}
		var slicePRBs uint32
		var sliceBits int64
		for _, ss := range r.PerSlice {
			slicePRBs += ss.GrantedPRBs
			sliceBits += ss.Bits
			if ss.GrantedPRBs > ss.BudgetPRBs {
				t.Fatalf("slot %d: slice exceeded its budget: %+v", slot, ss)
			}
		}
		if slicePRBs != totalPRBs || sliceBits != totalBits {
			t.Fatalf("slot %d: per-slice and per-UE accounting disagree", slot)
		}
		// Bits served per UE cannot exceed the TBS of its grant.
		for id, g := range r.PerUE {
			ue, _ := gnb.UE(id)
			if max := int64(gnb.Cell.TransportBlockBits(ue.MCS, int(g.PRBs))); g.Bits > max {
				t.Fatalf("slot %d: UE %d served %d bits > TBS %d", slot, id, g.Bits, max)
			}
		}
	}
	if gnb.Slot() != 500 {
		t.Fatalf("slot counter = %d", gnb.Slot())
	}
}

func TestStepWithNoUEs(t *testing.T) {
	gnb := newTestGNB(t)
	r := gnb.Step()
	if len(r.PerUE) != 0 {
		t.Fatalf("grants without UEs: %v", r.PerUE)
	}
}

func TestSnapshotReflectsState(t *testing.T) {
	gnb := newTestGNB(t)
	ue := ran.NewUE(4, 1, 22)
	ue.Traffic = ran.NewCBR(5e6)
	if err := gnb.AttachUE(ue); err != nil {
		t.Fatal(err)
	}
	gnb.RunSlots(300, nil)
	ind := gnb.Snapshot(3)
	if ind.Cell != 3 || ind.Slot != 300 {
		t.Fatalf("header: %+v", ind)
	}
	if len(ind.UEs) != 1 || ind.UEs[0].UEID != 4 || ind.UEs[0].SliceID != 1 {
		t.Fatalf("UEs: %+v", ind.UEs)
	}
	if len(ind.Slices) != 1 || ind.Slices[0].TargetBps != 10e6 {
		t.Fatalf("slices: %+v", ind.Slices)
	}
	// After 300 ms of 5 Mb/s offered and ample capacity, the served-rate
	// EWMA must be visibly nonzero.
	if ind.Slices[0].ServedBps < 1e6 {
		t.Fatalf("served EWMA = %v", ind.Slices[0].ServedBps)
	}
}

func TestApplyControls(t *testing.T) {
	gnb := newTestGNB(t)
	ue := ran.NewUE(1, 1, 20)
	if err := gnb.AttachUE(ue); err != nil {
		t.Fatal(err)
	}
	s, _ := gnb.Slices.Slice(1)

	if err := gnb.Apply(&e2.ControlRequest{Action: e2.ActionSetSliceTarget, SliceID: 1, Value: 25e6}); err != nil {
		t.Fatal(err)
	}
	if s.TargetRate() != 25e6 {
		t.Fatalf("target = %v", s.TargetRate())
	}
	if err := gnb.Apply(&e2.ControlRequest{Action: e2.ActionSetSliceWeight, SliceID: 1, Value: 3}); err != nil {
		t.Fatal(err)
	}
	if s.Weight() != 3 {
		t.Fatalf("weight = %v", s.Weight())
	}
	if err := gnb.Apply(&e2.ControlRequest{Action: e2.ActionSwapScheduler, SliceID: 1, Text: "pf"}); err != nil {
		t.Fatal(err)
	}
	if s.SchedulerName() != "plugin:pf" {
		t.Fatalf("scheduler = %q", s.SchedulerName())
	}
	if err := gnb.Apply(&e2.ControlRequest{Action: e2.ActionHandover, UEID: 1, Text: "cell-2"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := gnb.UE(1); ok {
		t.Fatal("UE still attached after handover")
	}

	// Rejection paths.
	bad := []*e2.ControlRequest{
		{Action: e2.ActionSetSliceTarget, SliceID: 9, Value: 1},
		{Action: e2.ActionSetSliceTarget, SliceID: 1, Value: -1},
		{Action: e2.ActionSetSliceWeight, SliceID: 1, Value: 0},
		{Action: e2.ActionSwapScheduler, SliceID: 1, Text: "nope"},
		{Action: e2.ActionHandover, UEID: 42},
		{Action: e2.ControlAction(99)},
	}
	for i, c := range bad {
		if err := gnb.Apply(c); err == nil {
			t.Errorf("bad control %d accepted: %+v", i, c)
		}
	}
}

func TestPluginBackedGNBMatchesNative(t *testing.T) {
	// The same scenario executed with native Go schedulers and with the
	// Wasm plugins must yield identical served-bit totals (the plugins are
	// decision-equivalent).
	build := func(usePlugin bool) int64 {
		gnb, err := NewGNB(ran.CellConfig{})
		if err != nil {
			t.Fatal(err)
		}
		var s sched.IntraSlice = sched.ProportionalFair{}
		if usePlugin {
			ps, err := NewPluginScheduler("pf", wabi.Policy{})
			if err != nil {
				t.Fatal(err)
			}
			s = ps
		}
		if _, err := gnb.Slices.AddSlice(1, "s", 20e6, s, nil); err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 3; i++ {
			ue := ran.NewUE(uint32(i), 1, 16+4*i)
			ue.Traffic = ran.NewCBR(9e6)
			if err := gnb.AttachUE(ue); err != nil {
				t.Fatal(err)
			}
		}
		var total int64
		gnb.RunSlots(1000, func(r SlotResult) {
			for _, g := range r.PerUE {
				total += g.Bits
			}
		})
		return total
	}
	native := build(false)
	plugin := build(true)
	if native != plugin {
		t.Fatalf("plugin-backed gNB served %d bits, native %d", plugin, native)
	}
	if native == 0 {
		t.Fatal("scenario served nothing")
	}
}

func TestSlotsForDuration(t *testing.T) {
	cell := ran.CellConfig{}.WithDefaults()
	if got := SlotsForDuration(cell, 2*time.Second); got != 2000 {
		t.Fatalf("slots = %d", got)
	}
}

func TestHARQReducesGoodputUnderSaturation(t *testing.T) {
	run := func(withHARQ bool) int64 {
		gnb, err := NewGNB(ran.CellConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := gnb.Slices.AddSlice(1, "s", 0, sched.MaxThroughput{}, nil); err != nil {
			t.Fatal(err)
		}
		ue := ran.NewUE(1, 1, 24)
		ue.Traffic = &ran.FullBuffer{}
		if withHARQ {
			ue.HARQ = ran.NewHARQ(7)
		}
		if err := gnb.AttachUE(ue); err != nil {
			t.Fatal(err)
		}
		gnb.RunSlots(5000, nil)
		return ue.DeliveredBits
	}
	clean := run(false)
	lossy := run(true)
	ratio := float64(lossy) / float64(clean)
	// 10% BLER under saturation: goodput ~90% of the clean link.
	if ratio < 0.85 || ratio > 0.95 {
		t.Fatalf("HARQ goodput ratio = %.3f, want ~0.9", ratio)
	}
}

func TestSliceMaxUEsEnforced(t *testing.T) {
	gnb := newTestGNB(t)
	s, _ := gnb.Slices.Slice(1)
	s.MaxUEs = 2
	for i := 1; i <= 2; i++ {
		if err := gnb.AttachUE(ran.NewUE(uint32(i), 1, 20)); err != nil {
			t.Fatal(err)
		}
	}
	if err := gnb.AttachUE(ran.NewUE(3, 1, 20)); err == nil {
		t.Fatal("attach beyond MaxUEs accepted")
	}
	// Detaching frees a seat.
	if err := gnb.DetachUE(1); err != nil {
		t.Fatal(err)
	}
	if err := gnb.AttachUE(ran.NewUE(3, 1, 20)); err != nil {
		t.Fatalf("seat not released: %v", err)
	}
}

package core

import (
	"encoding/json"
	"testing"
	"time"

	"waran/internal/guard"
	"waran/internal/obs"
)

// TestPluginFaultsE2E drives the full supervisor lifecycle end to end on a
// 4-cell group with one hostile plugin: the breaker must open and quarantine
// the slice onto its native fallback, ≥1000 slots must then run without a
// single missed deadline, a healthy candidate must hot-swap in through
// shadow validation, a sleeper candidate must be rolled back inside its
// probation window, and the obs snapshot's per-class failure counters must
// match the injected fault schedule exactly.
func TestPluginFaultsE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-thousand-slot chaos run")
	}
	reg := obs.NewRegistry()
	rep, err := RunPluginFaults(ExpConfig{
		Obs: reg,
		// Every injected fault fails fast (no stalls), so after the breaker
		// opens a missed deadline could only come from the supervisor path
		// itself. The budget is generous against shared-machine jitter; the
		// CLI run keeps the paper's 1 ms default.
		SlotDeadline: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Containment: the breaker opens within a handful of slots (4 hostile
	// calls per slot, MinSamples 8), and from that point on the group never
	// misses a deadline again.
	if rep.SlotsToOpen > 10 {
		t.Errorf("breaker took %d slots to open, want <= 10", rep.SlotsToOpen)
	}
	if rep.SlotsPostOpen < 1000 {
		t.Errorf("only %d slots ran after the breaker opened, want >= 1000", rep.SlotsPostOpen)
	}
	if rep.OverrunsPostOpen != 0 {
		t.Errorf("%d deadline overruns after the breaker opened, want 0", rep.OverrunsPostOpen)
	}

	// Degraded-but-alive: quarantined slots were served by the native
	// fallback, not dropped.
	if rep.Supervisor.FallbackSlots == 0 {
		t.Error("no slots fell back to the native scheduler during quarantine")
	}

	// Lifecycle: recovery candidate and sleeper both pass shadow validation
	// (2 promotions), the sleeper is rolled back once, and the group ends on
	// the last-known-good recovery scheduler with the breaker closed.
	if rep.RecoveryShadow == nil || !rep.RecoveryShadow.Promoted {
		t.Fatalf("recovery candidate not promoted: %+v", rep.RecoveryShadow)
	}
	if rep.LiarShadow == nil || !rep.LiarShadow.Promoted {
		t.Fatalf("sleeper candidate should pass shadow validation: %+v", rep.LiarShadow)
	}
	s := rep.Supervisor
	if s.Promotions != 2 || s.Rollbacks != 1 || s.ShadowPass != 2 || s.ShadowFail != 0 {
		t.Errorf("lifecycle counters promotions=%d rollbacks=%d shadowPass=%d shadowFail=%d, want 2/1/2/0",
			s.Promotions, s.Rollbacks, s.ShadowPass, s.ShadowFail)
	}
	if rep.ActiveScheduler != "pool:pf-recovery" {
		t.Errorf("active scheduler = %q, want pool:pf-recovery (rollback target)", rep.ActiveScheduler)
	}
	if s.Breaker.State != "closed" {
		t.Errorf("breaker ended %q, want closed", s.Breaker.State)
	}

	// Ledger: every injected fault was classified exactly once, nothing was
	// double-counted across the 4 concurrent cells, and nothing was lost.
	if !rep.FaultClassesMatch {
		t.Errorf("breaker per-class counters diverge from the chaos schedule: breaker=%v hostile=%+v liar=%+v",
			s.Breaker.FailuresByClass, rep.HostileChaos, rep.LiarChaos)
	}

	// The same counters must surface in the obs snapshot under the hostile
	// slice's guard series.
	raw, ok := rep.Obs[`waran_guard{slice="1"}`]
	if !ok {
		t.Fatalf("obs snapshot lacks the hostile slice's guard series; keys: %d", len(rep.Obs))
	}
	b, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	var snap guard.SupervisorStats
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatalf("guard series does not decode as SupervisorStats: %v", err)
	}
	if snap.Promotions != s.Promotions || snap.Rollbacks != s.Rollbacks {
		t.Errorf("obs snapshot promotions=%d rollbacks=%d, want %d/%d",
			snap.Promotions, snap.Rollbacks, s.Promotions, s.Rollbacks)
	}
	wantByClass := map[string]uint64{
		"trap":             rep.HostileChaos.Traps + rep.LiarChaos.Traps,
		"fuel-exhausted":   rep.HostileChaos.FuelThefts + rep.LiarChaos.FuelThefts,
		"bad-output":       rep.HostileChaos.Corruptions + rep.LiarChaos.Corruptions,
		"deadline-overrun": rep.HostileChaos.Stalls + rep.LiarChaos.Stalls,
	}
	for class, want := range wantByClass {
		if got := snap.Breaker.FailuresByClass[class]; got != want {
			t.Errorf("obs failures_by_class[%s] = %d, want %d (injected)", class, got, want)
		}
	}
}

// TestPluginFaultsDeterministicLedger locks in that two runs with the same
// seed inject byte-identical fault schedules and the breaker meters them
// identically — the chaos PRNG, the breaker clock and the slot engine are
// all deterministic.
func TestPluginFaultsDeterministicLedger(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-thousand-slot chaos run")
	}
	run := func() *PluginFaultsResult {
		rep, err := RunPluginFaults(ExpConfig{Seed: 11, SlotDeadline: 250 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.HostileChaos != b.HostileChaos {
		t.Errorf("hostile chaos schedules diverge: %+v vs %+v", a.HostileChaos, b.HostileChaos)
	}
	if a.LiarChaos != b.LiarChaos {
		t.Errorf("liar chaos schedules diverge: %+v vs %+v", a.LiarChaos, b.LiarChaos)
	}
	if !a.FaultClassesMatch || !b.FaultClassesMatch {
		t.Error("ledger check failed on a seeded run")
	}
}

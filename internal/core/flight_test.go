package core

import (
	"testing"
	"time"

	"waran/internal/obs/flight"
	"waran/internal/ran"
	"waran/internal/sched"
)

// flightTestGroup builds a minimal group: one cell, one native-scheduled
// slice, no UEs — the slot path with nothing anomalous to journal.
func flightTestGroup(t testing.TB, cfg CellGroupConfig) *CellGroup {
	t.Helper()
	if cfg.Cells == 0 {
		cfg.Cells = 1
	}
	cg, err := NewCellGroup(ran.CellConfig{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cg.Cell(0).Slices.AddSlice(1, "tenant", 10e6, sched.RoundRobin{}, nil); err != nil {
		t.Fatal(err)
	}
	return cg
}

// TestDisabledFlightRecorderAddsZeroAllocs pins the nil-is-off contract on
// the hot slot path: a group with a nil recorder attached allocates exactly
// as much per slot as one the recorder wiring never touched. The journal
// sites are a pointer compare when disabled — cellgroup.go relies on this
// test by name.
func TestDisabledFlightRecorderAddsZeroAllocs(t *testing.T) {
	base := flightTestGroup(t, CellGroupConfig{})
	wired := flightTestGroup(t, CellGroupConfig{})
	wired.SetFlightRecorder(nil)
	for i := 0; i < 50; i++ { // warm both groups past first-slot setup
		base.StepAll()
		wired.StepAll()
	}
	baseAllocs := testing.AllocsPerRun(200, func() { base.StepAll() })
	wiredAllocs := testing.AllocsPerRun(200, func() { wired.StepAll() })
	if wiredAllocs > baseAllocs {
		t.Fatalf("nil flight recorder adds allocs to the slot path: %.1f/slot wired vs %.1f/slot bare",
			wiredAllocs, baseAllocs)
	}
}

// TestCellGroupJournalsMissAndPin drives every slot past an impossible
// deadline and checks the gNB plane journals both edges: the per-slot
// deadline miss and the fallback pin once the overrun streak crosses the
// threshold.
func TestCellGroupJournalsMissAndPin(t *testing.T) {
	cg := flightTestGroup(t, CellGroupConfig{
		SlotDeadline:      time.Nanosecond, // everything overruns
		FallbackOnOverrun: true,
		OverrunThreshold:  2,
	})
	rec := flight.NewRecorder(64)
	cg.SetFlightRecorder(rec)
	cg.RunSlots(5, nil)

	if n := rec.Count(flight.EvSlotDeadlineMiss); n != 5 {
		t.Fatalf("slot deadline misses journaled = %d, want 5", n)
	}
	if n := rec.Count(flight.EvFallbackPin); n != 1 {
		t.Fatalf("fallback pins journaled = %d, want 1", n)
	}
	for _, ev := range rec.Tail(16) {
		if ev.Plane != flight.PlaneGNB {
			t.Fatalf("event %v journaled on plane %v, want gnb", ev.Class, ev.Plane)
		}
	}
	// Releasing journals the release; re-pinning journals a fresh pin.
	cg.ReleaseCell(0)
	if n := rec.Count(flight.EvFallbackRelease); n != 1 {
		t.Fatalf("fallback releases journaled = %d, want 1", n)
	}
	cg.RunSlots(2, nil)
	if n := rec.Count(flight.EvFallbackPin); n != 2 {
		t.Fatalf("fallback pins after release+re-pin = %d, want 2", n)
	}
}

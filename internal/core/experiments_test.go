package core

import (
	"testing"
	"time"
)

// The shape tests assert the qualitative results of the paper's Fig. 5
// hold in this reproduction: who wins, by roughly what factor, and where
// behaviour changes. Durations are shortened relative to the paper's runs
// but long enough for steady state.

func TestFig5aShapeTargetsMet(t *testing.T) {
	res, err := RunFig5a(nil, 4*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MVNOs) != 3 {
		t.Fatalf("want 3 MVNOs, got %d", len(res.MVNOs))
	}
	for _, m := range res.MVNOs {
		ratio := m.MeanBps / m.TargetBps
		if ratio < 0.9 || ratio > 1.5 {
			t.Errorf("%s (%s): achieved %.2f Mb/s vs target %.2f Mb/s (ratio %.2f)",
				m.Spec.Name, m.Spec.Scheduler, m.MeanBps/1e6, m.TargetBps/1e6, ratio)
		}
	}
	// Ordering: MVNO-3 (15 Mb/s) > MVNO-2 (12 Mb/s) > MVNO-1 (3 Mb/s).
	if !(res.MVNOs[2].MeanBps > res.MVNOs[1].MeanBps && res.MVNOs[1].MeanBps > res.MVNOs[0].MeanBps) {
		t.Errorf("rate ordering violated: %v / %v / %v",
			res.MVNOs[0].MeanBps, res.MVNOs[1].MeanBps, res.MVNOs[2].MeanBps)
	}
}

func TestFig5bShapeLiveSwap(t *testing.T) {
	res, err := RunFig5b(9*time.Second, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Swaps != 2 {
		t.Fatalf("want 2 hot swaps, got %d", res.Swaps)
	}
	if res.UEsDetached != 0 {
		t.Fatalf("%d UEs detached during swap; live swap must keep them attached", res.UEsDetached)
	}

	// Mean rate per UE within a phase window.
	mean := func(u Fig5bUESeries, from, to time.Duration) float64 {
		var s float64
		n := 0
		for _, p := range u.Series {
			if p.Time > from && p.Time <= to {
				s += p.Bps
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return s / float64(n)
	}
	third := res.Duration / 3
	ue20, ue24, ue28 := res.UEs[0], res.UEs[1], res.UEs[2]

	// Phase 1 (MT): best-channel UE (MCS 28) reaches ~22 Mb/s target; the
	// middle UE picks up leftovers; the worst is essentially starved.
	p1lo, p1hi := 1*time.Second, third
	if m := mean(ue28, p1lo, p1hi); m < 20e6 {
		t.Errorf("MT phase: MCS-28 UE only %.1f Mb/s, want ~22", m/1e6)
	}
	m24 := mean(ue24, p1lo, p1hi)
	if m24 < 2e6 || m24 > 21e6 {
		t.Errorf("MT phase: MCS-24 UE %.1f Mb/s, want leftovers between 2 and 21", m24/1e6)
	}
	if m := mean(ue20, p1lo, p1hi); m > 2e6 {
		t.Errorf("MT phase: MCS-20 UE got %.1f Mb/s, should be mostly unscheduled", m/1e6)
	}

	// Phase 2 (PF, large time constant): the starved MCS-20 UE is
	// prioritized right after the swap.
	pfStart := third
	if m20, m28 := mean(ue20, pfStart, pfStart+2*time.Second), mean(ue28, pfStart, pfStart+2*time.Second); m20 <= m28 {
		t.Errorf("PF transient: starved MCS-20 UE (%.1f Mb/s) should outrank MCS-28 UE (%.1f Mb/s)", m20/1e6, m28/1e6)
	}

	// Phase 3 (RR): equal PRB shares => rates ordered by MCS but within ~2x.
	p3lo, p3hi := 2*third+time.Second, res.Duration
	m20, m24r, m28r := mean(ue20, p3lo, p3hi), mean(ue24, p3lo, p3hi), mean(ue28, p3lo, p3hi)
	if !(m28r >= m24r && m24r >= m20) {
		t.Errorf("RR phase: rates should order by MCS: %.1f / %.1f / %.1f", m20/1e6, m24r/1e6, m28r/1e6)
	}
	if m20 <= 0 || m28r/m20 > 2.5 {
		t.Errorf("RR phase: shares too skewed: MCS-20 %.1f vs MCS-28 %.1f Mb/s", m20/1e6, m28r/1e6)
	}
}

func TestFig5cShapeFlatVsLinear(t *testing.T) {
	res, err := RunFig5c(20*time.Second, 64) // 4 MiB cap for speed
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 10 {
		t.Fatalf("too few samples: %d", len(res.Points))
	}
	last := res.Points[len(res.Points)-1]
	// Plugin memory is capped.
	if last.PluginBytes > res.CapBytes {
		t.Errorf("plugin memory %d exceeds cap %d", last.PluginBytes, res.CapBytes)
	}
	// Native leak is linear: final >> cap.
	if last.NativeBytes < 4*res.CapBytes {
		t.Errorf("native leak %d should dwarf the %d cap", last.NativeBytes, res.CapBytes)
	}
	// Plugin memory stabilizes: second half flat.
	mid := res.Points[len(res.Points)/2]
	if last.PluginBytes != mid.PluginBytes {
		t.Errorf("plugin memory still growing in second half: %d -> %d", mid.PluginBytes, last.PluginBytes)
	}
}

func TestFig5dShapeUnderDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	if raceEnabled {
		t.Skip("race detector inflates wall-clock timings ~10x")
	}
	// Wall-clock P99 under `go test ./...` includes contention from other
	// packages' tests running in parallel; an OS preemption of a few ms
	// lands in some cell's P99 on almost every attempt. The claim under
	// test is about the plugin path, so take each cell's best (minimum)
	// quantiles across attempts — a cell only passes if the path itself
	// can meet the deadline.
	var res *Fig5dResult
	for attempt := 0; attempt < 3; attempt++ {
		attemptRes, err := RunFig5d(nil, []int{1, 10, 20}, 500)
		if err != nil {
			t.Fatal(err)
		}
		if res == nil {
			res = attemptRes
			continue
		}
		for i := range res.Cells {
			if attemptRes.Cells[i].P99us < res.Cells[i].P99us {
				res.Cells[i].P99us = attemptRes.Cells[i].P99us
			}
			if attemptRes.Cells[i].P50us < res.Cells[i].P50us {
				res.Cells[i].P50us = attemptRes.Cells[i].P50us
			}
		}
		worst := 0.0
		for _, c := range res.Cells {
			if c.P99us > worst {
				worst = c.P99us
			}
		}
		if worst < res.SlotDeadlineUs {
			break
		}
	}
	if len(res.Cells) != 9 {
		t.Fatalf("want 9 cells, got %d", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.P99us >= res.SlotDeadlineUs {
			t.Errorf("%s/%d UEs: P99 %.0f us exceeds the %v us slot", c.Scheduler, c.NumUEs, c.P99us, res.SlotDeadlineUs)
		}
		if c.P50us <= 0 {
			t.Errorf("%s/%d UEs: implausible P50 %.3f us", c.Scheduler, c.NumUEs, c.P50us)
		}
	}
}

func TestSafetyMatrixAllContained(t *testing.T) {
	rows, err := RunSafetyMatrix()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("want 5 faults, got %d", len(rows))
	}
	for _, r := range rows {
		if !r.HostSurvived {
			t.Errorf("%s: host did not survive", r.Fault)
		}
		if !r.SliceRescued {
			t.Errorf("%s: slice was not rescued by the fallback scheduler", r.Fault)
		}
		if r.TrapCode == "" {
			t.Errorf("%s: no trap recorded", r.Fault)
		}
	}
}

package core

import (
	"testing"

	"waran/internal/e2"
	"waran/internal/obs/trace"
	"waran/internal/ran"
	"waran/internal/sched"
)

func tracedTestGNB(t *testing.T) (*GNB, *trace.Tracer) {
	t.Helper()
	gnb := newTestGNB(t)
	ue := ran.NewUE(1, 1, 20)
	ue.Traffic = ran.NewCBR(5e6)
	if err := gnb.AttachUE(ue); err != nil {
		t.Fatal(err)
	}
	tr := trace.NewTracer(64)
	gnb.EnableTracing(tr, 3)
	return gnb, tr
}

func TestApplyTracedRecordsApplyAndSlotEffect(t *testing.T) {
	gnb, tr := tracedTestGNB(t)
	ctx := trace.NewContext()
	ctrl := &e2.ControlRequest{Action: e2.ActionSetSliceTarget, SliceID: 1, Value: 7e6}
	if err := gnb.ApplyTraced(ctrl, ctx); err != nil {
		t.Fatal(err)
	}
	gnb.Step() // closes the armed slot.effect span

	byName := map[string]*trace.Span{}
	for _, sp := range tr.Snapshot() {
		byName[sp.Name] = sp
	}
	apply, ok := byName[trace.SpanGNBApply]
	if !ok {
		t.Fatal("no gnb.apply span recorded")
	}
	if apply.TraceID != ctx.TraceID || apply.Parent != ctx.SpanID || apply.Cell != 3 {
		t.Fatalf("apply span miswired: %+v (ctx %+v)", apply, ctx)
	}
	effect, ok := byName[trace.SpanSlotEffect]
	if !ok {
		t.Fatal("no slot.effect span recorded")
	}
	if effect.TraceID != ctx.TraceID || effect.Parent != apply.SpanID {
		t.Fatalf("slot.effect not parented to gnb.apply: %+v", effect)
	}
	if effect.DurNs <= 0 {
		t.Fatalf("slot.effect duration %d", effect.DurNs)
	}

	// A second step must not re-record the effect (one decision, one span).
	gnb.Step()
	n := 0
	for _, sp := range tr.Snapshot() {
		if sp.Name == trace.SpanSlotEffect {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("slot.effect recorded %d times, want 1", n)
	}
}

func TestApplyTracedFailureSkipsSlotEffect(t *testing.T) {
	gnb, tr := tracedTestGNB(t)
	ctrl := &e2.ControlRequest{Action: e2.ActionSetSliceTarget, SliceID: 99, Value: 1}
	if err := gnb.ApplyTraced(ctrl, trace.NewContext()); err == nil {
		t.Fatal("unknown slice accepted")
	}
	gnb.Step()
	for _, sp := range tr.Snapshot() {
		if sp.Name == trace.SpanSlotEffect {
			t.Fatal("failed apply armed a slot.effect span")
		}
		if sp.Name == trace.SpanGNBApply && sp.Err == "" {
			t.Fatal("failed apply span has no error")
		}
	}
}

func TestApplyTracedWithoutTracerFallsBack(t *testing.T) {
	gnb := newTestGNB(t)
	ctrl := &e2.ControlRequest{Action: e2.ActionSetSliceTarget, SliceID: 1, Value: 7e6}
	if err := gnb.ApplyTraced(ctrl, trace.NewContext()); err != nil {
		t.Fatal(err)
	}
	// Disabling after enabling must also clear any armed span.
	gnb.EnableTracing(trace.NewTracer(8), 0)
	if err := gnb.ApplyTraced(ctrl, trace.NewContext()); err != nil {
		t.Fatal(err)
	}
	gnb.EnableTracing(nil, 0)
	gnb.Step()
}

// BenchmarkGNBStepTracing quantifies the slot hot path with the tracing
// layer off versus armed: the off path's cost is one nil check in Step and
// must not add allocations over a gNB that never saw a tracer.
func BenchmarkGNBStepTracing(b *testing.B) {
	build := func(b *testing.B, tr *trace.Tracer) *GNB {
		b.Helper()
		gnb, err := NewGNB(ran.CellConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := gnb.Slices.AddSlice(1, "s1", 10e6, sched.RoundRobin{}, nil); err != nil {
			b.Fatal(err)
		}
		ue := ran.NewUE(1, 1, 20)
		ue.Traffic = ran.NewCBR(5e6)
		if err := gnb.AttachUE(ue); err != nil {
			b.Fatal(err)
		}
		if tr != nil {
			gnb.EnableTracing(tr, 0)
		}
		return gnb
	}
	b.Run("off", func(b *testing.B) {
		gnb := build(b, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			gnb.Step()
		}
	})
	b.Run("on", func(b *testing.B) {
		gnb := build(b, trace.NewTracer(1024))
		ctx := trace.NewContext()
		ctrl := &e2.ControlRequest{Action: e2.ActionSetSliceTarget, SliceID: 1, Value: 7e6}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := gnb.ApplyTraced(ctrl, ctx); err != nil {
				b.Fatal(err)
			}
			gnb.Step()
		}
	})
}

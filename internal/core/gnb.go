// Package core is WA-RAN's top level: it wires the Wasm plugin runtime, the
// two-level slice scheduler, and the RAN substrate into a runnable gNB, and
// provides the experiment harness that regenerates every figure of the
// paper's evaluation (Fig. 5a-5d and the §5D memory-safety matrix).
package core

import (
	"fmt"
	"sync"
	"time"

	"waran/internal/obs"
	"waran/internal/obs/trace"
	"waran/internal/plugins"
	"waran/internal/ran"
	"waran/internal/sched"
	"waran/internal/slicing"
	"waran/internal/wabi"
)

// GNB is a slot-clocked base station MAC with WA-RAN slicing: per slot it
// runs the inter-slice scheduler, consults each slice's (possibly
// plugin-hosted) intra-slice scheduler, and applies the grants to UE queues.
type GNB struct {
	Cell   ran.CellConfig
	Slices *slicing.Manager
	// Inter divides PRBs among slices; defaults to sched.TargetRate.
	Inter sched.InterSlice
	// PFTimeConstant is the EWMA horizon (slots) for long-term throughput.
	PFTimeConstant float64
	// Modules, when set, content-addresses uploaded plugin bytecode so
	// repeated uploads of identical bytes compile once. Cells created via
	// NewCellGroup share one cache; a standalone gNB gets its own.
	Modules *wabi.ModuleCache

	mu        sync.Mutex
	ues       []*ran.UE
	byID      map[uint32]*ran.UE
	fleet     *ran.UEFleet       // aggregate population, nil unless AttachFleet
	fleetWin  []*ran.UE          // fleet UEs materialized for the current slot
	fleetByID map[uint32]*ran.UE // grant lookup for the materialized window
	slot      uint64
	sliceRate map[uint32]float64 // served-rate EWMA per slice, for E2 KPM
	obsv      *gnbObs            // set by EnableObservability, nil otherwise

	// Causal tracing (EnableTracing). effect is the armed slot.effect span:
	// set when a traced control is applied, closed at the end of the next
	// slot — the first one the reconfigured scheduler serves. Both Apply and
	// Step hold mu, so no extra synchronization is needed, and the disabled
	// path costs Step a single nil check.
	tracer    *trace.Tracer
	traceCell uint32
	effect    *effectArm
}

// effectArm is a pending slot.effect span: the decision it closes and when
// that decision was applied.
type effectArm struct {
	ctx     trace.Context
	startNs int64
}

// sliceRateAlpha is the EWMA weight for per-slice served rate reporting.
const sliceRateAlpha = 1.0 / 200

// NewGNB creates a gNB for the given cell (defaults applied).
func NewGNB(cell ran.CellConfig) (*GNB, error) {
	cell = cell.WithDefaults()
	if err := cell.Validate(); err != nil {
		return nil, err
	}
	return &GNB{
		Cell:      cell,
		Slices:    slicing.NewManager(),
		Inter:     sched.TargetRate{},
		Modules:   wabi.NewModuleCache(),
		byID:      make(map[uint32]*ran.UE),
		sliceRate: make(map[uint32]float64),
	}, nil
}

// AttachUE admits a UE to the cell. The UE's SliceID must name a registered
// slice (the admission-control role the paper delegates to the AMF).
func (g *GNB) AttachUE(ue *ran.UE) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	s, ok := g.Slices.Slice(ue.SliceID)
	if !ok {
		return fmt.Errorf("core: UE %d subscribes to unknown slice %d", ue.ID, ue.SliceID)
	}
	if _, dup := g.byID[ue.ID]; dup {
		return fmt.Errorf("core: UE %d already attached", ue.ID)
	}
	if s.MaxUEs > 0 {
		attached := 0
		for _, u := range g.ues {
			if u.SliceID == ue.SliceID {
				attached++
			}
		}
		if attached >= s.MaxUEs {
			return fmt.Errorf("core: slice %d is full (%d UEs)", ue.SliceID, s.MaxUEs)
		}
	}
	g.ues = append(g.ues, ue)
	g.byID[ue.ID] = ue
	return nil
}

// AttachFleet admits an aggregate modeled population (ran.UEFleet) to the
// cell. Every slice the fleet subscribes to must already be registered, like
// AttachUE's admission check. Each slot, the fleet's rotating active window
// competes for PRBs alongside explicitly attached UEs; the rest of the
// population accrues traffic lazily. One fleet per cell.
func (g *GNB) AttachFleet(f *ran.UEFleet) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.fleet != nil {
		return fmt.Errorf("core: cell already has a fleet of %d UEs", g.fleet.Size())
	}
	for _, id := range f.SliceIDs() {
		if _, ok := g.Slices.Slice(id); !ok {
			return fmt.Errorf("core: fleet subscribes to unknown slice %d", id)
		}
	}
	g.fleet = f
	g.fleetByID = make(map[uint32]*ran.UE, f.ActiveK())
	return nil
}

// Fleet returns the attached aggregate population, if any.
func (g *GNB) Fleet() *ran.UEFleet {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.fleet
}

// DetachUE removes a UE from the cell.
func (g *GNB) DetachUE(id uint32) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.detachLocked(id)
}

func (g *GNB) detachLocked(id uint32) error {
	if _, ok := g.byID[id]; !ok {
		return fmt.Errorf("core: UE %d not attached", id)
	}
	delete(g.byID, id)
	for i, u := range g.ues {
		if u.ID == id {
			g.ues = append(g.ues[:i], g.ues[i+1:]...)
			break
		}
	}
	return nil
}

// UEs returns a snapshot of the attached UEs in attach order.
func (g *GNB) UEs() []*ran.UE {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]*ran.UE(nil), g.ues...)
}

// UE looks up an attached UE.
func (g *GNB) UE(id uint32) (*ran.UE, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	u, ok := g.byID[id]
	return u, ok
}

// Slot returns the current slot counter.
func (g *GNB) Slot() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.slot
}

// UEGrant is the outcome of one slot for one UE.
type UEGrant struct {
	PRBs uint32
	Bits int64
}

// SliceSlot aggregates one slot's outcome per slice.
type SliceSlot struct {
	BudgetPRBs   uint32
	GrantedPRBs  uint32
	Bits         int64
	UsedFallback bool
}

// SlotResult reports everything that happened in one slot.
type SlotResult struct {
	Slot     uint64
	PerUE    map[uint32]UEGrant
	PerSlice map[uint32]SliceSlot
}

// Step advances the gNB by one slot: traffic and channel evolution,
// inter-slice division, intra-slice decisions (with fault protection), and
// grant application.
func (g *GNB) Step() SlotResult {
	g.mu.Lock()
	defer g.mu.Unlock()
	res := SlotResult{
		Slot:     g.slot,
		PerUE:    make(map[uint32]UEGrant, len(g.ues)+len(g.fleetWin)),
		PerSlice: make(map[uint32]SliceSlot),
	}

	o := g.obsv
	var slotStart time.Time
	var ev *obs.SlotEvent
	if o != nil {
		slotStart = time.Now()
		if o.ring != nil {
			ev = &obs.SlotEvent{}
		}
	}

	// 1. Evolve traffic and channels; materialize this slot's fleet window
	// (its arrivals since last touch are accrued lazily inside Advance).
	for _, u := range g.ues {
		u.StepSlot(g.slot, g.Cell.SlotDuration)
	}
	if g.fleet != nil {
		g.fleetWin = g.fleet.Advance(g.slot, g.Cell.SlotDuration)
		clear(g.fleetByID)
		for _, u := range g.fleetWin {
			g.fleetByID[u.ID] = u
		}
	}

	// 2. Build per-slice UE views and demands.
	slices := g.Slices.Slices()
	ueViews := make(map[uint32][]sched.UEInfo, len(slices))
	demands := make([]sched.SliceDemand, 0, len(slices))
	for _, s := range slices {
		var view []sched.UEInfo
		var demandPRBs uint64
		for _, pool := range [2][]*ran.UE{g.ues, g.fleetWin} {
			for _, u := range pool {
				if u.SliceID != s.ID {
					continue
				}
				per := uint32(g.Cell.BitsPerPRB(u.MCS))
				info := sched.UEInfo{
					ID:          u.ID,
					MCS:         int32(u.MCS),
					BitsPerPRB:  per,
					BufferBytes: u.BufferBytes(),
					AvgTputBps:  u.AvgTputBps,
				}
				view = append(view, info)
				if per > 0 && u.BufferBits > 0 {
					demandPRBs += (uint64(u.BufferBits) + uint64(per) - 1) / uint64(per)
				}
			}
		}
		ueViews[s.ID] = view
		d := sched.SliceDemand{
			SliceID:       s.ID,
			TargetRateBps: s.TargetRate(),
			AchievedBps:   g.sliceRate[s.ID],
			Weight:        s.Weight(),
		}
		if demandPRBs > uint64(g.Cell.PRBs) {
			demandPRBs = uint64(g.Cell.PRBs)
		}
		d.DemandPRBs = uint32(demandPRBs)
		demands = append(demands, d)
	}

	// 3. Inter-slice division.
	inter := g.Inter
	if inter == nil {
		inter = sched.TargetRate{}
	}
	shares := inter.Divide(g.slot, uint32(g.Cell.PRBs), demands)

	// 4. Intra-slice decisions and grant application.
	for _, s := range slices {
		budget := shares[s.ID]
		ss := SliceSlot{BudgetPRBs: budget}
		if budget == 0 || len(ueViews[s.ID]) == 0 {
			res.PerSlice[s.ID] = ss
			continue
		}
		req := &sched.Request{
			SliceID:   s.ID,
			Slot:      g.slot,
			PRBBudget: budget,
			UEs:       ueViews[s.ID],
		}
		before := s.Stats().FallbackSlots
		var schedStart time.Time
		if o != nil {
			schedStart = time.Now()
		}
		resp, err := g.Slices.Schedule(s, req)
		if err != nil {
			// Both plugin and fallback failed; skip the slice this slot.
			res.PerSlice[s.ID] = ss
			continue
		}
		ss.UsedFallback = s.Stats().FallbackSlots > before
		for _, a := range resp.Allocs {
			u, ok := g.byID[a.UEID]
			if !ok {
				u, ok = g.fleetByID[a.UEID]
			}
			if !ok {
				continue
			}
			tbs := int64(g.Cell.TransportBlockBits(u.MCS, int(a.PRBs)))
			served := tbs
			if served > u.BufferBits {
				served = u.BufferBits
			}
			if u.HARQ != nil {
				// A failed transport block delivers nothing this slot; the
				// data stays queued and is rescheduled (retransmission).
				served = u.HARQ.Transmit(served, u.MCS, u.MCS)
				if served > 0 {
					u.HARQ.AckRetx(served)
				}
			}
			u.RecordService(served, g.Cell.SlotDuration, g.PFTimeConstant)
			res.PerUE[a.UEID] = UEGrant{PRBs: a.PRBs, Bits: served}
			ss.GrantedPRBs += a.PRBs
			ss.Bits += served
		}
		res.PerSlice[s.ID] = ss
		if o != nil {
			o.observeSlice(ev, s, ss, time.Since(schedStart))
		}
	}

	// UEs with no grant still update their PF average (toward zero).
	for _, pool := range [2][]*ran.UE{g.ues, g.fleetWin} {
		for _, u := range pool {
			if _, granted := res.PerUE[u.ID]; !granted {
				u.RecordService(0, g.Cell.SlotDuration, g.PFTimeConstant)
			}
		}
	}
	// Fold the window's outcomes back into the fleet's compact arrays and
	// rotate, so the next slot materializes a fresh cohort.
	if g.fleet != nil {
		g.fleet.Absorb(g.slot)
	}

	// Track served-rate EWMA per slice for E2 KPM reporting.
	slotSec := g.Cell.SlotDuration.Seconds()
	for id, ss := range res.PerSlice {
		inst := float64(ss.Bits) / slotSec
		g.sliceRate[id] = (1-sliceRateAlpha)*g.sliceRate[id] + sliceRateAlpha*inst
	}

	if o != nil {
		o.finishSlot(ev, g.slot, time.Since(slotStart))
	}
	if g.effect != nil {
		// First slot served after a traced control decision: close the loop.
		now := time.Now().UnixNano()
		g.tracer.Record(&trace.Span{
			TraceID: g.effect.ctx.TraceID, SpanID: trace.NewSpanID(), Parent: g.effect.ctx.SpanID,
			Name: trace.SpanSlotEffect, Plane: trace.PlaneGNB,
			Slot: g.slot, Cell: g.traceCell,
			StartNs: g.effect.startNs, DurNs: now - g.effect.startNs,
		})
		g.effect = nil
	}
	g.slot++
	return res
}

// EnableTracing attaches the causal tracing layer: traced control requests
// (ApplyTraced) record gnb.apply, swap.canary and slot.effect spans on the
// gNB plane, labeled with this cell. A nil tracer disables tracing.
func (g *GNB) EnableTracing(tr *trace.Tracer, cell uint32) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.tracer = tr
	g.traceCell = cell
	if tr == nil {
		g.effect = nil
	}
}

// RunSlots advances n slots, invoking observe (if non-nil) per slot.
func (g *GNB) RunSlots(n int, observe func(SlotResult)) {
	for i := 0; i < n; i++ {
		r := g.Step()
		if observe != nil {
			observe(r)
		}
	}
}

// NewPluginScheduler compiles-and-instantiates one of the built-in WAT
// scheduler plugins ("rr", "pf", "mt") under the given policy, ready to be
// installed into a slice. A zero Policy gets a 16 MiB memory cap and a
// 10M-instruction fuel budget — comfortable for 20 UEs, small enough to
// bound slot overruns.
func NewPluginScheduler(name string, policy wabi.Policy) (*sched.PluginScheduler, error) {
	mod, err := plugins.CompileScheduler(name)
	if err != nil {
		return nil, err
	}
	if policy.MaxMemoryPages == 0 {
		policy.MaxMemoryPages = 256
	}
	if policy.Fuel == 0 {
		policy.Fuel = 10_000_000
	}
	p, err := wabi.NewPlugin(mod, policy, wabi.Env{})
	if err != nil {
		return nil, err
	}
	return sched.NewPluginScheduler(name, p, nil)
}

// SlotsForDuration converts an experiment duration into a slot count.
func SlotsForDuration(cell ran.CellConfig, d time.Duration) int {
	return int(d / cell.SlotDuration)
}

package core

import (
	"fmt"
	"runtime"
	"strconv"
	"time"

	"waran/internal/guard"
	"waran/internal/metrics"
	"waran/internal/obs"
	"waran/internal/obs/flight"
	"waran/internal/obs/trace"
	"waran/internal/plugins"
	"waran/internal/ran"
	"waran/internal/sched"
	"waran/internal/wabi"
	"waran/internal/wasm"
	"waran/internal/wat"
)

// CellGroupConfig shapes a multi-cell slot engine.
type CellGroupConfig struct {
	// Cells is the number of gNB cells in the group (at least 1).
	Cells int
	// Parallelism bounds concurrent cell steps per slot. 0 means
	// GOMAXPROCS; 1 reproduces the serial single-cell loop exactly.
	Parallelism int
	// SlotDeadline is the per-cell wall-clock budget the watchdog checks
	// each slot. 0 means the cell's slot duration (the paper's 1 ms).
	SlotDeadline time.Duration
	// FallbackOnOverrun pins a cell's slices to their native fallback
	// schedulers after OverrunThreshold consecutive deadline overruns —
	// the cell-wide analogue of per-slice plugin quarantine. Off by
	// default because wall-clock-driven decisions are nondeterministic.
	FallbackOnOverrun bool
	// OverrunThreshold is the consecutive-overrun limit before a cell is
	// pinned (0 means 3, mirroring the slice quarantine default).
	OverrunThreshold int
}

// DefaultOverrunThreshold is the consecutive slot-deadline overruns after
// which a cell falls back to native scheduling (when enabled).
const DefaultOverrunThreshold = 3

// CellGroup owns N independent gNB cells and steps them concurrently each
// slot through a bounded worker pool — the multi-cell deployment ORANSlice
// evaluates, driven by one slot clock. Cells share one content-addressed
// module cache, so hot-swapping the same plugin bytecode onto every cell
// compiles it exactly once, and (optionally) share pooled plugin instances
// via sched.PoolScheduler so intra-slice decisions from different cells
// execute in parallel sandboxes of one compiled module.
//
// Determinism: each cell's UEs, channels and traffic sources are seeded
// per-cell and never shared, so a group stepped with Parallelism=1 yields
// byte-identical SlotResults to stepping the same cells serially, and any
// Parallelism yields identical per-cell sequences (locked in by
// TestCellGroupDeterminism).
type CellGroup struct {
	cfg   CellGroupConfig
	cells []*GNB
	// Modules is the group's shared content-addressed compiled-module
	// cache; every cell's upload path resolves bytecode through it.
	Modules *wabi.ModuleCache

	watch      []*metrics.DeadlineMeter
	consecOver []int
	pinned     []bool
	slot       uint64

	// flight is the incident journal (nil = off). Set via SetFlightRecorder
	// before the slot loop starts; stepCell reads it without synchronization
	// on the same set-before-run contract as PluginEnv.
	flight *flight.Recorder

	// sups maps supervised slice IDs to their lifecycle supervisors (one
	// shared across all cells having the slice). Populated by
	// InstallSupervisedScheduler; nil when supervision is unused.
	sups map[uint32]*guard.Supervisor

	// PluginEnv is merged into the environment of every pool the group
	// builds (InstallPooledScheduler / UploadSchedulerAll): the injection
	// point for the wasm profiler and other host extensions. Set before
	// installing schedulers.
	PluginEnv wabi.Env

	// PluginABI selects the request/response path for every scheduler the
	// group installs: sched.ABIAuto (default) negotiates zero-copy regions
	// with capable guests and falls back to the serializing codec,
	// sched.ABICodec forces the codec (ablation baseline), sched.ABIZeroCopy
	// refuses guests without the region ABI. Set before installing
	// schedulers.
	PluginABI sched.ABIMode

	// PluginTier pins every scheduler the group installs to one wasm
	// execution tier. TierAuto (default) leaves tier selection to the
	// profile-guided promotion machinery. Set before installing schedulers.
	PluginTier wasm.Tier

	// TierPromoteFuel sets the cumulative-fuel threshold at which an
	// installed scheduler's module is promoted off the interpreter. Zero
	// keeps wabi's default behavior (promotion armed only where a policy
	// arms it); negative disables promotion. Set before installing
	// schedulers.
	TierPromoteFuel int64
}

// NewCellGroup creates cfg.Cells identical cells (defaults applied). The
// caller then populates each cell's slices and UEs via Cell(i), typically
// with per-cell seeds.
func NewCellGroup(cell ran.CellConfig, cfg CellGroupConfig) (*CellGroup, error) {
	if cfg.Cells < 1 {
		return nil, fmt.Errorf("core: cell group needs at least 1 cell, got %d", cfg.Cells)
	}
	cell = cell.WithDefaults()
	if cfg.SlotDeadline == 0 {
		cfg.SlotDeadline = cell.SlotDuration
	}
	if cfg.OverrunThreshold == 0 {
		cfg.OverrunThreshold = DefaultOverrunThreshold
	}
	cg := &CellGroup{
		cfg:        cfg,
		cells:      make([]*GNB, cfg.Cells),
		Modules:    wabi.NewModuleCache(),
		watch:      make([]*metrics.DeadlineMeter, cfg.Cells),
		consecOver: make([]int, cfg.Cells),
		pinned:     make([]bool, cfg.Cells),
	}
	for i := range cg.cells {
		g, err := NewGNB(cell)
		if err != nil {
			return nil, err
		}
		g.Modules = cg.Modules
		cg.cells[i] = g
		cg.watch[i] = metrics.NewDeadlineMeter(cfg.SlotDeadline)
	}
	return cg, nil
}

// NumCells returns the group size.
func (cg *CellGroup) NumCells() int { return len(cg.cells) }

// Cell returns the i-th gNB.
func (cg *CellGroup) Cell(i int) *GNB { return cg.cells[i] }

// Slot returns the group slot counter (slots completed by StepAll).
func (cg *CellGroup) Slot() uint64 { return cg.slot }

// parallelism resolves the effective worker count for this group.
func (cg *CellGroup) parallelism() int {
	p := cg.cfg.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > len(cg.cells) {
		p = len(cg.cells)
	}
	return p
}

// StepAll advances every cell by one slot, at most Parallelism cells
// concurrently, and returns the per-cell results indexed by cell. Each
// cell's step is timed against the slot deadline; overruns are recorded in
// the cell's DeadlineMeter and, when FallbackOnOverrun is set, pin the cell
// to native fallback scheduling after OverrunThreshold consecutive misses.
func (cg *CellGroup) StepAll() []SlotResult {
	n := len(cg.cells)
	results := make([]SlotResult, n)
	par := cg.parallelism()

	if par == 1 {
		// Serial fast path: no goroutines, identical to the classic loop.
		for i := 0; i < n; i++ {
			cg.stepCell(i, results)
		}
	} else {
		work := make(chan int)
		done := make(chan struct{})
		for w := 0; w < par; w++ {
			go func() {
				for i := range work {
					cg.stepCell(i, results)
					done <- struct{}{}
				}
			}()
		}
		go func() {
			for i := 0; i < n; i++ {
				work <- i
			}
			close(work)
		}()
		for i := 0; i < n; i++ {
			<-done
		}
	}
	cg.slot++
	return results
}

// stepCell runs one cell's slot under the deadline watchdog. Cell i is
// touched by exactly one worker per slot, so consecOver/pinned accesses
// race-free by construction.
func (cg *CellGroup) stepCell(i int, results []SlotResult) {
	start := time.Now()
	results[i] = cg.cells[i].Step()
	dur := time.Since(start)
	overrun := cg.watch[i].Observe(dur)
	if overrun {
		// Journal the miss on the rare edge only; the common in-budget slot
		// never touches the recorder (nil recorder adds 0 allocs, pinned by
		// TestDisabledFlightRecorderAddsZeroAllocs).
		cg.flight.Record(flight.Event{
			Class: flight.EvSlotDeadlineMiss, Plane: flight.PlaneGNB,
			Cell: uint32(i), Slot: cg.slot,
			Value: float64(dur.Nanoseconds()),
		})
	}

	if !cg.cfg.FallbackOnOverrun {
		return
	}
	if overrun {
		cg.consecOver[i]++
		if !cg.pinned[i] && cg.consecOver[i] >= cg.cfg.OverrunThreshold {
			cg.pinned[i] = true
			cg.cells[i].Slices.SetForceFallback(true)
			cg.flight.Record(flight.Event{
				Class: flight.EvFallbackPin, Plane: flight.PlaneGNB,
				Cell: uint32(i), Slot: cg.slot,
				Value: float64(cg.consecOver[i]),
			})
		}
	} else {
		cg.consecOver[i] = 0
	}
}

// RunSlots advances the group n slots, invoking observe (if non-nil) per
// cell per slot.
func (cg *CellGroup) RunSlots(n int, observe func(cell int, r SlotResult)) {
	for i := 0; i < n; i++ {
		res := cg.StepAll()
		if observe != nil {
			for c := range res {
				observe(c, res[c])
			}
		}
	}
}

// EnableObservability wires the whole group into the observability layer:
// each cell's GNB registers slot instruments under its cell label, the
// per-cell deadline watchdogs and the shared module cache are exposed, and
// (when ring is non-nil) every slot step appends a trace event. Call after
// populating slices and before the slot loop starts.
func (cg *CellGroup) EnableObservability(reg *obs.Registry, ring *obs.TraceRing) {
	for i, g := range cg.cells {
		g.EnableObservability(reg, ring, i, cg.cfg.SlotDeadline)
		reg.MustRegister("waran_cell_deadline", "cell-group slot deadline watchdog",
			obs.DeadlineInstrument(cg.watch[i]), obs.L("cell", strconv.Itoa(i)))
	}
	cg.Modules.Register(reg)
	cg.registerSupervisors(reg)
}

// EnableTracing attaches the causal tracing layer to every cell (labeled by
// cell index) and to every registered supervisor, so traced RIC controls
// record gnb.apply, swap.canary and slot.effect spans. A nil tracer turns
// tracing back off.
func (cg *CellGroup) EnableTracing(tr *trace.Tracer) {
	for i, g := range cg.cells {
		g.EnableTracing(tr, uint32(i))
	}
	for _, sup := range cg.sups {
		sup.SetTracer(tr)
	}
}

// WatchdogStats snapshots every cell's deadline accounting.
func (cg *CellGroup) WatchdogStats() []metrics.DeadlineStats {
	out := make([]metrics.DeadlineStats, len(cg.watch))
	for i, w := range cg.watch {
		out[i] = w.Stats()
	}
	return out
}

// CellPinned reports whether the watchdog has pinned cell i to native
// fallback scheduling.
func (cg *CellGroup) CellPinned(i int) bool { return cg.pinned[i] }

// ReleaseCell lifts a watchdog pin (e.g. after the operator uploaded a
// faster plugin), re-enabling plugin scheduling on the cell.
func (cg *CellGroup) ReleaseCell(i int) {
	cg.pinned[i] = false
	cg.consecOver[i] = 0
	cg.cells[i].Slices.SetForceFallback(false)
	cg.flight.Record(flight.Event{
		Class: flight.EvFallbackRelease, Plane: flight.PlaneGNB,
		Cell: uint32(i), Slot: cg.slot,
	})
}

// SetFlightRecorder attaches the incident journal to the group: slot
// deadline misses, fallback pins/releases and every installed supervisor's
// lifecycle transitions are journaled into rec. Call before the slot loop
// starts (the same contract as PluginEnv); nil detaches. Supervisors
// installed later inherit the recorder.
func (cg *CellGroup) SetFlightRecorder(rec *flight.Recorder) {
	cg.flight = rec
	for _, sup := range cg.sups {
		sup.SetFlightRecorder(rec)
	}
}

// FlightRecorder returns the attached incident journal (nil = off).
func (cg *CellGroup) FlightRecorder() *flight.Recorder { return cg.flight }

// InstallPooledScheduler compiles the named built-in scheduler ("rr", "pf",
// "mt") once and installs one shared pool-backed IntraSlice across every
// cell that registered sliceID: N cells scheduling concurrently draw from
// up to poolMax parallel sandboxes of a single compiled module. The module
// is resolved through the group's content-addressed cache, so the cache's
// tier policy (pinning, fuel-profiled promotion and its promotion counter)
// governs preinstalled pools exactly like uploaded ones, and a later upload
// of identical bytes is a cache hit rather than a recompile.
func (cg *CellGroup) InstallPooledScheduler(sliceID uint32, name string, policy wabi.Policy, poolMax int) (*sched.PoolScheduler, error) {
	src, ok := plugins.SchedulerWAT(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown built-in scheduler %q", name)
	}
	bin, err := wat.CompileToBinary(src)
	if err != nil {
		return nil, fmt.Errorf("core: assemble built-in scheduler %q: %w", name, err)
	}
	mod, err := cg.Modules.Load(bin)
	if err != nil {
		return nil, err
	}
	return cg.installPool(sliceID, name, mod, policy, poolMax)
}

// UploadSchedulerAll is the multi-cell hot-swap path: third-party bytecode
// is resolved through the group's content-addressed cache (compiling at
// most once, even if the same bytes were uploaded before), wrapped in one
// shared instance pool, and swapped onto every cell that has the slice.
func (cg *CellGroup) UploadSchedulerAll(sliceID uint32, name string, bin []byte, policy wabi.Policy, poolMax int) (*sched.PoolScheduler, error) {
	mod, err := cg.Modules.Load(bin)
	if err != nil {
		return nil, fmt.Errorf("core: cell group rejected uploaded bytecode: %w", err)
	}
	return cg.installPool(sliceID, name, mod, policy, poolMax)
}

func (cg *CellGroup) installPool(sliceID uint32, name string, mod *wabi.Module, policy wabi.Policy, poolMax int) (*sched.PoolScheduler, error) {
	if policy.MaxMemoryPages == 0 {
		policy.MaxMemoryPages = 256
	}
	if policy.Fuel == 0 {
		policy.Fuel = 10_000_000
	}
	if policy.Tier == wasm.TierAuto {
		policy.Tier = cg.PluginTier
	}
	if policy.TierPromoteFuel == 0 {
		policy.TierPromoteFuel = cg.TierPromoteFuel
	}
	env := cg.PluginEnv
	if env.ProfileTag == "" && env.Profile != nil {
		env.ProfileTag = name
	}
	pool := wabi.NewPool(mod, policy, env, poolMax)
	ps, err := sched.NewPoolScheduler(name, pool, nil)
	if err != nil {
		return nil, err
	}
	if cg.PluginABI != sched.ABIAuto {
		if err := ps.SetABIMode(cg.PluginABI); err != nil {
			return nil, err
		}
	}
	swapped := 0
	for _, g := range cg.cells {
		if _, ok := g.Slices.Slice(sliceID); !ok {
			continue
		}
		if err := g.Slices.HotSwap(sliceID, ps); err != nil {
			return nil, err
		}
		swapped++
	}
	if swapped == 0 {
		return nil, fmt.Errorf("core: no cell in the group has slice %d", sliceID)
	}
	return ps, nil
}

package core

import (
	"testing"

	"waran/internal/ran"
	"waran/internal/sched"
)

func TestFleetDriverShardsAndSteps(t *testing.T) {
	const cells, shards = 8, 3
	f, err := NewFleet(ran.CellConfig{}, FleetDriverConfig{Cells: cells, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.NumShards() != shards || f.NumCells() != cells {
		t.Fatalf("fleet shape %d shards x %d cells", f.NumShards(), f.NumCells())
	}
	// Every global index maps to a distinct cell and the shard stripes
	// cover the fleet exactly.
	seen := map[*GNB]bool{}
	for i := 0; i < cells; i++ {
		g := f.Cell(i)
		if seen[g] {
			t.Fatalf("cell index %d aliases another cell", i)
		}
		seen[g] = true
		if _, err := g.Slices.AddSlice(1, "t", 10e6, sched.RoundRobin{}, nil); err != nil {
			t.Fatal(err)
		}
		fl, err := ran.NewUEFleet(ran.FleetConfig{UEs: 512, ActiveK: 8, SliceIDs: []uint32{1}})
		if err != nil {
			t.Fatal(err)
		}
		if err := g.AttachFleet(fl); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for s := 0; s < shards; s++ {
		total += f.Shard(s).NumCells()
	}
	if total != cells {
		t.Fatalf("stripes cover %d cells, want %d", total, cells)
	}

	const slots = 50
	for i := 0; i < slots; i++ {
		f.StepAll()
	}
	if f.Slot() != slots {
		t.Fatalf("fleet slot %d, want %d", f.Slot(), slots)
	}
	for s, ws := range f.WatchdogStats() {
		if ws.Slots != slots {
			t.Fatalf("shard %d watchdog observed %d slots, want %d", s, ws.Slots, slots)
		}
	}
	// Every cell advanced in lockstep and its fleet served traffic.
	for i := 0; i < cells; i++ {
		if got := f.Cell(i).Slot(); got != slots {
			t.Fatalf("cell %d at slot %d, want %d", i, got, slots)
		}
		if st := f.Cell(i).Fleet().Stats(); st.DeliveredBits == 0 {
			t.Fatalf("cell %d fleet delivered nothing", i)
		}
	}
	// The fleet shares one module cache across shards.
	for s := 0; s < shards; s++ {
		if f.Shard(s).Modules != f.Modules {
			t.Fatalf("shard %d has a private module cache", s)
		}
	}
}

func TestGNBFleetScheduling(t *testing.T) {
	g, err := NewGNB(ran.CellConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Slices.AddSlice(1, "iot", 10e6, sched.RoundRobin{}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Slices.AddSlice(2, "mbb", 20e6, sched.RoundRobin{}, nil); err != nil {
		t.Fatal(err)
	}

	// Fleet on an unknown slice is refused at admission.
	bad, err := ran.NewUEFleet(ran.FleetConfig{UEs: 10, SliceIDs: []uint32{9}})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AttachFleet(bad); err == nil {
		t.Fatal("fleet on unregistered slice admitted")
	}

	fleet, err := ran.NewUEFleet(ran.FleetConfig{
		UEs: 4096, ActiveK: 32, SliceIDs: []uint32{1, 2}, MeanRateBps: 256e3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AttachFleet(fleet); err != nil {
		t.Fatal(err)
	}
	if err := g.AttachFleet(fleet); err == nil {
		t.Fatal("second fleet admitted")
	}
	// An explicit UE coexists with the fleet.
	ue := ran.NewUE(1, 1, 20)
	ue.Traffic = ran.NewCBR(1e6)
	if err := g.AttachUE(ue); err != nil {
		t.Fatal(err)
	}

	var fleetBits int64
	for i := 0; i < 256; i++ {
		res := g.Step()
		for id, gr := range res.PerUE {
			if id >= 1<<20 { // fleet BaseID default
				fleetBits += gr.Bits
			}
		}
	}
	if fleetBits == 0 {
		t.Fatal("no fleet UE was ever granted")
	}
	st := fleet.Stats()
	if st.DeliveredBits == 0 {
		t.Fatal("fleet accounting saw no delivered bits")
	}

	// The KPM snapshot stays bounded: explicit UEs + the active window,
	// never the full modeled population.
	ind := g.Snapshot(1)
	if got, limit := len(ind.UEs), 1+fleet.ActiveK(); got > limit {
		t.Fatalf("snapshot carries %d UE rows, want <= %d", got, limit)
	}
	if len(ind.UEs) < 2 {
		t.Fatalf("snapshot missing fleet window rows: %d", len(ind.UEs))
	}
	if len(ind.Slices) != 2 {
		t.Fatalf("snapshot slice rows %d, want 2", len(ind.Slices))
	}
}

package core

import (
	"fmt"
	"time"

	"waran/internal/e2"
	"waran/internal/guard"
	"waran/internal/obs/trace"
	"waran/internal/ran"
	"waran/internal/sched"
	"waran/internal/wabi"
)

// This file is the gNB's E2 control surface: the host functions the paper
// describes the gNB exposing to the near-RT RIC via communication plugins
// (changing slice quotas, triggering handovers, hot-swapping schedulers).
// GNB implements ric.RANControl.

// Snapshot builds a KPM indication of current per-UE and per-slice state.
func (g *GNB) Snapshot(cell uint32) *e2.Indication {
	g.mu.Lock()
	defer g.mu.Unlock()
	ind := &e2.Indication{Slot: g.slot, Cell: cell}
	// Per-UE rows cover explicit UEs plus the fleet's materialized window,
	// so the report stays bounded (O(attached + ActiveK)) no matter how
	// large the modeled population is; the slice rows below aggregate
	// everything the cell served, fleet included.
	for _, pool := range [2][]*ran.UE{g.ues, g.fleetWin} {
		for _, u := range pool {
			ind.UEs = append(ind.UEs, e2.UEMeasurement{
				UEID:        u.ID,
				SliceID:     u.SliceID,
				MCS:         int32(u.MCS),
				BufferBytes: u.BufferBytes(),
				TputBps:     u.AvgTputBps,
			})
		}
	}
	for _, s := range g.Slices.Slices() {
		ind.Slices = append(ind.Slices, e2.SliceMeasurement{
			SliceID:   s.ID,
			TargetBps: s.TargetRate(),
			ServedBps: g.sliceRate[s.ID],
		})
	}
	return ind
}

// Apply executes a control request from the RIC. Unknown slices/UEs and
// unknown actions are errors so the RIC receives a negative acknowledgment
// rather than silence.
func (g *GNB) Apply(c *e2.ControlRequest) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.applyLocked(c, trace.Context{})
}

// ApplyTraced is Apply carrying the control's causal trace context (it
// implements ric.TracedRANControl). With tracing enabled it records a
// gnb.apply span parented to ctx, parents any supervised swap.canary span
// under it, and arms the slot.effect span that Step closes at the end of the
// first slot the decision affects.
func (g *GNB) ApplyTraced(c *e2.ControlRequest, ctx trace.Context) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.tracer == nil || !ctx.Valid() {
		return g.applyLocked(c, trace.Context{})
	}
	// The apply span's ID is allocated up front so child spans recorded
	// inside the apply (swap.canary) parent to it.
	child := trace.Context{TraceID: ctx.TraceID, SpanID: trace.NewSpanID()}
	start := time.Now()
	err := g.applyLocked(c, child)
	sp := &trace.Span{
		TraceID: ctx.TraceID, SpanID: child.SpanID, Parent: ctx.SpanID,
		Name: trace.SpanGNBApply, Plane: trace.PlaneGNB,
		Slot: g.slot, Cell: g.traceCell,
		StartNs: start.UnixNano(), DurNs: int64(time.Since(start)),
	}
	if err != nil {
		sp.Err = err.Error()
	}
	g.tracer.Record(sp)
	if err == nil {
		g.effect = &effectArm{ctx: child, startNs: sp.StartNs}
	}
	return err
}

func (g *GNB) applyLocked(c *e2.ControlRequest, ctx trace.Context) error {
	switch c.Action {
	case e2.ActionSetSliceTarget:
		s, ok := g.Slices.Slice(c.SliceID)
		if !ok {
			return fmt.Errorf("core: control: unknown slice %d", c.SliceID)
		}
		if c.Value < 0 {
			return fmt.Errorf("core: control: negative target rate %f", c.Value)
		}
		s.SetTargetRate(c.Value)
		return nil
	case e2.ActionSetSliceWeight:
		s, ok := g.Slices.Slice(c.SliceID)
		if !ok {
			return fmt.Errorf("core: control: unknown slice %d", c.SliceID)
		}
		if c.Value <= 0 {
			return fmt.Errorf("core: control: non-positive weight %f", c.Value)
		}
		s.SetWeight(c.Value)
		return nil
	case e2.ActionSwapScheduler:
		plugin, err := NewPluginScheduler(c.Text, wabi.Policy{})
		if err != nil {
			return fmt.Errorf("core: control: %w", err)
		}
		return g.installScheduler(c.SliceID, plugin, ctx)
	case e2.ActionUploadScheduler:
		// The paper's Fig. 1 path: compiled Wasm bytecode is pushed into
		// the RAN over the wire and becomes the slice's scheduler, after
		// the full decode/validate gauntlet.
		if len(c.Blob) == 0 {
			return fmt.Errorf("core: control: upload-scheduler without bytecode")
		}
		// Resolve through the content-addressed cache when available:
		// re-uploads of identical bytecode (64 cells, retries, rollbacks)
		// skip the decode/validate/flatten gauntlet entirely.
		var mod *wabi.Module
		var err error
		if g.Modules != nil {
			mod, err = g.Modules.Load(c.Blob)
		} else {
			mod, err = wabi.CompileWasm(c.Blob)
		}
		if err != nil {
			return fmt.Errorf("core: control: rejected uploaded bytecode: %w", err)
		}
		p, err := wabi.NewPlugin(mod, wabi.Policy{MaxMemoryPages: 256, Fuel: 10_000_000}, wabi.Env{})
		if err != nil {
			return fmt.Errorf("core: control: uploaded plugin: %w", err)
		}
		name := c.Text
		if name == "" {
			name = "uploaded"
		}
		ps, err := sched.NewPluginScheduler(name, p, nil)
		if err != nil {
			return fmt.Errorf("core: control: uploaded plugin: %w", err)
		}
		return g.installScheduler(c.SliceID, ps, ctx)
	case e2.ActionHandover:
		// In a multi-cell deployment the UE context would transfer to
		// c.Text's cell; in the single-cell model the UE leaves this gNB.
		return g.detachLocked(c.UEID)
	default:
		return fmt.Errorf("core: control: unsupported action %s", c.Action)
	}
}

// installScheduler routes a RIC-driven scheduler change onto the slice. A
// supervised slice never hot-swaps raw: the candidate goes through the
// supervisor's shadow validation and, on pass, replaces whatever the
// supervisor currently runs — including a quarantined incumbent, which stays
// out of the rollback chain. Unsupervised slices keep the direct swap.
func (g *GNB) installScheduler(sliceID uint32, candidate sched.IntraSlice, ctx trace.Context) error {
	if s, ok := g.Slices.Slice(sliceID); ok {
		if sup, ok := s.Scheduler().(*guard.Supervisor); ok {
			if _, err := sup.SwapTraced(candidate, ctx); err != nil {
				return fmt.Errorf("core: control: %w", err)
			}
			return nil
		}
	}
	return g.Slices.HotSwap(sliceID, candidate)
}

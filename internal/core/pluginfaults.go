package core

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"waran/internal/guard"
	"waran/internal/obs/flight"
	"waran/internal/plugins"
	"waran/internal/ran"
	"waran/internal/sched"
	"waran/internal/wabi"
	"waran/internal/wat"
)

// slotClock is the experiment's virtual time source: one tick per group
// slot, 1 ms per tick, injected as the breaker clock so quarantine backoffs
// are measured in slots and the whole fault storm is deterministic.
type slotClock struct {
	slot atomic.Uint64 // metric-exempt: virtual clock, not telemetry
}

// Now implements the guard.BreakerConfig clock.
func (c *slotClock) Now() time.Time {
	return time.Unix(0, 0).Add(time.Duration(c.slot.Load()) * time.Millisecond)
}

// Tick advances virtual time by one slot.
func (c *slotClock) Tick() { c.slot.Add(1) }

// PluginFaultsResult is the plugin-fault-storm experiment outcome: a
// multi-cell group with one chaos-wrapped hostile plugin, reporting how fast
// the breaker contained it, what quarantined operation cost, the shadow-
// validated recovery swap, the sleeper-candidate rollback, and whether the
// supervisor's per-class failure counters exactly match the injected fault
// schedule.
type PluginFaultsResult struct {
	Cells       int   `json:"cells"`
	Parallelism int   `json:"parallelism"`
	Seed        int64 `json:"seed"`

	SlotsTotal  uint64 `json:"slots_total"`
	SlotsToOpen uint64 `json:"slots_to_open"`

	// Deadline containment: overruns before the breaker opened (the hostile
	// plugin was still being called) vs after (quarantined / recovered).
	OverrunsPreOpen  uint64 `json:"overruns_pre_open"`
	OverrunsPostOpen uint64 `json:"overruns_post_open"`
	SlotsPostOpen    uint64 `json:"slots_post_open"`

	HostileChaos wabi.ChaosStats `json:"hostile_chaos"`
	LiarChaos    wabi.ChaosStats `json:"liar_chaos"`

	RecoveryShadow *guard.ShadowReport `json:"recovery_shadow"`
	LiarShadow     *guard.ShadowReport `json:"liar_shadow"`

	Supervisor guard.SupervisorStats `json:"supervisor"`

	// FaultClassesMatch is the ledger check: every injected fault appears in
	// the breaker's per-class counters exactly once, and nothing else does.
	FaultClassesMatch bool   `json:"fault_classes_match"`
	ActiveScheduler   string `json:"active_scheduler"`

	// Flight is the incident-journal digest when the experiment ran with
	// the flight recorder armed (ExpConfig.Flight).
	Flight *flight.Summary `json:"flight,omitempty"`

	Obs map[string]any `json:"obs,omitempty"`
}

// flightBundleDir resolves an experiment's bundle directory, creating a
// temporary one when the caller did not pick a location.
func flightBundleDir(dir string) (string, error) {
	if dir != "" {
		return dir, nil
	}
	return os.MkdirTemp("", "waran-flight-")
}

// BuildSupervisedGroup assembles the Fig. 5a multi-cell deployment with a
// guard.Supervisor over every slice's pooled plugin scheduler. The slice
// with hostileID runs its plugin under the given chaos schedule; all
// supervisors share the breaker configuration (and therefore its clock).
func BuildSupervisedGroup(cells, par int, hostileID uint32, chaos *wabi.Chaos, gcfg guard.Config, deadline time.Duration) (*CellGroup, error) {
	cg, err := NewCellGroup(ran.CellConfig{}, CellGroupConfig{Cells: cells, Parallelism: par, SlotDeadline: deadline})
	if err != nil {
		return nil, err
	}
	specs := DefaultFig5aSpecs()
	for c := 0; c < cells; c++ {
		gnb := cg.Cell(c)
		ueID := uint32(1)
		for _, sp := range specs {
			if _, err := gnb.Slices.AddSlice(sp.ID, sp.Name, sp.TargetBps, sched.RoundRobin{}, nil); err != nil {
				return nil, err
			}
			for k := 0; k < sp.NumUEs; k++ {
				ue := ran.NewUE(ueID, sp.ID, 22+2*k)
				ue.Traffic = ran.NewCBR(1.4 * sp.TargetBps / float64(sp.NumUEs))
				if err := gnb.AttachUE(ue); err != nil {
					return nil, err
				}
				ueID++
			}
		}
	}
	for _, sp := range specs {
		env := wabi.Env{}
		if sp.ID == hostileID {
			env.Chaos = chaos
		}
		if _, err := cg.InstallSupervisedScheduler(sp.ID, sp.Scheduler, wabi.Policy{}, env, cells, gcfg); err != nil {
			return nil, err
		}
	}
	return cg, nil
}

// RunPluginFaults storms a multi-cell group with a hostile plugin and walks
// the full supervisor lifecycle: open → quarantine → shadow-validated
// recovery swap → probation → sleeper-candidate rollback → steady state.
func RunPluginFaults(cfg ExpConfig) (*PluginFaultsResult, error) {
	cells := cfg.Cells
	if cells <= 0 {
		cells = 4
	}
	par := cfg.Parallelism
	if par <= 0 {
		par = cells
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 7
	}
	const hostileSlice = 1

	clock := &slotClock{}
	// Every hostile call fails fast — traps, stolen fuel and corrupted
	// outputs, never stalls — so containment costs microseconds, not slots.
	hostileChaos := wabi.NewChaos(wabi.ChaosConfig{
		Seed:          seed,
		TrapProb:      0.5,
		FuelTheftProb: 0.25,
		CorruptProb:   1,
	})
	gcfg := guard.Config{
		Breaker: guard.BreakerConfig{
			Window:         32,
			MinSamples:     8,
			FailureRate:    0.5,
			Backoff:        50 * time.Millisecond, // 50 slots of virtual time
			MaxBackoff:     400 * time.Millisecond,
			ProbeSuccesses: 3,
			Now:            clock.Now,
		},
		RecordedInputs: 32,
		ProbationCalls: 256,
		// Both swaps in this storyline are built to pass shadow validation;
		// the latency budget only guards against a stalling candidate, and
		// the guard default (750 µs) is a per-call wall-clock bound a loaded
		// single-CPU box under the race detector blows spuriously mid-replay.
		ShadowLatencyBudget: 10 * time.Millisecond,
	}
	cg, err := BuildSupervisedGroup(cells, par, hostileSlice, hostileChaos, gcfg, cfg.SlotDeadline)
	if err != nil {
		return nil, err
	}
	if cfg.Obs != nil {
		cg.EnableObservability(cfg.Obs, cfg.Trace)
	}
	sup := cg.Supervisor(hostileSlice)
	rep := &PluginFaultsResult{Cells: cells, Parallelism: par, Seed: seed}

	// With the flight knob armed the whole storm is journaled, and the
	// breaker trip and sleeper rollback must each trigger (or be swept into)
	// a diagnostic bundle — the run fails otherwise.
	var frec *flight.Recorder
	var fcap *flight.Capturer
	if cfg.Flight != 0 {
		frec = flight.NewRecorder(4096)
		cg.SetFlightRecorder(frec)
		frec.SetTriggers(flight.EvBreakerOpen, flight.EvRollback)
		dir, err := flightBundleDir(cfg.FlightDir)
		if err != nil {
			return nil, err
		}
		fcap, err = flight.NewCapturer(frec, flight.CapturerConfig{
			Dir: dir, Debounce: 50 * time.Millisecond, GoroutineDump: -1,
			Registry: cfg.Obs,
		})
		if err != nil {
			return nil, err
		}
		fstop := make(chan struct{})
		defer close(fstop)
		go fcap.Run(fstop)
	}

	runSlots := func(n int) {
		for i := 0; i < n; i++ {
			cg.StepAll()
			clock.Tick()
		}
	}
	overruns := func() uint64 {
		var total uint64
		for _, st := range cg.WatchdogStats() {
			total += st.Overruns
		}
		return total
	}

	// Phase 1 — fault storm until the breaker opens.
	for i := 0; i < 500 && sup.Breaker().State() != guard.Open; i++ {
		runSlots(1)
	}
	if sup.Breaker().State() != guard.Open {
		return nil, fmt.Errorf("core: pluginfaults: breaker never opened under the fault storm")
	}
	rep.SlotsToOpen = cg.Slot()
	rep.OverrunsPreOpen = overruns()
	atOpen := rep.OverrunsPreOpen

	// Phase 2 — quarantined operation: the hostile slice rides the native
	// fallback; half-open probes keep failing with doubling backoff.
	runSlots(200)

	// Phase 3 — recovery: upload a healthy PF scheduler; the supervisor
	// shadow-validates it against recorded slot inputs and promotes it.
	blob, err := wat.CompileToBinary(plugins.ProportionalFairWAT)
	if err != nil {
		return nil, err
	}
	rep.RecoveryShadow, err = cg.UploadSupervisedAll(hostileSlice, "pf-recovery", blob, wabi.Policy{}, par)
	if err != nil {
		return nil, fmt.Errorf("core: pluginfaults: recovery swap rejected: %w", err)
	}

	// Phase 4 — probation decays while ≥1000 slots run clean on the
	// promoted candidate.
	runSlots(1100)

	// Phase 5 — a sleeper candidate: passes shadow validation (its chaos
	// schedule is inert for more calls than the replay ring holds), then
	// turns 100% hostile inside the probation window. The breaker trip must
	// roll back to the last-known-good PF scheduler.
	liarChaos := wabi.NewChaos(wabi.ChaosConfig{
		Seed:          seed + 1,
		TrapProb:      1,
		ActivateAfter: 64,
	})
	liarBlob, err := wat.CompileToBinary(plugins.MaxThroughputWAT)
	if err != nil {
		return nil, err
	}
	liar, err := cg.BuildPooledCandidate("mt-sleeper", liarBlob, wabi.Policy{}, wabi.Env{Chaos: liarChaos}, par)
	if err != nil {
		return nil, err
	}
	rep.LiarShadow, err = sup.Swap(liar)
	if err != nil {
		return nil, fmt.Errorf("core: pluginfaults: sleeper candidate failed shadow validation it was built to pass: %w", err)
	}
	for i := 0; i < 300 && sup.Stats().Rollbacks == 0; i++ {
		runSlots(1)
	}
	if sup.Stats().Rollbacks == 0 {
		return nil, fmt.Errorf("core: pluginfaults: sleeper candidate never triggered a rollback")
	}

	// Phase 6 — steady state on the restored last-known-good scheduler.
	runSlots(200)

	rep.SlotsTotal = cg.Slot()
	rep.SlotsPostOpen = rep.SlotsTotal - rep.SlotsToOpen
	rep.OverrunsPostOpen = overruns() - atOpen
	rep.HostileChaos = hostileChaos.Stats()
	rep.LiarChaos = liarChaos.Stats()
	rep.Supervisor = sup.Stats()
	rep.ActiveScheduler = sup.Active().Name()

	// Ledger check: injected faults and metered failures must agree per
	// class — every chaos draw was one plugin call, classified exactly once.
	br := sup.Breaker()
	rep.FaultClassesMatch = br.FailureCount(wabi.FailTrap) == rep.HostileChaos.Traps+rep.LiarChaos.Traps &&
		br.FailureCount(wabi.FailFuel) == rep.HostileChaos.FuelThefts+rep.LiarChaos.FuelThefts &&
		br.FailureCount(wabi.FailBadOutput) == rep.HostileChaos.Corruptions+rep.LiarChaos.Corruptions &&
		br.FailureCount(wabi.FailDeadline) == rep.HostileChaos.Stalls+rep.LiarChaos.Stalls

	if fcap != nil {
		// Sweep the journal tail (rollback events may have landed inside the
		// debounce window) and verify the storm's evidence reached disk.
		if _, err := fcap.CaptureNow("pluginfaults-final"); err != nil {
			return nil, err
		}
		sum, ok, err := flight.Summarize(frec, fcap, flight.EvBreakerOpen, flight.EvRollback)
		if err != nil {
			return nil, err
		}
		rep.Flight = sum
		if !ok {
			return rep, fmt.Errorf("core: pluginfaults: flight recorder produced no bundle covering %s and %s",
				flight.EvBreakerOpen, flight.EvRollback)
		}
	}

	if cfg.Obs != nil {
		rep.Obs = cfg.Obs.Snapshot()
	}
	return rep, nil
}

package core

import (
	"fmt"
	"io"
)

// This file renders experiment results as the text tables waranbench
// prints: each figure's result type implements TextRenderer, so the
// presentation travels with the data instead of living in the binary.

// RenderText prints the co-existence table (Fig. 5a).
func (r *Fig5aResult) RenderText(w io.Writer) error {
	fmt.Fprintf(w, "== Fig. 5a: Co-existence of MVNOs (duration %v) ==\n", r.Duration)
	fmt.Fprintln(w, "paper: each MVNO reaches its target cumulative DL rate on one gNB")
	fmt.Fprintf(w, "%-8s %-6s %12s %12s %8s\n", "MVNO", "sched", "target Mb/s", "achieved", "ratio")
	for _, m := range r.MVNOs {
		fmt.Fprintf(w, "%-8s %-6s %12.2f %12.2f %8.2f\n",
			m.Spec.Name, m.Spec.Scheduler, m.TargetBps/1e6, m.MeanBps/1e6, m.MeanBps/m.TargetBps)
	}
	fmt.Fprintln(w)
	return nil
}

// RenderText prints the live-swap trace (Fig. 5b).
func (r *Fig5bResult) RenderText(w io.Writer) error {
	fmt.Fprintf(w, "== Fig. 5b: Live swap of MVNO scheduler MT -> PF -> RR (duration %v) ==\n", r.Duration)
	fmt.Fprintln(w, "paper: swap on the fly, no gNB restart, no UE disconnect;")
	fmt.Fprintln(w, "       MT: best-MCS UE hits 22 Mb/s; PF: starved UE prioritized; RR: equal shares")
	fmt.Fprintf(w, "hot swaps applied: %d, UEs detached: %d\n", r.Swaps, r.UEsDetached)
	fmt.Fprintf(w, "%-10s", "t (s)")
	for _, u := range r.UEs {
		fmt.Fprintf(w, "  MCS%-2d Mb/s", u.MCS)
	}
	fmt.Fprintln(w)
	// All UEs share the same window cadence.
	for i := range r.UEs[0].Series {
		fmt.Fprintf(w, "%-10.1f", r.UEs[0].Series[i].Time.Seconds())
		for _, u := range r.UEs {
			fmt.Fprintf(w, "  %10.2f", u.Series[i].Bps/1e6)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	return nil
}

// RenderText prints the memory-growth comparison (Fig. 5c).
func (r *Fig5cResult) RenderText(w io.Writer) error {
	fmt.Fprintf(w, "== Fig. 5c: Memory increase, leaky scheduler in plugin vs native (duration %v) ==\n", r.Duration)
	fmt.Fprintln(w, "paper: plugin-sandboxed leak stays flat; same code native grows linearly")
	fmt.Fprintf(w, "sandbox cap: %.1f MiB\n", float64(r.CapBytes)/(1<<20))
	fmt.Fprintf(w, "%-10s %16s %16s\n", "t (s)", "plugin MiB", "native MiB")
	step := len(r.Points) / 10
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(r.Points); i += step {
		p := r.Points[i]
		fmt.Fprintf(w, "%-10.1f %16.2f %16.2f\n",
			p.Time.Seconds(), float64(p.PluginBytes)/(1<<20), float64(p.NativeBytes)/(1<<20))
	}
	last := r.Points[len(r.Points)-1]
	fmt.Fprintf(w, "final: plugin %.2f MiB (capped), native %.2f MiB (unbounded)\n\n",
		float64(last.PluginBytes)/(1<<20), float64(last.NativeBytes)/(1<<20))
	return nil
}

// RenderText prints the plugin execution-time table (Fig. 5d).
func (r *Fig5dResult) RenderText(w io.Writer) error {
	fmt.Fprintln(w, "== Fig. 5d: Plugin execution time incl. serialization ==")
	fmt.Fprintln(w, "paper: P99 well below the 1000 us slot for MT/PF/RR at 1/10/20 UEs")
	fmt.Fprintf(w, "%-6s %6s %12s %12s %12s %10s\n", "sched", "UEs", "P50 (us)", "P99 (us)", "mean (us)", "deadline")
	for _, c := range r.Cells {
		verdict := "OK"
		if c.P99us >= r.SlotDeadlineUs {
			verdict = "MISS"
		}
		fmt.Fprintf(w, "%-6s %6d %12.1f %12.1f %12.1f %10s\n",
			c.Scheduler, c.NumUEs, c.P50us, c.P99us, c.Meanus, verdict)
	}
	fmt.Fprintln(w)
	return nil
}

// SafetyResult wraps the §5D fault matrix so it can render itself.
type SafetyResult struct {
	Rows []SafetyRow `json:"rows"`
}

// RenderText prints the memory-safety fault matrix (§5D).
func (r *SafetyResult) RenderText(w io.Writer) error {
	fmt.Fprintln(w, "== §5D: Memory-safety fault matrix ==")
	fmt.Fprintln(w, "paper: improper code traps in the sandbox; the gNB catches it and keeps running")
	fmt.Fprintf(w, "%-16s %-28s %-14s %-14s\n", "fault", "sandbox verdict", "host survived", "slice rescued")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-16s %-28s %-14v %-14v\n", row.Fault, row.TrapCode, row.HostSurvived, row.SliceRescued)
	}
	fmt.Fprintln(w)
	return nil
}

// RenderText prints the Fig. 1 deployment-flow narrative.
func (r *UploadDemoResult) RenderText(w io.Writer) error {
	fmt.Fprintln(w, "== Fig. 1 flow: push Wasm scheduler bytecode into a running gNB ==")
	fmt.Fprintf(w, "before: slice runs %q\n", r.BeforeScheduler)
	fmt.Fprintf(w, "uploaded %d bytes of bytecode; decode+validate+instantiate+swap in %v\n",
		r.BlobBytes, r.SwapTime)
	fmt.Fprintf(w, "after:  slice runs %q (gNB never stopped; UE stayed attached)\n", r.AfterScheduler)
	fmt.Fprintln(w)
	return nil
}

//go:build race

package core

// raceEnabled reports whether the race detector is active; wall-clock
// timing assertions are skipped under it (the detector slows the
// interpreter by roughly an order of magnitude).
const raceEnabled = true

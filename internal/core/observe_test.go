package core

import (
	"strings"
	"testing"
	"time"

	"waran/internal/obs"
	"waran/internal/ran"
	"waran/internal/wabi"
)

// TestCellGroupObservability drives an instrumented 2-cell group and checks
// that every instrument class populates: slot latency, PRB grants, fuel,
// deadline watchdog, module cache, and the trace ring.
func TestCellGroupObservability(t *testing.T) {
	cg, err := NewCellGroup(ran.CellConfig{}, CellGroupConfig{Cells: 2, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cg.NumCells(); i++ {
		g := cg.Cell(i)
		rr, err := NewPluginScheduler("rr", wabi.Policy{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.Slices.AddSlice(1, "tenant", 10e6, rr, nil); err != nil {
			t.Fatal(err)
		}
		ue := ran.NewUE(uint32(100*i+1), 1, 15)
		ue.Traffic = ran.NewCBR(5e6)
		if err := g.AttachUE(ue); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cg.InstallPooledScheduler(1, "rr", wabi.Policy{}, 2); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	ring := obs.NewTraceRing(256)
	cg.EnableObservability(reg, ring)

	const slots = 50
	cg.RunSlots(slots, nil)

	lat := reg.Histogram("waran_slot_latency_us", "", obs.L("cell", "0")).Stats()
	if lat.Count != slots {
		t.Fatalf("cell 0 slot latency count = %d, want %d", lat.Count, slots)
	}
	grants := reg.Counter("waran_sched_granted_prbs_total", "", obs.L("cell", "1"), obs.L("slice", "1")).Value()
	if grants == 0 {
		t.Fatal("no PRB grants recorded for cell 1 slice 1")
	}
	fuel := reg.Histogram("waran_plugin_fuel_per_call", "", obs.L("cell", "0")).Stats()
	if fuel.Count == 0 || fuel.Min <= 0 {
		t.Fatalf("fuel histogram = %+v, want positive per-call fuel", fuel)
	}
	if ring.Len() != 2*slots {
		t.Fatalf("trace ring has %d events, want %d", ring.Len(), 2*slots)
	}
	ev := ring.Last(1)[0]
	if len(ev.Slices) != 1 || ev.Slices[0].Sched == "" || ev.WallUs <= 0 {
		t.Fatalf("trace event = %+v", ev)
	}

	text := reg.PrometheusText()
	for _, want := range []string{
		"waran_slot_latency_us_count",
		"waran_sched_granted_prbs_total",
		"waran_plugin_fuel_per_call_count",
		`waran_cell_deadline_slots_total{cell="1"}`,
		"waran_wabi_module_cache_misses_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	snap := reg.Snapshot()
	if _, ok := snap[`waran_cell_deadline{cell="0"}`]; !ok {
		t.Fatalf("snapshot missing deadline meter; keys: %v", reg.SeriesNames())
	}
}

// TestGNBObservabilityDeadline checks the overrun counter fires against an
// absurdly small deadline and that parallelism-1 tracing matches slots run.
func TestGNBObservabilityDeadline(t *testing.T) {
	g, err := NewGNB(ran.CellConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := NewPluginScheduler("rr", wabi.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Slices.AddSlice(1, "t", 10e6, rr, nil); err != nil {
		t.Fatal(err)
	}
	ue := ran.NewUE(1, 1, 15)
	ue.Traffic = ran.NewCBR(5e6)
	if err := g.AttachUE(ue); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ring := obs.NewTraceRing(32)
	g.EnableObservability(reg, ring, 0, time.Nanosecond)
	g.RunSlots(20, nil)
	over := reg.Counter("waran_slot_overruns_total", "", obs.L("cell", "0")).Value()
	if over != 20 {
		t.Fatalf("overruns = %d with 1ns deadline, want 20", over)
	}
	for _, ev := range ring.Last(0) {
		if !ev.Overrun {
			t.Fatalf("event not marked overrun: %+v", ev)
		}
	}
}

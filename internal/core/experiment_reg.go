package core

// Registrations for the experiments core itself owns, in the paper's
// figure order. RIC-coupled experiments (e2faults) register from
// internal/ric so core stays free of a ric dependency.
func init() {
	RegisterExperimentFunc("5a", "co-existence: three MVNOs each reach their target rate",
		func(cfg ExpConfig) (any, error) { return RunFig5a(nil, cfg.Duration) })
	RegisterExperimentFunc("5b", "live swap of the MVNO scheduler MT -> PF -> RR, no restart",
		func(cfg ExpConfig) (any, error) { return RunFig5b(cfg.Duration, 0) })
	RegisterExperimentFunc("5c", "memory growth: leaky code sandboxed vs native",
		func(cfg ExpConfig) (any, error) { return RunFig5c(cfg.Duration, 0) })
	RegisterExperimentFunc("5d", "plugin execution time incl. serialization vs the slot deadline",
		func(cfg ExpConfig) (any, error) { return RunFig5d(nil, nil, 0) })
	RegisterExperimentFunc("safety", "fault matrix: traps contained, host survives, slice rescued",
		func(cfg ExpConfig) (any, error) {
			rows, err := RunSafetyMatrix()
			if err != nil {
				return nil, err
			}
			return &SafetyResult{Rows: rows}, nil
		})
	RegisterExperimentFunc("upload", "Fig. 1 flow: push scheduler bytecode into a running gNB",
		func(cfg ExpConfig) (any, error) { return RunUploadDemo() })
	RegisterExperimentWithFlags("multicell", "multi-cell scaling, watchdog and fleet-wide hot swap (JSON)",
		[]ExpFlag{
			IntExpFlag("cells", 8, "number of cells in the group", func(c *ExpConfig, v int) { c.Cells = v }),
			IntExpFlag("slots", 2000, "slots to step", func(c *ExpConfig, v int) { c.Slots = v }),
			IntExpFlag("par", 0, "worker parallelism (0 = GOMAXPROCS)", func(c *ExpConfig, v int) { c.Parallelism = v }),
			StringExpFlag("abi", "auto", "plugin call path (auto, codec, zerocopy)", func(c *ExpConfig, v string) { c.ABI = v }),
			StringExpFlag("tier", "auto", "wasm execution tier (auto, interp, fused, closure)", func(c *ExpConfig, v string) { c.Tier = v }),
		},
		func(cfg ExpConfig) (any, error) { return RunMulticell(cfg) })
	RegisterExperimentWithFlags("pluginfaults", "plugin fault storm: breaker quarantine, shadow-validated recovery, sleeper rollback (JSON)",
		[]ExpFlag{
			IntExpFlag("cells", 4, "number of cells in the group", func(c *ExpConfig, v int) { c.Cells = v }),
			IntExpFlag("par", 0, "worker parallelism (0 = cells)", func(c *ExpConfig, v int) { c.Parallelism = v }),
			Int64ExpFlag("seed", 7, "chaos schedule seed", func(c *ExpConfig, v int64) { c.Seed = v }),
			IntExpFlag("flight", 0, "arm the flight recorder; fail unless the breaker trip and rollback reach a diagnostic bundle", func(c *ExpConfig, v int) { c.Flight = v }),
			StringExpFlag("flightdir", "", "diagnostic bundle directory (empty = temp dir)", func(c *ExpConfig, v string) { c.FlightDir = v }),
		},
		func(cfg ExpConfig) (any, error) { return RunPluginFaults(cfg) })
}

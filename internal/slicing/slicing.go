// Package slicing implements WA-RAN's MVNO slice management: registration
// of slices with contracted target rates, live (hot) swap of a slice's
// intra-slice scheduler plugin without stopping the gNB, and the fault
// tolerance the paper lists under §6A — fallback to a native default
// scheduler on plugin misbehaviour and quarantine after repeated faults.
package slicing

import (
	"errors"
	"fmt"
	"sync"

	"waran/internal/sched"
)

// ErrNoSuchSlice is returned for operations on unknown slice IDs.
var ErrNoSuchSlice = errors.New("slicing: no such slice")

// ErrAdmissionDenied is returned when admitting a slice would overcommit
// the cell's capacity.
var ErrAdmissionDenied = errors.New("slicing: admission denied")

// DefaultQuarantineThreshold is the number of consecutive plugin faults
// after which the slice is pinned to its fallback scheduler.
const DefaultQuarantineThreshold = 3

// Slice is one MVNO tenancy on the gNB.
type Slice struct {
	ID   uint32
	Name string
	// MaxUEs caps concurrent subscribers (0 = unlimited); enforced by the
	// gNB at attach time.
	MaxUEs int

	mu            sync.Mutex
	targetRateBps float64
	weight        float64
	scheduler     sched.IntraSlice
	fallback      sched.IntraSlice
	// fault accounting
	consecutiveFaults int
	totalFaults       uint64
	fallbackSlots     uint64
	quarantined       bool
	swaps             uint64
}

// TargetRate returns the contracted cumulative downlink rate.
func (s *Slice) TargetRate() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.targetRateBps
}

// SetTargetRate updates the contracted rate (e.g. from a RIC control).
func (s *Slice) SetTargetRate(bps float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.targetRateBps = bps
}

// Weight returns the inter-slice share weight.
func (s *Slice) Weight() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.weight
}

// SetWeight updates the inter-slice share weight.
func (s *Slice) SetWeight(w float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.weight = w
}

// Scheduler returns the currently active intra-slice scheduler.
func (s *Slice) Scheduler() sched.IntraSlice {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scheduler
}

// SchedulerName reports the active policy, annotated when quarantined.
func (s *Slice) SchedulerName() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.quarantined {
		return s.fallback.Name() + " (quarantine)"
	}
	return s.scheduler.Name()
}

// Quarantined reports whether the slice's plugin is quarantined.
func (s *Slice) Quarantined() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantined
}

// SliceStats summarizes the slice's fault history.
type SliceStats struct {
	TotalFaults   uint64 `json:"total_faults"`
	FallbackSlots uint64 `json:"fallback_slots"`
	Swaps         uint64 `json:"swaps"`
	Quarantined   bool   `json:"quarantined"`
}

// Stats returns a snapshot of fault accounting.
func (s *Slice) Stats() SliceStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SliceStats{
		TotalFaults:   s.totalFaults,
		FallbackSlots: s.fallbackSlots,
		Swaps:         s.swaps,
		Quarantined:   s.quarantined,
	}
}

// Manager owns the slice registry. It is safe for concurrent use; the
// per-slot scheduling path is typically driven by the single MAC goroutine
// while swaps arrive from management goroutines — exactly the paper's
// on-the-fly update scenario.
type Manager struct {
	mu     sync.RWMutex
	slices map[uint32]*Slice
	order  []uint32 // deterministic iteration order (registration order)
	// forceFallback pins every slice to its native fallback scheduler —
	// the cell-group deadline watchdog's recovery action when plugin
	// scheduling blows the slot budget.
	forceFallback bool

	// QuarantineThreshold is the consecutive-fault limit before a slice is
	// pinned to its fallback (0 means DefaultQuarantineThreshold).
	QuarantineThreshold int
	// CapacityBps, when positive, enables admission control: AddSlice
	// refuses a slice whose contracted rate would push the sum of targets
	// past the cell's capacity — the role the paper delegates to the AMF.
	CapacityBps float64
	// OnFault, if set, observes plugin failures (for logs/alerts).
	OnFault func(sliceID uint32, err error)
}

// NewManager creates an empty slice registry.
func NewManager() *Manager {
	return &Manager{slices: make(map[uint32]*Slice)}
}

// AddSlice registers a new slice. fallback nil defaults to round-robin.
func (m *Manager) AddSlice(id uint32, name string, targetRateBps float64, scheduler, fallback sched.IntraSlice) (*Slice, error) {
	if scheduler == nil {
		return nil, errors.New("slicing: scheduler must not be nil")
	}
	if fallback == nil {
		fallback = sched.RoundRobin{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.slices[id]; dup {
		return nil, fmt.Errorf("slicing: slice %d already exists", id)
	}
	if m.CapacityBps > 0 {
		committed := targetRateBps
		for _, s := range m.slices {
			committed += s.TargetRate()
		}
		if committed > m.CapacityBps {
			return nil, fmt.Errorf("%w: contracted %.1f Mb/s would exceed cell capacity %.1f Mb/s",
				ErrAdmissionDenied, committed/1e6, m.CapacityBps/1e6)
		}
	}
	s := &Slice{
		ID:            id,
		Name:          name,
		targetRateBps: targetRateBps,
		weight:        1,
		scheduler:     scheduler,
		fallback:      fallback,
	}
	m.slices[id] = s
	m.order = append(m.order, id)
	return s, nil
}

// RemoveSlice deregisters a slice (an MVNO leaving the gNB — no restart
// needed, per the paper's motivation).
func (m *Manager) RemoveSlice(id uint32) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.slices[id]; !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchSlice, id)
	}
	delete(m.slices, id)
	for i, v := range m.order {
		if v == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	return nil
}

// Slice looks up a slice by ID.
func (m *Manager) Slice(id uint32) (*Slice, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s, ok := m.slices[id]
	return s, ok
}

// Slices returns all slices in registration order.
func (m *Manager) Slices() []*Slice {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*Slice, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.slices[id])
	}
	return out
}

// HotSwap atomically replaces a slice's intra-slice scheduler between
// slots: the live-update path of Fig. 5b. The swap clears any quarantine —
// the operator is uploading a (presumably fixed) plugin.
func (m *Manager) HotSwap(id uint32, scheduler sched.IntraSlice) error {
	if scheduler == nil {
		return errors.New("slicing: scheduler must not be nil")
	}
	m.mu.RLock()
	s, ok := m.slices[id]
	m.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchSlice, id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.scheduler = scheduler
	s.quarantined = false
	s.consecutiveFaults = 0
	s.swaps++
	return nil
}

// SetForceFallback pins (on) or releases (off) every slice to its native
// fallback scheduler. While pinned, Schedule skips plugins entirely — the
// same rescue path a faulting plugin takes, applied cell-wide. Fallback
// slots are counted per slice as usual; fault counters are untouched.
func (m *Manager) SetForceFallback(on bool) {
	m.mu.Lock()
	m.forceFallback = on
	m.mu.Unlock()
}

// ForceFallback reports whether the manager is pinned to native fallbacks.
func (m *Manager) ForceFallback() bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.forceFallback
}

// Schedule runs the slice's intra-slice policy on req with full fault
// protection: a trap, timeout (fuel), malformed or over-budget response is
// absorbed — the slot is rescued by the fallback scheduler, and after
// QuarantineThreshold consecutive faults the plugin is quarantined.
// The returned response is always valid for req.
func (m *Manager) Schedule(s *Slice, req *sched.Request) (*sched.Response, error) {
	threshold := m.QuarantineThreshold
	if threshold == 0 {
		threshold = DefaultQuarantineThreshold
	}

	m.mu.RLock()
	forced := m.forceFallback
	m.mu.RUnlock()

	s.mu.Lock()
	scheduler := s.scheduler
	quarantined := s.quarantined
	fallback := s.fallback
	s.mu.Unlock()

	if !quarantined && !forced {
		resp, err := scheduler.Schedule(req)
		if err == nil {
			if verr := resp.Validate(req); verr == nil {
				s.mu.Lock()
				s.consecutiveFaults = 0
				s.mu.Unlock()
				return resp, nil
			} else {
				err = verr
			}
		}
		// Fault path.
		if m.OnFault != nil {
			m.OnFault(s.ID, err)
		}
		s.mu.Lock()
		s.totalFaults++
		s.consecutiveFaults++
		if s.consecutiveFaults >= threshold {
			s.quarantined = true
		}
		s.mu.Unlock()
	}

	s.mu.Lock()
	s.fallbackSlots++
	s.mu.Unlock()
	resp, err := fallback.Schedule(req)
	if err != nil {
		return nil, fmt.Errorf("slicing: fallback scheduler for slice %d failed: %w", s.ID, err)
	}
	if err := resp.Validate(req); err != nil {
		return nil, fmt.Errorf("slicing: fallback scheduler for slice %d invalid: %w", s.ID, err)
	}
	return resp, nil
}

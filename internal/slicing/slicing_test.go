package slicing

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"waran/internal/sched"
)

// flakyScheduler fails its first n calls, then behaves like round-robin.
type flakyScheduler struct {
	failures  int
	calls     int
	misbehave string // "error", "over-budget", "unknown-ue"
}

func (f *flakyScheduler) Name() string { return "flaky" }

func (f *flakyScheduler) Schedule(req *sched.Request) (*sched.Response, error) {
	f.calls++
	if f.calls <= f.failures {
		switch f.misbehave {
		case "over-budget":
			return &sched.Response{Allocs: []sched.Allocation{{UEID: req.UEs[0].ID, PRBs: req.PRBBudget + 1}}}, nil
		case "unknown-ue":
			return &sched.Response{Allocs: []sched.Allocation{{UEID: 0xDEAD, PRBs: 1}}}, nil
		default:
			return nil, errors.New("synthetic plugin failure")
		}
	}
	return sched.RoundRobin{}.Schedule(req)
}

func testRequest() *sched.Request {
	return &sched.Request{
		PRBBudget: 10,
		UEs: []sched.UEInfo{
			{ID: 1, MCS: 20, BitsPerPRB: 500, BufferBytes: 100_000},
			{ID: 2, MCS: 24, BitsPerPRB: 650, BufferBytes: 100_000},
		},
	}
}

func TestAddRemoveSlices(t *testing.T) {
	m := NewManager()
	if _, err := m.AddSlice(1, "a", 1e6, sched.RoundRobin{}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddSlice(1, "dup", 1e6, sched.RoundRobin{}, nil); err == nil {
		t.Fatal("duplicate slice accepted")
	}
	if _, err := m.AddSlice(2, "b", 2e6, sched.MaxThroughput{}, nil); err != nil {
		t.Fatal(err)
	}
	slices := m.Slices()
	if len(slices) != 2 || slices[0].ID != 1 || slices[1].ID != 2 {
		t.Fatalf("slices = %v", slices)
	}
	if err := m.RemoveSlice(1); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveSlice(1); !errors.Is(err, ErrNoSuchSlice) {
		t.Fatalf("double remove: %v", err)
	}
	if got := m.Slices(); len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("after remove: %v", got)
	}
}

func TestNilSchedulerRejected(t *testing.T) {
	m := NewManager()
	if _, err := m.AddSlice(1, "a", 0, nil, nil); err == nil {
		t.Fatal("nil scheduler accepted")
	}
	if _, err := m.AddSlice(1, "a", 0, sched.RoundRobin{}, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.HotSwap(1, nil); err == nil {
		t.Fatal("nil hot swap accepted")
	}
}

func TestScheduleHappyPath(t *testing.T) {
	m := NewManager()
	s, _ := m.AddSlice(1, "a", 0, sched.RoundRobin{}, nil)
	resp, err := m.Schedule(s, testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if resp.TotalPRBs() != 10 {
		t.Fatalf("allocated %d PRBs", resp.TotalPRBs())
	}
	if st := s.Stats(); st.TotalFaults != 0 || st.FallbackSlots != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFallbackOnError(t *testing.T) {
	for _, mode := range []string{"error", "over-budget", "unknown-ue"} {
		t.Run(mode, func(t *testing.T) {
			m := NewManager()
			var faults []error
			m.OnFault = func(_ uint32, err error) { faults = append(faults, err) }
			s, _ := m.AddSlice(1, "a", 0, &flakyScheduler{failures: 1, misbehave: mode}, nil)
			resp, err := m.Schedule(s, testRequest())
			if err != nil {
				t.Fatalf("fault not absorbed: %v", err)
			}
			// The slot is rescued by the fallback: full budget still granted.
			if resp.TotalPRBs() != 10 {
				t.Fatalf("fallback allocated %d PRBs", resp.TotalPRBs())
			}
			if len(faults) != 1 {
				t.Fatalf("observed %d faults", len(faults))
			}
			st := s.Stats()
			if st.TotalFaults != 1 || st.FallbackSlots != 1 || st.Quarantined {
				t.Fatalf("stats = %+v", st)
			}
		})
	}
}

func TestRecoveryResetsConsecutiveCount(t *testing.T) {
	m := NewManager()
	s, _ := m.AddSlice(1, "a", 0, &flakyScheduler{failures: 2}, nil)
	req := testRequest()
	// Two faults, then healthy: quarantine (threshold 3) must NOT trigger,
	// and later isolated faults must not either.
	for i := 0; i < 5; i++ {
		if _, err := m.Schedule(s, req); err != nil {
			t.Fatal(err)
		}
	}
	if s.Quarantined() {
		t.Fatal("quarantined despite recovery")
	}
	if st := s.Stats(); st.TotalFaults != 2 {
		t.Fatalf("faults = %d", st.TotalFaults)
	}
}

func TestQuarantineAfterConsecutiveFaults(t *testing.T) {
	m := NewManager()
	s, _ := m.AddSlice(1, "a", 0, &flakyScheduler{failures: 1000}, nil)
	req := testRequest()
	for i := 0; i < DefaultQuarantineThreshold; i++ {
		if _, err := m.Schedule(s, req); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Quarantined() {
		t.Fatal("not quarantined after threshold")
	}
	if name := s.SchedulerName(); name != "rr (quarantine)" {
		t.Fatalf("scheduler name = %q", name)
	}
	// While quarantined, the plugin is not called anymore.
	flaky := s.Scheduler().(*flakyScheduler)
	callsBefore := flaky.calls
	if _, err := m.Schedule(s, req); err != nil {
		t.Fatal(err)
	}
	if flaky.calls != callsBefore {
		t.Fatal("quarantined plugin still invoked")
	}
	// Hot swap (re-upload) clears the quarantine.
	if err := m.HotSwap(1, sched.MaxThroughput{}); err != nil {
		t.Fatal(err)
	}
	if s.Quarantined() {
		t.Fatal("quarantine survived hot swap")
	}
	if s.SchedulerName() != "mt" {
		t.Fatalf("scheduler = %q", s.SchedulerName())
	}
}

func TestCustomQuarantineThreshold(t *testing.T) {
	m := NewManager()
	m.QuarantineThreshold = 1
	s, _ := m.AddSlice(1, "a", 0, &flakyScheduler{failures: 1000}, nil)
	if _, err := m.Schedule(s, testRequest()); err != nil {
		t.Fatal(err)
	}
	if !s.Quarantined() {
		t.Fatal("threshold 1 did not quarantine after first fault")
	}
}

func TestHotSwapUnknownSlice(t *testing.T) {
	m := NewManager()
	if err := m.HotSwap(7, sched.RoundRobin{}); !errors.Is(err, ErrNoSuchSlice) {
		t.Fatalf("got %v", err)
	}
}

func TestSwapCountTracked(t *testing.T) {
	m := NewManager()
	s, _ := m.AddSlice(1, "a", 0, sched.RoundRobin{}, nil)
	for i := 0; i < 3; i++ {
		if err := m.HotSwap(1, sched.ProportionalFair{}); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Swaps != 3 {
		t.Fatalf("swaps = %d", st.Swaps)
	}
}

// TestConcurrentSwapWhileScheduling is the live-swap race: one goroutine
// schedules every slot while another hot-swaps policies. Run with -race.
func TestConcurrentSwapWhileScheduling(t *testing.T) {
	m := NewManager()
	s, _ := m.AddSlice(1, "a", 0, sched.RoundRobin{}, nil)
	req := testRequest()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		policies := []sched.IntraSlice{sched.RoundRobin{}, sched.MaxThroughput{}, sched.ProportionalFair{}}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := m.HotSwap(1, policies[i%3]); err != nil {
				t.Errorf("swap: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 2000; i++ {
		resp, err := m.Schedule(s, req)
		if err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
		if err := resp.Validate(req); err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestFallbackFailureSurfaces(t *testing.T) {
	m := NewManager()
	bad := &flakyScheduler{failures: 1 << 30}
	s, _ := m.AddSlice(1, "a", 0, bad, badFallback{})
	if _, err := m.Schedule(s, testRequest()); err == nil {
		t.Fatal("fallback failure swallowed")
	}
}

type badFallback struct{}

func (badFallback) Name() string { return "bad" }
func (badFallback) Schedule(*sched.Request) (*sched.Response, error) {
	return nil, fmt.Errorf("fallback also broken")
}

func TestAdmissionControl(t *testing.T) {
	m := NewManager()
	m.CapacityBps = 30e6
	if _, err := m.AddSlice(1, "a", 20e6, sched.RoundRobin{}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddSlice(2, "b", 15e6, sched.RoundRobin{}, nil); !errors.Is(err, ErrAdmissionDenied) {
		t.Fatalf("overcommit accepted: %v", err)
	}
	if _, err := m.AddSlice(2, "b", 10e6, sched.RoundRobin{}, nil); err != nil {
		t.Fatalf("fitting slice refused: %v", err)
	}
	// Removing a slice frees capacity.
	if err := m.RemoveSlice(1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddSlice(3, "c", 20e6, sched.RoundRobin{}, nil); err != nil {
		t.Fatalf("capacity not released: %v", err)
	}
}

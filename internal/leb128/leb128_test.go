package leb128

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestUint64RoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 300, 1 << 20, 1<<32 - 1, 1 << 32, 1<<64 - 1}
	for _, v := range cases {
		enc := AppendUint64(nil, v)
		got, n, err := Uint64(enc)
		if err != nil {
			t.Fatalf("decode %d: %v", v, err)
		}
		if got != v || n != len(enc) {
			t.Fatalf("roundtrip %d: got %d, consumed %d of %d", v, got, n, len(enc))
		}
	}
}

func TestInt64RoundTrip(t *testing.T) {
	cases := []int64{0, 1, -1, 63, 64, -64, -65, 127, 128, -9223372036854775808, 9223372036854775807}
	for _, v := range cases {
		enc := AppendInt64(nil, v)
		got, n, err := Int64(enc)
		if err != nil {
			t.Fatalf("decode %d: %v", v, err)
		}
		if got != v || n != len(enc) {
			t.Fatalf("roundtrip %d: got %d (%d bytes)", v, got, n)
		}
	}
}

func TestUint32RejectsOverflow(t *testing.T) {
	enc := AppendUint64(nil, 1<<33)
	if _, _, err := Uint32(enc); !errors.Is(err, ErrOverflow) {
		t.Fatalf("want ErrOverflow, got %v", err)
	}
}

func TestInt32RejectsOverflow(t *testing.T) {
	enc := AppendInt64(nil, 1<<40)
	if _, _, err := Int32(enc); !errors.Is(err, ErrOverflow) {
		t.Fatalf("want ErrOverflow, got %v", err)
	}
	enc = AppendInt64(nil, -(1 << 40))
	if _, _, err := Int32(enc); !errors.Is(err, ErrOverflow) {
		t.Fatalf("negative: want ErrOverflow, got %v", err)
	}
}

func TestTruncatedInput(t *testing.T) {
	enc := AppendUint64(nil, 1<<40)
	for i := 0; i < len(enc); i++ {
		if _, _, err := Uint64(enc[:i]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("prefix %d: want ErrTruncated, got %v", i, err)
		}
	}
	if _, _, err := Int64(enc[:2]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
}

func TestUint64RejectsTooLong(t *testing.T) {
	// 11 continuation bytes exceed the maximal 10-byte u64 encoding.
	b := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}
	if _, _, err := Uint64(b); !errors.Is(err, ErrOverflow) {
		t.Fatalf("want ErrOverflow, got %v", err)
	}
}

func TestUint64RejectsHighBits(t *testing.T) {
	// 10th byte may only contribute one bit.
	b := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x02}
	if _, _, err := Uint64(b); !errors.Is(err, ErrOverflow) {
		t.Fatalf("want ErrOverflow, got %v", err)
	}
}

func TestInt33Range(t *testing.T) {
	// Block types use s33: -64 must decode from a single 0x40 byte.
	v, n, err := Int33([]byte{0x40})
	if err != nil || v != -64 || n != 1 {
		t.Fatalf("0x40 => %d (%d bytes), err %v", v, n, err)
	}
	// Max s33 value.
	max := int64(1)<<32 - 1
	enc := AppendInt64(nil, max)
	if v, _, err := Int33(enc); err != nil || v != max {
		t.Fatalf("s33 max: got %d, err %v", v, err)
	}
	// One beyond must fail.
	enc = AppendInt64(nil, max+1)
	if _, _, err := Int33(enc); !errors.Is(err, ErrOverflow) {
		t.Fatalf("s33 overflow: got %v", err)
	}
}

func TestDecodeConsumesExactly(t *testing.T) {
	// Decoding must stop at the value boundary even with trailing data.
	enc := AppendUint32(nil, 624485)
	enc = append(enc, 0xAA, 0xBB)
	v, n, err := Uint32(enc)
	if err != nil || v != 624485 || n != 3 {
		t.Fatalf("got v=%d n=%d err=%v", v, n, err)
	}
}

// Property: every uint64 round-trips.
func TestQuickUint64(t *testing.T) {
	f := func(v uint64) bool {
		got, n, err := Uint64(AppendUint64(nil, v))
		return err == nil && got == v && n >= 1 && n <= 10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every int64 round-trips.
func TestQuickInt64(t *testing.T) {
	f := func(v int64) bool {
		got, _, err := Int64(AppendInt64(nil, v))
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every int32 round-trips through the 32-bit codec.
func TestQuickInt32(t *testing.T) {
	f := func(v int32) bool {
		got, _, err := Int32(AppendInt32(nil, v))
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: unsigned encodings are minimal (re-encoding the decoded value
// yields identical bytes).
func TestQuickMinimalEncoding(t *testing.T) {
	f := func(v uint64) bool {
		enc := AppendUint64(nil, v)
		enc2 := AppendUint64(nil, v)
		if len(enc) != len(enc2) {
			return false
		}
		for i := range enc {
			if enc[i] != enc2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

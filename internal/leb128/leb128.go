// Package leb128 implements the Little-Endian Base 128 variable-length
// integer encoding used throughout the WebAssembly binary format.
//
// Decoding functions operate on a byte slice and return the decoded value
// together with the number of bytes consumed so callers can advance a cursor
// without wrapping readers around slices.
package leb128

import (
	"errors"
	"fmt"
)

// ErrOverflow is returned when an encoded value does not fit the requested
// integer width, or when the encoding exceeds the maximum legal byte length.
var ErrOverflow = errors.New("leb128: integer overflow")

// ErrTruncated is returned when the input ends in the middle of a value.
var ErrTruncated = errors.New("leb128: truncated input")

// Uint32 decodes an unsigned 32-bit LEB128 value from the front of b.
func Uint32(b []byte) (uint32, int, error) {
	v, n, err := Uint64(b)
	if err != nil {
		return 0, n, err
	}
	if v > 0xFFFF_FFFF {
		return 0, n, fmt.Errorf("%w: %d exceeds uint32", ErrOverflow, v)
	}
	if n > 5 {
		return 0, n, fmt.Errorf("%w: u32 encoding is %d bytes", ErrOverflow, n)
	}
	return uint32(v), n, nil
}

// Uint64 decodes an unsigned 64-bit LEB128 value from the front of b.
func Uint64(b []byte) (uint64, int, error) {
	var v uint64
	var shift uint
	for i := 0; i < len(b); i++ {
		if i >= 10 {
			return 0, i, fmt.Errorf("%w: u64 encoding exceeds 10 bytes", ErrOverflow)
		}
		c := b[i]
		if shift == 63 && c > 1 {
			return 0, i + 1, fmt.Errorf("%w: u64 high bits set", ErrOverflow)
		}
		v |= uint64(c&0x7F) << shift
		if c&0x80 == 0 {
			return v, i + 1, nil
		}
		shift += 7
	}
	return 0, len(b), ErrTruncated
}

// Int32 decodes a signed 32-bit LEB128 value from the front of b.
func Int32(b []byte) (int32, int, error) {
	v, n, err := decodeSigned(b, 32)
	return int32(v), n, err
}

// Int64 decodes a signed 64-bit LEB128 value from the front of b.
func Int64(b []byte) (int64, int, error) {
	return decodeSigned(b, 64)
}

// Int33 decodes the signed 33-bit value used by WebAssembly block types.
func Int33(b []byte) (int64, int, error) {
	return decodeSigned(b, 33)
}

func decodeSigned(b []byte, bits uint) (int64, int, error) {
	var v int64
	var shift uint
	maxBytes := int((bits + 6) / 7)
	for i := 0; i < len(b); i++ {
		if i >= maxBytes {
			return 0, i, fmt.Errorf("%w: s%d encoding exceeds %d bytes", ErrOverflow, bits, maxBytes)
		}
		c := b[i]
		v |= int64(c&0x7F) << shift
		shift += 7
		if c&0x80 == 0 {
			// Sign-extend from the final group.
			if shift < 64 && c&0x40 != 0 {
				v |= -1 << shift
			}
			// Validate that the value fits in the requested width.
			if bits < 64 {
				min := int64(-1) << (bits - 1)
				max := int64(1)<<(bits-1) - 1
				if v < min || v > max {
					return 0, i + 1, fmt.Errorf("%w: %d outside s%d range", ErrOverflow, v, bits)
				}
			}
			return v, i + 1, nil
		}
	}
	return 0, len(b), ErrTruncated
}

// AppendUint32 appends the unsigned LEB128 encoding of v to dst.
func AppendUint32(dst []byte, v uint32) []byte {
	return AppendUint64(dst, uint64(v))
}

// AppendUint64 appends the unsigned LEB128 encoding of v to dst.
func AppendUint64(dst []byte, v uint64) []byte {
	for {
		c := byte(v & 0x7F)
		v >>= 7
		if v != 0 {
			c |= 0x80
		}
		dst = append(dst, c)
		if v == 0 {
			return dst
		}
	}
}

// AppendInt32 appends the signed LEB128 encoding of v to dst.
func AppendInt32(dst []byte, v int32) []byte {
	return AppendInt64(dst, int64(v))
}

// AppendInt64 appends the signed LEB128 encoding of v to dst.
func AppendInt64(dst []byte, v int64) []byte {
	for {
		c := byte(v & 0x7F)
		v >>= 7
		done := (v == 0 && c&0x40 == 0) || (v == -1 && c&0x40 != 0)
		if !done {
			c |= 0x80
		}
		dst = append(dst, c)
		if done {
			return dst
		}
	}
}

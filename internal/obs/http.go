package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// NewMux builds the exposition mux served by cmd/gnb and cmd/ric:
//
//	/metrics      Prometheus text exposition of reg
//	/debug/slots  last N slot traces as JSON (?n=, default 64)
//	/debug/pprof  stdlib profiling endpoints
//
// ring may be nil, in which case /debug/slots serves an empty list.
func NewMux(reg *Registry, ring *TraceRing) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(reg))
	mux.Handle("/debug/slots", SlotsHandler(ring))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// MetricsHandler serves reg in the Prometheus text exposition format.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
}

// slotsResponse is the /debug/slots payload.
type slotsResponse struct {
	Count int         `json:"count"`
	Slots []SlotEvent `json:"slots"`
}

// SlotsHandler serves the last N events of ring as JSON. N comes from the
// ?n= query parameter (default 64, capped by ring size).
func SlotsHandler(ring *TraceRing) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := 64
		if q := req.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 1 {
				http.Error(w, "n must be a positive integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		var events []SlotEvent
		if ring != nil {
			events = ring.Last(n)
		}
		if events == nil {
			events = []SlotEvent{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(slotsResponse{Count: len(events), Slots: events})
	})
}

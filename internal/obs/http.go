package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"

	"waran/internal/obs/trace"
)

// MaxSlotsQuery is the hard upper bound on the ?n= parameter of
// /debug/slots: scrapes cannot ask for more events than this regardless of
// ring size, so a fat-fingered query cannot turn into a giant allocation.
const MaxSlotsQuery = 4096

// MuxOption extends the exposition mux with optional debug surfaces.
type MuxOption func(*http.ServeMux)

// WithTracer mounts the causal span tree at /debug/trace (Chrome
// trace-viewer JSON; see trace.Handler for the query parameters). A nil
// tracer serves empty traces rather than 404s, so dashboards can probe
// unconditionally.
func WithTracer(t *trace.Tracer) MuxOption {
	return func(mux *http.ServeMux) {
		mux.Handle("/debug/trace", trace.Handler(t))
	}
}

// WasmProfileSource is the slice of the wasm profiler the mux needs —
// satisfied by *wasm.Profile — kept as an interface so obs stays free of a
// wasm dependency.
type WasmProfileSource interface {
	// ProfileJSON returns the JSON-marshalable profile snapshot.
	ProfileJSON() any
	// Folded returns flamegraph.pl-compatible folded stacks.
	Folded() string
}

// WithWasmProfile mounts the per-function wasm fuel profile at
// /debug/wasm/profile: JSON by default, folded stacks (feed straight into
// flamegraph.pl) with ?format=folded.
func WithWasmProfile(src WasmProfileSource) MuxOption {
	return func(mux *http.ServeMux) {
		mux.Handle("/debug/wasm/profile", WasmProfileHandler(src))
	}
}

// NewMux builds the exposition mux served by cmd/gnb and cmd/ric:
//
//	/metrics             Prometheus text exposition of reg
//	/debug/metrics.json  the same registry as structured JSON
//	/debug/slots         last N slot traces as JSON (?n=, ?cell=)
//	/debug/pprof         stdlib profiling endpoints
//
// plus whatever the options mount (/debug/trace, /debug/wasm/profile).
// ring may be nil, in which case /debug/slots serves an empty list.
func NewMux(reg *Registry, ring *TraceRing, opts ...MuxOption) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(reg))
	mux.Handle("/debug/metrics.json", MetricsJSONHandler(reg))
	mux.Handle("/debug/slots", SlotsHandler(ring))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, opt := range opts {
		opt(mux)
	}
	return mux
}

// MetricsHandler serves reg in the Prometheus text exposition format.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
}

// MetricsJSONHandler serves reg.Snapshot() as indented JSON — the same
// series the Prometheus endpoint exposes, but structured (histograms keep
// their buckets, JSON-capable instruments their native shape) for tooling
// that would otherwise re-parse the text format.
func MetricsJSONHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Snapshot())
	})
}

// WasmProfileHandler serves a wasm fuel profile: JSON by default, folded
// stacks as text with ?format=folded. A nil src serves an empty profile.
func WasmProfileHandler(src WasmProfileSource) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "folded" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if src != nil {
				_, _ = w.Write([]byte(src.Folded()))
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if src == nil {
			_ = enc.Encode(struct{}{})
			return
		}
		_ = enc.Encode(src.ProfileJSON())
	})
}

// slotsResponse is the /debug/slots payload.
type slotsResponse struct {
	Count int         `json:"count"`
	Slots []SlotEvent `json:"slots"`
}

// SlotsHandler serves the last N events of ring as JSON. N comes from the
// ?n= query parameter (default 64, hard-capped at MaxSlotsQuery); ?cell=
// restricts the result to one cell's events (the N most recent matches).
func SlotsHandler(ring *TraceRing) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := 64
		if q := req.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 1 {
				http.Error(w, "n must be a positive integer", http.StatusBadRequest)
				return
			}
			if v > MaxSlotsQuery {
				v = MaxSlotsQuery
			}
			n = v
		}
		cell := -1
		if q := req.URL.Query().Get("cell"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, "cell must be a non-negative integer", http.StatusBadRequest)
				return
			}
			cell = v
		}
		var events []SlotEvent
		if ring != nil {
			if cell < 0 {
				events = ring.Last(n)
			} else {
				// Filter over the whole ring, then keep the n most recent
				// matches: a busy 64-cell group must not starve one cell's
				// view just because other cells dominate the tail.
				all := ring.Last(0)
				for _, ev := range all {
					if ev.Cell == cell {
						events = append(events, ev)
					}
				}
				if len(events) > n {
					events = events[len(events)-n:]
				}
			}
		}
		if events == nil {
			events = []SlotEvent{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(slotsResponse{Count: len(events), Slots: events})
	})
}

package obs

import "sync"

// SliceTrace is one slice's share of a slot: which scheduler ran, what it
// granted, and what it cost.
type SliceTrace struct {
	Slice    string `json:"slice"`
	Sched    string `json:"sched"`
	PRBs     int    `json:"prbs"`
	Bits     int    `json:"bits"`
	Fallback bool   `json:"fallback,omitempty"`
	FuelUsed int64  `json:"fuel_used,omitempty"`
	WallUs   int64  `json:"wall_us"`
}

// SlotEvent is the structured trace of one slot on one cell — everything
// the deadline analysis needs to explain a late slot after the fact.
type SlotEvent struct {
	Slot       uint64       `json:"slot"`
	Cell       int          `json:"cell"`
	WallUs     int64        `json:"wall_us"`
	DeadlineUs int64        `json:"deadline_us,omitempty"`
	Overrun    bool         `json:"overrun,omitempty"`
	Fallback   bool         `json:"fallback,omitempty"`
	Slices     []SliceTrace `json:"slices,omitempty"`
	E2Sent     uint64       `json:"e2_sent,omitempty"`
	E2Dropped  uint64       `json:"e2_dropped,omitempty"`
}

// TraceRing is a fixed-size ring buffer of SlotEvents, safe for concurrent
// producers (one per cell worker) and readers (the /debug/slots scrape).
// Memory is bounded: once full, each Add evicts the oldest event.
type TraceRing struct {
	mu   sync.Mutex
	buf  []SlotEvent
	next int
	full bool
}

// NewTraceRing creates a ring holding the last n slot events (n >= 1).
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = 1
	}
	return &TraceRing{buf: make([]SlotEvent, n)}
}

// Add records one slot event, evicting the oldest when full.
func (r *TraceRing) Add(ev SlotEvent) {
	r.mu.Lock()
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// AnnotateLast runs fn on the most recent event for cell, if one is still
// in the ring — used by slot drivers to backfill fields (E2 sends/drops)
// that are only known after the cell step returns. Reports whether an
// event was found.
func (r *TraceRing) AnnotateLast(cell int, fn func(*SlotEvent)) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.buf)
	if !r.full {
		n = r.next
	}
	for i := 0; i < n; i++ {
		idx := r.next - 1 - i
		if idx < 0 {
			idx += len(r.buf)
		}
		if r.buf[idx].Cell == cell {
			fn(&r.buf[idx])
			return true
		}
	}
	return false
}

// Len reports how many events are currently buffered.
func (r *TraceRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Last returns up to n most recent events, oldest first. Slices inside the
// events are shared with producers only until the ring wraps, so callers
// must treat the result as read-only.
func (r *TraceRing) Last(n int) []SlotEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	have := len(r.buf)
	if !r.full {
		have = r.next
	}
	if n <= 0 || n > have {
		n = have
	}
	out := make([]SlotEvent, n)
	for i := 0; i < n; i++ {
		idx := r.next - n + i
		if idx < 0 {
			idx += len(r.buf)
		}
		out[i] = r.buf[idx]
	}
	return out
}

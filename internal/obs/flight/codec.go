package flight

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"unicode/utf8"
)

// The journal wire codec: a compact, length-delimited binary form of Event
// used by /debug/flight/journal?format=binary so operators can stream large
// journal windows without JSON overhead. The format is append-only versioned
// by the class numbering (see Class): every field is a uvarint except the
// class byte and the two strings, which are uvarint-length-prefixed bytes.
//
// Per event:
//
//	uvarint seq
//	uvarint time_ns   (unix nanos, always positive in practice)
//	byte    class
//	uvarint len(plane)  || plane bytes
//	uint32  cell (uvarint)
//	uvarint slot
//	uvarint len(detail) || detail bytes
//	uint64  value (IEEE-754 bits, uvarint)
//
// Decoding is hardened against malformed input (fuzzed by FuzzEventCodec):
// string lengths are bounded, the class range is validated, and every read
// checks the remaining buffer.

// maxCodecString bounds decoded string lengths so a corrupt length prefix
// cannot become a giant allocation.
const maxCodecString = 1 << 12

// ErrCodecTruncated reports a buffer that ended mid-event.
var ErrCodecTruncated = errors.New("flight: truncated event")

// AppendEvent appends the binary form of ev to dst and returns the extended
// slice.
func AppendEvent(dst []byte, ev *Event) []byte {
	dst = binary.AppendUvarint(dst, ev.Seq)
	dst = binary.AppendUvarint(dst, uint64(ev.TimeNs))
	dst = append(dst, byte(ev.Class))
	dst = binary.AppendUvarint(dst, uint64(len(ev.Plane)))
	dst = append(dst, ev.Plane...)
	dst = binary.AppendUvarint(dst, uint64(ev.Cell))
	dst = binary.AppendUvarint(dst, ev.Slot)
	dst = binary.AppendUvarint(dst, uint64(len(ev.Detail)))
	dst = append(dst, ev.Detail...)
	dst = binary.AppendUvarint(dst, math.Float64bits(ev.Value))
	return dst
}

// DecodeEvent decodes one event from the front of b, returning the event
// and the number of bytes consumed.
func DecodeEvent(b []byte) (Event, int, error) {
	var ev Event
	off := 0
	next := func() (uint64, error) {
		v, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return 0, ErrCodecTruncated
		}
		off += n
		return v, nil
	}
	str := func() (string, error) {
		ln, err := next()
		if err != nil {
			return "", err
		}
		if ln > maxCodecString {
			return "", fmt.Errorf("flight: string length %d exceeds codec bound", ln)
		}
		if uint64(len(b)-off) < ln {
			return "", ErrCodecTruncated
		}
		s := string(b[off : off+int(ln)])
		off += int(ln)
		if !utf8.ValidString(s) {
			return "", fmt.Errorf("flight: string is not valid UTF-8")
		}
		return s, nil
	}

	seq, err := next()
	if err != nil {
		return ev, 0, err
	}
	tns, err := next()
	if err != nil {
		return ev, 0, err
	}
	if tns > math.MaxInt64 {
		return ev, 0, fmt.Errorf("flight: timestamp overflows int64")
	}
	if off >= len(b) {
		return ev, 0, ErrCodecTruncated
	}
	class := Class(b[off])
	off++
	if class >= numClasses {
		return ev, 0, fmt.Errorf("flight: event class %d out of range", class)
	}
	plane, err := str()
	if err != nil {
		return ev, 0, err
	}
	cell, err := next()
	if err != nil {
		return ev, 0, err
	}
	if cell > math.MaxUint32 {
		return ev, 0, fmt.Errorf("flight: cell %d overflows uint32", cell)
	}
	slot, err := next()
	if err != nil {
		return ev, 0, err
	}
	detail, err := str()
	if err != nil {
		return ev, 0, err
	}
	bits, err := next()
	if err != nil {
		return ev, 0, err
	}
	ev = Event{
		Seq: seq, TimeNs: int64(tns), Class: class, Plane: plane,
		Cell: uint32(cell), Slot: slot, Detail: detail,
		Value: math.Float64frombits(bits),
	}
	return ev, off, nil
}

// EncodeJournal serializes events back-to-back in the binary codec.
func EncodeJournal(events []Event) []byte {
	var dst []byte
	for i := range events {
		dst = AppendEvent(dst, &events[i])
	}
	return dst
}

// DecodeJournal decodes a back-to-back event stream produced by
// EncodeJournal, stopping at the first malformed event.
func DecodeJournal(b []byte) ([]Event, error) {
	var out []Event
	for len(b) > 0 {
		ev, n, err := DecodeEvent(b)
		if err != nil {
			return out, err
		}
		out = append(out, ev)
		b = b[n:]
	}
	return out, nil
}

package flight

import (
	"sync"
	"testing"
)

func TestRecorderTailAndWrap(t *testing.T) {
	r := NewRecorder(8)
	if r.Cap() != 8 {
		t.Fatalf("cap = %d, want 8", r.Cap())
	}
	for i := 0; i < 20; i++ {
		r.Record(Event{Class: EvShed, Plane: PlaneRIC, Slot: uint64(i), TimeNs: int64(i + 1)})
	}
	if r.Seq() != 20 {
		t.Fatalf("seq = %d, want 20", r.Seq())
	}
	tail := r.Tail(0)
	if len(tail) != 8 {
		t.Fatalf("tail len = %d, want ring cap 8", len(tail))
	}
	for i, ev := range tail {
		if want := uint64(13 + i); ev.Seq != want {
			t.Fatalf("tail[%d].Seq = %d, want %d", i, ev.Seq, want)
		}
	}
	tail3 := r.Tail(3)
	if len(tail3) != 3 || tail3[0].Seq != 18 || tail3[2].Seq != 20 {
		t.Fatalf("tail(3) = %+v, want seqs 18..20", tail3)
	}
	if got := r.Count(EvShed); got != 20 {
		t.Fatalf("Count(EvShed) = %d, want 20 (overwrite-proof)", got)
	}
}

func TestRecorderSnapshotSince(t *testing.T) {
	r := NewRecorder(16)
	for i := 0; i < 5; i++ {
		r.Record(Event{Class: EvAssocUp, TimeNs: 1})
	}
	all := r.SnapshotSince(0)
	if len(all) != 5 {
		t.Fatalf("since(0) len = %d, want 5", len(all))
	}
	inc := r.SnapshotSince(3)
	if len(inc) != 2 || inc[0].Seq != 4 || inc[1].Seq != 5 {
		t.Fatalf("since(3) = %+v, want seqs 4,5", inc)
	}
	if got := r.SnapshotSince(5); len(got) != 0 {
		t.Fatalf("since(5) len = %d, want 0", len(got))
	}
	// The empty result must be the shared slice, not a fresh allocation.
	if allocs := testing.AllocsPerRun(100, func() { _ = r.SnapshotSince(99) }); allocs != 0 {
		t.Fatalf("empty SnapshotSince allocates %.1f per call, want shared empty slice", allocs)
	}
}

func TestNilRecorderIsDisabled(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.Record(Event{Class: EvShed}) // must not panic
	r.SetTriggers(EvShed)
	if r.Seq() != 0 || r.Cap() != 0 || r.Count(EvShed) != 0 {
		t.Fatal("nil recorder accessors should be zero")
	}
	if got := r.Tail(10); len(got) != 0 {
		t.Fatalf("nil Tail = %v", got)
	}
	if r.TriggerC() != nil {
		t.Fatal("nil recorder TriggerC should be nil")
	}
}

// TestNilRecorderRecordAddsZeroAllocs pins the disabled fast path: recording
// into a nil recorder is one pointer comparison, no allocations.
func TestNilRecorderRecordAddsZeroAllocs(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(200, func() {
		r.Record(Event{Class: EvSlotDeadlineMiss, Plane: PlaneGNB, Cell: 3, Slot: 77})
	})
	if allocs != 0 {
		t.Fatalf("nil recorder Record allocates %.1f per call, want 0", allocs)
	}
}

func TestRecorderTriggers(t *testing.T) {
	r := NewRecorder(8)
	r.SetTriggers(EvBreakerOpen, EvBrownoutShift)
	r.Record(Event{Class: EvShed, TimeNs: 1}) // not a trigger
	select {
	case c := <-r.TriggerC():
		t.Fatalf("unexpected trigger %v", c)
	default:
	}
	r.Record(Event{Class: EvBreakerOpen, TimeNs: 1})
	select {
	case c := <-r.TriggerC():
		if c != EvBreakerOpen {
			t.Fatalf("trigger = %v, want EvBreakerOpen", c)
		}
	default:
		t.Fatal("trigger-class event did not poke the channel")
	}
	// A full channel must never block the writer.
	for i := 0; i < 100; i++ {
		r.Record(Event{Class: EvBrownoutShift, TimeNs: 1})
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(Event{Class: EvShed, Plane: PlaneRIC, Cell: uint32(g), TimeNs: 1})
			}
		}(g)
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				for _, ev := range r.Tail(16) {
					if ev.Seq == 0 {
						t.Error("published event with zero seq")
						return
					}
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-readerDone
	if r.Seq() != 2000 {
		t.Fatalf("seq = %d, want 2000", r.Seq())
	}
	if got := r.Count(EvShed); got != 2000 {
		t.Fatalf("count = %d, want 2000", got)
	}
}

func TestClassRoundTrip(t *testing.T) {
	for _, c := range Classes() {
		got, ok := ParseClass(c.String())
		if !ok || got != c {
			t.Fatalf("ParseClass(%q) = %v,%v", c.String(), got, ok)
		}
	}
	if _, ok := ParseClass("no-such-class"); ok {
		t.Fatal("ParseClass accepted garbage")
	}
}

package flight

import "fmt"

// Summary is the experiment-facing digest of a recorder + capturer pair:
// what the journal saw, what landed on disk, and whether the classes an
// experiment expected to trigger actually appear in the captured bundles.
// Experiments embed it in their JSON results so a chaos run's flight
// evidence rides along with its metrics.
type Summary struct {
	// Events is the journal's total event count (Recorder.Seq).
	Events uint64 `json:"events"`
	// Classes counts journaled events per class name, omitting zeroes.
	Classes map[string]uint64 `json:"classes,omitempty"`
	// Bundles is the capturer's on-disk index in capture order.
	Bundles []BundleInfo `json:"bundles"`
	// Coverage counts, per wanted class name, the events of that class
	// found across every captured bundle's journal window.
	Coverage map[string]int `json:"coverage,omitempty"`
}

// Summarize digests rec and cap for an experiment result and verifies
// bundle coverage: ok is true when at least one bundle was captured and
// every wanted class appears in at least one bundle's journal window.
// Experiments armed with a flight knob fail their run when ok is false —
// the storm they injected should have left exactly this evidence.
func Summarize(rec *Recorder, cap *Capturer, wanted ...Class) (*Summary, bool, error) {
	s := &Summary{}
	if rec.Enabled() {
		s.Events = rec.Seq()
		s.Classes = make(map[string]uint64)
		for _, cl := range Classes() {
			if n := rec.Count(cl); n > 0 {
				s.Classes[cl.String()] = n
			}
		}
	}
	if cap == nil {
		return s, false, nil
	}
	s.Bundles = cap.Index()
	s.Coverage = make(map[string]int, len(wanted))
	for _, cl := range wanted {
		s.Coverage[cl.String()] = 0
	}
	for _, info := range s.Bundles {
		b, err := ReadBundle(info.File)
		if err != nil {
			return s, false, fmt.Errorf("flight: summarize bundle %s: %w", info.File, err)
		}
		for cl, evs := range b.FindClasses(wanted...) {
			s.Coverage[cl.String()] += len(evs)
		}
	}
	ok := len(s.Bundles) > 0
	for _, n := range s.Coverage {
		if n == 0 {
			ok = false
		}
	}
	return s, ok, nil
}

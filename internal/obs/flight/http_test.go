package flight

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"waran/internal/obs"
)

func TestFlightHandler(t *testing.T) {
	rec := NewRecorder(64)
	ds := NewDetectorSet(rec)
	ds.MustAdd(SLO{Name: "x", Value: func() float64 { return 0 }, Budget: 1}, DetectorConfig{})
	cap := testCapturer(t, rec, nil)
	rec.Record(Event{Class: EvShed, Plane: PlaneRIC, Detail: "overflow", TimeNs: 1})
	if _, err := cap.CaptureNow("manual"); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(Handler(rec, ds, cap))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "?n=10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if !st.Enabled || len(st.Journal) < 1 || len(st.Detectors) != 1 || len(st.Bundles) != 1 {
		t.Fatalf("status = %+v", st)
	}
	if st.Journal[0].Class != EvShed {
		t.Fatalf("journal[0] = %+v", st.Journal[0])
	}

	if resp, _ := http.Get(srv.URL + "?n=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad n accepted: %d", resp.StatusCode)
	}
}

func TestFlightHandlerNilRecorder(t *testing.T) {
	srv := httptest.NewServer(Handler(nil, nil, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Enabled {
		t.Fatal("nil recorder reports enabled")
	}
}

func TestJournalHandlerBinary(t *testing.T) {
	rec := NewRecorder(64)
	rec.Record(Event{Class: EvShed, Plane: PlaneRIC, Detail: "overflow", TimeNs: 1})
	rec.Record(Event{Class: EvBreakerOpen, Plane: PlaneGNB, Detail: "xapp=slow", TimeNs: 2})
	srv := httptest.NewServer(JournalHandler(rec))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "?format=binary")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	events, err := DecodeJournal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[1].Class != EvBreakerOpen {
		t.Fatalf("binary journal = %+v", events)
	}

	resp, err = http.Get(srv.URL + "?since=1")
	if err != nil {
		t.Fatal(err)
	}
	var inc []Event
	if err := json.NewDecoder(resp.Body).Decode(&inc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(inc) != 1 || inc[0].Seq != 2 {
		t.Fatalf("since=1 = %+v", inc)
	}
}

func TestBundleHandlerDownload(t *testing.T) {
	rec := NewRecorder(64)
	cap := testCapturer(t, rec, nil)
	rec.Record(Event{Class: EvBrownoutShift, Detail: "normal->degraded", TimeNs: 1})
	if _, err := cap.CaptureNow("incident"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(BundleHandler(cap))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "?seq=1")
	if err != nil {
		t.Fatal(err)
	}
	var b Bundle
	if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if b.Seq != 1 || len(b.Journal) != 1 || b.Journal[0].Detail != "normal->degraded" {
		t.Fatalf("downloaded bundle = %+v", b)
	}
	if resp, _ := http.Get(srv.URL + "?seq=99"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing bundle served: %d", resp.StatusCode)
	}
	if resp, _ := http.Get(srv.URL); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing seq accepted: %d", resp.StatusCode)
	}
}

// TestConcurrentScrapeWhileJournaling is the -race coverage for the obs mux
// under a live flight recorder: /debug/slots, /debug/metrics.json and
// /debug/flight are scraped concurrently while slot events and journal
// events stream in.
func TestConcurrentScrapeWhileJournaling(t *testing.T) {
	reg := obs.NewRegistry()
	ring := obs.NewTraceRing(256)
	rec := NewRecorder(256)
	rec.Register(reg)
	ds := NewDetectorSet(rec)
	ds.MustAdd(SLO{Name: "x", Value: func() float64 { return 1 }, Budget: 10}, DetectorConfig{})
	cap := testCapturer(t, rec, func(c *CapturerConfig) { c.Registry = reg })

	mux := obs.NewMux(reg, ring, MuxOption(rec, ds, cap))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	stop := make(chan struct{})
	var writers sync.WaitGroup
	// Writer 1: slot events into the obs trace ring + a counter.
	writers.Add(1)
	go func() {
		defer writers.Done()
		c := reg.Counter("waran_scrape_test_total", "test stimulus")
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				ring.Add(obs.SlotEvent{Slot: uint64(i), Cell: i % 4})
				c.Inc()
			}
		}
	}()
	// Writer 2: journal events, some through a capture.
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				rec.Record(Event{Class: EvShed, Plane: PlaneRIC, Slot: uint64(i), TimeNs: 1})
				if i%64 == 0 {
					_, _ = cap.Capture("load")
				}
			}
		}
	}()

	var scrapers sync.WaitGroup
	for _, path := range []string{"/debug/slots?n=32", "/debug/metrics.json", "/debug/flight?n=32", "/metrics"} {
		for k := 0; k < 2; k++ {
			scrapers.Add(1)
			go func(path string) {
				defer scrapers.Done()
				for i := 0; i < 25; i++ {
					resp, err := http.Get(srv.URL + path)
					if err != nil {
						t.Errorf("scrape %s: %v", path, err)
						return
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("scrape %s: status %d", path, resp.StatusCode)
						return
					}
					if strings.HasSuffix(path, "metrics.json") && !strings.Contains(string(body), obs.SnapshotHeaderKey) {
						t.Errorf("metrics.json missing snapshot header")
						return
					}
				}
			}(path)
		}
	}
	scrapers.Wait()
	close(stop)
	writers.Wait()
}

package flight

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"waran/internal/obs"
	"waran/internal/obs/trace"
)

// Bundle is one diagnostic capture: everything an operator needs to answer
// "what happened in the window around the incident", serialized as a single
// JSON file.
type Bundle struct {
	// Seq is the capturer-assigned bundle number (1-based).
	Seq uint64 `json:"seq"`
	// CapturedNs is the wall-clock unix-nanos of the capture.
	CapturedNs int64 `json:"captured_unix_nanos"`
	// Reason says what pulled the trigger: "class:<event class>",
	// "detector:<slo name>", or an explicit caller reason.
	Reason string `json:"reason"`
	// Suppressed counts triggers folded into this bundle by debounce since
	// the previous capture.
	Suppressed uint64 `json:"suppressed_since_last,omitempty"`
	// Journal is the incident's journal window (events since the previous
	// bundle, bounded by the recorder ring).
	Journal []Event `json:"journal"`
	// JournalGap is set when the ring overwrote events between this bundle
	// and the previous one (the first journal Seq is not contiguous).
	JournalGap bool `json:"journal_gap,omitempty"`
	// Detectors is every SLO detector's state at capture time.
	Detectors []DetectorState `json:"detectors,omitempty"`
	// Metrics is the obs registry snapshot (with its _snapshot header, so
	// two bundles' metrics diff into rates).
	Metrics map[string]any `json:"metrics,omitempty"`
	// Spans holds per-plane trace spans published since the previous
	// bundle (SnapshotSince cursors keep consecutive bundles disjoint).
	Spans map[string][]*trace.Span `json:"spans,omitempty"`
	// WasmProfile is the fuel profiler snapshot, when profiling is on.
	WasmProfile any `json:"wasm_profile,omitempty"`
	// Goroutines is the full goroutine dump.
	Goroutines string `json:"goroutines,omitempty"`
}

// BundleInfo is one index row of the retained-bundle index, served at
// /debug/flight.
type BundleInfo struct {
	Seq        uint64 `json:"seq"`
	CapturedNs int64  `json:"captured_unix_nanos"`
	Reason     string `json:"reason"`
	File       string `json:"file"`
	Bytes      int64  `json:"bytes"`
	Events     int    `json:"events"`
}

// CapturerConfig wires a Capturer to its sources and bounds its disk use.
type CapturerConfig struct {
	// Dir is the directory bundles are written into (created if missing).
	Dir string
	// MaxBundles caps retained bundle files; the oldest is deleted when
	// the cap is exceeded. Default 8.
	MaxBundles int
	// Debounce suppresses captures closer than this to the previous one
	// (the suppressed count is folded into the next bundle). Default 5s.
	Debounce time.Duration
	// GoroutineDump bounds the goroutine dump size in bytes (0 = default
	// 1 MiB, negative = omit the dump).
	GoroutineDump int

	// Registry, Detectors, Tracer and Profile are the optional snapshot
	// sources; any of them may be nil.
	Registry  *obs.Registry
	Detectors *DetectorSet
	Tracer    *trace.Tracer
	Profile   obs.WasmProfileSource

	// Now is the clock (nil = time.Now), injectable for tests.
	Now func() time.Time
}

// Capturer turns trigger pokes into bundles on disk. One goroutine (Run)
// consumes the recorder's trigger channel; explicit captures go through
// CaptureNow.
type Capturer struct {
	rec *Recorder
	cfg CapturerConfig

	mu          sync.Mutex
	bundleSeq   uint64
	lastCapture time.Time
	suppressed  uint64
	journalSeq  uint64            // last journal seq included in a bundle
	spanCursor  map[string]uint64 // plane -> last span ID included
	index       []BundleInfo
}

// NewCapturer builds a capturer for rec, creating cfg.Dir.
func NewCapturer(rec *Recorder, cfg CapturerConfig) (*Capturer, error) {
	if rec == nil {
		return nil, fmt.Errorf("flight: capturer needs a recorder")
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("flight: capturer needs a bundle directory")
	}
	if cfg.MaxBundles <= 0 {
		cfg.MaxBundles = 8
	}
	if cfg.Debounce <= 0 {
		cfg.Debounce = 5 * time.Second
	}
	if cfg.GoroutineDump == 0 {
		cfg.GoroutineDump = 1 << 20
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("flight: bundle dir: %w", err)
	}
	return &Capturer{rec: rec, cfg: cfg, spanCursor: make(map[string]uint64)}, nil
}

// Run consumes trigger pokes until stop closes. Debounced triggers are
// counted, not dropped: the next bundle reports how many it folded in.
func (c *Capturer) Run(stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case class := <-c.rec.TriggerC():
			_, _ = c.Capture("class:" + class.String())
		}
	}
}

// Capture captures a bundle unless the debounce window suppresses it.
// Returns (nil, nil) when suppressed.
func (c *Capturer) Capture(reason string) (*Bundle, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	if !c.lastCapture.IsZero() && now.Sub(c.lastCapture) < c.cfg.Debounce {
		c.suppressed++
		return nil, nil
	}
	return c.captureLocked(now, reason)
}

// CaptureNow captures unconditionally (explicit operator/experiment ask;
// debounce does not apply, but the suppressed count is still folded in).
func (c *Capturer) CaptureNow(reason string) (*Bundle, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.captureLocked(c.cfg.Now(), reason)
}

func (c *Capturer) captureLocked(now time.Time, reason string) (*Bundle, error) {
	c.bundleSeq++
	b := &Bundle{
		Seq:        c.bundleSeq,
		CapturedNs: now.UnixNano(),
		Reason:     reason,
		Suppressed: c.suppressed,
	}
	c.suppressed = 0
	c.lastCapture = now

	b.Journal = c.rec.SnapshotSince(c.journalSeq)
	if len(b.Journal) > 0 {
		b.JournalGap = c.journalSeq != 0 && b.Journal[0].Seq != c.journalSeq+1
		c.journalSeq = b.Journal[len(b.Journal)-1].Seq
	}
	if c.cfg.Detectors != nil {
		b.Detectors = c.cfg.Detectors.States()
	}
	if c.cfg.Registry != nil {
		b.Metrics = c.cfg.Registry.Snapshot()
	}
	if c.cfg.Tracer != nil {
		b.Spans = make(map[string][]*trace.Span)
		for _, plane := range c.cfg.Tracer.Planes() {
			ring := c.cfg.Tracer.Ring(plane)
			spans := ring.SnapshotSince(c.spanCursor[plane])
			if len(spans) > 0 {
				c.spanCursor[plane] = spans[len(spans)-1].SpanID
				b.Spans[plane] = spans
			}
		}
	}
	if c.cfg.Profile != nil {
		b.WasmProfile = c.cfg.Profile.ProfileJSON()
	}
	if c.cfg.GoroutineDump > 0 {
		buf := make([]byte, c.cfg.GoroutineDump)
		b.Goroutines = string(buf[:runtime.Stack(buf, true)])
	}

	info, err := c.writeLocked(b)
	if err != nil {
		return nil, err
	}
	c.index = append(c.index, info)
	c.pruneLocked()
	// The capture itself is journal-worthy: the NEXT bundle's window shows
	// when and why this one was cut. Recorded after the journal snapshot
	// so a bundle never contains its own capture event.
	c.rec.Record(Event{
		Class: EvBundleCaptured, Plane: PlaneFlight, TimeNs: now.UnixNano(),
		Detail: filepath.Base(info.File),
	})
	return b, nil
}

// sanitizeReason keeps bundle file names shell- and URL-friendly.
func sanitizeReason(reason string) string {
	var sb strings.Builder
	for _, r := range reason {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			sb.WriteRune(r)
		default:
			sb.WriteByte('-')
		}
	}
	s := sb.String()
	if len(s) > 48 {
		s = s[:48]
	}
	if s == "" {
		s = "manual"
	}
	return s
}

func (c *Capturer) writeLocked(b *Bundle) (BundleInfo, error) {
	name := fmt.Sprintf("bundle-%06d-%s.json", b.Seq, sanitizeReason(b.Reason))
	path := filepath.Join(c.cfg.Dir, name)
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return BundleInfo{}, fmt.Errorf("flight: marshal bundle: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return BundleInfo{}, fmt.Errorf("flight: write bundle: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return BundleInfo{}, fmt.Errorf("flight: publish bundle: %w", err)
	}
	return BundleInfo{
		Seq: b.Seq, CapturedNs: b.CapturedNs, Reason: b.Reason,
		File: path, Bytes: int64(len(data)), Events: len(b.Journal),
	}, nil
}

// pruneLocked enforces the retained-bundle cap, deleting oldest first.
func (c *Capturer) pruneLocked() {
	for len(c.index) > c.cfg.MaxBundles {
		old := c.index[0]
		c.index = c.index[1:]
		_ = os.Remove(old.File)
	}
}

// Index returns the retained-bundle index, oldest first.
func (c *Capturer) Index() []BundleInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]BundleInfo(nil), c.index...)
}

// Suppressed reports triggers debounced since the last capture.
func (c *Capturer) Suppressed() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.suppressed
}

// Lookup resolves a bundle seq to its index row.
func (c *Capturer) Lookup(seq uint64) (BundleInfo, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, info := range c.index {
		if info.Seq == seq {
			return info, true
		}
	}
	return BundleInfo{}, false
}

// ReadBundle loads a bundle file back — the test/experiment half of the
// round trip, and the programmatic consumer of downloaded bundles.
func ReadBundle(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("flight: parse bundle %s: %w", filepath.Base(path), err)
	}
	return &b, nil
}

// FindClasses reports which of the wanted classes appear in the bundle's
// journal, in first-occurrence order — the experiment's causal-chain check.
func (b *Bundle) FindClasses(wanted ...Class) map[Class][]Event {
	out := make(map[Class][]Event)
	for _, ev := range b.Journal {
		for _, w := range wanted {
			if ev.Class == w {
				out[w] = append(out[w], ev)
			}
		}
	}
	return out
}

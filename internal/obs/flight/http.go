package flight

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strconv"

	"waran/internal/obs"
)

// maxJournalQuery is the hard upper bound on /debug/flight's ?n= parameter,
// mirroring obs.MaxSlotsQuery: a fat-fingered query cannot become a giant
// allocation.
const maxJournalQuery = 4096

// statusResponse is the /debug/flight payload: journal tail, detector
// states, retained-bundle index.
type statusResponse struct {
	Enabled    bool            `json:"enabled"`
	Seq        uint64          `json:"seq"`
	Journal    []Event         `json:"journal"`
	Detectors  []DetectorState `json:"detectors"`
	Bundles    []BundleInfo    `json:"bundles"`
	Suppressed uint64          `json:"suppressed_since_last,omitempty"`
}

// Handler serves the flight-recorder status: the last N journal events
// (?n=, default 64, capped), detector states and the bundle index. Any of
// rec, ds, cap may be nil; a nil recorder serves {"enabled": false} so
// dashboards can probe unconditionally.
func Handler(rec *Recorder, ds *DetectorSet, cap *Capturer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := 64
		if q := req.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 1 {
				http.Error(w, "n must be a positive integer", http.StatusBadRequest)
				return
			}
			if v > maxJournalQuery {
				v = maxJournalQuery
			}
			n = v
		}
		resp := statusResponse{
			Enabled:   rec.Enabled(),
			Seq:       rec.Seq(),
			Journal:   rec.Tail(n),
			Detectors: []DetectorState{},
			Bundles:   []BundleInfo{},
		}
		if ds != nil {
			resp.Detectors = ds.States()
		}
		if cap != nil {
			resp.Bundles = cap.Index()
			resp.Suppressed = cap.Suppressed()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(resp)
	})
}

// JournalHandler serves the journal tail alone: JSON by default, the
// compact binary codec with ?format=binary (for operators streaming large
// windows; decode with DecodeJournal). ?since= returns only events with a
// larger sequence number.
func JournalHandler(rec *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var events []Event
		if q := req.URL.Query().Get("since"); q != "" {
			since, err := strconv.ParseUint(q, 10, 64)
			if err != nil {
				http.Error(w, "since must be a non-negative integer", http.StatusBadRequest)
				return
			}
			events = rec.SnapshotSince(since)
		} else {
			events = rec.Tail(maxJournalQuery)
		}
		if req.URL.Query().Get("format") == "binary" {
			w.Header().Set("Content-Type", "application/octet-stream")
			_, _ = w.Write(EncodeJournal(events))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(events)
	})
}

// BundleHandler serves bundle downloads: ?seq=N streams that retained
// bundle's JSON file.
func BundleHandler(cap *Capturer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if cap == nil {
			http.Error(w, "bundle capture is not armed", http.StatusNotFound)
			return
		}
		seq, err := strconv.ParseUint(req.URL.Query().Get("seq"), 10, 64)
		if err != nil {
			http.Error(w, "seq must be a bundle sequence number", http.StatusBadRequest)
			return
		}
		info, ok := cap.Lookup(seq)
		if !ok {
			http.Error(w, "no such bundle (it may have been pruned)", http.StatusNotFound)
			return
		}
		data, err := os.ReadFile(info.File)
		if err != nil {
			http.Error(w, "bundle file unreadable", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", "attachment; filename="+strconv.Quote(filepath.Base(info.File)))
		_, _ = w.Write(data)
	})
}

// MuxOption mounts the flight surfaces on an obs.NewMux:
//
//	/debug/flight          status (journal tail ?n=, detectors, bundle index)
//	/debug/flight/journal  journal tail (?since=, ?format=binary)
//	/debug/flight/bundle   bundle download (?seq=)
//
// Defined here rather than in obs so the obs package stays free of a flight
// dependency (the same inversion as obs.WithTracer).
func MuxOption(rec *Recorder, ds *DetectorSet, cap *Capturer) obs.MuxOption {
	return func(mux *http.ServeMux) {
		mux.Handle("/debug/flight", Handler(rec, ds, cap))
		mux.Handle("/debug/flight/journal", JournalHandler(rec))
		mux.Handle("/debug/flight/bundle", BundleHandler(cap))
	}
}

package flight

import (
	"testing"
)

// TestSummarize pins the experiment-facing digest: ok demands at least one
// bundle AND every wanted class present somewhere across the bundles;
// coverage counts union across bundles, not per bundle.
func TestSummarize(t *testing.T) {
	rec := NewRecorder(64)
	cap := testCapturer(t, rec, nil)

	// No bundles yet: not ok, regardless of journal content.
	rec.Record(Event{Class: EvShed, Plane: PlaneRIC, Detail: "overflow"})
	sum, ok, err := Summarize(rec, cap, EvShed)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("ok with zero bundles")
	}
	if sum.Events != 1 || sum.Classes[EvShed.String()] != 1 {
		t.Fatalf("journal digest = %+v", sum)
	}

	// One bundle carrying the shed, a later one carrying the breaker trip:
	// the union covers both wanted classes.
	if _, err := cap.CaptureNow("first"); err != nil {
		t.Fatal(err)
	}
	rec.Record(Event{Class: EvBreakerOpen, Plane: PlaneRIC, Detail: "x: closed->open"})
	if _, err := cap.CaptureNow("second"); err != nil {
		t.Fatal(err)
	}

	sum, ok, err = Summarize(rec, cap, EvShed, EvBreakerOpen)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("not ok with union coverage: %+v", sum.Coverage)
	}
	if len(sum.Bundles) != 2 {
		t.Fatalf("bundles = %+v", sum.Bundles)
	}
	if sum.Coverage[EvShed.String()] != 1 || sum.Coverage[EvBreakerOpen.String()] != 1 {
		t.Fatalf("coverage = %+v", sum.Coverage)
	}

	// A wanted class that never reached any bundle keeps ok false even
	// though bundles exist.
	if _, ok, err = Summarize(rec, cap, EvShed, EvRollback); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Fatal("ok despite a wanted class missing from every bundle")
	}

	// No wanted classes: any bundle satisfies the digest.
	if _, ok, err = Summarize(rec, cap); err != nil {
		t.Fatal(err)
	} else if !ok {
		t.Fatal("not ok with bundles and no wanted classes")
	}
}

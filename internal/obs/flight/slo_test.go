package flight

import (
	"sync/atomic"
	"testing"
	"time"
)

// tick advances a fake clock and evaluates the set — detectors are driven
// entirely by the caller's clock, so tests are deterministic.
func tick(s *DetectorSet, now *time.Time, step time.Duration) {
	*now = now.Add(step)
	s.Eval(*now)
}

func TestRatioDetectorFiresAndClears(t *testing.T) {
	var bad, total atomic.Uint64 // metric-exempt: test stimulus, not telemetry
	rec := NewRecorder(64)
	ds := NewDetectorSet(rec)
	ds.MustAdd(SLO{
		Name:      "shed-ratio",
		Objective: 0.01, // 1% may shed
		Bad:       bad.Load,
		Total:     total.Load,
	}, DetectorConfig{Short: 2 * time.Second, Long: 6 * time.Second, Burn: 10})

	now := time.Unix(1000, 0)
	// Healthy traffic: 1000 offered/s, 0 shed. No fire.
	for i := 0; i < 10; i++ {
		total.Add(1000)
		tick(ds, &now, time.Second)
	}
	if st := ds.States()[0]; st.Firing || st.Fires != 0 {
		t.Fatalf("healthy detector fired: %+v", st)
	}

	// Incident: 50% of indications shed → burn = 0.5/0.01 = 50 ≥ 10 in
	// both windows once the long window fills with bad samples.
	for i := 0; i < 8; i++ {
		total.Add(1000)
		bad.Add(500)
		tick(ds, &now, time.Second)
	}
	st := ds.States()[0]
	if !st.Firing || st.Fires != 1 {
		t.Fatalf("detector did not fire under 50%% shed: %+v", st)
	}
	if got := rec.Count(EvDetectorFire); got != 1 {
		t.Fatalf("EvDetectorFire count = %d, want 1", got)
	}

	// Recovery: shed stops; both windows drain below ClearBurn (5).
	for i := 0; i < 10; i++ {
		total.Add(1000)
		tick(ds, &now, time.Second)
	}
	st = ds.States()[0]
	if st.Firing {
		t.Fatalf("detector still firing after recovery: %+v", st)
	}
	if got := rec.Count(EvDetectorClear); got != 1 {
		t.Fatalf("EvDetectorClear count = %d, want 1", got)
	}
}

func TestRatioDetectorIgnoresShortSpike(t *testing.T) {
	var bad, total atomic.Uint64 // metric-exempt: test stimulus, not telemetry
	ds := NewDetectorSet(nil)
	ds.MustAdd(SLO{Name: "spike", Objective: 0.01, Bad: bad.Load, Total: total.Load},
		DetectorConfig{Short: 2 * time.Second, Long: 20 * time.Second, Burn: 10})
	now := time.Unix(2000, 0)
	for i := 0; i < 20; i++ {
		total.Add(1000)
		tick(ds, &now, time.Second)
	}
	// One bad second inside a long healthy window: short window burns hot,
	// long window stays cool → multi-window must hold fire.
	total.Add(1000)
	bad.Add(500)
	tick(ds, &now, time.Second)
	if st := ds.States()[0]; st.Firing {
		t.Fatalf("one-second spike paged: %+v", st)
	}
}

func TestValueDetector(t *testing.T) {
	var p99 atomic.Uint64 // metric-exempt: test stimulus, not telemetry
	ds := NewDetectorSet(nil)
	ds.MustAdd(SLO{
		Name:   "ric-loop-p99",
		Value:  func() float64 { return float64(p99.Load()) },
		Budget: 100, // µs
	}, DetectorConfig{Short: 2 * time.Second, Long: 4 * time.Second, Burn: 3})
	now := time.Unix(3000, 0)
	p99.Store(80)
	for i := 0; i < 6; i++ {
		tick(ds, &now, time.Second)
	}
	if st := ds.States()[0]; st.Firing {
		t.Fatalf("under-budget value SLO fired: %+v", st)
	}
	p99.Store(500) // 5× budget > Burn 3
	for i := 0; i < 6; i++ {
		tick(ds, &now, time.Second)
	}
	if st := ds.States()[0]; !st.Firing {
		t.Fatalf("5x-over-budget value SLO did not fire: %+v", st)
	}
}

func TestSLOValidation(t *testing.T) {
	ds := NewDetectorSet(nil)
	cases := []SLO{
		{},
		{Name: "no-source"},
		{Name: "half-ratio", Bad: func() uint64 { return 0 }},
		{Name: "bad-objective", Bad: func() uint64 { return 0 }, Total: func() uint64 { return 0 }, Objective: 2},
		{Name: "bad-budget", Value: func() float64 { return 0 }},
		{Name: "mixed", Bad: func() uint64 { return 0 }, Total: func() uint64 { return 0 }, Objective: 0.1, Value: func() float64 { return 0 }},
	}
	for i, slo := range cases {
		if _, err := ds.Add(slo, DetectorConfig{}); err == nil {
			t.Fatalf("case %d (%q): invalid SLO accepted", i, slo.Name)
		}
	}
}

// Package flight is WA-RAN's always-on incident journal: a fixed-memory,
// lock-free flight recorder that captures significant state transitions from
// every plane — slot deadline misses and fallback pins (core), breaker and
// canary transitions (guard), brownout shifts, sheds and admission refusals
// (ric), sandbox failure classes and tier promotions (wabi/wasm), and
// association lifecycle (e2) — as typed events.
//
// On top of the journal sit SLO burn-rate detectors (multi-window, in the
// Google SRE style) and a trigger pipeline: when a detector fires or an
// event of a trigger class lands, a Capturer snapshots everything an
// operator needs — journal window, metrics registry, trace-ring spans, wasm
// profile, goroutine dump — into one bundle file on disk, with debounce and
// a retained-bundle cap so a flapping incident cannot fill the disk.
//
// A nil *Recorder is a valid, fully disabled recorder: every method is a
// no-op and the disabled path costs one pointer comparison and zero
// allocations, the same discipline as trace.Tracer. Instrumentation sites
// therefore record unconditionally on rare transition edges and guard with
// Enabled() only where building the event itself would allocate.
package flight

import (
	"encoding/json"
	"fmt"
)

// Class is the closed taxonomy of journal event classes. The numbering is
// part of the binary codec format (see codec.go): append new classes at the
// end, never renumber.
type Class uint8

const (
	// EvNone is the zero class; decoding it is valid but recorders never
	// emit it.
	EvNone Class = iota

	// Core plane: the slot engine.

	// EvSlotDeadlineMiss: one cell overran its slot deadline budget.
	EvSlotDeadlineMiss
	// EvFallbackPin: repeated overruns pinned a cell to the native
	// fallback scheduler.
	EvFallbackPin
	// EvFallbackRelease: an operator released a pinned cell back to its
	// plugin scheduler.
	EvFallbackRelease

	// Guard plane: the plugin lifecycle supervisor.

	// EvBreakerOpen: a circuit breaker tripped open (detail names the
	// failure class distribution edge).
	EvBreakerOpen
	// EvBreakerHalfOpen: an open breaker's backoff elapsed; probing.
	EvBreakerHalfOpen
	// EvBreakerClose: a breaker closed after successful probes.
	EvBreakerClose
	// EvCanarySwap: a canary hot-swap was promoted after shadow replay.
	EvCanarySwap
	// EvRollback: a promoted module was rolled back to last-good during
	// probation.
	EvRollback

	// RIC plane: overload control and dispatch.

	// EvBrownoutShift: the brownout state machine changed level (detail is
	// the edge, e.g. "normal->degraded").
	EvBrownoutShift
	// EvShed: a queued indication left the dispatch path unserved (detail
	// is the shed reason: overflow, stale, teardown, refused-late).
	EvShed
	// EvAdmissionRefused: a subscription was refused at admission (detail
	// distinguishes token-bucket "busy" from "brownout-critical").
	EvAdmissionRefused

	// E2 plane: association lifecycle.

	// EvAssocUp: an E2 association was accepted.
	EvAssocUp
	// EvAssocDown: an E2 association ended (detail carries the error, if
	// any).
	EvAssocDown

	// Wasm plane: sandbox and execution tiers.

	// EvSandboxFault: a plugin call failed; detail names the wabi failure
	// class.
	EvSandboxFault
	// EvTierPromotion: a module was promoted to a faster execution tier.
	EvTierPromotion

	// Flight plane: the recorder's own pipeline.

	// EvDetectorFire: an SLO burn-rate detector started firing.
	EvDetectorFire
	// EvDetectorClear: a firing detector dropped back below its clear
	// threshold.
	EvDetectorClear
	// EvBundleCaptured: a diagnostic bundle was written (detail is the
	// bundle file name).
	EvBundleCaptured

	numClasses
)

// classNames maps Class to its stable string form (used in JSON and the
// HTTP surfaces). Indexed by Class.
var classNames = [numClasses]string{
	EvNone:             "none",
	EvSlotDeadlineMiss: "slot.deadline_miss",
	EvFallbackPin:      "fallback.pin",
	EvFallbackRelease:  "fallback.release",
	EvBreakerOpen:      "breaker.open",
	EvBreakerHalfOpen:  "breaker.half_open",
	EvBreakerClose:     "breaker.close",
	EvCanarySwap:       "canary.swap",
	EvRollback:         "canary.rollback",
	EvBrownoutShift:    "brownout.shift",
	EvShed:             "ric.shed",
	EvAdmissionRefused: "ric.admission_refused",
	EvAssocUp:          "e2.assoc_up",
	EvAssocDown:        "e2.assoc_down",
	EvSandboxFault:     "wasm.sandbox_fault",
	EvTierPromotion:    "wasm.tier_promotion",
	EvDetectorFire:     "slo.detector_fire",
	EvDetectorClear:    "slo.detector_clear",
	EvBundleCaptured:   "bundle.captured",
}

// Classes enumerates every event class in declaration order, EvNone
// excluded — the iteration surface for obs registration and the HTTP index.
func Classes() []Class {
	out := make([]Class, 0, int(numClasses)-1)
	for c := EvNone + 1; c < numClasses; c++ {
		out = append(out, c)
	}
	return out
}

// String returns the stable name of the class.
func (c Class) String() string {
	if c < numClasses {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// ParseClass resolves a stable class name back to its Class.
func ParseClass(s string) (Class, bool) {
	for c := EvNone; c < numClasses; c++ {
		if classNames[c] == s {
			return c, true
		}
	}
	return EvNone, false
}

// MarshalJSON renders the class as its stable name.
func (c Class) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.String())
}

// UnmarshalJSON accepts either the stable name or the numeric form.
func (c *Class) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, ok := ParseClass(s)
		if !ok {
			return fmt.Errorf("flight: unknown event class %q", s)
		}
		*c = v
		return nil
	}
	var n uint8
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	if Class(n) >= numClasses {
		return fmt.Errorf("flight: event class %d out of range", n)
	}
	*c = Class(n)
	return nil
}

// Event is one journal entry: a typed state transition with just enough
// context to correlate it against metrics, spans and the shed ledger.
// Events are immutable once recorded.
type Event struct {
	// Seq is the recorder-assigned monotonic sequence number (1-based).
	Seq uint64 `json:"seq"`
	// TimeNs is the wall-clock unix-nanos timestamp. Zero at Record time
	// means "stamp now".
	TimeNs int64 `json:"time_ns"`
	// Class is the event class.
	Class Class `json:"class"`
	// Plane names the subsystem half that recorded the event (gnb, ric,
	// e2, wasm, flight).
	Plane string `json:"plane,omitempty"`
	// Cell is the cell index for core-plane events.
	Cell uint32 `json:"cell,omitempty"`
	// Slot is the slot counter for core-plane events.
	Slot uint64 `json:"slot,omitempty"`
	// Detail is the human-readable specifics: transition edge, shed
	// reason, failure class, xApp name.
	Detail string `json:"detail,omitempty"`
	// Value is an optional scalar (overrun nanos, queue dwell, burn rate).
	Value float64 `json:"value,omitempty"`
}

// Plane labels used by the built-in instrumentation sites. The gnb and ric
// labels deliberately match trace.PlaneGNB / trace.PlaneRIC so journal
// events and spans correlate by name.
const (
	PlaneGNB    = "gnb"
	PlaneRIC    = "ric"
	PlaneE2     = "e2"
	PlaneWasm   = "wasm"
	PlaneFlight = "flight"
)

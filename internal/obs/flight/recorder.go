package flight

import (
	"sync/atomic"
	"time"

	"waran/internal/obs"
)

// Recorder is the fixed-memory journal: a lock-free ring of the most recent
// events, written from any goroutine with one atomic add and one atomic
// pointer store — the same discipline as trace.SpanRing, because events are
// recorded from latency-sensitive paths (slot loop, dispatch loops).
// Overwrite-on-wrap loses the oldest events and never blocks a writer.
//
// A nil *Recorder is fully disabled: Record is a pointer comparison, zero
// allocations (pinned by test). Instrumentation sites that must build an
// allocating Detail string guard with Enabled() first.
type Recorder struct {
	slots []atomic.Pointer[Event]
	mask  uint64
	next  atomic.Uint64 // metric-exempt: ring cursor doubles as the event seq, not telemetry

	// triggers is a bitmask over Class: recording an event of a set class
	// pokes the trigger channel. Classes are < 64 by construction
	// (numClasses is checked at init).
	triggers atomic.Uint64 // metric-exempt: trigger class bitmask, not telemetry
	notify   chan Class

	// classCounts feeds the waran_flight_* exposition; counts survive ring
	// overwrites so rates stay computable from bundle-to-bundle diffs.
	classCounts [numClasses]atomic.Uint64 // metric-exempt: exposed via Register as waran_flight_events_total
}

func init() {
	if numClasses > 64 {
		panic("flight: event classes exceed trigger bitmask width")
	}
}

// NewRecorder returns a recorder journaling the most recent n events; n is
// rounded up to a power of two (minimum 2).
func NewRecorder(n int) *Recorder {
	capPow := 2
	for capPow < n {
		capPow <<= 1
	}
	return &Recorder{
		slots:  make([]atomic.Pointer[Event], capPow),
		mask:   uint64(capPow - 1),
		notify: make(chan Class, 16),
	}
}

// Enabled reports whether recording is on. Sites that must allocate to
// build an event (fmt.Sprintf details) guard with this; sites recording
// constant-shaped events call Record unconditionally.
func (r *Recorder) Enabled() bool { return r != nil }

// Cap reports the ring capacity.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Record journals one event. Seq is assigned by the recorder; a zero TimeNs
// is stamped with the current wall clock. Safe from any goroutine; a nil
// recorder is a no-op.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	if ev.TimeNs == 0 {
		ev.TimeNs = time.Now().UnixNano()
	}
	p := new(Event)
	*p = ev
	seq := r.next.Add(1)
	p.Seq = seq
	r.slots[(seq-1)&r.mask].Store(p)
	if ev.Class < numClasses {
		r.classCounts[ev.Class].Add(1)
	}
	if r.triggers.Load()&(1<<ev.Class) != 0 {
		select {
		case r.notify <- ev.Class:
		default: // capturer is behind; it will fold this into the next bundle
		}
	}
}

// Seq reports the sequence number of the most recent event (0 when empty).
func (r *Recorder) Seq() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// Count reports the cumulative number of events journaled for class —
// overwrite-proof, unlike the ring contents.
func (r *Recorder) Count(c Class) uint64 {
	if r == nil || c >= numClasses {
		return 0
	}
	return r.classCounts[c].Load()
}

// SetTriggers installs the set of classes whose events poke the capture
// pipeline, replacing any previous set.
func (r *Recorder) SetTriggers(classes ...Class) {
	if r == nil {
		return
	}
	var mask uint64
	for _, c := range classes {
		if c < numClasses {
			mask |= 1 << c
		}
	}
	r.triggers.Store(mask)
}

// TriggerC is the channel poked when a trigger-class event is recorded.
// Sends are non-blocking: a slow consumer coalesces pokes.
func (r *Recorder) TriggerC() <-chan Class {
	if r == nil {
		return nil
	}
	return r.notify
}

// emptyEvents is the shared result for empty snapshots, mirroring the
// trace.SpanRing discipline: scrape loops polling an idle recorder must not
// allocate per poll.
var emptyEvents = []Event{}

// Tail returns the newest n events, oldest first (all published events when
// n <= 0 or n exceeds the readable count). Events are copied out by value.
func (r *Recorder) Tail(n int) []Event {
	if r == nil {
		return emptyEvents
	}
	seq := r.next.Load()
	start := uint64(0)
	if seq > uint64(len(r.slots)) {
		start = seq - uint64(len(r.slots))
	}
	if n > 0 && seq-start > uint64(n) {
		start = seq - uint64(n)
	}
	return r.copyRange(start, seq)
}

// SnapshotSince returns every event with Seq > since, oldest first — the
// incremental read the bundle writer uses so consecutive bundles do not
// re-serialize the same journal window. Events older than the ring capacity
// are gone; the caller detects the gap when the first returned Seq is not
// since+1.
func (r *Recorder) SnapshotSince(since uint64) []Event {
	if r == nil {
		return emptyEvents
	}
	seq := r.next.Load()
	start := uint64(0)
	if seq > uint64(len(r.slots)) {
		start = seq - uint64(len(r.slots))
	}
	if since > start {
		start = since
	}
	return r.copyRange(start, seq)
}

// copyRange copies published events with start < Seq <= end, oldest first.
// Under concurrent writes each slot is read with one atomic load; a slot
// overwritten mid-copy yields the newer event, filtered by the Seq bounds.
func (r *Recorder) copyRange(start, end uint64) []Event {
	if end <= start {
		return emptyEvents
	}
	out := make([]Event, 0, end-start)
	for i := start; i < end; i++ {
		if p := r.slots[i&r.mask].Load(); p != nil && p.Seq > start && p.Seq <= end {
			out = append(out, *p)
		}
	}
	return out
}

// Register exposes the recorder on reg: waran_flight_events_total (overall
// and per class) plus the ring capacity. The flight package is the only
// place waran_flight_* series may originate (enforced by lint-metrics).
func (r *Recorder) Register(reg *obs.Registry, labels ...obs.Label) {
	reg.MustRegister("waran_flight_events", "flight recorder journal events by class (cumulative, overwrite-proof)", obs.Func{
		Kind: obs.KindUntyped,
		Collect: func() []obs.Sample {
			samples := make([]obs.Sample, 0, int(numClasses)+1)
			for _, c := range Classes() {
				samples = append(samples, obs.Sample{
					Suffix: "_total",
					Labels: []obs.Label{obs.L("class", c.String())},
					Value:  float64(r.Count(c)),
				})
			}
			samples = append(samples,
				obs.Sample{Suffix: "_seq", Value: float64(r.Seq())},
				obs.Sample{Suffix: "_ring_cap", Value: float64(r.Cap())},
			)
			return samples
		},
		JSON: func() any {
			out := map[string]any{"seq": r.Seq(), "ring_cap": r.Cap()}
			for _, c := range Classes() {
				if n := r.Count(c); n > 0 {
					out[c.String()] = n
				}
			}
			return out
		},
	}, labels...)
}

package flight

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"waran/internal/obs"
	"waran/internal/obs/trace"
)

func testCapturer(t *testing.T, rec *Recorder, mut func(*CapturerConfig)) *Capturer {
	t.Helper()
	cfg := CapturerConfig{Dir: t.TempDir(), GoroutineDump: -1}
	if mut != nil {
		mut(&cfg)
	}
	c, err := NewCapturer(rec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCaptureRoundTrip(t *testing.T) {
	rec := NewRecorder(64)
	reg := obs.NewRegistry()
	rec.Register(reg)
	reg.Counter("waran_test_total", "test").Add(7)
	tr := trace.NewTracer(16)
	tr.Record(&trace.Span{TraceID: 1, SpanID: 11, Name: trace.SpanShed, Plane: trace.PlaneRIC, StartNs: 5})
	ds := NewDetectorSet(rec)
	ds.MustAdd(SLO{Name: "x", Value: func() float64 { return 1 }, Budget: 10}, DetectorConfig{})

	cap := testCapturer(t, rec, func(c *CapturerConfig) {
		c.Registry, c.Tracer, c.Detectors = reg, tr, ds
		c.GoroutineDump = 1 << 16
	})
	rec.Record(Event{Class: EvBrownoutShift, Plane: PlaneRIC, Detail: "normal->degraded", TimeNs: 1})
	rec.Record(Event{Class: EvShed, Plane: PlaneRIC, Detail: "overflow", TimeNs: 2})

	b, err := cap.CaptureNow("test")
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Journal) != 2 || b.Journal[0].Class != EvBrownoutShift {
		t.Fatalf("journal = %+v", b.Journal)
	}
	if b.JournalGap {
		t.Fatal("unexpected journal gap")
	}
	if len(b.Detectors) != 1 || b.Detectors[0].Name != "x" {
		t.Fatalf("detectors = %+v", b.Detectors)
	}
	if _, ok := b.Metrics[obs.SnapshotHeaderKey]; !ok {
		t.Fatal("bundle metrics missing snapshot header")
	}
	if len(b.Spans[trace.PlaneRIC]) != 1 {
		t.Fatalf("spans = %+v", b.Spans)
	}
	if !strings.Contains(b.Goroutines, "goroutine") {
		t.Fatal("bundle missing goroutine dump")
	}

	idx := cap.Index()
	if len(idx) != 1 || idx[0].Events != 2 {
		t.Fatalf("index = %+v", idx)
	}
	back, err := ReadBundle(idx[0].File)
	if err != nil {
		t.Fatal(err)
	}
	if back.Seq != b.Seq || len(back.Journal) != 2 || back.Journal[1].Detail != "overflow" {
		t.Fatalf("read-back = %+v", back)
	}
	found := back.FindClasses(EvBrownoutShift, EvShed, EvBreakerOpen)
	if len(found[EvBrownoutShift]) != 1 || len(found[EvShed]) != 1 || len(found[EvBreakerOpen]) != 0 {
		t.Fatalf("FindClasses = %+v", found)
	}
	// The capture event lands in the journal AFTER the snapshot: the next
	// bundle sees it, this one does not.
	if got := rec.Count(EvBundleCaptured); got != 1 {
		t.Fatalf("EvBundleCaptured count = %d", got)
	}
}

// TestCaptureIncremental pins the SnapshotSince plumbing: consecutive
// bundles carry disjoint journal windows and disjoint span windows.
func TestCaptureIncremental(t *testing.T) {
	rec := NewRecorder(64)
	tr := trace.NewTracer(16)
	cap := testCapturer(t, rec, func(c *CapturerConfig) { c.Tracer = tr })

	rec.Record(Event{Class: EvShed, TimeNs: 1})
	tr.Record(&trace.Span{SpanID: 1, Plane: trace.PlaneRIC, StartNs: 1})
	b1, err := cap.CaptureNow("one")
	if err != nil {
		t.Fatal(err)
	}
	rec.Record(Event{Class: EvBreakerOpen, TimeNs: 2})
	tr.Record(&trace.Span{SpanID: 2, Plane: trace.PlaneRIC, StartNs: 2})
	b2, err := cap.CaptureNow("two")
	if err != nil {
		t.Fatal(err)
	}
	if len(b1.Journal) != 1 || b1.Journal[0].Class != EvShed {
		t.Fatalf("b1 journal = %+v", b1.Journal)
	}
	// b2's journal: the EvBundleCaptured from b1 plus the breaker open.
	classes := b2.FindClasses(EvShed, EvBreakerOpen, EvBundleCaptured)
	if len(classes[EvShed]) != 0 {
		t.Fatalf("b2 re-serialized b1's events: %+v", b2.Journal)
	}
	if len(classes[EvBreakerOpen]) != 1 || len(classes[EvBundleCaptured]) != 1 {
		t.Fatalf("b2 journal = %+v", b2.Journal)
	}
	if len(b1.Spans[trace.PlaneRIC]) != 1 || b1.Spans[trace.PlaneRIC][0].SpanID != 1 {
		t.Fatalf("b1 spans = %+v", b1.Spans)
	}
	if len(b2.Spans[trace.PlaneRIC]) != 1 || b2.Spans[trace.PlaneRIC][0].SpanID != 2 {
		t.Fatalf("b2 spans = %+v", b2.Spans)
	}
}

func TestCaptureDebounceAndRetention(t *testing.T) {
	rec := NewRecorder(64)
	now := time.Unix(5000, 0)
	cap := testCapturer(t, rec, func(c *CapturerConfig) {
		c.Debounce = 10 * time.Second
		c.MaxBundles = 2
		c.Now = func() time.Time { return now }
	})

	if b, err := cap.Capture("first"); err != nil || b == nil {
		t.Fatalf("first capture: %v %v", b, err)
	}
	// Inside the debounce window: suppressed, counted.
	now = now.Add(time.Second)
	if b, err := cap.Capture("flap"); err != nil || b != nil {
		t.Fatalf("debounced capture returned %v %v", b, err)
	}
	if cap.Suppressed() != 1 {
		t.Fatalf("suppressed = %d, want 1", cap.Suppressed())
	}
	// Past the window: captured, and the bundle reports the folded count.
	now = now.Add(time.Minute)
	b, err := cap.Capture("second")
	if err != nil || b == nil {
		t.Fatal(err)
	}
	if b.Suppressed != 1 {
		t.Fatalf("bundle suppressed = %d, want 1", b.Suppressed)
	}

	// Retention: a third bundle must evict the first file.
	now = now.Add(time.Minute)
	if _, err := cap.CaptureNow("third"); err != nil {
		t.Fatal(err)
	}
	idx := cap.Index()
	if len(idx) != 2 {
		t.Fatalf("index len = %d, want cap 2", len(idx))
	}
	if idx[0].Reason != "second" || idx[1].Reason != "third" {
		t.Fatalf("index = %+v", idx)
	}
	files, err := filepath.Glob(filepath.Join(filepath.Dir(idx[0].File), "bundle-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("retained files = %v, want 2", files)
	}
}

func TestCapturerRunConsumesTriggers(t *testing.T) {
	rec := NewRecorder(64)
	rec.SetTriggers(EvBreakerOpen)
	cap := testCapturer(t, rec, nil)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { defer close(done); cap.Run(stop) }()

	rec.Record(Event{Class: EvBreakerOpen, Plane: PlaneGNB, Detail: "xapp=slow", TimeNs: 1})
	deadline := time.After(5 * time.Second)
	for len(cap.Index()) == 0 {
		select {
		case <-deadline:
			t.Fatal("trigger did not produce a bundle")
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(stop)
	<-done
	idx := cap.Index()
	if idx[0].Reason != "class:"+EvBreakerOpen.String() {
		t.Fatalf("reason = %q", idx[0].Reason)
	}
}

func TestCapturerValidation(t *testing.T) {
	if _, err := NewCapturer(nil, CapturerConfig{Dir: t.TempDir()}); err == nil {
		t.Fatal("nil recorder accepted")
	}
	if _, err := NewCapturer(NewRecorder(8), CapturerConfig{}); err == nil {
		t.Fatal("empty dir accepted")
	}
	if got := sanitizeReason("class:ric.shed/../x"); strings.ContainsAny(got, "/:") {
		t.Fatalf("sanitizeReason left unsafe chars: %q", got)
	}
}

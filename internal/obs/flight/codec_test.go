package flight

import (
	"testing"
	"unicode/utf8"
)

func TestEventCodecRoundTrip(t *testing.T) {
	events := []Event{
		{Seq: 1, TimeNs: 1234, Class: EvShed, Plane: PlaneRIC, Detail: "overflow", Value: 3.5},
		{Seq: 2, TimeNs: 5678, Class: EvBreakerOpen, Plane: PlaneGNB, Cell: 7, Slot: 99, Detail: "xapp=slow"},
		{Seq: 3, TimeNs: 1, Class: EvBrownoutShift, Plane: PlaneRIC, Detail: "normal->degraded"},
		{Seq: 1 << 60, TimeNs: 1 << 62, Class: EvBundleCaptured, Value: -1.25},
	}
	buf := EncodeJournal(events)
	got, err := DecodeJournal(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestDecodeEventRejectsMalformed(t *testing.T) {
	ev := Event{Seq: 1, TimeNs: 2, Class: EvShed, Plane: PlaneRIC, Detail: "x"}
	full := AppendEvent(nil, &ev)
	// Every truncation must fail cleanly, never panic.
	for i := 0; i < len(full); i++ {
		if _, _, err := DecodeEvent(full[:i]); err == nil {
			t.Fatalf("truncated at %d decoded without error", i)
		}
	}
	// Out-of-range class byte.
	bad := AppendEvent(nil, &Event{Seq: 1, TimeNs: 2, Class: EvShed})
	// seq=1 (1 byte), time=2 (1 byte), class at offset 2
	bad[2] = 0xff
	if _, _, err := DecodeEvent(bad); err == nil {
		t.Fatal("out-of-range class decoded without error")
	}
	// Oversized string length prefix.
	huge := []byte{1, 1, byte(EvShed), 0xff, 0xff, 0xff, 0x7f}
	if _, _, err := DecodeEvent(huge); err == nil {
		t.Fatal("oversized string length decoded without error")
	}
}

// FuzzEventCodec fuzzes both directions: arbitrary bytes must decode
// without panicking, and every event the encoder can produce must round
// trip exactly.
func FuzzEventCodec(f *testing.F) {
	f.Add([]byte{}, uint64(1), int64(5), uint8(EvShed), "ric", uint32(1), uint64(2), "overflow", 1.5)
	f.Add([]byte{0xff, 0x00, 0x01}, uint64(0), int64(0), uint8(0), "", uint32(0), uint64(0), "", 0.0)
	f.Fuzz(func(t *testing.T, raw []byte, seq uint64, tns int64, class uint8, plane string, cell uint32, slot uint64, detail string, value float64) {
		// Direction 1: hostile bytes never panic the decoder.
		if evs, err := DecodeJournal(raw); err == nil {
			// Whatever decoded must re-encode and decode to the same thing.
			again, err := DecodeJournal(EncodeJournal(evs))
			if err != nil {
				t.Fatalf("re-decode of valid journal failed: %v", err)
			}
			if len(again) != len(evs) {
				t.Fatalf("re-decode length %d != %d", len(again), len(evs))
			}
			for i := range evs {
				if again[i] != evs[i] {
					t.Fatalf("re-decode event %d mismatch", i)
				}
			}
		}

		// Direction 2: structured round trip for encodable events.
		if Class(class) >= numClasses || tns < 0 {
			return
		}
		if !utf8.ValidString(plane) || !utf8.ValidString(detail) {
			return
		}
		if len(plane) > maxCodecString || len(detail) > maxCodecString {
			return
		}
		if value != value { // NaN payload bits may not round trip ==
			return
		}
		ev := Event{Seq: seq, TimeNs: tns, Class: Class(class), Plane: plane, Cell: cell, Slot: slot, Detail: detail, Value: value}
		got, n, err := DecodeEvent(AppendEvent(nil, &ev))
		if err != nil {
			t.Fatalf("round trip decode: %v (%+v)", err, ev)
		}
		if n != len(AppendEvent(nil, &ev)) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(AppendEvent(nil, &ev)))
		}
		if got != ev {
			t.Fatalf("round trip: got %+v, want %+v", got, ev)
		}
	})
}

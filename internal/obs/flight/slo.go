package flight

import (
	"fmt"
	"sync"
	"time"
)

// SLO defines one service-level objective over cumulative or instantaneous
// sources. Two kinds:
//
//   - Ratio: Bad and Total are cumulative counters (shed indications vs
//     offered, slot overruns vs slots). Objective is the allowed bad
//     fraction; the burn rate over a window is (Δbad/Δtotal)/Objective, so
//     burn 1.0 consumes exactly the error budget and burn 10 means the
//     budget burns 10× too fast.
//
//   - Value: Value samples an instantaneous quantity (RIC-loop p99 in µs)
//     and Budget is its objective; the burn rate over a window is the
//     window-average value divided by Budget.
//
// One SLO feeds one Detector; the detector does the windowing.
type SLO struct {
	// Name identifies the SLO in detector states, events and bundles.
	Name string
	// Objective is the allowed bad fraction for ratio SLOs (e.g. 0.001 =
	// 0.1% of indications may shed).
	Objective float64
	// Bad and Total are the cumulative sources of a ratio SLO. Both must
	// be monotonic.
	Bad, Total func() uint64
	// Value is the instantaneous source of a value SLO.
	Value func() float64
	// Budget is the objective for a value SLO, in Value's unit.
	Budget float64
}

func (s SLO) validate() error {
	if s.Name == "" {
		return fmt.Errorf("flight: SLO name must not be empty")
	}
	ratio := s.Bad != nil || s.Total != nil
	value := s.Value != nil
	switch {
	case ratio && value:
		return fmt.Errorf("flight: SLO %s mixes ratio and value sources", s.Name)
	case ratio:
		if s.Bad == nil || s.Total == nil {
			return fmt.Errorf("flight: ratio SLO %s needs both Bad and Total", s.Name)
		}
		if s.Objective <= 0 || s.Objective > 1 {
			return fmt.Errorf("flight: ratio SLO %s objective must be in (0,1]", s.Name)
		}
	case value:
		if s.Budget <= 0 {
			return fmt.Errorf("flight: value SLO %s budget must be positive", s.Name)
		}
	default:
		return fmt.Errorf("flight: SLO %s has no source", s.Name)
	}
	return nil
}

// DetectorConfig tunes one multi-window burn-rate detector. The detector
// fires only when BOTH windows exceed Burn: the short window makes it
// respond fast, the long window keeps a brief spike from paging. Clearing
// uses hysteresis: both windows must drop below ClearBurn.
type DetectorConfig struct {
	// Short and Long are the two look-back windows. Defaults: 5s / 30s.
	Short, Long time.Duration
	// Burn is the firing threshold (default 10: the error budget is
	// burning 10× too fast).
	Burn float64
	// ClearBurn is the hysteresis clear threshold (default Burn/2).
	ClearBurn float64
}

func (c *DetectorConfig) withDefaults() {
	if c.Short <= 0 {
		c.Short = 5 * time.Second
	}
	if c.Long <= 0 {
		c.Long = 30 * time.Second
	}
	if c.Long < c.Short {
		c.Long = c.Short
	}
	if c.Burn <= 0 {
		c.Burn = 10
	}
	if c.ClearBurn <= 0 || c.ClearBurn > c.Burn {
		c.ClearBurn = c.Burn / 2
	}
}

// detectorSample is one Eval observation of the SLO's sources.
type detectorSample struct {
	at    time.Time
	bad   uint64  // ratio kind: cumulative bad
	total uint64  // ratio kind: cumulative total
	value float64 // value kind: instantaneous value
}

// detectorSamples bounds each detector's memory: at the default 1 s Eval
// cadence this covers windows beyond four minutes.
const detectorSamples = 256

// Detector is one SLO's multi-window burn-rate evaluator. It keeps a
// bounded ring of source samples appended by Eval and derives the two
// window burn rates by scanning back to each window's horizon.
type Detector struct {
	slo SLO
	cfg DetectorConfig

	mu      sync.Mutex
	ring    [detectorSamples]detectorSample
	n       int // total samples ever appended
	firing  bool
	fires   uint64
	burnS   float64
	burnL   float64
	shiftNs int64 // last fire/clear transition
}

// DetectorState is one detector's externally visible state, served by
// /debug/flight and embedded in bundles.
type DetectorState struct {
	Name      string  `json:"name"`
	Firing    bool    `json:"firing"`
	BurnShort float64 `json:"burn_short"`
	BurnLong  float64 `json:"burn_long"`
	Threshold float64 `json:"threshold"`
	Fires     uint64  `json:"fires"`
	// LastShiftNs is the unix-nanos of the last fire or clear transition
	// (0 = never fired).
	LastShiftNs int64 `json:"last_shift_ns,omitempty"`
}

// State returns the detector's current state.
func (d *Detector) State() DetectorState {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DetectorState{
		Name: d.slo.Name, Firing: d.firing,
		BurnShort: d.burnS, BurnLong: d.burnL,
		Threshold: d.cfg.Burn, Fires: d.fires, LastShiftNs: d.shiftNs,
	}
}

// sample appends one observation of the SLO's sources.
func (d *Detector) sample(now time.Time) {
	s := detectorSample{at: now}
	if d.slo.Bad != nil {
		s.bad, s.total = d.slo.Bad(), d.slo.Total()
	} else {
		s.value = d.slo.Value()
	}
	d.ring[d.n%detectorSamples] = s
	d.n++
}

// burn computes the burn rate over the window ending at the newest sample.
func (d *Detector) burn(window time.Duration) float64 {
	if d.n == 0 {
		return 0
	}
	newest := d.ring[(d.n-1)%detectorSamples]
	horizon := newest.at.Add(-window)
	// Walk back to the oldest retained sample at or after the horizon,
	// accumulating the window sum for value SLOs along the way.
	oldest := newest
	limit := d.n - detectorSamples
	if limit < 0 {
		limit = 0
	}
	count := 1
	sum := newest.value
	for i := d.n - 2; i >= limit; i-- {
		s := d.ring[i%detectorSamples]
		if s.at.Before(horizon) {
			break
		}
		oldest = s
		count++
		sum += s.value
	}
	if d.slo.Bad != nil {
		dBad := newest.bad - oldest.bad
		dTotal := newest.total - oldest.total
		if dTotal == 0 {
			return 0
		}
		return (float64(dBad) / float64(dTotal)) / d.slo.Objective
	}
	// Value kind: window-average value against the budget.
	return (sum / float64(count)) / d.slo.Budget
}

// eval appends a sample, recomputes both windows and returns the
// fired/cleared edge (0 = no transition, +1 = fired, -1 = cleared).
func (d *Detector) eval(now time.Time) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.sample(now)
	d.burnS = d.burn(d.cfg.Short)
	d.burnL = d.burn(d.cfg.Long)
	switch {
	case !d.firing && d.burnS >= d.cfg.Burn && d.burnL >= d.cfg.Burn:
		d.firing = true
		d.fires++
		d.shiftNs = now.UnixNano()
		return +1
	case d.firing && d.burnS < d.cfg.ClearBurn && d.burnL < d.cfg.ClearBurn:
		d.firing = false
		d.shiftNs = now.UnixNano()
		return -1
	}
	return 0
}

// DetectorSet owns a process's detectors and journals their transitions
// into the recorder (EvDetectorFire is typically a trigger class, so a fire
// kicks off a bundle capture).
type DetectorSet struct {
	rec *Recorder

	mu sync.Mutex
	ds []*Detector
}

// NewDetectorSet returns an empty set journaling into rec (which may be
// nil: detectors still evaluate, transitions just go unjournaled).
func NewDetectorSet(rec *Recorder) *DetectorSet {
	return &DetectorSet{rec: rec}
}

// Add registers one SLO with its detector config and returns the detector.
func (s *DetectorSet) Add(slo SLO, cfg DetectorConfig) (*Detector, error) {
	if err := slo.validate(); err != nil {
		return nil, err
	}
	cfg.withDefaults()
	d := &Detector{slo: slo, cfg: cfg}
	s.mu.Lock()
	s.ds = append(s.ds, d)
	s.mu.Unlock()
	return d, nil
}

// MustAdd is Add, panicking on error — a bad SLO definition is a wiring
// bug.
func (s *DetectorSet) MustAdd(slo SLO, cfg DetectorConfig) *Detector {
	d, err := s.Add(slo, cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// detectors snapshots the detector list without holding the lock during
// evaluation.
func (s *DetectorSet) detectors() []*Detector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Detector(nil), s.ds...)
}

// Eval samples every detector at now, journaling fire/clear transitions.
// Callers drive the cadence: experiments call it from their tick loop (so
// detector behavior is deterministic under a virtual clock), binaries from
// Run's ticker.
func (s *DetectorSet) Eval(now time.Time) {
	for _, d := range s.detectors() {
		switch d.eval(now) {
		case +1:
			st := d.State()
			s.rec.Record(Event{
				Class: EvDetectorFire, Plane: PlaneFlight, TimeNs: now.UnixNano(),
				Detail: d.slo.Name, Value: st.BurnShort,
			})
		case -1:
			s.rec.Record(Event{
				Class: EvDetectorClear, Plane: PlaneFlight, TimeNs: now.UnixNano(),
				Detail: d.slo.Name,
			})
		}
	}
}

// States returns every detector's current state, in Add order.
func (s *DetectorSet) States() []DetectorState {
	ds := s.detectors()
	out := make([]DetectorState, 0, len(ds))
	for _, d := range ds {
		out = append(out, d.State())
	}
	return out
}

// Run evaluates the set every interval until stop closes. Binaries use
// this; experiments call Eval from their own loop instead.
func (s *DetectorSet) Run(stop <-chan struct{}, every time.Duration) {
	if every <= 0 {
		every = time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			s.Eval(now)
		}
	}
}

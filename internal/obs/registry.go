package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a concurrency-safe collection of named instruments. Names
// follow Prometheus conventions (waran_<subsystem>_<what>[_total|_us]);
// the same name may be registered many times with different labels (one
// series per cell, slice, pool, ...). Registration order is preserved in
// exposition so related series stay adjacent.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
	byKey   map[string]*entry
	snapSeq atomic.Uint64 // metric-exempt: snapshot-header sequence, not telemetry
}

type entry struct {
	name   string
	labels []Label
	help   string
	inst   Instrument
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*entry)}
}

// seriesKey is the unique identity of one registered series.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// Register adds an externally owned instrument under name+labels. It fails
// if the exact series is already registered.
func (r *Registry) Register(name, help string, inst Instrument, labels ...Label) error {
	if name == "" {
		return fmt.Errorf("obs: instrument name must not be empty")
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byKey[key]; dup {
		return fmt.Errorf("obs: series %s already registered", key)
	}
	e := &entry{name: name, labels: labels, help: help, inst: inst}
	r.byKey[key] = e
	r.entries = append(r.entries, e)
	return nil
}

// MustRegister is Register, panicking on error — duplicate registration is
// a wiring bug, not a runtime condition.
func (r *Registry) MustRegister(name, help string, inst Instrument, labels ...Label) {
	if err := r.Register(name, help, inst, labels...); err != nil {
		panic(err)
	}
}

// lookupOrRegister returns the existing instrument for the series or
// installs the one produced by mk.
func (r *Registry) lookupOrRegister(name, help string, mk func() Instrument, labels []Label) Instrument {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byKey[key]; ok {
		return e.inst
	}
	e := &entry{name: name, labels: labels, help: help, inst: mk()}
	r.byKey[key] = e
	r.entries = append(r.entries, e)
	return e.inst
}

// Counter returns the counter registered under name+labels, creating it on
// first use. It panics if the series exists with a different kind.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	inst := r.lookupOrRegister(name, help, func() Instrument { return &Counter{} }, labels)
	c, ok := inst.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: series %s is a %s, not a counter", seriesKey(name, labels), inst.InstrumentKind()))
	}
	return c
}

// Gauge returns the gauge registered under name+labels, creating it on
// first use. It panics if the series exists with a different kind.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	inst := r.lookupOrRegister(name, help, func() Instrument { return &Gauge{} }, labels)
	g, ok := inst.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: series %s is a %s, not a gauge", seriesKey(name, labels), inst.InstrumentKind()))
	}
	return g
}

// Histogram returns the histogram registered under name+labels, creating it
// on first use. It panics if the series exists with a different kind.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	inst := r.lookupOrRegister(name, help, func() Instrument { return NewHistogram() }, labels)
	h, ok := inst.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: series %s is a %s, not a histogram", seriesKey(name, labels), inst.InstrumentKind()))
	}
	return h
}

// Len reports the number of registered series.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// snapshotEntries copies the entry list so collection runs without holding
// the registry lock (instruments synchronize themselves).
func (r *Registry) snapshotEntries() []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*entry(nil), r.entries...)
}

// SnapshotHeaderKey is the reserved Snapshot key carrying the snapshot
// header. It starts with "_" so it can never collide with a series key
// (instrument names follow Prometheus conventions, waran_*).
const SnapshotHeaderKey = "_snapshot"

// SnapshotHeader stamps one Snapshot call: wall-clock time plus a
// per-registry monotonic sequence, so two snapshots embedded in a
// diagnostic bundle can be ordered, diffed and rate-computed even when the
// wall clock steps.
type SnapshotHeader struct {
	UnixNanos int64  `json:"unix_nanos"`
	Seq       uint64 `json:"seq"`
}

// Snapshot returns every series' flat JSON value keyed by its full series
// name (labels included), ready to embed in experiment output, plus a
// SnapshotHeader under SnapshotHeaderKey. The header never appears in
// Prometheus exposition (WritePrometheus does not consume Snapshot).
func (r *Registry) Snapshot() map[string]any {
	entries := r.snapshotEntries()
	out := make(map[string]any, len(entries)+1)
	out[SnapshotHeaderKey] = SnapshotHeader{
		UnixNanos: time.Now().UnixNano(),
		Seq:       r.snapSeq.Add(1),
	}
	for _, e := range entries {
		out[seriesKey(e.name, e.labels)] = e.inst.JSONValue()
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). HELP/TYPE headers are emitted once per metric
// name; untyped multi-sample instruments get HELP only, since their samples
// carry suffixed names.
func (r *Registry) WritePrometheus(w io.Writer) error {
	entries := r.snapshotEntries()
	headerDone := make(map[string]bool, len(entries))
	for _, e := range entries {
		if !headerDone[e.name] {
			headerDone[e.name] = true
			if e.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.name, sanitizeHelp(e.help)); err != nil {
					return err
				}
			}
			if kind := e.inst.InstrumentKind(); kind != KindUntyped {
				if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.name, kind); err != nil {
					return err
				}
			}
		}
		for _, s := range e.inst.Samples() {
			labels := e.labels
			if len(s.Labels) > 0 {
				labels = append(append([]Label(nil), e.labels...), s.Labels...)
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n",
				e.name+s.Suffix, renderLabels(labels), formatValue(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// PrometheusText renders the registry to a string (convenience for tests
// and logging).
func (r *Registry) PrometheusText() string {
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	return b.String()
}

// SeriesNames returns all registered series keys, sorted — handy for
// -list-style introspection and tests.
func (r *Registry) SeriesNames() []string {
	entries := r.snapshotEntries()
	out := make([]string, 0, len(entries))
	for _, e := range entries {
		out = append(out, seriesKey(e.name, e.labels))
	}
	sort.Strings(out)
	return out
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sanitizeHelp(help string) string {
	return strings.NewReplacer("\n", " ", "\\", `\\`).Replace(help)
}

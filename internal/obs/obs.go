// Package obs is WA-RAN's unified observability layer: a concurrency-safe
// metric registry (counters, gauges, P²-backed histograms), a fixed-size
// per-slot trace ring, and live exposition over HTTP (Prometheus text at
// /metrics, structured slot traces at /debug/slots, pprof).
//
// Every stats-bearing subsystem registers its instruments here instead of
// growing private counter structs: core.GNB/CellGroup register slot latency
// and deadline accounting, wabi registers pool and module-cache occupancy,
// sched registers per-call plugin cost (wall time and fuel), and the E2
// layer registers association-resilience counters. One registry per process
// (or per experiment) is then exposed live by cmd/gnb and cmd/ric, and
// embedded as a flat JSON snapshot in every experiment's output by
// cmd/waranbench.
//
// Storage reuses internal/metrics primitives: histograms stream quantiles
// through metrics.P2, and metrics.DeadlineMeter plugs into the registry via
// DeadlineInstrument. The package has no dependencies beyond the standard
// library and internal/metrics, so every layer of the stack may import it.
package obs

// Label is one key=value dimension attached to an instrument, rendered in
// Prometheus exposition as name{key="value"} and in snapshot keys verbatim.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind classifies an instrument for the Prometheus TYPE line.
type Kind string

// Instrument kinds. KindUntyped marks multi-sample adapters whose samples
// carry their own suffixed names (no single TYPE applies).
const (
	KindCounter Kind = "counter"
	KindGauge   Kind = "gauge"
	KindSummary Kind = "summary"
	KindUntyped Kind = "untyped"
)

// Sample is one exposition line of an instrument: the metric name is the
// instrument's registered name plus Suffix, labelled with the instrument's
// labels plus Labels.
type Sample struct {
	Suffix string
	Labels []Label
	Value  float64
}

// Instrument is anything the registry can expose. Implementations must be
// safe for concurrent use: collection runs on the HTTP scrape goroutine
// while the instrumented subsystem keeps updating.
type Instrument interface {
	// InstrumentKind reports the Prometheus type.
	InstrumentKind() Kind
	// Samples returns the current exposition lines.
	Samples() []Sample
	// JSONValue returns the flat, encoding/json-marshalable snapshot value.
	JSONValue() any
}

package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"waran/internal/obs/trace"
)

// TestAnnotateLastUnderConcurrentAdd hammers AnnotateLast while producers
// keep wrapping the ring: run with -race, the point is that annotation never
// touches an event outside the lock or trips on a concurrent eviction.
func TestAnnotateLastUnderConcurrentAdd(t *testing.T) {
	ring := NewTraceRing(32)
	const cells = 4
	stop := make(chan struct{})

	var producers sync.WaitGroup
	for c := 0; c < cells; c++ {
		producers.Add(1)
		go func(c int) {
			defer producers.Done()
			for i := 0; i < 2000; i++ {
				ring.Add(SlotEvent{Slot: uint64(i), Cell: c})
			}
		}(c)
	}

	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for c := 0; c < cells; c++ {
				ring.AnnotateLast(c, func(ev *SlotEvent) {
					ev.E2Sent++
					if ev.Cell != c {
						t.Errorf("annotated cell %d, asked for %d", ev.Cell, c)
					}
				})
			}
			_ = ring.Last(16)
		}
	}()

	producers.Wait()
	close(stop)
	readers.Wait()

	if ring.Len() != 32 {
		t.Fatalf("ring len %d, want 32", ring.Len())
	}
}

func decodeSlots(t *testing.T, body []byte) (int, []SlotEvent) {
	t.Helper()
	var resp struct {
		Count int         `json:"count"`
		Slots []SlotEvent `json:"slots"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	return resp.Count, resp.Slots
}

func TestSlotsHandlerFilters(t *testing.T) {
	ring := NewTraceRing(256)
	for i := 0; i < 100; i++ {
		ring.Add(SlotEvent{Slot: uint64(i), Cell: i % 4})
	}
	cases := []struct {
		name      string
		url       string
		status    int
		wantCount int
		wantCell  int // -1 = mixed
	}{
		{"default", "/debug/slots", 200, 64, -1},
		{"explicit n", "/debug/slots?n=10", 200, 10, -1},
		{"n above ring", "/debug/slots?n=1000", 200, 100, -1},
		{"n above hard cap", "/debug/slots?n=99999", 200, 100, -1},
		{"cell filter", "/debug/slots?cell=2", 200, 25, 2},
		{"cell plus n", "/debug/slots?cell=1&n=5", 200, 5, 1},
		{"cell with no events", "/debug/slots?cell=9", 200, 0, -1},
		{"bad n", "/debug/slots?n=zero", 400, 0, -1},
		{"negative n", "/debug/slots?n=-3", 400, 0, -1},
		{"bad cell", "/debug/slots?cell=x", 400, 0, -1},
		{"negative cell", "/debug/slots?cell=-1", 400, 0, -1},
	}
	h := SlotsHandler(ring)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", tc.url, nil))
			if rec.Code != tc.status {
				t.Fatalf("status %d, want %d", rec.Code, tc.status)
			}
			if tc.status != 200 {
				return
			}
			count, slots := decodeSlots(t, rec.Body.Bytes())
			if count != tc.wantCount || len(slots) != tc.wantCount {
				t.Fatalf("count %d (len %d), want %d", count, len(slots), tc.wantCount)
			}
			if tc.wantCell >= 0 {
				for _, ev := range slots {
					if ev.Cell != tc.wantCell {
						t.Fatalf("event from cell %d, want %d", ev.Cell, tc.wantCell)
					}
				}
			}
		})
	}

	// Nil ring serves an empty list, not a panic.
	rec := httptest.NewRecorder()
	SlotsHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slots", nil))
	if count, _ := decodeSlots(t, rec.Body.Bytes()); count != 0 {
		t.Fatalf("nil ring served %d events", count)
	}
}

// TestSlotsHandlerCellFilterSeesStarvedCell pins the reason the cell filter
// scans the whole ring: a cell whose events are rare must still be visible
// even when other cells dominate the tail of the ring.
func TestSlotsHandlerCellFilterSeesStarvedCell(t *testing.T) {
	ring := NewTraceRing(128)
	ring.Add(SlotEvent{Slot: 1, Cell: 7})
	for i := 0; i < 100; i++ {
		ring.Add(SlotEvent{Slot: uint64(2 + i), Cell: 0})
	}
	rec := httptest.NewRecorder()
	SlotsHandler(ring).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slots?cell=7&n=4", nil))
	count, slots := decodeSlots(t, rec.Body.Bytes())
	if count != 1 || slots[0].Cell != 7 {
		t.Fatalf("starved cell invisible: count=%d slots=%+v", count, slots)
	}
}

func TestMetricsJSONHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("waran_test_total", "test counter").Add(3)
	rec := httptest.NewRecorder()
	MetricsJSONHandler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/metrics.json", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var snap map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if _, ok := snap["waran_test_total"]; !ok {
		t.Fatalf("snapshot missing registered series: %v", snap)
	}
}

type fakeProfile struct{}

func (fakeProfile) ProfileJSON() any { return map[string]int{"funcs": 2} }
func (fakeProfile) Folded() string   { return "a;b 10\n" }

func TestWasmProfileHandler(t *testing.T) {
	rec := httptest.NewRecorder()
	WasmProfileHandler(fakeProfile{}).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/wasm/profile", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "funcs") {
		t.Fatalf("JSON form: status %d body %q", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	WasmProfileHandler(fakeProfile{}).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/wasm/profile?format=folded", nil))
	if rec.Body.String() != "a;b 10\n" {
		t.Fatalf("folded form: %q", rec.Body.String())
	}
	rec = httptest.NewRecorder()
	WasmProfileHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/wasm/profile", nil))
	if rec.Code != 200 {
		t.Fatalf("nil source: status %d", rec.Code)
	}
}

// TestMuxMountsOptions proves the option-mounted endpoints and the always-on
// metrics.json surface are reachable through NewMux.
func TestMuxMountsOptions(t *testing.T) {
	reg := NewRegistry()
	tr := trace.NewTracer(16)
	mux := NewMux(reg, nil, WithTracer(tr), WithWasmProfile(fakeProfile{}))
	for _, url := range []string{"/metrics", "/debug/metrics.json", "/debug/slots", "/debug/trace", "/debug/wasm/profile"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != 200 {
			t.Errorf("%s: status %d", url, rec.Code)
		}
	}
}

package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"waran/internal/metrics"
)

// Counter is a monotonically increasing event counter, safe for concurrent
// use. The zero value is ready; it may be embedded as a struct field and
// registered with Registry.Register.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.n.Add(delta) }

// Value returns the count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// InstrumentKind implements Instrument.
func (c *Counter) InstrumentKind() Kind { return KindCounter }

// Samples implements Instrument.
func (c *Counter) Samples() []Sample { return []Sample{{Value: float64(c.Value())}} }

// JSONValue implements Instrument.
func (c *Counter) JSONValue() any { return c.Value() }

// Gauge is a last-value instrument that can also accumulate (Add), safe for
// concurrent use. The zero value is ready.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits
}

// Set records the current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add accumulates delta (CAS loop; gauges are updated far less often than
// counters, so contention is negligible).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// InstrumentKind implements Instrument.
func (g *Gauge) InstrumentKind() Kind { return KindGauge }

// Samples implements Instrument.
func (g *Gauge) Samples() []Sample { return []Sample{{Value: g.Value()}} }

// JSONValue implements Instrument.
func (g *Gauge) JSONValue() any { return g.Value() }

// Histogram is a streaming distribution instrument: O(1) memory regardless
// of stream length, tracking count, sum, min, max and the P² estimates for
// p50/p90/p99 (metrics.P2 as the storage layer). It is exposed as a
// Prometheus summary. Safe for concurrent use.
type Histogram struct {
	mu    sync.Mutex
	count uint64
	sum   float64
	min   float64
	max   float64
	p50   *metrics.P2
	p90   *metrics.P2
	p99   *metrics.P2
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{
		p50: metrics.NewP2(0.50),
		p90: metrics.NewP2(0.90),
		p99: metrics.NewP2(0.99),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.p50.Add(v)
	h.p90.Add(v)
	h.p99.Add(v)
	h.mu.Unlock()
}

// ObserveDuration records a duration in microseconds, the unit of the
// paper's latency plots.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d.Nanoseconds()) / 1e3)
}

// HistogramStats is the flat snapshot of a Histogram.
type HistogramStats struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Stats returns the current distribution summary.
func (h *Histogram) Stats() HistogramStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramStats{
		Count: h.count,
		Sum:   h.sum,
		Min:   h.min,
		Max:   h.max,
		P50:   h.p50.Value(),
		P90:   h.p90.Value(),
		P99:   h.p99.Value(),
	}
}

// InstrumentKind implements Instrument.
func (h *Histogram) InstrumentKind() Kind { return KindSummary }

// Samples implements Instrument: the summary quantiles plus _sum, _count
// and _max (the last as a suffixed extra the deadline analysis needs).
func (h *Histogram) Samples() []Sample {
	s := h.Stats()
	return []Sample{
		{Labels: []Label{L("quantile", "0.5")}, Value: s.P50},
		{Labels: []Label{L("quantile", "0.9")}, Value: s.P90},
		{Labels: []Label{L("quantile", "0.99")}, Value: s.P99},
		{Suffix: "_sum", Value: s.Sum},
		{Suffix: "_count", Value: float64(s.Count)},
		{Suffix: "_max", Value: s.Max},
	}
}

// JSONValue implements Instrument.
func (h *Histogram) JSONValue() any { return h.Stats() }

// Func adapts externally owned state to the registry: Collect produces the
// exposition samples and JSON the snapshot value, both invoked at scrape
// time. Collect and JSON must be safe to call concurrently with the owner's
// updates (read through the owner's synchronized accessors).
type Func struct {
	Kind    Kind
	Collect func() []Sample
	JSON    func() any
}

// InstrumentKind implements Instrument.
func (f Func) InstrumentKind() Kind { return f.Kind }

// Samples implements Instrument.
func (f Func) Samples() []Sample { return f.Collect() }

// JSONValue implements Instrument.
func (f Func) JSONValue() any { return f.JSON() }

// DeadlineInstrument adapts a metrics.DeadlineMeter to the registry, so the
// cell-group watchdog's accounting (slots, overruns, worst, streaming P99)
// flows through the same exposition as every other instrument.
func DeadlineInstrument(m *metrics.DeadlineMeter) Instrument {
	return Func{
		Kind: KindUntyped,
		Collect: func() []Sample {
			s := m.Stats()
			return []Sample{
				{Suffix: "_slots_total", Value: float64(s.Slots)},
				{Suffix: "_overruns_total", Value: float64(s.Overruns)},
				{Suffix: "_worst_us", Value: float64(s.Worst.Nanoseconds()) / 1e3},
				{Suffix: "_p99_us", Value: s.P99us},
				{Suffix: "_budget_us", Value: float64(s.Deadline.Nanoseconds()) / 1e3},
			}
		},
		JSON: func() any { return m.Stats() },
	}
}

package trace

import (
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
)

func TestContextValidityAndIDs(t *testing.T) {
	var zero Context
	if zero.Valid() {
		t.Fatal("zero context must be invalid")
	}
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatal("NewTraceID returned 0")
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %#x", id)
		}
		seen[id] = true
	}
	ctx := NewContext()
	if !ctx.Valid() {
		t.Fatal("NewContext must be valid")
	}
	child := ctx.Child()
	if child.TraceID != ctx.TraceID || child.SpanID == ctx.SpanID {
		t.Fatalf("child %+v does not descend from %+v", child, ctx)
	}
}

func TestSpanRingWrapsOldestFirst(t *testing.T) {
	r := NewSpanRing(4)
	for i := 0; i < 7; i++ {
		r.Add(&Span{Slot: uint64(i)})
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("len %d, want 4", len(got))
	}
	for i, sp := range got {
		if want := uint64(3 + i); sp.Slot != want {
			t.Errorf("slot[%d] = %d, want %d", i, sp.Slot, want)
		}
	}
	if r.Len() != 4 {
		t.Fatalf("Len %d, want 4", r.Len())
	}
}

func TestSpanRingConcurrentAddAndSnapshot(t *testing.T) {
	r := NewSpanRing(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Add(&Span{Slot: uint64(w*1000 + i)})
				if i%50 == 0 {
					for _, sp := range r.Snapshot() {
						_ = sp.Slot
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != 64 {
		t.Fatalf("Len %d, want 64", r.Len())
	}
}

func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Record(&Span{Name: SpanTransport}) // must not panic
	if got := tr.Snapshot(); len(got) != 0 {
		t.Fatalf("nil tracer snapshot has %d spans", len(got))
	}
}

func TestTracerRoutesPlanes(t *testing.T) {
	tr := NewTracer(16)
	tr.Record(&Span{Name: SpanGNBApply, Plane: PlaneGNB, StartNs: 2})
	tr.Record(&Span{Name: SpanRICDecode, Plane: PlaneRIC, StartNs: 1})
	tr.Record(&Span{Name: "x", Plane: "unknown"}) // dropped, not panicking
	if n := tr.Ring(PlaneGNB).Len(); n != 1 {
		t.Fatalf("gnb ring has %d spans, want 1", n)
	}
	all := tr.Snapshot()
	if len(all) != 2 {
		t.Fatalf("snapshot has %d spans, want 2", len(all))
	}
	if all[0].StartNs > all[1].StartNs {
		t.Fatal("snapshot not sorted by start time")
	}
}

func TestHopStatsCanonicalOrderAndPercentiles(t *testing.T) {
	var spans []*Span
	// 100 transport spans of 1..100 µs, plus one apply span.
	for i := 1; i <= 100; i++ {
		spans = append(spans, &Span{Name: SpanTransport, DurNs: int64(i) * 1000})
	}
	spans = append(spans, &Span{Name: SpanGNBApply, DurNs: 5000})
	stats := HopStats(spans)
	if len(stats) != 2 {
		t.Fatalf("got %d hop stats, want 2", len(stats))
	}
	// Canonical order puts transport before gnb.apply.
	if stats[0].Name != SpanTransport || stats[1].Name != SpanGNBApply {
		t.Fatalf("order %s, %s", stats[0].Name, stats[1].Name)
	}
	tr := stats[0]
	if tr.Count != 100 || tr.P50Us < 49 || tr.P50Us > 51 || tr.P99Us < 98 || tr.MaxUs != 100 {
		t.Fatalf("transport stats %+v", tr)
	}
}

func TestDistinctAndMaxTraceHopKinds(t *testing.T) {
	spans := []*Span{
		{TraceID: 1, Name: SpanIndicationEncode},
		{TraceID: 1, Name: SpanTransport},
		{TraceID: 1, Name: SpanTransport}, // repeat: same kind
		{TraceID: 2, Name: SpanGNBApply},
	}
	if got := DistinctHopKinds(spans); got != 3 {
		t.Fatalf("DistinctHopKinds %d, want 3", got)
	}
	if got := MaxTraceHopKinds(spans); got != 2 {
		t.Fatalf("MaxTraceHopKinds %d, want 2", got)
	}
}

func TestSpanNamesTableCoversConstants(t *testing.T) {
	want := []string{
		SpanIndicationEncode, SpanTransport, SpanRICDecode, SpanXAppInvoke,
		SpanControlEncode, SpanGNBApply, SpanSwapCanary, SpanSlotEffect,
		SpanShed, SpanBrownoutShift,
	}
	if len(SpanNames) != len(want) {
		t.Fatalf("SpanNames has %d entries, want %d", len(SpanNames), len(want))
	}
	for i, name := range want {
		if SpanNames[i] != name {
			t.Errorf("SpanNames[%d] = %q, want %q", i, SpanNames[i], name)
		}
	}
}

func TestHandlerServesChromeTrace(t *testing.T) {
	tr := NewTracer(16)
	ctx := NewContext()
	tr.Record(&Span{
		TraceID: ctx.TraceID, SpanID: ctx.SpanID,
		Name: SpanIndicationEncode, Plane: PlaneGNB, StartNs: 1000, DurNs: 2000,
	})
	tr.Record(&Span{
		TraceID: NewTraceID(), SpanID: NewSpanID(),
		Name: SpanRICDecode, Plane: PlaneRIC, StartNs: 3000, DurNs: 500,
	})

	cases := []struct {
		name, url string
		events    int
	}{
		{"all", "/debug/trace", 2},
		{"plane filter", "/debug/trace?plane=gnb", 1},
		{"trace filter", "/debug/trace?trace=" + strconv.FormatUint(ctx.TraceID, 16), 1},
		{"no match", "/debug/trace?trace=1", 0},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", tc.url, nil))
		if rec.Code != 200 {
			t.Fatalf("%s: status %d", tc.name, rec.Code)
		}
		var body struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("%s: bad JSON: %v", tc.name, err)
		}
		if len(body.TraceEvents) != tc.events {
			t.Errorf("%s: %d events, want %d", tc.name, len(body.TraceEvents), tc.events)
		}
	}

	// A nil tracer serves an empty, valid document.
	rec := httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if rec.Code != 200 {
		t.Fatalf("nil tracer: status %d", rec.Code)
	}
}

// TestSpanRingSnapshotSince covers the incremental cursor the bundle writer
// chains: only spans published after the cursor span come back, a rolled-off
// cursor degrades to the full window, and empty results share one slice.
func TestSpanRingSnapshotSince(t *testing.T) {
	r := NewSpanRing(8)
	for i := 1; i <= 5; i++ {
		r.Add(&Span{SpanID: uint64(i), Slot: uint64(i)})
	}

	inc := r.SnapshotSince(3)
	if len(inc) != 2 || inc[0].SpanID != 4 || inc[1].SpanID != 5 {
		t.Fatalf("SnapshotSince(3) = %v spans, want [4 5]", len(inc))
	}

	// Cursor at the newest span: nothing new, and the empty result must be
	// the shared slice (len 0 cap 0), not a fresh allocation per poll.
	none := r.SnapshotSince(5)
	if len(none) != 0 || cap(none) != 0 {
		t.Fatalf("SnapshotSince(tip) = len %d cap %d, want the shared empty slice", len(none), cap(none))
	}

	// Unknown / rolled-off cursor: full window.
	for i := 6; i <= 14; i++ { // overwrite span 3 entirely
		r.Add(&Span{SpanID: uint64(i), Slot: uint64(i)})
	}
	full := r.SnapshotSince(3)
	if len(full) != 8 || full[0].SpanID != 7 {
		t.Fatalf("rolled-off cursor: got %d spans starting at %d, want full window of 8 starting at 7", len(full), full[0].SpanID)
	}

	// Nil and empty rings return the shared empty slice too.
	var nilRing *SpanRing
	if s := nilRing.SnapshotSince(0); len(s) != 0 || cap(s) != 0 {
		t.Fatal("nil ring must return the shared empty slice")
	}
	if s := NewSpanRing(4).Snapshot(); len(s) != 0 || cap(s) != 0 {
		t.Fatal("empty ring must return the shared empty slice")
	}
}

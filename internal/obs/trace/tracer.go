package trace

import "sort"

// Tracer owns one SpanRing per plane. A nil *Tracer is the disabled tracer:
// Enabled() is false, Record is a no-op, Snapshot returns nothing — so every
// instrumentation site can hold a possibly-nil Tracer and pay only a pointer
// comparison when tracing is off.
type Tracer struct {
	planes map[string]*SpanRing
	order  []string
}

// NewTracer builds a tracer with one ring of perPlaneCap spans for each
// named plane. Unknown planes recorded later are dropped (closed taxonomy).
func NewTracer(perPlaneCap int, planes ...string) *Tracer {
	if len(planes) == 0 {
		planes = []string{PlaneGNB, PlaneRIC}
	}
	t := &Tracer{planes: make(map[string]*SpanRing, len(planes))}
	for _, p := range planes {
		if _, dup := t.planes[p]; dup {
			continue
		}
		t.planes[p] = NewSpanRing(perPlaneCap)
		t.order = append(t.order, p)
	}
	return t
}

// Enabled reports whether spans recorded on t go anywhere.
func (t *Tracer) Enabled() bool { return t != nil }

// Record publishes sp to its plane's ring. Safe on a nil tracer.
func (t *Tracer) Record(sp *Span) {
	if t == nil || sp == nil {
		return
	}
	t.planes[sp.Plane].Add(sp) // nil ring (unknown plane) drops the span
}

// Ring returns the ring for one plane, or nil.
func (t *Tracer) Ring(plane string) *SpanRing {
	if t == nil {
		return nil
	}
	return t.planes[plane]
}

// Planes lists the configured planes in registration order.
func (t *Tracer) Planes() []string {
	if t == nil {
		return nil
	}
	return t.order
}

// Snapshot returns every readable span across all planes, sorted by start
// time, so consumers see one coherent timeline.
func (t *Tracer) Snapshot() []*Span {
	if t == nil {
		return nil
	}
	var out []*Span
	for _, p := range t.order {
		out = append(out, t.planes[p].Snapshot()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartNs < out[j].StartNs })
	return out
}

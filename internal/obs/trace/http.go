package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// chromeEvent is one complete ("ph":"X") event in the Chrome trace-viewer
// JSON Array/Object format understood by chrome://tracing and Perfetto.
// Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TsUs float64        `json:"ts"`
	DurU float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level trace-viewer object.
type chromeTrace struct {
	TraceEvents []chromeEvent  `json:"traceEvents"`
	Metadata    map[string]any `json:"metadata,omitempty"`
}

// ChromeTrace renders a span set as Chrome trace-viewer JSON. Planes become
// pids (process lanes); each trace becomes a tid within its plane, so one
// control decision reads as one row. Timestamps are rebased to the earliest
// span so the view opens at t=0.
func ChromeTrace(spans []*Span, planeOrder []string) *chromeTrace {
	planePID := make(map[string]int, len(planeOrder))
	for i, p := range planeOrder {
		planePID[p] = i + 1
	}
	var base int64
	for _, sp := range spans {
		if base == 0 || sp.StartNs < base {
			base = sp.StartNs
		}
	}
	traceTID := make(map[uint64]int)
	evs := make([]chromeEvent, 0, len(spans))
	for _, sp := range spans {
		pid, ok := planePID[sp.Plane]
		if !ok {
			pid = len(planePID) + 1
			planePID[sp.Plane] = pid
			planeOrder = append(planeOrder, sp.Plane)
		}
		tid, ok := traceTID[sp.TraceID]
		if !ok {
			tid = len(traceTID) + 1
			traceTID[sp.TraceID] = tid
		}
		args := map[string]any{
			"trace_id": fmt.Sprintf("%016x", sp.TraceID),
			"span_id":  fmt.Sprintf("%016x", sp.SpanID),
		}
		if sp.Parent != 0 {
			args["parent_id"] = fmt.Sprintf("%016x", sp.Parent)
		}
		if sp.Slot != 0 {
			args["slot"] = sp.Slot
		}
		if sp.Cell != 0 {
			args["cell"] = sp.Cell
		}
		if sp.Err != "" {
			args["err"] = sp.Err
		}
		evs = append(evs, chromeEvent{
			Name: sp.Name,
			Cat:  sp.Plane,
			Ph:   "X",
			TsUs: float64(sp.StartNs-base) / 1e3,
			DurU: float64(sp.DurNs) / 1e3,
			PID:  pid,
			TID:  tid,
			Args: args,
		})
	}
	md := map[string]any{"planes": planeOrder, "spans": len(spans)}
	return &chromeTrace{TraceEvents: evs, Metadata: md}
}

// Handler serves the tracer's current spans as Chrome trace-viewer JSON.
//
//	GET /debug/trace              — every plane
//	GET /debug/trace?plane=gnb    — one plane
//	GET /debug/trace?trace=<hex>  — one decision's span tree
//
// Load the payload via chrome://tracing or ui.perfetto.dev.
func Handler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		spans := t.Snapshot()
		if plane := req.URL.Query().Get("plane"); plane != "" {
			kept := spans[:0]
			for _, sp := range spans {
				if sp.Plane == plane {
					kept = append(kept, sp)
				}
			}
			spans = kept
		}
		if traceHex := req.URL.Query().Get("trace"); traceHex != "" {
			id, err := strconv.ParseUint(traceHex, 16, 64)
			if err != nil {
				http.Error(w, "trace: bad ?trace= id: "+err.Error(), http.StatusBadRequest)
				return
			}
			kept := spans[:0]
			for _, sp := range spans {
				if sp.TraceID == id {
					kept = append(kept, sp)
				}
			}
			spans = kept
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(ChromeTrace(spans, t.Planes()))
	})
}

// Package trace is WA-RAN's causal tracing layer: it follows one control
// decision end-to-end — gNB indication, E2 transport, RIC decode, xApp
// invocation, control delivery, supervised hot-swap, and the first slot the
// decision affects — as a tree of spans sharing a TraceID.
//
// The design mirrors W3C trace-context propagation scaled down to E2-lite:
// a 16-byte Context (TraceID, SpanID) is stamped where a decision originates
// and carried inside the E2 message header (see internal/e2's trace
// trailer), so each hop parents its spans to the previous hop's span across
// process planes. Spans land in lock-free per-plane SpanRings and are served
// as Chrome-trace-viewer JSON at /debug/trace.
//
// A nil *Tracer is a valid, fully disabled tracer: every method is a no-op,
// and every instrumentation site guards with Enabled() so the disabled path
// costs one pointer comparison and zero allocations.
package trace

import "sync/atomic"

// Context identifies one position in a trace: the decision's TraceID plus
// the SpanID of the most recent span, which the next hop parents to. It is
// exactly 16 bytes — the wire size of the E2 trace header.
type Context struct {
	TraceID uint64 `json:"trace_id"`
	SpanID  uint64 `json:"span_id"`
}

// Valid reports whether the context belongs to a live trace. The zero
// Context means "untraced" everywhere.
func (c Context) Valid() bool { return c.TraceID != 0 }

// Child returns a context for the next span in the same trace.
func (c Context) Child() Context { return Context{TraceID: c.TraceID, SpanID: NewSpanID()} }

// idSeq feeds the ID generator. IDs must only be unique and nonzero within
// a process, so a scrambled counter suffices — and keeps experiment output
// deterministic, unlike crypto randomness.
var idSeq atomic.Uint64 // metric-exempt: ID generator state, not telemetry

// newID scrambles the next sequence number through the splitmix64 finalizer
// so IDs are unique, nonzero and well spread across the 64-bit space.
func newID() uint64 {
	x := idSeq.Add(1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// NewTraceID allocates a fresh trace identifier.
func NewTraceID() uint64 { return newID() }

// NewSpanID allocates a fresh span identifier.
func NewSpanID() uint64 { return newID() }

// NewContext starts a new trace: fresh TraceID, fresh root SpanID.
func NewContext() Context { return Context{TraceID: NewTraceID(), SpanID: NewSpanID()} }

// Span is one timed hop of a control decision. Parent links spans into the
// per-decision tree; Plane says which process half recorded it.
type Span struct {
	TraceID uint64 `json:"trace_id"`
	SpanID  uint64 `json:"span_id"`
	Parent  uint64 `json:"parent_id,omitempty"`
	Name    string `json:"name"`
	Plane   string `json:"plane"`
	Slot    uint64 `json:"slot,omitempty"`
	Cell    uint32 `json:"cell,omitempty"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
	Err     string `json:"err,omitempty"`
}

// Ctx returns the context a child hop should parent to.
func (s *Span) Ctx() Context { return Context{TraceID: s.TraceID, SpanID: s.SpanID} }

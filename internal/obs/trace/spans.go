package trace

// Span name constants — the complete hop taxonomy of one control decision.
//
// This file is the single source of truth for span names: `make lint-metrics`
// fails the build if a `Span… = "…"` constant is declared anywhere else, or
// if a constant declared here is missing from the SpanNames table below.
// Keeping the taxonomy closed is what makes per-hop p50/p99 breakdowns
// comparable across experiments.
const (
	// SpanIndicationEncode: gNB plane — building the KPM indication
	// (measurement snapshot under the gNB lock) plus codec encode time.
	SpanIndicationEncode = "indication.encode"

	// SpanTransport: either plane — the E2 frame on the wire, i.e. send
	// latency minus the encode time already attributed to its own span.
	SpanTransport = "transport"

	// SpanRICDecode: RIC plane — codec decode of an inbound indication.
	SpanRICDecode = "ric.decode"

	// SpanXAppInvoke: RIC plane — dispatching the indication payload
	// through every subscribed xApp's wasm entry point.
	SpanXAppInvoke = "xapp.invoke"

	// SpanControlEncode: RIC plane — encoding one resulting ControlRequest.
	SpanControlEncode = "control.encode"

	// SpanGNBApply: gNB plane — applying a received ControlRequest under
	// the gNB lock (slice retarget, scheduler upload, handover, …).
	SpanGNBApply = "gnb.apply"

	// SpanSwapCanary: gNB plane — the guard.Supervisor canary swap: shadow
	// replay of recorded slot inputs plus promote/reject of the candidate.
	SpanSwapCanary = "swap.canary"

	// SpanSlotEffect: gNB plane — from the decision being applied to the
	// end of the first slot the reconfigured scheduler actually serves;
	// closes the control loop.
	SpanSlotEffect = "slot.effect"

	// SpanShed: RIC plane — one queued KPM indication leaving the dispatch
	// path without being served (overflow eviction, stale shed, teardown
	// drain, late refusal); Err names the shed reason, DurNs is queue dwell.
	SpanShed = "ric.shed"

	// SpanBrownoutShift: RIC plane — one brownout state-machine transition;
	// Err names the edge ("normal->degraded").
	SpanBrownoutShift = "brownout.shift"
)

// SpanNames enumerates every span name in canonical hop order. Experiments
// and the /debug/trace handler iterate this table; lint-metrics checks that
// it and the constants above never drift apart.
var SpanNames = []string{
	SpanIndicationEncode,
	SpanTransport,
	SpanRICDecode,
	SpanXAppInvoke,
	SpanControlEncode,
	SpanGNBApply,
	SpanSwapCanary,
	SpanSlotEffect,
	SpanShed,
	SpanBrownoutShift,
}

// Plane labels: the two process halves of the control loop. A plane is a
// SpanRing key and becomes the "process" lane in the Chrome trace view.
const (
	PlaneGNB = "gnb"
	PlaneRIC = "ric"
)

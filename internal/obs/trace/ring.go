package trace

import "sync/atomic"

// SpanRing is a fixed-capacity, lock-free ring of completed spans. Writers
// from any goroutine claim a slot with one atomic add and publish the span
// with one atomic pointer store; readers snapshot whatever is published.
// Overwrite-on-wrap loses the oldest spans, never blocks the writer — the
// same discipline as obs.TraceRing, but without its mutex, because spans are
// recorded on latency-sensitive paths (slot loop, E2 receive loops).
type SpanRing struct {
	slots []atomic.Pointer[Span]
	mask  uint64
	next  atomic.Uint64 // metric-exempt: ring write cursor, not telemetry
}

// NewSpanRing returns a ring holding the most recent n spans; n is rounded
// up to a power of two (minimum 2) so slot claiming is a mask, not a modulo.
func NewSpanRing(n int) *SpanRing {
	capPow := 2
	for capPow < n {
		capPow <<= 1
	}
	return &SpanRing{slots: make([]atomic.Pointer[Span], capPow), mask: uint64(capPow - 1)}
}

// Add publishes a completed span. The span must not be mutated afterwards.
func (r *SpanRing) Add(sp *Span) {
	if r == nil || sp == nil {
		return
	}
	i := r.next.Add(1) - 1
	r.slots[i&r.mask].Store(sp)
}

// Len reports how many spans are currently readable.
func (r *SpanRing) Len() int {
	if r == nil {
		return 0
	}
	n := r.next.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Snapshot copies out every published span, oldest first. Under concurrent
// writes the copy is a consistent set of fully published spans (each slot is
// read with one atomic load); ordering across a wrap boundary is best-effort.
func (r *SpanRing) Snapshot() []*Span {
	if r == nil {
		return nil
	}
	n := r.next.Load()
	start := uint64(0)
	if n > uint64(len(r.slots)) {
		start = n - uint64(len(r.slots))
	}
	out := make([]*Span, 0, n-start)
	for i := start; i < n; i++ {
		if sp := r.slots[i&r.mask].Load(); sp != nil {
			out = append(out, sp)
		}
	}
	return out
}

package trace

import "sync/atomic"

// SpanRing is a fixed-capacity, lock-free ring of completed spans. Writers
// from any goroutine claim a slot with one atomic add and publish the span
// with one atomic pointer store; readers snapshot whatever is published.
// Overwrite-on-wrap loses the oldest spans, never blocks the writer — the
// same discipline as obs.TraceRing, but without its mutex, because spans are
// recorded on latency-sensitive paths (slot loop, E2 receive loops).
type SpanRing struct {
	slots []atomic.Pointer[Span]
	mask  uint64
	next  atomic.Uint64 // metric-exempt: ring write cursor, not telemetry
}

// NewSpanRing returns a ring holding the most recent n spans; n is rounded
// up to a power of two (minimum 2) so slot claiming is a mask, not a modulo.
func NewSpanRing(n int) *SpanRing {
	capPow := 2
	for capPow < n {
		capPow <<= 1
	}
	return &SpanRing{slots: make([]atomic.Pointer[Span], capPow), mask: uint64(capPow - 1)}
}

// Add publishes a completed span. The span must not be mutated afterwards.
func (r *SpanRing) Add(sp *Span) {
	if r == nil || sp == nil {
		return
	}
	i := r.next.Add(1) - 1
	r.slots[i&r.mask].Store(sp)
}

// Len reports how many spans are currently readable.
func (r *SpanRing) Len() int {
	if r == nil {
		return 0
	}
	n := r.next.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// emptySpans is the shared result for empty snapshots: scrape loops and
// bundle writers polling an idle ring must not allocate a fresh slice per
// poll.
var emptySpans = []*Span{}

// Snapshot copies out every published span, oldest first. Under concurrent
// writes the copy is a consistent set of fully published spans (each slot is
// read with one atomic load); ordering across a wrap boundary is best-effort.
// An empty or nil ring returns a shared empty slice — callers must not
// append to the result in place.
func (r *SpanRing) Snapshot() []*Span {
	return r.SnapshotSince(0)
}

// SnapshotSince is the incremental variant the bundle writer uses to avoid
// re-serializing old spans: it returns only the spans published after the
// span with ID sinceSpanID was published, oldest first. A zero or unknown
// sinceSpanID (e.g. the span has since been overwritten) returns the full
// snapshot. The caller chains calls by passing the last returned span's
// SpanID.
func (r *SpanRing) SnapshotSince(sinceSpanID uint64) []*Span {
	if r == nil {
		return emptySpans
	}
	n := r.next.Load()
	start := uint64(0)
	if n > uint64(len(r.slots)) {
		start = n - uint64(len(r.slots))
	}
	if n == start {
		return emptySpans
	}
	out := make([]*Span, 0, n-start)
	for i := start; i < n; i++ {
		if sp := r.slots[i&r.mask].Load(); sp != nil {
			out = append(out, sp)
		}
	}
	if sinceSpanID != 0 {
		// Keep only the suffix after the last occurrence of the cursor
		// span; if it rolled off the ring the full window is new.
		for i := len(out) - 1; i >= 0; i-- {
			if out[i].SpanID == sinceSpanID {
				out = out[i+1:]
				break
			}
		}
		if len(out) == 0 {
			return emptySpans
		}
	}
	return out
}

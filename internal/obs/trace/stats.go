package trace

import "sort"

// HopStat is the latency distribution of one span name across a span set.
type HopStat struct {
	Name  string  `json:"name"`
	Count int     `json:"count"`
	P50Us float64 `json:"p50_us"`
	P99Us float64 `json:"p99_us"`
	MaxUs float64 `json:"max_us"`
}

// HopStats groups spans by name and reports per-hop p50/p99/max in
// microseconds, ordered by the canonical SpanNames table (unknown names, if
// any, follow alphabetically). Percentiles are exact (sort-based): span sets
// come from bounded rings, so the input is small.
func HopStats(spans []*Span) []HopStat {
	byName := make(map[string][]float64)
	for _, sp := range spans {
		byName[sp.Name] = append(byName[sp.Name], float64(sp.DurNs)/1e3)
	}
	names := make([]string, 0, len(byName))
	seen := make(map[string]bool, len(byName))
	for _, n := range SpanNames {
		if _, ok := byName[n]; ok {
			names = append(names, n)
			seen[n] = true
		}
	}
	var extra []string
	for n := range byName {
		if !seen[n] {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	names = append(names, extra...)

	out := make([]HopStat, 0, len(names))
	for _, n := range names {
		ds := byName[n]
		sort.Float64s(ds)
		out = append(out, HopStat{
			Name:  n,
			Count: len(ds),
			P50Us: percentile(ds, 0.50),
			P99Us: percentile(ds, 0.99),
			MaxUs: ds[len(ds)-1],
		})
	}
	return out
}

// percentile reads the q-quantile from an ascending-sorted sample set using
// the nearest-rank method.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)) + 0.5)
	if i < 1 {
		i = 1
	}
	if i > len(sorted) {
		i = len(sorted)
	}
	return sorted[i-1]
}

// DistinctHopKinds counts the distinct span names in a span set.
func DistinctHopKinds(spans []*Span) int {
	seen := make(map[string]bool)
	for _, sp := range spans {
		seen[sp.Name] = true
	}
	return len(seen)
}

// MaxTraceHopKinds returns, over every TraceID in the span set, the largest
// number of distinct span names within a single trace — "how many hop kinds
// did the deepest control decision traverse".
func MaxTraceHopKinds(spans []*Span) int {
	byTrace := make(map[uint64]map[string]bool)
	for _, sp := range spans {
		m := byTrace[sp.TraceID]
		if m == nil {
			m = make(map[string]bool)
			byTrace[sp.TraceID] = m
		}
		m[sp.Name] = true
	}
	best := 0
	for _, m := range byTrace {
		if len(m) > best {
			best = len(m)
		}
	}
	return best
}

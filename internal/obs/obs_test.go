package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"waran/internal/metrics"
)

func TestCounterGaugeHistogram(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}

	var g Gauge
	g.Set(2.5)
	g.Add(-0.5)
	if g.Value() != 2.0 {
		t.Fatalf("gauge = %v, want 2.0", g.Value())
	}

	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Stats()
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("histogram stats = %+v", s)
	}
	if s.Sum != 5050 {
		t.Fatalf("sum = %v, want 5050", s.Sum)
	}
	if s.P50 < 40 || s.P50 > 60 {
		t.Fatalf("p50 = %v, want ~50", s.P50)
	}
	h.ObserveDuration(2 * time.Millisecond)
	if got := h.Stats().Max; got != 2000 {
		t.Fatalf("ObserveDuration recorded %v us, want 2000", got)
	}
}

func TestRegistryRegisterAndLookup(t *testing.T) {
	reg := NewRegistry()
	c1 := reg.Counter("waran_test_total", "test counter", L("cell", "0"))
	c2 := reg.Counter("waran_test_total", "test counter", L("cell", "0"))
	if c1 != c2 {
		t.Fatal("get-or-create returned distinct counters for the same series")
	}
	c3 := reg.Counter("waran_test_total", "test counter", L("cell", "1"))
	if c1 == c3 {
		t.Fatal("distinct labels must yield distinct series")
	}
	if reg.Len() != 2 {
		t.Fatalf("Len = %d, want 2", reg.Len())
	}
	if err := reg.Register("waran_test_total", "dup", &Counter{}, L("cell", "0")); err == nil {
		t.Fatal("duplicate Register must fail")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	reg.Gauge("waran_test_total", "wrong kind", L("cell", "0"))
}

func TestRegistrySnapshotAndPrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("waran_events_total", "events", L("cell", "0")).Add(7)
	reg.Gauge("waran_depth", "queue depth").Set(3)
	h := reg.Histogram("waran_lat_us", "latency", L("cell", "0"))
	for i := 0; i < 50; i++ {
		h.Observe(float64(i))
	}
	m := metrics.NewDeadlineMeter(time.Millisecond)
	m.Observe(500 * time.Microsecond)
	m.Observe(2 * time.Millisecond)
	reg.MustRegister("waran_deadline", "slot deadline accounting", DeadlineInstrument(m), L("cell", "0"))

	snap := reg.Snapshot()
	if got := snap[`waran_events_total{cell="0"}`]; got != uint64(7) {
		t.Fatalf("snapshot counter = %v (%T), want 7", got, got)
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not JSON-marshalable: %v", err)
	}

	text := reg.PrometheusText()
	for _, want := range []string{
		"# HELP waran_events_total events",
		"# TYPE waran_events_total counter",
		`waran_events_total{cell="0"} 7`,
		"# TYPE waran_depth gauge",
		"waran_depth 3",
		"# TYPE waran_lat_us summary",
		`waran_lat_us{cell="0",quantile="0.5"}`,
		`waran_lat_us_count{cell="0"} 50`,
		`waran_deadline_slots_total{cell="0"} 2`,
		`waran_deadline_overruns_total{cell="0"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
	if strings.Contains(text, "# TYPE waran_deadline") {
		t.Error("untyped instrument must not emit a TYPE line")
	}
}

// TestRegistryConcurrent hammers registration and collection from many
// goroutines; run under -race it proves the registry and instruments are
// safe to scrape while every subsystem updates.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cell := []string{"0", "1", "2"}[id%3]
			c := reg.Counter("waran_conc_total", "c", L("cell", cell))
			g := reg.Gauge("waran_conc_depth", "g", L("cell", cell))
			h := reg.Histogram("waran_conc_lat_us", "h", L("cell", cell))
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 100))
			}
		}(w)
	}
	// Concurrent scrapers.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = reg.PrometheusText()
				_ = reg.Snapshot()
			}
		}()
	}
	wg.Wait()

	var total uint64
	for _, cell := range []string{"0", "1", "2"} {
		total += reg.Counter("waran_conc_total", "c", L("cell", cell)).Value()
	}
	if total != workers*iters {
		t.Fatalf("counter total = %d, want %d", total, workers*iters)
	}
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(4)
	if r.Len() != 0 {
		t.Fatalf("empty ring Len = %d", r.Len())
	}
	for i := 0; i < 6; i++ {
		r.Add(SlotEvent{Slot: uint64(i), Cell: i % 2, WallUs: int64(i * 10)})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	last := r.Last(0)
	if len(last) != 4 || last[0].Slot != 2 || last[3].Slot != 5 {
		t.Fatalf("Last(0) = %+v", last)
	}
	two := r.Last(2)
	if len(two) != 2 || two[0].Slot != 4 || two[1].Slot != 5 {
		t.Fatalf("Last(2) = %+v", two)
	}
	// Most recent cell-0 event is slot 4.
	ok := r.AnnotateLast(0, func(ev *SlotEvent) { ev.E2Sent = 9 })
	if !ok {
		t.Fatal("AnnotateLast found no cell-0 event")
	}
	if got := r.Last(2)[0]; got.Slot != 4 || got.E2Sent != 9 {
		t.Fatalf("annotation landed on %+v", got)
	}
	if r.AnnotateLast(7, func(*SlotEvent) {}) {
		t.Fatal("AnnotateLast matched a cell that never produced events")
	}
}

func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(64)
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(cell int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Add(SlotEvent{Slot: uint64(i), Cell: cell})
				r.AnnotateLast(cell, func(ev *SlotEvent) { ev.E2Sent++ })
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = r.Last(16)
			_ = r.Len()
		}
	}()
	wg.Wait()
	if r.Len() != 64 {
		t.Fatalf("Len = %d, want 64", r.Len())
	}
}

func TestHTTPEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("waran_http_total", "hits").Add(3)
	ring := NewTraceRing(8)
	ring.Add(SlotEvent{Slot: 1, Cell: 0, WallUs: 42})
	srv := httptest.NewServer(NewMux(reg, ring))
	defer srv.Close()

	body := httpGet(t, srv.URL+"/metrics")
	if !strings.Contains(body, "waran_http_total 3") {
		t.Fatalf("/metrics body:\n%s", body)
	}

	var resp struct {
		Count int         `json:"count"`
		Slots []SlotEvent `json:"slots"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL+"/debug/slots")), &resp); err != nil {
		t.Fatalf("decode /debug/slots: %v", err)
	}
	if resp.Count != 1 || len(resp.Slots) != 1 || resp.Slots[0].WallUs != 42 {
		t.Fatalf("/debug/slots = %+v", resp)
	}

	// nil ring serves an empty list rather than panicking.
	srv2 := httptest.NewServer(NewMux(NewRegistry(), nil))
	defer srv2.Close()
	if err := json.Unmarshal([]byte(httpGet(t, srv2.URL+"/debug/slots?n=5")), &resp); err != nil {
		t.Fatalf("decode empty /debug/slots: %v", err)
	}
	if resp.Count != 0 || resp.Slots == nil {
		t.Fatalf("empty /debug/slots = %+v", resp)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, res.StatusCode)
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return string(body)
}

func TestGaugeAddNaNSafety(t *testing.T) {
	var g Gauge
	g.Set(math.Inf(1))
	g.Add(1)
	if !math.IsInf(g.Value(), 1) {
		t.Fatalf("gauge = %v", g.Value())
	}
}

// TestRegistrySnapshotHeader checks the reserved _snapshot entry: present in
// every Snapshot with a plausible timestamp, a per-registry monotonic
// sequence, and zero effect on the Prometheus exposition (byte-identical
// across snapshots, no reserved key leaking into it).
func TestRegistrySnapshotHeader(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("waran_events_total", "events").Add(3)

	before := reg.PrometheusText()
	s1 := reg.Snapshot()
	s2 := reg.Snapshot()
	after := reg.PrometheusText()

	h1, ok := s1[SnapshotHeaderKey].(SnapshotHeader)
	if !ok {
		t.Fatalf("snapshot missing %s header: %T", SnapshotHeaderKey, s1[SnapshotHeaderKey])
	}
	h2 := s2[SnapshotHeaderKey].(SnapshotHeader)
	if h1.UnixNanos <= 0 || h2.UnixNanos < h1.UnixNanos {
		t.Fatalf("header timestamps not plausible: %d then %d", h1.UnixNanos, h2.UnixNanos)
	}
	if h2.Seq != h1.Seq+1 {
		t.Fatalf("header seq not monotonic: %d then %d", h1.Seq, h2.Seq)
	}
	if before != after {
		t.Fatalf("taking snapshots changed the Prometheus exposition:\n%s\nvs\n%s", before, after)
	}
	if strings.Contains(after, SnapshotHeaderKey) {
		t.Fatalf("reserved snapshot key leaked into the exposition:\n%s", after)
	}

	// The header must serialize alongside the series.
	raw, err := json.Marshal(s1)
	if err != nil {
		t.Fatalf("snapshot not JSON-marshalable: %v", err)
	}
	if !strings.Contains(string(raw), `"unix_nanos"`) || !strings.Contains(string(raw), `"seq"`) {
		t.Fatalf("marshaled snapshot missing header fields: %s", raw)
	}
}

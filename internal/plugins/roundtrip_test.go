package plugins

import (
	"bytes"
	"testing"

	"waran/internal/wasm"
	"waran/internal/wat"
)

// corpus returns every WAT plugin shipped in this package.
func corpus() map[string]string {
	out := map[string]string{
		"sched/rr":         RoundRobinWAT,
		"sched/pf":         ProportionalFairWAT,
		"sched/mt":         MaxThroughputWAT,
		"xapp/steer":       TrafficSteerXAppWAT,
		"xapp/sla":         SLAAssureXAppWAT,
		"xapp/ping":        PingXAppWAT,
		"xapp/pong":        PongXAppWAT,
		"comm/passthrough": PassthroughCommWAT,
		"comm/widen8to12":  Widen8To12CommWAT,
	}
	for _, name := range FaultNames() {
		src, _ := FaultWAT(name)
		out["fault/"+name] = src
	}
	return out
}

// TestCorpusCompilesAndValidates is the gatekeeper: every shipped plugin
// must pass the full decode/validate pipeline.
func TestCorpusCompilesAndValidates(t *testing.T) {
	for name, src := range corpus() {
		if _, err := wat.CompileToBinary(src); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestDisassembleRecompileRoundTrip proves the toolchain closes the loop:
// compiling the disassembly of any shipped plugin reproduces its binary
// bit for bit.
func TestDisassembleRecompileRoundTrip(t *testing.T) {
	for name, src := range corpus() {
		bin1, err := wat.CompileToBinary(src)
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		m, err := wasm.Decode(bin1)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		text := wasm.Disassemble(m)
		bin2, err := wat.CompileToBinary(text)
		if err != nil {
			t.Fatalf("%s: recompile of disassembly: %v\n%s", name, err, text)
		}
		if !bytes.Equal(bin1, bin2) {
			t.Errorf("%s: disassembly round trip changed the binary (%d vs %d bytes)",
				name, len(bin1), len(bin2))
		}
	}
}

package plugins

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"waran/internal/sched"
	"waran/internal/wabi"
	"waran/internal/wasm"
)

// This file is the execution-tier half of the differential harness: where
// differential_test.go proves the codec and zero-copy byte paths agree, these
// tests run the same guests with the interpreter, the superinstruction tier
// and the compiled-closure tier and demand bit-identical decisions, trap
// classes and fuel — the contract that lets the runtime promote a module
// mid-deployment without changing a single scheduling outcome.

var tierTriple = []wasm.Tier{wasm.TierInterp, wasm.TierFused, wasm.TierClosure}

func newTierSched(t testing.TB, name string, tier wasm.Tier, mode sched.ABIMode) *sched.PluginScheduler {
	t.Helper()
	mod, err := CompileScheduler(name)
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	p, err := wabi.NewPlugin(mod, wabi.Policy{Fuel: 50_000_000, Tier: tier}, wabi.Env{})
	if err != nil {
		t.Fatalf("instantiate %s: %v", name, err)
	}
	ps, err := sched.NewPluginScheduler(name, p, nil)
	if err != nil {
		t.Fatalf("wrap %s: %v", name, err)
	}
	if err := ps.SetABIMode(mode); err != nil {
		t.Fatalf("force %v on %s: %v", mode, name, err)
	}
	return ps
}

// tierOutcome flattens one Schedule call into a comparable record: a stable
// outcome class, the allocations, and the fuel burned in the sandbox.
func tierOutcome(ps *sched.PluginScheduler, req *sched.Request) (string, []sched.Allocation, int64) {
	resp, err := ps.Schedule(req)
	fuel := ps.LastFuelUsed()
	if err == nil {
		return "ok", resp.Allocs, fuel
	}
	var bo *sched.BadOutputError
	if errors.As(err, &bo) {
		return "badoutput:" + bo.Kind.String(), nil, fuel
	}
	var trap *wasm.Trap
	if errors.As(err, &trap) {
		return "trap:" + trap.Code.String(), nil, fuel
	}
	return "err", nil, fuel
}

// TestDifferentialTiersRealGuests runs every built-in scheduler over both
// ABI paths on all three tiers: allocations and per-call fuel must be
// bit-identical to the interpreter for every request, including the
// adversarial NaN/Inf/empty corners.
func TestDifferentialTiersRealGuests(t *testing.T) {
	for _, name := range []string{"rr", "pf", "mt"} {
		for _, mode := range []sched.ABIMode{sched.ABICodec, sched.ABIZeroCopy} {
			t.Run(name+"/"+mode.String(), func(t *testing.T) {
				base := newTierSched(t, name, wasm.TierInterp, mode)
				fused := newTierSched(t, name, wasm.TierFused, mode)
				closure := newTierSched(t, name, wasm.TierClosure, mode)
				rng := rand.New(rand.NewSource(71))
				for trial := 0; trial < 150; trial++ {
					nUE := rng.Intn(32)
					if trial == 0 {
						nUE = 512
					}
					req := hostileRequest(rng, nUE, uint64(trial))
					wantClass, wantAllocs, wantFuel := tierOutcome(base, req)
					for _, ps := range []*sched.PluginScheduler{fused, closure} {
						class, allocs, fuel := tierOutcome(ps, req)
						if class != wantClass {
							t.Fatalf("trial %d: %s: outcome %q, interpreter %q", trial, ps.Name(), class, wantClass)
						}
						if !allocsEqual(allocs, wantAllocs) {
							t.Fatalf("trial %d: %s diverged\ngot:  %v\nwant: %v", trial, ps.Name(), allocs, wantAllocs)
						}
						if fuel != wantFuel {
							t.Fatalf("trial %d: %s burned %d fuel, interpreter %d", trial, ps.Name(), fuel, wantFuel)
						}
					}
				}
			})
		}
	}
}

// TestDifferentialTiersFaultGuests pins the trap side of the contract: every
// memory-safety fault guest must trap with the same code and the same fuel
// burn no matter which tier executes it.
func TestDifferentialTiersFaultGuests(t *testing.T) {
	names := []string{"null-deref", "oob-access", "double-free", "stack-overflow", "infinite-loop", "bad-output", "guest-error"}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			run := func(tier wasm.Tier) (string, int64) {
				src, err := FaultWAT(name)
				if err != nil {
					t.Fatal(err)
				}
				mod, err := wabi.CompileWAT(src)
				if err != nil {
					t.Fatal(err)
				}
				p, err := wabi.NewPlugin(mod, wabi.Policy{Fuel: 200_000, Tier: tier}, wabi.Env{})
				if err != nil {
					t.Fatal(err)
				}
				_, callErr := p.Call("schedule", nil)
				if callErr == nil {
					return "ok", p.LastFuelUsed()
				}
				var trap *wasm.Trap
				if errors.As(callErr, &trap) {
					return "trap:" + trap.Code.String(), p.LastFuelUsed()
				}
				return "guest-error", p.LastFuelUsed()
			}
			wantClass, wantFuel := run(wasm.TierInterp)
			for _, tier := range tierTriple[1:] {
				class, fuel := run(tier)
				if class != wantClass || fuel != wantFuel {
					t.Fatalf("tier %v: (%q, fuel %d), interpreter (%q, fuel %d)", tier, class, fuel, wantClass, wantFuel)
				}
			}
		})
	}
}

// TestDifferentialTiersHostileZCGuests: the lying zero-copy guests must land
// in the same structural-rejection bucket on every tier.
func TestDifferentialTiersHostileZCGuests(t *testing.T) {
	req := randomRequest(rand.New(rand.NewSource(13)), 4, 1)
	for _, name := range []string{"zc-oob-count", "zc-overlap", "zc-no-seal"} {
		t.Run(name, func(t *testing.T) {
			run := func(tier wasm.Tier) string {
				src, ok := ZCFaultWAT(name)
				if !ok {
					t.Fatalf("unknown zc fault %q", name)
				}
				mod, err := wabi.CompileWAT(src)
				if err != nil {
					t.Fatal(err)
				}
				p, err := wabi.NewPlugin(mod, wabi.Policy{Fuel: 1_000_000, Tier: tier}, wabi.Env{})
				if err != nil {
					t.Fatal(err)
				}
				ps, err := sched.NewPluginScheduler(name, p, nil)
				if err != nil {
					t.Fatal(err)
				}
				class, _, _ := tierOutcome(ps, req)
				return class
			}
			want := run(wasm.TierInterp)
			for _, tier := range tierTriple[1:] {
				if got := run(tier); got != want {
					t.Fatalf("tier %v classified %q, interpreter %q", tier, got, want)
				}
			}
		})
	}
}

// tierFuzzGuests lazily builds one scheduler per (guest, tier), reused for
// the whole fuzz run — all three tier instances of a guest see the same call
// history, so outcome comparisons stay valid across iterations.
var (
	tierFuzzMu     sync.Mutex
	tierFuzzScheds = map[string]*[3]*sched.PluginScheduler{}
)

func tierFuzzTriple(t testing.TB, name string) *[3]*sched.PluginScheduler {
	tierFuzzMu.Lock()
	defer tierFuzzMu.Unlock()
	if tr, ok := tierFuzzScheds[name]; ok {
		return tr
	}
	var src string
	switch name {
	case "rr", "pf", "mt":
		// Built-in schedulers resolved by CompileScheduler below.
	case "zc-grow":
		src = GrowZCWAT
	default:
		s, ok := ZCFaultWAT(name)
		if !ok {
			t.Fatalf("unknown fuzz guest %q", name)
		}
		src = s
	}
	var tr [3]*sched.PluginScheduler
	for i, tier := range tierTriple {
		var mod *wabi.Module
		var err error
		if src == "" {
			mod, err = CompileScheduler(name)
		} else {
			mod, err = wabi.CompileWAT(src)
		}
		if err != nil {
			t.Fatalf("compile %s: %v", name, err)
		}
		p, err := wabi.NewPlugin(mod, wabi.Policy{Fuel: 50_000_000, Tier: tier}, wabi.Env{})
		if err != nil {
			t.Fatalf("instantiate %s: %v", name, err)
		}
		ps, err := sched.NewPluginScheduler(name, p, nil)
		if err != nil {
			t.Fatalf("wrap %s: %v", name, err)
		}
		tr[i] = ps
	}
	tierFuzzScheds[name] = &tr
	return &tr
}

// FuzzTierDifferential is the tier mirror of FuzzABIDifferential: for any
// seeded request against any guest — the real schedulers plus the hostile
// zero-copy corpus — the superinstruction and closure tiers must reproduce
// the interpreter's outcome class, allocations and fuel burn exactly.
// Deadline traps are the one sanctioned divergence (wall-clock, not
// deterministic state), and no deadline is armed here.
func FuzzTierDifferential(f *testing.F) {
	f.Add(int64(1), uint16(0), uint8(0))
	f.Add(int64(2), uint16(12), uint8(1))
	f.Add(int64(3), uint16(512), uint8(2))
	f.Add(int64(4), uint16(4), uint8(3))
	f.Add(int64(5), uint16(4), uint8(4))
	f.Add(int64(6), uint16(4), uint8(5))
	f.Add(int64(7), uint16(4), uint8(6))
	f.Fuzz(func(t *testing.T, seed int64, nUE uint16, sel uint8) {
		guests := []string{"rr", "pf", "mt", "zc-grow", "zc-oob-count", "zc-overlap", "zc-no-seal"}
		name := guests[int(sel)%len(guests)]
		rng := rand.New(rand.NewSource(seed))
		req := hostileRequest(rng, int(nUE)%600, uint64(seed))
		tr := tierFuzzTriple(t, name)
		wantClass, wantAllocs, wantFuel := tierOutcome(tr[0], req)
		for i, tier := range tierTriple[1:] {
			class, allocs, fuel := tierOutcome(tr[i+1], req)
			if class != wantClass {
				t.Fatalf("%s on %v: outcome %q, interpreter %q", name, tier, class, wantClass)
			}
			if !allocsEqual(allocs, wantAllocs) {
				t.Fatalf("%s on %v: allocations diverged\ngot:  %v\nwant: %v", name, tier, allocs, wantAllocs)
			}
			if fuel != wantFuel {
				t.Fatalf("%s on %v: fuel %d, interpreter %d", name, tier, fuel, wantFuel)
			}
		}
	})
}

package plugins

import "fmt"

// Fault-injection plugins for the §5D memory-safety matrix and the Fig. 5c
// memory-leak experiment. Each exports "schedule" like a real scheduler so
// it can be dropped into a slice, and misbehaves in one specific way. The
// point of the experiment: every one of these crashes or corrupts a native
// process, but inside the sandbox the gNB catches a trap and keeps running.

// NullDerefWAT dereferences a null-like pointer: address -16 wraps to
// 0xFFFFFFF0, far beyond any mappable memory, so the load traps.
const NullDerefWAT = `(module
  (import "waran" "output_write" (func $output_write (param i32 i32)))
  (memory (export "memory") 1)
  (func (export "schedule") (result i32)
    (drop (i32.load (i32.const -16)))
    (i32.const 0))
)`

// OOBAccessWAT reads one byte past the end of linear memory.
const OOBAccessWAT = `(module
  (import "waran" "output_write" (func $output_write (param i32 i32)))
  (memory (export "memory") 1)
  (func (export "schedule") (result i32)
    ;; memory.size * 64KiB is the first out-of-bounds address.
    (drop (i32.load (i32.mul (memory.size) (i32.const 65536))))
    (i32.const 0))
)`

// DoubleFreeWAT models an allocator that detects a double free and aborts
// (as hardened allocators do); the abort is an unreachable trap contained
// by the sandbox.
const DoubleFreeWAT = `(module
  (import "waran" "output_write" (func $output_write (param i32 i32)))
  (memory (export "memory") 1)
  (global $allocated (mut i32) (i32.const 0))
  (func $malloc (result i32)
    (global.set $allocated (i32.const 1))
    (i32.const 64))
  (func $free (param $p i32)
    (if (i32.eqz (global.get $allocated))
      (then (unreachable)))          ;; double free detected: abort
    (global.set $allocated (i32.const 0)))
  (func (export "schedule") (result i32)
    (local $p i32)
    (local.set $p (call $malloc))
    (call $free (local.get $p))
    (call $free (local.get $p))      ;; bug: freed twice
    (i32.const 0))
)`

// StackOverflowWAT recurses without a base case, exhausting the call stack.
const StackOverflowWAT = `(module
  (import "waran" "output_write" (func $output_write (param i32 i32)))
  (memory (export "memory") 1)
  (func $recurse (result i32) (call $recurse))
  (func (export "schedule") (result i32) (call $recurse))
)`

// InfiniteLoopWAT never terminates; the fuel meter converts the hang into a
// deterministic trap, preserving the slot deadline.
const InfiniteLoopWAT = `(module
  (import "waran" "output_write" (func $output_write (param i32 i32)))
  (memory (export "memory") 1)
  (func (export "schedule") (result i32)
    (loop $spin (br $spin))
    (i32.const 0))
)`

// LeakWAT grows linear memory by one page per call and touches it, never
// releasing — the Fig. 5c leaky scheduler. Growth is silently capped by the
// host policy, so the gNB's footprint stays bounded.
const LeakWAT = `(module
  (import "waran" "output_write" (func $output_write (param i32 i32)))
  (memory (export "memory") 1)
  (func (export "schedule") (result i32)
    (local $prev i32)
    (local.set $prev (memory.grow (i32.const 1)))
    (if (i32.ne (local.get $prev) (i32.const -1))
      (then
        ;; Touch the new page so the leak is real, then "forget" it.
        (i32.store (i32.mul (local.get $prev) (i32.const 65536)) (i32.const 1))))
    ;; Still produce an empty, valid scheduling response.
    (i32.store (i32.const 0) (i32.const 0))
    (call $output_write (i32.const 0) (i32.const 4))
    (i32.const 0))
)`

// BadOutputWAT produces a syntactically broken response (truncated), which
// the host decoder must reject.
const BadOutputWAT = `(module
  (import "waran" "output_write" (func $output_write (param i32 i32)))
  (memory (export "memory") 1)
  (func (export "schedule") (result i32)
    (i32.store (i32.const 0) (i32.const 99))  ;; claims 99 allocations
    (call $output_write (i32.const 0) (i32.const 4))
    (i32.const 0))
)`

// OverBudgetWAT returns a well-formed response granting more PRBs than the
// budget to the first UE in the request — caught by Response.Validate.
const OverBudgetWAT = `(module
  (import "waran" "input_length" (func $input_length (result i32)))
  (import "waran" "input_read"   (func $input_read (param i32 i32 i32) (result i32)))
  (import "waran" "output_write" (func $output_write (param i32 i32)))
  (memory (export "memory") 1)
  (func (export "schedule") (result i32)
    (drop (call $input_read (i32.const 1024) (i32.const 0) (call $input_length)))
    (i32.store (i32.const 0) (i32.const 1))                 ;; one allocation
    (i32.store (i32.const 4) (i32.load (i32.const 1044)))    ;; first UE id
    (i32.store (i32.const 8)
      (i32.add (i32.load (i32.const 1036)) (i32.const 10))) ;; budget + 10
    (call $output_write (i32.const 0) (i32.const 12))
    (i32.const 0))
)`

// GuestErrorWAT reports a plugin-level failure through error_set and a
// non-zero exit code (the "plugin-defined error" path, not a trap).
const GuestErrorWAT = `(module
  (import "waran" "error_set" (func $error_set (param i32 i32)))
  (memory (export "memory") 1)
  (data (i32.const 0) "policy database unavailable")
  (func (export "schedule") (result i32)
    (call $error_set (i32.const 0) (i32.const 27))
    (i32.const 7))
)`

// FaultWAT returns the named fault plugin source.
func FaultWAT(name string) (string, error) {
	switch name {
	case "null-deref":
		return NullDerefWAT, nil
	case "oob-access":
		return OOBAccessWAT, nil
	case "double-free":
		return DoubleFreeWAT, nil
	case "stack-overflow":
		return StackOverflowWAT, nil
	case "infinite-loop":
		return InfiniteLoopWAT, nil
	case "leak":
		return LeakWAT, nil
	case "bad-output":
		return BadOutputWAT, nil
	case "over-budget":
		return OverBudgetWAT, nil
	case "guest-error":
		return GuestErrorWAT, nil
	default:
		return "", fmt.Errorf("plugins: unknown fault plugin %q", name)
	}
}

// FaultNames lists the available fault-injection plugins.
func FaultNames() []string {
	return []string{
		"null-deref", "oob-access", "double-free", "stack-overflow",
		"infinite-loop", "leak", "bad-output", "over-budget", "guest-error",
	}
}

package plugins

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"waran/internal/sched"
	"waran/internal/wabi"
	"waran/internal/wasm"
)

func newSched(t *testing.T, name string) *sched.PluginScheduler {
	t.Helper()
	mod, err := CompileScheduler(name)
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	p, err := wabi.NewPlugin(mod, wabi.Policy{Fuel: 50_000_000}, wabi.Env{})
	if err != nil {
		t.Fatalf("instantiate %s: %v", name, err)
	}
	ps, err := sched.NewPluginScheduler(name, p, nil)
	if err != nil {
		t.Fatalf("wrap %s: %v", name, err)
	}
	return ps
}

func randomRequest(rng *rand.Rand, nUE int, slot uint64) *sched.Request {
	req := &sched.Request{
		SliceID:   uint32(rng.Intn(8)),
		Slot:      slot,
		PRBBudget: uint32(rng.Intn(53)),
	}
	for i := 0; i < nUE; i++ {
		mcs := int32(rng.Intn(29))
		per := uint32(0)
		if rng.Intn(10) > 0 { // occasionally zero-rate channel
			per = uint32(40 + 60*mcs)
		}
		buf := uint32(0)
		if rng.Intn(10) > 0 { // occasionally empty buffer
			buf = uint32(rng.Intn(200_000))
		}
		req.UEs = append(req.UEs, sched.UEInfo{
			ID:          uint32(100 + i),
			MCS:         mcs,
			BitsPerPRB:  per,
			BufferBytes: buf,
			AvgTputBps:  float64(rng.Intn(30_000_000)),
		})
	}
	return req
}

// TestDifferentialPluginVsNative is the keystone equivalence check: for any
// request, the Wasm plugin and the native Go policy must produce the exact
// same allocation list.
func TestDifferentialPluginVsNative(t *testing.T) {
	cases := []struct {
		name   string
		native sched.IntraSlice
	}{
		{"rr", sched.RoundRobin{}},
		{"pf", sched.ProportionalFair{}},
		{"mt", sched.MaxThroughput{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plugin := newSched(t, tc.name)
			rng := rand.New(rand.NewSource(42))
			for trial := 0; trial < 300; trial++ {
				nUE := rng.Intn(24)
				req := randomRequest(rng, nUE, uint64(trial))
				want, err := tc.native.Schedule(req)
				if err != nil {
					t.Fatalf("native: %v", err)
				}
				got, err := plugin.Schedule(req)
				if err != nil {
					t.Fatalf("trial %d: plugin: %v", trial, err)
				}
				if !allocsEqual(got.Allocs, want.Allocs) {
					t.Fatalf("trial %d (%d UEs, budget %d):\nplugin: %v\nnative: %v\nreq: %+v",
						trial, nUE, req.PRBBudget, got.Allocs, want.Allocs, req)
				}
			}
		})
	}
}

func allocsEqual(a, b []sched.Allocation) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

func TestFaultPluginsTrapButHostSurvives(t *testing.T) {
	traps := map[string]wasm.TrapCode{
		"null-deref":     wasm.TrapOutOfBoundsMemory,
		"oob-access":     wasm.TrapOutOfBoundsMemory,
		"double-free":    wasm.TrapUnreachable,
		"stack-overflow": wasm.TrapCallStackExhausted,
		"infinite-loop":  wasm.TrapFuelExhausted,
	}
	for name, wantCode := range traps {
		t.Run(name, func(t *testing.T) {
			src, err := FaultWAT(name)
			if err != nil {
				t.Fatal(err)
			}
			mod, err := wabi.CompileWAT(src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			p, err := wabi.NewPlugin(mod, wabi.Policy{Fuel: 1_000_000}, wabi.Env{})
			if err != nil {
				t.Fatalf("instantiate: %v", err)
			}
			_, err = p.Call("schedule", nil)
			var ce *wabi.CallError
			if !errors.As(err, &ce) || ce.Trap == nil {
				t.Fatalf("want trap CallError, got %v", err)
			}
			if ce.Trap.Code != wantCode {
				t.Fatalf("trap code = %v, want %v", ce.Trap.Code, wantCode)
			}
			// Host survives: the plugin can be called again and still traps
			// (rather than wedging the runtime).
			if _, err := p.Call("schedule", nil); err == nil {
				t.Fatal("second call unexpectedly succeeded")
			}
		})
	}
}

func TestLeakPluginIsCapped(t *testing.T) {
	mod, err := wabi.CompileWAT(LeakWAT)
	if err != nil {
		t.Fatal(err)
	}
	const capPages = 16
	p, err := wabi.NewPlugin(mod, wabi.Policy{MaxMemoryPages: capPages}, wabi.Env{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := p.Call("schedule", nil); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if got := p.MemoryBytes(); got > capPages*65536 {
		t.Fatalf("memory grew to %d bytes, beyond the %d-page cap", got, capPages)
	}
}

func TestGuestErrorPlugin(t *testing.T) {
	mod, err := wabi.CompileWAT(GuestErrorWAT)
	if err != nil {
		t.Fatal(err)
	}
	p, err := wabi.NewPlugin(mod, wabi.Policy{}, wabi.Env{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Call("schedule", nil)
	var ce *wabi.CallError
	if !errors.As(err, &ce) {
		t.Fatalf("want CallError, got %v", err)
	}
	if ce.Code != 7 || ce.Message != "policy database unavailable" {
		t.Fatalf("got code=%d msg=%q", ce.Code, ce.Message)
	}
}

func TestBadOutputRejectedByDecoder(t *testing.T) {
	mod, err := wabi.CompileWAT(BadOutputWAT)
	if err != nil {
		t.Fatal(err)
	}
	p, err := wabi.NewPlugin(mod, wabi.Policy{}, wabi.Env{})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := sched.NewPluginScheduler("bad", p, nil)
	if err != nil {
		t.Fatal(err)
	}
	req := &sched.Request{PRBBudget: 10, UEs: []sched.UEInfo{{ID: 1, BitsPerPRB: 100, BufferBytes: 100}}}
	if _, err := ps.Schedule(req); err == nil {
		t.Fatal("malformed output unexpectedly accepted")
	}
}

func TestOverBudgetRejectedByValidation(t *testing.T) {
	mod, err := wabi.CompileWAT(OverBudgetWAT)
	if err != nil {
		t.Fatal(err)
	}
	p, err := wabi.NewPlugin(mod, wabi.Policy{}, wabi.Env{})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := sched.NewPluginScheduler("greedy", p, nil)
	if err != nil {
		t.Fatal(err)
	}
	req := &sched.Request{PRBBudget: 10, UEs: []sched.UEInfo{{ID: 1, BitsPerPRB: 100, BufferBytes: 100}}}
	_, err = ps.Schedule(req)
	if !errors.Is(err, sched.ErrInvalidResponse) {
		t.Fatalf("want ErrInvalidResponse, got %v", err)
	}
}

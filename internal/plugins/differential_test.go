package plugins

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"waran/internal/sched"
	"waran/internal/wabi"
)

// This file is the wasm-level half of the zero-copy differential harness:
// where internal/sched's FuzzABIDifferential proves the byte layers agree
// without running wasm, these tests run the real guests over both call
// paths and demand bit-identical decisions, correct delta behaviour across
// instance lifecycles, and hostile/chaotic response regions that never
// escape validation.

func newSchedABI(t *testing.T, name string, mode sched.ABIMode, env wabi.Env) *sched.PluginScheduler {
	t.Helper()
	mod, err := CompileScheduler(name)
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	p, err := wabi.NewPlugin(mod, wabi.Policy{Fuel: 50_000_000}, env)
	if err != nil {
		t.Fatalf("instantiate %s: %v", name, err)
	}
	ps, err := sched.NewPluginScheduler(name, p, nil)
	if err != nil {
		t.Fatalf("wrap %s: %v", name, err)
	}
	if err := ps.SetABIMode(mode); err != nil {
		t.Fatalf("force %v on %s: %v", mode, name, err)
	}
	return ps
}

// hostileRequest mixes regular UEs with the adversarial corners: NaN and
// ±Inf running averages, zero-rate channels, empty buffers.
func hostileRequest(rng *rand.Rand, nUE int, slot uint64) *sched.Request {
	req := randomRequest(rng, nUE, slot)
	for i := range req.UEs {
		switch rng.Intn(16) {
		case 0:
			req.UEs[i].AvgTputBps = math.NaN()
		case 1:
			req.UEs[i].AvgTputBps = math.Inf(1)
		case 2:
			req.UEs[i].AvgTputBps = math.Inf(-1)
		}
	}
	return req
}

// TestDifferentialCodecVsZeroCopy runs every built-in scheduler over both
// call paths and requires bit-identical allocations for every request,
// including the 0-UE and full-region (512-UE) extremes.
func TestDifferentialCodecVsZeroCopy(t *testing.T) {
	for _, name := range []string{"rr", "pf", "mt"} {
		t.Run(name, func(t *testing.T) {
			codec := newSchedABI(t, name, sched.ABICodec, wabi.Env{})
			zc := newSchedABI(t, name, sched.ABIZeroCopy, wabi.Env{})
			if codec.ZeroCopy() || !zc.ZeroCopy() {
				t.Fatal("forced paths not honored")
			}
			rng := rand.New(rand.NewSource(11))
			for trial := 0; trial < 200; trial++ {
				nUE := rng.Intn(32)
				switch trial {
				case 0:
					nUE = 0
				case 1:
					nUE = 512
				}
				req := hostileRequest(rng, nUE, uint64(trial))
				want, err := codec.Schedule(req)
				if err != nil {
					t.Fatalf("trial %d: codec: %v", trial, err)
				}
				got, err := zc.Schedule(req)
				if err != nil {
					t.Fatalf("trial %d: zerocopy: %v", trial, err)
				}
				if !allocsEqual(got.Allocs, want.Allocs) {
					t.Fatalf("trial %d (%d UEs): paths diverge\nzc:    %v\ncodec: %v",
						trial, nUE, got.Allocs, want.Allocs)
				}
			}
			st := zc.Stats()
			if st.ZCCalls == 0 || st.ZCCalls != st.Calls {
				t.Fatalf("zero-copy accounting: %+v", st)
			}
			if cst := codec.Stats(); cst.ZCCalls != 0 {
				t.Fatalf("codec path recorded zero-copy calls: %+v", cst)
			}
		})
	}
}

// TestDifferentialDeltaThousandSlots is the seeded multi-slot delta
// sequence: 1000 slots of random UE-subset mutations through one zero-copy
// instance (whose request region is only ever delta-updated) against a
// codec scheduler that re-encodes from scratch every slot. Decisions must
// stay bit-identical the whole way, and the delta writer must actually
// skip unchanged records.
func TestDifferentialDeltaThousandSlots(t *testing.T) {
	for _, name := range []string{"rr", "pf", "mt"} {
		t.Run(name, func(t *testing.T) {
			codec := newSchedABI(t, name, sched.ABICodec, wabi.Env{})
			zc := newSchedABI(t, name, sched.ABIZeroCopy, wabi.Env{})
			rng := rand.New(rand.NewSource(23))
			req := randomRequest(rng, 24, 0)
			for slot := uint64(0); slot < 1000; slot++ {
				req.Slot = slot
				for i := range req.UEs {
					if rng.Intn(4) == 0 {
						req.UEs[i].BufferBytes = uint32(rng.Intn(200_000))
						req.UEs[i].AvgTputBps = float64(rng.Intn(30_000_000))
					}
				}
				want, err := codec.Schedule(req)
				if err != nil {
					t.Fatalf("slot %d: codec: %v", slot, err)
				}
				got, err := zc.Schedule(req)
				if err != nil {
					t.Fatalf("slot %d: zerocopy: %v", slot, err)
				}
				if !allocsEqual(got.Allocs, want.Allocs) {
					t.Fatalf("slot %d: delta-updated region produced a different decision\nzc:    %v\ncodec: %v",
						slot, got.Allocs, want.Allocs)
				}
			}
			st := zc.Stats()
			if st.ZCRecords != 24_000 {
				t.Fatalf("carried %d records, want 24000", st.ZCRecords)
			}
			// ~1/4 of records mutate per slot; full rewrites every slot would
			// mean the shadow diff is broken.
			if st.ZCDirtyRecords >= st.ZCRecords/2 {
				t.Fatalf("delta writer ineffective: %d of %d records dirty", st.ZCDirtyRecords, st.ZCRecords)
			}
			if pl := zc.Plugin(); pl.RegionNegotiations() != 1 {
				t.Fatalf("negotiations = %d, want 1 for a single live instance", pl.RegionNegotiations())
			}
		})
	}
}

// TestDifferentialConcurrentPools races both paths across pooled instances
// sharing one compiled module: N goroutines (cells) with disjoint seeded
// request streams, each verifying zero-copy against its own codec baseline.
// Meaningful under -race (make check-abi runs it so).
func TestDifferentialConcurrentPools(t *testing.T) {
	mod, err := CompileScheduler("pf")
	if err != nil {
		t.Fatal(err)
	}
	pool := wabi.NewPool(mod, wabi.Policy{Fuel: 50_000_000}, wabi.Env{}, 4)
	zc, err := sched.NewPoolScheduler("pf", pool, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := zc.SetABIMode(sched.ABIZeroCopy); err != nil {
		t.Fatal(err)
	}

	const cells = 8
	var wg sync.WaitGroup
	errs := make(chan error, cells)
	for c := 0; c < cells; c++ {
		wg.Add(1)
		go func(cell int) {
			defer wg.Done()
			codec := newSchedABI(t, "pf", sched.ABICodec, wabi.Env{})
			rng := rand.New(rand.NewSource(int64(1000 + cell)))
			for slot := uint64(0); slot < 150; slot++ {
				req := randomRequest(rng, 16, slot)
				want, err := codec.Schedule(req)
				if err != nil {
					errs <- err
					return
				}
				got, err := zc.Schedule(req)
				if err != nil {
					errs <- err
					return
				}
				if !allocsEqual(got.Allocs, want.Allocs) {
					t.Errorf("cell %d slot %d: pooled zero-copy diverged", cell, slot)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := zc.Stats(); st.ZCCalls != cells*150 {
		t.Fatalf("zc calls = %d, want %d", st.ZCCalls, cells*150)
	}
}

// TestZeroCopyChaosInterleavings proves half-written response regions never
// escape: under a seeded mix of forced traps (which scribble the response
// region mid-write) and output corruption (which mangles the sealed count),
// every successful Schedule is bit-identical to an undisturbed reference,
// and every failure classifies as a trap or bad output — never a plausible
// but wrong decision.
func TestZeroCopyChaosInterleavings(t *testing.T) {
	ch := wabi.NewChaos(wabi.ChaosConfig{TrapProb: 0.2, CorruptProb: 0.2, Seed: 99})
	mod, err := CompileScheduler("mt")
	if err != nil {
		t.Fatal(err)
	}
	p, err := wabi.NewPlugin(mod, wabi.Policy{Fuel: 50_000_000}, wabi.Env{Chaos: ch})
	if err != nil {
		t.Fatal(err)
	}
	chaotic, err := sched.NewPluginScheduler("mt", p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := chaotic.SetABIMode(sched.ABIZeroCopy); err != nil {
		t.Fatal(err)
	}
	reference := newSchedABI(t, "mt", sched.ABIZeroCopy, wabi.Env{})

	rng := rand.New(rand.NewSource(31))
	var clean, trapped, rejected int
	for trial := 0; trial < 400; trial++ {
		req := hostileRequest(rng, rng.Intn(24), uint64(trial))
		want, err := reference.Schedule(req)
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}
		got, err := chaotic.Schedule(req)
		if err == nil {
			clean++
			if !allocsEqual(got.Allocs, want.Allocs) {
				t.Fatalf("trial %d: chaos let a wrong decision through\ngot:  %v\nwant: %v",
					trial, got.Allocs, want.Allocs)
			}
			continue
		}
		// Failures must be classified faults, never silent.
		switch wabi.ClassOf(err) {
		case wabi.FailTrap:
			trapped++
			// The trap scribbled the region; the instance is poisoned and
			// must be replaced before the next decision.
			if !chaotic.Plugin().Poisoned() {
				t.Fatalf("trial %d: trap did not poison", trial)
			}
			if err := chaotic.Plugin().Reset(); err != nil {
				t.Fatal(err)
			}
		case wabi.FailBadOutput:
			rejected++
			var bo *sched.BadOutputError
			if !errors.As(err, &bo) {
				t.Fatalf("trial %d: bad output without typed error: %v", trial, err)
			}
			if bo.Kind != sched.BadOutputOOB {
				t.Fatalf("trial %d: corrupted count classified %v, want oob", trial, bo.Kind)
			}
		default:
			t.Fatalf("trial %d: unexpected failure class %v (%v)", trial, wabi.ClassOf(err), err)
		}
	}
	if clean == 0 || trapped == 0 || rejected == 0 {
		t.Fatalf("chaos schedule did not exercise all outcomes: clean=%d trapped=%d rejected=%d",
			clean, trapped, rejected)
	}
}

// TestHostileZCGuestsClassified runs the lying zero-copy guests end to end:
// each attack through the real call path must land in the right structural
// rejection bucket.
func TestHostileZCGuestsClassified(t *testing.T) {
	cases := []struct {
		name string
		kind sched.BadOutputKind
	}{
		{"zc-oob-count", sched.BadOutputOOB},
		{"zc-overlap", sched.BadOutputOverlap},
		{"zc-no-seal", sched.BadOutputOOB}, // pre-poisoned count survives
	}
	req := randomRequest(rand.New(rand.NewSource(5)), 4, 1)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src, ok := ZCFaultWAT(tc.name)
			if !ok {
				t.Fatalf("unknown zc fault %q", tc.name)
			}
			mod, err := wabi.CompileWAT(src)
			if err != nil {
				t.Fatal(err)
			}
			p, err := wabi.NewPlugin(mod, wabi.Policy{Fuel: 1_000_000}, wabi.Env{})
			if err != nil {
				t.Fatal(err)
			}
			ps, err := sched.NewPluginScheduler(tc.name, p, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !ps.ZeroCopy() {
				t.Fatal("zc-only guest did not auto-select zero-copy")
			}
			_, err = ps.Schedule(req)
			var bo *sched.BadOutputError
			if !errors.As(err, &bo) {
				t.Fatalf("err = %v, want *BadOutputError", err)
			}
			if bo.Kind != tc.kind {
				t.Fatalf("kind = %v, want %v", bo.Kind, tc.kind)
			}
			if wabi.ClassOf(err) != wabi.FailBadOutput {
				t.Fatalf("class = %v, want FailBadOutput", wabi.ClassOf(err))
			}
		})
	}
}

// TestZeroCopyPoolTrapRenegotiates is the scheduler-level half of the
// poisoned-instance regression (the wabi half is
// TestPoolZeroCopyTrapThenReuse): a pool of one grow-based guest serves a
// decision, traps, and the replacement instance must renegotiate regions
// and produce the correct decision instead of writing through the dead
// layout.
func TestZeroCopyPoolTrapRenegotiates(t *testing.T) {
	mod, err := wabi.CompileWAT(GrowZCWAT)
	if err != nil {
		t.Fatal(err)
	}
	ch := wabi.NewChaos(wabi.ChaosConfig{TrapProb: 1, ActivateAfter: 1, Seed: 17})
	pool := wabi.NewPool(mod, wabi.Policy{Fuel: 1_000_000}, wabi.Env{Chaos: ch}, 1)
	ps, err := sched.NewPoolScheduler("zc-grow", pool, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ps.ZeroCopy() {
		t.Fatal("grow guest did not auto-select zero-copy")
	}

	req := randomRequest(rand.New(rand.NewSource(9)), 4, 1)
	req.PRBBudget = 10
	wantAllocs := []sched.Allocation{{UEID: req.UEs[0].ID, PRBs: 1}}

	resp, err := ps.Schedule(req) // call 1: clean
	if err != nil {
		t.Fatal(err)
	}
	if !allocsEqual(resp.Allocs, wantAllocs) {
		t.Fatalf("allocs = %v, want %v", resp.Allocs, wantAllocs)
	}

	if _, err := ps.Schedule(req); err == nil { // call 2: chaos trap, instance discarded
		t.Fatal("chaos-armed call did not fail")
	}
	if d := pool.Stats().Discards; d != 1 {
		t.Fatalf("discards = %d, want 1", d)
	}

	ch.SetConfig(wabi.ChaosConfig{})
	resp, err = ps.Schedule(req) // call 3: fresh instance, renegotiated regions
	if err != nil {
		t.Fatalf("replacement instance: %v", err)
	}
	if !allocsEqual(resp.Allocs, wantAllocs) {
		t.Fatalf("replacement allocs = %v, want %v", resp.Allocs, wantAllocs)
	}
}

// TestABIModeGating pins capability resolution: legacy guests cannot be
// forced zero-copy, zero-copy-only guests cannot be forced onto the codec,
// and auto picks the right path for each.
func TestABIModeGating(t *testing.T) {
	legacySrc, err := FaultWAT("bad-output") // classic entry only
	if err != nil {
		t.Fatal(err)
	}
	legacyMod, err := wabi.CompileWAT(legacySrc)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := wabi.NewPlugin(legacyMod, wabi.Policy{}, wabi.Env{})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := sched.NewPluginScheduler("legacy", legacy, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ls.ZeroCopy() {
		t.Fatal("legacy guest auto-selected zero-copy")
	}
	if err := ls.SetABIMode(sched.ABIZeroCopy); err == nil {
		t.Fatal("legacy guest accepted forced zero-copy")
	}

	zcSrc, _ := ZCFaultWAT("zc-grow")
	zcMod, err := wabi.CompileWAT(zcSrc)
	if err != nil {
		t.Fatal(err)
	}
	zcOnly, err := wabi.NewPlugin(zcMod, wabi.Policy{}, wabi.Env{})
	if err != nil {
		t.Fatal(err)
	}
	zs, err := sched.NewPluginScheduler("zc-only", zcOnly, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !zs.ZeroCopy() {
		t.Fatal("zero-copy-only guest did not auto-select zero-copy")
	}
	if err := zs.SetABIMode(sched.ABICodec); err == nil {
		t.Fatal("zero-copy-only guest accepted forced codec mode")
	}

	// Dual-path guests accept both forced modes.
	dual := newSchedABI(t, "rr", sched.ABICodec, wabi.Env{})
	if err := dual.SetABIMode(sched.ABIZeroCopy); err != nil {
		t.Fatal(err)
	}
}

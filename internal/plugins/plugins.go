// Package plugins holds the WebAssembly plugin corpus shipped with WA-RAN:
// the three MVNO intra-slice schedulers the paper evaluates (round-robin,
// proportional fair, max throughput), written in the WebAssembly text
// format against the wabi ABI and the binary scheduling codec, plus the
// fault-injection plugins used by the §5D memory-safety matrix and the
// Fig. 5c leak experiment.
//
// The scheduler plugins are differentially tested against the native Go
// policies in internal/sched: for any request, plugin and native decisions
// must be identical.
package plugins

import (
	"fmt"
	"sync"

	"waran/internal/wabi"
)

// Shared WAT fragments: plugin memory layout and ABI plumbing.
//
//	0     .. 1023   scratch
//	1024  .. 20479  request buffer (header 20 B + 24 B per UE, ≤512 UEs)
//	20480 .. 22527  order array   (u32 per active UE)
//	24576 .. 28671  metric array  (f64 per UE, PF only)
//	32768 .. 34815  grant array   (u32 per active UE, RR only)
//	36864 .. 38911  need array    (u32 per active UE, RR only)
//	40960 .. 45059  response buffer
//
// The request and response buffers double as the zero-copy regions
// (zc_req_region/zc_resp_region): the serializing path copies the request
// into the same buffer via input_read that the zero-copy host writes
// directly, so every field accessor below serves both ABIs unchanged. Each
// scheduler's decision logic lives in a $core function that reads the
// request buffer and seals the response count in place; "schedule" wraps it
// with the input_read/output_write copy plumbing, "schedule_zc" skips both.
const watPrelude = `
  (import "waran" "input_length" (func $input_length (result i32)))
  (import "waran" "input_read"   (func $input_read (param i32 i32 i32) (result i32)))
  (import "waran" "output_write" (func $output_write (param i32 i32)))
  (import "waran" "error_set"    (func $error_set (param i32 i32)))
  (import "waran" "log"          (func $log (param i32 i32)))
  (memory (export "memory") 1 4)
  (global $outn (mut i32) (i32.const 0))

  ;; load_input copies the request into guest memory and returns the UE count.
  (func $load_input (result i32)
    (local $n i32)
    (local.set $n (call $input_length))
    (drop (call $input_read (i32.const 1024) (i32.const 0) (local.get $n)))
    (i32.load (i32.const 1040)))

  (func $budget (result i32) (i32.load (i32.const 1036)))
  (func $slot (result i64) (i64.load (i32.const 1028)))

  ;; ue_ptr returns the address of UE record i.
  (func $ue_ptr (param $i i32) (result i32)
    (i32.add (i32.const 1044) (i32.mul (local.get $i) (i32.const 24))))

  (func $ue_id (param $i i32) (result i32)
    (i32.load (call $ue_ptr (local.get $i))))
  (func $ue_per (param $i i32) (result i32)
    (i32.load offset=8 (call $ue_ptr (local.get $i))))
  (func $ue_buf (param $i i32) (result i32)
    (i32.load offset=12 (call $ue_ptr (local.get $i))))
  (func $ue_avg (param $i i32) (result f64)
    (f64.load offset=16 (call $ue_ptr (local.get $i))))

  ;; need returns the PRBs required to drain UE i's buffer this slot.
  (func $need (param $i i32) (result i32)
    (local $per i64) (local $buf i64)
    (local.set $per (i64.extend_i32_u (call $ue_per (local.get $i))))
    (if (result i32) (i64.eqz (local.get $per))
      (then (i32.const 0))
      (else (i32.wrap_i64
        (i64.div_u
          (i64.sub
            (i64.add
              (i64.mul (i64.extend_i32_u (call $ue_buf (local.get $i))) (i64.const 8))
              (local.get $per))
            (i64.const 1))
          (local.get $per))))))

  ;; active reports whether UE i has queued data and usable channel.
  (func $active (param $i i32) (result i32)
    (i32.and
      (i32.ne (call $ue_buf (local.get $i)) (i32.const 0))
      (i32.ne (call $ue_per (local.get $i)) (i32.const 0))))

  (func $ord_get (param $k i32) (result i32)
    (i32.load (i32.add (i32.const 20480) (i32.shl (local.get $k) (i32.const 2)))))
  (func $ord_set (param $k i32) (param $v i32)
    (i32.store (i32.add (i32.const 20480) (i32.shl (local.get $k) (i32.const 2))) (local.get $v)))

  ;; collect_active fills the order array with indices of active UEs and
  ;; returns the count.
  (func $collect_active (param $n i32) (result i32)
    (local $i i32) (local $m i32)
    (block $done
      (loop $top
        (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
        (if (call $active (local.get $i))
          (then
            (call $ord_set (local.get $m) (local.get $i))
            (local.set $m (i32.add (local.get $m) (i32.const 1)))))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $top)))
    (local.get $m))

  ;; emit appends one allocation record to the response buffer.
  (func $emit (param $id i32) (param $prbs i32)
    (local $p i32)
    (local.set $p (i32.add (i32.const 40964) (i32.mul (global.get $outn) (i32.const 8))))
    (i32.store (local.get $p) (local.get $id))
    (i32.store offset=4 (local.get $p) (local.get $prbs))
    (global.set $outn (i32.add (global.get $outn) (i32.const 1))))

  ;; seal finalizes the response in place: the count word makes the
  ;; allocation table valid for a host reading the response region directly.
  (func $seal
    (i32.store (i32.const 40960) (global.get $outn)))

  ;; publish copies the sealed response out through the serializing ABI.
  (func $publish
    (call $output_write
      (i32.const 40960)
      (i32.add (i32.const 4) (i32.mul (i32.load (i32.const 40960)) (i32.const 8)))))

  ;; Zero-copy region negotiation: the request buffer and response buffer
  ;; are the shared-memory windows.
  (func (export "zc_req_region") (result i32) (i32.const 1024))
  (func (export "zc_resp_region") (result i32) (i32.const 40960))

  ;; fill grants each UE in order-array sequence its full need until the
  ;; budget runs out (the greedy tail shared by MT and PF).
  (func $fill (param $m i32) (param $budget i32)
    (local $k i32) (local $i i32) (local $g i32)
    (block $done
      (loop $top
        (br_if $done (i32.ge_u (local.get $k) (local.get $m)))
        (br_if $done (i32.eqz (local.get $budget)))
        (local.set $i (call $ord_get (local.get $k)))
        (local.set $g (call $need (local.get $i)))
        (if (i32.gt_u (local.get $g) (local.get $budget))
          (then (local.set $g (local.get $budget))))
        (if (i32.ne (local.get $g) (i32.const 0))
          (then
            (call $emit (call $ue_id (local.get $i)) (local.get $g))
            (local.set $budget (i32.sub (local.get $budget) (local.get $g)))))
        (local.set $k (i32.add (local.get $k) (i32.const 1)))
        (br $top))))
`

// watSort generates a stable insertion sort over the order array using the
// named comparator ("less(a,b) = a sorts before b").
func watSort(name, lessFunc string) string {
	return fmt.Sprintf(`
  (func %s (param $m i32)
    (local $i i32) (local $j i32) (local $key i32)
    (local.set $i (i32.const 1))
    (block $done
      (loop $outer
        (br_if $done (i32.ge_u (local.get $i) (local.get $m)))
        (local.set $key (call $ord_get (local.get $i)))
        (local.set $j (local.get $i))
        (block $placed
          (loop $shift
            (br_if $placed (i32.eqz (local.get $j)))
            (br_if $placed (i32.eqz
              (call %s (local.get $key) (call $ord_get (i32.sub (local.get $j) (i32.const 1))))))
            (call $ord_set (local.get $j) (call $ord_get (i32.sub (local.get $j) (i32.const 1))))
            (local.set $j (i32.sub (local.get $j) (i32.const 1)))
            (br $shift)))
        (call $ord_set (local.get $j) (local.get $key))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $outer))))
`, name, lessFunc)
}

// MaxThroughputWAT is the MT intra-slice scheduler: best channel first.
var MaxThroughputWAT = "(module " + watPrelude + `
  ;; mt_less: higher bits-per-PRB first; ties broken by lower UE id.
  (func $mt_less (param $a i32) (param $b i32) (result i32)
    (local $ea i32) (local $eb i32)
    (local.set $ea (call $ue_per (local.get $a)))
    (local.set $eb (call $ue_per (local.get $b)))
    (if (result i32) (i32.gt_u (local.get $ea) (local.get $eb))
      (then (i32.const 1))
      (else (if (result i32) (i32.eq (local.get $ea) (local.get $eb))
        (then (i32.lt_u (call $ue_id (local.get $a)) (call $ue_id (local.get $b))))
        (else (i32.const 0))))))
` + watSort("$mt_sort", "$mt_less") + `
  (func $core (param $n i32)
    (local $m i32)
    (global.set $outn (i32.const 0))
    (local.set $m (call $collect_active (local.get $n)))
    (call $mt_sort (local.get $m))
    (call $fill (local.get $m) (call $budget))
    (call $seal))

  (func (export "schedule") (result i32)
    (call $core (call $load_input))
    (call $publish)
    (i32.const 0))

  (func (export "schedule_zc") (result i32)
    (call $core (i32.load (i32.const 1040)))
    (i32.const 0))
)`

// ProportionalFairWAT is the PF intra-slice scheduler: rank by
// instantaneous-rate over long-term average throughput.
var ProportionalFairWAT = "(module " + watPrelude + `
  (func $metric_get (param $i i32) (result f64)
    (f64.load (i32.add (i32.const 24576) (i32.shl (local.get $i) (i32.const 3)))))
  (func $metric_set (param $i i32) (param $v f64)
    (f64.store (i32.add (i32.const 24576) (i32.shl (local.get $i) (i32.const 3))) (local.get $v)))

  ;; compute_metrics stores bitsPerPRB / max(avg, 1000) for every UE.
  (func $compute_metrics (param $n i32)
    (local $i i32) (local $avg f64)
    (block $done
      (loop $top
        (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
        (local.set $avg (call $ue_avg (local.get $i)))
        (if (f64.lt (local.get $avg) (f64.const 1000))
          (then (local.set $avg (f64.const 1000))))
        (call $metric_set (local.get $i)
          (f64.div
            (f64.convert_i32_u (call $ue_per (local.get $i)))
            (local.get $avg)))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $top))))

  ;; pf_less: higher metric first; ties broken by lower UE id.
  (func $pf_less (param $a i32) (param $b i32) (result i32)
    (local $ma f64) (local $mb f64)
    (local.set $ma (call $metric_get (local.get $a)))
    (local.set $mb (call $metric_get (local.get $b)))
    (if (result i32) (f64.gt (local.get $ma) (local.get $mb))
      (then (i32.const 1))
      (else (if (result i32) (f64.eq (local.get $ma) (local.get $mb))
        (then (i32.lt_u (call $ue_id (local.get $a)) (call $ue_id (local.get $b))))
        (else (i32.const 0))))))
` + watSort("$pf_sort", "$pf_less") + `
  (func $core (param $n i32)
    (local $m i32)
    (global.set $outn (i32.const 0))
    (call $compute_metrics (local.get $n))
    (local.set $m (call $collect_active (local.get $n)))
    (call $pf_sort (local.get $m))
    (call $fill (local.get $m) (call $budget))
    (call $seal))

  (func (export "schedule") (result i32)
    (call $core (call $load_input))
    (call $publish)
    (i32.const 0))

  (func (export "schedule_zc") (result i32)
    (call $core (i32.load (i32.const 1040)))
    (i32.const 0))
)`

// RoundRobinWAT is the RR intra-slice scheduler: equal rotating shares,
// capped at buffer need, with spill.
var RoundRobinWAT = "(module " + watPrelude + `
  (func $grant_get (param $k i32) (result i32)
    (i32.load (i32.add (i32.const 32768) (i32.shl (local.get $k) (i32.const 2)))))
  (func $grant_set (param $k i32) (param $v i32)
    (i32.store (i32.add (i32.const 32768) (i32.shl (local.get $k) (i32.const 2))) (local.get $v)))
  (func $need_get (param $k i32) (result i32)
    (i32.load (i32.add (i32.const 36864) (i32.shl (local.get $k) (i32.const 2)))))
  (func $need_set (param $k i32) (param $v i32)
    (i32.store (i32.add (i32.const 36864) (i32.shl (local.get $k) (i32.const 2))) (local.get $v)))

  (func $core (param $n i32)
    (local $m i32) (local $budget i32) (local $start i32)
    (local $i i32) (local $ix i32) (local $progressed i32)
    (global.set $outn (i32.const 0))
    (local.set $m (call $collect_active (local.get $n)))
    (local.set $budget (call $budget))
    (if (i32.or (i32.eqz (local.get $m)) (i32.eqz (local.get $budget)))
      (then
        (call $seal)
        (return)))

    ;; Cache per-position need, zero grants.
    (local.set $i (i32.const 0))
    (block $cdone
      (loop $cache
        (br_if $cdone (i32.ge_u (local.get $i) (local.get $m)))
        (call $need_set (local.get $i) (call $need (call $ord_get (local.get $i))))
        (call $grant_set (local.get $i) (i32.const 0))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $cache)))

    (local.set $start
      (i32.wrap_i64 (i64.rem_u (call $slot) (i64.extend_i32_u (local.get $m)))))

    ;; Rotating one-PRB rounds until the budget or all needs are exhausted.
    (block $rdone
      (loop $rounds
        (local.set $progressed (i32.const 0))
        (local.set $i (i32.const 0))
        (block $idone
          (loop $inner
            (br_if $idone (i32.ge_u (local.get $i) (local.get $m)))
            (br_if $idone (i32.eqz (local.get $budget)))
            (local.set $ix
              (i32.rem_u (i32.add (local.get $start) (local.get $i)) (local.get $m)))
            (if (i32.lt_u (call $grant_get (local.get $ix)) (call $need_get (local.get $ix)))
              (then
                (call $grant_set (local.get $ix)
                  (i32.add (call $grant_get (local.get $ix)) (i32.const 1)))
                (local.set $budget (i32.sub (local.get $budget) (i32.const 1)))
                (local.set $progressed (i32.const 1))))
            (local.set $i (i32.add (local.get $i) (i32.const 1)))
            (br $inner)))
        (br_if $rdone (i32.eqz (local.get $progressed)))
        (br_if $rdone (i32.eqz (local.get $budget)))
        (br $rounds)))

    ;; Emit grants in active order.
    (local.set $i (i32.const 0))
    (block $edone
      (loop $emitl
        (br_if $edone (i32.ge_u (local.get $i) (local.get $m)))
        (if (i32.ne (call $grant_get (local.get $i)) (i32.const 0))
          (then (call $emit
            (call $ue_id (call $ord_get (local.get $i)))
            (call $grant_get (local.get $i)))))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $emitl)))
    (call $seal))

  (func (export "schedule") (result i32)
    (call $core (call $load_input))
    (call $publish)
    (i32.const 0))

  (func (export "schedule_zc") (result i32)
    (call $core (i32.load (i32.const 1040)))
    (i32.const 0))
)`

// SchedulerWAT returns the WAT source of the named built-in scheduler
// plugin ("rr", "pf" or "mt").
func SchedulerWAT(name string) (string, bool) {
	switch name {
	case "rr", "round-robin":
		return RoundRobinWAT, true
	case "pf", "proportional-fair":
		return ProportionalFairWAT, true
	case "mt", "max-throughput":
		return MaxThroughputWAT, true
	default:
		return "", false
	}
}

var (
	compiledMu sync.Mutex
	compiled   = map[string]*wabi.Module{}
)

// CompileScheduler compiles (with caching) one of the built-in scheduler
// plugins by name.
func CompileScheduler(name string) (*wabi.Module, error) {
	compiledMu.Lock()
	defer compiledMu.Unlock()
	if m, ok := compiled[name]; ok {
		return m, nil
	}
	src, ok := SchedulerWAT(name)
	if !ok {
		return nil, fmt.Errorf("plugins: unknown scheduler %q", name)
	}
	m, err := wabi.CompileWAT(src)
	if err != nil {
		return nil, fmt.Errorf("plugins: compile %q: %w", name, err)
	}
	compiled[name] = m
	return m, nil
}

package plugins

// Zero-copy ABI test plugins. GrowZCWAT exercises the allocator-backed
// negotiation contract (regions carved from grown memory, so every fresh
// instance must re-negotiate); the HostileZC* plugins lie through the
// response region in each way the host's region validation must catch.
// None of them export the classic "schedule" entry: they are zero-copy-only
// guests, which also pins the capability-resolution rules.

// GrowZCWAT negotiates its regions from memory grown during negotiation,
// the way an allocator-backed guest (Rust, TinyGo) would: the module starts
// with one 64 KiB page and carves both regions out of a page it grows on
// first use. A fresh instance of this module starts back at one page, so a
// host that reused a stale region layout after an instance swap would write
// past the end of memory — the failure TestPoolZeroCopyTrapThenReuse pins.
// Its decision rule is trivially checkable: grant exactly 1 PRB to the
// first UE in the request, or nothing when the request is empty.
const GrowZCWAT = `(module
  (import "waran" "output_write" (func $output_write (param i32 i32)))
  (memory (export "memory") 1 4)
  (global $base (mut i32) (i32.const 0))

  ;; alloc lazily grows one page and returns its base address.
  (func $alloc (result i32)
    (if (i32.eqz (global.get $base))
      (then
        (global.set $base
          (i32.mul (memory.grow (i32.const 1)) (i32.const 65536)))))
    (global.get $base))

  (func (export "zc_req_region") (result i32) (call $alloc))
  (func (export "zc_resp_region") (result i32)
    (i32.add (call $alloc) (i32.const 16384)))

  (func (export "schedule_zc") (result i32)
    (local $req i32) (local $resp i32)
    (local.set $req (call $alloc))
    (local.set $resp (i32.add (local.get $req) (i32.const 16384)))
    (if (i32.eqz (i32.load offset=16 (local.get $req)))  ;; nUE == 0
      (then
        (i32.store (local.get $resp) (i32.const 0))
        (return (i32.const 0))))
    (i32.store (local.get $resp) (i32.const 1))
    (i32.store offset=4 (local.get $resp) (i32.load offset=20 (local.get $req)))
    (i32.store offset=8 (local.get $resp) (i32.const 1))
    (i32.const 0))
)`

// HostileZCCountWAT seals an allocation count whose table would run past
// the end of the response region — the zero-copy analogue of a hostile
// length prefix. The host must reject it as out-of-bounds without reading a
// single record.
const HostileZCCountWAT = `(module
  (import "waran" "output_write" (func $output_write (param i32 i32)))
  (memory (export "memory") 1 4)
  (func (export "zc_req_region") (result i32) (i32.const 1024))
  (func (export "zc_resp_region") (result i32) (i32.const 40960))
  (func (export "schedule_zc") (result i32)
    (i32.store (i32.const 40960) (i32.const 600))
    (i32.const 0))
)`

// HostileZCOverlapWAT grants the same UE twice — overlapping result
// regions, rejected by the host's duplicate check.
const HostileZCOverlapWAT = `(module
  (import "waran" "output_write" (func $output_write (param i32 i32)))
  (memory (export "memory") 1 4)
  (func (export "zc_req_region") (result i32) (i32.const 1024))
  (func (export "zc_resp_region") (result i32) (i32.const 40960))
  (func (export "schedule_zc") (result i32)
    (i32.store (i32.const 40960) (i32.const 2))
    (i32.store (i32.const 40964) (i32.load (i32.const 1044)))  ;; first UE id
    (i32.store (i32.const 40968) (i32.const 1))
    (i32.store (i32.const 40972) (i32.load (i32.const 1044)))  ;; again
    (i32.store (i32.const 40976) (i32.const 1))
    (i32.const 0))
)`

// HostileZCNoSealWAT returns success without ever writing its response
// count. The host pre-poisons the count word before every call, so the only
// thing it can read back is a guaranteed out-of-bounds claim — never a
// stale table from a previous slot.
const HostileZCNoSealWAT = `(module
  (import "waran" "output_write" (func $output_write (param i32 i32)))
  (memory (export "memory") 1 4)
  (func (export "zc_req_region") (result i32) (i32.const 1024))
  (func (export "zc_resp_region") (result i32) (i32.const 40960))
  (func (export "schedule_zc") (result i32) (i32.const 0))
)`

// ZCFaultWAT returns the named zero-copy test plugin source.
func ZCFaultWAT(name string) (string, bool) {
	switch name {
	case "zc-grow":
		return GrowZCWAT, true
	case "zc-oob-count":
		return HostileZCCountWAT, true
	case "zc-overlap":
		return HostileZCOverlapWAT, true
	case "zc-no-seal":
		return HostileZCNoSealWAT, true
	default:
		return "", false
	}
}

package plugins

// xApp plugins for the near-RT RIC (§4B): each exports "on_indication",
// receiving an encoded e2 indication body as call input and returning an
// encoded control list (see internal/e2/body.go for both layouts).
//
// Guest memory layout: indication copied to 1024; control list assembled
// at 32768 (u16 count, then control bodies).

// TrafficSteerXAppWAT emits a handover request toward "cell-2" for every UE
// whose MCS has fallen to the configured floor (<= 4) — the paper's traffic
// steering example: the RIC host calls the plugin's exported function, the
// internal decision process runs, and the decision of which UEs need
// handovers is returned to the host.
const TrafficSteerXAppWAT = `(module
  (import "waran" "input_length" (func $input_length (result i32)))
  (import "waran" "input_read"   (func $input_read (param i32 i32 i32) (result i32)))
  (import "waran" "output_write" (func $output_write (param i32 i32)))
  (memory (export "memory") 1)
  (data (i32.const 0) "cell-2")
  (global $outp (mut i32) (i32.const 0))
  (global $cnt (mut i32) (i32.const 0))

  ;; emit_handover appends one ActionHandover control body for the UE.
  (func $emit_handover (param $ue i32)
    (local $p i32)
    (local.set $p (global.get $outp))
    (i32.store8 (local.get $p) (i32.const 3))            ;; ActionHandover
    (i32.store offset=1 (local.get $p) (i32.const 0))     ;; sliceID
    (i32.store offset=5 (local.get $p) (local.get $ue))   ;; ueID
    (f64.store offset=9 (local.get $p) (f64.const 0))     ;; value
    (i32.store16 offset=17 (local.get $p) (i32.const 6))  ;; len("cell-2")
    (memory.copy (i32.add (local.get $p) (i32.const 19)) (i32.const 0) (i32.const 6))
    (i32.store offset=25 (local.get $p) (i32.const 0))    ;; blobLen = 0
    (global.set $outp (i32.add (local.get $p) (i32.const 29)))
    (global.set $cnt (i32.add (global.get $cnt) (i32.const 1))))

  (func (export "on_indication") (result i32)
    (local $n i32) (local $nue i32) (local $i i32) (local $rec i32)
    (local.set $n (call $input_length))
    (drop (call $input_read (i32.const 1024) (i32.const 0) (local.get $n)))
    (local.set $nue (i32.load16_u (i32.const 1036)))      ;; nUE at base+12
    (global.set $outp (i32.const 32770))                  ;; after u16 count
    (global.set $cnt (i32.const 0))
    (block $done
      (loop $top
        (br_if $done (i32.ge_u (local.get $i) (local.get $nue)))
        (local.set $rec (i32.add (i32.const 1038) (i32.mul (local.get $i) (i32.const 24))))
        (if (i32.le_s (i32.load offset=8 (local.get $rec)) (i32.const 4)) ;; MCS floor
          (then (call $emit_handover (i32.load (local.get $rec)))))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $top)))
    (i32.store16 (i32.const 32768) (global.get $cnt))
    (call $output_write (i32.const 32768) (i32.sub (global.get $outp) (i32.const 32768)))
    (i32.const 0))
)`

// SLAAssureXAppWAT is the slice SLA assurance xApp: slices served below 90%
// of their contracted rate get their inter-slice weight boosted to 2.0;
// slices comfortably above 110% are relaxed back to 1.0.
const SLAAssureXAppWAT = `(module
  (import "waran" "input_length" (func $input_length (result i32)))
  (import "waran" "input_read"   (func $input_read (param i32 i32 i32) (result i32)))
  (import "waran" "output_write" (func $output_write (param i32 i32)))
  (import "waran" "log"          (func $log (param i32 i32)))
  (memory (export "memory") 1)
  (data (i32.const 0) "boosting under-SLA slice")
  (global $outp (mut i32) (i32.const 0))
  (global $cnt (mut i32) (i32.const 0))

  ;; emit_weight appends one ActionSetSliceWeight control body.
  (func $emit_weight (param $slice i32) (param $w f64)
    (local $p i32)
    (local.set $p (global.get $outp))
    (i32.store8 (local.get $p) (i32.const 2))             ;; ActionSetSliceWeight
    (i32.store offset=1 (local.get $p) (local.get $slice))
    (i32.store offset=5 (local.get $p) (i32.const 0))      ;; ueID
    (f64.store offset=9 (local.get $p) (local.get $w))
    (i32.store16 offset=17 (local.get $p) (i32.const 0))   ;; empty text
    (i32.store offset=19 (local.get $p) (i32.const 0))     ;; blobLen = 0
    (global.set $outp (i32.add (local.get $p) (i32.const 23)))
    (global.set $cnt (i32.add (global.get $cnt) (i32.const 1))))

  (func (export "on_indication") (result i32)
    (local $n i32) (local $nue i32) (local $nsl i32) (local $i i32)
    (local $base i32) (local $rec i32)
    (local $target f64) (local $served f64)
    (local.set $n (call $input_length))
    (drop (call $input_read (i32.const 1024) (i32.const 0) (local.get $n)))
    (local.set $nue (i32.load16_u (i32.const 1036)))
    ;; slice section starts after the UE vector
    (local.set $base (i32.add (i32.add (i32.const 1024) (i32.const 14))
                              (i32.mul (local.get $nue) (i32.const 24))))
    (local.set $nsl (i32.load16_u (local.get $base)))
    (local.set $base (i32.add (local.get $base) (i32.const 2)))
    (global.set $outp (i32.const 32770))
    (global.set $cnt (i32.const 0))
    (block $done
      (loop $top
        (br_if $done (i32.ge_u (local.get $i) (local.get $nsl)))
        (local.set $rec (i32.add (local.get $base) (i32.mul (local.get $i) (i32.const 24))))
        (local.set $target (f64.load offset=4 (local.get $rec)))
        (local.set $served (f64.load offset=12 (local.get $rec)))
        (if (f64.gt (local.get $target) (f64.const 0))
          (then
            (if (f64.lt (local.get $served) (f64.mul (local.get $target) (f64.const 0.9)))
              (then
                (call $log (i32.const 0) (i32.const 24))
                (call $emit_weight (i32.load (local.get $rec)) (f64.const 2)))
              (else
                (if (f64.gt (local.get $served) (f64.mul (local.get $target) (f64.const 1.1)))
                  (then (call $emit_weight (i32.load (local.get $rec)) (f64.const 1))))))))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $top)))
    (i32.store16 (i32.const 32768) (global.get $cnt))
    (call $output_write (i32.const 32768) (i32.sub (global.get $outp) (i32.const 32768)))
    (i32.const 0))
)`

// PingXAppWAT demonstrates inter-xApp messaging through RIC host functions:
// on every indication it sends a counter to the "pong" xApp's mailbox.
const PingXAppWAT = `(module
  (import "waran" "output_write" (func $output_write (param i32 i32)))
  (import "ric" "xapp_send" (func $xapp_send (param i32 i32 i32 i32) (result i32)))
  (memory (export "memory") 1)
  (data (i32.const 0) "pong")
  (global $counter (mut i32) (i32.const 0))
  (func (export "on_indication") (result i32)
    (global.set $counter (i32.add (global.get $counter) (i32.const 1)))
    (i32.store (i32.const 16) (global.get $counter))
    (drop (call $xapp_send (i32.const 0) (i32.const 4) (i32.const 16) (i32.const 4)))
    ;; empty control list
    (i32.store16 (i32.const 32) (i32.const 0))
    (call $output_write (i32.const 32) (i32.const 2))
    (i32.const 0))
)`

// PongXAppWAT drains its mailbox each indication and remembers the last
// counter received (exported as a global for tests to observe).
const PongXAppWAT = `(module
  (import "waran" "output_write" (func $output_write (param i32 i32)))
  (import "ric" "xapp_recv" (func $xapp_recv (param i32 i32) (result i32)))
  (memory (export "memory") 1)
  (global $last (mut i32) (i32.const 0))
  (export "last_counter" (global $last))
  (func (export "on_indication") (result i32)
    (local $n i32)
    (block $done
      (loop $drain
        (local.set $n (call $xapp_recv (i32.const 64) (i32.const 16)))
        (br_if $done (i32.eqz (local.get $n)))
        (global.set $last (i32.load (i32.const 64)))
        (br $drain)))
    (i32.store16 (i32.const 32) (i32.const 0))
    (call $output_write (i32.const 32) (i32.const 2))
    (i32.const 0))
)`

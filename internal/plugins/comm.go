package plugins

// Communication plugins (§3B, §4B): Wasm shims that adapt between vendor
// wire formats without touching either vendor's closed firmware. Each
// exports "encode" (host representation -> vendor wire format) and "decode"
// (vendor wire -> host representation) over the wabi byte ABI.

// PassthroughCommWAT forwards frames unchanged — the identity communication
// plugin, useful as a baseline and for measuring plugin-wrapping overhead.
const PassthroughCommWAT = `(module
  (import "waran" "input_length" (func $input_length (result i32)))
  (import "waran" "input_read"   (func $input_read (param i32 i32 i32) (result i32)))
  (import "waran" "output_write" (func $output_write (param i32 i32)))
  (memory (export "memory") 4 64)
  (func $copy (result i32)
    (local $n i32)
    (local.set $n (call $input_length))
    ;; Grow if the frame exceeds current memory.
    (block $ok
      (loop $grow
        (br_if $ok (i32.le_u (i32.add (local.get $n) (i32.const 1024))
                             (i32.mul (memory.size) (i32.const 65536))))
        (drop (memory.grow (i32.const 4)))
        (br $grow)))
    (drop (call $input_read (i32.const 1024) (i32.const 0) (local.get $n)))
    (call $output_write (i32.const 1024) (local.get $n))
    (i32.const 0))
  (func (export "encode") (result i32) (call $copy))
  (func (export "decode") (result i32) (call $copy))
)`

// Widen8To12CommWAT is the paper's introduction example made concrete:
// vendor A emits 8-bit fields where vendor B expects 12-bit fields. The
// shim widens each byte b to a little-endian u16 carrying b << 4 (encode)
// and narrows it back (decode), letting the two devices interoperate with
// no firmware change on either side.
const Widen8To12CommWAT = `(module
  (import "waran" "input_length" (func $input_length (result i32)))
  (import "waran" "input_read"   (func $input_read (param i32 i32 i32) (result i32)))
  (import "waran" "output_write" (func $output_write (param i32 i32)))
  (import "waran" "error_set"    (func $error_set (param i32 i32)))
  (memory (export "memory") 4 64)
  (data (i32.const 0) "decode: odd-length 12-bit frame")

  (func $ensure (param $need i32)
    (block $ok
      (loop $grow
        (br_if $ok (i32.le_u (local.get $need) (i32.mul (memory.size) (i32.const 65536))))
        (drop (memory.grow (i32.const 4)))
        (br $grow))))

  ;; encode: each input byte becomes u16le = byte << 4 (8-bit -> 12-bit).
  (func (export "encode") (result i32)
    (local $n i32) (local $i i32) (local $out i32)
    (local.set $n (call $input_length))
    (call $ensure (i32.add (i32.const 65536) (i32.mul (local.get $n) (i32.const 3))))
    (drop (call $input_read (i32.const 1024) (i32.const 0) (local.get $n)))
    (local.set $out (i32.add (i32.const 1024) (local.get $n)))
    (block $done
      (loop $top
        (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
        (i32.store16
          (i32.add (local.get $out) (i32.shl (local.get $i) (i32.const 1)))
          (i32.shl (i32.load8_u (i32.add (i32.const 1024) (local.get $i))) (i32.const 4)))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $top)))
    (call $output_write (local.get $out) (i32.shl (local.get $n) (i32.const 1)))
    (i32.const 0))

  ;; decode: each u16le becomes value >> 4 truncated to a byte.
  (func (export "decode") (result i32)
    (local $n i32) (local $i i32) (local $half i32) (local $out i32)
    (local.set $n (call $input_length))
    (if (i32.and (local.get $n) (i32.const 1))
      (then
        (call $error_set (i32.const 0) (i32.const 31))
        (return (i32.const 1))))
    (call $ensure (i32.add (i32.const 65536) (i32.mul (local.get $n) (i32.const 3))))
    (drop (call $input_read (i32.const 1024) (i32.const 0) (local.get $n)))
    (local.set $half (i32.shr_u (local.get $n) (i32.const 1)))
    (local.set $out (i32.add (i32.const 1024) (local.get $n)))
    (block $done
      (loop $top
        (br_if $done (i32.ge_u (local.get $i) (local.get $half)))
        (i32.store8
          (i32.add (local.get $out) (local.get $i))
          (i32.shr_u
            (i32.load16_u (i32.add (i32.const 1024) (i32.shl (local.get $i) (i32.const 1))))
            (i32.const 4)))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $top)))
    (call $output_write (local.get $out) (local.get $half))
    (i32.const 0))
)`

package sched

import (
	"sort"
)

// SliceDemand is the inter-slice scheduler's per-slice input.
type SliceDemand struct {
	SliceID uint32
	// TargetRateBps is the slice's contracted cumulative downlink rate
	// (its SLA); 0 means best-effort.
	TargetRateBps float64
	// AchievedBps is the slice's recent served rate, used by the
	// target-rate policy to decide who is behind contract.
	AchievedBps float64
	// DemandPRBs is how many PRBs would drain all of the slice's buffers
	// this slot.
	DemandPRBs uint32
	// Weight is the share weight for the weighted-fair policy.
	Weight float64
}

// InterSlice divides the cell's PRBs among slices each slot. Implementations
// must return shares summing to at most the budget.
type InterSlice interface {
	Name() string
	// Divide returns PRBs per slice ID.
	Divide(slot uint64, budgetPRBs uint32, demands []SliceDemand) map[uint32]uint32
}

// TargetRate apportions PRBs proportionally to each slice's target rate,
// capped by actual demand, with unused budget redistributed to slices that
// still have queued data. This is the inter-slice policy of the paper's
// evaluation: each MVNO contracts a cumulative rate (3, 12 and 15 Mb/s in
// Fig. 5a) and the gNB provisions accordingly.
type TargetRate struct{}

// Name implements InterSlice.
func (TargetRate) Name() string { return "target-rate" }

// Divide implements InterSlice.
func (TargetRate) Divide(_ uint64, budget uint32, demands []SliceDemand) map[uint32]uint32 {
	out := make(map[uint32]uint32, len(demands))
	if budget == 0 || len(demands) == 0 {
		return out
	}
	var totalTarget float64
	for _, d := range demands {
		totalTarget += d.TargetRateBps
	}
	remaining := budget
	if totalTarget > 0 {
		// Proportional base shares (floor), capped by demand.
		type share struct {
			id    uint32
			exact float64
		}
		shares := make([]share, 0, len(demands))
		for _, d := range demands {
			exact := float64(budget) * d.TargetRateBps / totalTarget
			shares = append(shares, share{id: d.SliceID, exact: exact})
		}
		demandByID := make(map[uint32]uint32, len(demands))
		for _, d := range demands {
			demandByID[d.SliceID] = d.DemandPRBs
		}
		for _, s := range shares {
			g := uint32(s.exact)
			if g > demandByID[s.id] {
				g = demandByID[s.id]
			}
			if g > remaining {
				g = remaining
			}
			out[s.id] += g
			remaining -= g
		}
	}
	// Redistribute leftover PRBs to slices with residual demand: slices
	// furthest behind their contracted rate first (deficit-aware), then by
	// larger target, so under-SLA slices catch up before best-effort bulk.
	if remaining > 0 {
		deficit := func(d SliceDemand) float64 {
			if d.TargetRateBps <= 0 {
				return 0
			}
			return (d.TargetRateBps - d.AchievedBps) / d.TargetRateBps
		}
		ordered := append([]SliceDemand(nil), demands...)
		sort.SliceStable(ordered, func(i, j int) bool {
			di, dj := deficit(ordered[i]), deficit(ordered[j])
			if di != dj {
				return di > dj
			}
			if ordered[i].TargetRateBps != ordered[j].TargetRateBps {
				return ordered[i].TargetRateBps > ordered[j].TargetRateBps
			}
			return ordered[i].SliceID < ordered[j].SliceID
		})
		for remaining > 0 {
			progressed := false
			for _, d := range ordered {
				if remaining == 0 {
					break
				}
				if out[d.SliceID] < d.DemandPRBs {
					out[d.SliceID]++
					remaining--
					progressed = true
				}
			}
			if !progressed {
				break
			}
		}
	}
	return out
}

// FixedShare gives each slice a fixed fraction of the budget (by Weight),
// regardless of demand — strict isolation, possibly wasteful.
type FixedShare struct{}

// Name implements InterSlice.
func (FixedShare) Name() string { return "fixed-share" }

// Divide implements InterSlice.
func (FixedShare) Divide(_ uint64, budget uint32, demands []SliceDemand) map[uint32]uint32 {
	out := make(map[uint32]uint32, len(demands))
	var totalW float64
	for _, d := range demands {
		w := d.Weight
		if w <= 0 {
			w = 1
		}
		totalW += w
	}
	if totalW == 0 {
		return out
	}
	var assigned uint32
	for i, d := range demands {
		w := d.Weight
		if w <= 0 {
			w = 1
		}
		g := uint32(float64(budget) * w / totalW)
		if i == len(demands)-1 {
			g = budget - assigned // give rounding residue to the last slice
		}
		out[d.SliceID] = g
		assigned += g
	}
	return out
}

// WeightedFair is demand-aware weighted sharing: budget is split by weight
// among slices with demand; shares capped at demand with iterative
// redistribution (progressive filling).
type WeightedFair struct{}

// Name implements InterSlice.
func (WeightedFair) Name() string { return "weighted-fair" }

// Divide implements InterSlice.
func (WeightedFair) Divide(_ uint64, budget uint32, demands []SliceDemand) map[uint32]uint32 {
	out := make(map[uint32]uint32, len(demands))
	type st struct {
		id     uint32
		w      float64
		demand uint32
	}
	pend := make([]st, 0, len(demands))
	for _, d := range demands {
		w := d.Weight
		if w <= 0 {
			w = 1
		}
		if d.DemandPRBs > 0 {
			pend = append(pend, st{id: d.SliceID, w: w, demand: d.DemandPRBs})
		}
	}
	remaining := budget
	for remaining > 0 && len(pend) > 0 {
		var totalW float64
		for _, p := range pend {
			totalW += p.w
		}
		next := pend[:0]
		distributed := uint32(0)
		for _, p := range pend {
			g := uint32(float64(remaining) * p.w / totalW)
			if g == 0 {
				g = 1 // progressive filling always advances
			}
			if g > p.demand {
				g = p.demand
			}
			if g > remaining-distributed {
				g = remaining - distributed
			}
			out[p.id] += g
			distributed += g
			p.demand -= g
			if p.demand > 0 {
				next = append(next, p)
			}
		}
		pend = next
		if distributed == 0 {
			break
		}
		remaining -= distributed
	}
	return out
}

package sched

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"waran/internal/wabi"
)

// craftBinaryResponse builds a response blob with an arbitrary count prefix
// over the given allocations — the count may lie about the payload.
func craftBinaryResponse(count uint32, allocs ...Allocation) []byte {
	b := make([]byte, 4+binRespAllocLen*len(allocs))
	le := binary.LittleEndian
	le.PutUint32(b[0:], count)
	off := 4
	for _, a := range allocs {
		le.PutUint32(b[off:], a.UEID)
		le.PutUint32(b[off+4:], a.PRBs)
		off += binRespAllocLen
	}
	return b
}

func TestBinaryDecodeRejectsCraftedOffsets(t *testing.T) {
	cases := []struct {
		name string
		b    []byte
		ok   bool
	}{
		{"valid-empty", craftBinaryResponse(0), true},
		{"valid-two", craftBinaryResponse(2, Allocation{1, 5}, Allocation{2, 5}), true},
		{"truncated-header", []byte{2, 0}, false},
		{"nil", nil, false},
		// Count prefix points one allocation past the payload: reading it
		// would run out of bounds.
		{"count-past-end", craftBinaryResponse(3, Allocation{1, 5}, Allocation{2, 5}), false},
		// Count claims the maximum u32: the expected-length product must not
		// overflow into something that matches.
		{"count-overflow", craftBinaryResponse(^uint32(0), Allocation{1, 5}), false},
		{"count-huge", craftBinaryResponse(maxRespAllocs + 1), false},
		// Payload holds more allocations than the count claims: trailing
		// bytes the host would silently ignore.
		{"trailing-bytes", craftBinaryResponse(1, Allocation{1, 5}, Allocation{2, 5}), false},
		// Misaligned region: half an allocation dangling off the end.
		{"half-alloc", append(craftBinaryResponse(1, Allocation{1, 5}), 0xde, 0xad, 0xbe, 0xef), false},
		// Two grants to the same UE: overlapping result regions.
		{"overlap", craftBinaryResponse(2, Allocation{7, 3}, Allocation{7, 4}), false},
		{"overlap-far", craftBinaryResponse(3, Allocation{1, 1}, Allocation{2, 1}, Allocation{1, 1}), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := BinaryCodec{}.DecodeResponse(tc.b)
			if tc.ok {
				if err != nil {
					t.Fatalf("valid blob rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("hostile blob accepted: %+v", resp)
			}
			var bo *BadOutputError
			if !errors.As(err, &bo) {
				t.Fatalf("error is not a *BadOutputError: %v", err)
			}
			if got := wabi.ClassOf(err); got != wabi.FailBadOutput {
				t.Fatalf("class = %v, want %v", got, wabi.FailBadOutput)
			}
		})
	}
}

func TestJSONDecodeRejectsHostileResponses(t *testing.T) {
	cases := []struct {
		name string
		b    []byte
		ok   bool
	}{
		{"valid", []byte(`{"allocs":[{"ue_id":1,"prbs":5},{"ue_id":2,"prbs":3}]}`), true},
		{"valid-empty", []byte(`{}`), true},
		{"garbage", []byte(`{"allocs":`), false},
		{"not-json", []byte{0xff, 0xfe}, false},
		{"overlap", []byte(`{"allocs":[{"ue_id":7,"prbs":1},{"ue_id":7,"prbs":2}]}`), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := JSONCodec{}.DecodeResponse(tc.b)
			if tc.ok != (err == nil) {
				t.Fatalf("ok=%v err=%v", tc.ok, err)
			}
			if err != nil && wabi.ClassOf(err) != wabi.FailBadOutput {
				t.Fatalf("class = %v, want %v", wabi.ClassOf(err), wabi.FailBadOutput)
			}
		})
	}
}

// TestValidateFailureClassifiesBadOutput pins the scheduler-level wrap: a
// decodable response that fails semantic validation must carry the
// bad-output class through the error chain, with ErrInvalidResponse still
// reachable for older callers.
func TestValidateFailureClassifiesBadOutput(t *testing.T) {
	verr := (&Response{Allocs: []Allocation{{UEID: 99, PRBs: 1}}}).Validate(
		&Request{PRBBudget: 10, UEs: []UEInfo{{ID: 1}}})
	if verr == nil {
		t.Fatal("unknown-UE grant validated")
	}
	wrapped := fmt.Errorf("sched: plugin %q: %w", "evil", &BadOutputError{Err: verr})
	if got := wabi.ClassOf(wrapped); got != wabi.FailBadOutput {
		t.Fatalf("class = %v, want %v", got, wabi.FailBadOutput)
	}
	if !errors.Is(wrapped, ErrInvalidResponse) {
		t.Fatal("ErrInvalidResponse no longer reachable through the wrap")
	}
}

package sched

import (
	"math/rand"
	"testing"
)

func demandsFixture() []SliceDemand {
	return []SliceDemand{
		{SliceID: 1, TargetRateBps: 3e6, DemandPRBs: 52, Weight: 1},
		{SliceID: 2, TargetRateBps: 12e6, DemandPRBs: 52, Weight: 2},
		{SliceID: 3, TargetRateBps: 15e6, DemandPRBs: 52, Weight: 3},
	}
}

func sumShares(m map[uint32]uint32) uint32 {
	var s uint32
	for _, v := range m {
		s += v
	}
	return s
}

func TestTargetRateProportionalShares(t *testing.T) {
	shares := TargetRate{}.Divide(0, 52, demandsFixture())
	if got := sumShares(shares); got != 52 {
		t.Fatalf("allocated %d of 52", got)
	}
	// Proportional to 3:12:15 => 1:4:5 of 52.
	if !(shares[3] > shares[2] && shares[2] > shares[1]) {
		t.Fatalf("ordering violated: %v", shares)
	}
	if shares[1] < 4 || shares[1] > 7 {
		t.Fatalf("slice 1 share %d not ~5", shares[1])
	}
}

func TestTargetRateCapsAtDemand(t *testing.T) {
	demands := demandsFixture()
	demands[2].DemandPRBs = 2 // slice 3 barely needs anything
	shares := TargetRate{}.Divide(0, 52, demands)
	if shares[3] != 2 {
		t.Fatalf("slice 3 got %d, want demand cap 2", shares[3])
	}
	// Freed PRBs go to the remaining backlogged slices.
	if got := sumShares(shares); got != 52 {
		t.Fatalf("allocated %d of 52 after redistribution", got)
	}
}

func TestTargetRateZeroDemand(t *testing.T) {
	demands := []SliceDemand{
		{SliceID: 1, TargetRateBps: 5e6, DemandPRBs: 0},
		{SliceID: 2, TargetRateBps: 5e6, DemandPRBs: 10},
	}
	shares := TargetRate{}.Divide(0, 52, demands)
	if shares[1] != 0 {
		t.Fatalf("idle slice granted %d PRBs", shares[1])
	}
	if shares[2] != 10 {
		t.Fatalf("backlogged slice got %d, want 10", shares[2])
	}
}

func TestTargetRateBestEffortOnly(t *testing.T) {
	// All targets zero: redistribution loop must still assign by demand.
	demands := []SliceDemand{
		{SliceID: 1, DemandPRBs: 30},
		{SliceID: 2, DemandPRBs: 30},
	}
	shares := TargetRate{}.Divide(0, 52, demands)
	if got := sumShares(shares); got != 52 {
		t.Fatalf("allocated %d of 52", got)
	}
}

func TestFixedShareIgnoresDemand(t *testing.T) {
	demands := demandsFixture()
	demands[0].DemandPRBs = 0 // still gets its share
	shares := FixedShare{}.Divide(0, 60, demands)
	if got := sumShares(shares); got != 60 {
		t.Fatalf("allocated %d of 60", got)
	}
	// Weights 1:2:3 of 60 => 10/20/30.
	if shares[1] != 10 || shares[2] != 20 || shares[3] != 30 {
		t.Fatalf("shares = %v", shares)
	}
}

func TestWeightedFairCapsAndRedistributes(t *testing.T) {
	demands := []SliceDemand{
		{SliceID: 1, Weight: 3, DemandPRBs: 5},
		{SliceID: 2, Weight: 1, DemandPRBs: 100},
	}
	shares := WeightedFair{}.Divide(0, 52, demands)
	if shares[1] != 5 {
		t.Fatalf("slice 1 got %d, want 5 (its demand)", shares[1])
	}
	if shares[2] != 47 {
		t.Fatalf("slice 2 got %d, want the remaining 47", shares[2])
	}
}

func TestInterSliceNeverOverAllocates(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	policies := []InterSlice{TargetRate{}, FixedShare{}, WeightedFair{}}
	for trial := 0; trial < 500; trial++ {
		budget := uint32(rng.Intn(120))
		n := rng.Intn(6)
		var demands []SliceDemand
		var totalDemand uint64
		for i := 0; i < n; i++ {
			d := SliceDemand{
				SliceID:       uint32(i + 1),
				TargetRateBps: float64(rng.Intn(30_000_000)),
				DemandPRBs:    uint32(rng.Intn(80)),
				Weight:        float64(rng.Intn(5)),
			}
			demands = append(demands, d)
			totalDemand += uint64(d.DemandPRBs)
		}
		for _, p := range policies {
			shares := p.Divide(uint64(trial), budget, demands)
			if got := sumShares(shares); got > budget {
				t.Fatalf("%s allocated %d of %d", p.Name(), got, budget)
			}
			// Demand-aware policies must also be work conserving.
			if p.Name() != "fixed-share" {
				want := uint64(budget)
				if totalDemand < want {
					want = totalDemand
				}
				if got := uint64(sumShares(shares)); got != want {
					t.Fatalf("%s allocated %d, want %d (budget %d demand %d)",
						p.Name(), got, want, budget, totalDemand)
				}
			}
			for id, s := range shares {
				if p.Name() != "fixed-share" {
					for _, d := range demands {
						if d.SliceID == id && s > d.DemandPRBs {
							t.Fatalf("%s granted %d PRBs to slice %d with demand %d",
								p.Name(), s, id, d.DemandPRBs)
						}
					}
				}
			}
		}
	}
}

package sched

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func mkUE(id uint32, per, buf uint32, avg float64) UEInfo {
	return UEInfo{ID: id, MCS: 20, BitsPerPRB: per, BufferBytes: buf, AvgTputBps: avg}
}

func TestRoundRobinEqualSharesSaturated(t *testing.T) {
	req := &Request{
		PRBBudget: 12,
		UEs: []UEInfo{
			mkUE(1, 500, 1_000_000, 0),
			mkUE(2, 500, 1_000_000, 0),
			mkUE(3, 500, 1_000_000, 0),
		},
	}
	resp, err := RoundRobin{}.Schedule(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Allocs) != 3 {
		t.Fatalf("allocs = %v", resp.Allocs)
	}
	for _, a := range resp.Allocs {
		if a.PRBs != 4 {
			t.Fatalf("unequal share: %v", resp.Allocs)
		}
	}
}

func TestRoundRobinRotatesRemainder(t *testing.T) {
	mk := func(slot uint64) map[uint32]uint32 {
		req := &Request{
			Slot:      slot,
			PRBBudget: 4,
			UEs: []UEInfo{
				mkUE(1, 500, 1_000_000, 0),
				mkUE(2, 500, 1_000_000, 0),
				mkUE(3, 500, 1_000_000, 0),
			},
		}
		resp, err := RoundRobin{}.Schedule(req)
		if err != nil {
			t.Fatal(err)
		}
		out := map[uint32]uint32{}
		for _, a := range resp.Allocs {
			out[a.UEID] = a.PRBs
		}
		return out
	}
	// With 4 PRBs over 3 UEs, the extra PRB must rotate with the slot.
	first := mk(0)
	second := mk(1)
	var extraFirst, extraSecond uint32
	for id, g := range first {
		if g == 2 {
			extraFirst = id
		}
	}
	for id, g := range second {
		if g == 2 {
			extraSecond = id
		}
	}
	if extraFirst == 0 || extraSecond == 0 || extraFirst == extraSecond {
		t.Fatalf("remainder did not rotate: slot0=%v slot1=%v", first, second)
	}
}

func TestRoundRobinSpillsToBacklogged(t *testing.T) {
	req := &Request{
		PRBBudget: 10,
		UEs: []UEInfo{
			mkUE(1, 800, 100, 0), // needs 1 PRB only
			mkUE(2, 800, 1_000_000, 0),
		},
	}
	resp, err := RoundRobin{}.Schedule(req)
	if err != nil {
		t.Fatal(err)
	}
	got := map[uint32]uint32{}
	for _, a := range resp.Allocs {
		got[a.UEID] = a.PRBs
	}
	if got[1] != 1 || got[2] != 9 {
		t.Fatalf("spill: %v", got)
	}
}

func TestMaxThroughputOrdering(t *testing.T) {
	req := &Request{
		PRBBudget: 10,
		UEs: []UEInfo{
			mkUE(1, 400, 1_000_000, 0),
			mkUE(2, 800, 1_000_000, 0), // best channel wins all
		},
	}
	resp, err := MaxThroughput{}.Schedule(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Allocs) != 1 || resp.Allocs[0].UEID != 2 || resp.Allocs[0].PRBs != 10 {
		t.Fatalf("MT allocs = %v", resp.Allocs)
	}
}

func TestMaxThroughputTieBreaksByID(t *testing.T) {
	req := &Request{
		PRBBudget: 4,
		UEs: []UEInfo{
			mkUE(9, 500, 200, 0),
			mkUE(3, 500, 200, 0),
		},
	}
	resp, err := MaxThroughput{}.Schedule(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Allocs[0].UEID != 3 {
		t.Fatalf("tie break: %v", resp.Allocs)
	}
}

func TestProportionalFairFavorsStarved(t *testing.T) {
	req := &Request{
		PRBBudget: 10,
		UEs: []UEInfo{
			mkUE(1, 800, 1_000_000, 20e6), // rich history
			mkUE(2, 400, 1_000_000, 1e3),  // starved
		},
	}
	resp, err := ProportionalFair{}.Schedule(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Allocs[0].UEID != 2 {
		t.Fatalf("PF should serve the starved UE first: %v", resp.Allocs)
	}
}

func TestSchedulersSkipInactiveUEs(t *testing.T) {
	req := &Request{
		PRBBudget: 10,
		UEs: []UEInfo{
			mkUE(1, 0, 100, 0),   // zero-rate channel
			mkUE(2, 500, 0, 0),   // empty buffer
			mkUE(3, 500, 100, 0), // the only schedulable UE
		},
	}
	for _, s := range []IntraSlice{RoundRobin{}, MaxThroughput{}, ProportionalFair{}} {
		resp, err := s.Schedule(req)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(resp.Allocs) != 1 || resp.Allocs[0].UEID != 3 {
			t.Fatalf("%s allocs = %v", s.Name(), resp.Allocs)
		}
	}
}

func TestSchedulersEmptyCases(t *testing.T) {
	for _, s := range []IntraSlice{RoundRobin{}, MaxThroughput{}, ProportionalFair{}} {
		resp, err := s.Schedule(&Request{PRBBudget: 10})
		if err != nil || len(resp.Allocs) != 0 {
			t.Fatalf("%s on empty UE list: %v, %v", s.Name(), resp.Allocs, err)
		}
		resp, err = s.Schedule(&Request{UEs: []UEInfo{mkUE(1, 500, 100, 0)}})
		if err != nil || len(resp.Allocs) != 0 {
			t.Fatalf("%s on zero budget: %v, %v", s.Name(), resp.Allocs, err)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"rr", "pf", "mt", "round-robin", "proportional-fair", "max-throughput"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("bogus"); ok {
		t.Error("ByName(bogus) succeeded")
	}
}

func TestResponseValidate(t *testing.T) {
	req := &Request{
		PRBBudget: 10,
		UEs:       []UEInfo{mkUE(1, 500, 100, 0), mkUE(2, 500, 100, 0)},
	}
	ok := &Response{Allocs: []Allocation{{UEID: 1, PRBs: 6}, {UEID: 2, PRBs: 4}}}
	if err := ok.Validate(req); err != nil {
		t.Errorf("valid response rejected: %v", err)
	}
	cases := map[string]*Response{
		"unknown UE":  {Allocs: []Allocation{{UEID: 9, PRBs: 1}}},
		"duplicate":   {Allocs: []Allocation{{UEID: 1, PRBs: 1}, {UEID: 1, PRBs: 1}}},
		"over budget": {Allocs: []Allocation{{UEID: 1, PRBs: 11}}},
	}
	for name, resp := range cases {
		if err := resp.Validate(req); !errors.Is(err, ErrInvalidResponse) {
			t.Errorf("%s: want ErrInvalidResponse, got %v", name, err)
		}
	}
}

// randomReq builds a randomized request for property tests.
func randomReq(rng *rand.Rand) *Request {
	req := &Request{
		Slot:      rng.Uint64(),
		PRBBudget: uint32(rng.Intn(60)),
	}
	n := rng.Intn(15)
	for i := 0; i < n; i++ {
		req.UEs = append(req.UEs, UEInfo{
			ID:          uint32(i + 1),
			MCS:         int32(rng.Intn(29)),
			BitsPerPRB:  uint32(rng.Intn(900)),
			BufferBytes: uint32(rng.Intn(100_000)),
			AvgTputBps:  rng.Float64() * 30e6,
		})
	}
	return req
}

// Property: every native scheduler emits a valid response (budget
// respected, no unknown or duplicate UEs) and never grants to inactive UEs.
func TestQuickSchedulerInvariants(t *testing.T) {
	scheds := []IntraSlice{RoundRobin{}, MaxThroughput{}, ProportionalFair{}}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		req := randomReq(rng)
		for _, s := range scheds {
			resp, err := s.Schedule(req)
			if err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			if err := resp.Validate(req); err != nil {
				t.Fatalf("%s violated invariants: %v (req %+v)", s.Name(), err, req)
			}
			active := map[uint32]bool{}
			for _, u := range req.UEs {
				if u.BufferBytes > 0 && u.BitsPerPRB > 0 {
					active[u.ID] = true
				}
			}
			for _, a := range resp.Allocs {
				if !active[a.UEID] {
					t.Fatalf("%s granted to inactive UE %d", s.Name(), a.UEID)
				}
				if a.PRBs == 0 {
					t.Fatalf("%s emitted zero-PRB grant", s.Name())
				}
			}
		}
	}
}

// Property: schedulers are deterministic — same request, same answer.
func TestQuickSchedulerDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	scheds := []IntraSlice{RoundRobin{}, MaxThroughput{}, ProportionalFair{}}
	for trial := 0; trial < 100; trial++ {
		req := randomReq(rng)
		for _, s := range scheds {
			a, _ := s.Schedule(req)
			b, _ := s.Schedule(req)
			if len(a.Allocs) != len(b.Allocs) {
				t.Fatalf("%s nondeterministic", s.Name())
			}
			for i := range a.Allocs {
				if a.Allocs[i] != b.Allocs[i] {
					t.Fatalf("%s nondeterministic at %d", s.Name(), i)
				}
			}
		}
	}
}

// Property: work conservation — if total demand >= budget, the full budget
// is allocated.
func TestQuickWorkConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	scheds := []IntraSlice{RoundRobin{}, MaxThroughput{}, ProportionalFair{}}
	for trial := 0; trial < 300; trial++ {
		req := randomReq(rng)
		var demand uint64
		for i := range req.UEs {
			demand += uint64(prbsNeeded(&req.UEs[i]))
		}
		for _, s := range scheds {
			resp, _ := s.Schedule(req)
			total := uint64(resp.TotalPRBs())
			want := uint64(req.PRBBudget)
			if demand < want {
				want = demand
			}
			if total != want {
				t.Fatalf("%s allocated %d PRBs, want %d (budget %d, demand %d)",
					s.Name(), total, want, req.PRBBudget, demand)
			}
		}
	}
}

func TestQuickPrbsNeeded(t *testing.T) {
	f := func(per uint16, buf uint32) bool {
		u := &UEInfo{BitsPerPRB: uint32(per), BufferBytes: buf}
		need := prbsNeeded(u)
		if per == 0 || buf == 0 {
			return need == 0
		}
		bits := uint64(buf) * 8
		// need is the least n with n*per >= bits.
		if uint64(need)*uint64(per) < bits {
			return false
		}
		return uint64(need-1)*uint64(per) < bits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

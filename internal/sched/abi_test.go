package sched

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func codecs() []Codec { return []Codec{BinaryCodec{}, JSONCodec{}} }

func TestCodecRequestRoundTrip(t *testing.T) {
	req := &Request{
		SliceID:   3,
		Slot:      1 << 40,
		PRBBudget: 52,
		UEs: []UEInfo{
			{ID: 1, MCS: 28, BitsPerPRB: 802, BufferBytes: 123456, AvgTputBps: 17.5e6},
			{ID: 2, MCS: 0, BitsPerPRB: 0, BufferBytes: 0, AvgTputBps: 0},
		},
	}
	for _, c := range codecs() {
		got, err := c.DecodeRequest(c.EncodeRequest(req))
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if got.SliceID != req.SliceID || got.Slot != req.Slot || got.PRBBudget != req.PRBBudget {
			t.Fatalf("%s header mismatch: %+v", c.Name(), got)
		}
		if !reflect.DeepEqual(got.UEs, req.UEs) {
			t.Fatalf("%s UEs mismatch:\n%+v\n%+v", c.Name(), got.UEs, req.UEs)
		}
	}
}

func TestCodecResponseRoundTrip(t *testing.T) {
	resp := &Response{Allocs: []Allocation{{UEID: 7, PRBs: 13}, {UEID: 9, PRBs: 0}}}
	for _, c := range codecs() {
		got, err := c.DecodeResponse(c.EncodeResponse(resp))
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if !reflect.DeepEqual(got.Allocs, resp.Allocs) {
			t.Fatalf("%s mismatch: %+v", c.Name(), got.Allocs)
		}
	}
}

func TestCodecEmptyValues(t *testing.T) {
	for _, c := range codecs() {
		req, err := c.DecodeRequest(c.EncodeRequest(&Request{}))
		if err != nil || len(req.UEs) != 0 {
			t.Fatalf("%s empty request: %+v, %v", c.Name(), req, err)
		}
		resp, err := c.DecodeResponse(c.EncodeResponse(&Response{}))
		if err != nil || len(resp.Allocs) != 0 {
			t.Fatalf("%s empty response: %+v, %v", c.Name(), resp, err)
		}
	}
}

func TestBinaryCodecRejectsMalformed(t *testing.T) {
	c := BinaryCodec{}
	if _, err := c.DecodeRequest([]byte{1, 2, 3}); err == nil {
		t.Error("short request accepted")
	}
	if _, err := c.DecodeResponse([]byte{1}); err == nil {
		t.Error("short response accepted")
	}
	// Claimed UE count inconsistent with the buffer length.
	good := c.EncodeRequest(&Request{UEs: []UEInfo{{ID: 1}}})
	if _, err := c.DecodeRequest(good[:len(good)-4]); err == nil {
		t.Error("truncated request accepted")
	}
	// Response claiming 99 allocations in 4 bytes.
	bad := []byte{99, 0, 0, 0}
	if _, err := c.DecodeResponse(bad); err == nil {
		t.Error("inconsistent response accepted")
	}
}

func TestBinaryEncodingIsCompact(t *testing.T) {
	req := &Request{UEs: make([]UEInfo, 20)}
	bin := BinaryCodec{}.EncodeRequest(req)
	js := JSONCodec{}.EncodeRequest(req)
	if len(bin) >= len(js) {
		t.Fatalf("binary (%d B) not smaller than JSON (%d B)", len(bin), len(js))
	}
	if want := 20 + 20*24; len(bin) != want {
		t.Fatalf("binary request = %d bytes, want %d", len(bin), want)
	}
}

// Property: binary codec round-trips arbitrary requests and responses.
func TestQuickBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := BinaryCodec{}
	for trial := 0; trial < 500; trial++ {
		req := randomReq(rng)
		got, err := c.DecodeRequest(c.EncodeRequest(req))
		if err != nil {
			t.Fatal(err)
		}
		if got.SliceID != req.SliceID || got.Slot != req.Slot || got.PRBBudget != req.PRBBudget || len(got.UEs) != len(req.UEs) {
			t.Fatalf("request mismatch")
		}
		for i := range req.UEs {
			if got.UEs[i] != req.UEs[i] {
				t.Fatalf("UE %d mismatch: %+v vs %+v", i, got.UEs[i], req.UEs[i])
			}
		}
	}
	f := func(allocs []Allocation) bool {
		resp := &Response{Allocs: allocs}
		got, err := c.DecodeResponse(c.EncodeResponse(resp))
		if err != nil {
			return false
		}
		if len(got.Allocs) != len(allocs) {
			return false
		}
		for i := range allocs {
			if got.Allocs[i] != allocs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

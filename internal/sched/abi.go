package sched

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
)

// Codec serializes scheduling requests and responses across the plugin
// boundary. The compact binary codec is the default; the JSON codec exists
// for interoperability and as the ablation baseline showing why the binary
// layout matters inside the 1 ms slot deadline (Fig. 5d includes
// serialization cost).
type Codec interface {
	Name() string
	EncodeRequest(req *Request) []byte
	DecodeResponse(b []byte) (*Response, error)
	// DecodeRequest and EncodeResponse implement the guest side; the Go
	// reference guest and tests use them.
	DecodeRequest(b []byte) (*Request, error)
	EncodeResponse(resp *Response) []byte
}

// Binary request layout (little endian):
//
//	u32 sliceID | u64 slot | u32 prbBudget | u32 nUE
//	then per UE: u32 id | i32 mcs | u32 bitsPerPRB | u32 bufferBytes | f64 avgTput
//
// Binary response layout:
//
//	u32 nAlloc, then per allocation: u32 ueID | u32 prbs
const (
	binReqHeaderLen = 4 + 8 + 4 + 4
	binReqUELen     = 4 + 4 + 4 + 4 + 8
	binRespAllocLen = 8
)

// BinaryCodec is the compact fixed-layout codec.
type BinaryCodec struct{}

// Name implements Codec.
func (BinaryCodec) Name() string { return "binary" }

// EncodeRequest implements Codec.
func (BinaryCodec) EncodeRequest(req *Request) []byte {
	b := make([]byte, binReqHeaderLen+binReqUELen*len(req.UEs))
	le := binary.LittleEndian
	le.PutUint32(b[0:], req.SliceID)
	le.PutUint64(b[4:], req.Slot)
	le.PutUint32(b[12:], req.PRBBudget)
	le.PutUint32(b[16:], uint32(len(req.UEs)))
	off := binReqHeaderLen
	for i := range req.UEs {
		u := &req.UEs[i]
		le.PutUint32(b[off:], u.ID)
		le.PutUint32(b[off+4:], uint32(u.MCS))
		le.PutUint32(b[off+8:], u.BitsPerPRB)
		le.PutUint32(b[off+12:], u.BufferBytes)
		le.PutUint64(b[off+16:], math.Float64bits(u.AvgTputBps))
		off += binReqUELen
	}
	return b
}

// DecodeRequest implements Codec.
func (BinaryCodec) DecodeRequest(b []byte) (*Request, error) {
	if len(b) < binReqHeaderLen {
		return nil, fmt.Errorf("sched: binary request too short (%d bytes)", len(b))
	}
	le := binary.LittleEndian
	req := &Request{
		SliceID:   le.Uint32(b[0:]),
		Slot:      le.Uint64(b[4:]),
		PRBBudget: le.Uint32(b[12:]),
	}
	n := int(le.Uint32(b[16:]))
	if len(b) != binReqHeaderLen+n*binReqUELen {
		return nil, fmt.Errorf("sched: binary request length %d does not match %d UEs", len(b), n)
	}
	req.UEs = make([]UEInfo, n)
	off := binReqHeaderLen
	for i := 0; i < n; i++ {
		req.UEs[i] = UEInfo{
			ID:          le.Uint32(b[off:]),
			MCS:         int32(le.Uint32(b[off+4:])),
			BitsPerPRB:  le.Uint32(b[off+8:]),
			BufferBytes: le.Uint32(b[off+12:]),
			AvgTputBps:  math.Float64frombits(le.Uint64(b[off+16:])),
		}
		off += binReqUELen
	}
	return req, nil
}

// EncodeResponse implements Codec.
func (BinaryCodec) EncodeResponse(resp *Response) []byte {
	b := make([]byte, 4+binRespAllocLen*len(resp.Allocs))
	le := binary.LittleEndian
	le.PutUint32(b[0:], uint32(len(resp.Allocs)))
	off := 4
	for _, a := range resp.Allocs {
		le.PutUint32(b[off:], a.UEID)
		le.PutUint32(b[off+4:], a.PRBs)
		off += binRespAllocLen
	}
	return b
}

// DecodeResponse implements Codec. The response bytes come from an
// untrusted plugin, so every structural failure is a typed *BadOutputError:
// a count prefix pointing past the payload (out-of-bounds region), trailing
// bytes the count does not claim, an absurd count, or two grants naming the
// same UE (overlapping result regions). Arithmetic is done in int64 so a
// hostile count cannot overflow the expected-length computation.
func (BinaryCodec) DecodeResponse(b []byte) (*Response, error) {
	if len(b) < 4 {
		return nil, badOutputf("sched: binary response too short (%d bytes)", len(b))
	}
	le := binary.LittleEndian
	n := le.Uint32(b[0:])
	if n > maxRespAllocs {
		return nil, badOutputKind(BadOutputOOB, "sched: binary response claims %d allocations (max %d)", n, maxRespAllocs)
	}
	if want := 4 + int64(n)*binRespAllocLen; int64(len(b)) != want {
		return nil, badOutputKind(BadOutputOOB, "sched: binary response length %d does not match %d allocations (want %d): allocation region out of bounds",
			len(b), n, want)
	}
	resp := &Response{Allocs: make([]Allocation, n)}
	seen := make(map[uint32]int, n)
	off := 4
	for i := 0; i < int(n); i++ {
		a := Allocation{UEID: le.Uint32(b[off:]), PRBs: le.Uint32(b[off+4:])}
		if j, dup := seen[a.UEID]; dup {
			return nil, badOutputKind(BadOutputOverlap, "sched: binary response allocations %d and %d overlap on UE %d", j, i, a.UEID)
		}
		seen[a.UEID] = i
		resp.Allocs[i] = a
		off += binRespAllocLen
	}
	return resp, nil
}

// JSONCodec trades compactness for debuggability and language reach.
type JSONCodec struct{}

// Name implements Codec.
func (JSONCodec) Name() string { return "json" }

type jsonUE struct {
	ID          uint32  `json:"id"`
	MCS         int32   `json:"mcs"`
	BitsPerPRB  uint32  `json:"bits_per_prb"`
	BufferBytes uint32  `json:"buffer_bytes"`
	AvgTputBps  float64 `json:"avg_tput_bps"`
}

type jsonRequest struct {
	SliceID   uint32   `json:"slice_id"`
	Slot      uint64   `json:"slot"`
	PRBBudget uint32   `json:"prb_budget"`
	UEs       []jsonUE `json:"ues"`
}

type jsonAlloc struct {
	UEID uint32 `json:"ue_id"`
	PRBs uint32 `json:"prbs"`
}

type jsonResponse struct {
	Allocs []jsonAlloc `json:"allocs"`
}

// EncodeRequest implements Codec.
func (JSONCodec) EncodeRequest(req *Request) []byte {
	jr := jsonRequest{SliceID: req.SliceID, Slot: req.Slot, PRBBudget: req.PRBBudget}
	for _, u := range req.UEs {
		jr.UEs = append(jr.UEs, jsonUE(u))
	}
	b, _ := json.Marshal(jr)
	return b
}

// DecodeRequest implements Codec.
func (JSONCodec) DecodeRequest(b []byte) (*Request, error) {
	var jr jsonRequest
	if err := json.Unmarshal(b, &jr); err != nil {
		return nil, fmt.Errorf("sched: decode json request: %w", err)
	}
	req := &Request{SliceID: jr.SliceID, Slot: jr.Slot, PRBBudget: jr.PRBBudget}
	for _, u := range jr.UEs {
		req.UEs = append(req.UEs, UEInfo(u))
	}
	return req, nil
}

// EncodeResponse implements Codec.
func (JSONCodec) EncodeResponse(resp *Response) []byte {
	var jr jsonResponse
	for _, a := range resp.Allocs {
		jr.Allocs = append(jr.Allocs, jsonAlloc(a))
	}
	b, _ := json.Marshal(jr)
	return b
}

// DecodeResponse implements Codec. Mirrors the binary decoder's hostile-
// input posture: malformed JSON, an absurd allocation count, or overlapping
// grants are typed *BadOutputError.
func (JSONCodec) DecodeResponse(b []byte) (*Response, error) {
	var jr jsonResponse
	if err := json.Unmarshal(b, &jr); err != nil {
		return nil, badOutputf("sched: decode json response: %w", err)
	}
	if len(jr.Allocs) > maxRespAllocs {
		return nil, badOutputKind(BadOutputOOB, "sched: json response claims %d allocations (max %d)", len(jr.Allocs), maxRespAllocs)
	}
	resp := &Response{}
	seen := make(map[uint32]int, len(jr.Allocs))
	for i, a := range jr.Allocs {
		if j, dup := seen[a.UEID]; dup {
			return nil, badOutputKind(BadOutputOverlap, "sched: json response allocations %d and %d overlap on UE %d", j, i, a.UEID)
		}
		seen[a.UEID] = i
		resp.Allocs = append(resp.Allocs, Allocation(a))
	}
	return resp, nil
}

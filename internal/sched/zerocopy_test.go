package sched

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"waran/internal/wabi"
	"waran/internal/wasm"
)

// newTestRegions builds a raw linear memory with a request and response
// window laid out like a negotiated plugin, but with no wasm module behind
// it — the writer and reader are pure byte-layout code, so the differential
// tests can drive them directly against the serializing codec.
func newTestRegions() (*wasm.Memory, *wabi.Regions) {
	mem := wasm.NewMemory(1, 1)
	rg := &wabi.Regions{Layout: wabi.RegionLayout{
		ReqPtr: 4096, ReqLen: ZCRequestRegionLen,
		RespPtr: 20480, RespLen: ZCResponseRegionLen,
	}}
	return mem, rg
}

// regionRequestBytes reads back the live prefix of the request region: the
// bytes a guest parsing the shared layout would consume.
func regionRequestBytes(t *testing.T, mem *wasm.Memory, rg *wabi.Regions, nUE int) []byte {
	t.Helper()
	b, err := mem.Read(rg.Layout.ReqPtr, uint32(binReqHeaderLen+nUE*binReqUELen))
	if err != nil {
		t.Fatalf("read request region: %v", err)
	}
	return b
}

func zcRandomRequest(rng *rand.Rand, nUE int, slot uint64) *Request {
	req := &Request{
		SliceID:   rng.Uint32(),
		Slot:      slot,
		PRBBudget: uint32(rng.Intn(300)),
	}
	for i := 0; i < nUE; i++ {
		avg := float64(rng.Intn(50_000_000))
		switch rng.Intn(12) {
		case 0:
			avg = math.NaN()
		case 1:
			avg = math.Inf(1)
		case 2:
			avg = math.Inf(-1)
		}
		req.UEs = append(req.UEs, UEInfo{
			ID:          rng.Uint32(),
			MCS:         int32(rng.Intn(29)),
			BitsPerPRB:  uint32(rng.Intn(2000)),
			BufferBytes: uint32(rng.Intn(1 << 20)),
			AvgTputBps:  avg,
		})
	}
	return req
}

// TestZCWriteRequestMatchesBinaryEncode pins the tentpole invariant: the
// request region after a zero-copy write is byte-identical to the binary
// codec's encoding of the same request, so a guest parsing the shared
// layout cannot tell the paths apart.
func TestZCWriteRequestMatchesBinaryEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		mem, rg := newTestRegions()
		nUE := rng.Intn(64)
		if trial == 0 {
			nUE = 0 // pin the empty request explicitly
		}
		if trial == 1 {
			nUE = ZCMaxUEs // and the full region
		}
		req := zcRandomRequest(rng, nUE, uint64(trial))
		st, err := zcWriteRequest(mem, rg, req)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if st.total != nUE || st.dirty != nUE {
			t.Fatalf("trial %d: fresh write stats %+v, want all %d dirty", trial, st, nUE)
		}
		want := BinaryCodec{}.EncodeRequest(req)
		got := regionRequestBytes(t, mem, rg, nUE)
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: region bytes diverge from binary encoding\nregion: %x\ncodec:  %x", trial, got, want)
		}
	}
}

func TestZCWriteRequestRejectsOversize(t *testing.T) {
	mem, rg := newTestRegions()
	req := zcRandomRequest(rand.New(rand.NewSource(2)), ZCMaxUEs+1, 0)
	if _, err := zcWriteRequest(mem, rg, req); err == nil {
		t.Fatal("request with ZCMaxUEs+1 UEs accepted")
	}
}

// TestZCDeltaWrite drives a multi-slot sequence with random UE mutations and
// checks (a) the region always matches a full re-encode bit for bit, and
// (b) only changed records are counted dirty.
func TestZCDeltaWrite(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mem, rg := newTestRegions()
	req := zcRandomRequest(rng, 32, 0)
	if _, err := zcWriteRequest(mem, rg, req); err != nil {
		t.Fatal(err)
	}

	for slot := uint64(1); slot <= 1000; slot++ {
		// Mutate a random subset of UEs; occasionally shrink or grow the UE
		// list so the shadow's live prefix moves.
		mutated := 0
		for i := range req.UEs {
			if rng.Intn(8) == 0 {
				req.UEs[i].BufferBytes = uint32(rng.Intn(1 << 20))
				mutated++
			}
		}
		switch rng.Intn(10) {
		case 0:
			if len(req.UEs) > 1 {
				req.UEs = req.UEs[:len(req.UEs)-1-rng.Intn(len(req.UEs)-1)]
			}
		case 1:
			for len(req.UEs) < 40 {
				req.UEs = append(req.UEs, zcRandomRequest(rng, 1, slot).UEs[0])
			}
		}
		req.Slot = slot

		st, err := zcWriteRequest(mem, rg, req)
		if err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
		if st.total != len(req.UEs) {
			t.Fatalf("slot %d: total = %d, want %d", slot, st.total, len(req.UEs))
		}
		// Dirty count can exceed the in-place mutations when the list was
		// resized (records shifted or appeared), but a pure in-place
		// mutation round must write exactly the mutated records.
		want := BinaryCodec{}.EncodeRequest(req)
		got := regionRequestBytes(t, mem, rg, len(req.UEs))
		if !bytes.Equal(got, want) {
			t.Fatalf("slot %d: delta-updated region diverges from full re-encode", slot)
		}
	}
}

// TestZCDeltaWriteDirtyAccounting pins the dirty counter exactly for
// controlled mutations: only touched records are rewritten.
func TestZCDeltaWriteDirtyAccounting(t *testing.T) {
	mem, rg := newTestRegions()
	req := zcRandomRequest(rand.New(rand.NewSource(4)), 16, 0)
	if _, err := zcWriteRequest(mem, rg, req); err != nil {
		t.Fatal(err)
	}

	// Same request, same slot: nothing dirty.
	st, err := zcWriteRequest(mem, rg, req)
	if err != nil {
		t.Fatal(err)
	}
	if st.dirty != 0 {
		t.Fatalf("idempotent rewrite dirtied %d records", st.dirty)
	}

	// New slot, two UEs touched: exactly two records dirty (the header is
	// rewritten but headers are not records).
	req.Slot = 1
	req.UEs[3].BufferBytes++
	req.UEs[9].MCS++
	st, err = zcWriteRequest(mem, rg, req)
	if err != nil {
		t.Fatal(err)
	}
	if st.dirty != 2 {
		t.Fatalf("dirty = %d, want 2", st.dirty)
	}
	if got, want := regionRequestBytes(t, mem, rg, 16), (BinaryCodec{}).EncodeRequest(req); !bytes.Equal(got, want) {
		t.Fatal("region diverges after partial rewrite")
	}
}

// writeResponseRegion lays raw response bytes into the region, zero-padding
// the remainder so stale bytes from earlier test cases cannot leak in.
func writeResponseRegion(t *testing.T, mem *wasm.Memory, rg *wabi.Regions, b []byte) {
	t.Helper()
	if len(b) > int(rg.Layout.RespLen) {
		t.Fatalf("test response %d bytes exceeds region %d", len(b), rg.Layout.RespLen)
	}
	buf := make([]byte, rg.Layout.RespLen)
	copy(buf, b)
	if err := mem.Write(rg.Layout.RespPtr, buf); err != nil {
		t.Fatal(err)
	}
}

func kindOf(t *testing.T, err error) (BadOutputKind, bool) {
	t.Helper()
	var bo *BadOutputError
	if errors.As(err, &bo) {
		return bo.Kind, true
	}
	return 0, false
}

// TestZCReadResponseMatchesBinaryDecode: for any response-region content
// whose claimed table fits the region, reading the region must agree with
// the binary codec decoding the equivalent byte string — same allocations
// on success, same BadOutputKind on rejection.
func TestZCReadResponseMatchesBinaryDecode(t *testing.T) {
	mem, rg := newTestRegions()
	enc := BinaryCodec{}
	cases := []struct {
		name string
		resp *Response
	}{
		{"empty", &Response{Allocs: []Allocation{}}},
		{"one", &Response{Allocs: []Allocation{{UEID: 7, PRBs: 3}}}},
		{"many", &Response{Allocs: []Allocation{{1, 1}, {2, 5}, {3, 0}, {0xffffffff, 9}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := enc.EncodeResponse(tc.resp)
			writeResponseRegion(t, mem, rg, b)
			got, err := zcReadResponse(mem, rg.Layout)
			if err != nil {
				t.Fatal(err)
			}
			want, err := enc.DecodeResponse(b)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("zc read %+v, codec %+v", got, want)
			}
		})
	}
}

// TestZCReadResponseHostileKinds is the crafted-hostile-region table: each
// attack must be rejected with the same structural kind the codec assigns.
func TestZCReadResponseHostileKinds(t *testing.T) {
	mem, rg := newTestRegions()
	le := func(vals ...uint32) []byte {
		b := make([]byte, 4*len(vals))
		for i, v := range vals {
			b[4*i] = byte(v)
			b[4*i+1] = byte(v >> 8)
			b[4*i+2] = byte(v >> 16)
			b[4*i+3] = byte(v >> 24)
		}
		return b
	}
	cases := []struct {
		name string
		b    []byte
		kind BadOutputKind
	}{
		{"poison count untouched", le(zcRespPoison), BadOutputOOB},
		{"count past region", le(ZCMaxAllocs + 1), BadOutputOOB},
		{"count 0xffffffff", le(0xffff_ffff), BadOutputOOB},
		{"overlapping allocations", le(2, 42, 1, 42, 2), BadOutputOverlap},
		{"overlap later", le(3, 1, 1, 2, 1, 1, 5), BadOutputOverlap},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			writeResponseRegion(t, mem, rg, tc.b)
			_, err := zcReadResponse(mem, rg.Layout)
			kind, ok := kindOf(t, err)
			if !ok {
				t.Fatalf("err = %v, want *BadOutputError", err)
			}
			if kind != tc.kind {
				t.Fatalf("kind = %v, want %v", kind, tc.kind)
			}
		})
	}
}

func TestParseABIMode(t *testing.T) {
	for in, want := range map[string]ABIMode{
		"": ABIAuto, "auto": ABIAuto, "codec": ABICodec, "binary": ABICodec,
		"zerocopy": ABIZeroCopy, "zero-copy": ABIZeroCopy, "zc": ABIZeroCopy,
	} {
		got, err := ParseABIMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseABIMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseABIMode("capnproto"); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if ABIZeroCopy.String() != "zerocopy" || ABICodec.String() != "codec" || ABIAuto.String() != "auto" {
		t.Fatal("ABIMode.String mismatch")
	}
}

// FuzzABIDifferential is the differential engine for the ABI layer proper,
// no wasm execution involved: random requests must produce bit-identical
// request bytes through the delta writer and the serializing encoder, and
// arbitrary response-region content must be accepted/rejected identically
// (same allocations, same BadOutputKind) by the region reader and the
// serializing decoder.
func FuzzABIDifferential(f *testing.F) {
	f.Add(int64(1), uint16(0), []byte{})
	f.Add(int64(2), uint16(5), []byte{1, 0, 0, 0, 7, 0, 0, 0, 3, 0, 0, 0})
	f.Add(int64(3), uint16(512), []byte{0xef, 0xbe, 0xad, 0xde})
	f.Add(int64(4), uint16(33), []byte{2, 0, 0, 0, 42, 0, 0, 0, 1, 0, 0, 0, 42, 0, 0, 0, 2, 0, 0, 0})
	f.Fuzz(func(t *testing.T, seed int64, nUE uint16, respBytes []byte) {
		rng := rand.New(rand.NewSource(seed))
		mem, rg := newTestRegions()
		enc := BinaryCodec{}

		// --- Request direction: delta writer vs serializing encoder.
		req := zcRandomRequest(rng, int(nUE)%(ZCMaxUEs+1), uint64(seed))
		if _, err := zcWriteRequest(mem, rg, req); err != nil {
			t.Fatalf("write: %v", err)
		}
		if got, want := regionRequestBytes(t, mem, rg, len(req.UEs)), enc.EncodeRequest(req); !bytes.Equal(got, want) {
			t.Fatal("fresh write diverges from binary encoding")
		}
		// Mutate a random UE and re-write: the delta path must land on the
		// exact same bytes as a full re-encode.
		if len(req.UEs) > 0 {
			i := rng.Intn(len(req.UEs))
			req.UEs[i].AvgTputBps = math.Float64frombits(rng.Uint64())
			req.UEs[i].BufferBytes = rng.Uint32()
		}
		req.Slot++
		if _, err := zcWriteRequest(mem, rg, req); err != nil {
			t.Fatalf("delta write: %v", err)
		}
		if got, want := regionRequestBytes(t, mem, rg, len(req.UEs)), enc.EncodeRequest(req); !bytes.Equal(got, want) {
			t.Fatal("delta write diverges from binary re-encoding")
		}

		// --- Response direction: region reader vs serializing decoder.
		if len(respBytes) > int(rg.Layout.RespLen) {
			respBytes = respBytes[:rg.Layout.RespLen]
		}
		writeResponseRegion(t, mem, rg, respBytes)
		zcResp, zcErr := zcReadResponse(mem, rg.Layout)

		// Equivalence rule: the region's count word names n records; the
		// codec-equivalent input is the first 4+8n region bytes (the region
		// is zero-padded, so short respBytes read as zeros). If the table
		// does not fit the region, both paths must call it out-of-bounds.
		n, err := mem.ReadUint32(rg.Layout.RespPtr)
		if err != nil {
			t.Fatal(err)
		}
		if want := 4 + uint64(n)*binRespAllocLen; n > ZCMaxAllocs || want > uint64(rg.Layout.RespLen) {
			kind, ok := kindOf(t, zcErr)
			if !ok || kind != BadOutputOOB {
				t.Fatalf("oversized claim %d: err = %v, want BadOutputOOB", n, zcErr)
			}
			return
		}
		equiv := make([]byte, 4+int(n)*binRespAllocLen)
		got, err := mem.Read(rg.Layout.RespPtr, uint32(len(equiv)))
		if err != nil {
			t.Fatal(err)
		}
		copy(equiv, got)
		codecResp, codecErr := enc.DecodeResponse(equiv)

		switch {
		case zcErr == nil && codecErr == nil:
			if !reflect.DeepEqual(zcResp, codecResp) {
				t.Fatalf("responses diverge: zc %+v, codec %+v", zcResp, codecResp)
			}
		case zcErr != nil && codecErr != nil:
			zk, zok := kindOf(t, zcErr)
			ck, cok := kindOf(t, codecErr)
			if !zok || !cok || zk != ck {
				t.Fatalf("rejection kinds diverge: zc %v (%v), codec %v (%v)", zk, zcErr, ck, codecErr)
			}
		default:
			t.Fatalf("acceptance diverges: zc err %v, codec err %v", zcErr, codecErr)
		}
	})
}

package sched

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"waran/internal/wabi"
	"waran/internal/wasm"
)

// Zero-copy scheduling ABI (the dApp-style real-time path).
//
// The serializing codecs pay an encode → input_read copy → guest copy →
// output_write copy → decode round trip on every intra-slice decision —
// per slice, per slot, per cell. The zero-copy ABI replaces it with two
// shared-memory windows negotiated once per sandbox instance
// (wabi.Plugin.Regions):
//
//   - the request region holds the slot context in the *same layout as the
//     binary codec* — a 20-byte header (sliceID u32 | slot u64 | prbBudget
//     u32 | nUE u32) followed by fixed-stride 24-byte UE records (id u32 |
//     mcs u32 | bitsPerPRB u32 | bufferBytes u32 | avgTput f64). The host
//     writes it in place and delta-updates only the records that changed
//     since the previous slot served by that instance;
//
//   - the response region holds the allocation table (count u32, then
//     ueID u32 | prbs u32 records) which the guest writes in place.
//
// Sharing the binary layout means any guest's view of a request is
// bit-identical across both paths, which is what the differential harness
// (FuzzABIDifferential, TestDifferentialCorpus) pins down.
//
// The response region is untrusted: the host re-validates it with the same
// hardened rules as the serializing decode (absurd or out-of-region counts,
// overlapping allocations → typed *BadOutputError with the same kinds), and
// the allocation count word is poisoned before every call so a guest that
// never writes its table can only produce a structural rejection, never a
// stale decision.
const (
	// ZCEntryPoint is the entry a zero-copy-capable scheduler exports next
	// to (or instead of) the classic EntryPoint. Signature () -> i32; the
	// request is already in the request region when it runs, and the host
	// reads the response region when it returns 0.
	ZCEntryPoint = "schedule_zc"

	// ZCMaxUEs bounds the UE records the request region can hold — the same
	// 512-UE ceiling the built-in guests reserve buffer space for.
	ZCMaxUEs = 512
	// ZCMaxAllocs bounds the allocation table; one grant per UE is the most
	// a sane scheduler emits.
	ZCMaxAllocs = 512
)

// Region sizes derived from the shared binary layout.
const (
	// ZCRequestRegionLen = header + ZCMaxUEs fixed-stride records.
	ZCRequestRegionLen = uint32(binReqHeaderLen + ZCMaxUEs*binReqUELen)
	// ZCResponseRegionLen = count word + ZCMaxAllocs allocation records.
	ZCResponseRegionLen = uint32(4 + ZCMaxAllocs*binRespAllocLen)

	// zcRespPoison is written over the allocation count before every call.
	// It exceeds ZCMaxAllocs, so if the guest never seals its response the
	// host reads a guaranteed out-of-bounds claim instead of a stale table.
	zcRespPoison = 0xdead_beef
)

// ABIMode selects how a plugin scheduler exchanges requests and responses
// with its sandbox.
type ABIMode int

const (
	// ABIAuto uses the zero-copy path when the guest negotiates it and
	// falls back to the serializing codec for legacy guests.
	ABIAuto ABIMode = iota
	// ABICodec forces the serializing codec path (ablation baseline).
	ABICodec
	// ABIZeroCopy requires the zero-copy path; construction fails if the
	// guest cannot negotiate it.
	ABIZeroCopy
)

// String implements fmt.Stringer.
func (m ABIMode) String() string {
	switch m {
	case ABICodec:
		return "codec"
	case ABIZeroCopy:
		return "zerocopy"
	default:
		return "auto"
	}
}

// ParseABIMode parses the -abi flag values "auto", "codec" and "zerocopy".
func ParseABIMode(s string) (ABIMode, error) {
	switch s {
	case "", "auto":
		return ABIAuto, nil
	case "codec", "binary":
		return ABICodec, nil
	case "zerocopy", "zero-copy", "zc":
		return ABIZeroCopy, nil
	default:
		return ABIAuto, fmt.Errorf("sched: unknown ABI mode %q (want auto, codec or zerocopy)", s)
	}
}

// zcStats is one zero-copy call's delta-update accounting.
type zcStats struct {
	dirty int // UE records actually written
	total int // UE records in the request
}

// zeroCopyEligible reports whether pl can serve the zero-copy path: the
// region exports plus the dedicated entry point.
func zeroCopyEligible(pl *wabi.Plugin) bool {
	return pl.ZeroCopyCapable() && pl.HasEntry(ZCEntryPoint)
}

// resolveABI picks the call path for a plugin under the requested mode.
func resolveABI(name string, pl *wabi.Plugin, mode ABIMode) (zeroCopy bool, err error) {
	hasClassic := pl.HasEntry(EntryPoint)
	hasZC := zeroCopyEligible(pl)
	switch mode {
	case ABICodec:
		if !hasClassic {
			return false, fmt.Errorf("sched: plugin %q does not export %q with signature () -> i32", name, EntryPoint)
		}
		return false, nil
	case ABIZeroCopy:
		if !hasZC {
			return false, fmt.Errorf("sched: plugin %q is not zero-copy capable (needs %q, %q and %q exports)",
				name, ZCEntryPoint, wabi.RegionRequestExport, wabi.RegionResponseExport)
		}
		return true, nil
	default:
		if hasZC {
			return true, nil
		}
		if !hasClassic {
			return false, fmt.Errorf("sched: plugin %q does not export %q with signature () -> i32", name, EntryPoint)
		}
		return false, nil
	}
}

// zcWriteRequest delta-updates the request region of one instance: the
// header and every UE record are encoded into a scratch stride and written
// to guest memory only where they differ from the host's shadow of what the
// region already holds. A fresh instance (empty shadow) gets a full write.
func zcWriteRequest(mem *wasm.Memory, rg *wabi.Regions, req *Request) (zcStats, error) {
	var st zcStats
	if len(req.UEs) > ZCMaxUEs {
		return st, fmt.Errorf("sched: zero-copy request with %d UEs exceeds region capacity %d", len(req.UEs), ZCMaxUEs)
	}
	if rg.Shadow == nil {
		rg.Shadow = make([]byte, ZCRequestRegionLen)
		rg.ShadowLen = 0
	}
	le := binary.LittleEndian
	base := rg.Layout.ReqPtr

	var hdr [binReqHeaderLen]byte
	le.PutUint32(hdr[0:], req.SliceID)
	le.PutUint64(hdr[4:], req.Slot)
	le.PutUint32(hdr[12:], req.PRBBudget)
	le.PutUint32(hdr[16:], uint32(len(req.UEs)))
	if rg.ShadowLen < binReqHeaderLen || !bytes.Equal(hdr[:], rg.Shadow[:binReqHeaderLen]) {
		if err := mem.Write(base, hdr[:]); err != nil {
			return st, fmt.Errorf("sched: zero-copy request header write: %w", err)
		}
		copy(rg.Shadow, hdr[:])
	}

	var rec [binReqUELen]byte
	off := binReqHeaderLen
	for i := range req.UEs {
		u := &req.UEs[i]
		le.PutUint32(rec[0:], u.ID)
		le.PutUint32(rec[4:], uint32(u.MCS))
		le.PutUint32(rec[8:], u.BitsPerPRB)
		le.PutUint32(rec[12:], u.BufferBytes)
		le.PutUint64(rec[16:], math.Float64bits(u.AvgTputBps))
		st.total++
		if rg.ShadowLen < off+binReqUELen || !bytes.Equal(rec[:], rg.Shadow[off:off+binReqUELen]) {
			if err := mem.Write(base+uint32(off), rec[:]); err != nil {
				return st, fmt.Errorf("sched: zero-copy UE record %d write: %w", i, err)
			}
			copy(rg.Shadow[off:], rec[:])
			st.dirty++
		}
		off += binReqUELen
	}
	// The shadow stays valid for records beyond this request's UE count:
	// neither the host nor a well-behaved guest touched them, and the
	// header's nUE keeps the guest from reading them. ShadowLen only grows.
	if off > rg.ShadowLen {
		rg.ShadowLen = off
	}
	return st, nil
}

// zcReadResponse validates and decodes the untrusted response region,
// mirroring BinaryCodec.DecodeResponse's hostile-input posture: an
// allocation count past the region bound is BadOutputOOB, two grants naming
// the same UE are BadOutputOverlap. Arithmetic is done in uint64 so a
// hostile count cannot overflow the bound computation.
func zcReadResponse(mem *wasm.Memory, lay wabi.RegionLayout) (*Response, error) {
	n, err := mem.ReadUint32(lay.RespPtr)
	if err != nil {
		return nil, badOutputKind(BadOutputOOB, "sched: zero-copy response region unreadable: %v", err)
	}
	if n > ZCMaxAllocs || 4+uint64(n)*binRespAllocLen > uint64(lay.RespLen) {
		return nil, badOutputKind(BadOutputOOB,
			"sched: zero-copy response claims %d allocations: allocation table out of bounds (region %d bytes, max %d allocations)",
			n, lay.RespLen, ZCMaxAllocs)
	}
	resp := &Response{Allocs: make([]Allocation, n)}
	seen := make(map[uint32]int, n)
	off := lay.RespPtr + 4
	for i := 0; i < int(n); i++ {
		id, err1 := mem.ReadUint32(off)
		prbs, err2 := mem.ReadUint32(off + 4)
		if err1 != nil || err2 != nil {
			return nil, badOutputKind(BadOutputOOB, "sched: zero-copy response record %d unreadable", i)
		}
		if j, dup := seen[id]; dup {
			return nil, badOutputKind(BadOutputOverlap, "sched: zero-copy response allocations %d and %d overlap on UE %d", j, i, id)
		}
		seen[id] = i
		resp.Allocs[i] = Allocation{UEID: id, PRBs: prbs}
		off += binRespAllocLen
	}
	return resp, nil
}

// zcCall runs one scheduling decision over the zero-copy path: negotiate
// (or reuse) the instance's regions, delta-write the request, poison the
// response count, invoke the entry, and validate + decode the response
// region in place.
func zcCall(pl *wabi.Plugin, req *Request) (*Response, zcStats, error) {
	rg, err := pl.Regions(ZCRequestRegionLen, ZCResponseRegionLen)
	if err != nil {
		return nil, zcStats{}, err
	}
	mem := pl.Instance().Memory()
	st, err := zcWriteRequest(mem, rg, req)
	if err != nil {
		return nil, st, err
	}
	if err := mem.WriteUint32(rg.Layout.RespPtr, zcRespPoison); err != nil {
		return nil, st, fmt.Errorf("sched: zero-copy response poison write: %w", err)
	}
	if _, err := pl.Call(ZCEntryPoint, nil); err != nil {
		return nil, st, err
	}
	resp, err := zcReadResponse(mem, rg.Layout)
	if err != nil {
		return nil, st, err
	}
	return resp, st, nil
}

package sched

import (
	"fmt"
	"sync"
	"time"

	"waran/internal/obs"
	"waran/internal/wabi"
)

// PoolScheduler adapts a pool of sandbox instances of one compiled plugin
// to the IntraSlice interface. Where PluginScheduler serializes every call
// on a single instance, PoolScheduler checks an instance out per call, so a
// multi-cell gNB stepping cells concurrently fans intra-slice decisions
// across up to Pool.max sandboxes of the same module — one upload, one
// compilation, N parallel executions.
//
// PoolScheduler is safe for concurrent use; the plugins it runs should be
// stateless across calls (pure functions of the request), which all the
// built-in schedulers are, so decisions do not depend on which instance
// served a call.
type PoolScheduler struct {
	name  string
	pool  *wabi.Pool
	codec Codec

	mu        sync.Mutex
	calls     uint64
	faults    uint64
	totalTime time.Duration
	lastTime  time.Duration
	lastFuel  int64
	totalFuel int64
}

// NewPoolScheduler wraps an instance pool. codec nil means the binary
// codec. One instance is created eagerly to verify the module exports the
// scheduling entry point; it is returned to the pool warm.
func NewPoolScheduler(name string, pool *wabi.Pool, codec Codec) (*PoolScheduler, error) {
	if codec == nil {
		codec = BinaryCodec{}
	}
	pl, err := pool.Get()
	if err != nil {
		return nil, fmt.Errorf("sched: pool plugin %q: %w", name, err)
	}
	ok := pl.HasEntry(EntryPoint)
	pool.Put(pl)
	if !ok {
		return nil, fmt.Errorf("sched: plugin %q does not export %q with signature () -> i32", name, EntryPoint)
	}
	return &PoolScheduler{name: name, pool: pool, codec: codec}, nil
}

// Name implements IntraSlice.
func (p *PoolScheduler) Name() string { return "pool:" + p.name }

// Pool exposes the underlying instance pool for observation.
func (p *PoolScheduler) Pool() *wabi.Pool { return p.pool }

// Stats returns call accounting across all instances.
func (p *PoolScheduler) Stats() SchedStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return SchedStats{
		Calls:     p.calls,
		Faults:    p.faults,
		TotalTime: p.totalTime,
		LastTime:  p.lastTime,
		LastFuel:  p.lastFuel,
		TotalFuel: p.totalFuel,
	}
}

// LastFuelUsed implements FuelReporter.
func (p *PoolScheduler) LastFuelUsed() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastFuel
}

// Register exposes the scheduler on reg under waran_sched_* with the given
// labels (typically cell and slice).
func (p *PoolScheduler) Register(reg *obs.Registry, labels ...obs.Label) {
	registerSched(reg, p.Stats, labels)
}

// Schedule implements IntraSlice: check out an instance, run the decision,
// return the instance. The measured span matches PluginScheduler (encode +
// sandbox execution + decode), excluding time spent waiting for a free
// instance so pool-exhaustion stalls are visible as wall-clock, not
// mistaken for plugin cost.
func (p *PoolScheduler) Schedule(req *Request) (*Response, error) {
	pl, err := p.pool.Get()
	if err != nil {
		p.recordCall(0, 0, true)
		return nil, fmt.Errorf("sched: pool plugin %q: %w", p.name, err)
	}
	defer p.pool.Put(pl)

	start := time.Now()
	in := p.codec.EncodeRequest(req)
	out, err := pl.Call(EntryPoint, in)
	if err != nil {
		p.recordCall(time.Since(start), pl.LastFuelUsed(), true)
		return nil, fmt.Errorf("sched: pool plugin %q: %w", p.name, err)
	}
	resp, err := p.codec.DecodeResponse(out)
	if err != nil {
		p.recordCall(time.Since(start), pl.LastFuelUsed(), true)
		return nil, fmt.Errorf("sched: pool plugin %q returned malformed response: %w", p.name, err)
	}
	if err := resp.Validate(req); err != nil {
		p.recordCall(time.Since(start), pl.LastFuelUsed(), true)
		// Semantic rejection of a decoded response is still bad output for
		// the failure taxonomy: the sandbox completed and the result lied.
		return nil, fmt.Errorf("sched: pool plugin %q: %w", p.name, &BadOutputError{Err: err})
	}
	p.recordCall(time.Since(start), pl.LastFuelUsed(), false)
	return resp, nil
}

func (p *PoolScheduler) recordCall(d time.Duration, fuel int64, fault bool) {
	p.mu.Lock()
	p.calls++
	p.lastTime = d
	p.totalTime += d
	p.lastFuel = fuel
	p.totalFuel += fuel
	if fault {
		p.faults++
	}
	p.mu.Unlock()
}

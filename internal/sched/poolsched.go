package sched

import (
	"fmt"
	"sync"
	"time"

	"waran/internal/obs"
	"waran/internal/wabi"
	"waran/internal/wasm"
)

// PoolScheduler adapts a pool of sandbox instances of one compiled plugin
// to the IntraSlice interface. Where PluginScheduler serializes every call
// on a single instance, PoolScheduler checks an instance out per call, so a
// multi-cell gNB stepping cells concurrently fans intra-slice decisions
// across up to Pool.max sandboxes of the same module — one upload, one
// compilation, N parallel executions.
//
// PoolScheduler is safe for concurrent use; the plugins it runs should be
// stateless across calls (pure functions of the request), which all the
// built-in schedulers are, so decisions do not depend on which instance
// served a call.
type PoolScheduler struct {
	name  string
	pool  *wabi.Pool
	codec Codec

	abi      ABIMode
	zeroCopy bool

	mu        sync.Mutex
	calls     uint64
	faults    uint64
	totalTime time.Duration
	lastTime  time.Duration
	lastFuel  int64
	totalFuel int64
	zcCalls   uint64
	zcDirty   uint64
	zcRecords uint64
	tierCalls [wasm.NumTiers + 1]uint64 // indexed by wasm.Tier
}

// NewPoolScheduler wraps an instance pool. codec nil means the binary
// codec. One instance is created eagerly to resolve the call path (every
// instance is the same compiled module, so its exports speak for the whole
// pool); it is returned to the pool warm. The path defaults to ABIAuto:
// zero-copy when the guest negotiates it, codec otherwise; force either
// with SetABIMode.
func NewPoolScheduler(name string, pool *wabi.Pool, codec Codec) (*PoolScheduler, error) {
	if codec == nil {
		codec = BinaryCodec{}
	}
	pl, err := pool.Get()
	if err != nil {
		return nil, fmt.Errorf("sched: pool plugin %q: %w", name, err)
	}
	zc, err := resolveABI(name, pl, ABIAuto)
	pool.Put(pl)
	if err != nil {
		return nil, err
	}
	return &PoolScheduler{name: name, pool: pool, codec: codec, zeroCopy: zc}, nil
}

// SetABIMode forces the call path. ABIZeroCopy fails for guests without the
// region ABI; ABICodec fails for zero-copy-only guests.
func (p *PoolScheduler) SetABIMode(mode ABIMode) error {
	pl, err := p.pool.Get()
	if err != nil {
		return fmt.Errorf("sched: pool plugin %q: %w", p.name, err)
	}
	zc, err := resolveABI(p.name, pl, mode)
	p.pool.Put(pl)
	if err != nil {
		return err
	}
	p.mu.Lock()
	p.abi = mode
	p.zeroCopy = zc
	p.mu.Unlock()
	return nil
}

// ABI reports the requested ABI mode (ABIAuto unless forced).
func (p *PoolScheduler) ABI() ABIMode {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.abi
}

// ZeroCopy reports whether calls go over the zero-copy path.
func (p *PoolScheduler) ZeroCopy() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.zeroCopy
}

// Name implements IntraSlice.
func (p *PoolScheduler) Name() string { return "pool:" + p.name }

// Pool exposes the underlying instance pool for observation.
func (p *PoolScheduler) Pool() *wabi.Pool { return p.pool }

// Stats returns call accounting across all instances.
func (p *PoolScheduler) Stats() SchedStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return SchedStats{
		Calls:            p.calls,
		Faults:           p.faults,
		TotalTime:        p.totalTime,
		LastTime:         p.lastTime,
		LastFuel:         p.lastFuel,
		TotalFuel:        p.totalFuel,
		ZCCalls:          p.zcCalls,
		ZCDirtyRecords:   p.zcDirty,
		ZCRecords:        p.zcRecords,
		TierInterpCalls:  p.tierCalls[wasm.TierInterp],
		TierFusedCalls:   p.tierCalls[wasm.TierFused],
		TierClosureCalls: p.tierCalls[wasm.TierClosure],
	}
}

// LastFuelUsed implements FuelReporter.
func (p *PoolScheduler) LastFuelUsed() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastFuel
}

// Register exposes the scheduler on reg under waran_sched_* with the given
// labels (typically cell and slice).
func (p *PoolScheduler) Register(reg *obs.Registry, labels ...obs.Label) {
	registerSched(reg, p.Stats, labels)
}

// Schedule implements IntraSlice: check out an instance, run the decision,
// return the instance. The measured span matches PluginScheduler (encode +
// sandbox execution + decode, or delta-write + sandbox execution + region
// validation over zero-copy), excluding time spent waiting for a free
// instance so pool-exhaustion stalls are visible as wall-clock, not
// mistaken for plugin cost.
//
// Each pooled instance keeps its own request-region shadow, so the delta
// writer's hit rate depends on instance affinity: a pool of one behaves
// like PluginScheduler, while round-robining instances across cells pays a
// fuller write per checkout. The ZCDirtyRecords/ZCRecords ratio in Stats
// makes that cost visible.
func (p *PoolScheduler) Schedule(req *Request) (*Response, error) {
	p.mu.Lock()
	zeroCopy := p.zeroCopy
	p.mu.Unlock()

	pl, err := p.pool.Get()
	if err != nil {
		p.recordCall(0, 0, wasm.TierAuto, true, zcStats{}, false)
		return nil, fmt.Errorf("sched: pool plugin %q: %w", p.name, err)
	}
	defer p.pool.Put(pl)

	start := time.Now()
	var resp *Response
	if zeroCopy {
		var st zcStats
		resp, st, err = zcCall(pl, req)
		if err != nil {
			p.recordCall(time.Since(start), pl.LastFuelUsed(), pl.LastTier(), true, st, true)
			return nil, fmt.Errorf("sched: pool plugin %q: %w", p.name, err)
		}
		if err := resp.Validate(req); err != nil {
			p.recordCall(time.Since(start), pl.LastFuelUsed(), pl.LastTier(), true, st, true)
			return nil, fmt.Errorf("sched: pool plugin %q: %w", p.name, &BadOutputError{Kind: BadOutputSemantic, Err: err})
		}
		p.recordCall(time.Since(start), pl.LastFuelUsed(), pl.LastTier(), false, st, true)
		return resp, nil
	}

	in := p.codec.EncodeRequest(req)
	out, err := pl.Call(EntryPoint, in)
	if err != nil {
		p.recordCall(time.Since(start), pl.LastFuelUsed(), pl.LastTier(), true, zcStats{}, false)
		return nil, fmt.Errorf("sched: pool plugin %q: %w", p.name, err)
	}
	resp, err = p.codec.DecodeResponse(out)
	if err != nil {
		p.recordCall(time.Since(start), pl.LastFuelUsed(), pl.LastTier(), true, zcStats{}, false)
		return nil, fmt.Errorf("sched: pool plugin %q returned malformed response: %w", p.name, err)
	}
	if err := resp.Validate(req); err != nil {
		p.recordCall(time.Since(start), pl.LastFuelUsed(), pl.LastTier(), true, zcStats{}, false)
		// Semantic rejection of a decoded response is still bad output for
		// the failure taxonomy: the sandbox completed and the result lied.
		return nil, fmt.Errorf("sched: pool plugin %q: %w", p.name, &BadOutputError{Kind: BadOutputSemantic, Err: err})
	}
	p.recordCall(time.Since(start), pl.LastFuelUsed(), pl.LastTier(), false, zcStats{}, false)
	return resp, nil
}

func (p *PoolScheduler) recordCall(d time.Duration, fuel int64, tier wasm.Tier, fault bool, st zcStats, zc bool) {
	p.mu.Lock()
	p.calls++
	// TierAuto means no sandbox ran for this call (pool exhaustion or a
	// chaos-forced fault), so no execution tier is charged.
	if tier != wasm.TierAuto {
		p.tierCalls[tier]++
	}
	p.lastTime = d
	p.totalTime += d
	p.lastFuel = fuel
	p.totalFuel += fuel
	if fault {
		p.faults++
	}
	if zc {
		p.zcCalls++
		p.zcDirty += uint64(st.dirty)
		p.zcRecords += uint64(st.total)
	}
	p.mu.Unlock()
}

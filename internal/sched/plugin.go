package sched

import (
	"fmt"
	"time"

	"waran/internal/wabi"
)

// EntryPoint is the exported function name intra-slice scheduler plugins
// must provide.
const EntryPoint = "schedule"

// PluginScheduler adapts a Wasm plugin to the IntraSlice interface: it
// serializes the request with the configured codec, invokes the plugin's
// "schedule" export inside the sandbox, and decodes + validates the
// response. Serialization time is included in Stats, matching the
// measurement methodology of Fig. 5d.
type PluginScheduler struct {
	name   string
	plugin *wabi.Plugin
	codec  Codec

	// Stats over all calls.
	Calls     uint64
	Faults    uint64
	TotalTime time.Duration
	LastTime  time.Duration
}

// NewPluginScheduler wraps an instantiated plugin. codec nil means the
// binary codec.
func NewPluginScheduler(name string, plugin *wabi.Plugin, codec Codec) (*PluginScheduler, error) {
	if codec == nil {
		codec = BinaryCodec{}
	}
	if !plugin.HasEntry(EntryPoint) {
		return nil, fmt.Errorf("sched: plugin %q does not export %q with signature () -> i32", name, EntryPoint)
	}
	return &PluginScheduler{name: name, plugin: plugin, codec: codec}, nil
}

// Name implements IntraSlice.
func (p *PluginScheduler) Name() string { return "plugin:" + p.name }

// Plugin exposes the underlying sandbox for observation (memory footprint,
// fuel accounting).
func (p *PluginScheduler) Plugin() *wabi.Plugin { return p.plugin }

// Schedule implements IntraSlice. The measured span covers encode, sandbox
// execution, and decode — the full host-side cost of outsourcing the
// decision to the plugin.
func (p *PluginScheduler) Schedule(req *Request) (*Response, error) {
	start := time.Now()
	defer func() {
		p.LastTime = time.Since(start)
		p.TotalTime += p.LastTime
		p.Calls++
	}()

	in := p.codec.EncodeRequest(req)
	out, err := p.plugin.Call(EntryPoint, in)
	if err != nil {
		p.Faults++
		return nil, fmt.Errorf("sched: plugin %q: %w", p.name, err)
	}
	resp, err := p.codec.DecodeResponse(out)
	if err != nil {
		p.Faults++
		return nil, fmt.Errorf("sched: plugin %q returned malformed response: %w", p.name, err)
	}
	if err := resp.Validate(req); err != nil {
		p.Faults++
		return nil, fmt.Errorf("sched: plugin %q: %w", p.name, err)
	}
	return resp, nil
}

package sched

import (
	"fmt"
	"time"

	"waran/internal/obs"
	"waran/internal/wabi"
)

// EntryPoint is the exported function name intra-slice scheduler plugins
// must provide.
const EntryPoint = "schedule"

// PluginScheduler adapts a Wasm plugin to the IntraSlice interface: it
// serializes the request with the configured codec, invokes the plugin's
// "schedule" export inside the sandbox, and decodes + validates the
// response. Serialization time is included in Stats, matching the
// measurement methodology of Fig. 5d.
type PluginScheduler struct {
	name   string
	plugin *wabi.Plugin
	codec  Codec

	// Call accounting, read through Stats(). Unsynchronized like the
	// underlying Plugin: one goroutine at a time.
	calls     uint64
	faults    uint64
	totalTime time.Duration
	lastTime  time.Duration
}

// NewPluginScheduler wraps an instantiated plugin. codec nil means the
// binary codec.
func NewPluginScheduler(name string, plugin *wabi.Plugin, codec Codec) (*PluginScheduler, error) {
	if codec == nil {
		codec = BinaryCodec{}
	}
	if !plugin.HasEntry(EntryPoint) {
		return nil, fmt.Errorf("sched: plugin %q does not export %q with signature () -> i32", name, EntryPoint)
	}
	return &PluginScheduler{name: name, plugin: plugin, codec: codec}, nil
}

// Name implements IntraSlice.
func (p *PluginScheduler) Name() string { return "plugin:" + p.name }

// Plugin exposes the underlying sandbox for observation (memory footprint,
// fuel accounting).
func (p *PluginScheduler) Plugin() *wabi.Plugin { return p.plugin }

// Stats returns accounting accumulated across calls. Fuel figures come
// from the underlying sandbox.
func (p *PluginScheduler) Stats() SchedStats {
	ps := p.plugin.Stats()
	return SchedStats{
		Calls:     p.calls,
		Faults:    p.faults,
		TotalTime: p.totalTime,
		LastTime:  p.lastTime,
		LastFuel:  ps.LastFuel,
		TotalFuel: ps.TotalFuel,
	}
}

// LastFuelUsed implements FuelReporter.
func (p *PluginScheduler) LastFuelUsed() int64 { return p.plugin.LastFuelUsed() }

// Register exposes the scheduler on reg under waran_sched_* with the given
// labels (typically cell and slice).
func (p *PluginScheduler) Register(reg *obs.Registry, labels ...obs.Label) {
	registerSched(reg, p.Stats, labels)
}

// Schedule implements IntraSlice. The measured span covers encode, sandbox
// execution, and decode — the full host-side cost of outsourcing the
// decision to the plugin.
func (p *PluginScheduler) Schedule(req *Request) (*Response, error) {
	start := time.Now()
	defer func() {
		p.lastTime = time.Since(start)
		p.totalTime += p.lastTime
		p.calls++
	}()

	in := p.codec.EncodeRequest(req)
	out, err := p.plugin.Call(EntryPoint, in)
	if err != nil {
		p.faults++
		return nil, fmt.Errorf("sched: plugin %q: %w", p.name, err)
	}
	resp, err := p.codec.DecodeResponse(out)
	if err != nil {
		p.faults++
		return nil, fmt.Errorf("sched: plugin %q returned malformed response: %w", p.name, err)
	}
	if err := resp.Validate(req); err != nil {
		p.faults++
		// Semantic rejection of a decoded response is still bad output for
		// the failure taxonomy: the sandbox completed and the result lied.
		return nil, fmt.Errorf("sched: plugin %q: %w", p.name, &BadOutputError{Err: err})
	}
	return resp, nil
}

package sched

import (
	"fmt"
	"time"

	"waran/internal/obs"
	"waran/internal/wabi"
	"waran/internal/wasm"
)

// EntryPoint is the exported function name intra-slice scheduler plugins
// must provide.
const EntryPoint = "schedule"

// PluginScheduler adapts a Wasm plugin to the IntraSlice interface. Over
// the serializing path it encodes the request with the configured codec,
// invokes the plugin's "schedule" export inside the sandbox, and decodes +
// validates the response; over the zero-copy path (negotiated automatically
// when the guest exports the region ABI, see zerocopy.go) it delta-writes
// the request into shared memory, invokes "schedule_zc" and validates the
// response region in place. Serialization time is included in Stats either
// way, matching the measurement methodology of Fig. 5d.
type PluginScheduler struct {
	name   string
	plugin *wabi.Plugin
	codec  Codec

	abi      ABIMode
	zeroCopy bool

	// Call accounting, read through Stats(). Unsynchronized like the
	// underlying Plugin: one goroutine at a time.
	calls     uint64
	faults    uint64
	totalTime time.Duration
	lastTime  time.Duration
	zcCalls   uint64
	zcDirty   uint64
	zcRecords uint64
	tierCalls [wasm.NumTiers + 1]uint64 // indexed by wasm.Tier
}

// NewPluginScheduler wraps an instantiated plugin. codec nil means the
// binary codec. The call path defaults to ABIAuto: zero-copy when the guest
// negotiates it, codec otherwise; force either with SetABIMode.
func NewPluginScheduler(name string, plugin *wabi.Plugin, codec Codec) (*PluginScheduler, error) {
	if codec == nil {
		codec = BinaryCodec{}
	}
	zc, err := resolveABI(name, plugin, ABIAuto)
	if err != nil {
		return nil, err
	}
	return &PluginScheduler{name: name, plugin: plugin, codec: codec, zeroCopy: zc}, nil
}

// SetABIMode forces the call path. ABIZeroCopy fails for guests without the
// region ABI; ABICodec fails for zero-copy-only guests.
func (p *PluginScheduler) SetABIMode(mode ABIMode) error {
	zc, err := resolveABI(p.name, p.plugin, mode)
	if err != nil {
		return err
	}
	p.abi = mode
	p.zeroCopy = zc
	return nil
}

// ABI reports the requested ABI mode (ABIAuto unless forced).
func (p *PluginScheduler) ABI() ABIMode { return p.abi }

// ZeroCopy reports whether calls go over the zero-copy path.
func (p *PluginScheduler) ZeroCopy() bool { return p.zeroCopy }

// Name implements IntraSlice.
func (p *PluginScheduler) Name() string { return "plugin:" + p.name }

// Plugin exposes the underlying sandbox for observation (memory footprint,
// fuel accounting).
func (p *PluginScheduler) Plugin() *wabi.Plugin { return p.plugin }

// Stats returns accounting accumulated across calls. Fuel figures come
// from the underlying sandbox.
func (p *PluginScheduler) Stats() SchedStats {
	ps := p.plugin.Stats()
	return SchedStats{
		Calls:            p.calls,
		Faults:           p.faults,
		TotalTime:        p.totalTime,
		LastTime:         p.lastTime,
		LastFuel:         ps.LastFuel,
		TotalFuel:        ps.TotalFuel,
		ZCCalls:          p.zcCalls,
		ZCDirtyRecords:   p.zcDirty,
		ZCRecords:        p.zcRecords,
		TierInterpCalls:  p.tierCalls[wasm.TierInterp],
		TierFusedCalls:   p.tierCalls[wasm.TierFused],
		TierClosureCalls: p.tierCalls[wasm.TierClosure],
	}
}

// LastFuelUsed implements FuelReporter.
func (p *PluginScheduler) LastFuelUsed() int64 { return p.plugin.LastFuelUsed() }

// Register exposes the scheduler on reg under waran_sched_* with the given
// labels (typically cell and slice).
func (p *PluginScheduler) Register(reg *obs.Registry, labels ...obs.Label) {
	registerSched(reg, p.Stats, labels)
}

// Schedule implements IntraSlice. The measured span covers the full
// host-side cost of outsourcing the decision to the plugin: encode +
// sandbox execution + decode on the codec path, delta-write + sandbox
// execution + region validation on the zero-copy path.
func (p *PluginScheduler) Schedule(req *Request) (*Response, error) {
	start := time.Now()
	defer func() {
		p.lastTime = time.Since(start)
		p.totalTime += p.lastTime
		p.calls++
		// TierAuto means the sandbox never actually ran (e.g. a chaos-forced
		// fault short-circuited the call), so no tier is charged.
		if t := p.plugin.LastTier(); t != wasm.TierAuto {
			p.tierCalls[t]++
		}
	}()

	var resp *Response
	var err error
	if p.zeroCopy {
		var st zcStats
		resp, st, err = zcCall(p.plugin, req)
		p.zcCalls++
		p.zcDirty += uint64(st.dirty)
		p.zcRecords += uint64(st.total)
		if err != nil {
			p.faults++
			return nil, fmt.Errorf("sched: plugin %q: %w", p.name, err)
		}
	} else {
		in := p.codec.EncodeRequest(req)
		var out []byte
		out, err = p.plugin.Call(EntryPoint, in)
		if err != nil {
			p.faults++
			return nil, fmt.Errorf("sched: plugin %q: %w", p.name, err)
		}
		resp, err = p.codec.DecodeResponse(out)
		if err != nil {
			p.faults++
			return nil, fmt.Errorf("sched: plugin %q returned malformed response: %w", p.name, err)
		}
	}
	if err := resp.Validate(req); err != nil {
		p.faults++
		// Semantic rejection of a decoded response is still bad output for
		// the failure taxonomy: the sandbox completed and the result lied.
		return nil, fmt.Errorf("sched: plugin %q: %w", p.name, &BadOutputError{Kind: BadOutputSemantic, Err: err})
	}
	return resp, nil
}

package sched

import (
	"time"

	"waran/internal/obs"
)

// SchedStats is the flat call-accounting snapshot shared by every plugin
// scheduler adapter. Times marshal as nanoseconds; fuel is in interpreter
// instructions (zero when metering is disabled).
type SchedStats struct {
	Calls     uint64        `json:"calls"`
	Faults    uint64        `json:"faults"`
	TotalTime time.Duration `json:"total_time_ns"`
	LastTime  time.Duration `json:"last_time_ns"`
	LastFuel  int64         `json:"last_fuel"`
	TotalFuel int64         `json:"total_fuel"`
	// Zero-copy path accounting: calls served over the region ABI, UE
	// records delta-written vs. UE records carried. DirtyRecords/Records is
	// the delta writer's effectiveness — 1.0 means every record was
	// rewritten every slot (no better than a full encode).
	ZCCalls        uint64 `json:"zc_calls,omitempty"`
	ZCDirtyRecords uint64 `json:"zc_dirty_records,omitempty"`
	ZCRecords      uint64 `json:"zc_records,omitempty"`
	// Execution-tier accounting: sandbox calls served by each wasm tier.
	// Watching interp calls migrate to closure calls is how an operator sees
	// the fuel-profile promotion happen in production.
	TierInterpCalls  uint64 `json:"tier_interp_calls,omitempty"`
	TierFusedCalls   uint64 `json:"tier_fused_calls,omitempty"`
	TierClosureCalls uint64 `json:"tier_closure_calls,omitempty"`
}

// FuelReporter is implemented by schedulers that can report the fuel
// consumed by their most recent sandbox call. The slot tracer asserts for
// it when attributing per-slice cost.
type FuelReporter interface {
	LastFuelUsed() int64
}

// registerSched exposes one scheduler's SchedStats on reg as the untyped
// multi-sample series waran_sched_* with the given labels.
func registerSched(reg *obs.Registry, stats func() SchedStats, labels []obs.Label) {
	reg.MustRegister("waran_sched", "intra-slice scheduler plugin call accounting", obs.Func{
		Kind: obs.KindUntyped,
		Collect: func() []obs.Sample {
			s := stats()
			return []obs.Sample{
				{Suffix: "_calls_total", Value: float64(s.Calls)},
				{Suffix: "_faults_total", Value: float64(s.Faults)},
				{Suffix: "_total_time_us", Value: float64(s.TotalTime.Nanoseconds()) / 1e3},
				{Suffix: "_last_time_us", Value: float64(s.LastTime.Nanoseconds()) / 1e3},
				{Suffix: "_last_fuel", Value: float64(s.LastFuel)},
				{Suffix: "_total_fuel", Value: float64(s.TotalFuel)},
				{Suffix: "_zc_calls_total", Value: float64(s.ZCCalls)},
				{Suffix: "_zc_dirty_records_total", Value: float64(s.ZCDirtyRecords)},
				{Suffix: "_zc_records_total", Value: float64(s.ZCRecords)},
				{Suffix: "_tier_interp_calls_total", Value: float64(s.TierInterpCalls)},
				{Suffix: "_tier_fused_calls_total", Value: float64(s.TierFusedCalls)},
				{Suffix: "_tier_closure_calls_total", Value: float64(s.TierClosureCalls)},
			}
		},
		JSON: func() any { return stats() },
	}, labels...)
}

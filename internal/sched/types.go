// Package sched implements WA-RAN's two-level MAC scheduler: an inter-slice
// scheduler that divides the cell's PRBs among slices (MVNOs), and
// intra-slice schedulers — native Go baselines and Wasm-plugin-backed
// implementations — that divide a slice's PRBs among its UEs.
//
// The intra-slice scheduling contract mirrors §4A of the paper: the host
// passes the PRB budget and a UE list (identifier, channel quality, buffer
// status, long-term throughput); the scheduler returns per-UE PRB grants.
package sched

import (
	"errors"
	"fmt"
)

// UEInfo is the per-UE scheduling input visible to intra-slice schedulers
// and serialized across the plugin ABI.
type UEInfo struct {
	// ID identifies the UE within the cell.
	ID uint32
	// MCS is the current modulation-and-coding scheme index (0..28).
	MCS int32
	// BitsPerPRB is the transport bits one PRB carries for this UE this
	// slot — precomputed by the host so schedulers need no PHY tables.
	BitsPerPRB uint32
	// BufferBytes is the downlink queue occupancy.
	BufferBytes uint32
	// AvgTputBps is the long-term served throughput (for PF policies).
	AvgTputBps float64
}

// Request asks an intra-slice scheduler to divide PRBBudget among UEs.
type Request struct {
	SliceID   uint32
	Slot      uint64
	PRBBudget uint32
	UEs       []UEInfo
}

// Allocation grants PRBs to one UE. Order in the response conveys priority:
// earlier entries are served first if the host must trim.
type Allocation struct {
	UEID uint32
	PRBs uint32
}

// Response is the intra-slice scheduling decision.
type Response struct {
	Allocs []Allocation
}

// IntraSlice is one slice's scheduling policy. Implementations must treat
// the request as read-only and must not retain it.
type IntraSlice interface {
	// Name identifies the policy ("rr", "pf", "mt", "plugin:...").
	Name() string
	// Schedule divides req.PRBBudget among req.UEs.
	Schedule(req *Request) (*Response, error)
}

// ErrInvalidResponse is wrapped by Validate for malformed decisions.
var ErrInvalidResponse = errors.New("sched: invalid scheduling response")

// Validate checks a response against its request: grants must reference
// known UEs, without duplicates, and must not exceed the PRB budget.
// Intra-slice plugins are untrusted, so the host calls this before applying
// any decision (paper §6A fault tolerance).
func (r *Response) Validate(req *Request) error {
	known := make(map[uint32]bool, len(req.UEs))
	for _, u := range req.UEs {
		known[u.ID] = true
	}
	seen := make(map[uint32]bool, len(r.Allocs))
	var total uint64
	for _, a := range r.Allocs {
		if !known[a.UEID] {
			return fmt.Errorf("%w: grant to unknown UE %d", ErrInvalidResponse, a.UEID)
		}
		if seen[a.UEID] {
			return fmt.Errorf("%w: duplicate grant to UE %d", ErrInvalidResponse, a.UEID)
		}
		seen[a.UEID] = true
		total += uint64(a.PRBs)
	}
	if total > uint64(req.PRBBudget) {
		return fmt.Errorf("%w: granted %d PRBs exceeds budget %d", ErrInvalidResponse, total, req.PRBBudget)
	}
	return nil
}

// TotalPRBs sums the granted PRBs.
func (r *Response) TotalPRBs() uint32 {
	var t uint32
	for _, a := range r.Allocs {
		t += a.PRBs
	}
	return t
}

// prbsNeeded returns how many PRBs drain the UE's buffer this slot.
func prbsNeeded(u *UEInfo) uint32 {
	if u.BufferBytes == 0 || u.BitsPerPRB == 0 {
		return 0
	}
	bits := uint64(u.BufferBytes) * 8
	per := uint64(u.BitsPerPRB)
	return uint32((bits + per - 1) / per)
}

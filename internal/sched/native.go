package sched

import (
	"sort"
)

// Native intra-slice schedulers. These are both the fallback policies the
// fault-tolerant slice manager switches to when a plugin misbehaves and the
// reference implementations the Wasm plugins are differentially tested
// against: for identical requests, plugin and native decisions must match.

// RoundRobin serves UEs with pending data in rotating order, one equal share
// each, cycling the starting UE by slot so no position is permanently
// favoured. The paper's MVNO 2 (IoT profile) uses this policy.
type RoundRobin struct{}

// Name implements IntraSlice.
func (RoundRobin) Name() string { return "rr" }

// Schedule implements IntraSlice.
func (RoundRobin) Schedule(req *Request) (*Response, error) {
	active := activeUEs(req)
	if len(active) == 0 || req.PRBBudget == 0 {
		return &Response{}, nil
	}
	n := uint32(len(active))
	resp := &Response{Allocs: make([]Allocation, 0, n)}
	grants := make(map[int]uint32, n)

	remaining := req.PRBBudget
	// Equal base share, then distribute the remainder one PRB at a time
	// starting at the rotating offset; capped at each UE's buffer need with
	// spill to the next UE so the budget is not wasted.
	start := int(req.Slot % uint64(len(active)))
	for round := 0; remaining > 0; round++ {
		progressed := false
		for i := 0; i < len(active) && remaining > 0; i++ {
			ix := (start + i) % len(active)
			u := active[ix]
			need := prbsNeeded(u)
			if grants[ix] >= need {
				continue
			}
			grants[ix]++
			remaining--
			progressed = true
		}
		if !progressed {
			break
		}
	}
	for i, u := range active {
		if grants[i] > 0 {
			resp.Allocs = append(resp.Allocs, Allocation{UEID: u.ID, PRBs: grants[i]})
		}
	}
	return resp, nil
}

// MaxThroughput greedily serves the best-channel UEs first, maximizing cell
// throughput at the cost of starving poor channels — the paper's MVNO 1
// (eMBB profile) and the first phase of Fig. 5b.
type MaxThroughput struct{}

// Name implements IntraSlice.
func (MaxThroughput) Name() string { return "mt" }

// Schedule implements IntraSlice.
func (MaxThroughput) Schedule(req *Request) (*Response, error) {
	active := activeUEs(req)
	if len(active) == 0 || req.PRBBudget == 0 {
		return &Response{}, nil
	}
	// Sort by per-PRB capacity descending; tie-break on lower UE ID for
	// determinism (and so plugins can reproduce the exact decision).
	sort.SliceStable(active, func(i, j int) bool {
		if active[i].BitsPerPRB != active[j].BitsPerPRB {
			return active[i].BitsPerPRB > active[j].BitsPerPRB
		}
		return active[i].ID < active[j].ID
	})
	return fillInOrder(active, req.PRBBudget), nil
}

// ProportionalFair ranks UEs by instantaneous-rate over long-term-average
// throughput, the classic PF metric. With a large averaging time constant
// the metric is dominated by the denominator, so starved UEs win first —
// the transient the paper highlights in Fig. 5b.
type ProportionalFair struct {
	// MinAvgBps floors the denominator to keep the metric finite for
	// never-served UEs. Default 1000 (1 kb/s).
	MinAvgBps float64
}

// Name implements IntraSlice.
func (ProportionalFair) Name() string { return "pf" }

// Schedule implements IntraSlice.
func (p ProportionalFair) Schedule(req *Request) (*Response, error) {
	minAvg := p.MinAvgBps
	if minAvg <= 0 {
		minAvg = 1000
	}
	active := activeUEs(req)
	if len(active) == 0 || req.PRBBudget == 0 {
		return &Response{}, nil
	}
	type scored struct {
		u      *UEInfo
		metric float64
	}
	scoredUEs := make([]scored, len(active))
	for i, u := range active {
		avg := u.AvgTputBps
		if avg < minAvg {
			avg = minAvg
		}
		scoredUEs[i] = scored{u: u, metric: float64(u.BitsPerPRB) / avg}
	}
	sort.SliceStable(scoredUEs, func(i, j int) bool {
		if scoredUEs[i].metric != scoredUEs[j].metric {
			return scoredUEs[i].metric > scoredUEs[j].metric
		}
		return scoredUEs[i].u.ID < scoredUEs[j].u.ID
	})
	ordered := make([]*UEInfo, len(scoredUEs))
	for i, s := range scoredUEs {
		ordered[i] = s.u
	}
	return fillInOrder(ordered, req.PRBBudget), nil
}

// activeUEs returns pointers to UEs with queued data, preserving order.
func activeUEs(req *Request) []*UEInfo {
	out := make([]*UEInfo, 0, len(req.UEs))
	for i := range req.UEs {
		if req.UEs[i].BufferBytes > 0 && req.UEs[i].BitsPerPRB > 0 {
			out = append(out, &req.UEs[i])
		}
	}
	return out
}

// fillInOrder grants each UE its buffer need in priority order until the
// budget is exhausted.
func fillInOrder(ordered []*UEInfo, budget uint32) *Response {
	resp := &Response{}
	for _, u := range ordered {
		if budget == 0 {
			break
		}
		g := prbsNeeded(u)
		if g > budget {
			g = budget
		}
		if g == 0 {
			continue
		}
		resp.Allocs = append(resp.Allocs, Allocation{UEID: u.ID, PRBs: g})
		budget -= g
	}
	return resp
}

// ByName returns a native scheduler by its short name.
func ByName(name string) (IntraSlice, bool) {
	switch name {
	case "rr", "round-robin":
		return RoundRobin{}, true
	case "mt", "max-throughput":
		return MaxThroughput{}, true
	case "pf", "proportional-fair":
		return ProportionalFair{}, true
	default:
		return nil, false
	}
}

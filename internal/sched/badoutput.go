package sched

import (
	"fmt"

	"waran/internal/wabi"
)

// maxRespAllocs bounds the allocation count a response may claim. The
// tightest real bound is the UE count of the request, but the decoder does
// not see the request; this cap only has to stop a hostile length prefix
// from driving a giant allocation before the length check.
const maxRespAllocs = 1 << 20

// BadOutputError marks a structurally complete plugin call whose result the
// host rejected: malformed response bytes, out-of-bounds or overlapping
// result regions, grants that fail semantic validation. It implements
// wabi.ClassedError so supervisors meter it as FailBadOutput, distinct from
// sandbox traps — the plugin ran fine and lied.
type BadOutputError struct {
	Err error
}

// Error implements the error interface.
func (e *BadOutputError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying cause (ErrInvalidResponse stays reachable
// through errors.Is for callers that predate the taxonomy).
func (e *BadOutputError) Unwrap() error { return e.Err }

// FailureClass implements wabi.ClassedError.
func (e *BadOutputError) FailureClass() wabi.FailureClass { return wabi.FailBadOutput }

// badOutputf builds a BadOutputError like fmt.Errorf (with %w support).
func badOutputf(format string, args ...any) *BadOutputError {
	return &BadOutputError{Err: fmt.Errorf(format, args...)}
}

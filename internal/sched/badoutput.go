package sched

import (
	"fmt"

	"waran/internal/wabi"
)

// maxRespAllocs bounds the allocation count a response may claim. The
// tightest real bound is the UE count of the request, but the decoder does
// not see the request; this cap only has to stop a hostile length prefix
// from driving a giant allocation before the length check.
const maxRespAllocs = 1 << 20

// BadOutputKind is the structural sub-classification of a rejected plugin
// result, shared by the serializing codecs and the zero-copy region reader
// so the differential harness can assert that both paths reject the same
// hostile response the same way.
type BadOutputKind uint8

const (
	// BadOutputMalformed: the bytes do not parse as a response at all
	// (truncated header, broken JSON).
	BadOutputMalformed BadOutputKind = iota
	// BadOutputOOB: the allocation count points past the payload or region —
	// an out-of-bounds result table.
	BadOutputOOB
	// BadOutputOverlap: two allocation records name the same UE, i.e. the
	// result regions overlap.
	BadOutputOverlap
	// BadOutputSemantic: structurally sound but rejected by
	// Response.Validate (unknown UE, duplicate grant, over-budget PRBs).
	BadOutputSemantic
)

// String implements fmt.Stringer.
func (k BadOutputKind) String() string {
	switch k {
	case BadOutputMalformed:
		return "malformed"
	case BadOutputOOB:
		return "oob"
	case BadOutputOverlap:
		return "overlap"
	case BadOutputSemantic:
		return "semantic"
	default:
		return "unknown"
	}
}

// BadOutputError marks a structurally complete plugin call whose result the
// host rejected: malformed response bytes, out-of-bounds or overlapping
// result regions, grants that fail semantic validation. It implements
// wabi.ClassedError so supervisors meter it as FailBadOutput, distinct from
// sandbox traps — the plugin ran fine and lied.
type BadOutputError struct {
	Kind BadOutputKind
	Err  error
}

// Error implements the error interface.
func (e *BadOutputError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying cause (ErrInvalidResponse stays reachable
// through errors.Is for callers that predate the taxonomy).
func (e *BadOutputError) Unwrap() error { return e.Err }

// FailureClass implements wabi.ClassedError.
func (e *BadOutputError) FailureClass() wabi.FailureClass { return wabi.FailBadOutput }

// badOutputf builds a BadOutputError like fmt.Errorf (with %w support),
// classified BadOutputMalformed.
func badOutputf(format string, args ...any) *BadOutputError {
	return &BadOutputError{Err: fmt.Errorf(format, args...)}
}

// badOutputKind is badOutputf with an explicit structural kind.
func badOutputKind(kind BadOutputKind, format string, args ...any) *BadOutputError {
	return &BadOutputError{Kind: kind, Err: fmt.Errorf(format, args...)}
}

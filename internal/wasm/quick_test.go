package wasm_test

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

// Property tests: the interpreter's numeric semantics must agree with Go's
// (which implements the same two's-complement and IEEE 754 behaviour the
// WebAssembly spec requires) on randomly drawn operands.

func TestQuickI32Ops(t *testing.T) {
	ops := []string{"i32.add", "i32.sub", "i32.mul", "i32.and", "i32.or", "i32.xor",
		"i32.shl", "i32.shr_s", "i32.shr_u", "i32.rotl", "i32.rotr"}
	in := mustInstance(t, binOpModule("i32", "i32", ops))
	ref := map[string]func(a, b uint32) uint32{
		"i32.add":   func(a, b uint32) uint32 { return a + b },
		"i32.sub":   func(a, b uint32) uint32 { return a - b },
		"i32.mul":   func(a, b uint32) uint32 { return a * b },
		"i32.and":   func(a, b uint32) uint32 { return a & b },
		"i32.or":    func(a, b uint32) uint32 { return a | b },
		"i32.xor":   func(a, b uint32) uint32 { return a ^ b },
		"i32.shl":   func(a, b uint32) uint32 { return a << (b & 31) },
		"i32.shr_s": func(a, b uint32) uint32 { return uint32(int32(a) >> (b & 31)) },
		"i32.shr_u": func(a, b uint32) uint32 { return a >> (b & 31) },
		"i32.rotl":  func(a, b uint32) uint32 { return bits.RotateLeft32(a, int(b&31)) },
		"i32.rotr":  func(a, b uint32) uint32 { return bits.RotateLeft32(a, -int(b&31)) },
	}
	for _, op := range ops {
		op := op
		f := func(a, b uint32) bool {
			got := uint32(call1(t, in, op, uint64(a), uint64(b)))
			return got == ref[op](a, b)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", op, err)
		}
	}
}

func TestQuickI64Div(t *testing.T) {
	in := mustInstance(t, binOpModule("i64", "i64", []string{"i64.div_s", "i64.rem_s", "i64.div_u", "i64.rem_u"}))
	f := func(a, b int64) bool {
		if b == 0 || (a == math.MinInt64 && b == -1) {
			return true // trap cases covered elsewhere
		}
		ds := int64(call1(t, in, "i64.div_s", i64(a), i64(b)))
		rs := int64(call1(t, in, "i64.rem_s", i64(a), i64(b)))
		du := call1(t, in, "i64.div_u", i64(a), i64(b))
		ru := call1(t, in, "i64.rem_u", i64(a), i64(b))
		return ds == a/b && rs == a%b &&
			du == uint64(a)/uint64(b) && ru == uint64(a)%uint64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickF64Ops(t *testing.T) {
	ops := []string{"f64.add", "f64.sub", "f64.mul", "f64.div"}
	in := mustInstance(t, binOpModule("f64", "f64", ops))
	ref := map[string]func(a, b float64) float64{
		"f64.add": func(a, b float64) float64 { return a + b },
		"f64.sub": func(a, b float64) float64 { return a - b },
		"f64.mul": func(a, b float64) float64 { return a * b },
		"f64.div": func(a, b float64) float64 { return a / b },
	}
	for _, op := range ops {
		op := op
		f := func(a, b float64) bool {
			got := math.Float64frombits(call1(t, in, op, f64(a), f64(b)))
			want := ref[op](a, b)
			if math.IsNaN(want) {
				return math.IsNaN(got)
			}
			return math.Float64bits(got) == math.Float64bits(want)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", op, err)
		}
	}
}

// TestQuickMemoryRoundTrip: storing then loading any u64 at any in-bounds
// aligned-or-not address returns the same value.
func TestQuickMemoryRoundTrip(t *testing.T) {
	src := `(module (memory (export "memory") 1)
	  (func (export "rt") (param i32 i64) (result i64)
	    local.get 0 local.get 1 i64.store
	    local.get 0 i64.load))`
	in := mustInstance(t, src)
	f := func(addr uint16, v uint64) bool {
		a := uint64(addr) // 0..65535; i64 needs addr <= 65528
		if a > 65528 {
			a = 65528
		}
		return call1(t, in, "rt", a, v) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickConversionsAgree: i64<->f64 conversions match Go.
func TestQuickConversionsAgree(t *testing.T) {
	src := `(module
	  (func (export "s2f") (param i64) (result f64) local.get 0 f64.convert_i64_s)
	  (func (export "u2f") (param i64) (result f64) local.get 0 f64.convert_i64_u)
	  (func (export "sat") (param f64) (result i64) local.get 0 i64.trunc_sat_f64_s))`
	in := mustInstance(t, src)
	f := func(v int64) bool {
		s := math.Float64frombits(call1(t, in, "s2f", i64(v)))
		u := math.Float64frombits(call1(t, in, "u2f", i64(v)))
		return s == float64(v) && u == float64(uint64(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	g := func(x float64) bool {
		got := int64(call1(t, in, "sat", f64(x)))
		var want int64
		switch {
		case math.IsNaN(x):
			want = 0
		case x <= -9223372036854775808:
			want = math.MinInt64
		case x >= 9223372036854775808:
			want = math.MaxInt64
		default:
			want = int64(math.Trunc(x))
		}
		return got == want
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

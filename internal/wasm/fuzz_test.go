package wasm_test

import (
	"fmt"
	"math/rand"
	"testing"

	"waran/internal/wasm"
	"waran/internal/wat"
)

// TestMutatedModulesNeverPanic is the upload-path robustness check: the gNB
// accepts plugin bytecode from third parties, so random corruption of valid
// modules must produce clean errors (or valid modules), never a panic in
// decode, validation, compilation or instantiation.
func TestMutatedModulesNeverPanic(t *testing.T) {
	seed, err := wat.CompileToBinary(fullFeatureWAT)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1234))
	const trials = 4000

	for trial := 0; trial < trials; trial++ {
		mutated := append([]byte(nil), seed...)
		// 1-4 random byte mutations: flip, overwrite, truncate.
		for n := 1 + rng.Intn(4); n > 0; n-- {
			switch rng.Intn(3) {
			case 0:
				i := rng.Intn(len(mutated))
				mutated[i] ^= byte(1 << rng.Intn(8))
			case 1:
				i := rng.Intn(len(mutated))
				mutated[i] = byte(rng.Intn(256))
			case 2:
				if len(mutated) > 9 {
					mutated = mutated[:9+rng.Intn(len(mutated)-9)]
				}
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic on mutated input: %v\n%x", trial, r, mutated)
				}
			}()
			m, err := wasm.Decode(mutated)
			if err != nil {
				return
			}
			cm, err := wasm.Compile(m)
			if err != nil {
				return
			}
			// Instantiation must also stay panic-free (imports unresolved
			// is fine as an error).
			imports := wasm.Imports{"env": {"host": &wasm.HostFunc{
				Name: "host",
				Type: wasm.FuncType{Params: []wasm.ValType{wasm.ValI32}, Results: []wasm.ValType{wasm.ValI32}},
				Fn: func(ctx *wasm.CallContext, args []uint64) ([]uint64, error) {
					return []uint64{args[0]}, nil
				},
			}}}
			in, err := cm.Instantiate(imports, wasm.Config{MaxMemoryPages: 64})
			if err != nil {
				return
			}
			// Even a successfully instantiated mutant must only ever trap.
			in.SetFuel(100_000)
			for _, e := range in.Module().Exports {
				if e.Kind != wasm.ExternFunc {
					continue
				}
				ft, _ := in.FuncType(e.Name)
				args := make([]uint64, len(ft.Params))
				_, _ = in.Call(e.Name, args...)
			}
		}()
	}
}

// TestMutatedWATNeverPanics does the same for the text compiler, which
// also processes third-party input (wat2wasm, test fixtures).
func TestMutatedWATNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	base := []byte(fullFeatureWAT)
	for trial := 0; trial < 2000; trial++ {
		mutated := append([]byte(nil), base...)
		for n := 1 + rng.Intn(3); n > 0; n-- {
			switch rng.Intn(3) {
			case 0:
				mutated[rng.Intn(len(mutated))] = byte(rng.Intn(128))
			case 1:
				i := rng.Intn(len(mutated))
				mutated[i] = "()\"$;"[rng.Intn(5)]
			case 2:
				mutated = mutated[:rng.Intn(len(mutated))+1]
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic: %v\nsource: %s", trial, r, mutated)
				}
			}()
			m, err := wat.Compile(string(mutated))
			if err != nil {
				return
			}
			_, _ = wasm.Compile(m)
		}()
	}
}

// TestDecodeLimitsRejectBombs: section vectors claiming absurd lengths must
// be refused, not allocated.
func TestDecodeLimitsRejectBombs(t *testing.T) {
	// Type section claiming 2^30 entries in 6 bytes.
	bomb := []byte{0x00, 0x61, 0x73, 0x6D, 0x01, 0x00, 0x00, 0x00,
		1, 5, 0x80, 0x80, 0x80, 0x80, 0x04}
	if _, err := wasm.Decode(bomb); err == nil {
		t.Fatal("vector bomb accepted")
	}
}

// TestHugeFunctionBody exercises compiler scalability: a 40k-instruction
// straight-line function must compile and run.
func TestHugeFunctionBody(t *testing.T) {
	var b []byte
	b = append(b, []byte(`(module (func (export "big") (result i32) i32.const 0 `)...)
	for i := 0; i < 20000; i++ {
		b = append(b, []byte(fmt.Sprintf("i32.const %d i32.add ", i%7))...)
	}
	b = append(b, []byte("))")...)
	in := mustInstance(t, string(b))
	want := uint64(0)
	for i := 0; i < 20000; i++ {
		want += uint64(i % 7)
	}
	if got := call1(t, in, "big"); got != want {
		t.Fatalf("big = %d, want %d", got, want)
	}
}

// FuzzDecode is the native fuzz target over the plugin upload gauntlet:
// decode, compile, instantiate and (fuel-bounded) execute arbitrary bytes.
// Anything but a clean error or a trap is a finding. `make check` runs a
// 10 s smoke of this; longer campaigns via
// go test -fuzz=FuzzDecode ./internal/wasm.
func FuzzDecode(f *testing.F) {
	seed, err := wat.CompileToBinary(fullFeatureWAT)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{0x00, 0x61, 0x73, 0x6D, 0x01, 0x00, 0x00, 0x00}) // empty module
	f.Add([]byte{0x00, 0x61, 0x73, 0x6D})                         // truncated magic
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := wasm.Decode(data)
		if err != nil {
			return
		}
		cm, err := wasm.Compile(m)
		if err != nil {
			return
		}
		in, err := cm.Instantiate(nil, wasm.Config{MaxMemoryPages: 64, MeterFuel: true})
		if err != nil {
			return
		}
		in.SetFuel(50_000)
		for _, e := range in.Module().Exports {
			if e.Kind != wasm.ExternFunc {
				continue
			}
			ft, _ := in.FuncType(e.Name)
			args := make([]uint64, len(ft.Params))
			_, _ = in.Call(e.Name, args...)
		}
	})
}

package wasm

import (
	"fmt"
	"time"
)

// Tier selects how compiled function bodies execute. All tiers are
// bit-identical on results, trap classes and fuel/InstrCount accounting
// (pinned by TestTierEquivalence and FuzzTierDifferential); they differ only
// in dispatch cost:
//
//   - TierInterp: the baseline flattening interpreter (one switch per
//     instruction).
//   - TierFused: the same interpreter loop over a superinstruction stream —
//     hot multi-op sequences (const+add+store, load+compare+br,
//     local.get×2+binop, ...) are fused into single dispatches.
//   - TierClosure: an AOT "compile to closures" tier — each (fused)
//     instruction is lowered at promotion time to a Go closure with its
//     immediates and successor pc captured as constants, executed by a
//     register-caching dispatch loop with no per-instruction switch.
//
// The zero value TierAuto means "follow the module default", which starts at
// the interpreter and is raised by profile-guided promotion (see
// wabi.ModuleCache).
type Tier int32

const (
	TierAuto    Tier = iota // follow the module's default tier
	TierInterp              // flattening interpreter (baseline)
	TierFused               // superinstruction-fused interpreter
	TierClosure             // AOT closure-compiled dispatch loop
)

// NumTiers is the number of concrete execution tiers (TierAuto excluded).
const NumTiers = 3

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case TierAuto:
		return "auto"
	case TierInterp:
		return "interp"
	case TierFused:
		return "fused"
	case TierClosure:
		return "closure"
	}
	return fmt.Sprintf("tier(%d)", int32(t))
}

// ParseTier parses a tier name as accepted by `waranbench -tier`. The empty
// string parses as TierAuto.
func ParseTier(s string) (Tier, error) {
	switch s {
	case "", "auto":
		return TierAuto, nil
	case "interp", "interpreter":
		return TierInterp, nil
	case "fused":
		return TierFused, nil
	case "closure", "aot":
		return TierClosure, nil
	}
	return TierAuto, fmt.Errorf("wasm: unknown execution tier %q (want auto, interp, fused or closure)", s)
}

// SetDefaultTier sets the tier used by instances that do not pin one
// themselves (Config.Tier / SetTier left at TierAuto). Safe to call
// concurrently with running instances: each outermost call re-reads the
// default, so promotion applies from the next call. TierAuto resets to the
// interpreter.
func (cm *CompiledModule) SetDefaultTier(t Tier) {
	if t == TierAuto {
		t = TierInterp
	}
	cm.ensureTier(t)
	cm.defaultTier.Store(int32(t))
}

// DefaultTier reports the module's current default execution tier.
func (cm *CompiledModule) DefaultTier() Tier {
	if t := Tier(cm.defaultTier.Load()); t != TierAuto {
		return t
	}
	return TierInterp
}

// ensureTier lazily builds the executable form a tier needs, once per
// module. The closure tier compounds on the fused stream, so it builds both.
func (cm *CompiledModule) ensureTier(t Tier) {
	switch t {
	case TierFused:
		cm.fusedOnce.Do(cm.buildFused)
	case TierClosure:
		cm.fusedOnce.Do(cm.buildFused)
		cm.closOnce.Do(cm.buildClosures)
	}
}

func (cm *CompiledModule) buildFused() {
	for _, f := range cm.funcs {
		f.fused = fuseCode(f.code)
	}
}

func (cm *CompiledModule) buildClosures() {
	for _, f := range cm.funcs {
		f.clos = compileClosures(cm, f)
	}
}

// SetTier pins the instance to one execution tier; TierAuto (the default)
// follows the module's default, so profile-guided promotion can retier the
// instance between calls. Like the rest of the Instance API this must not
// race with a running call.
func (in *Instance) SetTier(t Tier) { in.tierPin = t }

// EffectiveTier reports the tier resolved for the most recent outermost call
// (TierInterp before any call).
func (in *Instance) EffectiveTier() Tier {
	if in.tier == TierAuto {
		return TierInterp
	}
	return in.tier
}

// TierCalls reports how many outermost calls each tier served.
func (in *Instance) TierCalls() (interp, fused, closure uint64) {
	return in.tierCalls[TierInterp], in.tierCalls[TierFused], in.tierCalls[TierClosure]
}

// resolveTier computes the tier for the next outermost call: the instance
// pin when set, else the module default.
func (in *Instance) resolveTier() Tier {
	t := in.tierPin
	if t == TierAuto {
		t = Tier(in.cm.defaultTier.Load())
	}
	if t == TierAuto {
		t = TierInterp
	}
	return t
}

// chargeFuel consumes k fuel units exactly as k sequential per-instruction
// charges would: InstrCount advances only by the units actually paid for,
// and exhaustion traps at the precise instruction boundary, so fused
// superinstructions and closure-tier dispatch stay bit-identical to the
// interpreter's accounting. The deadline test fires when the charge crosses
// a 64 Ki-instruction boundary, mirroring the interpreter's periodic check.
func (in *Instance) chargeFuel(k uint32) {
	if !in.fuelEnabled || k == 0 {
		return
	}
	f := in.fuel
	switch {
	case f < 0: // metering on, exhaustion disabled
		in.InstrCount += uint64(k)
	case f >= int64(k):
		in.fuel = f - int64(k)
		in.InstrCount += uint64(k)
	default:
		in.InstrCount += uint64(f)
		in.fuel = 0
		panic(newTrap(TrapFuelExhausted))
	}
	if in.deadline != 0 && in.InstrCount>>16 != (in.InstrCount-uint64(k))>>16 &&
		time.Now().UnixNano() > in.deadline {
		panic(newTrap(TrapDeadlineExceeded))
	}
}

// pollDeadline is called on loop back-edges and call boundaries while a
// deadline is armed. The interpreter's periodic check only fires every
// 64 Ki instructions, which a short stalling call never reaches; polling
// the two control-flow events that every non-terminating guest must repeat
// closes that escape. The wall clock is sampled every 64th event to keep
// armed-deadline overhead off the hot path.
func (in *Instance) pollDeadline() {
	in.deadlineEvents++
	if in.deadlineEvents&63 != 0 {
		return
	}
	if time.Now().UnixNano() > in.deadline {
		panic(newTrap(TrapDeadlineExceeded))
	}
}

// checkDeadlineNow samples the wall clock unconditionally — used after host
// function returns, where a stalled host call must surface immediately and
// the call itself dwarfs the clock read.
func (in *Instance) checkDeadlineNow() {
	if time.Now().UnixNano() > in.deadline {
		panic(newTrap(TrapDeadlineExceeded))
	}
}

package wasm_test

import (
	"errors"
	"math"
	"testing"

	"waran/internal/wasm"
	"waran/internal/wat"
)

// mustModule compiles WAT source to a decoded module.
func mustModule(t *testing.T, src string) *wasm.Module {
	t.Helper()
	m, err := wat.Compile(src)
	if err != nil {
		t.Fatalf("wat: %v", err)
	}
	return m
}

// mustInstance compiles WAT source and instantiates it.
func mustInstance(t *testing.T, src string) *wasm.Instance {
	t.Helper()
	m, err := wat.Compile(src)
	if err != nil {
		t.Fatalf("wat: %v", err)
	}
	cm, err := wasm.Compile(m)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	in, err := cm.Instantiate(nil, wasm.Config{})
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	return in
}

// call1 invokes fn and returns its single result.
func call1(t *testing.T, in *wasm.Instance, fn string, args ...uint64) uint64 {
	t.Helper()
	res, err := in.Call(fn, args...)
	if err != nil {
		t.Fatalf("call %s%v: %v", fn, args, err)
	}
	if len(res) != 1 {
		t.Fatalf("call %s: %d results", fn, len(res))
	}
	return res[0]
}

// wantTrap asserts that a call traps with the given code.
func wantTrap(t *testing.T, in *wasm.Instance, code wasm.TrapCode, fn string, args ...uint64) {
	t.Helper()
	_, err := in.Call(fn, args...)
	var trap *wasm.Trap
	if !errors.As(err, &trap) {
		t.Fatalf("call %s%v: want trap, got %v", fn, args, err)
	}
	if trap.Code != code {
		t.Fatalf("call %s%v: trap %v, want %v", fn, args, trap.Code, code)
	}
}

func f32(v float32) uint64 { return uint64(math.Float32bits(v)) }
func f64(v float64) uint64 { return math.Float64bits(v) }
func i32(v int32) uint64   { return uint64(uint32(v)) }
func i64(v int64) uint64   { return uint64(v) }

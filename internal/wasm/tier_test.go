package wasm_test

import (
	"errors"
	"testing"
	"time"

	"waran/internal/wasm"
	"waran/internal/wat"
)

// allTiers are the three concrete execution tiers under the bit-identity
// contract.
var allTiers = []wasm.Tier{wasm.TierInterp, wasm.TierFused, wasm.TierClosure}

// tierInstance compiles src once per call and instantiates it pinned to t.
func tierInstance(t *testing.T, src string, tier wasm.Tier, cfg wasm.Config) *wasm.Instance {
	t.Helper()
	m, err := wat.Compile(src)
	if err != nil {
		t.Fatalf("wat: %v", err)
	}
	cm, err := wasm.Compile(m)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cfg.Tier = tier
	in, err := cm.Instantiate(nil, cfg)
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	return in
}

// tierRun captures everything the bit-identity contract covers for one call.
type tierRun struct {
	res        []uint64
	trap       wasm.TrapCode // 0 = no trap
	instrCount uint64
	fuelLeft   int64
}

func runOnTier(t *testing.T, src string, tier wasm.Tier, fuel int64, fn string, args ...uint64) tierRun {
	t.Helper()
	in := tierInstance(t, src, tier, wasm.Config{MeterFuel: true})
	in.SetFuel(fuel)
	res, err := in.Call(fn, args...)
	r := tierRun{res: res, instrCount: in.InstrCount, fuelLeft: in.Fuel()}
	if err != nil {
		var trap *wasm.Trap
		if !errors.As(err, &trap) {
			t.Fatalf("tier %v: non-trap error: %v", tier, err)
		}
		r.trap = trap.Code
	}
	if got := in.EffectiveTier(); got != tier {
		t.Fatalf("EffectiveTier = %v, want %v", got, tier)
	}
	return r
}

// assertTiersAgree runs one call on all three tiers and requires identical
// results, trap classes, instruction counts and remaining fuel.
func assertTiersAgree(t *testing.T, src string, fuel int64, fn string, args ...uint64) tierRun {
	t.Helper()
	base := runOnTier(t, src, wasm.TierInterp, fuel, fn, args...)
	for _, tier := range allTiers[1:] {
		got := runOnTier(t, src, tier, fuel, fn, args...)
		if got.trap != base.trap {
			t.Errorf("%s%v on %v: trap %v, interp has %v", fn, args, tier, got.trap, base.trap)
		}
		if len(got.res) != len(base.res) {
			t.Fatalf("%s%v on %v: %d results, interp has %d", fn, args, tier, len(got.res), len(base.res))
		}
		for i := range got.res {
			if got.res[i] != base.res[i] {
				t.Errorf("%s%v on %v: result[%d] = %#x, interp has %#x", fn, args, tier, i, got.res[i], base.res[i])
			}
		}
		if got.instrCount != base.instrCount {
			t.Errorf("%s%v on %v: InstrCount %d, interp has %d", fn, args, tier, got.instrCount, base.instrCount)
		}
		if got.fuelLeft != base.fuelLeft {
			t.Errorf("%s%v on %v: fuel left %d, interp has %d", fn, args, tier, got.fuelLeft, base.fuelLeft)
		}
	}
	return base
}

// tierCorpusWAT exercises every fused pattern plus the paths fusion must not
// break: loops over memory, mixed-width arithmetic, traps, calls, branch
// tables and floats.
const tierCorpusWAT = `(module
  (memory (export "memory") 1 4)
  (table 2 funcref)
  (elem (i32.const 0) $sum $fib)
  (global $g (mut i32) (i32.const 0))

  ;; Writes i*i at 4*i for i in [0,n), then sums the array: hits
  ;; get/const/add/store, load+compare+br and get,get,binop fusions.
  (func $sum (export "sum") (param $n i32) (result i32)
    (local $i i32) (local $acc i32) (local $p i32)
    (block $done
      (loop $fill
        (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
        (i32.store (i32.mul (local.get $i) (i32.const 4))
                   (i32.mul (local.get $i) (local.get $i)))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $fill)))
    (local.set $i (i32.const 0))
    (block $done2
      (loop $acc2
        (br_if $done2 (i32.ge_u (local.get $i) (local.get $n)))
        (local.set $p (i32.mul (local.get $i) (i32.const 4)))
        (local.set $acc (i32.add (local.get $acc) (i32.load (local.get $p))))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $acc2)))
    local.get $acc)

  ;; Recursive call tree: exercises call boundaries under every tier.
  (func $fib (export "fib") (param $n i32) (result i32)
    (if (result i32) (i32.lt_u (local.get $n) (i32.const 2))
      (then (local.get $n))
      (else (i32.add
        (call $fib (i32.sub (local.get $n) (i32.const 1)))
        (call $fib (i32.sub (local.get $n) (i32.const 2)))))))

  ;; Indirect dispatch through the table.
  (func (export "via_table") (param $idx i32) (param $arg i32) (result i32)
    (call_indirect (type $unary) (local.get $arg) (local.get $idx)))
  (type $unary (func (param i32) (result i32)))

  ;; Trap sites: division, OOB access, unreachable, memory.grow results.
  (func (export "div") (param i32 i32) (result i32)
    local.get 0 local.get 1 i32.div_s)
  (func (export "load_at") (param i32) (result i32)
    local.get 0 i32.load)
  (func (export "boom") unreachable)
  (func (export "grow") (param i32) (result i32)
    local.get 0 memory.grow)

  ;; Branch table with fall-through.
  (func (export "route") (param i32) (result i32)
    (block $b2
      (block $b1
        (block $b0
          (br_table $b0 $b1 $b2 (local.get 0)))
        (return (i32.const 10)))
      (return (i32.const 20)))
    (i32.const 30))

  ;; Float and 64-bit mix: none of these fuse; they must still agree.
  (func (export "mix") (param $x f64) (param $k i64) (result f64)
    (f64.add (f64.mul (local.get $x) (f64.convert_i64_s (local.get $k)))
             (f64.sqrt (local.get $x))))

  ;; Globals + tee + select, with an eqz-guarded branch (fused eqz_br).
  (func (export "gsel") (param $c i32) (result i32)
    (global.set $g (i32.add (global.get $g) (i32.const 1)))
    (block $z (result i32)
      (br_if $z (global.get $g) (i32.eqz (local.get $c)))
      (drop)
      (select (i32.const 100) (i32.const 200) (local.get $c))))
)`

func TestTierEquivalence(t *testing.T) {
	const fuel = 1 << 20
	cases := []struct {
		fn   string
		args []uint64
	}{
		{"sum", []uint64{0}},
		{"sum", []uint64{1}},
		{"sum", []uint64{37}},
		{"fib", []uint64{10}},
		{"via_table", []uint64{0, 9}},
		{"via_table", []uint64{1, 9}},
		{"via_table", []uint64{5, 9}}, // out-of-bounds table index
		{"div", []uint64{i32(-7), 2}},
		{"div", []uint64{7, 0}},                      // divide by zero
		{"div", []uint64{i32(-2147483648), i32(-1)}}, // overflow
		{"load_at", []uint64{0}},
		{"load_at", []uint64{65536}}, // out of bounds
		{"boom", nil},
		{"grow", []uint64{1}},
		{"grow", []uint64{0xFFFFFFFF}}, // must fail, not wrap
		{"route", []uint64{0}},
		{"route", []uint64{1}},
		{"route", []uint64{2}},
		{"route", []uint64{9}},
		{"mix", []uint64{f64(2.25), i64(-3)}},
		{"gsel", []uint64{0}},
		{"gsel", []uint64{4}},
	}
	for _, tc := range cases {
		assertTiersAgree(t, tierCorpusWAT, fuel, tc.fn, tc.args...)
	}
}

// TestTierFuelSweep pins the exhaustion boundary: for every fuel value from
// 0 up past the guest's exact cost, all tiers must agree on trap class,
// InstrCount (== fuel consumed, even at the trap boundary) and remaining
// fuel. This is the regression test for the fuel off-by-one: InstrCount at
// exhaustion used to count the instruction that never ran.
func TestTierFuelSweep(t *testing.T) {
	const fn = "sum"
	args := []uint64{5}
	// Discover the exact cost on the baseline tier.
	full := runOnTier(t, tierCorpusWAT, wasm.TierInterp, 1<<20, fn, args...)
	if full.trap != 0 {
		t.Fatalf("baseline run trapped: %v", full.trap)
	}
	cost := full.instrCount
	if cost == 0 || cost > 4096 {
		t.Fatalf("unexpected baseline cost %d", cost)
	}
	for fuel := int64(0); fuel <= int64(cost)+2; fuel++ {
		base := runOnTier(t, tierCorpusWAT, wasm.TierInterp, fuel, fn, args...)
		// The boundary invariant, independent of tier agreement:
		if fuel < int64(cost) {
			if base.trap != wasm.TrapFuelExhausted {
				t.Fatalf("fuel %d: trap %v, want fuel exhaustion", fuel, base.trap)
			}
			if base.instrCount != uint64(fuel) {
				t.Fatalf("fuel %d: InstrCount %d, want %d (count only paid instructions)", fuel, base.instrCount, fuel)
			}
			if base.fuelLeft != 0 {
				t.Fatalf("fuel %d: %d fuel left after exhaustion", fuel, base.fuelLeft)
			}
		} else {
			if base.trap != 0 || base.instrCount != cost || base.fuelLeft != fuel-int64(cost) {
				t.Fatalf("fuel %d: trap %v count %d left %d, want clean run of %d", fuel, base.trap, base.instrCount, base.fuelLeft, cost)
			}
		}
		for _, tier := range allTiers[1:] {
			got := runOnTier(t, tierCorpusWAT, tier, fuel, fn, args...)
			if got.trap != base.trap || got.instrCount != base.instrCount || got.fuelLeft != base.fuelLeft {
				t.Fatalf("fuel %d on %v: (trap %v, count %d, left %d) vs interp (%v, %d, %d)",
					fuel, tier, got.trap, got.instrCount, got.fuelLeft, base.trap, base.instrCount, base.fuelLeft)
			}
		}
	}
}

// TestTierDeadlineShortGuest is the regression test for the deadline escape:
// a guest looping well under 64 Ki instructions never hit the periodic
// deadline check, so an expired deadline was ignored. Back-edge polling must
// surface it on every tier.
func TestTierDeadlineShortGuest(t *testing.T) {
	const spin = `(module
      (func (export "spin") (param $n i32) (result i32)
        (local $i i32)
        (block $done
          (loop $l
            (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
            (local.set $i (i32.add (local.get $i) (i32.const 1)))
            (br $l)))
        local.get $i))`
	for _, tier := range allTiers {
		in := tierInstance(t, spin, tier, wasm.Config{MeterFuel: true})
		in.SetFuel(1 << 20)

		// Sanity: an unarmed deadline lets the loop finish (~6k instrs).
		if got, err := in.Call("spin", 1000); err != nil || got[0] != 1000 {
			t.Fatalf("tier %v: clean spin: %v %v", tier, got, err)
		}

		// An already-expired deadline must trap even though the call is far
		// short of the 64 Ki periodic check.
		in.SetDeadline(time.Now().Add(-time.Second))
		_, err := in.Call("spin", 1000)
		var trap *wasm.Trap
		if !errors.As(err, &trap) || trap.Code != wasm.TrapDeadlineExceeded {
			t.Fatalf("tier %v: short spin with expired deadline: %v, want TrapDeadlineExceeded", tier, err)
		}

		// Disarming restores normal completion.
		in.SetDeadline(time.Time{})
		if got, err := in.Call("spin", 1000); err != nil || got[0] != 1000 {
			t.Fatalf("tier %v: spin after disarm: %v %v", tier, got, err)
		}
	}
}

// TestTierPromotion covers the module-default path: instances left on
// TierAuto follow SetDefaultTier, while pinned instances ignore it.
func TestTierPromotion(t *testing.T) {
	m, err := wat.Compile(`(module (func (export "f") (result i32) (i32.const 3)))`)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := wasm.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := cm.Instantiate(nil, wasm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := cm.Instantiate(nil, wasm.Config{Tier: wasm.TierInterp})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := auto.Call("f"); err != nil {
		t.Fatal(err)
	}
	if got := auto.EffectiveTier(); got != wasm.TierInterp {
		t.Fatalf("before promotion: tier %v", got)
	}
	if got := cm.DefaultTier(); got != wasm.TierInterp {
		t.Fatalf("module default %v before promotion", got)
	}

	cm.SetDefaultTier(wasm.TierClosure)
	if _, err := auto.Call("f"); err != nil {
		t.Fatal(err)
	}
	if got := auto.EffectiveTier(); got != wasm.TierClosure {
		t.Fatalf("after promotion: tier %v, want closure", got)
	}
	if _, err := pinned.Call("f"); err != nil {
		t.Fatal(err)
	}
	if got := pinned.EffectiveTier(); got != wasm.TierInterp {
		t.Fatalf("pinned instance followed promotion to %v", got)
	}

	interp, fused, closure := auto.TierCalls()
	if interp != 1 || fused != 0 || closure != 1 {
		t.Fatalf("TierCalls = (%d, %d, %d), want (1, 0, 1)", interp, fused, closure)
	}
}

func TestParseTier(t *testing.T) {
	cases := map[string]wasm.Tier{
		"":            wasm.TierAuto,
		"auto":        wasm.TierAuto,
		"interp":      wasm.TierInterp,
		"interpreter": wasm.TierInterp,
		"fused":       wasm.TierFused,
		"closure":     wasm.TierClosure,
		"aot":         wasm.TierClosure,
	}
	for s, want := range cases {
		got, err := wasm.ParseTier(s)
		if err != nil || got != want {
			t.Errorf("ParseTier(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := wasm.ParseTier("jit"); err == nil {
		t.Error("ParseTier(jit) succeeded, want error")
	}
	for _, tier := range []wasm.Tier{wasm.TierAuto, wasm.TierInterp, wasm.TierFused, wasm.TierClosure} {
		if rt, err := wasm.ParseTier(tier.String()); err != nil || rt != tier {
			t.Errorf("round trip %v -> %q -> %v, %v", tier, tier.String(), rt, err)
		}
	}
}

// TestMemoryGrowOverflow is the table-driven regression test for the Grow
// size check: deltas near 2^32 must fail cleanly instead of wrapping the
// page arithmetic.
func TestMemoryGrowOverflow(t *testing.T) {
	cases := []struct {
		name     string
		min, max uint32
		grows    []uint32 // applied in order
		delta    uint32
		wantPrev uint32
		wantOK   bool
	}{
		{name: "zero delta", min: 1, max: 4, delta: 0, wantPrev: 1, wantOK: true},
		{name: "simple grow", min: 1, max: 4, delta: 2, wantPrev: 1, wantOK: true},
		{name: "exact to max", min: 1, max: 4, delta: 3, wantPrev: 1, wantOK: true},
		{name: "one past max", min: 1, max: 4, delta: 4, wantPrev: 1, wantOK: false},
		{name: "huge delta", min: 1, max: 4, delta: 0xFFFFFFFF, wantPrev: 1, wantOK: false},
		{name: "wrap32 attempt", min: 2, max: 4, delta: 0xFFFFFFFE, wantPrev: 2, wantOK: false},
		{name: "wrap to exact max", min: 4, max: 4, delta: 0xFFFFFFFC, wantPrev: 4, wantOK: false},
		{name: "after growth", min: 1, max: 8, grows: []uint32{3}, delta: 0xFFFFFFFD, wantPrev: 4, wantOK: false},
		{name: "max pages clamp", min: 0, max: 0xFFFFFFFF, delta: 0xFFFFFFFF, wantPrev: 0, wantOK: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := wasm.NewMemory(tc.min, tc.max)
			for _, g := range tc.grows {
				if _, ok := m.Grow(g); !ok {
					t.Fatalf("setup grow %d failed", g)
				}
			}
			prev, ok := m.Grow(tc.delta)
			if prev != tc.wantPrev || ok != tc.wantOK {
				t.Fatalf("Grow(%#x) = (%d, %v), want (%d, %v)", tc.delta, prev, ok, tc.wantPrev, tc.wantOK)
			}
			if !tc.wantOK && m.Size() != tc.wantPrev {
				t.Fatalf("failed grow changed size to %d", m.Size())
			}
		})
	}
}

// TestTierEquivalenceUnfueled runs the corpus without metering: the fuel-free
// dispatch loops must produce the same results and traps.
func TestTierEquivalenceUnfueled(t *testing.T) {
	run := func(tier wasm.Tier, fn string, args ...uint64) ([]uint64, wasm.TrapCode) {
		in := tierInstance(t, tierCorpusWAT, tier, wasm.Config{})
		res, err := in.Call(fn, args...)
		if err != nil {
			var trap *wasm.Trap
			if !errors.As(err, &trap) {
				t.Fatalf("tier %v: %v", tier, err)
			}
			return res, trap.Code
		}
		return res, 0
	}
	cases := []struct {
		fn   string
		args []uint64
	}{
		{"sum", []uint64{37}},
		{"fib", []uint64{12}},
		{"div", []uint64{7, 0}},
		{"route", []uint64{1}},
		{"mix", []uint64{f64(9.0), i64(2)}},
	}
	for _, tc := range cases {
		baseRes, baseTrap := run(wasm.TierInterp, tc.fn, tc.args...)
		for _, tier := range allTiers[1:] {
			res, trap := run(tier, tc.fn, tc.args...)
			if trap != baseTrap {
				t.Errorf("%s on %v: trap %v vs %v", tc.fn, tier, trap, baseTrap)
			}
			for i := range res {
				if res[i] != baseRes[i] {
					t.Errorf("%s on %v: result %#x vs %#x", tc.fn, tier, res[i], baseRes[i])
				}
			}
		}
	}
}

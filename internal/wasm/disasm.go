package wasm

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"

	"waran/internal/leb128"
)

// Disassemble renders a decoded module as WAT-like text for inspection —
// the tooling counterpart of the wat compiler, used by cmd/wat2wasm -dump
// and when debugging third-party plugin uploads.
func Disassemble(m *Module) string {
	var b strings.Builder
	b.WriteString("(module")
	if m.Name != "" {
		fmt.Fprintf(&b, " ;; name=%q", m.Name)
	}
	b.WriteString("\n")

	for i, t := range m.Types {
		fmt.Fprintf(&b, "  (type (;%d;) (func%s))\n", i, signatureText(t))
	}
	for _, im := range m.Imports {
		switch im.Kind {
		case ExternFunc:
			fmt.Fprintf(&b, "  (import %q %q (func (type %d)))\n", im.Module, im.Name, im.TypeIx)
		case ExternMemory:
			fmt.Fprintf(&b, "  (import %q %q (memory %s))\n", im.Module, im.Name, limitsText(im.Mem.Limits))
		case ExternTable:
			fmt.Fprintf(&b, "  (import %q %q (table %s funcref))\n", im.Module, im.Name, limitsText(im.Table.Limits))
		case ExternGlobal:
			fmt.Fprintf(&b, "  (import %q %q (global %s))\n", im.Module, im.Name, globalTypeText(im.Global))
		}
	}
	for _, tt := range m.Tables {
		fmt.Fprintf(&b, "  (table %s funcref)\n", limitsText(tt.Limits))
	}
	for _, mt := range m.Mems {
		fmt.Fprintf(&b, "  (memory %s)\n", limitsText(mt.Limits))
	}
	for i, g := range m.Globals {
		fmt.Fprintf(&b, "  (global (;%d;) %s (%s))\n", i, globalTypeText(g.Type), constExprText(g.Init))
	}
	for _, e := range m.Exports {
		fmt.Fprintf(&b, "  (export %q (%s %d))\n", e.Name, e.Kind, e.Index)
	}
	if m.Start != nil {
		fmt.Fprintf(&b, "  (start %d)\n", *m.Start)
	}
	for _, es := range m.Elems {
		fmt.Fprintf(&b, "  (elem (%s) func", constExprText(es.Offset))
		for _, fx := range es.Funcs {
			fmt.Fprintf(&b, " %d", fx)
		}
		b.WriteString(")\n")
	}
	nImp := m.NumImportedFuncs()
	for i := range m.Funcs {
		c := &m.Codes[i]
		fmt.Fprintf(&b, "  (func (;%d;) (type %d)", nImp+i, m.Funcs[i])
		if len(c.Locals) > 0 {
			b.WriteString(" (local")
			for _, l := range c.Locals {
				fmt.Fprintf(&b, " %s", l)
			}
			b.WriteString(")")
		}
		b.WriteString("\n")
		disasmBody(&b, c.Body)
		b.WriteString("  )\n")
	}
	for _, ds := range m.Datas {
		fmt.Fprintf(&b, "  (data (%s) \"%s\")\n", constExprText(ds.Offset), watEscape(ds.Bytes))
	}
	b.WriteString(")\n")
	return b.String()
}

// watEscape renders bytes as a WAT string literal body: printable ASCII
// stays literal, everything else becomes \hh so the output re-parses.
func watEscape(b []byte) string {
	var out strings.Builder
	for _, c := range b {
		switch {
		case c == '"':
			out.WriteString("\\\"")
		case c == '\\':
			out.WriteString("\\\\")
		case c >= 0x20 && c < 0x7F:
			out.WriteByte(c)
		default:
			fmt.Fprintf(&out, "\\%02x", c)
		}
	}
	return out.String()
}

func signatureText(t FuncType) string {
	var b strings.Builder
	if len(t.Params) > 0 {
		b.WriteString(" (param")
		for _, p := range t.Params {
			fmt.Fprintf(&b, " %s", p)
		}
		b.WriteString(")")
	}
	if len(t.Results) > 0 {
		b.WriteString(" (result")
		for _, r := range t.Results {
			fmt.Fprintf(&b, " %s", r)
		}
		b.WriteString(")")
	}
	return b.String()
}

func limitsText(l Limits) string {
	if l.HasMax {
		return fmt.Sprintf("%d %d", l.Min, l.Max)
	}
	return fmt.Sprintf("%d", l.Min)
}

func globalTypeText(g GlobalType) string {
	if g.Mutable {
		return fmt.Sprintf("(mut %s)", g.Type)
	}
	return g.Type.String()
}

func constExprText(ce ConstExpr) string {
	switch ce.Op {
	case OpI32Const:
		return fmt.Sprintf("i32.const %d", int32(uint32(ce.Value)))
	case OpI64Const:
		return fmt.Sprintf("i64.const %d", int64(ce.Value))
	case OpF32Const:
		return fmt.Sprintf("f32.const %v", math.Float32frombits(uint32(ce.Value)))
	case OpF64Const:
		return fmt.Sprintf("f64.const %v", math.Float64frombits(ce.Value))
	case OpGlobalGet:
		return fmt.Sprintf("global.get %d", ce.GlobalIx)
	default:
		return fmt.Sprintf(";; bad const op %#x", ce.Op)
	}
}

// disasmBody prints one instruction per line with nesting indentation.
func disasmBody(b *strings.Builder, body []byte) {
	r := &reader{b: body}
	depth := 1
	for r.remaining() > 0 {
		op, err := r.byte()
		if err != nil {
			fmt.Fprintf(b, "    ;; error: %v\n", err)
			return
		}
		if op == OpEnd || op == OpElse {
			depth--
		}
		if depth < 0 {
			depth = 0
		}
		indent := strings.Repeat("  ", depth+1)
		text, err := instrText(r, op)
		if err != nil {
			fmt.Fprintf(b, "%s;; error: %v\n", indent, err)
			return
		}
		if op == OpEnd && r.remaining() == 0 {
			return // the function's closing end is implied by the ')' line
		}
		fmt.Fprintf(b, "%s%s\n", indent, text)
		switch op {
		case OpBlock, OpLoop, OpIf, OpElse:
			depth++
		}
	}
}

// instrText decodes one instruction's immediates and renders it.
func instrText(r *reader, op byte) (string, error) {
	name := OpcodeName(op)
	switch op {
	case OpBlock, OpLoop, OpIf:
		raw, n, err := leb128.Int33(r.b[r.pos:])
		if err != nil {
			return "", err
		}
		r.pos += n
		switch {
		case raw >= 0:
			return fmt.Sprintf("%s (type %d)", name, raw), nil
		case byte(raw&0x7F) == 0x40:
			return name, nil
		default:
			return fmt.Sprintf("%s (result %s)", name, ValType(byte(raw&0x7F))), nil
		}
	case OpBr, OpBrIf, OpCall, OpLocalGet, OpLocalSet, OpLocalTee, OpGlobalGet, OpGlobalSet:
		v, err := r.u32()
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s %d", name, v), nil
	case OpBrTable:
		n, err := r.vecLen()
		if err != nil {
			return "", err
		}
		parts := []string{name}
		for i := 0; i <= n; i++ {
			v, err := r.u32()
			if err != nil {
				return "", err
			}
			parts = append(parts, fmt.Sprintf("%d", v))
		}
		return strings.Join(parts, " "), nil
	case OpCallIndirect:
		tix, err := r.u32()
		if err != nil {
			return "", err
		}
		if _, err := r.u32(); err != nil {
			return "", err
		}
		return fmt.Sprintf("%s (type %d)", name, tix), nil
	case OpMemorySize, OpMemoryGrow:
		if _, err := r.byte(); err != nil {
			return "", err
		}
		return name, nil
	case OpI32Const:
		v, err := r.s32()
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s %d", name, v), nil
	case OpI64Const:
		v, err := r.s64()
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s %d", name, v), nil
	case OpF32Const:
		bs, err := r.bytes(4)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s %v", name, math.Float32frombits(binary.LittleEndian.Uint32(bs))), nil
	case OpF64Const:
		bs, err := r.bytes(8)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s %v", name, math.Float64frombits(binary.LittleEndian.Uint64(bs))), nil
	case OpPrefixMisc:
		sub, err := r.u32()
		if err != nil {
			return "", err
		}
		switch sub {
		case MiscMemoryCopy:
			if _, err := r.bytes(2); err != nil {
				return "", err
			}
			return "memory.copy", nil
		case MiscMemoryFill:
			if _, err := r.byte(); err != nil {
				return "", err
			}
			return "memory.fill", nil
		default:
			names := map[uint32]string{
				0: "i32.trunc_sat_f32_s", 1: "i32.trunc_sat_f32_u",
				2: "i32.trunc_sat_f64_s", 3: "i32.trunc_sat_f64_u",
				4: "i64.trunc_sat_f32_s", 5: "i64.trunc_sat_f32_u",
				6: "i64.trunc_sat_f64_s", 7: "i64.trunc_sat_f64_u",
			}
			if n, ok := names[sub]; ok {
				return n, nil
			}
			return "", fmt.Errorf("unknown misc opcode %d", sub)
		}
	default:
		if op >= OpI32Load && op <= OpI64Store32 {
			align, err := r.u32()
			if err != nil {
				return "", err
			}
			off, err := r.u32()
			if err != nil {
				return "", err
			}
			if off != 0 {
				return fmt.Sprintf("%s offset=%d align=%d", name, off, 1<<align), nil
			}
			return name, nil
		}
		return name, nil
	}
}

package wasm_test

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"waran/internal/wasm"
)

// binOpModule builds a module exporting one function per listed binary
// operator: (param T T) (result R).
func binOpModule(paramT, resultT string, ops []string) string {
	var b strings.Builder
	b.WriteString("(module\n")
	for _, op := range ops {
		fmt.Fprintf(&b, "(func (export %q) (param %s %s) (result %s) local.get 0 local.get 1 %s)\n",
			op, paramT, paramT, resultT, op)
	}
	b.WriteString(")")
	return b.String()
}

func unOpModule(paramT, resultT string, ops []string) string {
	var b strings.Builder
	b.WriteString("(module\n")
	for _, op := range ops {
		fmt.Fprintf(&b, "(func (export %q) (param %s) (result %s) local.get 0 %s)\n",
			op, paramT, resultT, op)
	}
	b.WriteString(")")
	return b.String()
}

func TestI32Arithmetic(t *testing.T) {
	ops := []string{"i32.add", "i32.sub", "i32.mul", "i32.div_s", "i32.div_u",
		"i32.rem_s", "i32.rem_u", "i32.and", "i32.or", "i32.xor",
		"i32.shl", "i32.shr_s", "i32.shr_u", "i32.rotl", "i32.rotr"}
	in := mustInstance(t, binOpModule("i32", "i32", ops))
	cases := []struct {
		op   string
		a, b int32
		want int32
	}{
		{"i32.add", 2, 3, 5},
		{"i32.add", math.MaxInt32, 1, math.MinInt32}, // wrapping
		{"i32.sub", 3, 5, -2},
		{"i32.mul", -4, 3, -12},
		{"i32.mul", 0x10000, 0x10000, 0}, // wrapping
		{"i32.div_s", 7, -2, -3},         // truncated toward zero
		{"i32.div_s", -7, 2, -3},
		{"i32.div_u", -1, 2, math.MaxInt32}, // 0xFFFFFFFF / 2
		{"i32.rem_s", 7, -2, 1},
		{"i32.rem_s", -7, 2, -1},
		{"i32.rem_s", math.MinInt32, -1, 0}, // no trap
		{"i32.rem_u", -1, 10, 5},            // 4294967295 % 10
		{"i32.and", 0b1100, 0b1010, 0b1000},
		{"i32.or", 0b1100, 0b1010, 0b1110},
		{"i32.xor", 0b1100, 0b1010, 0b0110},
		{"i32.shl", 1, 33, 2},    // shift mod 32
		{"i32.shr_s", -8, 1, -4}, // arithmetic
		{"i32.shr_u", -8, 1, 0x7FFFFFFC},
		{"i32.rotl", 0x40000000, 2, 1},
		{"i32.rotr", 1, 1, math.MinInt32},
	}
	for _, tc := range cases {
		got := int32(call1(t, in, tc.op, i32(tc.a), i32(tc.b)))
		if got != tc.want {
			t.Errorf("%s(%d, %d) = %d, want %d", tc.op, tc.a, tc.b, got, tc.want)
		}
	}
	wantTrap(t, in, wasm.TrapIntegerDivideByZero, "i32.div_s", i32(5), i32(0))
	wantTrap(t, in, wasm.TrapIntegerDivideByZero, "i32.div_u", i32(5), i32(0))
	wantTrap(t, in, wasm.TrapIntegerDivideByZero, "i32.rem_s", i32(5), i32(0))
	wantTrap(t, in, wasm.TrapIntegerDivideByZero, "i32.rem_u", i32(5), i32(0))
	wantTrap(t, in, wasm.TrapIntegerOverflow, "i32.div_s", i32(math.MinInt32), i32(-1))
}

func TestI64Arithmetic(t *testing.T) {
	ops := []string{"i64.add", "i64.sub", "i64.mul", "i64.div_s", "i64.div_u",
		"i64.rem_s", "i64.rem_u", "i64.shl", "i64.shr_s", "i64.shr_u", "i64.rotl", "i64.rotr"}
	in := mustInstance(t, binOpModule("i64", "i64", ops))
	cases := []struct {
		op   string
		a, b int64
		want int64
	}{
		{"i64.add", math.MaxInt64, 1, math.MinInt64},
		{"i64.sub", 0, 1, -1},
		{"i64.mul", (1 << 40) + 1, 1 << 30, 1 << 30}, // wraps mod 2^64
		{"i64.div_s", -9, 2, -4},
		{"i64.div_u", -1, 1 << 32, (1 << 32) - 1},
		{"i64.rem_s", math.MinInt64, -1, 0},
		{"i64.rem_u", 10, 3, 1},
		{"i64.shl", 1, 65, 2},
		{"i64.shr_s", -16, 2, -4},
		{"i64.shr_u", -16, 60, 15},
		{"i64.rotl", math.MinInt64, 1, 1},
		{"i64.rotr", 1, 1, math.MinInt64},
	}
	for _, tc := range cases {
		got := int64(call1(t, in, tc.op, i64(tc.a), i64(tc.b)))
		if got != tc.want {
			t.Errorf("%s(%d, %d) = %d, want %d", tc.op, tc.a, tc.b, got, tc.want)
		}
	}
	wantTrap(t, in, wasm.TrapIntegerOverflow, "i64.div_s", i64(math.MinInt64), i64(-1))
	wantTrap(t, in, wasm.TrapIntegerDivideByZero, "i64.div_u", i64(1), i64(0))
}

func TestI32Comparisons(t *testing.T) {
	ops := []string{"i32.eq", "i32.ne", "i32.lt_s", "i32.lt_u", "i32.gt_s",
		"i32.gt_u", "i32.le_s", "i32.le_u", "i32.ge_s", "i32.ge_u"}
	in := mustInstance(t, binOpModule("i32", "i32", ops))
	cases := []struct {
		op   string
		a, b int32
		want uint64
	}{
		{"i32.eq", 5, 5, 1},
		{"i32.ne", 5, 5, 0},
		{"i32.lt_s", -1, 0, 1},
		{"i32.lt_u", -1, 0, 0}, // 0xFFFFFFFF not < 0
		{"i32.gt_s", -1, 0, 0},
		{"i32.gt_u", -1, 0, 1},
		{"i32.le_s", 3, 3, 1},
		{"i32.le_u", 4, 3, 0},
		{"i32.ge_s", math.MinInt32, math.MaxInt32, 0},
		{"i32.ge_u", math.MinInt32, math.MaxInt32, 1}, // 0x80000000 >= 0x7FFFFFFF
	}
	for _, tc := range cases {
		if got := call1(t, in, tc.op, i32(tc.a), i32(tc.b)); got != tc.want {
			t.Errorf("%s(%d, %d) = %d, want %d", tc.op, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCountingOps(t *testing.T) {
	in := mustInstance(t, unOpModule("i32", "i32", []string{"i32.clz", "i32.ctz", "i32.popcnt"})+"")
	if got := call1(t, in, "i32.clz", i32(1)); got != 31 {
		t.Errorf("clz(1) = %d", got)
	}
	if got := call1(t, in, "i32.clz", i32(0)); got != 32 {
		t.Errorf("clz(0) = %d", got)
	}
	if got := call1(t, in, "i32.ctz", i32(0x1000)); got != 12 {
		t.Errorf("ctz(0x1000) = %d", got)
	}
	if got := call1(t, in, "i32.popcnt", i32(-1)); got != 32 {
		t.Errorf("popcnt(-1) = %d", got)
	}
}

func TestSignExtensionOps(t *testing.T) {
	in32 := mustInstance(t, unOpModule("i32", "i32", []string{"i32.extend8_s", "i32.extend16_s"}))
	if got := int32(call1(t, in32, "i32.extend8_s", i32(0x80))); got != -128 {
		t.Errorf("extend8_s(0x80) = %d", got)
	}
	if got := int32(call1(t, in32, "i32.extend16_s", i32(0x8000))); got != -32768 {
		t.Errorf("extend16_s(0x8000) = %d", got)
	}
	in64 := mustInstance(t, unOpModule("i64", "i64", []string{"i64.extend8_s", "i64.extend16_s", "i64.extend32_s"}))
	if got := int64(call1(t, in64, "i64.extend32_s", i64(0x80000000))); got != math.MinInt32 {
		t.Errorf("extend32_s = %d", got)
	}
}

func TestF64Arithmetic(t *testing.T) {
	ops := []string{"f64.add", "f64.sub", "f64.mul", "f64.div", "f64.min", "f64.max", "f64.copysign"}
	in := mustInstance(t, binOpModule("f64", "f64", ops))
	check := func(op string, a, b, want float64) {
		t.Helper()
		got := math.Float64frombits(call1(t, in, op, f64(a), f64(b)))
		if math.IsNaN(want) {
			if !math.IsNaN(got) {
				t.Errorf("%s(%v, %v) = %v, want NaN", op, a, b, got)
			}
			return
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("%s(%v, %v) = %v (bits %x), want %v", op, a, b, got, math.Float64bits(got), want)
		}
	}
	check("f64.add", 1.5, 2.25, 3.75)
	check("f64.div", 1, 0, math.Inf(1))
	check("f64.div", 0, 0, math.NaN())
	check("f64.min", math.Copysign(0, -1), 0, math.Copysign(0, -1)) // min(-0, +0) = -0
	check("f64.max", math.Copysign(0, -1), 0, 0)
	check("f64.min", math.NaN(), 1, math.NaN())
	check("f64.max", 1, math.NaN(), math.NaN())
	check("f64.copysign", 3, -1, -3)
}

func TestF64Unary(t *testing.T) {
	ops := []string{"f64.abs", "f64.neg", "f64.ceil", "f64.floor", "f64.trunc", "f64.nearest", "f64.sqrt"}
	in := mustInstance(t, unOpModule("f64", "f64", ops))
	check := func(op string, a, want float64) {
		t.Helper()
		got := math.Float64frombits(call1(t, in, op, f64(a)))
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("%s(%v) = %v, want %v", op, a, got, want)
		}
	}
	check("f64.abs", -2.5, 2.5)
	check("f64.neg", 2.5, -2.5)
	check("f64.ceil", 2.1, 3)
	check("f64.floor", -2.1, -3)
	check("f64.trunc", -2.9, -2)
	check("f64.nearest", 2.5, 2) // ties to even
	check("f64.nearest", 3.5, 4)
	check("f64.sqrt", 9, 3)
}

func TestTruncations(t *testing.T) {
	src := `(module
	  (func (export "i32s") (param f64) (result i32) local.get 0 i32.trunc_f64_s)
	  (func (export "i32u") (param f64) (result i32) local.get 0 i32.trunc_f64_u)
	  (func (export "i64s") (param f64) (result i64) local.get 0 i64.trunc_f64_s)
	  (func (export "i64u") (param f64) (result i64) local.get 0 i64.trunc_f64_u)
	  (func (export "sat32s") (param f64) (result i32) local.get 0 i32.trunc_sat_f64_s)
	  (func (export "sat32u") (param f64) (result i32) local.get 0 i32.trunc_sat_f64_u)
	  (func (export "sat64s") (param f64) (result i64) local.get 0 i64.trunc_sat_f64_s)
	)`
	in := mustInstance(t, src)
	if got := int32(call1(t, in, "i32s", f64(-2.7))); got != -2 {
		t.Errorf("trunc_f64_s(-2.7) = %d", got)
	}
	if got := int32(call1(t, in, "i32s", f64(2147483647.9))); got != math.MaxInt32 {
		t.Errorf("trunc at upper edge = %d", got)
	}
	wantTrap(t, in, wasm.TrapIntegerOverflow, "i32s", f64(2147483648.0))
	wantTrap(t, in, wasm.TrapIntegerOverflow, "i32u", f64(-1.0))
	wantTrap(t, in, wasm.TrapInvalidConversion, "i32s", f64(math.NaN()))
	wantTrap(t, in, wasm.TrapIntegerOverflow, "i64s", f64(9.3e18))
	if got := int64(call1(t, in, "i64u", f64(1.8e19))); uint64(got) != 18000000000000000000 {
		t.Errorf("trunc_f64_u(1.8e19) = %d", uint64(got))
	}
	// Saturating versions never trap.
	if got := int32(call1(t, in, "sat32s", f64(1e12))); got != math.MaxInt32 {
		t.Errorf("sat32s(1e12) = %d", got)
	}
	if got := int32(call1(t, in, "sat32s", f64(-1e12))); got != math.MinInt32 {
		t.Errorf("sat32s(-1e12) = %d", got)
	}
	if got := int32(call1(t, in, "sat32s", f64(math.NaN()))); got != 0 {
		t.Errorf("sat32s(NaN) = %d", got)
	}
	if got := int32(call1(t, in, "sat32u", f64(-5))); got != 0 {
		t.Errorf("sat32u(-5) = %d", got)
	}
	if got := int64(call1(t, in, "sat64s", f64(1e30))); got != math.MaxInt64 {
		t.Errorf("sat64s(1e30) = %d", got)
	}
}

func TestConversions(t *testing.T) {
	src := `(module
	  (func (export "wrap") (param i64) (result i32) local.get 0 i32.wrap_i64)
	  (func (export "ext_s") (param i32) (result i64) local.get 0 i64.extend_i32_s)
	  (func (export "ext_u") (param i32) (result i64) local.get 0 i64.extend_i32_u)
	  (func (export "conv") (param i64) (result f64) local.get 0 f64.convert_i64_u)
	  (func (export "demote") (param f64) (result f32) local.get 0 f32.demote_f64)
	  (func (export "promote") (param f32) (result f64) local.get 0 f64.promote_f32)
	  (func (export "reinterp") (param f64) (result i64) local.get 0 i64.reinterpret_f64)
	)`
	in := mustInstance(t, src)
	if got := int32(call1(t, in, "wrap", i64(0x1_0000_0005))); got != 5 {
		t.Errorf("wrap = %d", got)
	}
	if got := int64(call1(t, in, "ext_s", i32(-7))); got != -7 {
		t.Errorf("extend_s = %d", got)
	}
	if got := int64(call1(t, in, "ext_u", i32(-7))); got != 0xFFFFFFF9 {
		t.Errorf("extend_u = %d", got)
	}
	if got := math.Float64frombits(call1(t, in, "conv", ^uint64(0))); got != 1.8446744073709552e19 {
		t.Errorf("convert_i64_u(max) = %v", got)
	}
	if got := math.Float32frombits(uint32(call1(t, in, "demote", f64(1.5)))); got != 1.5 {
		t.Errorf("demote = %v", got)
	}
	if got := math.Float64frombits(call1(t, in, "promote", f32(2.5))); got != 2.5 {
		t.Errorf("promote = %v", got)
	}
	if got := call1(t, in, "reinterp", f64(1.0)); got != 0x3FF0000000000000 {
		t.Errorf("reinterpret = %#x", got)
	}
}

func TestMemoryLoadsStores(t *testing.T) {
	src := `(module
	  (memory (export "memory") 1)
	  (func (export "s8") (param i32 i32) local.get 0 local.get 1 i32.store8)
	  (func (export "l8s") (param i32) (result i32) local.get 0 i32.load8_s)
	  (func (export "l8u") (param i32) (result i32) local.get 0 i32.load8_u)
	  (func (export "s16") (param i32 i32) local.get 0 local.get 1 i32.store16)
	  (func (export "l16s") (param i32) (result i32) local.get 0 i32.load16_s)
	  (func (export "l16u") (param i32) (result i32) local.get 0 i32.load16_u)
	  (func (export "s64") (param i32 i64) local.get 0 local.get 1 i64.store)
	  (func (export "l64") (param i32) (result i64) local.get 0 i64.load)
	  (func (export "l32s_64") (param i32) (result i64) local.get 0 i64.load32_s)
	  (func (export "loff") (param i32) (result i32) local.get 0 i32.load offset=16)
	  (func (export "f64rt") (param i32 f64) (result f64)
	    local.get 0 local.get 1 f64.store
	    local.get 0 f64.load)
	)`
	in := mustInstance(t, src)
	if _, err := in.Call("s8", 10, i32(-1)); err != nil {
		t.Fatal(err)
	}
	if got := int32(call1(t, in, "l8s", 10)); got != -1 {
		t.Errorf("l8s = %d", got)
	}
	if got := call1(t, in, "l8u", 10); got != 255 {
		t.Errorf("l8u = %d", got)
	}
	if _, err := in.Call("s16", 20, i32(-2)); err != nil {
		t.Fatal(err)
	}
	if got := int32(call1(t, in, "l16s", 20)); got != -2 {
		t.Errorf("l16s = %d", got)
	}
	if got := call1(t, in, "l16u", 20); got != 0xFFFE {
		t.Errorf("l16u = %d", got)
	}
	if _, err := in.Call("s64", 32, i64(-1234567890123)); err != nil {
		t.Fatal(err)
	}
	if got := int64(call1(t, in, "l64", 32)); got != -1234567890123 {
		t.Errorf("l64 = %d", got)
	}
	// i64.load32_s reads the low 32 bits of the stored value, sign extended.
	stored := int64(-1234567890123)
	if got, want := int64(call1(t, in, "l32s_64", 32)), int64(int32(uint32(uint64(stored)&0xFFFFFFFF))); got != want {
		t.Errorf("l32s_64 = %d, want %d", got, want)
	}
	if got := math.Float64frombits(call1(t, in, "f64rt", 100, f64(3.14))); got != 3.14 {
		t.Errorf("f64 roundtrip = %v", got)
	}
	// Offsets participate in bounds checks; 65536-4+16 overflows.
	wantTrap(t, in, wasm.TrapOutOfBoundsMemory, "loff", i32(65520))
	// Effective address overflow (u32 + offset) must not wrap.
	wantTrap(t, in, wasm.TrapOutOfBoundsMemory, "loff", i32(-4))
}

func TestMemoryGrowAndSize(t *testing.T) {
	src := `(module
	  (memory (export "memory") 1 3)
	  (func (export "size") (result i32) memory.size)
	  (func (export "grow") (param i32) (result i32) local.get 0 memory.grow)
	)`
	in := mustInstance(t, src)
	if got := call1(t, in, "size"); got != 1 {
		t.Fatalf("initial size = %d", got)
	}
	if got := call1(t, in, "grow", 1); got != 1 {
		t.Fatalf("grow returned %d, want previous size 1", got)
	}
	if got := call1(t, in, "size"); got != 2 {
		t.Fatalf("size after grow = %d", got)
	}
	// Growing past the declared max fails with -1.
	if got := int32(call1(t, in, "grow", 5)); got != -1 {
		t.Fatalf("over-max grow returned %d, want -1", got)
	}
	if got := call1(t, in, "size"); got != 2 {
		t.Fatalf("size changed after failed grow: %d", got)
	}
}

func TestHostMemoryCapOverridesModuleMax(t *testing.T) {
	src := `(module (memory (export "memory") 1 100)
	  (func (export "grow") (param i32) (result i32) local.get 0 memory.grow))`
	m := mustModule(t, src)
	cm, err := wasm.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	in, err := cm.Instantiate(nil, wasm.Config{MaxMemoryPages: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := int32(call1(t, in, "grow", 1)); got != 1 {
		t.Fatalf("grow to cap returned %d", got)
	}
	if got := int32(call1(t, in, "grow", 1)); got != -1 {
		t.Fatalf("grow beyond host cap returned %d, want -1", got)
	}
}

func TestBulkMemory(t *testing.T) {
	src := `(module
	  (memory (export "memory") 1)
	  (data (i32.const 0) "hello")
	  (func (export "copy") (param i32 i32 i32)
	    local.get 0 local.get 1 local.get 2 memory.copy)
	  (func (export "fill") (param i32 i32 i32)
	    local.get 0 local.get 1 local.get 2 memory.fill)
	  (func (export "l8") (param i32) (result i32) local.get 0 i32.load8_u)
	)`
	in := mustInstance(t, src)
	if _, err := in.Call("copy", 100, 0, 5); err != nil {
		t.Fatal(err)
	}
	if got := call1(t, in, "l8", 100); got != 'h' {
		t.Errorf("copied byte = %c", rune(got))
	}
	// Overlapping copy must behave like memmove.
	if _, err := in.Call("copy", 1, 0, 4); err != nil {
		t.Fatal(err)
	}
	if got := call1(t, in, "l8", 4); got != 'l' {
		t.Errorf("overlap copy: byte 4 = %c, want l", rune(got))
	}
	if _, err := in.Call("fill", 200, 'x', 10); err != nil {
		t.Fatal(err)
	}
	if got := call1(t, in, "l8", 209); got != 'x' {
		t.Errorf("fill: byte 209 = %c", rune(got))
	}
	wantTrap(t, in, wasm.TrapOutOfBoundsMemory, "copy", i32(65530), i32(0), i32(100))
	wantTrap(t, in, wasm.TrapOutOfBoundsMemory, "fill", i32(65530), i32(0), i32(100))
}

func TestGlobals(t *testing.T) {
	src := `(module
	  (global $counter (mut i64) (i64.const 10))
	  (global $ro f64 (f64.const 2.5))
	  (export "counter" (global $counter))
	  (func (export "bump") (result i64)
	    global.get $counter i64.const 1 i64.add global.set $counter
	    global.get $counter)
	  (func (export "ro") (result f64) global.get $ro)
	)`
	in := mustInstance(t, src)
	if got := int64(call1(t, in, "bump")); got != 11 {
		t.Fatalf("bump = %d", got)
	}
	if got := int64(call1(t, in, "bump")); got != 12 {
		t.Fatalf("bump = %d", got)
	}
	if v, ok := in.GlobalValue("counter"); !ok || v != 12 {
		t.Fatalf("exported global = %d (%v)", v, ok)
	}
	if got := math.Float64frombits(call1(t, in, "ro")); got != 2.5 {
		t.Fatalf("ro = %v", got)
	}
}

func TestCallStackExhaustion(t *testing.T) {
	src := `(module (func $r (export "r") (result i32) call $r))`
	in := mustInstance(t, src)
	wantTrap(t, in, wasm.TrapCallStackExhausted, "r")
}

func TestFuelMetering(t *testing.T) {
	src := `(module (func (export "spin")
	  (loop $top br $top)))`
	m := mustModule(t, src)
	cm, err := wasm.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	in, err := cm.Instantiate(nil, wasm.Config{MeterFuel: true})
	if err != nil {
		t.Fatal(err)
	}
	in.SetFuel(10_000)
	_, err = in.Call("spin")
	var trap *wasm.Trap
	if !errors.As(err, &trap) || trap.Code != wasm.TrapFuelExhausted {
		t.Fatalf("want fuel trap, got %v", err)
	}
	if in.InstrCount == 0 {
		t.Fatal("instruction counter not advanced")
	}
}

func TestSelectAndDrop(t *testing.T) {
	src := `(module
	  (func (export "sel") (param i32 i64 i64) (result i64)
	    local.get 1 local.get 2 local.get 0 select)
	  (func (export "dropper") (result i32)
	    i32.const 1 i32.const 2 drop)
	)`
	in := mustInstance(t, src)
	if got := call1(t, in, "sel", 1, 111, 222); got != 111 {
		t.Fatalf("select(true) = %d", got)
	}
	if got := call1(t, in, "sel", 0, 111, 222); got != 222 {
		t.Fatalf("select(false) = %d", got)
	}
	if got := call1(t, in, "dropper"); got != 1 {
		t.Fatalf("drop = %d", got)
	}
}

func TestLoopWithBlockParamsViaLocals(t *testing.T) {
	// Sum 1..n through a loop with explicit branching both ways.
	src := `(module (func (export "sum") (param $n i32) (result i32)
	  (local $i i32) (local $s i32)
	  block $exit
	    loop $top
	      local.get $i local.get $n i32.gt_u br_if $exit
	      local.get $s local.get $i i32.add local.set $s
	      local.get $i i32.const 1 i32.add local.set $i
	      br $top
	    end
	  end
	  local.get $s))`
	in := mustInstance(t, src)
	if got := call1(t, in, "sum", 100); got != 5050 {
		t.Fatalf("sum(100) = %d", got)
	}
	if got := call1(t, in, "sum", 0); got != 0 {
		t.Fatalf("sum(0) = %d", got)
	}
}

func TestStartFunctionRuns(t *testing.T) {
	src := `(module
	  (global $g (mut i32) (i32.const 0))
	  (export "g" (global $g))
	  (func $init (global.set $g (i32.const 99)))
	  (start $init)
	  (memory (export "memory") 1))`
	in := mustInstance(t, src)
	if v, _ := in.GlobalValue("g"); v != 99 {
		t.Fatalf("start did not run: g = %d", v)
	}
}

func TestCallIndirectTraps(t *testing.T) {
	src := `(module
	  (type $void (func))
	  (type $bin (func (param i32 i32) (result i32)))
	  (table 4 funcref)
	  (elem (i32.const 0) $nop)
	  (func $nop)
	  (func (export "bad_type") (result i32)
	    i32.const 1 i32.const 2 i32.const 0 call_indirect (type $bin))
	  (func (export "oob")
	    i32.const 9 call_indirect (type $void))
	  (func (export "uninit")
	    i32.const 2 call_indirect (type $void))
	)`
	in := mustInstance(t, src)
	wantTrap(t, in, wasm.TrapIndirectCallTypeMismatch, "bad_type")
	wantTrap(t, in, wasm.TrapOutOfBoundsTable, "oob")
	wantTrap(t, in, wasm.TrapUninitializedElement, "uninit")
}

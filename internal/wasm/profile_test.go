package wasm_test

import (
	"strings"
	"testing"

	"waran/internal/wasm"
	"waran/internal/wat"
)

func profiledInstance(t *testing.T, src string, p *wasm.Profile, tag string) *wasm.Instance {
	t.Helper()
	bin, err := wat.CompileToBinary(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := wasm.Decode(bin)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := wasm.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	in, err := cm.Instantiate(nil, wasm.Config{MeterFuel: true})
	if err != nil {
		t.Fatal(err)
	}
	in.SetFuel(1 << 30)
	if p != nil {
		in.SetProfile(p, tag)
	}
	return in
}

const callTreeWAT = `(module
  (func $leaf (export "leaf") (result i32)
    i32.const 1 i32.const 2 i32.add)
  (func $mid (export "mid") (result i32)
    call $leaf call $leaf i32.add)
  (func (export "root") (result i32)
    call $mid
    call $leaf
    i32.add)
  (func (export "tick")))`

func TestProfileAttributesSelfAndTotalFuel(t *testing.T) {
	p := wasm.NewProfile()
	in := profiledInstance(t, callTreeWAT, p, "")
	if _, err := in.Call("root"); err != nil {
		t.Fatal(err)
	}

	snap := p.Snapshot()
	byName := map[string]wasm.FuncProfile{}
	for _, f := range snap.Functions {
		byName[f.Name] = f
	}
	leaf, mid, root := byName["leaf"], byName["mid"], byName["root"]
	if leaf.Calls != 3 || mid.Calls != 1 || root.Calls != 1 {
		t.Fatalf("calls leaf=%d mid=%d root=%d, want 3/1/1", leaf.Calls, mid.Calls, root.Calls)
	}
	// A leaf has no children: self == total. Parents carry their children
	// in total but not in self.
	if leaf.SelfFuel == 0 || leaf.SelfFuel != leaf.TotalFuel {
		t.Fatalf("leaf fuel self=%d total=%d", leaf.SelfFuel, leaf.TotalFuel)
	}
	if mid.TotalFuel <= mid.SelfFuel {
		t.Fatalf("mid fuel self=%d total=%d: children not attributed", mid.SelfFuel, mid.TotalFuel)
	}
	// root's total covers everything the call executed; the tree's self
	// fuels must add up to it exactly (fuel is conserved).
	sum := leaf.SelfFuel + mid.SelfFuel + root.SelfFuel
	if root.TotalFuel != sum {
		t.Fatalf("root total %d != sum of selves %d", root.TotalFuel, sum)
	}
	if len(p.Top(2)) != 2 {
		t.Fatalf("Top(2) returned %d entries", len(p.Top(2)))
	}
}

func TestProfileFoldedStacksAndTags(t *testing.T) {
	p := wasm.NewProfile()
	in := profiledInstance(t, callTreeWAT, p, "rr")
	if _, err := in.Call("root"); err != nil {
		t.Fatal(err)
	}
	folded := p.Folded()
	for _, want := range []string{"rr:root ", "rr:root;rr:mid ", "rr:root;rr:mid;rr:leaf "} {
		if !strings.Contains(folded, want) {
			t.Errorf("folded output missing %q:\n%s", want, folded)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(folded), "\n") {
		if line == "" {
			continue
		}
		if i := strings.LastIndexByte(line, ' '); i < 0 {
			t.Errorf("folded line without weight: %q", line)
		}
	}
}

func TestProfileRecordsThroughTraps(t *testing.T) {
	src := `(module
	  (func $boom (export "boom") unreachable)
	  (func (export "root") call $boom))`
	p := wasm.NewProfile()
	in := profiledInstance(t, src, p, "")
	if _, err := in.Call("root"); err == nil {
		t.Fatal("trap did not error")
	}
	snap := p.Snapshot()
	calls := map[string]uint64{}
	for _, f := range snap.Functions {
		calls[f.Name] = f.Calls
	}
	if calls["root"] != 1 || calls["boom"] != 1 {
		t.Fatalf("trap unwound without recording: %+v", calls)
	}
}

func TestProfileResetAndSnapshotIsolation(t *testing.T) {
	p := wasm.NewProfile()
	in := profiledInstance(t, callTreeWAT, p, "")
	if _, err := in.Call("leaf"); err != nil {
		t.Fatal(err)
	}
	if got := p.Snapshot(); len(got.Functions) != 1 {
		t.Fatalf("%d functions, want 1", len(got.Functions))
	}
	p.Reset()
	if got := p.Snapshot(); len(got.Functions) != 0 {
		t.Fatalf("reset left %d functions", len(got.Functions))
	}
}

func TestFuncNameResolution(t *testing.T) {
	src := `(module
	  (import "env" "host" (func $h))
	  (func (export "visible") call $h)
	  (func $hidden nop)
	  (func (export "use") call $hidden))`
	bin, err := wat.CompileToBinary(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := wasm.Decode(bin)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := wasm.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := cm.FuncName(0); got != "env.host" {
		t.Errorf("import name %q", got)
	}
	if got := cm.FuncName(1); got != "visible" {
		t.Errorf("export name %q", got)
	}
	if got := cm.FuncName(2); got != "func[2]" {
		t.Errorf("anonymous name %q", got)
	}
}

// TestDisabledProfilerAddsZeroAllocs pins the hot-path contract: with no
// profile attached, invoking a plugin function allocates exactly what it
// did before the profiler existed — the added cost is one nil check.
func TestDisabledProfilerAddsZeroAllocs(t *testing.T) {
	never := profiledInstance(t, callTreeWAT, nil, "")
	detached := profiledInstance(t, callTreeWAT, wasm.NewProfile(), "")
	detached.SetProfile(nil, "") // explicitly disabled again
	if _, err := never.Call("tick"); err != nil {
		t.Fatal(err)
	}

	baseline := testing.AllocsPerRun(200, func() {
		if _, err := never.Call("tick"); err != nil {
			t.Fatal(err)
		}
	})
	disabled := testing.AllocsPerRun(200, func() {
		if _, err := detached.Call("tick"); err != nil {
			t.Fatal(err)
		}
	})
	if disabled != baseline {
		t.Fatalf("disabled profiler changes allocs/op: baseline %.1f, disabled %.1f", baseline, disabled)
	}
	if baseline != 0 {
		t.Fatalf("void export call allocates %.1f/op, want 0", baseline)
	}
}

// BenchmarkCallProfiler quantifies both sides of the switch for the docs:
// the disabled path must show 0 B/op.
func BenchmarkCallProfiler(b *testing.B) {
	build := func(b *testing.B, p *wasm.Profile) *wasm.Instance {
		b.Helper()
		bin, err := wat.CompileToBinary(callTreeWAT)
		if err != nil {
			b.Fatal(err)
		}
		m, err := wasm.Decode(bin)
		if err != nil {
			b.Fatal(err)
		}
		cm, err := wasm.Compile(m)
		if err != nil {
			b.Fatal(err)
		}
		in, err := cm.Instantiate(nil, wasm.Config{MeterFuel: true})
		if err != nil {
			b.Fatal(err)
		}
		in.SetFuel(1 << 40)
		if p != nil {
			in.SetProfile(p, "rr")
		}
		return in
	}
	b.Run("disabled", func(b *testing.B) {
		in := build(b, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := in.Call("tick"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		in := build(b, wasm.NewProfile())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := in.Call("tick"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

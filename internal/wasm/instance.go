package wasm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// HostFunc is a function the host exposes to sandboxed code. Errors returned
// by Fn surface to the guest as TrapHostError traps, aborting the call.
type HostFunc struct {
	Name string
	Type FuncType
	Fn   func(ctx *CallContext, args []uint64) ([]uint64, error)
}

// frameBuf holds reusable interpreter buffers for one call depth.
type frameBuf struct {
	locals []uint64
	stack  []uint64
	res    []uint64
	// env is the closure tier's per-depth environment, allocated lazily on
	// the first closure-tier call at this depth and reused afterwards.
	env *closEnv
}

// CallContext is passed to host functions and exposes the calling instance.
type CallContext struct {
	Instance *Instance
}

// Memory returns the calling instance's linear memory (nil if none).
func (c *CallContext) Memory() *Memory { return c.Instance.mem }

// Imports maps module name -> field name -> host function.
type Imports map[string]map[string]*HostFunc

// Config bounds the resources an instance may consume.
type Config struct {
	// MaxMemoryPages caps linear memory growth regardless of the module's
	// declared maximum. Zero means "module-defined only".
	MaxMemoryPages uint32
	// MaxCallDepth bounds guest recursion. Zero means the default (1000).
	MaxCallDepth int
	// MeterFuel enables instruction counting: each executed instruction
	// consumes one unit of the budget set via Instance.SetFuel.
	MeterFuel bool
	// Tier pins the instance to one execution tier. The zero value
	// (TierAuto) follows the module's default tier, so profile-guided
	// promotion can retier the instance between calls.
	Tier Tier
}

const defaultMaxCallDepth = 1000

// CompiledModule is a validated, flattened module ready for (repeated)
// instantiation. Compilation is done once; instances are cheap.
type CompiledModule struct {
	m     *Module
	funcs []*compiledFunc // local functions only
	types []FuncType      // signature per function-space index

	// Tier state: the default tier new outermost calls resolve to, and the
	// once-guards for the lazily built fused/closure code (see tier.go).
	defaultTier atomic.Int32
	fusedOnce   sync.Once
	closOnce    sync.Once
}

// compileCount counts Compile invocations process-wide. The module cache's
// compile-once guarantee is asserted against it in tests.
var compileCount atomic.Uint64 // metric-exempt: compile-once assertion hook, surfaced via the module-cache instruments

// CompileCount reports how many times Compile has run in this process.
func CompileCount() uint64 { return compileCount.Load() }

// Compile validates m (if not already validated) and flattens all function
// bodies.
func Compile(m *Module) (*CompiledModule, error) {
	compileCount.Add(1)
	if !m.validated {
		if err := Validate(m); err != nil {
			return nil, err
		}
	}
	cm := &CompiledModule{m: m}
	numFuncs := m.numImportedFuncs + len(m.Funcs)
	cm.types = make([]FuncType, numFuncs)
	for i := 0; i < numFuncs; i++ {
		ft, err := m.FuncTypeAt(uint32(i))
		if err != nil {
			return nil, err
		}
		cm.types[i] = ft
	}
	cm.funcs = make([]*compiledFunc, len(m.Funcs))
	for i := range m.Funcs {
		fi := uint32(m.numImportedFuncs + i)
		cf, err := compileFunction(m, fi, cm.types[fi], &m.Codes[i])
		if err != nil {
			return nil, err
		}
		cm.funcs[i] = cf
	}
	return cm, nil
}

// Module returns the underlying decoded module.
func (cm *CompiledModule) Module() *Module { return cm.m }

// Instance is a running sandbox: one linear memory, one table, globals, and
// an execution budget. Instances are not safe for concurrent use; the
// plugin layer serializes calls per instance.
type Instance struct {
	cm        *CompiledModule
	cfg       Config
	hostFuncs []*HostFunc // parallel to imported function indices
	globals   []uint64
	globalTyp []GlobalType
	mem       *Memory
	table     []uint32 // funcIdx+1 per element; 0 = uninitialized
	tableTyp  *TableType

	fuel        int64
	fuelEnabled bool
	deadline    int64 // unix nanos; 0 = none (see pollDeadline in tier.go)
	depth       int
	maxDepth    int

	// tierPin is the instance-level tier override (TierAuto = follow the
	// module default); tier is the tier resolved for the current outermost
	// call; tierCalls counts outermost calls served per tier (surfaced as
	// obs counters by the scheduler layer); deadlineEvents rate-limits
	// wall-clock sampling on back-edge/call-boundary deadline polls.
	tierPin        Tier
	tier           Tier
	tierCalls      [NumTiers + 1]uint64
	deadlineEvents uint32

	// frameBufs reuses locals/stack buffers per call depth. Instances are
	// single-threaded, and depth uniquely identifies the live frame even
	// across host-function re-entrancy, so reuse is safe.
	frameBufs []frameBuf

	// InstrCount accumulates executed instructions when MeterFuel is set;
	// useful for deterministic cost accounting in tests and benchmarks.
	InstrCount uint64

	// HostData lets embedding layers attach per-instance state reachable
	// from host functions via CallContext.
	HostData any

	// prof, when non-nil, routes every call through the shadow-stack
	// profiler (see profile.go). Nil costs one pointer check per call.
	prof *instProf
}

// Instantiate links the compiled module against imports, initializes memory,
// table and globals, runs the start function, and returns a ready instance.
func (cm *CompiledModule) Instantiate(imports Imports, cfg Config) (*Instance, error) {
	m := cm.m
	if cfg.MaxCallDepth == 0 {
		cfg.MaxCallDepth = defaultMaxCallDepth
	}
	in := &Instance{cm: cm, cfg: cfg, maxDepth: cfg.MaxCallDepth, fuel: -1}
	in.fuelEnabled = cfg.MeterFuel
	in.tierPin = cfg.Tier

	// Resolve imports. Only function imports are supported: plugin modules
	// own their memory and table, which keeps the sandbox boundary crisp.
	for _, im := range m.Imports {
		switch im.Kind {
		case ExternFunc:
			mod := imports[im.Module]
			hf := mod[im.Name]
			if hf == nil {
				return nil, fmt.Errorf("wasm: unresolved import %q.%q", im.Module, im.Name)
			}
			want := m.Types[im.TypeIx]
			if !hf.Type.Equal(want) {
				return nil, fmt.Errorf("wasm: import %q.%q has type %s, host provides %s", im.Module, im.Name, want, hf.Type)
			}
			in.hostFuncs = append(in.hostFuncs, hf)
		default:
			return nil, fmt.Errorf("wasm: unsupported import kind %s for %q.%q", im.Kind, im.Module, im.Name)
		}
	}

	// Globals.
	in.globalTyp = make([]GlobalType, len(m.Globals))
	in.globals = make([]uint64, len(m.Globals))
	for i, g := range m.Globals {
		in.globalTyp[i] = g.Type
		v, err := in.evalConst(g.Init)
		if err != nil {
			return nil, err
		}
		in.globals[i] = v
	}

	// Memory.
	if len(m.Mems) > 0 {
		lim := m.Mems[0].Limits
		maxPages := uint32(MaxPages)
		if lim.HasMax {
			maxPages = lim.Max
		}
		if cfg.MaxMemoryPages > 0 && cfg.MaxMemoryPages < maxPages {
			maxPages = cfg.MaxMemoryPages
		}
		if cfg.MaxMemoryPages > 0 && lim.Min > cfg.MaxMemoryPages {
			return nil, fmt.Errorf("wasm: module requires %d pages, host caps at %d", lim.Min, cfg.MaxMemoryPages)
		}
		in.mem = NewMemory(lim.Min, maxPages)
	}

	// Table.
	if len(m.Tables) > 0 {
		tt := m.Tables[0]
		in.tableTyp = &tt
		in.table = make([]uint32, tt.Limits.Min)
	}

	// Data segments.
	for i, ds := range m.Datas {
		off, err := in.evalConst(ds.Offset)
		if err != nil {
			return nil, err
		}
		if in.mem == nil {
			return nil, fmt.Errorf("wasm: data segment %d without memory", i)
		}
		if err := in.mem.Write(uint32(off), ds.Bytes); err != nil {
			return nil, fmt.Errorf("wasm: data segment %d: %w", i, err)
		}
	}

	// Element segments.
	for i, es := range m.Elems {
		off, err := in.evalConst(es.Offset)
		if err != nil {
			return nil, err
		}
		if in.table == nil {
			return nil, fmt.Errorf("wasm: element segment %d without table", i)
		}
		if uint64(uint32(off))+uint64(len(es.Funcs)) > uint64(len(in.table)) {
			return nil, fmt.Errorf("wasm: element segment %d out of bounds", i)
		}
		for j, fx := range es.Funcs {
			in.table[uint32(off)+uint32(j)] = fx + 1
		}
	}

	// Start function.
	if m.Start != nil {
		if _, err := in.call(*m.Start, nil); err != nil {
			return nil, fmt.Errorf("wasm: start function: %w", err)
		}
	}
	return in, nil
}

func (in *Instance) evalConst(ce ConstExpr) (uint64, error) {
	switch ce.Op {
	case OpI32Const, OpI64Const, OpF32Const, OpF64Const:
		return ce.Value, nil
	default:
		return 0, fmt.Errorf("wasm: unsupported constant expression opcode %s", OpcodeName(ce.Op))
	}
}

// Memory returns the instance's linear memory, or nil.
func (in *Instance) Memory() *Memory { return in.mem }

// Module returns the instance's module.
func (in *Instance) Module() *Module { return in.cm.m }

// SetFuel assigns the instruction budget consumed by subsequent calls when
// the instance was created with MeterFuel. Negative disables exhaustion.
func (in *Instance) SetFuel(f int64) { in.fuel = f }

// Fuel returns the remaining instruction budget.
func (in *Instance) Fuel() int64 { return in.fuel }

// SetDeadline arms a wall-clock execution deadline for subsequent calls,
// checked every 64 Ki executed instructions (requires MeterFuel). The zero
// time disarms it. Exceeding the deadline traps with TrapDeadlineExceeded.
func (in *Instance) SetDeadline(t time.Time) {
	if t.IsZero() {
		in.deadline = 0
		return
	}
	in.deadline = t.UnixNano()
}

// GlobalValue returns the raw value of the exported global with that name.
func (in *Instance) GlobalValue(name string) (uint64, bool) {
	for _, e := range in.cm.m.Exports {
		if e.Kind == ExternGlobal && e.Name == name {
			ix := int(e.Index) // no imported globals supported
			if ix < len(in.globals) {
				return in.globals[ix], true
			}
		}
	}
	return 0, false
}

// Call invokes the exported function by name. Arguments and results are raw
// 64-bit values (floats bit-cast). A sandbox fault is returned as *Trap.
func (in *Instance) Call(name string, args ...uint64) ([]uint64, error) {
	fx, ok := in.cm.m.ExportedFunc(name)
	if !ok {
		return nil, fmt.Errorf("wasm: no exported function %q", name)
	}
	return in.call(fx, args)
}

// CallIndex invokes a function by index in the module's function space.
func (in *Instance) CallIndex(funcIdx uint32, args ...uint64) ([]uint64, error) {
	return in.call(funcIdx, args)
}

// HasExport reports whether the module exports a function with that name.
func (in *Instance) HasExport(name string) bool {
	_, ok := in.cm.m.ExportedFunc(name)
	return ok
}

// FuncType returns the signature of the exported function.
func (in *Instance) FuncType(name string) (FuncType, bool) {
	fx, ok := in.cm.m.ExportedFunc(name)
	if !ok {
		return FuncType{}, false
	}
	return in.cm.types[fx], true
}

func (in *Instance) call(funcIdx uint32, args []uint64) (res []uint64, err error) {
	ft := in.cm.types[funcIdx]
	if len(args) != len(ft.Params) {
		return nil, fmt.Errorf("wasm: function %d takes %d arguments, got %d", funcIdx, len(ft.Params), len(args))
	}
	defer func() {
		if r := recover(); r != nil {
			if t, ok := r.(*Trap); ok {
				t.Func = funcIdx
				err = t
				return
			}
			panic(r)
		}
	}()
	if in.depth == 0 {
		// Resolve the execution tier once per outermost call: re-entrant
		// calls from host functions inherit it, and promotion (a module
		// default change) applies from the next outermost call.
		t := in.resolveTier()
		in.cm.ensureTier(t)
		in.tier = t
		in.tierCalls[t]++
	}
	out := in.invoke(funcIdx, args)
	// Internal result buffers are pooled per depth; hand external callers a
	// copy they may retain across later calls.
	if len(out) == 0 {
		return nil, nil
	}
	return append([]uint64(nil), out...), nil
}

// invoke dispatches to a host or guest function; panics with *Trap on fault.
func (in *Instance) invoke(funcIdx uint32, args []uint64) []uint64 {
	if in.prof != nil {
		return in.invokeProfiled(funcIdx, args)
	}
	return in.dispatch(funcIdx, args)
}

// dispatch is the unprofiled call path.
func (in *Instance) dispatch(funcIdx uint32, args []uint64) []uint64 {
	if in.depth >= in.maxDepth {
		panic(newTrap(TrapCallStackExhausted))
	}
	in.depth++
	defer func() { in.depth-- }()

	// Call boundaries are deadline poll points: short guests never reach
	// the interpreter's periodic 64 Ki-instruction check, but any guest
	// that keeps running must either loop (back-edge polls) or call.
	if in.deadline != 0 {
		in.pollDeadline()
	}

	nImp := in.cm.m.numImportedFuncs
	if int(funcIdx) < nImp {
		hf := in.hostFuncs[funcIdx]
		res, err := hf.Fn(&CallContext{Instance: in}, args)
		if err != nil {
			if t, ok := err.(*Trap); ok {
				panic(t)
			}
			panic(&Trap{Code: TrapHostError, Wrapped: err})
		}
		if len(res) != len(hf.Type.Results) {
			panic(&Trap{Code: TrapHostError, Wrapped: fmt.Errorf("host function %q returned %d values, want %d", hf.Name, len(res), len(hf.Type.Results))})
		}
		// A stalled host call must surface the deadline immediately on
		// return — the call itself dwarfs the unconditional clock read.
		if in.deadline != 0 {
			in.checkDeadlineNow()
		}
		return res
	}

	f := in.cm.funcs[int(funcIdx)-nImp]
	switch in.tier {
	case TierClosure:
		if f.clos != nil {
			return in.execClosures(f.clos, args)
		}
	case TierFused:
		if f.fused != nil {
			return in.exec(f, f.fused, args)
		}
	}
	return in.exec(f, f.code, args)
}

package wasm_test

import (
	"strings"
	"testing"
	"time"

	"waran/internal/wasm"
	"waran/internal/wat"
)

// TestInstanceAccessors covers the host-facing inspection API.
func TestInstanceAccessors(t *testing.T) {
	src := `(module
	  (memory (export "memory") 2 8)
	  (func $add (export "add") (param i32 i32) (result i32)
	    local.get 0 local.get 1 i32.add)
	  (func (export "noargs") (result i64) i64.const 3))`
	in := mustInstance(t, src)

	if in.Module() == nil {
		t.Fatal("Module() nil")
	}
	mem := in.Memory()
	if mem == nil || mem.Len() != 2*wasm.PageSize {
		t.Fatalf("memory len = %v", mem)
	}
	if mem.MaxPages() != 8 {
		t.Fatalf("max pages = %d", mem.MaxPages())
	}
	if !in.HasExport("add") || in.HasExport("nope") {
		t.Fatal("HasExport wrong")
	}
	ft, ok := in.FuncType("add")
	if !ok || len(ft.Params) != 2 || ft.Params[0] != wasm.ValI32 {
		t.Fatalf("FuncType = %v, %v", ft, ok)
	}
	// CallIndex: exported "add" is function index 0.
	res, err := in.CallIndex(0, 4, 5)
	if err != nil || res[0] != 9 {
		t.Fatalf("CallIndex = %v, %v", res, err)
	}
	// Wrong arity is an error, not a panic.
	if _, err := in.Call("add", 1); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	// Fuel accounting is visible.
	in.SetFuel(100)
	if in.Fuel() != 100 {
		t.Fatalf("Fuel = %d", in.Fuel())
	}
	// Zero deadline disarms.
	in.SetDeadline(time.Time{})
	if _, err := in.Call("noargs"); err != nil {
		t.Fatal(err)
	}
}

// TestMemoryHostAccessors covers the error-returning host-facing memory API.
func TestMemoryHostAccessors(t *testing.T) {
	m := wasm.NewMemory(1, 2)
	if err := m.WriteUint32(8, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	if v, err := m.ReadUint32(8); err != nil || v != 0xDEADBEEF {
		t.Fatalf("u32 = %#x, %v", v, err)
	}
	if err := m.WriteUint64(16, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	if v, err := m.ReadUint64(16); err != nil || v != 0x1122334455667788 {
		t.Fatalf("u64 = %#x, %v", v, err)
	}
	// Out-of-bounds host access errors (never panics).
	if _, err := m.ReadUint32(wasm.PageSize - 2); err == nil {
		t.Fatal("OOB u32 read accepted")
	}
	if err := m.WriteUint64(wasm.PageSize-4, 1); err == nil {
		t.Fatal("OOB u64 write accepted")
	}
	if _, err := m.Read(10, wasm.PageSize); err == nil {
		t.Fatal("OOB bulk read accepted")
	}
	if err := m.Write(wasm.PageSize-1, []byte{1, 2}); err == nil {
		t.Fatal("OOB bulk write accepted")
	}
	// Reset shrinks/zeroes.
	if _, ok := m.Grow(1); !ok {
		t.Fatal("grow failed")
	}
	m.Reset(1)
	if m.Size() != 1 {
		t.Fatalf("size after reset = %d", m.Size())
	}
	if v, _ := m.ReadUint32(8); v != 0 {
		t.Fatalf("reset did not zero: %#x", v)
	}
	// NewMemory clamps an absurd max.
	huge := wasm.NewMemory(0, 1<<31)
	if huge.MaxPages() != wasm.MaxPages {
		t.Fatalf("max not clamped: %d", huge.MaxPages())
	}
}

// TestGlobalConstExprForms exercises every constant-expression opcode
// through decode, encode, disassembly and instantiation.
func TestGlobalConstExprForms(t *testing.T) {
	src := `(module
	  (global $a i32 (i32.const -1))
	  (global $b i64 (i64.const 123456789012345))
	  (global $c f32 (f32.const 1.5))
	  (global $d f64 (f64.const -2.5))
	  (export "a" (global $a))
	  (export "b" (global $b))
	  (export "c" (global $c))
	  (export "d" (global $d)))`
	bin, err := wat.CompileToBinary(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := wasm.Decode(bin)
	if err != nil {
		t.Fatal(err)
	}
	// Disassembly must render all four constant forms.
	text := wasm.Disassemble(m)
	for _, want := range []string{"i32.const -1", "i64.const 123456789012345", "f32.const 1.5", "f64.const -2.5"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q", want)
		}
	}
	cm, err := wasm.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	in, err := cm.Instantiate(nil, wasm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := in.GlobalValue("a"); int32(uint32(v)) != -1 {
		t.Errorf("a = %d", int32(uint32(v)))
	}
	if v, _ := in.GlobalValue("b"); int64(v) != 123456789012345 {
		t.Errorf("b = %d", int64(v))
	}
}

// TestDeadCodeVariants: the compiler's dead-code skipper must cope with
// every instruction class appearing after an unconditional branch.
func TestDeadCodeVariants(t *testing.T) {
	src := `(module
	  (memory 1)
	  (func $h (param i32) (result i32) local.get 0)
	  (table 1 funcref)
	  (func (export "f") (result i32)
	    block (result i32)
	      i32.const 42
	      br 0
	      ;; everything below is dead but must parse/compile
	      drop
	      i32.const 1
	      if
	        nop
	      else
	        nop
	      end
	      block
	        loop
	          br 0
	        end
	      end
	      i32.const 0
	      call $h
	      drop
	      i32.const 0
	      i32.const 0
	      call_indirect (param i32) (result i32)
	      drop
	      i64.const 9 drop
	      f32.const 1.5 drop
	      f64.const 2.5 drop
	      i32.const 0 i32.load drop
	      memory.size drop
	      i32.const 0 i32.const 0 i32.const 0 memory.fill
	      i32.const 0 i32.const 0 i32.const 0 memory.copy
	      i32.const 0
	      br_table 0 0
	    end))`
	in := mustInstance(t, src)
	if got := call1(t, in, "f"); got != 42 {
		t.Fatalf("f = %d", got)
	}
}

// TestReturnInsideNestedBlocks covers the return-from-depth path of the
// compiler (skipDead at nesting > 0).
func TestReturnInsideNestedBlocks(t *testing.T) {
	src := `(module (func (export "f") (param i32) (result i32)
	  block
	    block
	      local.get 0
	      if
	        i32.const 11
	        return
	      end
	    end
	  end
	  i32.const 22))`
	in := mustInstance(t, src)
	if got := call1(t, in, "f", 1); got != 11 {
		t.Fatalf("f(1) = %d", got)
	}
	if got := call1(t, in, "f", 0); got != 22 {
		t.Fatalf("f(0) = %d", got)
	}
}

// TestCallResultsSurviveSubsequentCalls: the public API must hand out
// results that remain valid after further calls (internal buffers are
// pooled, so this guards the copy at the boundary).
func TestCallResultsSurviveSubsequentCalls(t *testing.T) {
	src := `(module (func (export "id") (param i64) (result i64) local.get 0))`
	in := mustInstance(t, src)
	first, err := in.Call("id", 111)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Call("id", 222); err != nil {
		t.Fatal(err)
	}
	if first[0] != 111 {
		t.Fatalf("earlier result mutated by later call: %d", first[0])
	}
}

package wasm_test

import (
	"strings"
	"testing"

	"waran/internal/wasm"
)

func TestDisassembleFullModule(t *testing.T) {
	m := mustModule(t, fullFeatureWAT)
	if err := wasm.Validate(m); err != nil {
		t.Fatal(err)
	}
	text := wasm.Disassemble(m)
	for _, want := range []string{
		`(import "env" "host" (func (type`,
		"(memory 2 8)",
		"(table 4 funcref)",
		"(global (;0;) (mut i64) (i64.const -5))",
		`(export "memory" (memory 0))`,
		`(export "run" (func`,
		"(start",
		"(elem (i32.const 1) func",
		"i32.add",
		"local.get 0",
		"(data (i32.const 16) \"hello\\00world\")",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestDisassembleControlFlowIndentation(t *testing.T) {
	src := `(module (func (param i32) (result i32)
	  (if (result i32) (local.get 0)
	    (then i32.const 1)
	    (else
	      block (result i32)
	        loop
	          i32.const 5
	          br 1
	        end
	        unreachable
	      end))))`
	m := mustModule(t, src)
	if err := wasm.Validate(m); err != nil {
		t.Fatal(err)
	}
	text := wasm.Disassemble(m)
	for _, want := range []string{"if (result i32)", "else", "block (result i32)", "loop", "br 1", "unreachable"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	// The loop body must be indented deeper than the function body.
	for _, line := range strings.Split(text, "\n") {
		if strings.HasSuffix(line, "br 1") && !strings.HasPrefix(line, "          ") {
			t.Errorf("br 1 not nested: %q", line)
		}
	}
}

func TestDisassembleMemArgs(t *testing.T) {
	src := `(module (memory 1) (func (result i32)
	  i32.const 0 i32.load offset=32))`
	m := mustModule(t, src)
	text := wasm.Disassemble(m)
	if !strings.Contains(text, "i32.load offset=32") {
		t.Fatalf("memarg lost:\n%s", text)
	}
}

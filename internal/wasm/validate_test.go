package wasm_test

import (
	"strings"
	"testing"

	"waran/internal/wasm"
	"waran/internal/wat"
)

// wantInvalid asserts that the WAT source parses but fails validation with
// a message containing substr.
func wantInvalid(t *testing.T, src, substr string) {
	t.Helper()
	m, err := wat.Compile(src)
	if err != nil {
		t.Fatalf("wat parse failed (should fail in validation instead): %v", err)
	}
	err = wasm.Validate(m)
	if err == nil {
		t.Fatalf("validation unexpectedly passed")
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("error %q does not mention %q", err, substr)
	}
}

func TestValidateTypeMismatch(t *testing.T) {
	wantInvalid(t, `(module (func (result i32) i64.const 1))`, "type mismatch")
}

func TestValidateStackUnderflow(t *testing.T) {
	wantInvalid(t, `(module (func (result i32) i32.add))`, "underflow")
}

func TestValidateExcessValues(t *testing.T) {
	wantInvalid(t, `(module (func i32.const 1))`, "values left on stack")
}

func TestValidateBranchDepth(t *testing.T) {
	wantInvalid(t, `(module (func br 3))`, "depth")
}

func TestValidateBadLocal(t *testing.T) {
	wantInvalid(t, `(module (func (result i32) local.get 2))`, "local index")
}

func TestValidateImmutableGlobalSet(t *testing.T) {
	wantInvalid(t, `(module
	  (global $g i32 (i32.const 1))
	  (func i32.const 2 global.set $g))`, "immutable")
}

func TestValidateIfWithoutElseNeedsBalance(t *testing.T) {
	// An if that produces a result without an else is invalid.
	wantInvalid(t, `(module (func (result i32)
	  i32.const 1
	  if (result i32) i32.const 2 end))`, "if without else")
}

func TestValidateMissingMemory(t *testing.T) {
	wantInvalid(t, `(module (func (result i32) i32.const 0 i32.load))`, "no memory")
}

func TestValidateAlignmentTooLarge(t *testing.T) {
	wantInvalid(t, `(module (memory 1)
	  (func (result i32) i32.const 0 i32.load align=8))`, "alignment")
}

func TestValidateCallArity(t *testing.T) {
	wantInvalid(t, `(module
	  (func $f (param i32 i32))
	  (func i32.const 1 call $f))`, "underflow")
}

func TestValidateSelectTypeMismatch(t *testing.T) {
	wantInvalid(t, `(module (func (result i32)
	  i32.const 1 i64.const 2 i32.const 0 select drop i32.const 0))`, "select")
}

func TestValidateBrTableInconsistentArity(t *testing.T) {
	wantInvalid(t, `(module (func (result i32)
	  block $a (result i32)
	    block $b
	      i32.const 1
	      i32.const 0
	      br_table $a $b
	    end
	    i32.const 2
	  end))`, "br_table")
}

func TestValidateStartSignature(t *testing.T) {
	wantInvalid(t, `(module
	  (func $s (param i32))
	  (start $s))`, "start")
}

func TestValidateUnreachableIsPolymorphic(t *testing.T) {
	// After unreachable the stack is polymorphic: this must validate.
	src := `(module (func (result i32)
	  unreachable
	  i32.add))`
	m, err := wat.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := wasm.Validate(m); err != nil {
		t.Fatalf("polymorphic stack rejected: %v", err)
	}
}

func TestValidateDeadCodeStillTypeChecked(t *testing.T) {
	// Dead code after br must still be syntactically valid; a bad local
	// index there is an error.
	wantInvalid(t, `(module (func
	  block
	    br 0
	    local.get 9 drop
	  end))`, "local index")
}

func TestValidateBlockResultPropagation(t *testing.T) {
	src := `(module (func (export "f") (result i32)
	  block (result i32)
	    i32.const 41
	  end
	  i32.const 1
	  i32.add))`
	in := mustInstance(t, src)
	if got := call1(t, in, "f"); got != 42 {
		t.Fatalf("got %d", got)
	}
}

func TestValidateLoopResult(t *testing.T) {
	src := `(module (func (export "f") (result i32)
	  loop (result i32)
	    i32.const 7
	  end))`
	in := mustInstance(t, src)
	if got := call1(t, in, "f"); got != 7 {
		t.Fatalf("got %d", got)
	}
}

func TestValidateExportIndexRange(t *testing.T) {
	m := &wasm.Module{
		Exports: []wasm.Export{{Name: "f", Kind: wasm.ExternFunc, Index: 0}},
	}
	if err := wasm.Validate(m); err == nil {
		t.Fatal("export of missing function accepted")
	}
}

func TestValidateElemSegmentBounds(t *testing.T) {
	// Out-of-range elem offsets surface at instantiation (runtime table
	// size check); out-of-range function indices must fail validation.
	m := &wasm.Module{
		Types:  []wasm.FuncType{{}},
		Funcs:  []uint32{0},
		Codes:  []wasm.Code{{Body: []byte{0x0B}}},
		Tables: []wasm.TableType{{Elem: wasm.ValFuncref, Limits: wasm.Limits{Min: 4}}},
		Elems:  []wasm.ElemSegment{{Offset: wasm.ConstExpr{Op: wasm.OpI32Const}, Funcs: []uint32{7}}},
	}
	if err := wasm.Validate(m); err == nil {
		t.Fatal("elem referencing missing function accepted")
	}
}

func TestValidateElemOverflowAtInstantiation(t *testing.T) {
	src := `(module
	  (table 1 funcref)
	  (elem (i32.const 0) $f $f)
	  (func $f))`
	m, err := wat.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := wasm.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cm.Instantiate(nil, wasm.Config{}); err == nil {
		t.Fatal("oversized element segment accepted at instantiation")
	}
}

func TestValidateDataSegmentOOBAtInstantiation(t *testing.T) {
	src := `(module (memory 1) (data (i32.const 65530) "0123456789"))`
	m, err := wat.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := wasm.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cm.Instantiate(nil, wasm.Config{}); err == nil {
		t.Fatal("out-of-bounds data segment accepted")
	}
}

func TestInstantiateUnresolvedImport(t *testing.T) {
	src := `(module (import "env" "f" (func)) (memory 1))`
	m, err := wat.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := wasm.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cm.Instantiate(nil, wasm.Config{}); err == nil {
		t.Fatal("unresolved import accepted")
	}
}

func TestInstantiateImportTypeMismatch(t *testing.T) {
	src := `(module (import "env" "f" (func (param i32))) (memory 1))`
	m, err := wat.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := wasm.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	imports := wasm.Imports{"env": {"f": &wasm.HostFunc{
		Name: "f",
		Type: wasm.FuncType{Params: []wasm.ValType{wasm.ValI64}},
		Fn:   func(*wasm.CallContext, []uint64) ([]uint64, error) { return nil, nil },
	}}}
	if _, err := cm.Instantiate(imports, wasm.Config{}); err == nil {
		t.Fatal("import signature mismatch accepted")
	}
}

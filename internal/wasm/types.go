// Package wasm implements a self-contained WebAssembly runtime: a binary
// decoder and encoder, a full stack-type validator, and a sandboxed
// interpreter with linear memory isolation, trap handling, host functions
// and fuel metering.
//
// The implementation covers the WebAssembly MVP (1.0) instruction set plus
// the sign-extension operators, the non-trapping float-to-int conversions,
// and the memory.copy / memory.fill bulk-memory instructions, which is the
// feature set produced by mainstream compilers targeting plugins.
//
// The runtime is the security substrate of WA-RAN: untrusted MVNO and xApp
// plugin bytecode executes inside an Instance whose linear memory is bounds
// checked on every access and whose execution is metered, so a misbehaving
// plugin can trap or exhaust its fuel budget without affecting the host gNB
// or RIC process.
package wasm

import "fmt"

// ValType is the type of a WebAssembly value.
type ValType byte

// Value types, encoded as in the binary format.
const (
	ValI32     ValType = 0x7F
	ValI64     ValType = 0x7E
	ValF32     ValType = 0x7D
	ValF64     ValType = 0x7C
	ValFuncref ValType = 0x70
)

// String returns the textual-format name of the value type.
func (v ValType) String() string {
	switch v {
	case ValI32:
		return "i32"
	case ValI64:
		return "i64"
	case ValF32:
		return "f32"
	case ValF64:
		return "f64"
	case ValFuncref:
		return "funcref"
	default:
		return fmt.Sprintf("valtype(0x%02x)", byte(v))
	}
}

// FuncType describes the signature of a function: parameter and result types.
type FuncType struct {
	Params  []ValType
	Results []ValType
}

// Equal reports whether two function types are structurally identical.
func (t FuncType) Equal(o FuncType) bool {
	if len(t.Params) != len(o.Params) || len(t.Results) != len(o.Results) {
		return false
	}
	for i, p := range t.Params {
		if o.Params[i] != p {
			return false
		}
	}
	for i, r := range t.Results {
		if o.Results[i] != r {
			return false
		}
	}
	return true
}

// String renders the signature in WAT-like notation, e.g. "(i32 i32) -> (i32)".
func (t FuncType) String() string {
	s := "("
	for i, p := range t.Params {
		if i > 0 {
			s += " "
		}
		s += p.String()
	}
	s += ") -> ("
	for i, r := range t.Results {
		if i > 0 {
			s += " "
		}
		s += r.String()
	}
	return s + ")"
}

// Limits bounds the size of a memory or table. Max is only meaningful when
// HasMax is true.
type Limits struct {
	Min    uint32
	Max    uint32
	HasMax bool
}

// MemoryType describes a linear memory: limits in units of 64 KiB pages.
type MemoryType struct {
	Limits Limits
}

// TableType describes a table of references.
type TableType struct {
	Elem   ValType // ValFuncref in the MVP
	Limits Limits
}

// GlobalType describes a global variable.
type GlobalType struct {
	Type    ValType
	Mutable bool
}

// Global pairs a global's type with its constant initializer expression.
type Global struct {
	Type GlobalType
	Init ConstExpr
}

// ConstExpr is a constant initializer: either a numeric constant or a
// reference to an (imported, hence already initialized) global.
type ConstExpr struct {
	Op       byte   // OpI32Const, OpI64Const, OpF32Const, OpF64Const, OpGlobalGet
	Value    uint64 // raw bits for consts; global index for global.get
	GlobalIx uint32
}

// ExternKind discriminates imports and exports.
type ExternKind byte

// Extern kinds, encoded as in the binary format.
const (
	ExternFunc   ExternKind = 0x00
	ExternTable  ExternKind = 0x01
	ExternMemory ExternKind = 0x02
	ExternGlobal ExternKind = 0x03
)

// String returns the binary-format keyword for the kind.
func (k ExternKind) String() string {
	switch k {
	case ExternFunc:
		return "func"
	case ExternTable:
		return "table"
	case ExternMemory:
		return "memory"
	case ExternGlobal:
		return "global"
	default:
		return fmt.Sprintf("externkind(0x%02x)", byte(k))
	}
}

// Import names an external value the module requires at instantiation.
type Import struct {
	Module string
	Name   string
	Kind   ExternKind
	// One of the following is meaningful, per Kind.
	TypeIx uint32 // ExternFunc: index into Types
	Table  TableType
	Mem    MemoryType
	Global GlobalType
}

// Export makes a module-internal value available to the host.
type Export struct {
	Name  string
	Kind  ExternKind
	Index uint32
}

// Code is the body of a locally defined function.
type Code struct {
	Locals []ValType // expanded declaration list (not run-length encoded)
	Body   []byte    // the expression, ending in OpEnd
}

// ElemSegment pre-populates a table with function references.
type ElemSegment struct {
	TableIx uint32
	Offset  ConstExpr
	Funcs   []uint32
}

// DataSegment pre-populates linear memory.
type DataSegment struct {
	MemIx  uint32
	Offset ConstExpr
	Bytes  []byte
}

// Module is a decoded, structurally valid WebAssembly module. Run Validate
// before instantiating to ensure the code section is well typed.
type Module struct {
	Types   []FuncType
	Imports []Import
	Funcs   []uint32 // type index per locally defined function
	Tables  []TableType
	Mems    []MemoryType
	Globals []Global
	Exports []Export
	Start   *uint32
	Elems   []ElemSegment
	Codes   []Code // parallel to Funcs
	Datas   []DataSegment

	// Name from the custom "name" section, if present (debugging aid).
	Name string

	// Populated by Validate; used by the compiler and instantiation.
	numImportedFuncs   int
	numImportedTables  int
	numImportedMems    int
	numImportedGlobals int
	validated          bool
}

// NumImportedFuncs returns the number of imported functions; function index
// space is imports first, then local definitions.
func (m *Module) NumImportedFuncs() int {
	n := 0
	for _, im := range m.Imports {
		if im.Kind == ExternFunc {
			n++
		}
	}
	return n
}

// FuncTypeAt resolves the signature of the function with the given index in
// the module's function index space (imports first).
func (m *Module) FuncTypeAt(idx uint32) (FuncType, error) {
	n := 0
	for _, im := range m.Imports {
		if im.Kind != ExternFunc {
			continue
		}
		if n == int(idx) {
			if int(im.TypeIx) >= len(m.Types) {
				return FuncType{}, fmt.Errorf("wasm: import %q.%q has type index %d out of range", im.Module, im.Name, im.TypeIx)
			}
			return m.Types[im.TypeIx], nil
		}
		n++
	}
	local := int(idx) - n
	if local < 0 || local >= len(m.Funcs) {
		return FuncType{}, fmt.Errorf("wasm: function index %d out of range", idx)
	}
	tix := m.Funcs[local]
	if int(tix) >= len(m.Types) {
		return FuncType{}, fmt.Errorf("wasm: function %d has type index %d out of range", idx, tix)
	}
	return m.Types[tix], nil
}

// ExportedFunc returns the function index exported under name.
func (m *Module) ExportedFunc(name string) (uint32, bool) {
	for _, e := range m.Exports {
		if e.Kind == ExternFunc && e.Name == name {
			return e.Index, true
		}
	}
	return 0, false
}

// PageSize is the WebAssembly linear memory page size in bytes.
const PageSize = 65536

// MaxPages is the architectural maximum number of pages (4 GiB).
const MaxPages = 65536

package wasm_test

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"waran/internal/wasm"
)

func TestF32Arithmetic(t *testing.T) {
	ops := []string{"f32.add", "f32.sub", "f32.mul", "f32.div", "f32.min", "f32.max", "f32.copysign"}
	in := mustInstance(t, binOpModule("f32", "f32", ops))
	check := func(op string, a, b, want float32) {
		t.Helper()
		got := math.Float32frombits(uint32(call1(t, in, op, f32(a), f32(b))))
		if want != want { // NaN
			if got == got {
				t.Errorf("%s(%v, %v) = %v, want NaN", op, a, b, got)
			}
			return
		}
		if math.Float32bits(got) != math.Float32bits(want) {
			t.Errorf("%s(%v, %v) = %v, want %v", op, a, b, got, want)
		}
	}
	nan32 := float32(math.NaN())
	negZero := float32(math.Copysign(0, -1))
	check("f32.add", 0.5, 0.25, 0.75)
	check("f32.sub", 1, 0.5, 0.5)
	check("f32.mul", 3, -2, -6)
	check("f32.div", 1, 0, float32(math.Inf(1)))
	check("f32.div", 0, 0, nan32)
	check("f32.min", negZero, 0, negZero)
	check("f32.max", negZero, 0, 0)
	check("f32.min", nan32, 1, nan32)
	check("f32.copysign", 2, -0.5, -2)
	// Single-precision rounding must happen at every step: the f32 sum of
	// 0.1 and 0.2 differs from the f64 one.
	sum := math.Float32frombits(uint32(call1(t, in, "f32.add", f32(0.1), f32(0.2))))
	if sum != float32(0.1)+float32(0.2) {
		t.Errorf("f32 rounding: got %v", sum)
	}
}

func TestF32Unary(t *testing.T) {
	ops := []string{"f32.abs", "f32.neg", "f32.ceil", "f32.floor", "f32.trunc", "f32.nearest", "f32.sqrt"}
	in := mustInstance(t, unOpModule("f32", "f32", ops))
	check := func(op string, a, want float32) {
		t.Helper()
		got := math.Float32frombits(uint32(call1(t, in, op, f32(a))))
		if math.Float32bits(got) != math.Float32bits(want) {
			t.Errorf("%s(%v) = %v, want %v", op, a, got, want)
		}
	}
	check("f32.abs", -1.5, 1.5)
	check("f32.neg", -1.5, 1.5)
	check("f32.ceil", 1.2, 2)
	check("f32.floor", -1.2, -2)
	check("f32.trunc", 1.9, 1)
	check("f32.nearest", 0.5, 0)
	check("f32.nearest", 1.5, 2)
	check("f32.sqrt", 16, 4)
}

func TestF32Comparisons(t *testing.T) {
	ops := []string{"f32.eq", "f32.ne", "f32.lt", "f32.gt", "f32.le", "f32.ge"}
	in := mustInstance(t, binOpModule("f32", "i32", ops))
	nan := float32(math.NaN())
	cases := []struct {
		op   string
		a, b float32
		want uint64
	}{
		{"f32.eq", 1, 1, 1},
		{"f32.eq", nan, nan, 0}, // NaN != NaN
		{"f32.ne", nan, nan, 1},
		{"f32.lt", -1, 1, 1},
		{"f32.lt", nan, 1, 0}, // comparisons with NaN are false
		{"f32.gt", 2, 1, 1},
		{"f32.le", 1, 1, 1},
		{"f32.ge", 0, float32(math.Copysign(0, -1)), 1}, // -0 == +0
	}
	for _, tc := range cases {
		if got := call1(t, in, tc.op, f32(tc.a), f32(tc.b)); got != tc.want {
			t.Errorf("%s(%v, %v) = %d, want %d", tc.op, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestF32Conversions(t *testing.T) {
	src := `(module
	  (func (export "c_i32s") (param i32) (result f32) local.get 0 f32.convert_i32_s)
	  (func (export "c_i32u") (param i32) (result f32) local.get 0 f32.convert_i32_u)
	  (func (export "c_i64s") (param i64) (result f32) local.get 0 f32.convert_i64_s)
	  (func (export "t_s") (param f32) (result i32) local.get 0 i32.trunc_f32_s)
	  (func (export "sat") (param f32) (result i32) local.get 0 i32.trunc_sat_f32_u)
	  (func (export "reinterp") (param f32) (result i32) local.get 0 i32.reinterpret_f32)
	)`
	in := mustInstance(t, src)
	if got := math.Float32frombits(uint32(call1(t, in, "c_i32s", i32(-7)))); got != -7 {
		t.Errorf("convert_i32_s = %v", got)
	}
	if got := math.Float32frombits(uint32(call1(t, in, "c_i32u", i32(-1)))); got != 4.2949673e9 {
		t.Errorf("convert_i32_u(0xFFFFFFFF) = %v", got)
	}
	if got := math.Float32frombits(uint32(call1(t, in, "c_i64s", i64(1<<40)))); got != float32(1<<40) {
		t.Errorf("convert_i64_s = %v", got)
	}
	if got := int32(call1(t, in, "t_s", f32(-3.7))); got != -3 {
		t.Errorf("trunc_f32_s = %d", got)
	}
	wantTrap(t, in, wasm.TrapIntegerOverflow, "t_s", f32(3e9))
	if got := call1(t, in, "sat", f32(6e9)); got != math.MaxUint32 {
		t.Errorf("trunc_sat_f32_u = %d", got)
	}
	if got := call1(t, in, "reinterp", f32(1.0)); got != 0x3F800000 {
		t.Errorf("reinterpret = %#x", got)
	}
}

func TestDeepNesting(t *testing.T) {
	// 200 nested blocks with a br out of the innermost to the outermost.
	var b strings.Builder
	b.WriteString(`(module (func (export "deep") (result i32)` + "\n")
	const depth = 200
	for i := 0; i < depth; i++ {
		b.WriteString("block\n")
	}
	fmt.Fprintf(&b, "br %d\n", depth-1)
	for i := 0; i < depth; i++ {
		b.WriteString("end\n")
	}
	b.WriteString("i32.const 77))")
	in := mustInstance(t, b.String())
	if got := call1(t, in, "deep"); got != 77 {
		t.Fatalf("deep = %d", got)
	}
}

func TestNestedIfElseChains(t *testing.T) {
	src := `(module (func (export "sign") (param i32) (result i32)
	  (if (result i32) (i32.lt_s (local.get 0) (i32.const 0))
	    (then (i32.const -1))
	    (else
	      (if (result i32) (i32.gt_s (local.get 0) (i32.const 0))
	        (then (i32.const 1))
	        (else (i32.const 0)))))))`
	in := mustInstance(t, src)
	for arg, want := range map[int32]int32{-5: -1, 0: 0, 9: 1} {
		if got := int32(call1(t, in, "sign", i32(arg))); got != want {
			t.Errorf("sign(%d) = %d, want %d", arg, got, want)
		}
	}
}

func TestBrIfToLoopContinues(t *testing.T) {
	// Collatz step count: loop with conditional back-edge.
	src := `(module (func (export "collatz") (param $n i32) (result i32)
	  (local $steps i32)
	  block $done
	    loop $top
	      local.get $n i32.const 1 i32.le_u br_if $done
	      (if (i32.and (local.get $n) (i32.const 1))
	        (then (local.set $n (i32.add (i32.mul (local.get $n) (i32.const 3)) (i32.const 1))))
	        (else (local.set $n (i32.div_u (local.get $n) (i32.const 2)))))
	      (local.set $steps (i32.add (local.get $steps) (i32.const 1)))
	      br $top
	    end
	  end
	  local.get $steps))`
	in := mustInstance(t, src)
	if got := call1(t, in, "collatz", 27); got != 111 {
		t.Fatalf("collatz(27) = %d, want 111", got)
	}
	if got := call1(t, in, "collatz", 1); got != 0 {
		t.Fatalf("collatz(1) = %d", got)
	}
}

func TestLocalTeeKeepsValue(t *testing.T) {
	src := `(module (func (export "f") (param i32) (result i32)
	  (local $x i32)
	  local.get 0
	  local.tee $x
	  local.get $x
	  i32.add))`
	in := mustInstance(t, src)
	if got := call1(t, in, "f", 21); got != 42 {
		t.Fatalf("tee = %d", got)
	}
}

func TestSelectOn64BitValues(t *testing.T) {
	src := `(module (func (export "sel") (param i32) (result f64)
	  f64.const 1.5 f64.const 2.5 local.get 0 select))`
	in := mustInstance(t, src)
	if got := math.Float64frombits(call1(t, in, "sel", 1)); got != 1.5 {
		t.Fatalf("select(1) = %v", got)
	}
	if got := math.Float64frombits(call1(t, in, "sel", 0)); got != 2.5 {
		t.Fatalf("select(0) = %v", got)
	}
}

func TestBrTableSingleDefault(t *testing.T) {
	src := `(module (func (export "f") (param i32) (result i32)
	  block $b
	    local.get 0
	    br_table $b
	  end
	  i32.const 9))`
	in := mustInstance(t, src)
	for _, sel := range []uint64{0, 1, 100} {
		if got := call1(t, in, "f", sel); got != 9 {
			t.Fatalf("f(%d) = %d", sel, got)
		}
	}
}

func TestMutualRecursion(t *testing.T) {
	src := `(module
	  (func $even (export "even") (param $n i32) (result i32)
	    (if (result i32) (i32.eqz (local.get $n))
	      (then (i32.const 1))
	      (else (call $odd (i32.sub (local.get $n) (i32.const 1))))))
	  (func $odd (param $n i32) (result i32)
	    (if (result i32) (i32.eqz (local.get $n))
	      (then (i32.const 0))
	      (else (call $even (i32.sub (local.get $n) (i32.const 1)))))))`
	in := mustInstance(t, src)
	if got := call1(t, in, "even", 100); got != 1 {
		t.Fatalf("even(100) = %d", got)
	}
	if got := call1(t, in, "even", 101); got != 0 {
		t.Fatalf("even(101) = %d", got)
	}
}

func TestHostFuncCallsBackIntoGuest(t *testing.T) {
	// Reentrancy: guest calls host, host calls a guest export, result flows
	// back through both boundaries.
	src := `(module
	  (import "env" "boost" (func $boost (param i32) (result i32)))
	  (memory (export "memory") 1)
	  (func (export "helper") (param i32) (result i32)
	    local.get 0 i32.const 10 i32.mul)
	  (func (export "run") (param i32) (result i32)
	    local.get 0 call $boost))`
	m := mustModule(t, src)
	cm, err := wasm.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	var inst *wasm.Instance
	imports := wasm.Imports{"env": {"boost": &wasm.HostFunc{
		Name: "boost",
		Type: wasm.FuncType{Params: []wasm.ValType{wasm.ValI32}, Results: []wasm.ValType{wasm.ValI32}},
		Fn: func(ctx *wasm.CallContext, args []uint64) ([]uint64, error) {
			res, err := inst.Call("helper", args[0])
			if err != nil {
				return nil, err
			}
			return []uint64{res[0] + 1}, nil
		},
	}}}
	inst, err = cm.Instantiate(imports, wasm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Call("run", 4)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 41 {
		t.Fatalf("reentrant call = %d, want 41", res[0])
	}
}

func TestMultipleFunctionsShareGlobalsAndMemory(t *testing.T) {
	src := `(module
	  (memory (export "memory") 1)
	  (global $sum (mut i64) (i64.const 0))
	  (func $accumulate (param $v i64)
	    (global.set $sum (i64.add (global.get $sum) (local.get $v))))
	  (func (export "run") (result i64)
	    (call $accumulate (i64.const 5))
	    (call $accumulate (i64.const 7))
	    (i64.store (i32.const 0) (global.get $sum))
	    (i64.load (i32.const 0))))`
	in := mustInstance(t, src)
	if got := int64(call1(t, in, "run")); got != 12 {
		t.Fatalf("run = %d", got)
	}
	// State persists across calls (same instance).
	if got := int64(call1(t, in, "run")); got != 24 {
		t.Fatalf("second run = %d", got)
	}
}

func TestZeroResultFunctionReturnsNothing(t *testing.T) {
	src := `(module
	  (global $g (mut i32) (i32.const 0))
	  (export "g" (global $g))
	  (func (export "poke") (global.set $g (i32.const 5))))`
	in := mustInstance(t, src)
	res, err := in.Call("poke")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("results = %v", res)
	}
	if v, _ := in.GlobalValue("g"); v != 5 {
		t.Fatalf("g = %d", v)
	}
}

func TestMultiValueResults(t *testing.T) {
	// The binary format (and this runtime) supports multi-value results
	// even though the WAT frontend stays MVP; build the module directly.
	m := &wasm.Module{
		Types: []wasm.FuncType{{Results: []wasm.ValType{wasm.ValI32, wasm.ValI64}}},
		Funcs: []uint32{0},
		Codes: []wasm.Code{{Body: []byte{
			0x41, 0x07, // i32.const 7
			0x42, 0x2A, // i64.const 42
			0x0B, // end
		}}},
		Exports: []wasm.Export{{Name: "pair", Kind: wasm.ExternFunc, Index: 0}},
	}
	cm, err := wasm.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	in, err := cm.Instantiate(nil, wasm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.Call("pair")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0] != 7 || res[1] != 42 {
		t.Fatalf("pair = %v", res)
	}
	// And it round-trips through the binary encoder.
	bin, err := wasm.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wasm.Decode(bin); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// Differential numeric-edge suite: the interpreter's behaviour on the
// spec's nastiest corners — signed division/remainder overflow, trapping vs
// saturating float->int truncation, and NaN propagation — asserted against
// precomputed reference values. A scheduler plugin doing PF math hits every
// one of these domains.

// edgeResult is one expected outcome: either a value or a trap code.
type edgeResult struct {
	val    uint64
	trap   wasm.TrapCode
	isTrap bool
}

func v(x uint64) edgeResult              { return edgeResult{val: x} }
func trapped(c wasm.TrapCode) edgeResult { return edgeResult{trap: c, isTrap: true} }

func checkEdge(t *testing.T, in *wasm.Instance, fn string, want edgeResult, args ...uint64) {
	t.Helper()
	res, err := in.Call(fn, args...)
	if want.isTrap {
		var tr *wasm.Trap
		if err == nil {
			t.Errorf("%s(%#x) = %#x, want trap %v", fn, args, res[0], want.trap)
			return
		}
		if !errors.As(err, &tr) || tr.Code != want.trap {
			t.Errorf("%s(%#x): err = %v, want trap %v", fn, args, err, want.trap)
		}
		return
	}
	if err != nil {
		t.Errorf("%s(%#x): unexpected error %v", fn, args, err)
		return
	}
	if res[0] != want.val {
		t.Errorf("%s(%#x) = %#x, want %#x", fn, args, res[0], want.val)
	}
}

// TestIntegerDivRemOverflowEdges: MinInt / -1 overflows div_s and must
// trap; the same operands under rem_s are defined and yield 0; anything
// over zero traps divide-by-zero.
func TestIntegerDivRemOverflowEdges(t *testing.T) {
	in := mustInstance(t, binOpModule("i32", "i32", []string{"i32.div_s", "i32.rem_s", "i32.div_u", "i32.rem_u"}))
	in64 := mustInstance(t, binOpModule("i64", "i64", []string{"i64.div_s", "i64.rem_s", "i64.div_u", "i64.rem_u"}))
	minI32 := i32(math.MinInt32)
	minI64 := i64(math.MinInt64)

	cases := []struct {
		in   *wasm.Instance
		fn   string
		a, b uint64
		want edgeResult
	}{
		// Signed overflow: MinInt / -1 has no representable result.
		{in, "i32.div_s", minI32, i32(-1), trapped(wasm.TrapIntegerOverflow)},
		{in64, "i64.div_s", minI64, i64(-1), trapped(wasm.TrapIntegerOverflow)},
		// ...but the remainder is defined: spec says 0.
		{in, "i32.rem_s", minI32, i32(-1), v(0)},
		{in64, "i64.rem_s", minI64, i64(-1), v(0)},
		// Divide by zero traps for every flavour.
		{in, "i32.div_s", i32(1), i32(0), trapped(wasm.TrapIntegerDivideByZero)},
		{in, "i32.div_u", i32(1), i32(0), trapped(wasm.TrapIntegerDivideByZero)},
		{in, "i32.rem_s", i32(1), i32(0), trapped(wasm.TrapIntegerDivideByZero)},
		{in, "i32.rem_u", i32(1), i32(0), trapped(wasm.TrapIntegerDivideByZero)},
		{in64, "i64.div_s", i64(1), i64(0), trapped(wasm.TrapIntegerDivideByZero)},
		{in64, "i64.div_u", i64(1), i64(0), trapped(wasm.TrapIntegerDivideByZero)},
		{in64, "i64.rem_s", i64(1), i64(0), trapped(wasm.TrapIntegerDivideByZero)},
		{in64, "i64.rem_u", i64(1), i64(0), trapped(wasm.TrapIntegerDivideByZero)},
		// Signed semantics: truncation toward zero, remainder takes the
		// dividend's sign.
		{in, "i32.div_s", i32(-7), i32(2), v(i32(-3))},
		{in, "i32.rem_s", i32(-7), i32(2), v(i32(-1))},
		{in, "i32.rem_s", i32(7), i32(-2), v(i32(1))},
		{in64, "i64.div_s", i64(-9), i64(4), v(i64(-2))},
		{in64, "i64.rem_s", i64(-9), i64(4), v(i64(-1))},
		// Unsigned: the sign bit is magnitude. 0xFFFFFFFF / 2 = 0x7FFFFFFF.
		{in, "i32.div_u", i32(-1), i32(2), v(0x7FFFFFFF)},
		{in, "i32.rem_u", i32(-1), i32(2), v(1)},
		{in64, "i64.div_u", i64(-1), i64(2), v(0x7FFFFFFFFFFFFFFF)},
		// MinInt / 1 is fine.
		{in, "i32.div_s", minI32, i32(1), v(minI32)},
		{in64, "i64.div_s", minI64, i64(1), v(minI64)},
	}
	for _, tc := range cases {
		checkEdge(t, tc.in, tc.fn, tc.want, tc.a, tc.b)
	}
}

// TestTruncationTrappingVsSaturating: the trapping i32/i64.trunc_f* family
// must refuse NaN and out-of-range inputs, while the trunc_sat_f* family
// clamps them (NaN -> 0), per the nontrapping-conversions spec.
func TestTruncationTrappingVsSaturating(t *testing.T) {
	src := `(module
	  (func (export "i32.trunc_f32_s")     (param f32) (result i32) local.get 0 i32.trunc_f32_s)
	  (func (export "i32.trunc_f32_u")     (param f32) (result i32) local.get 0 i32.trunc_f32_u)
	  (func (export "i32.trunc_f64_s")     (param f64) (result i32) local.get 0 i32.trunc_f64_s)
	  (func (export "i32.trunc_f64_u")     (param f64) (result i32) local.get 0 i32.trunc_f64_u)
	  (func (export "i64.trunc_f64_s")     (param f64) (result i64) local.get 0 i64.trunc_f64_s)
	  (func (export "i64.trunc_f64_u")     (param f64) (result i64) local.get 0 i64.trunc_f64_u)
	  (func (export "i32.trunc_sat_f32_s") (param f32) (result i32) local.get 0 i32.trunc_sat_f32_s)
	  (func (export "i32.trunc_sat_f32_u") (param f32) (result i32) local.get 0 i32.trunc_sat_f32_u)
	  (func (export "i32.trunc_sat_f64_s") (param f64) (result i32) local.get 0 i32.trunc_sat_f64_s)
	  (func (export "i32.trunc_sat_f64_u") (param f64) (result i32) local.get 0 i32.trunc_sat_f64_u)
	  (func (export "i64.trunc_sat_f64_s") (param f64) (result i64) local.get 0 i64.trunc_sat_f64_s)
	  (func (export "i64.trunc_sat_f64_u") (param f64) (result i64) local.get 0 i64.trunc_sat_f64_u)
	)`
	in := mustInstance(t, src)
	nan32, nan64 := f32(float32(math.NaN())), f64(math.NaN())
	inf64 := f64(math.Inf(1))

	cases := []struct {
		fn   string
		arg  uint64
		want edgeResult
	}{
		// In-range truncation rounds toward zero.
		{"i32.trunc_f32_s", f32(-3.9), v(i32(-3))},
		{"i32.trunc_f64_s", f64(3.9), v(3)},
		{"i64.trunc_f64_s", f64(-1e15 - 0.5), v(i64(-1_000_000_000_000_000))},
		{"i64.trunc_f64_u", f64(1.8446744073709550e19), v(0xFFFFFFFFFFFFF800)},
		// NaN is an invalid conversion for the trapping family...
		{"i32.trunc_f32_s", nan32, trapped(wasm.TrapInvalidConversion)},
		{"i32.trunc_f64_u", nan64, trapped(wasm.TrapInvalidConversion)},
		{"i64.trunc_f64_s", nan64, trapped(wasm.TrapInvalidConversion)},
		// ...and saturates to 0 for the _sat family.
		{"i32.trunc_sat_f32_s", nan32, v(0)},
		{"i32.trunc_sat_f64_u", nan64, v(0)},
		{"i64.trunc_sat_f64_s", nan64, v(0)},
		// Out of range: trapping family -> integer overflow.
		{"i32.trunc_f32_s", f32(2.15e9), trapped(wasm.TrapIntegerOverflow)},
		{"i32.trunc_f32_u", f32(-1), trapped(wasm.TrapIntegerOverflow)},
		{"i32.trunc_f64_s", f64(-2.15e9), trapped(wasm.TrapIntegerOverflow)},
		{"i32.trunc_f64_u", f64(4.3e9), trapped(wasm.TrapIntegerOverflow)},
		{"i64.trunc_f64_s", f64(9.3e18), trapped(wasm.TrapIntegerOverflow)},
		{"i64.trunc_f64_u", f64(-0.9999), v(0)}, // truncates to 0, in range
		{"i64.trunc_f64_u", f64(-1), trapped(wasm.TrapIntegerOverflow)},
		{"i64.trunc_f64_u", inf64, trapped(wasm.TrapIntegerOverflow)},
		// Out of range: saturating family clamps to the type bounds.
		{"i32.trunc_sat_f32_s", f32(2.15e9), v(i32(math.MaxInt32))},
		{"i32.trunc_sat_f32_s", f32(-2.15e9), v(i32(math.MinInt32))},
		{"i32.trunc_sat_f32_u", f32(-1), v(0)},
		{"i32.trunc_sat_f32_u", f32(6e9), v(math.MaxUint32)},
		{"i32.trunc_sat_f64_s", f64(math.Inf(-1)), v(i32(math.MinInt32))},
		{"i32.trunc_sat_f64_u", inf64, v(math.MaxUint32)},
		{"i64.trunc_sat_f64_s", f64(9.3e18), v(i64(math.MaxInt64))},
		{"i64.trunc_sat_f64_s", f64(-9.3e18), v(i64(math.MinInt64))},
		{"i64.trunc_sat_f64_u", f64(-2), v(0)},
		{"i64.trunc_sat_f64_u", f64(2e19), v(math.MaxUint64)},
		// Exact boundary values that DO fit.
		{"i32.trunc_f64_s", f64(2147483647), v(i32(math.MaxInt32))},
		{"i32.trunc_f64_s", f64(-2147483648), v(i32(math.MinInt32))},
		{"i32.trunc_f64_u", f64(4294967295), v(math.MaxUint32)},
	}
	for _, tc := range cases {
		checkEdge(t, in, tc.fn, tc.want, tc.arg)
	}
}

// TestNaNPropagation: arithmetic on NaN yields NaN; min/max are
// NaN-propagating (unlike x86 semantics); conversions preserve NaN-ness.
func TestNaNPropagation(t *testing.T) {
	bin64 := mustInstance(t, binOpModule("f64", "f64", []string{"f64.add", "f64.sub", "f64.mul", "f64.div", "f64.min", "f64.max"}))
	un := mustInstance(t, `(module
	  (func (export "sqrtneg") (param f64) (result f64) local.get 0 f64.sqrt)
	  (func (export "promote") (param f32) (result f64) local.get 0 f64.promote_f32)
	  (func (export "demote")  (param f64) (result f32) local.get 0 f32.demote_f64)
	)`)
	nan64 := f64(math.NaN())

	isNaN64 := func(bits uint64) bool { return math.IsNaN(math.Float64frombits(bits)) }
	isNaN32 := func(bits uint64) bool {
		f := math.Float32frombits(uint32(bits))
		return f != f
	}

	for _, fn := range []string{"f64.add", "f64.sub", "f64.mul", "f64.div", "f64.min", "f64.max"} {
		if got := call1(t, bin64, fn, nan64, f64(1.5)); !isNaN64(got) {
			t.Errorf("%s(NaN, 1.5) = %#x, want NaN", fn, got)
		}
		if got := call1(t, bin64, fn, f64(1.5), nan64); !isNaN64(got) {
			t.Errorf("%s(1.5, NaN) = %#x, want NaN", fn, got)
		}
	}
	// 0/0, inf-inf, 0*inf generate NaN from non-NaN inputs.
	if got := call1(t, bin64, "f64.div", f64(0), f64(0)); !isNaN64(got) {
		t.Errorf("0/0 = %#x, want NaN", got)
	}
	if got := call1(t, bin64, "f64.sub", f64(math.Inf(1)), f64(math.Inf(1))); !isNaN64(got) {
		t.Errorf("inf-inf = %#x, want NaN", got)
	}
	if got := call1(t, bin64, "f64.mul", f64(0), f64(math.Inf(1))); !isNaN64(got) {
		t.Errorf("0*inf = %#x, want NaN", got)
	}
	// sqrt of a negative number is NaN.
	if got := call1(t, un, "sqrtneg", f64(-4)); !isNaN64(got) {
		t.Errorf("sqrt(-4) = %#x, want NaN", got)
	}
	// NaN survives promotion and demotion.
	if got := call1(t, un, "promote", f32(float32(math.NaN()))); !isNaN64(got) {
		t.Errorf("promote(NaN32) = %#x, want NaN", got)
	}
	if got := call1(t, un, "demote", nan64); !isNaN32(got) {
		t.Errorf("demote(NaN64) = %#x, want NaN", got)
	}
}

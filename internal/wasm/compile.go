package wasm

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Internal opcodes above the single-byte space. The compiler lowers
// structured control flow to these pc-based jumps, and folds the 0xFC
// two-byte opcodes into a flat space.
const (
	opJump      uint16 = 0x100 // unconditional branch, targets[0]
	opBrIfFalse uint16 = 0x101 // branch when condition == 0 (compiled `if`)
	opReturnOp  uint16 = 0x102 // return top `a` values
	miscBase    uint16 = 0x200 // miscBase+sub for 0xFC-prefixed opcodes
)

// branchTarget describes a resolved branch: jump to pc after moving the top
// `keep` operand-stack values down to height `unwind`.
type branchTarget struct {
	pc     uint32
	unwind uint32
	keep   uint32
}

// instr is one flattened instruction. Interpretation of the fields depends
// on op: a holds indices (locals, globals, functions, types) or the return
// arity; imm holds constants and memory offsets; b is a second operand slot
// used only by fused superinstructions (second local index or embedded
// selector opcode — see fuse.go).
type instr struct {
	op      uint16
	a       uint32
	b       uint32
	imm     uint64
	targets []branchTarget
}

// compiledFunc is the executable form of a function body.
type compiledFunc struct {
	typ       FuncType
	numParams int
	numLocals int // locals beyond the parameters
	code      []instr
	maxStack  int    // operand-stack high-water mark (capacity hint)
	idx       uint32 // index in the module's function space

	// Tiered forms, built once per module by CompiledModule.ensureTier:
	// fused is the superinstruction stream (nil until the fused tier is
	// requested); clos is the closure-compiled body (nil until the closure
	// tier is requested). Both execute bit-identically to code.
	fused []instr
	clos  *closFunc
}

// compFrame tracks one structured-control-flow nesting level during
// flattening.
type compFrame struct {
	opcode        byte
	heightAtEntry int // operand stack height at block entry, including params
	numParams     int
	numResults    int
	loopStartPC   int
	// endFixups are indices into fixupTargets awaiting the end pc.
	endFixups []fixupRef
	// elseFixup is the brIfFalse of an `if`, patched at else/end.
	elseFixup fixupRef
	hasElse   bool
}

// fixupRef addresses a branchTarget awaiting patching: instruction index and
// target slot.
type fixupRef struct {
	instrIx  int
	targetIx int
	valid    bool
}

type compiler struct {
	m        *Module
	r        *reader
	code     []instr
	stack    int
	maxStack int
	frames   []compFrame
}

// compileFunction flattens a validated body into a compiledFunc.
func compileFunction(m *Module, funcIdx uint32, ft FuncType, c *Code) (*compiledFunc, error) {
	cc := &compiler{m: m, r: &reader{b: c.Body}}
	cc.frames = append(cc.frames, compFrame{opcode: 0, numResults: len(ft.Results)})
	for len(cc.frames) > 0 {
		op, err := cc.r.byte()
		if err != nil {
			return nil, err
		}
		if err := cc.step(op); err != nil {
			return nil, fmt.Errorf("compile function %d at offset %d (%s): %w", funcIdx, cc.r.pos-1, OpcodeName(op), err)
		}
		if cc.stack > cc.maxStack {
			cc.maxStack = cc.stack
		}
	}
	return &compiledFunc{
		typ:       ft,
		numParams: len(ft.Params),
		numLocals: len(c.Locals),
		code:      cc.code,
		maxStack:  cc.maxStack,
		idx:       funcIdx,
	}, nil
}

func (c *compiler) emit(i instr) int {
	c.code = append(c.code, i)
	return len(c.code) - 1
}

// addFixup appends a placeholder branch target to instruction ix and returns
// a reference for later patching.
func (c *compiler) addFixup(ix int, unwind, keep int) fixupRef {
	c.code[ix].targets = append(c.code[ix].targets, branchTarget{unwind: uint32(unwind), keep: uint32(keep)})
	return fixupRef{instrIx: ix, targetIx: len(c.code[ix].targets) - 1, valid: true}
}

func (c *compiler) patch(f fixupRef, pc int) {
	if f.valid {
		c.code[f.instrIx].targets[f.targetIx].pc = uint32(pc)
	}
}

// branchTo computes the resolved-or-fixup target for a branch to `depth`.
func (c *compiler) branchTo(instrIx int, depth uint32) error {
	if int(depth) >= len(c.frames) {
		return fmt.Errorf("branch depth %d out of range", depth)
	}
	f := &c.frames[len(c.frames)-1-int(depth)]
	unwind := f.heightAtEntry - f.numParams
	if f.opcode == OpLoop {
		c.code[instrIx].targets = append(c.code[instrIx].targets, branchTarget{
			pc:     uint32(f.loopStartPC),
			unwind: uint32(unwind),
			keep:   uint32(f.numParams),
		})
		return nil
	}
	keep := f.numResults
	if len(c.frames)-1-int(depth) == 0 {
		// Branch to the function frame behaves like return.
		keep = f.numResults
	}
	f.endFixups = append(f.endFixups, c.addFixup(instrIx, unwind, keep))
	return nil
}

// blockSig reads a block type immediate and returns its arity.
func (c *compiler) blockSig() (params, results int, err error) {
	bt, err := (&bodyValidator{m: c.m, r: c.r}).blockType()
	if err != nil {
		return 0, 0, err
	}
	return len(bt.Params), len(bt.Results), nil
}

func (c *compiler) step(op byte) error {
	switch op {
	case OpNop:
		// no instruction emitted
	case OpUnreachable:
		c.emit(instr{op: uint16(OpUnreachable)})
		return c.skipDead()
	case OpBlock:
		p, r, err := c.blockSig()
		if err != nil {
			return err
		}
		c.frames = append(c.frames, compFrame{
			opcode: OpBlock, heightAtEntry: c.stack, numParams: p, numResults: r,
		})
	case OpLoop:
		p, r, err := c.blockSig()
		if err != nil {
			return err
		}
		c.frames = append(c.frames, compFrame{
			opcode: OpLoop, heightAtEntry: c.stack, numParams: p, numResults: r,
			loopStartPC: len(c.code),
		})
	case OpIf:
		p, r, err := c.blockSig()
		if err != nil {
			return err
		}
		c.stack-- // condition
		ix := c.emit(instr{op: opBrIfFalse})
		fr := compFrame{
			opcode: OpIf, heightAtEntry: c.stack, numParams: p, numResults: r,
		}
		fr.elseFixup = c.addFixup(ix, c.stack, 0)
		// Plain jump semantics: both paths start at the same height.
		c.code[ix].targets[0].unwind = uint32(c.stack)
		c.code[ix].targets[0].keep = 0
		c.frames = append(c.frames, fr)
	case OpElse:
		f := &c.frames[len(c.frames)-1]
		if f.opcode != OpIf {
			return fmt.Errorf("else without if")
		}
		// Jump over the else branch at the end of then.
		jix := c.emit(instr{op: opJump})
		f.endFixups = append(f.endFixups, c.addFixup(jix, f.heightAtEntry-f.numParams+f.numResults, 0))
		// Note: by end of then the stack is heightAtEntry-params+results;
		// the jump does not move values.
		c.code[jix].targets[len(c.code[jix].targets)-1].unwind = uint32(f.heightAtEntry - f.numParams + f.numResults)
		c.patch(f.elseFixup, len(c.code))
		f.elseFixup = fixupRef{}
		f.hasElse = true
		c.stack = f.heightAtEntry
	case OpEnd:
		f := c.frames[len(c.frames)-1]
		c.frames = c.frames[:len(c.frames)-1]
		endPC := len(c.code)
		for _, fx := range f.endFixups {
			c.patch(fx, endPC)
		}
		c.patch(f.elseFixup, endPC)
		c.stack = f.heightAtEntry - f.numParams + f.numResults
		if len(c.frames) == 0 {
			// Function end: return results from the stack top.
			c.emit(instr{op: opReturnOp, a: uint32(f.numResults)})
		}
	case OpBr:
		depth, err := c.r.u32()
		if err != nil {
			return err
		}
		ix := c.emit(instr{op: opJump})
		if err := c.branchTo(ix, depth); err != nil {
			return err
		}
		return c.skipDead()
	case OpBrIf:
		depth, err := c.r.u32()
		if err != nil {
			return err
		}
		c.stack-- // condition
		ix := c.emit(instr{op: uint16(OpBrIf)})
		if err := c.branchTo(ix, depth); err != nil {
			return err
		}
	case OpBrTable:
		n, err := c.r.vecLen()
		if err != nil {
			return err
		}
		c.stack-- // selector
		ix := c.emit(instr{op: uint16(OpBrTable)})
		for i := 0; i <= n; i++ {
			depth, err := c.r.u32()
			if err != nil {
				return err
			}
			if err := c.branchTo(ix, depth); err != nil {
				return err
			}
		}
		return c.skipDead()
	case OpReturn:
		c.emit(instr{op: opReturnOp, a: uint32(c.frames[0].numResults)})
		return c.skipDead()
	case OpCall:
		fx, err := c.r.u32()
		if err != nil {
			return err
		}
		ft, err := c.m.FuncTypeAt(fx)
		if err != nil {
			return err
		}
		c.stack += len(ft.Results) - len(ft.Params)
		c.emit(instr{op: uint16(OpCall), a: fx})
	case OpCallIndirect:
		tix, err := c.r.u32()
		if err != nil {
			return err
		}
		if _, err := c.r.u32(); err != nil { // table index (0)
			return err
		}
		ft := c.m.Types[tix]
		c.stack += len(ft.Results) - len(ft.Params) - 1
		c.emit(instr{op: uint16(OpCallIndirect), a: tix})
	case OpDrop:
		c.stack--
		c.emit(instr{op: uint16(OpDrop)})
	case OpSelect:
		c.stack -= 2
		c.emit(instr{op: uint16(OpSelect)})
	case OpLocalGet:
		ix, err := c.r.u32()
		if err != nil {
			return err
		}
		c.stack++
		c.emit(instr{op: uint16(OpLocalGet), a: ix})
	case OpLocalSet:
		ix, err := c.r.u32()
		if err != nil {
			return err
		}
		c.stack--
		c.emit(instr{op: uint16(OpLocalSet), a: ix})
	case OpLocalTee:
		ix, err := c.r.u32()
		if err != nil {
			return err
		}
		c.emit(instr{op: uint16(OpLocalTee), a: ix})
	case OpGlobalGet:
		ix, err := c.r.u32()
		if err != nil {
			return err
		}
		c.stack++
		c.emit(instr{op: uint16(OpGlobalGet), a: ix})
	case OpGlobalSet:
		ix, err := c.r.u32()
		if err != nil {
			return err
		}
		c.stack--
		c.emit(instr{op: uint16(OpGlobalSet), a: ix})

	case OpI32Load, OpI64Load, OpF32Load, OpF64Load,
		OpI32Load8S, OpI32Load8U, OpI32Load16S, OpI32Load16U,
		OpI64Load8S, OpI64Load8U, OpI64Load16S, OpI64Load16U,
		OpI64Load32S, OpI64Load32U:
		off, err := c.memOffset()
		if err != nil {
			return err
		}
		c.emit(instr{op: uint16(op), imm: off})
	case OpI32Store, OpI64Store, OpF32Store, OpF64Store,
		OpI32Store8, OpI32Store16, OpI64Store8, OpI64Store16, OpI64Store32:
		off, err := c.memOffset()
		if err != nil {
			return err
		}
		c.stack -= 2
		c.emit(instr{op: uint16(op), imm: off})
	case OpMemorySize:
		if _, err := c.r.byte(); err != nil {
			return err
		}
		c.stack++
		c.emit(instr{op: uint16(OpMemorySize)})
	case OpMemoryGrow:
		if _, err := c.r.byte(); err != nil {
			return err
		}
		c.emit(instr{op: uint16(OpMemoryGrow)})

	case OpI32Const:
		v, err := c.r.s32()
		if err != nil {
			return err
		}
		c.stack++
		c.emit(instr{op: uint16(OpI32Const), imm: uint64(uint32(v))})
	case OpI64Const:
		v, err := c.r.s64()
		if err != nil {
			return err
		}
		c.stack++
		c.emit(instr{op: uint16(OpI64Const), imm: uint64(v)})
	case OpF32Const:
		b, err := c.r.bytes(4)
		if err != nil {
			return err
		}
		c.stack++
		c.emit(instr{op: uint16(OpF32Const), imm: uint64(binary.LittleEndian.Uint32(b))})
	case OpF64Const:
		b, err := c.r.bytes(8)
		if err != nil {
			return err
		}
		c.stack++
		c.emit(instr{op: uint16(OpF64Const), imm: binary.LittleEndian.Uint64(b)})

	case OpPrefixMisc:
		sub, err := c.r.u32()
		if err != nil {
			return err
		}
		switch sub {
		case MiscMemoryCopy:
			if _, err := c.r.bytes(2); err != nil {
				return err
			}
			c.stack -= 3
		case MiscMemoryFill:
			if _, err := c.r.byte(); err != nil {
				return err
			}
			c.stack -= 3
		default:
			// Saturating truncations: unary, stack unchanged.
			if sub > MiscI64TruncSatF64U {
				return fmt.Errorf("unsupported misc opcode %d", sub)
			}
		}
		c.emit(instr{op: miscBase + uint16(sub)})

	default:
		// All remaining ops are plain numeric instructions: adjust the stack
		// by arity and emit as-is.
		delta, ok := numericStackDelta(op)
		if !ok {
			return fmt.Errorf("unsupported opcode")
		}
		c.stack += delta
		c.emit(instr{op: uint16(op)})
	}
	return nil
}

func (c *compiler) memOffset() (uint64, error) {
	if _, err := c.r.u32(); err != nil { // alignment hint, unused at runtime
		return 0, err
	}
	off, err := c.r.u32()
	if err != nil {
		return 0, err
	}
	return uint64(off), nil
}

// numericStackDelta returns the operand-stack delta for pure numeric ops:
// -1 for binary operations, 0 for unary/conversions.
func numericStackDelta(op byte) (int, bool) {
	switch {
	case op >= OpI32Eqz && op <= OpF64Ge:
		if op == OpI32Eqz || op == OpI64Eqz {
			return 0, true
		}
		return -1, true
	case op >= OpI32Clz && op <= OpF64Copysign:
		switch op {
		case OpI32Clz, OpI32Ctz, OpI32Popcnt,
			OpI64Clz, OpI64Ctz, OpI64Popcnt,
			OpF32Abs, OpF32Neg, OpF32Ceil, OpF32Floor, OpF32Trunc, OpF32Nearest, OpF32Sqrt,
			OpF64Abs, OpF64Neg, OpF64Ceil, OpF64Floor, OpF64Trunc, OpF64Nearest, OpF64Sqrt:
			return 0, true
		}
		return -1, true
	case op >= OpI32WrapI64 && op <= OpI64Extend32S:
		return 0, true
	}
	return 0, false
}

// skipDead consumes instructions that follow an unconditional transfer of
// control up to (not including the effects of) the matching end or else.
// Validation has already type-checked the dead code; it is never executed,
// so no instructions are emitted for it.
func (c *compiler) skipDead() error {
	depth := 0
	for {
		op, err := c.r.byte()
		if err != nil {
			return err
		}
		switch op {
		case OpBlock, OpLoop, OpIf:
			if _, _, err := c.blockSig(); err != nil {
				return err
			}
			depth++
		case OpElse:
			if depth == 0 {
				// Resurface: the else branch is live again.
				f := &c.frames[len(c.frames)-1]
				if f.opcode != OpIf {
					return fmt.Errorf("else without if in dead code")
				}
				c.patch(f.elseFixup, len(c.code))
				f.elseFixup = fixupRef{}
				f.hasElse = true
				c.stack = f.heightAtEntry
				return nil
			}
		case OpEnd:
			if depth == 0 {
				f := c.frames[len(c.frames)-1]
				c.frames = c.frames[:len(c.frames)-1]
				endPC := len(c.code)
				for _, fx := range f.endFixups {
					c.patch(fx, endPC)
				}
				c.patch(f.elseFixup, endPC)
				c.stack = f.heightAtEntry - f.numParams + f.numResults
				if len(c.frames) == 0 {
					c.emit(instr{op: opReturnOp, a: uint32(f.numResults)})
					return nil
				}
				return nil
			}
			depth--
		default:
			if err := skipImmediates(c.r, op); err != nil {
				return err
			}
		}
	}
}

// skipImmediates advances the reader past the immediates of op (which must
// not be a structured control instruction).
func skipImmediates(r *reader, op byte) error {
	switch op {
	case OpBr, OpBrIf, OpCall, OpLocalGet, OpLocalSet, OpLocalTee, OpGlobalGet, OpGlobalSet:
		_, err := r.u32()
		return err
	case OpBrTable:
		n, err := r.vecLen()
		if err != nil {
			return err
		}
		for i := 0; i <= n; i++ {
			if _, err := r.u32(); err != nil {
				return err
			}
		}
		return nil
	case OpCallIndirect:
		if _, err := r.u32(); err != nil {
			return err
		}
		_, err := r.u32()
		return err
	case OpMemorySize, OpMemoryGrow:
		_, err := r.byte()
		return err
	case OpI32Const:
		_, err := r.s32()
		return err
	case OpI64Const:
		_, err := r.s64()
		return err
	case OpF32Const:
		_, err := r.bytes(4)
		return err
	case OpF64Const:
		_, err := r.bytes(8)
		return err
	case OpPrefixMisc:
		sub, err := r.u32()
		if err != nil {
			return err
		}
		switch sub {
		case MiscMemoryCopy:
			_, err = r.bytes(2)
		case MiscMemoryFill:
			_, err = r.byte()
		}
		return err
	default:
		if op >= OpI32Load && op <= OpI64Store32 {
			if _, err := r.u32(); err != nil {
				return err
			}
			_, err := r.u32()
			return err
		}
		return nil
	}
}

// f32FromBits converts raw bits to float32 (helper for the interpreter).
func f32FromBits(v uint64) float32 { return math.Float32frombits(uint32(v)) }

// f64FromBits converts raw bits to float64.
func f64FromBits(v uint64) float64 { return math.Float64frombits(v) }

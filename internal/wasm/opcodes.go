package wasm

// Opcode constants for the WebAssembly MVP instruction set plus the
// sign-extension and bulk/saturating extensions handled by this runtime.
const (
	OpUnreachable  byte = 0x00
	OpNop          byte = 0x01
	OpBlock        byte = 0x02
	OpLoop         byte = 0x03
	OpIf           byte = 0x04
	OpElse         byte = 0x05
	OpEnd          byte = 0x0B
	OpBr           byte = 0x0C
	OpBrIf         byte = 0x0D
	OpBrTable      byte = 0x0E
	OpReturn       byte = 0x0F
	OpCall         byte = 0x10
	OpCallIndirect byte = 0x11

	OpDrop   byte = 0x1A
	OpSelect byte = 0x1B

	OpLocalGet  byte = 0x20
	OpLocalSet  byte = 0x21
	OpLocalTee  byte = 0x22
	OpGlobalGet byte = 0x23
	OpGlobalSet byte = 0x24

	OpI32Load    byte = 0x28
	OpI64Load    byte = 0x29
	OpF32Load    byte = 0x2A
	OpF64Load    byte = 0x2B
	OpI32Load8S  byte = 0x2C
	OpI32Load8U  byte = 0x2D
	OpI32Load16S byte = 0x2E
	OpI32Load16U byte = 0x2F
	OpI64Load8S  byte = 0x30
	OpI64Load8U  byte = 0x31
	OpI64Load16S byte = 0x32
	OpI64Load16U byte = 0x33
	OpI64Load32S byte = 0x34
	OpI64Load32U byte = 0x35
	OpI32Store   byte = 0x36
	OpI64Store   byte = 0x37
	OpF32Store   byte = 0x38
	OpF64Store   byte = 0x39
	OpI32Store8  byte = 0x3A
	OpI32Store16 byte = 0x3B
	OpI64Store8  byte = 0x3C
	OpI64Store16 byte = 0x3D
	OpI64Store32 byte = 0x3E
	OpMemorySize byte = 0x3F
	OpMemoryGrow byte = 0x40

	OpI32Const byte = 0x41
	OpI64Const byte = 0x42
	OpF32Const byte = 0x43
	OpF64Const byte = 0x44

	OpI32Eqz    byte = 0x45
	OpI32Eq     byte = 0x46
	OpI32Ne     byte = 0x47
	OpI32LtS    byte = 0x48
	OpI32LtU    byte = 0x49
	OpI32GtS    byte = 0x4A
	OpI32GtU    byte = 0x4B
	OpI32LeS    byte = 0x4C
	OpI32LeU    byte = 0x4D
	OpI32GeS    byte = 0x4E
	OpI32GeU    byte = 0x4F
	OpI64Eqz    byte = 0x50
	OpI64Eq     byte = 0x51
	OpI64Ne     byte = 0x52
	OpI64LtS    byte = 0x53
	OpI64LtU    byte = 0x54
	OpI64GtS    byte = 0x55
	OpI64GtU    byte = 0x56
	OpI64LeS    byte = 0x57
	OpI64LeU    byte = 0x58
	OpI64GeS    byte = 0x59
	OpI64GeU    byte = 0x5A
	OpF32Eq     byte = 0x5B
	OpF32Ne     byte = 0x5C
	OpF32Lt     byte = 0x5D
	OpF32Gt     byte = 0x5E
	OpF32Le     byte = 0x5F
	OpF32Ge     byte = 0x60
	OpF64Eq     byte = 0x61
	OpF64Ne     byte = 0x62
	OpF64Lt     byte = 0x63
	OpF64Gt     byte = 0x64
	OpF64Le     byte = 0x65
	OpF64Ge     byte = 0x66
	OpI32Clz    byte = 0x67
	OpI32Ctz    byte = 0x68
	OpI32Popcnt byte = 0x69
	OpI32Add    byte = 0x6A
	OpI32Sub    byte = 0x6B
	OpI32Mul    byte = 0x6C
	OpI32DivS   byte = 0x6D
	OpI32DivU   byte = 0x6E
	OpI32RemS   byte = 0x6F
	OpI32RemU   byte = 0x70
	OpI32And    byte = 0x71
	OpI32Or     byte = 0x72
	OpI32Xor    byte = 0x73
	OpI32Shl    byte = 0x74
	OpI32ShrS   byte = 0x75
	OpI32ShrU   byte = 0x76
	OpI32Rotl   byte = 0x77
	OpI32Rotr   byte = 0x78

	OpI64Clz    byte = 0x79
	OpI64Ctz    byte = 0x7A
	OpI64Popcnt byte = 0x7B
	OpI64Add    byte = 0x7C
	OpI64Sub    byte = 0x7D
	OpI64Mul    byte = 0x7E
	OpI64DivS   byte = 0x7F
	OpI64DivU   byte = 0x80
	OpI64RemS   byte = 0x81
	OpI64RemU   byte = 0x82
	OpI64And    byte = 0x83
	OpI64Or     byte = 0x84
	OpI64Xor    byte = 0x85
	OpI64Shl    byte = 0x86
	OpI64ShrS   byte = 0x87
	OpI64ShrU   byte = 0x88
	OpI64Rotl   byte = 0x89
	OpI64Rotr   byte = 0x8A

	OpF32Abs      byte = 0x8B
	OpF32Neg      byte = 0x8C
	OpF32Ceil     byte = 0x8D
	OpF32Floor    byte = 0x8E
	OpF32Trunc    byte = 0x8F
	OpF32Nearest  byte = 0x90
	OpF32Sqrt     byte = 0x91
	OpF32Add      byte = 0x92
	OpF32Sub      byte = 0x93
	OpF32Mul      byte = 0x94
	OpF32Div      byte = 0x95
	OpF32Min      byte = 0x96
	OpF32Max      byte = 0x97
	OpF32Copysign byte = 0x98
	OpF64Abs      byte = 0x99
	OpF64Neg      byte = 0x9A
	OpF64Ceil     byte = 0x9B
	OpF64Floor    byte = 0x9C
	OpF64Trunc    byte = 0x9D
	OpF64Nearest  byte = 0x9E
	OpF64Sqrt     byte = 0x9F
	OpF64Add      byte = 0xA0
	OpF64Sub      byte = 0xA1
	OpF64Mul      byte = 0xA2
	OpF64Div      byte = 0xA3
	OpF64Min      byte = 0xA4
	OpF64Max      byte = 0xA5
	OpF64Copysign byte = 0xA6

	OpI32WrapI64        byte = 0xA7
	OpI32TruncF32S      byte = 0xA8
	OpI32TruncF32U      byte = 0xA9
	OpI32TruncF64S      byte = 0xAA
	OpI32TruncF64U      byte = 0xAB
	OpI64ExtendI32S     byte = 0xAC
	OpI64ExtendI32U     byte = 0xAD
	OpI64TruncF32S      byte = 0xAE
	OpI64TruncF32U      byte = 0xAF
	OpI64TruncF64S      byte = 0xB0
	OpI64TruncF64U      byte = 0xB1
	OpF32ConvertI32S    byte = 0xB2
	OpF32ConvertI32U    byte = 0xB3
	OpF32ConvertI64S    byte = 0xB4
	OpF32ConvertI64U    byte = 0xB5
	OpF32DemoteF64      byte = 0xB6
	OpF64ConvertI32S    byte = 0xB7
	OpF64ConvertI32U    byte = 0xB8
	OpF64ConvertI64S    byte = 0xB9
	OpF64ConvertI64U    byte = 0xBA
	OpF64PromoteF32     byte = 0xBB
	OpI32ReinterpretF32 byte = 0xBC
	OpI64ReinterpretF64 byte = 0xBD
	OpF32ReinterpretI32 byte = 0xBE
	OpF64ReinterpretI64 byte = 0xBF

	OpI32Extend8S  byte = 0xC0
	OpI32Extend16S byte = 0xC1
	OpI64Extend8S  byte = 0xC2
	OpI64Extend16S byte = 0xC3
	OpI64Extend32S byte = 0xC4

	// OpPrefixMisc introduces two-byte opcodes (saturating truncation and
	// bulk memory operations).
	OpPrefixMisc byte = 0xFC
)

// Sub-opcodes under OpPrefixMisc.
const (
	MiscI32TruncSatF32S uint32 = 0
	MiscI32TruncSatF32U uint32 = 1
	MiscI32TruncSatF64S uint32 = 2
	MiscI32TruncSatF64U uint32 = 3
	MiscI64TruncSatF32S uint32 = 4
	MiscI64TruncSatF32U uint32 = 5
	MiscI64TruncSatF64S uint32 = 6
	MiscI64TruncSatF64U uint32 = 7
	MiscMemoryCopy      uint32 = 10
	MiscMemoryFill      uint32 = 11
)

// opcodeNames maps single-byte opcodes to their textual-format mnemonics,
// used in error messages and the disassembler.
var opcodeNames = map[byte]string{
	OpUnreachable: "unreachable", OpNop: "nop", OpBlock: "block", OpLoop: "loop",
	OpIf: "if", OpElse: "else", OpEnd: "end", OpBr: "br", OpBrIf: "br_if",
	OpBrTable: "br_table", OpReturn: "return", OpCall: "call", OpCallIndirect: "call_indirect",
	OpDrop: "drop", OpSelect: "select",
	OpLocalGet: "local.get", OpLocalSet: "local.set", OpLocalTee: "local.tee",
	OpGlobalGet: "global.get", OpGlobalSet: "global.set",
	OpI32Load: "i32.load", OpI64Load: "i64.load", OpF32Load: "f32.load", OpF64Load: "f64.load",
	OpI32Load8S: "i32.load8_s", OpI32Load8U: "i32.load8_u", OpI32Load16S: "i32.load16_s", OpI32Load16U: "i32.load16_u",
	OpI64Load8S: "i64.load8_s", OpI64Load8U: "i64.load8_u", OpI64Load16S: "i64.load16_s", OpI64Load16U: "i64.load16_u",
	OpI64Load32S: "i64.load32_s", OpI64Load32U: "i64.load32_u",
	OpI32Store: "i32.store", OpI64Store: "i64.store", OpF32Store: "f32.store", OpF64Store: "f64.store",
	OpI32Store8: "i32.store8", OpI32Store16: "i32.store16",
	OpI64Store8: "i64.store8", OpI64Store16: "i64.store16", OpI64Store32: "i64.store32",
	OpMemorySize: "memory.size", OpMemoryGrow: "memory.grow",
	OpI32Const: "i32.const", OpI64Const: "i64.const", OpF32Const: "f32.const", OpF64Const: "f64.const",
	OpI32Eqz: "i32.eqz", OpI32Eq: "i32.eq", OpI32Ne: "i32.ne",
	OpI32LtS: "i32.lt_s", OpI32LtU: "i32.lt_u", OpI32GtS: "i32.gt_s", OpI32GtU: "i32.gt_u",
	OpI32LeS: "i32.le_s", OpI32LeU: "i32.le_u", OpI32GeS: "i32.ge_s", OpI32GeU: "i32.ge_u",
	OpI64Eqz: "i64.eqz", OpI64Eq: "i64.eq", OpI64Ne: "i64.ne",
	OpI64LtS: "i64.lt_s", OpI64LtU: "i64.lt_u", OpI64GtS: "i64.gt_s", OpI64GtU: "i64.gt_u",
	OpI64LeS: "i64.le_s", OpI64LeU: "i64.le_u", OpI64GeS: "i64.ge_s", OpI64GeU: "i64.ge_u",
	OpF32Eq: "f32.eq", OpF32Ne: "f32.ne", OpF32Lt: "f32.lt", OpF32Gt: "f32.gt", OpF32Le: "f32.le", OpF32Ge: "f32.ge",
	OpF64Eq: "f64.eq", OpF64Ne: "f64.ne", OpF64Lt: "f64.lt", OpF64Gt: "f64.gt", OpF64Le: "f64.le", OpF64Ge: "f64.ge",
	OpI32Clz: "i32.clz", OpI32Ctz: "i32.ctz", OpI32Popcnt: "i32.popcnt",
	OpI32Add: "i32.add", OpI32Sub: "i32.sub", OpI32Mul: "i32.mul",
	OpI32DivS: "i32.div_s", OpI32DivU: "i32.div_u", OpI32RemS: "i32.rem_s", OpI32RemU: "i32.rem_u",
	OpI32And: "i32.and", OpI32Or: "i32.or", OpI32Xor: "i32.xor",
	OpI32Shl: "i32.shl", OpI32ShrS: "i32.shr_s", OpI32ShrU: "i32.shr_u", OpI32Rotl: "i32.rotl", OpI32Rotr: "i32.rotr",
	OpI64Clz: "i64.clz", OpI64Ctz: "i64.ctz", OpI64Popcnt: "i64.popcnt",
	OpI64Add: "i64.add", OpI64Sub: "i64.sub", OpI64Mul: "i64.mul",
	OpI64DivS: "i64.div_s", OpI64DivU: "i64.div_u", OpI64RemS: "i64.rem_s", OpI64RemU: "i64.rem_u",
	OpI64And: "i64.and", OpI64Or: "i64.or", OpI64Xor: "i64.xor",
	OpI64Shl: "i64.shl", OpI64ShrS: "i64.shr_s", OpI64ShrU: "i64.shr_u", OpI64Rotl: "i64.rotl", OpI64Rotr: "i64.rotr",
	OpF32Abs: "f32.abs", OpF32Neg: "f32.neg", OpF32Ceil: "f32.ceil", OpF32Floor: "f32.floor",
	OpF32Trunc: "f32.trunc", OpF32Nearest: "f32.nearest", OpF32Sqrt: "f32.sqrt",
	OpF32Add: "f32.add", OpF32Sub: "f32.sub", OpF32Mul: "f32.mul", OpF32Div: "f32.div",
	OpF32Min: "f32.min", OpF32Max: "f32.max", OpF32Copysign: "f32.copysign",
	OpF64Abs: "f64.abs", OpF64Neg: "f64.neg", OpF64Ceil: "f64.ceil", OpF64Floor: "f64.floor",
	OpF64Trunc: "f64.trunc", OpF64Nearest: "f64.nearest", OpF64Sqrt: "f64.sqrt",
	OpF64Add: "f64.add", OpF64Sub: "f64.sub", OpF64Mul: "f64.mul", OpF64Div: "f64.div",
	OpF64Min: "f64.min", OpF64Max: "f64.max", OpF64Copysign: "f64.copysign",
	OpI32WrapI64:   "i32.wrap_i64",
	OpI32TruncF32S: "i32.trunc_f32_s", OpI32TruncF32U: "i32.trunc_f32_u",
	OpI32TruncF64S: "i32.trunc_f64_s", OpI32TruncF64U: "i32.trunc_f64_u",
	OpI64ExtendI32S: "i64.extend_i32_s", OpI64ExtendI32U: "i64.extend_i32_u",
	OpI64TruncF32S: "i64.trunc_f32_s", OpI64TruncF32U: "i64.trunc_f32_u",
	OpI64TruncF64S: "i64.trunc_f64_s", OpI64TruncF64U: "i64.trunc_f64_u",
	OpF32ConvertI32S: "f32.convert_i32_s", OpF32ConvertI32U: "f32.convert_i32_u",
	OpF32ConvertI64S: "f32.convert_i64_s", OpF32ConvertI64U: "f32.convert_i64_u",
	OpF32DemoteF64:   "f32.demote_f64",
	OpF64ConvertI32S: "f64.convert_i32_s", OpF64ConvertI32U: "f64.convert_i32_u",
	OpF64ConvertI64S: "f64.convert_i64_s", OpF64ConvertI64U: "f64.convert_i64_u",
	OpF64PromoteF32:     "f64.promote_f32",
	OpI32ReinterpretF32: "i32.reinterpret_f32", OpI64ReinterpretF64: "i64.reinterpret_f64",
	OpF32ReinterpretI32: "f32.reinterpret_i32", OpF64ReinterpretI64: "f64.reinterpret_i64",
	OpI32Extend8S: "i32.extend8_s", OpI32Extend16S: "i32.extend16_s",
	OpI64Extend8S: "i64.extend8_s", OpI64Extend16S: "i64.extend16_s", OpI64Extend32S: "i64.extend32_s",
}

// OpcodeName returns the mnemonic for op, or a hex fallback.
func OpcodeName(op byte) string {
	if n, ok := opcodeNames[op]; ok {
		return n
	}
	return "op(0x" + hexByte(op) + ")"
}

func hexByte(b byte) string {
	const digits = "0123456789abcdef"
	return string([]byte{digits[b>>4], digits[b&0xF]})
}

package wasm

import (
	"encoding/binary"
	"fmt"

	"waran/internal/leb128"
)

// Encode serializes the module back to the WebAssembly binary format.
// Decode(Encode(m)) yields a module equivalent to m.
func Encode(m *Module) ([]byte, error) {
	out := append([]byte(nil), wasmMagic...)

	appendSection := func(id byte, payload []byte) {
		if len(payload) == 0 {
			return
		}
		out = append(out, id)
		out = leb128.AppendUint32(out, uint32(len(payload)))
		out = append(out, payload...)
	}

	// Type section.
	if len(m.Types) > 0 {
		p := leb128.AppendUint32(nil, uint32(len(m.Types)))
		for _, t := range m.Types {
			p = append(p, 0x60)
			p = leb128.AppendUint32(p, uint32(len(t.Params)))
			for _, v := range t.Params {
				p = append(p, byte(v))
			}
			p = leb128.AppendUint32(p, uint32(len(t.Results)))
			for _, v := range t.Results {
				p = append(p, byte(v))
			}
		}
		appendSection(sectionType, p)
	}

	// Import section.
	if len(m.Imports) > 0 {
		p := leb128.AppendUint32(nil, uint32(len(m.Imports)))
		for _, im := range m.Imports {
			p = appendName(p, im.Module)
			p = appendName(p, im.Name)
			p = append(p, byte(im.Kind))
			switch im.Kind {
			case ExternFunc:
				p = leb128.AppendUint32(p, im.TypeIx)
			case ExternTable:
				p = append(p, byte(im.Table.Elem))
				p = appendLimits(p, im.Table.Limits)
			case ExternMemory:
				p = appendLimits(p, im.Mem.Limits)
			case ExternGlobal:
				p = append(p, byte(im.Global.Type))
				p = appendBool(p, im.Global.Mutable)
			default:
				return nil, fmt.Errorf("wasm: cannot encode import kind %v", im.Kind)
			}
		}
		appendSection(sectionImport, p)
	}

	// Function section.
	if len(m.Funcs) > 0 {
		p := leb128.AppendUint32(nil, uint32(len(m.Funcs)))
		for _, tix := range m.Funcs {
			p = leb128.AppendUint32(p, tix)
		}
		appendSection(sectionFunction, p)
	}

	// Table section.
	if len(m.Tables) > 0 {
		p := leb128.AppendUint32(nil, uint32(len(m.Tables)))
		for _, t := range m.Tables {
			p = append(p, byte(t.Elem))
			p = appendLimits(p, t.Limits)
		}
		appendSection(sectionTable, p)
	}

	// Memory section.
	if len(m.Mems) > 0 {
		p := leb128.AppendUint32(nil, uint32(len(m.Mems)))
		for _, mm := range m.Mems {
			p = appendLimits(p, mm.Limits)
		}
		appendSection(sectionMemory, p)
	}

	// Global section.
	if len(m.Globals) > 0 {
		p := leb128.AppendUint32(nil, uint32(len(m.Globals)))
		for _, g := range m.Globals {
			p = append(p, byte(g.Type.Type))
			p = appendBool(p, g.Type.Mutable)
			var err error
			p, err = appendConstExpr(p, g.Init)
			if err != nil {
				return nil, err
			}
		}
		appendSection(sectionGlobal, p)
	}

	// Export section.
	if len(m.Exports) > 0 {
		p := leb128.AppendUint32(nil, uint32(len(m.Exports)))
		for _, e := range m.Exports {
			p = appendName(p, e.Name)
			p = append(p, byte(e.Kind))
			p = leb128.AppendUint32(p, e.Index)
		}
		appendSection(sectionExport, p)
	}

	// Start section.
	if m.Start != nil {
		appendSection(sectionStart, leb128.AppendUint32(nil, *m.Start))
	}

	// Element section.
	if len(m.Elems) > 0 {
		p := leb128.AppendUint32(nil, uint32(len(m.Elems)))
		for _, es := range m.Elems {
			p = leb128.AppendUint32(p, es.TableIx)
			var err error
			p, err = appendConstExpr(p, es.Offset)
			if err != nil {
				return nil, err
			}
			p = leb128.AppendUint32(p, uint32(len(es.Funcs)))
			for _, fx := range es.Funcs {
				p = leb128.AppendUint32(p, fx)
			}
		}
		appendSection(sectionElement, p)
	}

	// Code section.
	if len(m.Codes) > 0 {
		p := leb128.AppendUint32(nil, uint32(len(m.Codes)))
		for _, c := range m.Codes {
			body := encodeLocals(c.Locals)
			body = append(body, c.Body...)
			p = leb128.AppendUint32(p, uint32(len(body)))
			p = append(p, body...)
		}
		appendSection(sectionCode, p)
	}

	// Data section.
	if len(m.Datas) > 0 {
		p := leb128.AppendUint32(nil, uint32(len(m.Datas)))
		for _, ds := range m.Datas {
			p = leb128.AppendUint32(p, ds.MemIx)
			var err error
			p, err = appendConstExpr(p, ds.Offset)
			if err != nil {
				return nil, err
			}
			p = leb128.AppendUint32(p, uint32(len(ds.Bytes)))
			p = append(p, ds.Bytes...)
		}
		appendSection(sectionData, p)
	}

	return out, nil
}

func appendName(dst []byte, s string) []byte {
	dst = leb128.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendLimits(dst []byte, l Limits) []byte {
	if l.HasMax {
		dst = append(dst, 0x01)
		dst = leb128.AppendUint32(dst, l.Min)
		return leb128.AppendUint32(dst, l.Max)
	}
	dst = append(dst, 0x00)
	return leb128.AppendUint32(dst, l.Min)
}

func appendConstExpr(dst []byte, ce ConstExpr) ([]byte, error) {
	dst = append(dst, ce.Op)
	switch ce.Op {
	case OpI32Const:
		dst = leb128.AppendInt32(dst, int32(uint32(ce.Value)))
	case OpI64Const:
		dst = leb128.AppendInt64(dst, int64(ce.Value))
	case OpF32Const:
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(ce.Value))
		dst = append(dst, b[:]...)
	case OpF64Const:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], ce.Value)
		dst = append(dst, b[:]...)
	case OpGlobalGet:
		dst = leb128.AppendUint32(dst, ce.GlobalIx)
	default:
		return nil, fmt.Errorf("wasm: cannot encode constant expression opcode %s", OpcodeName(ce.Op))
	}
	return append(dst, OpEnd), nil
}

// encodeLocals run-length encodes the expanded locals list.
func encodeLocals(locals []ValType) []byte {
	type group struct {
		count uint32
		typ   ValType
	}
	var groups []group
	for _, l := range locals {
		if len(groups) > 0 && groups[len(groups)-1].typ == l {
			groups[len(groups)-1].count++
		} else {
			groups = append(groups, group{1, l})
		}
	}
	out := leb128.AppendUint32(nil, uint32(len(groups)))
	for _, g := range groups {
		out = leb128.AppendUint32(out, g.count)
		out = append(out, byte(g.typ))
	}
	return out
}

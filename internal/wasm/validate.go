package wasm

import (
	"fmt"

	"waran/internal/leb128"
)

// Validate type-checks the module: index spaces, constant expressions, and
// every function body via the standard operand/control stack algorithm.
// Instantiation refuses modules that have not been validated.
func Validate(m *Module) error {
	// Index-space bookkeeping.
	m.numImportedFuncs, m.numImportedTables, m.numImportedMems, m.numImportedGlobals = 0, 0, 0, 0
	for i, im := range m.Imports {
		switch im.Kind {
		case ExternFunc:
			if int(im.TypeIx) >= len(m.Types) {
				return fmt.Errorf("wasm: import %d (%s.%s): type index %d out of range", i, im.Module, im.Name, im.TypeIx)
			}
			m.numImportedFuncs++
		case ExternTable:
			m.numImportedTables++
		case ExternMemory:
			m.numImportedMems++
		case ExternGlobal:
			m.numImportedGlobals++
		}
	}
	for i, tix := range m.Funcs {
		if int(tix) >= len(m.Types) {
			return fmt.Errorf("wasm: function %d: type index %d out of range", i, tix)
		}
	}
	if m.numImportedTables+len(m.Tables) > 1 {
		return fmt.Errorf("wasm: at most one table is supported")
	}
	if m.numImportedMems+len(m.Mems) > 1 {
		return fmt.Errorf("wasm: at most one memory is supported")
	}

	numFuncs := m.numImportedFuncs + len(m.Funcs)
	numGlobals := m.numImportedGlobals + len(m.Globals)

	// Global initializers: may only reference imported globals (which are
	// initialized before local ones) and those must be immutable.
	for i, g := range m.Globals {
		if err := m.checkConstExpr(g.Init, g.Type.Type); err != nil {
			return fmt.Errorf("wasm: global %d: %w", i, err)
		}
	}

	// Exports.
	for _, e := range m.Exports {
		var limit int
		switch e.Kind {
		case ExternFunc:
			limit = numFuncs
		case ExternTable:
			limit = m.numImportedTables + len(m.Tables)
		case ExternMemory:
			limit = m.numImportedMems + len(m.Mems)
		case ExternGlobal:
			limit = numGlobals
		}
		if int(e.Index) >= limit {
			return fmt.Errorf("wasm: export %q: index %d out of range", e.Name, e.Index)
		}
	}

	// Start function: () -> ().
	if m.Start != nil {
		ft, err := m.FuncTypeAt(*m.Start)
		if err != nil {
			return err
		}
		if len(ft.Params) != 0 || len(ft.Results) != 0 {
			return fmt.Errorf("wasm: start function must have empty signature, has %s", ft)
		}
	}

	// Element segments.
	for i, es := range m.Elems {
		if m.numImportedTables+len(m.Tables) == 0 {
			return fmt.Errorf("wasm: element segment %d but module has no table", i)
		}
		if err := m.checkConstExpr(es.Offset, ValI32); err != nil {
			return fmt.Errorf("wasm: element segment %d offset: %w", i, err)
		}
		for _, fx := range es.Funcs {
			if int(fx) >= numFuncs {
				return fmt.Errorf("wasm: element segment %d references function %d out of range", i, fx)
			}
		}
	}

	// Data segments.
	for i, ds := range m.Datas {
		if m.numImportedMems+len(m.Mems) == 0 {
			return fmt.Errorf("wasm: data segment %d but module has no memory", i)
		}
		if err := m.checkConstExpr(ds.Offset, ValI32); err != nil {
			return fmt.Errorf("wasm: data segment %d offset: %w", i, err)
		}
	}

	// Function bodies.
	for i := range m.Codes {
		ft := m.Types[m.Funcs[i]]
		if err := m.validateBody(uint32(m.numImportedFuncs+i), ft, &m.Codes[i]); err != nil {
			return fmt.Errorf("wasm: function %d: %w", m.numImportedFuncs+i, err)
		}
	}

	m.validated = true
	return nil
}

func (m *Module) checkConstExpr(ce ConstExpr, want ValType) error {
	var got ValType
	switch ce.Op {
	case OpI32Const:
		got = ValI32
	case OpI64Const:
		got = ValI64
	case OpF32Const:
		got = ValF32
	case OpF64Const:
		got = ValF64
	case OpGlobalGet:
		if int(ce.GlobalIx) >= m.numImportedGlobals {
			return fmt.Errorf("constant expression may only reference imported globals (index %d)", ce.GlobalIx)
		}
		n := 0
		for _, im := range m.Imports {
			if im.Kind != ExternGlobal {
				continue
			}
			if n == int(ce.GlobalIx) {
				if im.Global.Mutable {
					return fmt.Errorf("constant expression references mutable global %d", ce.GlobalIx)
				}
				got = im.Global.Type
			}
			n++
		}
	default:
		return fmt.Errorf("invalid constant expression opcode %s", OpcodeName(ce.Op))
	}
	if got != want {
		return fmt.Errorf("constant expression has type %s, want %s", got, want)
	}
	return nil
}

// unknownType is the bottom type used for stack-polymorphic (unreachable)
// typing; it unifies with every value type.
const unknownType ValType = 0

type ctrlFrame struct {
	opcode      byte // OpBlock, OpLoop, OpIf, or 0 for the function frame
	startTypes  []ValType
	endTypes    []ValType
	height      int
	unreachable bool
}

type bodyValidator struct {
	m      *Module
	locals []ValType
	vals   []ValType
	ctrls  []ctrlFrame
	r      *reader
}

func (m *Module) validateBody(funcIdx uint32, ft FuncType, c *Code) error {
	locals := make([]ValType, 0, len(ft.Params)+len(c.Locals))
	locals = append(locals, ft.Params...)
	locals = append(locals, c.Locals...)
	v := &bodyValidator{
		m:      m,
		locals: locals,
		r:      &reader{b: c.Body},
	}
	v.pushCtrl(0, nil, ft.Results)
	for len(v.ctrls) > 0 {
		if v.r.remaining() == 0 {
			return fmt.Errorf("body ended with %d unclosed blocks", len(v.ctrls))
		}
		op, err := v.r.byte()
		if err != nil {
			return err
		}
		if err := v.step(op); err != nil {
			return fmt.Errorf("at body offset %d (%s): %w", v.r.pos-1, OpcodeName(op), err)
		}
	}
	if v.r.remaining() != 0 {
		return fmt.Errorf("%d trailing bytes after function end", v.r.remaining())
	}
	return nil
}

func (v *bodyValidator) pushVal(t ValType) { v.vals = append(v.vals, t) }

func (v *bodyValidator) popVal() (ValType, error) {
	frame := &v.ctrls[len(v.ctrls)-1]
	if len(v.vals) == frame.height {
		if frame.unreachable {
			return unknownType, nil
		}
		return 0, fmt.Errorf("operand stack underflow")
	}
	t := v.vals[len(v.vals)-1]
	v.vals = v.vals[:len(v.vals)-1]
	return t, nil
}

func (v *bodyValidator) popExpect(want ValType) (ValType, error) {
	got, err := v.popVal()
	if err != nil {
		return 0, err
	}
	if got != want && got != unknownType && want != unknownType {
		return 0, fmt.Errorf("type mismatch: expected %s, found %s", want, got)
	}
	return got, nil
}

func (v *bodyValidator) pushCtrl(opcode byte, in, out []ValType) {
	v.ctrls = append(v.ctrls, ctrlFrame{
		opcode:     opcode,
		startTypes: in,
		endTypes:   out,
		height:     len(v.vals),
	})
	for _, t := range in {
		v.pushVal(t)
	}
}

func (v *bodyValidator) popCtrl() (ctrlFrame, error) {
	if len(v.ctrls) == 0 {
		return ctrlFrame{}, fmt.Errorf("control stack underflow")
	}
	frame := v.ctrls[len(v.ctrls)-1]
	for i := len(frame.endTypes) - 1; i >= 0; i-- {
		if _, err := v.popExpect(frame.endTypes[i]); err != nil {
			return frame, err
		}
	}
	if len(v.vals) != frame.height {
		return frame, fmt.Errorf("%d values left on stack at end of block", len(v.vals)-frame.height)
	}
	v.ctrls = v.ctrls[:len(v.ctrls)-1]
	return frame, nil
}

// labelTypes returns the types a branch to the given frame must provide.
func labelTypes(f *ctrlFrame) []ValType {
	if f.opcode == OpLoop {
		return f.startTypes
	}
	return f.endTypes
}

func (v *bodyValidator) markUnreachable() {
	frame := &v.ctrls[len(v.ctrls)-1]
	v.vals = v.vals[:frame.height]
	frame.unreachable = true
}

func (v *bodyValidator) frameAt(depth uint32) (*ctrlFrame, error) {
	if int(depth) >= len(v.ctrls) {
		return nil, fmt.Errorf("branch depth %d exceeds nesting %d", depth, len(v.ctrls))
	}
	return &v.ctrls[len(v.ctrls)-1-int(depth)], nil
}

// blockType reads a block type immediate and resolves it to a FuncType.
func (v *bodyValidator) blockType() (FuncType, error) {
	raw, n, err := leb128.Int33(v.r.b[v.r.pos:])
	if err != nil {
		return FuncType{}, err
	}
	v.r.pos += n
	if raw >= 0 {
		if int(raw) >= len(v.m.Types) {
			return FuncType{}, fmt.Errorf("block type index %d out of range", raw)
		}
		return v.m.Types[raw], nil
	}
	switch byte(raw & 0x7F) {
	case 0x40:
		return FuncType{}, nil
	case byte(ValI32):
		return FuncType{Results: []ValType{ValI32}}, nil
	case byte(ValI64):
		return FuncType{Results: []ValType{ValI64}}, nil
	case byte(ValF32):
		return FuncType{Results: []ValType{ValF32}}, nil
	case byte(ValF64):
		return FuncType{Results: []ValType{ValF64}}, nil
	default:
		return FuncType{}, fmt.Errorf("invalid block type %d", raw)
	}
}

func (v *bodyValidator) memArg(maxAlign uint32) error {
	align, err := v.r.u32()
	if err != nil {
		return err
	}
	if align > maxAlign {
		return fmt.Errorf("alignment 2^%d exceeds natural alignment 2^%d", align, maxAlign)
	}
	if _, err := v.r.u32(); err != nil { // offset
		return err
	}
	if v.m.numImportedMems+len(v.m.Mems) == 0 {
		return fmt.Errorf("memory instruction but module has no memory")
	}
	return nil
}

func (v *bodyValidator) globalType(ix uint32) (GlobalType, error) {
	n := 0
	for _, im := range v.m.Imports {
		if im.Kind != ExternGlobal {
			continue
		}
		if n == int(ix) {
			return im.Global, nil
		}
		n++
	}
	local := int(ix) - n
	if local < 0 || local >= len(v.m.Globals) {
		return GlobalType{}, fmt.Errorf("global index %d out of range", ix)
	}
	return v.m.Globals[local].Type, nil
}

func (v *bodyValidator) step(op byte) error {
	switch op {
	case OpUnreachable:
		v.markUnreachable()
	case OpNop:
	case OpBlock, OpLoop:
		bt, err := v.blockType()
		if err != nil {
			return err
		}
		for i := len(bt.Params) - 1; i >= 0; i-- {
			if _, err := v.popExpect(bt.Params[i]); err != nil {
				return err
			}
		}
		v.pushCtrl(op, bt.Params, bt.Results)
	case OpIf:
		bt, err := v.blockType()
		if err != nil {
			return err
		}
		if _, err := v.popExpect(ValI32); err != nil {
			return err
		}
		for i := len(bt.Params) - 1; i >= 0; i-- {
			if _, err := v.popExpect(bt.Params[i]); err != nil {
				return err
			}
		}
		v.pushCtrl(op, bt.Params, bt.Results)
	case OpElse:
		frame, err := v.popCtrl()
		if err != nil {
			return err
		}
		if frame.opcode != OpIf {
			return fmt.Errorf("else without matching if")
		}
		v.pushCtrl(OpElse, frame.startTypes, frame.endTypes)
	case OpEnd:
		frame, err := v.popCtrl()
		if err != nil {
			return err
		}
		// An if without else must have matching param/result types, since
		// the implicit else is a no-op.
		if frame.opcode == OpIf && !(FuncType{Params: frame.startTypes, Results: frame.endTypes}).Equal(FuncType{Params: frame.startTypes, Results: frame.startTypes}) {
			return fmt.Errorf("if without else must have identical params and results")
		}
		for _, t := range frame.endTypes {
			v.pushVal(t)
		}
	case OpBr:
		depth, err := v.r.u32()
		if err != nil {
			return err
		}
		frame, err := v.frameAt(depth)
		if err != nil {
			return err
		}
		lt := labelTypes(frame)
		for i := len(lt) - 1; i >= 0; i-- {
			if _, err := v.popExpect(lt[i]); err != nil {
				return err
			}
		}
		v.markUnreachable()
	case OpBrIf:
		depth, err := v.r.u32()
		if err != nil {
			return err
		}
		if _, err := v.popExpect(ValI32); err != nil {
			return err
		}
		frame, err := v.frameAt(depth)
		if err != nil {
			return err
		}
		lt := labelTypes(frame)
		for i := len(lt) - 1; i >= 0; i-- {
			if _, err := v.popExpect(lt[i]); err != nil {
				return err
			}
		}
		for _, t := range lt {
			v.pushVal(t)
		}
	case OpBrTable:
		n, err := v.r.vecLen()
		if err != nil {
			return err
		}
		targets := make([]uint32, n+1)
		for i := 0; i <= n; i++ {
			if targets[i], err = v.r.u32(); err != nil {
				return err
			}
		}
		if _, err := v.popExpect(ValI32); err != nil {
			return err
		}
		defFrame, err := v.frameAt(targets[n])
		if err != nil {
			return err
		}
		defTypes := labelTypes(defFrame)
		for _, t := range targets[:n] {
			f, err := v.frameAt(t)
			if err != nil {
				return err
			}
			lt := labelTypes(f)
			if len(lt) != len(defTypes) {
				return fmt.Errorf("br_table targets have inconsistent label arities")
			}
			for i := range lt {
				if lt[i] != defTypes[i] {
					return fmt.Errorf("br_table targets have inconsistent label types")
				}
			}
		}
		for i := len(defTypes) - 1; i >= 0; i-- {
			if _, err := v.popExpect(defTypes[i]); err != nil {
				return err
			}
		}
		v.markUnreachable()
	case OpReturn:
		results := v.ctrls[0].endTypes
		for i := len(results) - 1; i >= 0; i-- {
			if _, err := v.popExpect(results[i]); err != nil {
				return err
			}
		}
		v.markUnreachable()
	case OpCall:
		fx, err := v.r.u32()
		if err != nil {
			return err
		}
		ft, err := v.m.FuncTypeAt(fx)
		if err != nil {
			return err
		}
		return v.applyCall(ft)
	case OpCallIndirect:
		tix, err := v.r.u32()
		if err != nil {
			return err
		}
		tableIx, err := v.r.u32()
		if err != nil {
			return err
		}
		if tableIx != 0 {
			return fmt.Errorf("call_indirect table index must be 0")
		}
		if v.m.numImportedTables+len(v.m.Tables) == 0 {
			return fmt.Errorf("call_indirect but module has no table")
		}
		if int(tix) >= len(v.m.Types) {
			return fmt.Errorf("call_indirect type index %d out of range", tix)
		}
		if _, err := v.popExpect(ValI32); err != nil {
			return err
		}
		return v.applyCall(v.m.Types[tix])

	case OpDrop:
		_, err := v.popVal()
		return err
	case OpSelect:
		if _, err := v.popExpect(ValI32); err != nil {
			return err
		}
		t1, err := v.popVal()
		if err != nil {
			return err
		}
		t2, err := v.popVal()
		if err != nil {
			return err
		}
		if t1 != t2 && t1 != unknownType && t2 != unknownType {
			return fmt.Errorf("select operands have mismatched types %s and %s", t1, t2)
		}
		if t1 == unknownType {
			v.pushVal(t2)
		} else {
			v.pushVal(t1)
		}

	case OpLocalGet, OpLocalSet, OpLocalTee:
		ix, err := v.r.u32()
		if err != nil {
			return err
		}
		if int(ix) >= len(v.locals) {
			return fmt.Errorf("local index %d out of range (have %d)", ix, len(v.locals))
		}
		t := v.locals[ix]
		switch op {
		case OpLocalGet:
			v.pushVal(t)
		case OpLocalSet:
			_, err = v.popExpect(t)
			return err
		case OpLocalTee:
			if _, err = v.popExpect(t); err != nil {
				return err
			}
			v.pushVal(t)
		}
	case OpGlobalGet:
		ix, err := v.r.u32()
		if err != nil {
			return err
		}
		gt, err := v.globalType(ix)
		if err != nil {
			return err
		}
		v.pushVal(gt.Type)
	case OpGlobalSet:
		ix, err := v.r.u32()
		if err != nil {
			return err
		}
		gt, err := v.globalType(ix)
		if err != nil {
			return err
		}
		if !gt.Mutable {
			return fmt.Errorf("global.set on immutable global %d", ix)
		}
		_, err = v.popExpect(gt.Type)
		return err

	case OpI32Load, OpF32Load:
		return v.loadOp(op, 2)
	case OpI64Load, OpF64Load:
		return v.loadOp(op, 3)
	case OpI32Load8S, OpI32Load8U, OpI64Load8S, OpI64Load8U:
		return v.loadOp(op, 0)
	case OpI32Load16S, OpI32Load16U, OpI64Load16S, OpI64Load16U:
		return v.loadOp(op, 1)
	case OpI64Load32S, OpI64Load32U:
		return v.loadOp(op, 2)
	case OpI32Store, OpF32Store:
		return v.storeOp(op, 2)
	case OpI64Store, OpF64Store:
		return v.storeOp(op, 3)
	case OpI32Store8, OpI64Store8:
		return v.storeOp(op, 0)
	case OpI32Store16, OpI64Store16:
		return v.storeOp(op, 1)
	case OpI64Store32:
		return v.storeOp(op, 2)

	case OpMemorySize:
		if err := v.memIndexZero(); err != nil {
			return err
		}
		v.pushVal(ValI32)
	case OpMemoryGrow:
		if err := v.memIndexZero(); err != nil {
			return err
		}
		if _, err := v.popExpect(ValI32); err != nil {
			return err
		}
		v.pushVal(ValI32)

	case OpI32Const:
		if _, err := v.r.s32(); err != nil {
			return err
		}
		v.pushVal(ValI32)
	case OpI64Const:
		if _, err := v.r.s64(); err != nil {
			return err
		}
		v.pushVal(ValI64)
	case OpF32Const:
		if _, err := v.r.bytes(4); err != nil {
			return err
		}
		v.pushVal(ValF32)
	case OpF64Const:
		if _, err := v.r.bytes(8); err != nil {
			return err
		}
		v.pushVal(ValF64)

	case OpI32Eqz:
		return v.unOp(ValI32, ValI32)
	case OpI64Eqz:
		return v.unOp(ValI64, ValI32)
	case OpI32Eq, OpI32Ne, OpI32LtS, OpI32LtU, OpI32GtS, OpI32GtU, OpI32LeS, OpI32LeU, OpI32GeS, OpI32GeU:
		return v.binOp(ValI32, ValI32)
	case OpI64Eq, OpI64Ne, OpI64LtS, OpI64LtU, OpI64GtS, OpI64GtU, OpI64LeS, OpI64LeU, OpI64GeS, OpI64GeU:
		return v.binOp(ValI64, ValI32)
	case OpF32Eq, OpF32Ne, OpF32Lt, OpF32Gt, OpF32Le, OpF32Ge:
		return v.binOp(ValF32, ValI32)
	case OpF64Eq, OpF64Ne, OpF64Lt, OpF64Gt, OpF64Le, OpF64Ge:
		return v.binOp(ValF64, ValI32)

	case OpI32Clz, OpI32Ctz, OpI32Popcnt, OpI32Extend8S, OpI32Extend16S:
		return v.unOp(ValI32, ValI32)
	case OpI32Add, OpI32Sub, OpI32Mul, OpI32DivS, OpI32DivU, OpI32RemS, OpI32RemU,
		OpI32And, OpI32Or, OpI32Xor, OpI32Shl, OpI32ShrS, OpI32ShrU, OpI32Rotl, OpI32Rotr:
		return v.binOp(ValI32, ValI32)
	case OpI64Clz, OpI64Ctz, OpI64Popcnt, OpI64Extend8S, OpI64Extend16S, OpI64Extend32S:
		return v.unOp(ValI64, ValI64)
	case OpI64Add, OpI64Sub, OpI64Mul, OpI64DivS, OpI64DivU, OpI64RemS, OpI64RemU,
		OpI64And, OpI64Or, OpI64Xor, OpI64Shl, OpI64ShrS, OpI64ShrU, OpI64Rotl, OpI64Rotr:
		return v.binOp(ValI64, ValI64)
	case OpF32Abs, OpF32Neg, OpF32Ceil, OpF32Floor, OpF32Trunc, OpF32Nearest, OpF32Sqrt:
		return v.unOp(ValF32, ValF32)
	case OpF32Add, OpF32Sub, OpF32Mul, OpF32Div, OpF32Min, OpF32Max, OpF32Copysign:
		return v.binOp(ValF32, ValF32)
	case OpF64Abs, OpF64Neg, OpF64Ceil, OpF64Floor, OpF64Trunc, OpF64Nearest, OpF64Sqrt:
		return v.unOp(ValF64, ValF64)
	case OpF64Add, OpF64Sub, OpF64Mul, OpF64Div, OpF64Min, OpF64Max, OpF64Copysign:
		return v.binOp(ValF64, ValF64)

	case OpI32WrapI64:
		return v.unOp(ValI64, ValI32)
	case OpI32TruncF32S, OpI32TruncF32U:
		return v.unOp(ValF32, ValI32)
	case OpI32TruncF64S, OpI32TruncF64U:
		return v.unOp(ValF64, ValI32)
	case OpI64ExtendI32S, OpI64ExtendI32U:
		return v.unOp(ValI32, ValI64)
	case OpI64TruncF32S, OpI64TruncF32U:
		return v.unOp(ValF32, ValI64)
	case OpI64TruncF64S, OpI64TruncF64U:
		return v.unOp(ValF64, ValI64)
	case OpF32ConvertI32S, OpF32ConvertI32U:
		return v.unOp(ValI32, ValF32)
	case OpF32ConvertI64S, OpF32ConvertI64U:
		return v.unOp(ValI64, ValF32)
	case OpF32DemoteF64:
		return v.unOp(ValF64, ValF32)
	case OpF64ConvertI32S, OpF64ConvertI32U:
		return v.unOp(ValI32, ValF64)
	case OpF64ConvertI64S, OpF64ConvertI64U:
		return v.unOp(ValI64, ValF64)
	case OpF64PromoteF32:
		return v.unOp(ValF32, ValF64)
	case OpI32ReinterpretF32:
		return v.unOp(ValF32, ValI32)
	case OpI64ReinterpretF64:
		return v.unOp(ValF64, ValI64)
	case OpF32ReinterpretI32:
		return v.unOp(ValI32, ValF32)
	case OpF64ReinterpretI64:
		return v.unOp(ValI64, ValF64)

	case OpPrefixMisc:
		sub, err := v.r.u32()
		if err != nil {
			return err
		}
		switch sub {
		case MiscI32TruncSatF32S, MiscI32TruncSatF32U:
			return v.unOp(ValF32, ValI32)
		case MiscI32TruncSatF64S, MiscI32TruncSatF64U:
			return v.unOp(ValF64, ValI32)
		case MiscI64TruncSatF32S, MiscI64TruncSatF32U:
			return v.unOp(ValF32, ValI64)
		case MiscI64TruncSatF64S, MiscI64TruncSatF64U:
			return v.unOp(ValF64, ValI64)
		case MiscMemoryCopy:
			if v.m.numImportedMems+len(v.m.Mems) == 0 {
				return fmt.Errorf("memory.copy but module has no memory")
			}
			for j := 0; j < 2; j++ { // dst and src memory indices
				c, err := v.r.byte()
				if err != nil {
					return err
				}
				if c != 0 {
					return fmt.Errorf("memory index must be 0")
				}
			}
			for i := 0; i < 3; i++ {
				if _, err := v.popExpect(ValI32); err != nil {
					return err
				}
			}
		case MiscMemoryFill:
			if v.m.numImportedMems+len(v.m.Mems) == 0 {
				return fmt.Errorf("memory.fill but module has no memory")
			}
			c, err := v.r.byte()
			if err != nil {
				return err
			}
			if c != 0 {
				return fmt.Errorf("memory index must be 0")
			}
			for i := 0; i < 3; i++ {
				if _, err := v.popExpect(ValI32); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("unsupported misc opcode %d", sub)
		}
	default:
		return fmt.Errorf("unsupported opcode")
	}
	return nil
}

func (v *bodyValidator) memIndexZero() error {
	if v.m.numImportedMems+len(v.m.Mems) == 0 {
		return fmt.Errorf("memory instruction but module has no memory")
	}
	c, err := v.r.byte()
	if err != nil {
		return err
	}
	if c != 0 {
		return fmt.Errorf("memory index must be 0")
	}
	return nil
}

func (v *bodyValidator) applyCall(ft FuncType) error {
	for i := len(ft.Params) - 1; i >= 0; i-- {
		if _, err := v.popExpect(ft.Params[i]); err != nil {
			return err
		}
	}
	for _, t := range ft.Results {
		v.pushVal(t)
	}
	return nil
}

func (v *bodyValidator) unOp(in, out ValType) error {
	if _, err := v.popExpect(in); err != nil {
		return err
	}
	v.pushVal(out)
	return nil
}

func (v *bodyValidator) binOp(in, out ValType) error {
	if _, err := v.popExpect(in); err != nil {
		return err
	}
	if _, err := v.popExpect(in); err != nil {
		return err
	}
	v.pushVal(out)
	return nil
}

func loadResultType(op byte) ValType {
	switch op {
	case OpI32Load, OpI32Load8S, OpI32Load8U, OpI32Load16S, OpI32Load16U:
		return ValI32
	case OpI64Load, OpI64Load8S, OpI64Load8U, OpI64Load16S, OpI64Load16U, OpI64Load32S, OpI64Load32U:
		return ValI64
	case OpF32Load:
		return ValF32
	default:
		return ValF64
	}
}

func storeOperandType(op byte) ValType {
	switch op {
	case OpI32Store, OpI32Store8, OpI32Store16:
		return ValI32
	case OpI64Store, OpI64Store8, OpI64Store16, OpI64Store32:
		return ValI64
	case OpF32Store:
		return ValF32
	default:
		return ValF64
	}
}

func (v *bodyValidator) loadOp(op byte, maxAlign uint32) error {
	if err := v.memArg(maxAlign); err != nil {
		return err
	}
	if _, err := v.popExpect(ValI32); err != nil {
		return err
	}
	v.pushVal(loadResultType(op))
	return nil
}

func (v *bodyValidator) storeOp(op byte, maxAlign uint32) error {
	if err := v.memArg(maxAlign); err != nil {
		return err
	}
	if _, err := v.popExpect(storeOperandType(op)); err != nil {
		return err
	}
	_, err := v.popExpect(ValI32)
	return err
}

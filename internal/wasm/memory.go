package wasm

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Memory is a sandboxed linear memory. Every guest access is bounds checked;
// the host accessors return explicit errors instead of trapping. Growth is
// capped by the module's declared maximum and, more restrictively, by the
// host-imposed cap from Config — this is what keeps a leaky plugin from
// inflating the gNB's memory footprint (Fig. 5c of the paper).
type Memory struct {
	data     []byte
	maxPages uint32
}

// NewMemory creates a memory with min pages, growable up to maxPages.
func NewMemory(minPages, maxPages uint32) *Memory {
	if maxPages > MaxPages {
		maxPages = MaxPages
	}
	return &Memory{
		data:     make([]byte, int(minPages)*PageSize),
		maxPages: maxPages,
	}
}

// Size returns the current size in pages.
func (m *Memory) Size() uint32 { return uint32(len(m.data) / PageSize) }

// Len returns the current size in bytes.
func (m *Memory) Len() int { return len(m.data) }

// MaxPages returns the growth cap in pages.
func (m *Memory) MaxPages() uint32 { return m.maxPages }

// Grow extends the memory by delta pages, returning the previous size in
// pages and whether the growth succeeded. All size arithmetic stays in
// 64 bits end-to-end: a hostile delta near 2^32 must neither wrap the page
// count past maxPages nor overflow the byte length handed to make on
// 32-bit hosts.
func (m *Memory) Grow(delta uint32) (uint32, bool) {
	prev := m.Size()
	if delta == 0 {
		return prev, true
	}
	newPages := uint64(prev) + uint64(delta) // cannot wrap in uint64
	if newPages > uint64(m.maxPages) {
		return prev, false
	}
	newBytes := newPages * uint64(PageSize)
	if newBytes > uint64(math.MaxInt) {
		return prev, false
	}
	grown := make([]byte, int(newBytes))
	copy(grown, m.data)
	m.data = grown
	return prev, true
}

// Read copies n bytes starting at offset into a fresh slice.
func (m *Memory) Read(offset, n uint32) ([]byte, error) {
	if err := m.check(offset, n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, m.data[offset:])
	return out, nil
}

// Write copies b into memory at offset.
func (m *Memory) Write(offset uint32, b []byte) error {
	if err := m.check(offset, uint32(len(b))); err != nil {
		return err
	}
	copy(m.data[offset:], b)
	return nil
}

// ReadUint32 reads a little-endian u32 at offset.
func (m *Memory) ReadUint32(offset uint32) (uint32, error) {
	if err := m.check(offset, 4); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(m.data[offset:]), nil
}

// WriteUint32 writes a little-endian u32 at offset.
func (m *Memory) WriteUint32(offset uint32, v uint32) error {
	if err := m.check(offset, 4); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(m.data[offset:], v)
	return nil
}

// ReadUint64 reads a little-endian u64 at offset.
func (m *Memory) ReadUint64(offset uint32) (uint64, error) {
	if err := m.check(offset, 8); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(m.data[offset:]), nil
}

// WriteUint64 writes a little-endian u64 at offset.
func (m *Memory) WriteUint64(offset uint32, v uint64) error {
	if err := m.check(offset, 8); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(m.data[offset:], v)
	return nil
}

func (m *Memory) check(offset, n uint32) error {
	if uint64(offset)+uint64(n) > uint64(len(m.data)) {
		return fmt.Errorf("wasm: memory access [%d, %d) outside size %d", offset, uint64(offset)+uint64(n), len(m.data))
	}
	return nil
}

// Reset shrinks memory back to minPages and zeroes it. Used by instance
// pools that reuse a sandbox between plugin invocations.
func (m *Memory) Reset(minPages uint32) {
	want := int(minPages) * PageSize
	if cap(m.data) >= want {
		m.data = m.data[:want]
	} else {
		m.data = make([]byte, want)
	}
	clear(m.data)
}

// guest-side accessors used by the interpreter: they trap instead of
// returning errors.

func (m *Memory) mustRange(addr uint64, n uint64) []byte {
	if addr+n > uint64(len(m.data)) {
		panic(newTrap(TrapOutOfBoundsMemory))
	}
	return m.data[addr : addr+n]
}

package wasm

// Superinstruction fusion: a peephole pass over the flattened code that
// collapses hot multi-instruction sequences into single fused opcodes, so
// the interpreter pays one dispatch (and often zero operand-stack traffic)
// where it paid two to four. The fused stream is a second, independent code
// stream per function — the original stays untouched for the baseline tier —
// and is itself the input to the closure tier, so both fast tiers compound.
//
// Correctness rules the pass must respect:
//
//   - A fused window may not contain a branch-target pc anywhere but its
//     first instruction ("leaders" stay instruction starts), and all branch
//     targets are remapped into the fused stream afterwards.
//   - Fuel/InstrCount accounting must be bit-identical to executing the
//     window's instructions one by one. Windows whose only trapping
//     operation is last can pre-charge their full width; windows with an
//     earlier trapping operation (fLoadEqzBr's load) split the charge
//     around it. fusedPreCharge encodes that per opcode.
//   - Branch-carrying fused ops clone their target slices before remapping,
//     so the interpreter stream's targets are never aliased.

// Fused opcodes live above the 0x100/0x200 internal ranges. Field use is
// per-op (a/b hold local indices or selector opcodes, imm holds constants,
// memory offsets or the embedded numeric opcode).
const (
	fGetGet          uint16 = 0x300 + iota // local.get a; local.get b
	fGetConst                              // local.get a; const imm (any const type)
	fGetLoad32                             // local.get a; i32.load imm
	fGetStore32                            // local.get a (value); i32.store imm (addr below)
	fGetBin32                              // local.get a; i32 binop imm (lhs below)
	fGetGetBin32                           // local.get a; local.get b; i32 binop imm
	fGetGetCmp32                           // local.get a; local.get b; i32 compare imm
	fGetConstBin32                         // local.get a; i32.const imm; i32 binop b
	fGetConstCmp32                         // local.get a; i32.const imm; i32 compare b
	fGetGetStore32                         // local.get a (addr); local.get b (value); i32.store imm
	fConstAddStore32                       // i32.const a; i32.add; i32.store imm (addr below)
	fGetGetCmpBr                           // local.get a; local.get b; i32 compare imm; br_if
	fGetConstCmpBr                         // local.get a; i32.const imm; i32 compare b; br_if
	fGetConstAddSet                        // local.get a; i32.const imm; i32.add; local.set b
	fLoadEqzBr                             // i32.load imm; i32.eqz; br_if
	fEqzBr                                 // i32.eqz; br_if
	fCmpBr                                 // i32 compare imm; br_if
)

// fusedWidth is the number of original instructions a fused op stands for
// (1 for everything that is not a fused op), i.e. the fuel it must charge.
func fusedWidth(op uint16) uint32 {
	switch op {
	case fGetGet, fGetConst, fGetLoad32, fGetStore32, fGetBin32, fEqzBr, fCmpBr:
		return 2
	case fGetGetBin32, fGetGetCmp32, fGetConstBin32, fGetConstCmp32,
		fGetGetStore32, fConstAddStore32, fLoadEqzBr:
		return 3
	case fGetGetCmpBr, fGetConstCmpBr, fGetConstAddSet:
		return 4
	}
	return 1
}

// fusedPreCharge is how much of the width may be charged before the op's
// body runs while staying bit-identical to sequential execution: the full
// width when the only trapping operation is last, 1 when a trapping
// operation comes earlier (the body charges the remainder after it).
func fusedPreCharge(op uint16) uint32 {
	if op == fLoadEqzBr {
		return 1 // the load traps first; charge the eqz+br_if after it
	}
	return fusedWidth(op)
}

// fusedName names a fused opcode for diagnostics.
func fusedName(op uint16) string {
	switch op {
	case fGetGet:
		return "fused.get_get"
	case fGetConst:
		return "fused.get_const"
	case fGetLoad32:
		return "fused.get_load32"
	case fGetStore32:
		return "fused.get_store32"
	case fGetBin32:
		return "fused.get_bin32"
	case fGetGetBin32:
		return "fused.get_get_bin32"
	case fGetGetCmp32:
		return "fused.get_get_cmp32"
	case fGetConstBin32:
		return "fused.get_const_bin32"
	case fGetConstCmp32:
		return "fused.get_const_cmp32"
	case fGetGetStore32:
		return "fused.get_get_store32"
	case fConstAddStore32:
		return "fused.const_add_store32"
	case fGetGetCmpBr:
		return "fused.get_get_cmp_br"
	case fGetConstCmpBr:
		return "fused.get_const_cmp_br"
	case fGetConstAddSet:
		return "fused.get_const_add_set"
	case fLoadEqzBr:
		return "fused.load_eqz_br"
	case fEqzBr:
		return "fused.eqz_br"
	case fCmpBr:
		return "fused.cmp_br"
	}
	return "fused.unknown"
}

// isI32Bin reports whether op is a two-operand i32 numeric instruction
// (including the trapping div/rem family — they trap last in every fused
// window, so pre-charging stays exact).
func isI32Bin(op uint16) bool {
	return op >= uint16(OpI32Add) && op <= uint16(OpI32Rotr)
}

// isI32Cmp reports whether op is a two-operand i32 comparison.
func isI32Cmp(op uint16) bool {
	return op >= uint16(OpI32Eq) && op <= uint16(OpI32GeU)
}

// i32bin applies a two-operand i32 numeric opcode. Shared by the fused
// interpreter cases and the closure tier so trap behaviour has one home.
func i32bin(op uint16, x, y uint32) uint32 {
	switch op {
	case uint16(OpI32Add):
		return x + y
	case uint16(OpI32Sub):
		return x - y
	case uint16(OpI32Mul):
		return x * y
	case uint16(OpI32DivS):
		if y == 0 {
			panic(newTrap(TrapIntegerDivideByZero))
		}
		if int32(x) == -2147483648 && int32(y) == -1 {
			panic(newTrap(TrapIntegerOverflow))
		}
		return uint32(int32(x) / int32(y))
	case uint16(OpI32DivU):
		if y == 0 {
			panic(newTrap(TrapIntegerDivideByZero))
		}
		return x / y
	case uint16(OpI32RemS):
		if y == 0 {
			panic(newTrap(TrapIntegerDivideByZero))
		}
		if int32(x) == -2147483648 && int32(y) == -1 {
			return 0
		}
		return uint32(int32(x) % int32(y))
	case uint16(OpI32RemU):
		if y == 0 {
			panic(newTrap(TrapIntegerDivideByZero))
		}
		return x % y
	case uint16(OpI32And):
		return x & y
	case uint16(OpI32Or):
		return x | y
	case uint16(OpI32Xor):
		return x ^ y
	case uint16(OpI32Shl):
		return x << (y & 31)
	case uint16(OpI32ShrS):
		return uint32(int32(x) >> (y & 31))
	case uint16(OpI32ShrU):
		return x >> (y & 31)
	case uint16(OpI32Rotl):
		return x<<(y&31) | x>>(32-y&31)
	case uint16(OpI32Rotr):
		return x>>(y&31) | x<<(32-y&31)
	}
	panic(&Trap{Code: TrapHostError, Wrapped: errUnknownInstr(op)})
}

// i32cmp applies a two-operand i32 comparison opcode.
func i32cmp(op uint16, x, y uint32) bool {
	switch op {
	case uint16(OpI32Eq):
		return x == y
	case uint16(OpI32Ne):
		return x != y
	case uint16(OpI32LtS):
		return int32(x) < int32(y)
	case uint16(OpI32LtU):
		return x < y
	case uint16(OpI32GtS):
		return int32(x) > int32(y)
	case uint16(OpI32GtU):
		return x > y
	case uint16(OpI32LeS):
		return int32(x) <= int32(y)
	case uint16(OpI32LeU):
		return x <= y
	case uint16(OpI32GeS):
		return int32(x) >= int32(y)
	case uint16(OpI32GeU):
		return x >= y
	}
	panic(&Trap{Code: TrapHostError, Wrapped: errUnknownInstr(op)})
}

// fuseCode builds the superinstruction stream for one function body. The
// input stream is never modified; branch targets in the output are deep
// copies remapped to fused pcs.
func fuseCode(code []instr) []instr {
	// Leaders: every branch-target pc must remain the start of an
	// instruction in the fused stream.
	leader := make([]bool, len(code)+1)
	for i := range code {
		for _, t := range code[i].targets {
			leader[t.pc] = true
		}
	}

	fused := make([]instr, 0, len(code))
	newPC := make([]uint32, len(code)+1)
	for pc := 0; pc < len(code); {
		newPC[pc] = uint32(len(fused))
		w, ins := fuseAt(code, pc, leader)
		for j := 1; j < w; j++ {
			// Swallowed pcs are never leaders; map them to the fused op so a
			// (hypothetical) stale reference still lands on an instruction.
			newPC[pc+j] = uint32(len(fused))
		}
		fused = append(fused, ins)
		pc += w
	}
	newPC[len(code)] = uint32(len(fused))

	for i := range fused {
		if len(fused[i].targets) == 0 {
			continue
		}
		ts := make([]branchTarget, len(fused[i].targets))
		copy(ts, fused[i].targets)
		for j := range ts {
			ts[j].pc = newPC[ts[j].pc]
		}
		fused[i].targets = ts
	}
	return fused
}

// fuseAt matches the longest fusable pattern starting at pc and returns its
// width plus the (single) instruction standing in for it. Width 1 returns
// the original instruction unchanged.
func fuseAt(code []instr, pc int, leader []bool) (int, instr) {
	win := func(w int) bool {
		if pc+w > len(code) {
			return false
		}
		for j := pc + 1; j < pc+w; j++ {
			if leader[j] {
				return false
			}
		}
		return true
	}
	i0 := code[pc]

	if win(4) && i0.op == uint16(OpLocalGet) {
		i1, i2, i3 := &code[pc+1], &code[pc+2], &code[pc+3]
		switch {
		case i1.op == uint16(OpLocalGet) && isI32Cmp(i2.op) && i3.op == uint16(OpBrIf):
			return 4, instr{op: fGetGetCmpBr, a: i0.a, b: i1.a, imm: uint64(i2.op), targets: i3.targets}
		case i1.op == uint16(OpI32Const) && isI32Cmp(i2.op) && i3.op == uint16(OpBrIf):
			return 4, instr{op: fGetConstCmpBr, a: i0.a, b: uint32(i2.op), imm: i1.imm, targets: i3.targets}
		case i1.op == uint16(OpI32Const) && i2.op == uint16(OpI32Add) && i3.op == uint16(OpLocalSet):
			return 4, instr{op: fGetConstAddSet, a: i0.a, b: i3.a, imm: i1.imm}
		}
	}

	if win(3) {
		i1, i2 := &code[pc+1], &code[pc+2]
		switch {
		case i0.op == uint16(OpLocalGet) && i1.op == uint16(OpLocalGet):
			if isI32Bin(i2.op) {
				return 3, instr{op: fGetGetBin32, a: i0.a, b: i1.a, imm: uint64(i2.op)}
			}
			if isI32Cmp(i2.op) {
				return 3, instr{op: fGetGetCmp32, a: i0.a, b: i1.a, imm: uint64(i2.op)}
			}
			if i2.op == uint16(OpI32Store) {
				return 3, instr{op: fGetGetStore32, a: i0.a, b: i1.a, imm: i2.imm}
			}
		case i0.op == uint16(OpLocalGet) && i1.op == uint16(OpI32Const):
			if isI32Bin(i2.op) {
				return 3, instr{op: fGetConstBin32, a: i0.a, b: uint32(i2.op), imm: i1.imm}
			}
			if isI32Cmp(i2.op) {
				return 3, instr{op: fGetConstCmp32, a: i0.a, b: uint32(i2.op), imm: i1.imm}
			}
		case i0.op == uint16(OpI32Const) && i1.op == uint16(OpI32Add) && i2.op == uint16(OpI32Store):
			return 3, instr{op: fConstAddStore32, a: uint32(i0.imm), imm: i2.imm}
		case i0.op == uint16(OpI32Load) && i1.op == uint16(OpI32Eqz) && i2.op == uint16(OpBrIf):
			return 3, instr{op: fLoadEqzBr, imm: i0.imm, targets: i2.targets}
		}
	}

	if win(2) {
		i1 := &code[pc+1]
		switch {
		case i0.op == uint16(OpLocalGet):
			switch {
			case i1.op == uint16(OpLocalGet):
				return 2, instr{op: fGetGet, a: i0.a, b: i1.a}
			case i1.op == uint16(OpI32Const) || i1.op == uint16(OpI64Const) ||
				i1.op == uint16(OpF32Const) || i1.op == uint16(OpF64Const):
				return 2, instr{op: fGetConst, a: i0.a, imm: i1.imm}
			case i1.op == uint16(OpI32Load):
				return 2, instr{op: fGetLoad32, a: i0.a, imm: i1.imm}
			case i1.op == uint16(OpI32Store):
				return 2, instr{op: fGetStore32, a: i0.a, imm: i1.imm}
			case isI32Bin(i1.op):
				return 2, instr{op: fGetBin32, a: i0.a, imm: uint64(i1.op)}
			}
		case i0.op == uint16(OpI32Eqz) && i1.op == uint16(OpBrIf):
			return 2, instr{op: fEqzBr, targets: i1.targets}
		case isI32Cmp(i0.op) && i1.op == uint16(OpBrIf):
			return 2, instr{op: fCmpBr, imm: uint64(i0.op), targets: i1.targets}
		}
	}

	return 1, i0
}

package wasm

import (
	"encoding/binary"
	"errors"
	"fmt"

	"waran/internal/leb128"
)

// Binary format section IDs.
const (
	sectionCustom   = 0
	sectionType     = 1
	sectionImport   = 2
	sectionFunction = 3
	sectionTable    = 4
	sectionMemory   = 5
	sectionGlobal   = 6
	sectionExport   = 7
	sectionStart    = 8
	sectionElement  = 9
	sectionCode     = 10
	sectionData     = 11
)

var wasmMagic = []byte{0x00, 0x61, 0x73, 0x6D, 0x01, 0x00, 0x00, 0x00}

// ErrBadMagic is returned for inputs that are not WebAssembly binaries.
var ErrBadMagic = errors.New("wasm: bad magic or unsupported version")

// maxItemsPerSection caps vector lengths to defend against decompression
// bombs in attacker-supplied plugin bytecode.
const maxItemsPerSection = 1 << 20

// reader is a cursor over the module bytes.
type reader struct {
	b   []byte
	pos int
}

func (r *reader) remaining() int { return len(r.b) - r.pos }

func (r *reader) byte() (byte, error) {
	if r.pos >= len(r.b) {
		return 0, fmt.Errorf("wasm: unexpected end of input at offset %d", r.pos)
	}
	c := r.b[r.pos]
	r.pos++
	return c, nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, fmt.Errorf("wasm: unexpected end of input at offset %d (need %d bytes)", r.pos, n)
	}
	out := r.b[r.pos : r.pos+n]
	r.pos += n
	return out, nil
}

func (r *reader) u32() (uint32, error) {
	v, n, err := leb128.Uint32(r.b[r.pos:])
	if err != nil {
		return 0, fmt.Errorf("wasm: at offset %d: %w", r.pos, err)
	}
	r.pos += n
	return v, nil
}

func (r *reader) s32() (int32, error) {
	v, n, err := leb128.Int32(r.b[r.pos:])
	if err != nil {
		return 0, fmt.Errorf("wasm: at offset %d: %w", r.pos, err)
	}
	r.pos += n
	return v, nil
}

func (r *reader) s64() (int64, error) {
	v, n, err := leb128.Int64(r.b[r.pos:])
	if err != nil {
		return 0, fmt.Errorf("wasm: at offset %d: %w", r.pos, err)
	}
	r.pos += n
	return v, nil
}

func (r *reader) name() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	b, err := r.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *reader) valType() (ValType, error) {
	c, err := r.byte()
	if err != nil {
		return 0, err
	}
	switch v := ValType(c); v {
	case ValI32, ValI64, ValF32, ValF64, ValFuncref:
		return v, nil
	default:
		return 0, fmt.Errorf("wasm: invalid value type 0x%02x at offset %d", c, r.pos-1)
	}
}

func (r *reader) limits() (Limits, error) {
	flag, err := r.byte()
	if err != nil {
		return Limits{}, err
	}
	var l Limits
	switch flag {
	case 0x00:
		l.Min, err = r.u32()
		return l, err
	case 0x01:
		if l.Min, err = r.u32(); err != nil {
			return l, err
		}
		if l.Max, err = r.u32(); err != nil {
			return l, err
		}
		l.HasMax = true
		if l.Max < l.Min {
			return l, fmt.Errorf("wasm: limits max %d < min %d", l.Max, l.Min)
		}
		return l, nil
	default:
		return l, fmt.Errorf("wasm: invalid limits flag 0x%02x", flag)
	}
}

func (r *reader) vecLen() (int, error) {
	n, err := r.u32()
	if err != nil {
		return 0, err
	}
	if n > maxItemsPerSection {
		return 0, fmt.Errorf("wasm: vector of %d items exceeds limit", n)
	}
	return int(n), nil
}

// constExpr decodes a constant initializer expression terminated by end.
func (r *reader) constExpr() (ConstExpr, error) {
	op, err := r.byte()
	if err != nil {
		return ConstExpr{}, err
	}
	var ce ConstExpr
	ce.Op = op
	switch op {
	case OpI32Const:
		v, err := r.s32()
		if err != nil {
			return ce, err
		}
		ce.Value = uint64(uint32(v))
	case OpI64Const:
		v, err := r.s64()
		if err != nil {
			return ce, err
		}
		ce.Value = uint64(v)
	case OpF32Const:
		b, err := r.bytes(4)
		if err != nil {
			return ce, err
		}
		ce.Value = uint64(binary.LittleEndian.Uint32(b))
	case OpF64Const:
		b, err := r.bytes(8)
		if err != nil {
			return ce, err
		}
		ce.Value = binary.LittleEndian.Uint64(b)
	case OpGlobalGet:
		ix, err := r.u32()
		if err != nil {
			return ce, err
		}
		ce.GlobalIx = ix
	default:
		return ce, fmt.Errorf("wasm: unsupported opcode %s in constant expression", OpcodeName(op))
	}
	end, err := r.byte()
	if err != nil {
		return ce, err
	}
	if end != OpEnd {
		return ce, fmt.Errorf("wasm: constant expression not terminated by end (got %s)", OpcodeName(end))
	}
	return ce, nil
}

// Decode parses a WebAssembly binary module. The returned module references
// slices of the input buffer; callers must not mutate b afterwards.
func Decode(b []byte) (*Module, error) {
	if len(b) < 8 || string(b[:8]) != string(wasmMagic) {
		return nil, ErrBadMagic
	}
	r := &reader{b: b, pos: 8}
	m := &Module{}
	lastSection := -1

	for r.remaining() > 0 {
		id, err := r.byte()
		if err != nil {
			return nil, err
		}
		size, err := r.u32()
		if err != nil {
			return nil, err
		}
		payload, err := r.bytes(int(size))
		if err != nil {
			return nil, err
		}
		if id != sectionCustom {
			if int(id) <= lastSection {
				return nil, fmt.Errorf("wasm: section %d out of order", id)
			}
			lastSection = int(id)
		}
		sr := &reader{b: payload}
		switch id {
		case sectionCustom:
			if err := m.decodeCustom(sr); err != nil {
				return nil, err
			}
		case sectionType:
			if err := m.decodeTypes(sr); err != nil {
				return nil, err
			}
		case sectionImport:
			if err := m.decodeImports(sr); err != nil {
				return nil, err
			}
		case sectionFunction:
			if err := m.decodeFuncs(sr); err != nil {
				return nil, err
			}
		case sectionTable:
			if err := m.decodeTables(sr); err != nil {
				return nil, err
			}
		case sectionMemory:
			if err := m.decodeMems(sr); err != nil {
				return nil, err
			}
		case sectionGlobal:
			if err := m.decodeGlobals(sr); err != nil {
				return nil, err
			}
		case sectionExport:
			if err := m.decodeExports(sr); err != nil {
				return nil, err
			}
		case sectionStart:
			ix, err := sr.u32()
			if err != nil {
				return nil, err
			}
			m.Start = &ix
		case sectionElement:
			if err := m.decodeElems(sr); err != nil {
				return nil, err
			}
		case sectionCode:
			if err := m.decodeCodes(sr); err != nil {
				return nil, err
			}
		case sectionData:
			if err := m.decodeDatas(sr); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("wasm: unknown section id %d", id)
		}
		if id != sectionCustom && sr.remaining() != 0 {
			return nil, fmt.Errorf("wasm: section %d has %d trailing bytes", id, sr.remaining())
		}
	}
	if len(m.Codes) != len(m.Funcs) {
		return nil, fmt.Errorf("wasm: function section declares %d functions but code section has %d bodies", len(m.Funcs), len(m.Codes))
	}
	return m, nil
}

func (m *Module) decodeCustom(r *reader) error {
	name, err := r.name()
	if err != nil {
		return nil // tolerate malformed custom sections: they carry no semantics
	}
	if name == "name" && r.remaining() > 0 {
		// Parse only the module-name subsection for diagnostics.
		if sub, err := r.byte(); err == nil && sub == 0 {
			if _, err := r.u32(); err == nil {
				if mn, err := r.name(); err == nil {
					m.Name = mn
				}
			}
		}
	}
	return nil
}

func (m *Module) decodeTypes(r *reader) error {
	n, err := r.vecLen()
	if err != nil {
		return err
	}
	m.Types = make([]FuncType, 0, n)
	for i := 0; i < n; i++ {
		form, err := r.byte()
		if err != nil {
			return err
		}
		if form != 0x60 {
			return fmt.Errorf("wasm: type %d has unsupported form 0x%02x", i, form)
		}
		var ft FuncType
		np, err := r.vecLen()
		if err != nil {
			return err
		}
		for j := 0; j < np; j++ {
			vt, err := r.valType()
			if err != nil {
				return err
			}
			ft.Params = append(ft.Params, vt)
		}
		nr, err := r.vecLen()
		if err != nil {
			return err
		}
		for j := 0; j < nr; j++ {
			vt, err := r.valType()
			if err != nil {
				return err
			}
			ft.Results = append(ft.Results, vt)
		}
		m.Types = append(m.Types, ft)
	}
	return nil
}

func (m *Module) decodeImports(r *reader) error {
	n, err := r.vecLen()
	if err != nil {
		return err
	}
	m.Imports = make([]Import, 0, n)
	for i := 0; i < n; i++ {
		var im Import
		if im.Module, err = r.name(); err != nil {
			return err
		}
		if im.Name, err = r.name(); err != nil {
			return err
		}
		kind, err := r.byte()
		if err != nil {
			return err
		}
		im.Kind = ExternKind(kind)
		switch im.Kind {
		case ExternFunc:
			if im.TypeIx, err = r.u32(); err != nil {
				return err
			}
		case ExternTable:
			if im.Table.Elem, err = r.valType(); err != nil {
				return err
			}
			if im.Table.Limits, err = r.limits(); err != nil {
				return err
			}
		case ExternMemory:
			if im.Mem.Limits, err = r.limits(); err != nil {
				return err
			}
		case ExternGlobal:
			if im.Global.Type, err = r.valType(); err != nil {
				return err
			}
			mut, err := r.byte()
			if err != nil {
				return err
			}
			if mut > 1 {
				return fmt.Errorf("wasm: invalid mutability flag 0x%02x", mut)
			}
			im.Global.Mutable = mut == 1
		default:
			return fmt.Errorf("wasm: import %d has invalid kind 0x%02x", i, kind)
		}
		m.Imports = append(m.Imports, im)
	}
	return nil
}

func (m *Module) decodeFuncs(r *reader) error {
	n, err := r.vecLen()
	if err != nil {
		return err
	}
	m.Funcs = make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		tix, err := r.u32()
		if err != nil {
			return err
		}
		m.Funcs = append(m.Funcs, tix)
	}
	return nil
}

func (m *Module) decodeTables(r *reader) error {
	n, err := r.vecLen()
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		var tt TableType
		if tt.Elem, err = r.valType(); err != nil {
			return err
		}
		if tt.Elem != ValFuncref {
			return fmt.Errorf("wasm: table %d has non-funcref element type", i)
		}
		if tt.Limits, err = r.limits(); err != nil {
			return err
		}
		m.Tables = append(m.Tables, tt)
	}
	return nil
}

func (m *Module) decodeMems(r *reader) error {
	n, err := r.vecLen()
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		var mt MemoryType
		if mt.Limits, err = r.limits(); err != nil {
			return err
		}
		if mt.Limits.Min > MaxPages || (mt.Limits.HasMax && mt.Limits.Max > MaxPages) {
			return fmt.Errorf("wasm: memory %d exceeds 4 GiB limit", i)
		}
		m.Mems = append(m.Mems, mt)
	}
	return nil
}

func (m *Module) decodeGlobals(r *reader) error {
	n, err := r.vecLen()
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		var g Global
		if g.Type.Type, err = r.valType(); err != nil {
			return err
		}
		mut, err := r.byte()
		if err != nil {
			return err
		}
		if mut > 1 {
			return fmt.Errorf("wasm: invalid mutability flag 0x%02x", mut)
		}
		g.Type.Mutable = mut == 1
		if g.Init, err = r.constExpr(); err != nil {
			return err
		}
		m.Globals = append(m.Globals, g)
	}
	return nil
}

func (m *Module) decodeExports(r *reader) error {
	n, err := r.vecLen()
	if err != nil {
		return err
	}
	seen := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		var e Export
		if e.Name, err = r.name(); err != nil {
			return err
		}
		if seen[e.Name] {
			return fmt.Errorf("wasm: duplicate export %q", e.Name)
		}
		seen[e.Name] = true
		kind, err := r.byte()
		if err != nil {
			return err
		}
		e.Kind = ExternKind(kind)
		if e.Kind > ExternGlobal {
			return fmt.Errorf("wasm: export %q has invalid kind 0x%02x", e.Name, kind)
		}
		if e.Index, err = r.u32(); err != nil {
			return err
		}
		m.Exports = append(m.Exports, e)
	}
	return nil
}

func (m *Module) decodeElems(r *reader) error {
	n, err := r.vecLen()
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		var es ElemSegment
		if es.TableIx, err = r.u32(); err != nil {
			return err
		}
		if es.TableIx != 0 {
			return fmt.Errorf("wasm: element segment %d targets table %d (only table 0 supported)", i, es.TableIx)
		}
		if es.Offset, err = r.constExpr(); err != nil {
			return err
		}
		cnt, err := r.vecLen()
		if err != nil {
			return err
		}
		es.Funcs = make([]uint32, 0, cnt)
		for j := 0; j < cnt; j++ {
			fx, err := r.u32()
			if err != nil {
				return err
			}
			es.Funcs = append(es.Funcs, fx)
		}
		m.Elems = append(m.Elems, es)
	}
	return nil
}

func (m *Module) decodeCodes(r *reader) error {
	n, err := r.vecLen()
	if err != nil {
		return err
	}
	m.Codes = make([]Code, 0, n)
	for i := 0; i < n; i++ {
		size, err := r.u32()
		if err != nil {
			return err
		}
		body, err := r.bytes(int(size))
		if err != nil {
			return err
		}
		br := &reader{b: body}
		var c Code
		groups, err := br.vecLen()
		if err != nil {
			return err
		}
		total := 0
		for j := 0; j < groups; j++ {
			cnt, err := br.u32()
			if err != nil {
				return err
			}
			vt, err := br.valType()
			if err != nil {
				return err
			}
			total += int(cnt)
			if total > maxItemsPerSection {
				return fmt.Errorf("wasm: function %d declares too many locals", i)
			}
			for k := uint32(0); k < cnt; k++ {
				c.Locals = append(c.Locals, vt)
			}
		}
		c.Body = body[br.pos:]
		if len(c.Body) == 0 || c.Body[len(c.Body)-1] != OpEnd {
			return fmt.Errorf("wasm: function %d body not terminated by end", i)
		}
		m.Codes = append(m.Codes, c)
	}
	return nil
}

func (m *Module) decodeDatas(r *reader) error {
	n, err := r.vecLen()
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		var ds DataSegment
		if ds.MemIx, err = r.u32(); err != nil {
			return err
		}
		if ds.MemIx != 0 {
			return fmt.Errorf("wasm: data segment %d targets memory %d (only memory 0 supported)", i, ds.MemIx)
		}
		if ds.Offset, err = r.constExpr(); err != nil {
			return err
		}
		sz, err := r.u32()
		if err != nil {
			return err
		}
		if ds.Bytes, err = r.bytes(int(sz)); err != nil {
			return err
		}
		m.Datas = append(m.Datas, ds)
	}
	return nil
}

package wasm

import "fmt"

// TrapCode classifies runtime traps. Traps abort the plugin invocation but
// never the host: Instance.Call converts them to *Trap errors.
type TrapCode int

// Trap codes mirror the failure classes in the WebAssembly specification.
const (
	TrapUnreachable TrapCode = iota
	TrapOutOfBoundsMemory
	TrapOutOfBoundsTable
	TrapIndirectCallTypeMismatch
	TrapUninitializedElement
	TrapIntegerDivideByZero
	TrapIntegerOverflow
	TrapInvalidConversion
	TrapCallStackExhausted
	TrapFuelExhausted
	TrapDeadlineExceeded
	TrapHostError
)

// String returns the spec-style description of the trap code.
func (c TrapCode) String() string {
	switch c {
	case TrapUnreachable:
		return "unreachable executed"
	case TrapOutOfBoundsMemory:
		return "out of bounds memory access"
	case TrapOutOfBoundsTable:
		return "undefined element"
	case TrapIndirectCallTypeMismatch:
		return "indirect call type mismatch"
	case TrapUninitializedElement:
		return "uninitialized element"
	case TrapIntegerDivideByZero:
		return "integer divide by zero"
	case TrapIntegerOverflow:
		return "integer overflow"
	case TrapInvalidConversion:
		return "invalid conversion to integer"
	case TrapCallStackExhausted:
		return "call stack exhausted"
	case TrapFuelExhausted:
		return "fuel exhausted"
	case TrapDeadlineExceeded:
		return "deadline exceeded"
	case TrapHostError:
		return "host function error"
	default:
		return fmt.Sprintf("trap(%d)", int(c))
	}
}

// Trap is the error produced when sandboxed code faults. It is recoverable by
// the host: the instance remains inspectable (memory, globals), though its
// internal state may be mid-computation.
type Trap struct {
	Code TrapCode
	// Func is the index of the faulting function, when known.
	Func uint32
	// Wrapped is the underlying host error for TrapHostError.
	Wrapped error
}

// Error implements the error interface.
func (t *Trap) Error() string {
	if t.Wrapped != nil {
		return fmt.Sprintf("wasm trap: %s: %v", t.Code, t.Wrapped)
	}
	return "wasm trap: " + t.Code.String()
}

// Unwrap exposes the wrapped host error, if any.
func (t *Trap) Unwrap() error { return t.Wrapped }

// Is supports errors.Is matching on the trap code.
func (t *Trap) Is(target error) bool {
	o, ok := target.(*Trap)
	return ok && o.Code == t.Code
}

func newTrap(code TrapCode) *Trap { return &Trap{Code: code} }

package wasm

import (
	"math"
	"math/bits"
	"time"
)

// exec runs a compiled function body over the given code stream — f.code
// for the baseline interpreter tier, f.fused for the superinstruction tier
// (both share f's locals/stack shape). It panics with *Trap on any sandbox
// fault; Instance.call converts that to an error at the outermost boundary.
func (in *Instance) exec(f *compiledFunc, code []instr, args []uint64) []uint64 {
	// Reuse this depth's buffers (the instance is single-threaded, so the
	// depth uniquely identifies the live frame). Stack capacity comes from
	// the compile-time high-water mark; +2 covers call-result appends.
	for len(in.frameBufs) <= in.depth {
		in.frameBufs = append(in.frameBufs, frameBuf{})
	}
	fb := &in.frameBufs[in.depth]
	nLocals := f.numParams + f.numLocals
	if cap(fb.locals) < nLocals {
		fb.locals = make([]uint64, nLocals)
	}
	locals := fb.locals[:nLocals]
	copy(locals, args)
	clear(locals[len(args):])
	if cap(fb.stack) < f.maxStack+2 {
		fb.stack = make([]uint64, 0, f.maxStack+2)
	}
	stack := fb.stack[:0]
	mem := in.mem

	for pc := 0; pc < len(code); pc++ {
		if in.fuelEnabled {
			// Exhaustion traps BEFORE the unpaid instruction runs, and
			// InstrCount advances only for instructions that actually paid,
			// so at the trap boundary InstrCount equals the fuel consumed —
			// the invariant the profiler's fuel deltas and all three
			// execution tiers agree on (see chargeFuel in tier.go).
			if in.fuel == 0 {
				panic(newTrap(TrapFuelExhausted))
			}
			if in.fuel > 0 {
				in.fuel--
			}
			in.InstrCount++
			if in.deadline != 0 && in.InstrCount&0xFFFF == 0 &&
				time.Now().UnixNano() > in.deadline {
				panic(newTrap(TrapDeadlineExceeded))
			}
		}
		ins := &code[pc]
		switch ins.op {

		// Control flow -------------------------------------------------
		case uint16(OpUnreachable):
			panic(newTrap(TrapUnreachable))
		case opJump:
			t := ins.targets[0]
			stack = takeBranch(stack, t)
			if in.deadline != 0 && int(t.pc) <= pc {
				in.pollDeadline() // loop back-edge
			}
			pc = int(t.pc) - 1
		case opBrIfFalse:
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if uint32(c) == 0 {
				t := ins.targets[0]
				stack = takeBranch(stack, t)
				if in.deadline != 0 && int(t.pc) <= pc {
					in.pollDeadline()
				}
				pc = int(t.pc) - 1
			}
		case uint16(OpBrIf):
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if uint32(c) != 0 {
				t := ins.targets[0]
				stack = takeBranch(stack, t)
				if in.deadline != 0 && int(t.pc) <= pc {
					in.pollDeadline()
				}
				pc = int(t.pc) - 1
			}
		case uint16(OpBrTable):
			sel := uint32(stack[len(stack)-1])
			stack = stack[:len(stack)-1]
			ti := int(sel)
			if ti >= len(ins.targets)-1 {
				ti = len(ins.targets) - 1 // default target
			}
			t := ins.targets[ti]
			stack = takeBranch(stack, t)
			if in.deadline != 0 && int(t.pc) <= pc {
				in.pollDeadline()
			}
			pc = int(t.pc) - 1
		case opReturnOp:
			// Results ride in this depth's reusable buffer: the caller
			// copies them onto its own stack immediately, before any new
			// call could reuse this depth.
			n := int(ins.a)
			if cap(fb.res) < n {
				fb.res = make([]uint64, n)
			}
			res := fb.res[:n]
			copy(res, stack[len(stack)-n:])
			// Donate possibly-grown buffers back for this depth.
			fb.locals = locals
			fb.stack = stack
			return res
		case uint16(OpCall):
			callee := in.cm.types[ins.a]
			np := len(callee.Params)
			callArgs := stack[len(stack)-np:]
			res := in.invoke(ins.a, callArgs)
			stack = stack[:len(stack)-np]
			stack = append(stack, res...)
		case uint16(OpCallIndirect):
			elem := uint32(stack[len(stack)-1])
			stack = stack[:len(stack)-1]
			if int(elem) >= len(in.table) {
				panic(newTrap(TrapOutOfBoundsTable))
			}
			entry := in.table[elem]
			if entry == 0 {
				panic(newTrap(TrapUninitializedElement))
			}
			funcIdx := entry - 1
			want := in.cm.m.Types[ins.a]
			if !in.cm.types[funcIdx].Equal(want) {
				panic(newTrap(TrapIndirectCallTypeMismatch))
			}
			np := len(want.Params)
			callArgs := stack[len(stack)-np:]
			res := in.invoke(funcIdx, callArgs)
			stack = stack[:len(stack)-np]
			stack = append(stack, res...)

		// Parametric ----------------------------------------------------
		case uint16(OpDrop):
			stack = stack[:len(stack)-1]
		case uint16(OpSelect):
			c := uint32(stack[len(stack)-1])
			v2 := stack[len(stack)-2]
			v1 := stack[len(stack)-3]
			stack = stack[:len(stack)-3]
			if c != 0 {
				stack = append(stack, v1)
			} else {
				stack = append(stack, v2)
			}

		// Variables -----------------------------------------------------
		case uint16(OpLocalGet):
			stack = append(stack, locals[ins.a])
		case uint16(OpLocalSet):
			locals[ins.a] = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
		case uint16(OpLocalTee):
			locals[ins.a] = stack[len(stack)-1]
		case uint16(OpGlobalGet):
			stack = append(stack, in.globals[ins.a])
		case uint16(OpGlobalSet):
			in.globals[ins.a] = stack[len(stack)-1]
			stack = stack[:len(stack)-1]

		// Memory --------------------------------------------------------
		case uint16(OpI32Load):
			a := uint64(uint32(stack[len(stack)-1])) + ins.imm
			b := mem.mustRange(a, 4)
			stack[len(stack)-1] = uint64(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
		case uint16(OpI64Load):
			a := uint64(uint32(stack[len(stack)-1])) + ins.imm
			b := mem.mustRange(a, 8)
			stack[len(stack)-1] = leUint64(b)
		case uint16(OpF32Load):
			a := uint64(uint32(stack[len(stack)-1])) + ins.imm
			b := mem.mustRange(a, 4)
			stack[len(stack)-1] = uint64(leUint32(b))
		case uint16(OpF64Load):
			a := uint64(uint32(stack[len(stack)-1])) + ins.imm
			b := mem.mustRange(a, 8)
			stack[len(stack)-1] = leUint64(b)
		case uint16(OpI32Load8S):
			a := uint64(uint32(stack[len(stack)-1])) + ins.imm
			b := mem.mustRange(a, 1)
			stack[len(stack)-1] = uint64(uint32(int32(int8(b[0]))))
		case uint16(OpI32Load8U):
			a := uint64(uint32(stack[len(stack)-1])) + ins.imm
			b := mem.mustRange(a, 1)
			stack[len(stack)-1] = uint64(b[0])
		case uint16(OpI32Load16S):
			a := uint64(uint32(stack[len(stack)-1])) + ins.imm
			b := mem.mustRange(a, 2)
			stack[len(stack)-1] = uint64(uint32(int32(int16(leUint16(b)))))
		case uint16(OpI32Load16U):
			a := uint64(uint32(stack[len(stack)-1])) + ins.imm
			b := mem.mustRange(a, 2)
			stack[len(stack)-1] = uint64(leUint16(b))
		case uint16(OpI64Load8S):
			a := uint64(uint32(stack[len(stack)-1])) + ins.imm
			b := mem.mustRange(a, 1)
			stack[len(stack)-1] = uint64(int64(int8(b[0])))
		case uint16(OpI64Load8U):
			a := uint64(uint32(stack[len(stack)-1])) + ins.imm
			b := mem.mustRange(a, 1)
			stack[len(stack)-1] = uint64(b[0])
		case uint16(OpI64Load16S):
			a := uint64(uint32(stack[len(stack)-1])) + ins.imm
			b := mem.mustRange(a, 2)
			stack[len(stack)-1] = uint64(int64(int16(leUint16(b))))
		case uint16(OpI64Load16U):
			a := uint64(uint32(stack[len(stack)-1])) + ins.imm
			b := mem.mustRange(a, 2)
			stack[len(stack)-1] = uint64(leUint16(b))
		case uint16(OpI64Load32S):
			a := uint64(uint32(stack[len(stack)-1])) + ins.imm
			b := mem.mustRange(a, 4)
			stack[len(stack)-1] = uint64(int64(int32(leUint32(b))))
		case uint16(OpI64Load32U):
			a := uint64(uint32(stack[len(stack)-1])) + ins.imm
			b := mem.mustRange(a, 4)
			stack[len(stack)-1] = uint64(leUint32(b))

		case uint16(OpI32Store):
			v := uint32(stack[len(stack)-1])
			a := uint64(uint32(stack[len(stack)-2])) + ins.imm
			stack = stack[:len(stack)-2]
			b := mem.mustRange(a, 4)
			putLeUint32(b, v)
		case uint16(OpI64Store):
			v := stack[len(stack)-1]
			a := uint64(uint32(stack[len(stack)-2])) + ins.imm
			stack = stack[:len(stack)-2]
			b := mem.mustRange(a, 8)
			putLeUint64(b, v)
		case uint16(OpF32Store):
			v := uint32(stack[len(stack)-1])
			a := uint64(uint32(stack[len(stack)-2])) + ins.imm
			stack = stack[:len(stack)-2]
			b := mem.mustRange(a, 4)
			putLeUint32(b, v)
		case uint16(OpF64Store):
			v := stack[len(stack)-1]
			a := uint64(uint32(stack[len(stack)-2])) + ins.imm
			stack = stack[:len(stack)-2]
			b := mem.mustRange(a, 8)
			putLeUint64(b, v)
		case uint16(OpI32Store8), uint16(OpI64Store8):
			v := byte(stack[len(stack)-1])
			a := uint64(uint32(stack[len(stack)-2])) + ins.imm
			stack = stack[:len(stack)-2]
			b := mem.mustRange(a, 1)
			b[0] = v
		case uint16(OpI32Store16), uint16(OpI64Store16):
			v := uint16(stack[len(stack)-1])
			a := uint64(uint32(stack[len(stack)-2])) + ins.imm
			stack = stack[:len(stack)-2]
			b := mem.mustRange(a, 2)
			b[0], b[1] = byte(v), byte(v>>8)
		case uint16(OpI64Store32):
			v := uint32(stack[len(stack)-1])
			a := uint64(uint32(stack[len(stack)-2])) + ins.imm
			stack = stack[:len(stack)-2]
			b := mem.mustRange(a, 4)
			putLeUint32(b, v)

		case uint16(OpMemorySize):
			stack = append(stack, uint64(mem.Size()))
		case uint16(OpMemoryGrow):
			delta := uint32(stack[len(stack)-1])
			prev, ok := mem.Grow(delta)
			if ok {
				stack[len(stack)-1] = uint64(prev)
			} else {
				stack[len(stack)-1] = uint64(uint32(0xFFFFFFFF))
			}

		// Constants -----------------------------------------------------
		case uint16(OpI32Const), uint16(OpI64Const), uint16(OpF32Const), uint16(OpF64Const):
			stack = append(stack, ins.imm)

		// i32 comparisons -------------------------------------------------
		case uint16(OpI32Eqz):
			stack[len(stack)-1] = b2i(uint32(stack[len(stack)-1]) == 0)
		case uint16(OpI32Eq):
			stack = cmpTop(stack, uint32(stack[len(stack)-2]) == uint32(stack[len(stack)-1]))
		case uint16(OpI32Ne):
			stack = cmpTop(stack, uint32(stack[len(stack)-2]) != uint32(stack[len(stack)-1]))
		case uint16(OpI32LtS):
			stack = cmpTop(stack, int32(stack[len(stack)-2]) < int32(stack[len(stack)-1]))
		case uint16(OpI32LtU):
			stack = cmpTop(stack, uint32(stack[len(stack)-2]) < uint32(stack[len(stack)-1]))
		case uint16(OpI32GtS):
			stack = cmpTop(stack, int32(stack[len(stack)-2]) > int32(stack[len(stack)-1]))
		case uint16(OpI32GtU):
			stack = cmpTop(stack, uint32(stack[len(stack)-2]) > uint32(stack[len(stack)-1]))
		case uint16(OpI32LeS):
			stack = cmpTop(stack, int32(stack[len(stack)-2]) <= int32(stack[len(stack)-1]))
		case uint16(OpI32LeU):
			stack = cmpTop(stack, uint32(stack[len(stack)-2]) <= uint32(stack[len(stack)-1]))
		case uint16(OpI32GeS):
			stack = cmpTop(stack, int32(stack[len(stack)-2]) >= int32(stack[len(stack)-1]))
		case uint16(OpI32GeU):
			stack = cmpTop(stack, uint32(stack[len(stack)-2]) >= uint32(stack[len(stack)-1]))

		// i64 comparisons -------------------------------------------------
		case uint16(OpI64Eqz):
			stack[len(stack)-1] = b2i(stack[len(stack)-1] == 0)
		case uint16(OpI64Eq):
			stack = cmpTop(stack, stack[len(stack)-2] == stack[len(stack)-1])
		case uint16(OpI64Ne):
			stack = cmpTop(stack, stack[len(stack)-2] != stack[len(stack)-1])
		case uint16(OpI64LtS):
			stack = cmpTop(stack, int64(stack[len(stack)-2]) < int64(stack[len(stack)-1]))
		case uint16(OpI64LtU):
			stack = cmpTop(stack, stack[len(stack)-2] < stack[len(stack)-1])
		case uint16(OpI64GtS):
			stack = cmpTop(stack, int64(stack[len(stack)-2]) > int64(stack[len(stack)-1]))
		case uint16(OpI64GtU):
			stack = cmpTop(stack, stack[len(stack)-2] > stack[len(stack)-1])
		case uint16(OpI64LeS):
			stack = cmpTop(stack, int64(stack[len(stack)-2]) <= int64(stack[len(stack)-1]))
		case uint16(OpI64LeU):
			stack = cmpTop(stack, stack[len(stack)-2] <= stack[len(stack)-1])
		case uint16(OpI64GeS):
			stack = cmpTop(stack, int64(stack[len(stack)-2]) >= int64(stack[len(stack)-1]))
		case uint16(OpI64GeU):
			stack = cmpTop(stack, stack[len(stack)-2] >= stack[len(stack)-1])

		// float comparisons -----------------------------------------------
		case uint16(OpF32Eq):
			stack = cmpTop(stack, f32FromBits(stack[len(stack)-2]) == f32FromBits(stack[len(stack)-1]))
		case uint16(OpF32Ne):
			stack = cmpTop(stack, f32FromBits(stack[len(stack)-2]) != f32FromBits(stack[len(stack)-1]))
		case uint16(OpF32Lt):
			stack = cmpTop(stack, f32FromBits(stack[len(stack)-2]) < f32FromBits(stack[len(stack)-1]))
		case uint16(OpF32Gt):
			stack = cmpTop(stack, f32FromBits(stack[len(stack)-2]) > f32FromBits(stack[len(stack)-1]))
		case uint16(OpF32Le):
			stack = cmpTop(stack, f32FromBits(stack[len(stack)-2]) <= f32FromBits(stack[len(stack)-1]))
		case uint16(OpF32Ge):
			stack = cmpTop(stack, f32FromBits(stack[len(stack)-2]) >= f32FromBits(stack[len(stack)-1]))
		case uint16(OpF64Eq):
			stack = cmpTop(stack, f64FromBits(stack[len(stack)-2]) == f64FromBits(stack[len(stack)-1]))
		case uint16(OpF64Ne):
			stack = cmpTop(stack, f64FromBits(stack[len(stack)-2]) != f64FromBits(stack[len(stack)-1]))
		case uint16(OpF64Lt):
			stack = cmpTop(stack, f64FromBits(stack[len(stack)-2]) < f64FromBits(stack[len(stack)-1]))
		case uint16(OpF64Gt):
			stack = cmpTop(stack, f64FromBits(stack[len(stack)-2]) > f64FromBits(stack[len(stack)-1]))
		case uint16(OpF64Le):
			stack = cmpTop(stack, f64FromBits(stack[len(stack)-2]) <= f64FromBits(stack[len(stack)-1]))
		case uint16(OpF64Ge):
			stack = cmpTop(stack, f64FromBits(stack[len(stack)-2]) >= f64FromBits(stack[len(stack)-1]))

		// i32 arithmetic --------------------------------------------------
		case uint16(OpI32Clz):
			stack[len(stack)-1] = uint64(bits.LeadingZeros32(uint32(stack[len(stack)-1])))
		case uint16(OpI32Ctz):
			stack[len(stack)-1] = uint64(bits.TrailingZeros32(uint32(stack[len(stack)-1])))
		case uint16(OpI32Popcnt):
			stack[len(stack)-1] = uint64(bits.OnesCount32(uint32(stack[len(stack)-1])))
		case uint16(OpI32Add):
			stack = bin32(stack, uint32(stack[len(stack)-2])+uint32(stack[len(stack)-1]))
		case uint16(OpI32Sub):
			stack = bin32(stack, uint32(stack[len(stack)-2])-uint32(stack[len(stack)-1]))
		case uint16(OpI32Mul):
			stack = bin32(stack, uint32(stack[len(stack)-2])*uint32(stack[len(stack)-1]))
		case uint16(OpI32DivS):
			d := int32(stack[len(stack)-1])
			n := int32(stack[len(stack)-2])
			if d == 0 {
				panic(newTrap(TrapIntegerDivideByZero))
			}
			if n == math.MinInt32 && d == -1 {
				panic(newTrap(TrapIntegerOverflow))
			}
			stack = bin32(stack, uint32(n/d))
		case uint16(OpI32DivU):
			d := uint32(stack[len(stack)-1])
			if d == 0 {
				panic(newTrap(TrapIntegerDivideByZero))
			}
			stack = bin32(stack, uint32(stack[len(stack)-2])/d)
		case uint16(OpI32RemS):
			d := int32(stack[len(stack)-1])
			n := int32(stack[len(stack)-2])
			if d == 0 {
				panic(newTrap(TrapIntegerDivideByZero))
			}
			if n == math.MinInt32 && d == -1 {
				stack = bin32(stack, 0)
			} else {
				stack = bin32(stack, uint32(n%d))
			}
		case uint16(OpI32RemU):
			d := uint32(stack[len(stack)-1])
			if d == 0 {
				panic(newTrap(TrapIntegerDivideByZero))
			}
			stack = bin32(stack, uint32(stack[len(stack)-2])%d)
		case uint16(OpI32And):
			stack = bin32(stack, uint32(stack[len(stack)-2])&uint32(stack[len(stack)-1]))
		case uint16(OpI32Or):
			stack = bin32(stack, uint32(stack[len(stack)-2])|uint32(stack[len(stack)-1]))
		case uint16(OpI32Xor):
			stack = bin32(stack, uint32(stack[len(stack)-2])^uint32(stack[len(stack)-1]))
		case uint16(OpI32Shl):
			stack = bin32(stack, uint32(stack[len(stack)-2])<<(uint32(stack[len(stack)-1])&31))
		case uint16(OpI32ShrS):
			stack = bin32(stack, uint32(int32(stack[len(stack)-2])>>(uint32(stack[len(stack)-1])&31)))
		case uint16(OpI32ShrU):
			stack = bin32(stack, uint32(stack[len(stack)-2])>>(uint32(stack[len(stack)-1])&31))
		case uint16(OpI32Rotl):
			stack = bin32(stack, bits.RotateLeft32(uint32(stack[len(stack)-2]), int(uint32(stack[len(stack)-1])&31)))
		case uint16(OpI32Rotr):
			stack = bin32(stack, bits.RotateLeft32(uint32(stack[len(stack)-2]), -int(uint32(stack[len(stack)-1])&31)))

		// i64 arithmetic --------------------------------------------------
		case uint16(OpI64Clz):
			stack[len(stack)-1] = uint64(bits.LeadingZeros64(stack[len(stack)-1]))
		case uint16(OpI64Ctz):
			stack[len(stack)-1] = uint64(bits.TrailingZeros64(stack[len(stack)-1]))
		case uint16(OpI64Popcnt):
			stack[len(stack)-1] = uint64(bits.OnesCount64(stack[len(stack)-1]))
		case uint16(OpI64Add):
			stack = bin64(stack, stack[len(stack)-2]+stack[len(stack)-1])
		case uint16(OpI64Sub):
			stack = bin64(stack, stack[len(stack)-2]-stack[len(stack)-1])
		case uint16(OpI64Mul):
			stack = bin64(stack, stack[len(stack)-2]*stack[len(stack)-1])
		case uint16(OpI64DivS):
			d := int64(stack[len(stack)-1])
			n := int64(stack[len(stack)-2])
			if d == 0 {
				panic(newTrap(TrapIntegerDivideByZero))
			}
			if n == math.MinInt64 && d == -1 {
				panic(newTrap(TrapIntegerOverflow))
			}
			stack = bin64(stack, uint64(n/d))
		case uint16(OpI64DivU):
			d := stack[len(stack)-1]
			if d == 0 {
				panic(newTrap(TrapIntegerDivideByZero))
			}
			stack = bin64(stack, stack[len(stack)-2]/d)
		case uint16(OpI64RemS):
			d := int64(stack[len(stack)-1])
			n := int64(stack[len(stack)-2])
			if d == 0 {
				panic(newTrap(TrapIntegerDivideByZero))
			}
			if n == math.MinInt64 && d == -1 {
				stack = bin64(stack, 0)
			} else {
				stack = bin64(stack, uint64(n%d))
			}
		case uint16(OpI64RemU):
			d := stack[len(stack)-1]
			if d == 0 {
				panic(newTrap(TrapIntegerDivideByZero))
			}
			stack = bin64(stack, stack[len(stack)-2]%d)
		case uint16(OpI64And):
			stack = bin64(stack, stack[len(stack)-2]&stack[len(stack)-1])
		case uint16(OpI64Or):
			stack = bin64(stack, stack[len(stack)-2]|stack[len(stack)-1])
		case uint16(OpI64Xor):
			stack = bin64(stack, stack[len(stack)-2]^stack[len(stack)-1])
		case uint16(OpI64Shl):
			stack = bin64(stack, stack[len(stack)-2]<<(stack[len(stack)-1]&63))
		case uint16(OpI64ShrS):
			stack = bin64(stack, uint64(int64(stack[len(stack)-2])>>(stack[len(stack)-1]&63)))
		case uint16(OpI64ShrU):
			stack = bin64(stack, stack[len(stack)-2]>>(stack[len(stack)-1]&63))
		case uint16(OpI64Rotl):
			stack = bin64(stack, bits.RotateLeft64(stack[len(stack)-2], int(stack[len(stack)-1]&63)))
		case uint16(OpI64Rotr):
			stack = bin64(stack, bits.RotateLeft64(stack[len(stack)-2], -int(stack[len(stack)-1]&63)))

		// f32 arithmetic --------------------------------------------------
		case uint16(OpF32Abs):
			stack[len(stack)-1] = uint64(uint32(stack[len(stack)-1]) &^ (1 << 31))
		case uint16(OpF32Neg):
			stack[len(stack)-1] = uint64(uint32(stack[len(stack)-1]) ^ (1 << 31))
		case uint16(OpF32Ceil):
			stack = f32un(stack, float32(math.Ceil(float64(f32FromBits(stack[len(stack)-1])))))
		case uint16(OpF32Floor):
			stack = f32un(stack, float32(math.Floor(float64(f32FromBits(stack[len(stack)-1])))))
		case uint16(OpF32Trunc):
			stack = f32un(stack, float32(math.Trunc(float64(f32FromBits(stack[len(stack)-1])))))
		case uint16(OpF32Nearest):
			stack = f32un(stack, float32(math.RoundToEven(float64(f32FromBits(stack[len(stack)-1])))))
		case uint16(OpF32Sqrt):
			stack = f32un(stack, float32(math.Sqrt(float64(f32FromBits(stack[len(stack)-1])))))
		case uint16(OpF32Add):
			stack = f32bin(stack, f32FromBits(stack[len(stack)-2])+f32FromBits(stack[len(stack)-1]))
		case uint16(OpF32Sub):
			stack = f32bin(stack, f32FromBits(stack[len(stack)-2])-f32FromBits(stack[len(stack)-1]))
		case uint16(OpF32Mul):
			stack = f32bin(stack, f32FromBits(stack[len(stack)-2])*f32FromBits(stack[len(stack)-1]))
		case uint16(OpF32Div):
			stack = f32bin(stack, f32FromBits(stack[len(stack)-2])/f32FromBits(stack[len(stack)-1]))
		case uint16(OpF32Min):
			stack = f32bin(stack, float32(math.Min(float64(f32FromBits(stack[len(stack)-2])), float64(f32FromBits(stack[len(stack)-1])))))
		case uint16(OpF32Max):
			stack = f32bin(stack, float32(math.Max(float64(f32FromBits(stack[len(stack)-2])), float64(f32FromBits(stack[len(stack)-1])))))
		case uint16(OpF32Copysign):
			stack = f32bin(stack, float32(math.Copysign(float64(f32FromBits(stack[len(stack)-2])), float64(f32FromBits(stack[len(stack)-1])))))

		// f64 arithmetic --------------------------------------------------
		case uint16(OpF64Abs):
			stack[len(stack)-1] &^= 1 << 63
		case uint16(OpF64Neg):
			stack[len(stack)-1] ^= 1 << 63
		case uint16(OpF64Ceil):
			stack = f64un(stack, math.Ceil(f64FromBits(stack[len(stack)-1])))
		case uint16(OpF64Floor):
			stack = f64un(stack, math.Floor(f64FromBits(stack[len(stack)-1])))
		case uint16(OpF64Trunc):
			stack = f64un(stack, math.Trunc(f64FromBits(stack[len(stack)-1])))
		case uint16(OpF64Nearest):
			stack = f64un(stack, math.RoundToEven(f64FromBits(stack[len(stack)-1])))
		case uint16(OpF64Sqrt):
			stack = f64un(stack, math.Sqrt(f64FromBits(stack[len(stack)-1])))
		case uint16(OpF64Add):
			stack = f64bin(stack, f64FromBits(stack[len(stack)-2])+f64FromBits(stack[len(stack)-1]))
		case uint16(OpF64Sub):
			stack = f64bin(stack, f64FromBits(stack[len(stack)-2])-f64FromBits(stack[len(stack)-1]))
		case uint16(OpF64Mul):
			stack = f64bin(stack, f64FromBits(stack[len(stack)-2])*f64FromBits(stack[len(stack)-1]))
		case uint16(OpF64Div):
			stack = f64bin(stack, f64FromBits(stack[len(stack)-2])/f64FromBits(stack[len(stack)-1]))
		case uint16(OpF64Min):
			stack = f64bin(stack, math.Min(f64FromBits(stack[len(stack)-2]), f64FromBits(stack[len(stack)-1])))
		case uint16(OpF64Max):
			stack = f64bin(stack, math.Max(f64FromBits(stack[len(stack)-2]), f64FromBits(stack[len(stack)-1])))
		case uint16(OpF64Copysign):
			stack = f64bin(stack, math.Copysign(f64FromBits(stack[len(stack)-2]), f64FromBits(stack[len(stack)-1])))

		// Conversions -----------------------------------------------------
		case uint16(OpI32WrapI64):
			stack[len(stack)-1] = uint64(uint32(stack[len(stack)-1]))
		case uint16(OpI32TruncF32S):
			stack[len(stack)-1] = uint64(uint32(truncToI32S(float64(f32FromBits(stack[len(stack)-1])))))
		case uint16(OpI32TruncF32U):
			stack[len(stack)-1] = uint64(truncToI32U(float64(f32FromBits(stack[len(stack)-1]))))
		case uint16(OpI32TruncF64S):
			stack[len(stack)-1] = uint64(uint32(truncToI32S(f64FromBits(stack[len(stack)-1]))))
		case uint16(OpI32TruncF64U):
			stack[len(stack)-1] = uint64(truncToI32U(f64FromBits(stack[len(stack)-1])))
		case uint16(OpI64ExtendI32S):
			stack[len(stack)-1] = uint64(int64(int32(stack[len(stack)-1])))
		case uint16(OpI64ExtendI32U):
			stack[len(stack)-1] = uint64(uint32(stack[len(stack)-1]))
		case uint16(OpI64TruncF32S):
			stack[len(stack)-1] = uint64(truncToI64S(float64(f32FromBits(stack[len(stack)-1]))))
		case uint16(OpI64TruncF32U):
			stack[len(stack)-1] = truncToI64U(float64(f32FromBits(stack[len(stack)-1])))
		case uint16(OpI64TruncF64S):
			stack[len(stack)-1] = uint64(truncToI64S(f64FromBits(stack[len(stack)-1])))
		case uint16(OpI64TruncF64U):
			stack[len(stack)-1] = truncToI64U(f64FromBits(stack[len(stack)-1]))
		case uint16(OpF32ConvertI32S):
			stack = f32un(stack, float32(int32(stack[len(stack)-1])))
		case uint16(OpF32ConvertI32U):
			stack = f32un(stack, float32(uint32(stack[len(stack)-1])))
		case uint16(OpF32ConvertI64S):
			stack = f32un(stack, float32(int64(stack[len(stack)-1])))
		case uint16(OpF32ConvertI64U):
			stack = f32un(stack, float32(stack[len(stack)-1]))
		case uint16(OpF32DemoteF64):
			stack = f32un(stack, float32(f64FromBits(stack[len(stack)-1])))
		case uint16(OpF64ConvertI32S):
			stack = f64un(stack, float64(int32(stack[len(stack)-1])))
		case uint16(OpF64ConvertI32U):
			stack = f64un(stack, float64(uint32(stack[len(stack)-1])))
		case uint16(OpF64ConvertI64S):
			stack = f64un(stack, float64(int64(stack[len(stack)-1])))
		case uint16(OpF64ConvertI64U):
			stack = f64un(stack, float64(stack[len(stack)-1]))
		case uint16(OpF64PromoteF32):
			stack = f64un(stack, float64(f32FromBits(stack[len(stack)-1])))
		case uint16(OpI32ReinterpretF32), uint16(OpI64ReinterpretF64),
			uint16(OpF32ReinterpretI32), uint16(OpF64ReinterpretI64):
			// Bit patterns are already raw; nothing to do.

		// Sign extension ---------------------------------------------------
		case uint16(OpI32Extend8S):
			stack[len(stack)-1] = uint64(uint32(int32(int8(stack[len(stack)-1]))))
		case uint16(OpI32Extend16S):
			stack[len(stack)-1] = uint64(uint32(int32(int16(stack[len(stack)-1]))))
		case uint16(OpI64Extend8S):
			stack[len(stack)-1] = uint64(int64(int8(stack[len(stack)-1])))
		case uint16(OpI64Extend16S):
			stack[len(stack)-1] = uint64(int64(int16(stack[len(stack)-1])))
		case uint16(OpI64Extend32S):
			stack[len(stack)-1] = uint64(int64(int32(stack[len(stack)-1])))

		// Misc (0xFC) -------------------------------------------------------
		case miscBase + uint16(MiscI32TruncSatF32S):
			stack[len(stack)-1] = uint64(uint32(truncSatI32S(float64(f32FromBits(stack[len(stack)-1])))))
		case miscBase + uint16(MiscI32TruncSatF32U):
			stack[len(stack)-1] = uint64(truncSatI32U(float64(f32FromBits(stack[len(stack)-1]))))
		case miscBase + uint16(MiscI32TruncSatF64S):
			stack[len(stack)-1] = uint64(uint32(truncSatI32S(f64FromBits(stack[len(stack)-1]))))
		case miscBase + uint16(MiscI32TruncSatF64U):
			stack[len(stack)-1] = uint64(truncSatI32U(f64FromBits(stack[len(stack)-1])))
		case miscBase + uint16(MiscI64TruncSatF32S):
			stack[len(stack)-1] = uint64(truncSatI64S(float64(f32FromBits(stack[len(stack)-1]))))
		case miscBase + uint16(MiscI64TruncSatF32U):
			stack[len(stack)-1] = truncSatI64U(float64(f32FromBits(stack[len(stack)-1])))
		case miscBase + uint16(MiscI64TruncSatF64S):
			stack[len(stack)-1] = uint64(truncSatI64S(f64FromBits(stack[len(stack)-1])))
		case miscBase + uint16(MiscI64TruncSatF64U):
			stack[len(stack)-1] = truncSatI64U(f64FromBits(stack[len(stack)-1]))
		case miscBase + uint16(MiscMemoryCopy):
			n := uint64(uint32(stack[len(stack)-1]))
			src := uint64(uint32(stack[len(stack)-2]))
			dst := uint64(uint32(stack[len(stack)-3]))
			stack = stack[:len(stack)-3]
			s := mem.mustRange(src, n)
			d := mem.mustRange(dst, n)
			copy(d, s)
		case miscBase + uint16(MiscMemoryFill):
			n := uint64(uint32(stack[len(stack)-1]))
			val := byte(stack[len(stack)-2])
			dst := uint64(uint32(stack[len(stack)-3]))
			stack = stack[:len(stack)-3]
			d := mem.mustRange(dst, n)
			for i := range d {
				d[i] = val
			}

		// Fused superinstructions (present only in the fused stream). The
		// loop header charged 1 unit for the fused op; each case charges the
		// remaining width-1 units BEFORE executing, which is bit-identical
		// to sequential execution because every window's trapping operation
		// comes last — except fused.load_eqz_br, which splits its charge
		// around the load (see chargeFuel).
		case fGetGet:
			in.chargeFuel(1)
			stack = append(stack, locals[ins.a], locals[ins.b])
		case fGetConst:
			in.chargeFuel(1)
			stack = append(stack, locals[ins.a], ins.imm)
		case fGetLoad32:
			in.chargeFuel(1)
			a := uint64(uint32(locals[ins.a])) + ins.imm
			stack = append(stack, uint64(leUint32(mem.mustRange(a, 4))))
		case fGetStore32:
			in.chargeFuel(1)
			a := uint64(uint32(stack[len(stack)-1])) + ins.imm
			stack = stack[:len(stack)-1]
			putLeUint32(mem.mustRange(a, 4), uint32(locals[ins.a]))
		case fGetBin32:
			in.chargeFuel(1)
			stack[len(stack)-1] = uint64(i32bin(uint16(ins.imm), uint32(stack[len(stack)-1]), uint32(locals[ins.a])))
		case fGetGetBin32:
			in.chargeFuel(2)
			stack = append(stack, uint64(i32bin(uint16(ins.imm), uint32(locals[ins.a]), uint32(locals[ins.b]))))
		case fGetGetCmp32:
			in.chargeFuel(2)
			stack = append(stack, b2i(i32cmp(uint16(ins.imm), uint32(locals[ins.a]), uint32(locals[ins.b]))))
		case fGetConstBin32:
			in.chargeFuel(2)
			stack = append(stack, uint64(i32bin(uint16(ins.b), uint32(locals[ins.a]), uint32(ins.imm))))
		case fGetConstCmp32:
			in.chargeFuel(2)
			stack = append(stack, b2i(i32cmp(uint16(ins.b), uint32(locals[ins.a]), uint32(ins.imm))))
		case fGetGetStore32:
			in.chargeFuel(2)
			a := uint64(uint32(locals[ins.a])) + ins.imm
			putLeUint32(mem.mustRange(a, 4), uint32(locals[ins.b]))
		case fConstAddStore32:
			in.chargeFuel(2)
			v := uint32(stack[len(stack)-1]) + ins.a
			a := uint64(uint32(stack[len(stack)-2])) + ins.imm
			stack = stack[:len(stack)-2]
			putLeUint32(mem.mustRange(a, 4), v)
		case fGetGetCmpBr:
			in.chargeFuel(3)
			if i32cmp(uint16(ins.imm), uint32(locals[ins.a]), uint32(locals[ins.b])) {
				t := ins.targets[0]
				stack = takeBranch(stack, t)
				if in.deadline != 0 && int(t.pc) <= pc {
					in.pollDeadline()
				}
				pc = int(t.pc) - 1
			}
		case fGetConstCmpBr:
			in.chargeFuel(3)
			if i32cmp(uint16(ins.b), uint32(locals[ins.a]), uint32(ins.imm)) {
				t := ins.targets[0]
				stack = takeBranch(stack, t)
				if in.deadline != 0 && int(t.pc) <= pc {
					in.pollDeadline()
				}
				pc = int(t.pc) - 1
			}
		case fGetConstAddSet:
			in.chargeFuel(3)
			locals[ins.b] = uint64(uint32(locals[ins.a]) + uint32(ins.imm))
		case fLoadEqzBr:
			a := uint64(uint32(stack[len(stack)-1])) + ins.imm
			stack = stack[:len(stack)-1]
			v := leUint32(mem.mustRange(a, 4))
			in.chargeFuel(2) // split charge: the load traps before eqz+br_if pay
			if v == 0 {
				t := ins.targets[0]
				stack = takeBranch(stack, t)
				if in.deadline != 0 && int(t.pc) <= pc {
					in.pollDeadline()
				}
				pc = int(t.pc) - 1
			}
		case fEqzBr:
			in.chargeFuel(1)
			c := uint32(stack[len(stack)-1])
			stack = stack[:len(stack)-1]
			if c == 0 {
				t := ins.targets[0]
				stack = takeBranch(stack, t)
				if in.deadline != 0 && int(t.pc) <= pc {
					in.pollDeadline()
				}
				pc = int(t.pc) - 1
			}
		case fCmpBr:
			in.chargeFuel(1)
			x, y := uint32(stack[len(stack)-2]), uint32(stack[len(stack)-1])
			stack = stack[:len(stack)-2]
			if i32cmp(uint16(ins.imm), x, y) {
				t := ins.targets[0]
				stack = takeBranch(stack, t)
				if in.deadline != 0 && int(t.pc) <= pc {
					in.pollDeadline()
				}
				pc = int(t.pc) - 1
			}

		default:
			panic(&Trap{Code: TrapHostError, Wrapped: errUnknownInstr(ins.op)})
		}
	}
	// The compiler always emits an explicit return; reaching here means a
	// compiler bug, not guest misbehaviour.
	panic(&Trap{Code: TrapHostError, Wrapped: errUnknownInstr(0xFFFF)})
}

// takeBranch applies a resolved branch target to the operand stack.
func takeBranch(stack []uint64, t branchTarget) []uint64 {
	if t.keep > 0 {
		copy(stack[t.unwind:], stack[uint32(len(stack))-t.keep:])
	}
	return stack[:t.unwind+t.keep]
}

func b2i(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func cmpTop(stack []uint64, b bool) []uint64 {
	stack = stack[:len(stack)-1]
	stack[len(stack)-1] = b2i(b)
	return stack
}

func bin32(stack []uint64, v uint32) []uint64 {
	stack = stack[:len(stack)-1]
	stack[len(stack)-1] = uint64(v)
	return stack
}

func bin64(stack []uint64, v uint64) []uint64 {
	stack = stack[:len(stack)-1]
	stack[len(stack)-1] = v
	return stack
}

func f32un(stack []uint64, v float32) []uint64 {
	stack[len(stack)-1] = uint64(math.Float32bits(v))
	return stack
}

func f64un(stack []uint64, v float64) []uint64 {
	stack[len(stack)-1] = math.Float64bits(v)
	return stack
}

func f32bin(stack []uint64, v float32) []uint64 {
	stack = stack[:len(stack)-1]
	stack[len(stack)-1] = uint64(math.Float32bits(v))
	return stack
}

func f64bin(stack []uint64, v float64) []uint64 {
	stack = stack[:len(stack)-1]
	stack[len(stack)-1] = math.Float64bits(v)
	return stack
}

// Trapping float -> int truncations (spec-exact bounds).

func truncToI32S(f float64) int32 {
	if f != f {
		panic(newTrap(TrapInvalidConversion))
	}
	f = math.Trunc(f)
	if f < -2147483648 || f > 2147483647 {
		panic(newTrap(TrapIntegerOverflow))
	}
	return int32(f)
}

func truncToI32U(f float64) uint32 {
	if f != f {
		panic(newTrap(TrapInvalidConversion))
	}
	f = math.Trunc(f)
	if f < 0 || f > 4294967295 {
		panic(newTrap(TrapIntegerOverflow))
	}
	return uint32(f)
}

func truncToI64S(f float64) int64 {
	if f != f {
		panic(newTrap(TrapInvalidConversion))
	}
	f = math.Trunc(f)
	if f < -9223372036854775808 || f >= 9223372036854775808 {
		panic(newTrap(TrapIntegerOverflow))
	}
	return int64(f)
}

func truncToI64U(f float64) uint64 {
	if f != f {
		panic(newTrap(TrapInvalidConversion))
	}
	f = math.Trunc(f)
	if f < 0 || f >= 18446744073709551616 {
		panic(newTrap(TrapIntegerOverflow))
	}
	return uint64(f)
}

// Saturating variants.

func truncSatI32S(f float64) int32 {
	if f != f {
		return 0
	}
	f = math.Trunc(f)
	if f < -2147483648 {
		return math.MinInt32
	}
	if f > 2147483647 {
		return math.MaxInt32
	}
	return int32(f)
}

func truncSatI32U(f float64) uint32 {
	if f != f || f < 0 {
		return 0
	}
	f = math.Trunc(f)
	if f > 4294967295 {
		return math.MaxUint32
	}
	return uint32(f)
}

func truncSatI64S(f float64) int64 {
	if f != f {
		return 0
	}
	f = math.Trunc(f)
	if f < -9223372036854775808 {
		return math.MinInt64
	}
	if f >= 9223372036854775808 {
		return math.MaxInt64
	}
	return int64(f)
}

func truncSatI64U(f float64) uint64 {
	if f != f || f < 0 {
		return 0
	}
	f = math.Trunc(f)
	if f >= 18446744073709551616 {
		return math.MaxUint64
	}
	return uint64(f)
}

// Little-endian helpers avoiding encoding/binary's interface indirection on
// the hot path.

func leUint16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }

func leUint32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func leUint64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLeUint32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func putLeUint64(b []byte, v uint64) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
}

type errUnknownInstr uint16

func (e errUnknownInstr) Error() string {
	return "wasm: internal error: unknown compiled instruction"
}

package wasm

import (
	"math"
	"math/bits"
	"time"
)

// Closure tier: each (fused) instruction is lowered once, at promotion time,
// to a Go closure with its immediates, branch targets and successor pc
// captured as constants. Execution is a register-caching dispatch loop —
// pc and sp live in registers, the operand stack is indexed (no append
// traffic), and there is no per-instruction switch: the cost per op is one
// indirect call. Opcodes embedded in fused instructions (the i32 binop /
// compare selectors) are resolved to direct function values during
// compilation, so no fused op re-dispatches on its selector at run time.
//
// Fuel/InstrCount/trap accounting is bit-identical to the interpreter, but
// charged at straight-line segment granularity: the stream is cut at every
// instruction that can trap, branch, call or return (and at every branch
// target), and the dispatch loop pre-charges each segment's total fused
// width at the segment's first op. Because nothing before a segment's
// final instruction can fault or leave the segment, the only early exit a
// pre-charge moves is fuel exhaustion itself — and Instance.chargeFuel
// makes that land on the exact instruction boundary (InstrCount advances
// only by the units actually paid), so exhaustion, InstrCount and every
// trap class remain indistinguishable from per-instruction charging. Ops
// whose trapping operation is not last (fused.load_eqz_br) still split
// their charge exactly like the fused interpreter tier does.

// closOp executes one lowered instruction and returns (next pc, next sp).
// A negative pc terminates the loop; results sit at stack[sp-n:sp].
type closOp func(e *closEnv, sp int) (int, int)

// closEnv is the per-depth execution environment, cached in frameBuf so an
// outer call's env (and its locals/stack buffers) is reused across calls at
// the same depth without heap churn.
type closEnv struct {
	in     *Instance
	mem    *Memory
	locals []uint64
	stack  []uint64
}

// closFunc is the closure-compiled form of one function body. charge holds
// the batch fuel charge per pc: the segment's total fused width at each
// segment head, zero for mid-segment ops.
type closFunc struct {
	ops        []closOp
	charge     []uint32
	numLocals  int // params + locals
	numResults int
	stackCap   int
}

// execClosures runs a closure-compiled body. Panics with *Trap on fault,
// exactly like exec.
func (in *Instance) execClosures(cf *closFunc, args []uint64) []uint64 {
	for len(in.frameBufs) <= in.depth {
		in.frameBufs = append(in.frameBufs, frameBuf{})
	}
	fb := &in.frameBufs[in.depth]
	if fb.env == nil {
		fb.env = &closEnv{}
	}
	e := fb.env
	if cap(e.locals) < cf.numLocals {
		e.locals = make([]uint64, cf.numLocals)
	}
	e.locals = e.locals[:cf.numLocals]
	copy(e.locals, args)
	clear(e.locals[len(args):])
	if cap(e.stack) < cf.stackCap {
		e.stack = make([]uint64, cf.stackCap)
	}
	e.stack = e.stack[:cf.stackCap]
	e.in = in
	e.mem = in.mem

	ops := cf.ops
	sp := 0
	if in.fuelEnabled {
		charge := cf.charge
		for pc := 0; pc >= 0; {
			if k := charge[pc]; k != 0 { // mid-segment ops were charged at their head
				if f := in.fuel; f >= int64(k) {
					in.fuel = f - int64(k)
					in.InstrCount += uint64(k)
					if in.deadline != 0 && in.InstrCount>>16 != (in.InstrCount-uint64(k))>>16 &&
						time.Now().UnixNano() > in.deadline {
						panic(newTrap(TrapDeadlineExceeded))
					}
				} else {
					in.chargeFuel(k) // slow path: unlimited (-1) or exhaustion
				}
			}
			pc, sp = ops[pc](e, sp)
		}
	} else {
		for pc := 0; pc >= 0; {
			pc, sp = ops[pc](e, sp)
		}
	}

	n := cf.numResults
	if cap(fb.res) < n {
		fb.res = make([]uint64, n)
	}
	res := fb.res[:n]
	copy(res, e.stack[sp-n:sp])
	return res
}

// takeBranchSP applies a branch target to the indexed operand stack.
func takeBranchSP(stack []uint64, sp int, t branchTarget) int {
	if t.keep > 0 {
		copy(stack[t.unwind:], stack[sp-int(t.keep):sp])
	}
	return int(t.unwind + t.keep)
}

// Generic closure generators. The hot i32/fused ops get hand-specialized
// closures below; everything else funnels through these.

func clUn(next int, fn func(uint64) uint64) closOp {
	return func(e *closEnv, sp int) (int, int) {
		e.stack[sp-1] = fn(e.stack[sp-1])
		return next, sp
	}
}

func clBin(next int, fn func(x, y uint64) uint64) closOp {
	return func(e *closEnv, sp int) (int, int) {
		e.stack[sp-2] = fn(e.stack[sp-2], e.stack[sp-1])
		return next, sp - 1
	}
}

func clCmp(next int, fn func(x, y uint64) bool) closOp {
	return func(e *closEnv, sp int) (int, int) {
		e.stack[sp-2] = b2i(fn(e.stack[sp-2], e.stack[sp-1]))
		return next, sp - 1
	}
}

func clLoad(next int, off, n uint64, conv func([]byte) uint64) closOp {
	return func(e *closEnv, sp int) (int, int) {
		a := uint64(uint32(e.stack[sp-1])) + off
		e.stack[sp-1] = conv(e.mem.mustRange(a, n))
		return next, sp
	}
}

func clStore(next int, off, n uint64, put func([]byte, uint64)) closOp {
	return func(e *closEnv, sp int) (int, int) {
		v := e.stack[sp-1]
		a := uint64(uint32(e.stack[sp-2])) + off
		put(e.mem.mustRange(a, n), v)
		return next, sp - 2
	}
}

// i32binFn resolves an embedded i32 binop selector to a direct function at
// compile time, so hot arithmetic costs one call, not a switch per
// execution. Trapping ops (div/rem) fall through to the shared i32bin.
func i32binFn(op uint16) func(x, y uint32) uint32 {
	switch op {
	case uint16(OpI32Add):
		return func(x, y uint32) uint32 { return x + y }
	case uint16(OpI32Sub):
		return func(x, y uint32) uint32 { return x - y }
	case uint16(OpI32Mul):
		return func(x, y uint32) uint32 { return x * y }
	case uint16(OpI32And):
		return func(x, y uint32) uint32 { return x & y }
	case uint16(OpI32Or):
		return func(x, y uint32) uint32 { return x | y }
	case uint16(OpI32Xor):
		return func(x, y uint32) uint32 { return x ^ y }
	case uint16(OpI32Shl):
		return func(x, y uint32) uint32 { return x << (y & 31) }
	case uint16(OpI32ShrS):
		return func(x, y uint32) uint32 { return uint32(int32(x) >> (y & 31)) }
	case uint16(OpI32ShrU):
		return func(x, y uint32) uint32 { return x >> (y & 31) }
	}
	return func(x, y uint32) uint32 { return i32bin(op, x, y) }
}

// i32cmpFn is the comparison counterpart of i32binFn.
func i32cmpFn(op uint16) func(x, y uint32) bool {
	switch op {
	case uint16(OpI32Eq):
		return func(x, y uint32) bool { return x == y }
	case uint16(OpI32Ne):
		return func(x, y uint32) bool { return x != y }
	case uint16(OpI32LtS):
		return func(x, y uint32) bool { return int32(x) < int32(y) }
	case uint16(OpI32LtU):
		return func(x, y uint32) bool { return x < y }
	case uint16(OpI32GtS):
		return func(x, y uint32) bool { return int32(x) > int32(y) }
	case uint16(OpI32GtU):
		return func(x, y uint32) bool { return x > y }
	case uint16(OpI32LeS):
		return func(x, y uint32) bool { return int32(x) <= int32(y) }
	case uint16(OpI32LeU):
		return func(x, y uint32) bool { return x <= y }
	case uint16(OpI32GeS):
		return func(x, y uint32) bool { return int32(x) >= int32(y) }
	case uint16(OpI32GeU):
		return func(x, y uint32) bool { return x >= y }
	}
	return func(x, y uint32) bool { return i32cmp(op, x, y) }
}

// compileClosures lowers a function's fused stream (built first by
// ensureTier) to closures. It never fails: any instruction the compiler
// emitted has a lowering, and an unknown op becomes a trapping closure, the
// same internal-error trap the interpreter raises.
//
// The charge array is built by segmenting the code at every instruction
// that can leave the straight line (trap, branch, call, return) and at
// every branch target: each segment head carries the segment's total fused
// width, every other pc charges zero.
func compileClosures(cm *CompiledModule, f *compiledFunc) *closFunc {
	code := f.fused
	cf := &closFunc{
		ops:        make([]closOp, len(code)),
		charge:     make([]uint32, len(code)),
		numLocals:  f.numParams + f.numLocals,
		numResults: len(f.typ.Results),
		stackCap:   f.maxStack + 2,
	}
	for pc := range code {
		cf.ops[pc] = lowerInstr(cm, &code[pc], pc)
	}

	// head[pc] marks the first instruction of a charge segment: the entry,
	// every branch target (control can land there without paying the
	// segment head), and every successor of a segment-ending instruction.
	head := make([]bool, len(code)+1)
	head[0] = true
	for pc := range code {
		for _, t := range code[pc].targets {
			head[t.pc] = true
		}
		if !closMidSegment(&code[pc]) {
			head[pc+1] = true
		}
	}
	for pc := 0; pc < len(code); {
		end := pc
		for !head[end+1] {
			end++
		}
		var k uint32
		for i := pc; i <= end; i++ {
			k += fusedPreCharge(code[i].op)
		}
		cf.charge[pc] = k
		pc = end + 1
	}
	return cf
}

// closMidSegment reports whether an instruction may sit before the end of a
// fuel pre-charge segment: it must not trap, branch, call or return, so the
// only way execution leaves a pre-charged segment early is fuel exhaustion
// at the segment head — the boundary chargeFuel accounts for exactly.
// Anything unrecognized conservatively ends its segment.
func closMidSegment(ins *instr) bool {
	op := ins.op
	switch op {
	case uint16(OpDrop), uint16(OpSelect),
		uint16(OpLocalGet), uint16(OpLocalSet), uint16(OpLocalTee),
		uint16(OpGlobalGet), uint16(OpGlobalSet),
		uint16(OpMemorySize), uint16(OpMemoryGrow),
		fGetGet, fGetConst, fGetGetCmp32, fGetConstCmp32, fGetConstAddSet:
		return true
	case fGetBin32, fGetGetBin32:
		return !i32binTraps(uint16(ins.imm))
	case fGetConstBin32:
		return !i32binTraps(uint16(ins.b))
	}
	switch {
	case op >= uint16(OpI32Const) && op <= uint16(OpF64Ge):
		return true // constants, tests, comparisons
	case op >= uint16(OpI32Clz) && op <= uint16(OpI64Rotr):
		return !i32binTraps(op) && !(op >= uint16(OpI64DivS) && op <= uint16(OpI64RemU))
	case op >= uint16(OpF32Abs) && op <= uint16(OpI32WrapI64):
		return true // float arithmetic never traps
	case op >= uint16(OpI32TruncF32S) && op <= uint16(OpI64TruncF64U):
		return op == uint16(OpI64ExtendI32S) || op == uint16(OpI64ExtendI32U)
	case op >= uint16(OpF32ConvertI32S) && op <= uint16(OpI64Extend32S):
		return true // conversions, reinterprets, sign extensions
	case op >= miscBase+uint16(MiscI32TruncSatF32S) && op <= miscBase+uint16(MiscI64TruncSatF64U):
		return true // saturating truncation never traps
	}
	return false
}

// i32binTraps reports whether an i32 binop selector can trap (div/rem).
func i32binTraps(op uint16) bool {
	return op >= uint16(OpI32DivS) && op <= uint16(OpI32RemU)
}

// callClosure is dispatch specialized for a compile-time-resolved guest
// callee on the closure tier. Semantics are identical to dispatch: same
// depth guard, same call-boundary deadline poll, and the profiled path
// falls back to the shared shadow-stack wrapper.
func (in *Instance) callClosure(fx uint32, f *compiledFunc, args []uint64) []uint64 {
	if in.prof != nil {
		return in.invokeProfiled(fx, args)
	}
	if in.depth >= in.maxDepth {
		panic(newTrap(TrapCallStackExhausted))
	}
	in.depth++
	defer func() { in.depth-- }()
	if in.deadline != 0 {
		in.pollDeadline()
	}
	if c := f.clos; c != nil {
		return in.execClosures(c, args)
	}
	return in.exec(f, f.code, args)
}

// branchOp builds the taken-branch closure body shared by all branching
// lowerings: deadline poll on back-edges, stack adjustment, target pc.
func takeBranchOp(e *closEnv, sp int, t branchTarget, back bool) (int, int) {
	if back && e.in.deadline != 0 {
		e.in.pollDeadline()
	}
	return int(t.pc), takeBranchSP(e.stack, sp, t)
}

func lowerInstr(cm *CompiledModule, ins *instr, pc int) closOp {
	next := pc + 1
	op := ins.op

	// Embedded-selector fused ops resolve their function values up front.
	switch op {

	// Control flow ------------------------------------------------------
	case uint16(OpUnreachable):
		return func(e *closEnv, sp int) (int, int) { panic(newTrap(TrapUnreachable)) }
	case opJump:
		t := ins.targets[0]
		back := int(t.pc) <= pc
		return func(e *closEnv, sp int) (int, int) { return takeBranchOp(e, sp, t, back) }
	case opBrIfFalse:
		t := ins.targets[0]
		back := int(t.pc) <= pc
		return func(e *closEnv, sp int) (int, int) {
			c := uint32(e.stack[sp-1])
			sp--
			if c == 0 {
				return takeBranchOp(e, sp, t, back)
			}
			return next, sp
		}
	case uint16(OpBrIf):
		t := ins.targets[0]
		back := int(t.pc) <= pc
		return func(e *closEnv, sp int) (int, int) {
			c := uint32(e.stack[sp-1])
			sp--
			if c != 0 {
				return takeBranchOp(e, sp, t, back)
			}
			return next, sp
		}
	case uint16(OpBrTable):
		ts := ins.targets
		return func(e *closEnv, sp int) (int, int) {
			sel := int(uint32(e.stack[sp-1]))
			sp--
			if sel >= len(ts)-1 {
				sel = len(ts) - 1
			}
			t := ts[sel]
			return takeBranchOp(e, sp, t, int(t.pc) <= pc)
		}
	case opReturnOp:
		return func(e *closEnv, sp int) (int, int) { return -1, sp }
	case uint16(OpCall):
		fx := ins.a
		np := len(cm.types[fx].Params)
		if nImp := cm.m.numImportedFuncs; int(fx) >= nImp {
			// Guest callee resolved at compile time: the import check and
			// per-call tier switch drop out of the hot path. callee.clos is
			// always built by the time this runs (buildClosures completes
			// before the closure tier executes).
			callee := cm.funcs[int(fx)-nImp]
			return func(e *closEnv, sp int) (int, int) {
				res := e.in.callClosure(fx, callee, e.stack[sp-np:sp])
				sp -= np
				sp += copy(e.stack[sp:], res)
				return next, sp
			}
		}
		return func(e *closEnv, sp int) (int, int) {
			res := e.in.invoke(fx, e.stack[sp-np:sp])
			sp -= np
			sp += copy(e.stack[sp:], res)
			return next, sp
		}
	case uint16(OpCallIndirect):
		want := cm.m.Types[ins.a]
		np := len(want.Params)
		return func(e *closEnv, sp int) (int, int) {
			in := e.in
			elem := uint32(e.stack[sp-1])
			sp--
			if int(elem) >= len(in.table) {
				panic(newTrap(TrapOutOfBoundsTable))
			}
			entry := in.table[elem]
			if entry == 0 {
				panic(newTrap(TrapUninitializedElement))
			}
			funcIdx := entry - 1
			if !in.cm.types[funcIdx].Equal(want) {
				panic(newTrap(TrapIndirectCallTypeMismatch))
			}
			res := in.invoke(funcIdx, e.stack[sp-np:sp])
			sp -= np
			sp += copy(e.stack[sp:], res)
			return next, sp
		}

	// Parametric --------------------------------------------------------
	case uint16(OpDrop):
		return func(e *closEnv, sp int) (int, int) { return next, sp - 1 }
	case uint16(OpSelect):
		return func(e *closEnv, sp int) (int, int) {
			if uint32(e.stack[sp-1]) == 0 {
				e.stack[sp-3] = e.stack[sp-2]
			}
			return next, sp - 2
		}

	// Variables ---------------------------------------------------------
	case uint16(OpLocalGet):
		ix := int(ins.a)
		return func(e *closEnv, sp int) (int, int) {
			e.stack[sp] = e.locals[ix]
			return next, sp + 1
		}
	case uint16(OpLocalSet):
		ix := int(ins.a)
		return func(e *closEnv, sp int) (int, int) {
			e.locals[ix] = e.stack[sp-1]
			return next, sp - 1
		}
	case uint16(OpLocalTee):
		ix := int(ins.a)
		return func(e *closEnv, sp int) (int, int) {
			e.locals[ix] = e.stack[sp-1]
			return next, sp
		}
	case uint16(OpGlobalGet):
		ix := int(ins.a)
		return func(e *closEnv, sp int) (int, int) {
			e.stack[sp] = e.in.globals[ix]
			return next, sp + 1
		}
	case uint16(OpGlobalSet):
		ix := int(ins.a)
		return func(e *closEnv, sp int) (int, int) {
			e.in.globals[ix] = e.stack[sp-1]
			return next, sp - 1
		}

	// Memory ------------------------------------------------------------
	case uint16(OpI32Load):
		off := ins.imm
		return func(e *closEnv, sp int) (int, int) {
			a := uint64(uint32(e.stack[sp-1])) + off
			e.stack[sp-1] = uint64(leUint32(e.mem.mustRange(a, 4)))
			return next, sp
		}
	case uint16(OpI64Load), uint16(OpF64Load):
		return clLoad(next, ins.imm, 8, leUint64)
	case uint16(OpF32Load):
		return clLoad(next, ins.imm, 4, func(b []byte) uint64 { return uint64(leUint32(b)) })
	case uint16(OpI32Load8S):
		return clLoad(next, ins.imm, 1, func(b []byte) uint64 { return uint64(uint32(int32(int8(b[0])))) })
	case uint16(OpI32Load8U), uint16(OpI64Load8U):
		return clLoad(next, ins.imm, 1, func(b []byte) uint64 { return uint64(b[0]) })
	case uint16(OpI32Load16S):
		return clLoad(next, ins.imm, 2, func(b []byte) uint64 { return uint64(uint32(int32(int16(leUint16(b))))) })
	case uint16(OpI32Load16U), uint16(OpI64Load16U):
		return clLoad(next, ins.imm, 2, func(b []byte) uint64 { return uint64(leUint16(b)) })
	case uint16(OpI64Load8S):
		return clLoad(next, ins.imm, 1, func(b []byte) uint64 { return uint64(int64(int8(b[0]))) })
	case uint16(OpI64Load16S):
		return clLoad(next, ins.imm, 2, func(b []byte) uint64 { return uint64(int64(int16(leUint16(b)))) })
	case uint16(OpI64Load32S):
		return clLoad(next, ins.imm, 4, func(b []byte) uint64 { return uint64(int64(int32(leUint32(b)))) })
	case uint16(OpI64Load32U):
		return clLoad(next, ins.imm, 4, func(b []byte) uint64 { return uint64(leUint32(b)) })

	case uint16(OpI32Store):
		off := ins.imm
		return func(e *closEnv, sp int) (int, int) {
			v := uint32(e.stack[sp-1])
			a := uint64(uint32(e.stack[sp-2])) + off
			putLeUint32(e.mem.mustRange(a, 4), v)
			return next, sp - 2
		}
	case uint16(OpF32Store), uint16(OpI64Store32):
		return clStore(next, ins.imm, 4, func(b []byte, v uint64) { putLeUint32(b, uint32(v)) })
	case uint16(OpI64Store), uint16(OpF64Store):
		return clStore(next, ins.imm, 8, putLeUint64)
	case uint16(OpI32Store8), uint16(OpI64Store8):
		return clStore(next, ins.imm, 1, func(b []byte, v uint64) { b[0] = byte(v) })
	case uint16(OpI32Store16), uint16(OpI64Store16):
		return clStore(next, ins.imm, 2, func(b []byte, v uint64) { b[0], b[1] = byte(v), byte(v>>8) })

	case uint16(OpMemorySize):
		return func(e *closEnv, sp int) (int, int) {
			e.stack[sp] = uint64(e.mem.Size())
			return next, sp + 1
		}
	case uint16(OpMemoryGrow):
		return func(e *closEnv, sp int) (int, int) {
			prev, ok := e.mem.Grow(uint32(e.stack[sp-1]))
			if ok {
				e.stack[sp-1] = uint64(prev)
			} else {
				e.stack[sp-1] = uint64(uint32(0xFFFFFFFF))
			}
			return next, sp
		}

	// Constants ---------------------------------------------------------
	case uint16(OpI32Const), uint16(OpI64Const), uint16(OpF32Const), uint16(OpF64Const):
		imm := ins.imm
		return func(e *closEnv, sp int) (int, int) {
			e.stack[sp] = imm
			return next, sp + 1
		}

	// i32/i64 tests -----------------------------------------------------
	case uint16(OpI32Eqz):
		return clUn(next, func(v uint64) uint64 { return b2i(uint32(v) == 0) })
	case uint16(OpI64Eqz):
		return clUn(next, func(v uint64) uint64 { return b2i(v == 0) })

	// i64 comparisons ---------------------------------------------------
	case uint16(OpI64Eq):
		return clCmp(next, func(x, y uint64) bool { return x == y })
	case uint16(OpI64Ne):
		return clCmp(next, func(x, y uint64) bool { return x != y })
	case uint16(OpI64LtS):
		return clCmp(next, func(x, y uint64) bool { return int64(x) < int64(y) })
	case uint16(OpI64LtU):
		return clCmp(next, func(x, y uint64) bool { return x < y })
	case uint16(OpI64GtS):
		return clCmp(next, func(x, y uint64) bool { return int64(x) > int64(y) })
	case uint16(OpI64GtU):
		return clCmp(next, func(x, y uint64) bool { return x > y })
	case uint16(OpI64LeS):
		return clCmp(next, func(x, y uint64) bool { return int64(x) <= int64(y) })
	case uint16(OpI64LeU):
		return clCmp(next, func(x, y uint64) bool { return x <= y })
	case uint16(OpI64GeS):
		return clCmp(next, func(x, y uint64) bool { return int64(x) >= int64(y) })
	case uint16(OpI64GeU):
		return clCmp(next, func(x, y uint64) bool { return x >= y })

	// float comparisons -------------------------------------------------
	case uint16(OpF32Eq):
		return clCmp(next, func(x, y uint64) bool { return f32FromBits(x) == f32FromBits(y) })
	case uint16(OpF32Ne):
		return clCmp(next, func(x, y uint64) bool { return f32FromBits(x) != f32FromBits(y) })
	case uint16(OpF32Lt):
		return clCmp(next, func(x, y uint64) bool { return f32FromBits(x) < f32FromBits(y) })
	case uint16(OpF32Gt):
		return clCmp(next, func(x, y uint64) bool { return f32FromBits(x) > f32FromBits(y) })
	case uint16(OpF32Le):
		return clCmp(next, func(x, y uint64) bool { return f32FromBits(x) <= f32FromBits(y) })
	case uint16(OpF32Ge):
		return clCmp(next, func(x, y uint64) bool { return f32FromBits(x) >= f32FromBits(y) })
	case uint16(OpF64Eq):
		return clCmp(next, func(x, y uint64) bool { return f64FromBits(x) == f64FromBits(y) })
	case uint16(OpF64Ne):
		return clCmp(next, func(x, y uint64) bool { return f64FromBits(x) != f64FromBits(y) })
	case uint16(OpF64Lt):
		return clCmp(next, func(x, y uint64) bool { return f64FromBits(x) < f64FromBits(y) })
	case uint16(OpF64Gt):
		return clCmp(next, func(x, y uint64) bool { return f64FromBits(x) > f64FromBits(y) })
	case uint16(OpF64Le):
		return clCmp(next, func(x, y uint64) bool { return f64FromBits(x) <= f64FromBits(y) })
	case uint16(OpF64Ge):
		return clCmp(next, func(x, y uint64) bool { return f64FromBits(x) >= f64FromBits(y) })

	// i32 unary ---------------------------------------------------------
	case uint16(OpI32Clz):
		return clUn(next, func(v uint64) uint64 { return uint64(bits.LeadingZeros32(uint32(v))) })
	case uint16(OpI32Ctz):
		return clUn(next, func(v uint64) uint64 { return uint64(bits.TrailingZeros32(uint32(v))) })
	case uint16(OpI32Popcnt):
		return clUn(next, func(v uint64) uint64 { return uint64(bits.OnesCount32(uint32(v))) })

	// i64 arithmetic ----------------------------------------------------
	case uint16(OpI64Clz):
		return clUn(next, func(v uint64) uint64 { return uint64(bits.LeadingZeros64(v)) })
	case uint16(OpI64Ctz):
		return clUn(next, func(v uint64) uint64 { return uint64(bits.TrailingZeros64(v)) })
	case uint16(OpI64Popcnt):
		return clUn(next, func(v uint64) uint64 { return uint64(bits.OnesCount64(v)) })
	case uint16(OpI64Add):
		return clBin(next, func(x, y uint64) uint64 { return x + y })
	case uint16(OpI64Sub):
		return clBin(next, func(x, y uint64) uint64 { return x - y })
	case uint16(OpI64Mul):
		return clBin(next, func(x, y uint64) uint64 { return x * y })
	case uint16(OpI64DivS):
		return clBin(next, func(x, y uint64) uint64 {
			if y == 0 {
				panic(newTrap(TrapIntegerDivideByZero))
			}
			if int64(x) == math.MinInt64 && int64(y) == -1 {
				panic(newTrap(TrapIntegerOverflow))
			}
			return uint64(int64(x) / int64(y))
		})
	case uint16(OpI64DivU):
		return clBin(next, func(x, y uint64) uint64 {
			if y == 0 {
				panic(newTrap(TrapIntegerDivideByZero))
			}
			return x / y
		})
	case uint16(OpI64RemS):
		return clBin(next, func(x, y uint64) uint64 {
			if y == 0 {
				panic(newTrap(TrapIntegerDivideByZero))
			}
			if int64(x) == math.MinInt64 && int64(y) == -1 {
				return 0
			}
			return uint64(int64(x) % int64(y))
		})
	case uint16(OpI64RemU):
		return clBin(next, func(x, y uint64) uint64 {
			if y == 0 {
				panic(newTrap(TrapIntegerDivideByZero))
			}
			return x % y
		})
	case uint16(OpI64And):
		return clBin(next, func(x, y uint64) uint64 { return x & y })
	case uint16(OpI64Or):
		return clBin(next, func(x, y uint64) uint64 { return x | y })
	case uint16(OpI64Xor):
		return clBin(next, func(x, y uint64) uint64 { return x ^ y })
	case uint16(OpI64Shl):
		return clBin(next, func(x, y uint64) uint64 { return x << (y & 63) })
	case uint16(OpI64ShrS):
		return clBin(next, func(x, y uint64) uint64 { return uint64(int64(x) >> (y & 63)) })
	case uint16(OpI64ShrU):
		return clBin(next, func(x, y uint64) uint64 { return x >> (y & 63) })
	case uint16(OpI64Rotl):
		return clBin(next, func(x, y uint64) uint64 { return bits.RotateLeft64(x, int(y&63)) })
	case uint16(OpI64Rotr):
		return clBin(next, func(x, y uint64) uint64 { return bits.RotateLeft64(x, -int(y&63)) })

	// f32 arithmetic ----------------------------------------------------
	case uint16(OpF32Abs):
		return clUn(next, func(v uint64) uint64 { return uint64(uint32(v) &^ (1 << 31)) })
	case uint16(OpF32Neg):
		return clUn(next, func(v uint64) uint64 { return uint64(uint32(v) ^ (1 << 31)) })
	case uint16(OpF32Ceil):
		return clUn(next, func(v uint64) uint64 { return f32Bits(float32(math.Ceil(float64(f32FromBits(v))))) })
	case uint16(OpF32Floor):
		return clUn(next, func(v uint64) uint64 { return f32Bits(float32(math.Floor(float64(f32FromBits(v))))) })
	case uint16(OpF32Trunc):
		return clUn(next, func(v uint64) uint64 { return f32Bits(float32(math.Trunc(float64(f32FromBits(v))))) })
	case uint16(OpF32Nearest):
		return clUn(next, func(v uint64) uint64 { return f32Bits(float32(math.RoundToEven(float64(f32FromBits(v))))) })
	case uint16(OpF32Sqrt):
		return clUn(next, func(v uint64) uint64 { return f32Bits(float32(math.Sqrt(float64(f32FromBits(v))))) })
	case uint16(OpF32Add):
		return clBin(next, func(x, y uint64) uint64 { return f32Bits(f32FromBits(x) + f32FromBits(y)) })
	case uint16(OpF32Sub):
		return clBin(next, func(x, y uint64) uint64 { return f32Bits(f32FromBits(x) - f32FromBits(y)) })
	case uint16(OpF32Mul):
		return clBin(next, func(x, y uint64) uint64 { return f32Bits(f32FromBits(x) * f32FromBits(y)) })
	case uint16(OpF32Div):
		return clBin(next, func(x, y uint64) uint64 { return f32Bits(f32FromBits(x) / f32FromBits(y)) })
	case uint16(OpF32Min):
		return clBin(next, func(x, y uint64) uint64 {
			return f32Bits(float32(math.Min(float64(f32FromBits(x)), float64(f32FromBits(y)))))
		})
	case uint16(OpF32Max):
		return clBin(next, func(x, y uint64) uint64 {
			return f32Bits(float32(math.Max(float64(f32FromBits(x)), float64(f32FromBits(y)))))
		})
	case uint16(OpF32Copysign):
		return clBin(next, func(x, y uint64) uint64 {
			return f32Bits(float32(math.Copysign(float64(f32FromBits(x)), float64(f32FromBits(y)))))
		})

	// f64 arithmetic ----------------------------------------------------
	case uint16(OpF64Abs):
		return clUn(next, func(v uint64) uint64 { return v &^ (1 << 63) })
	case uint16(OpF64Neg):
		return clUn(next, func(v uint64) uint64 { return v ^ (1 << 63) })
	case uint16(OpF64Ceil):
		return clUn(next, func(v uint64) uint64 { return math.Float64bits(math.Ceil(f64FromBits(v))) })
	case uint16(OpF64Floor):
		return clUn(next, func(v uint64) uint64 { return math.Float64bits(math.Floor(f64FromBits(v))) })
	case uint16(OpF64Trunc):
		return clUn(next, func(v uint64) uint64 { return math.Float64bits(math.Trunc(f64FromBits(v))) })
	case uint16(OpF64Nearest):
		return clUn(next, func(v uint64) uint64 { return math.Float64bits(math.RoundToEven(f64FromBits(v))) })
	case uint16(OpF64Sqrt):
		return clUn(next, func(v uint64) uint64 { return math.Float64bits(math.Sqrt(f64FromBits(v))) })
	case uint16(OpF64Add):
		return clBin(next, func(x, y uint64) uint64 { return math.Float64bits(f64FromBits(x) + f64FromBits(y)) })
	case uint16(OpF64Sub):
		return clBin(next, func(x, y uint64) uint64 { return math.Float64bits(f64FromBits(x) - f64FromBits(y)) })
	case uint16(OpF64Mul):
		return clBin(next, func(x, y uint64) uint64 { return math.Float64bits(f64FromBits(x) * f64FromBits(y)) })
	case uint16(OpF64Div):
		return clBin(next, func(x, y uint64) uint64 { return math.Float64bits(f64FromBits(x) / f64FromBits(y)) })
	case uint16(OpF64Min):
		return clBin(next, func(x, y uint64) uint64 { return math.Float64bits(math.Min(f64FromBits(x), f64FromBits(y))) })
	case uint16(OpF64Max):
		return clBin(next, func(x, y uint64) uint64 { return math.Float64bits(math.Max(f64FromBits(x), f64FromBits(y))) })
	case uint16(OpF64Copysign):
		return clBin(next, func(x, y uint64) uint64 { return math.Float64bits(math.Copysign(f64FromBits(x), f64FromBits(y))) })

	// Conversions -------------------------------------------------------
	case uint16(OpI32WrapI64), uint16(OpI64ExtendI32U):
		return clUn(next, func(v uint64) uint64 { return uint64(uint32(v)) })
	case uint16(OpI32TruncF32S):
		return clUn(next, func(v uint64) uint64 { return uint64(uint32(truncToI32S(float64(f32FromBits(v))))) })
	case uint16(OpI32TruncF32U):
		return clUn(next, func(v uint64) uint64 { return uint64(truncToI32U(float64(f32FromBits(v)))) })
	case uint16(OpI32TruncF64S):
		return clUn(next, func(v uint64) uint64 { return uint64(uint32(truncToI32S(f64FromBits(v)))) })
	case uint16(OpI32TruncF64U):
		return clUn(next, func(v uint64) uint64 { return uint64(truncToI32U(f64FromBits(v))) })
	case uint16(OpI64ExtendI32S):
		return clUn(next, func(v uint64) uint64 { return uint64(int64(int32(v))) })
	case uint16(OpI64TruncF32S):
		return clUn(next, func(v uint64) uint64 { return uint64(truncToI64S(float64(f32FromBits(v)))) })
	case uint16(OpI64TruncF32U):
		return clUn(next, func(v uint64) uint64 { return truncToI64U(float64(f32FromBits(v))) })
	case uint16(OpI64TruncF64S):
		return clUn(next, func(v uint64) uint64 { return uint64(truncToI64S(f64FromBits(v))) })
	case uint16(OpI64TruncF64U):
		return clUn(next, func(v uint64) uint64 { return truncToI64U(f64FromBits(v)) })
	case uint16(OpF32ConvertI32S):
		return clUn(next, func(v uint64) uint64 { return f32Bits(float32(int32(v))) })
	case uint16(OpF32ConvertI32U):
		return clUn(next, func(v uint64) uint64 { return f32Bits(float32(uint32(v))) })
	case uint16(OpF32ConvertI64S):
		return clUn(next, func(v uint64) uint64 { return f32Bits(float32(int64(v))) })
	case uint16(OpF32ConvertI64U):
		return clUn(next, func(v uint64) uint64 { return f32Bits(float32(v)) })
	case uint16(OpF32DemoteF64):
		return clUn(next, func(v uint64) uint64 { return f32Bits(float32(f64FromBits(v))) })
	case uint16(OpF64ConvertI32S):
		return clUn(next, func(v uint64) uint64 { return math.Float64bits(float64(int32(v))) })
	case uint16(OpF64ConvertI32U):
		return clUn(next, func(v uint64) uint64 { return math.Float64bits(float64(uint32(v))) })
	case uint16(OpF64ConvertI64S):
		return clUn(next, func(v uint64) uint64 { return math.Float64bits(float64(int64(v))) })
	case uint16(OpF64ConvertI64U):
		return clUn(next, func(v uint64) uint64 { return math.Float64bits(float64(v)) })
	case uint16(OpF64PromoteF32):
		return clUn(next, func(v uint64) uint64 { return math.Float64bits(float64(f32FromBits(v))) })
	case uint16(OpI32ReinterpretF32), uint16(OpI64ReinterpretF64),
		uint16(OpF32ReinterpretI32), uint16(OpF64ReinterpretI64):
		return func(e *closEnv, sp int) (int, int) { return next, sp }

	// Sign extension ----------------------------------------------------
	case uint16(OpI32Extend8S):
		return clUn(next, func(v uint64) uint64 { return uint64(uint32(int32(int8(v)))) })
	case uint16(OpI32Extend16S):
		return clUn(next, func(v uint64) uint64 { return uint64(uint32(int32(int16(v)))) })
	case uint16(OpI64Extend8S):
		return clUn(next, func(v uint64) uint64 { return uint64(int64(int8(v))) })
	case uint16(OpI64Extend16S):
		return clUn(next, func(v uint64) uint64 { return uint64(int64(int16(v))) })
	case uint16(OpI64Extend32S):
		return clUn(next, func(v uint64) uint64 { return uint64(int64(int32(v))) })

	// Misc (0xFC) -------------------------------------------------------
	case miscBase + uint16(MiscI32TruncSatF32S):
		return clUn(next, func(v uint64) uint64 { return uint64(uint32(truncSatI32S(float64(f32FromBits(v))))) })
	case miscBase + uint16(MiscI32TruncSatF32U):
		return clUn(next, func(v uint64) uint64 { return uint64(truncSatI32U(float64(f32FromBits(v)))) })
	case miscBase + uint16(MiscI32TruncSatF64S):
		return clUn(next, func(v uint64) uint64 { return uint64(uint32(truncSatI32S(f64FromBits(v)))) })
	case miscBase + uint16(MiscI32TruncSatF64U):
		return clUn(next, func(v uint64) uint64 { return uint64(truncSatI32U(f64FromBits(v))) })
	case miscBase + uint16(MiscI64TruncSatF32S):
		return clUn(next, func(v uint64) uint64 { return uint64(truncSatI64S(float64(f32FromBits(v)))) })
	case miscBase + uint16(MiscI64TruncSatF32U):
		return clUn(next, func(v uint64) uint64 { return truncSatI64U(float64(f32FromBits(v))) })
	case miscBase + uint16(MiscI64TruncSatF64S):
		return clUn(next, func(v uint64) uint64 { return uint64(truncSatI64S(f64FromBits(v))) })
	case miscBase + uint16(MiscI64TruncSatF64U):
		return clUn(next, func(v uint64) uint64 { return truncSatI64U(f64FromBits(v)) })
	case miscBase + uint16(MiscMemoryCopy):
		return func(e *closEnv, sp int) (int, int) {
			n := uint64(uint32(e.stack[sp-1]))
			src := uint64(uint32(e.stack[sp-2]))
			dst := uint64(uint32(e.stack[sp-3]))
			s := e.mem.mustRange(src, n)
			d := e.mem.mustRange(dst, n)
			copy(d, s)
			return next, sp - 3
		}
	case miscBase + uint16(MiscMemoryFill):
		return func(e *closEnv, sp int) (int, int) {
			n := uint64(uint32(e.stack[sp-1]))
			val := byte(e.stack[sp-2])
			dst := uint64(uint32(e.stack[sp-3]))
			d := e.mem.mustRange(dst, n)
			for i := range d {
				d[i] = val
			}
			return next, sp - 3
		}

	// Fused superinstructions -------------------------------------------
	case fGetGet:
		a, b := int(ins.a), int(ins.b)
		return func(e *closEnv, sp int) (int, int) {
			e.stack[sp] = e.locals[a]
			e.stack[sp+1] = e.locals[b]
			return next, sp + 2
		}
	case fGetConst:
		a, imm := int(ins.a), ins.imm
		return func(e *closEnv, sp int) (int, int) {
			e.stack[sp] = e.locals[a]
			e.stack[sp+1] = imm
			return next, sp + 2
		}
	case fGetLoad32:
		a, off := int(ins.a), ins.imm
		return func(e *closEnv, sp int) (int, int) {
			addr := uint64(uint32(e.locals[a])) + off
			e.stack[sp] = uint64(leUint32(e.mem.mustRange(addr, 4)))
			return next, sp + 1
		}
	case fGetStore32:
		a, off := int(ins.a), ins.imm
		return func(e *closEnv, sp int) (int, int) {
			addr := uint64(uint32(e.stack[sp-1])) + off
			putLeUint32(e.mem.mustRange(addr, 4), uint32(e.locals[a]))
			return next, sp - 1
		}
	case fGetBin32:
		a, fn := int(ins.a), i32binFn(uint16(ins.imm))
		return func(e *closEnv, sp int) (int, int) {
			e.stack[sp-1] = uint64(fn(uint32(e.stack[sp-1]), uint32(e.locals[a])))
			return next, sp
		}
	case fGetGetBin32:
		a, b := int(ins.a), int(ins.b)
		if uint16(ins.imm) == uint16(OpI32Add) {
			return func(e *closEnv, sp int) (int, int) {
				e.stack[sp] = uint64(uint32(e.locals[a]) + uint32(e.locals[b]))
				return next, sp + 1
			}
		}
		fn := i32binFn(uint16(ins.imm))
		return func(e *closEnv, sp int) (int, int) {
			e.stack[sp] = uint64(fn(uint32(e.locals[a]), uint32(e.locals[b])))
			return next, sp + 1
		}
	case fGetGetCmp32:
		a, b, fn := int(ins.a), int(ins.b), i32cmpFn(uint16(ins.imm))
		return func(e *closEnv, sp int) (int, int) {
			e.stack[sp] = b2i(fn(uint32(e.locals[a]), uint32(e.locals[b])))
			return next, sp + 1
		}
	case fGetConstBin32:
		a, c, fn := int(ins.a), uint32(ins.imm), i32binFn(uint16(ins.b))
		return func(e *closEnv, sp int) (int, int) {
			e.stack[sp] = uint64(fn(uint32(e.locals[a]), c))
			return next, sp + 1
		}
	case fGetConstCmp32:
		a, c, fn := int(ins.a), uint32(ins.imm), i32cmpFn(uint16(ins.b))
		return func(e *closEnv, sp int) (int, int) {
			e.stack[sp] = b2i(fn(uint32(e.locals[a]), c))
			return next, sp + 1
		}
	case fGetGetStore32:
		a, b, off := int(ins.a), int(ins.b), ins.imm
		return func(e *closEnv, sp int) (int, int) {
			addr := uint64(uint32(e.locals[a])) + off
			putLeUint32(e.mem.mustRange(addr, 4), uint32(e.locals[b]))
			return next, sp
		}
	case fConstAddStore32:
		c, off := ins.a, ins.imm
		return func(e *closEnv, sp int) (int, int) {
			v := uint32(e.stack[sp-1]) + c
			addr := uint64(uint32(e.stack[sp-2])) + off
			putLeUint32(e.mem.mustRange(addr, 4), v)
			return next, sp - 2
		}
	case fGetGetCmpBr:
		a, b, fn := int(ins.a), int(ins.b), i32cmpFn(uint16(ins.imm))
		t := ins.targets[0]
		back := int(t.pc) <= pc
		return func(e *closEnv, sp int) (int, int) {
			if fn(uint32(e.locals[a]), uint32(e.locals[b])) {
				return takeBranchOp(e, sp, t, back)
			}
			return next, sp
		}
	case fGetConstCmpBr:
		a, c, fn := int(ins.a), uint32(ins.imm), i32cmpFn(uint16(ins.b))
		t := ins.targets[0]
		back := int(t.pc) <= pc
		return func(e *closEnv, sp int) (int, int) {
			if fn(uint32(e.locals[a]), c) {
				return takeBranchOp(e, sp, t, back)
			}
			return next, sp
		}
	case fGetConstAddSet:
		src, dst, c := int(ins.a), int(ins.b), uint32(ins.imm)
		return func(e *closEnv, sp int) (int, int) {
			e.locals[dst] = uint64(uint32(e.locals[src]) + c)
			return next, sp
		}
	case fLoadEqzBr:
		off := ins.imm
		t := ins.targets[0]
		back := int(t.pc) <= pc
		return func(e *closEnv, sp int) (int, int) {
			addr := uint64(uint32(e.stack[sp-1])) + off
			v := leUint32(e.mem.mustRange(addr, 4))
			sp--
			e.in.chargeFuel(2) // split charge: the load traps before eqz+br_if pay
			if v == 0 {
				return takeBranchOp(e, sp, t, back)
			}
			return next, sp
		}
	case fEqzBr:
		t := ins.targets[0]
		back := int(t.pc) <= pc
		return func(e *closEnv, sp int) (int, int) {
			c := uint32(e.stack[sp-1])
			sp--
			if c == 0 {
				return takeBranchOp(e, sp, t, back)
			}
			return next, sp
		}
	case fCmpBr:
		fn := i32cmpFn(uint16(ins.imm))
		t := ins.targets[0]
		back := int(t.pc) <= pc
		return func(e *closEnv, sp int) (int, int) {
			x, y := uint32(e.stack[sp-2]), uint32(e.stack[sp-1])
			sp -= 2
			if fn(x, y) {
				return takeBranchOp(e, sp, t, back)
			}
			return next, sp
		}
	}

	// i32 binops/compares not specialized above share the selector helpers.
	if isI32Bin(op) {
		fn := i32binFn(op)
		return func(e *closEnv, sp int) (int, int) {
			e.stack[sp-2] = uint64(fn(uint32(e.stack[sp-2]), uint32(e.stack[sp-1])))
			return next, sp - 1
		}
	}
	if isI32Cmp(op) {
		fn := i32cmpFn(op)
		return func(e *closEnv, sp int) (int, int) {
			e.stack[sp-2] = b2i(fn(uint32(e.stack[sp-2]), uint32(e.stack[sp-1])))
			return next, sp - 1
		}
	}

	unknown := op
	return func(e *closEnv, sp int) (int, int) {
		panic(&Trap{Code: TrapHostError, Wrapped: errUnknownInstr(unknown)})
	}
}

// f32Bits is math.Float32bits widened to the stack cell type.
func f32Bits(v float32) uint64 { return uint64(math.Float32bits(v)) }

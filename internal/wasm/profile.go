package wasm

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Profile aggregates per-function execution cost across any number of
// instances (and modules — scheduler plugins and RIC xApps can share one
// collector, disambiguated by instance tags). Two units are attributed on
// every call return:
//
//   - fuel: executed instruction count, read from the interpreter's
//     InstrCount delta, so attribution is deterministic and exact when fuel
//     metering is on (host functions burn no fuel and show wall time only);
//   - wall time: nanoseconds between call entry and return.
//
// Both come in "self" (this function minus its callees) and "total"
// (inclusive) flavors, maintained by a per-instance shadow stack hooked into
// the interpreter's call dispatch. The shadow stack also maintains the
// current call path, so Folded() can emit flamegraph.pl-compatible
// folded-stack lines.
//
// Profiling is opt-in per instance via SetProfile. When no profile is
// attached the interpreter's only extra cost is one nil check per call —
// measured at 0 allocs/op in TestProfilerDisabledZeroAlloc.
type Profile struct {
	mu    sync.Mutex
	funcs map[string]*FuncProfile
	paths map[string]*pathCell
}

// FuncProfile is the aggregated cost of one function.
type FuncProfile struct {
	Name      string `json:"name"`
	Calls     uint64 `json:"calls"`
	SelfFuel  uint64 `json:"self_fuel"`
	TotalFuel uint64 `json:"total_fuel"`
	SelfNs    int64  `json:"self_ns"`
	TotalNs   int64  `json:"total_ns"`
}

// pathCell is the aggregated self cost of one distinct call path.
type pathCell struct {
	selfFuel uint64
	selfNs   int64
	calls    uint64
}

// NewProfile returns an empty collector safe for concurrent use by many
// instances.
func NewProfile() *Profile {
	return &Profile{funcs: make(map[string]*FuncProfile), paths: make(map[string]*pathCell)}
}

// record folds one returned call into the aggregates.
func (p *Profile) record(path, name string, selfFuel, totalFuel uint64, selfNs, totalNs int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f := p.funcs[name]
	if f == nil {
		f = &FuncProfile{Name: name}
		p.funcs[name] = f
	}
	f.Calls++
	f.SelfFuel += selfFuel
	f.TotalFuel += totalFuel
	f.SelfNs += selfNs
	f.TotalNs += totalNs
	c := p.paths[path]
	if c == nil {
		c = &pathCell{}
		p.paths[path] = c
	}
	c.calls++
	c.selfFuel += selfFuel
	c.selfNs += selfNs
}

// Top returns the n hottest functions by self fuel (wall-time tiebreak),
// the profiler's headline "where did the budget go" view.
func (p *Profile) Top(n int) []FuncProfile {
	p.mu.Lock()
	out := make([]FuncProfile, 0, len(p.funcs))
	for _, f := range p.funcs {
		out = append(out, *f)
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].SelfFuel != out[j].SelfFuel {
			return out[i].SelfFuel > out[j].SelfFuel
		}
		if out[i].SelfNs != out[j].SelfNs {
			return out[i].SelfNs > out[j].SelfNs
		}
		return out[i].Name < out[j].Name
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// ProfileSnapshot is the JSON-marshalable state of a Profile.
type ProfileSnapshot struct {
	Functions []FuncProfile `json:"functions"`
	PathCount int           `json:"path_count"`
}

// Snapshot returns every function's aggregate, hottest first.
func (p *Profile) Snapshot() ProfileSnapshot {
	fs := p.Top(0)
	p.mu.Lock()
	n := len(p.paths)
	p.mu.Unlock()
	return ProfileSnapshot{Functions: fs, PathCount: n}
}

// ProfileJSON implements the obs mux's profile-source interface.
func (p *Profile) ProfileJSON() any { return p.Snapshot() }

// Folded renders the collected call paths as flamegraph.pl input: one
// "root;...;leaf weight" line per distinct path. The weight is self fuel;
// for paths that burned none (host functions, unmetered instances) it falls
// back to self microseconds so they still show up.
func (p *Profile) Folded() string {
	p.mu.Lock()
	lines := make([]string, 0, len(p.paths))
	for path, c := range p.paths {
		w := c.selfFuel
		if w == 0 {
			w = uint64(c.selfNs / 1e3)
		}
		lines = append(lines, fmt.Sprintf("%s %d", path, w))
	}
	p.mu.Unlock()
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// Reset clears all aggregates.
func (p *Profile) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.funcs = make(map[string]*FuncProfile)
	p.paths = make(map[string]*pathCell)
}

// ---------------------------------------------------------------------------
// Per-instance shadow stack.

// profFrame is one live call on the shadow stack.
type profFrame struct {
	name       string
	startNs    int64
	startInstr uint64
	childFuel  uint64
	childNs    int64
	pathLen    int
}

// instProf is an instance's profiling state: the shared collector, the
// shadow stack, the current folded path, and a lazily filled name cache so
// function-index resolution costs one slice load after the first call.
type instProf struct {
	p     *Profile
	tag   string
	names []string
	stack []profFrame
	path  []byte
}

// SetProfile attaches (or, with nil, detaches) a profile collector. tag, if
// non-empty, prefixes every function name ("sla:on_indication"), letting one
// collector tell scheduler plugins and xApps apart. Instances are
// single-threaded, so this must not race with a running call.
func (in *Instance) SetProfile(p *Profile, tag string) {
	if p == nil {
		in.prof = nil
		return
	}
	in.prof = &instProf{p: p, tag: tag}
}

// funcName resolves and caches the display name for a function index.
func (ip *instProf) funcName(in *Instance, funcIdx uint32) string {
	if int(funcIdx) < len(ip.names) && ip.names[funcIdx] != "" {
		return ip.names[funcIdx]
	}
	name := in.cm.FuncName(funcIdx)
	if ip.tag != "" {
		name = ip.tag + ":" + name
	}
	for int(funcIdx) >= len(ip.names) {
		ip.names = append(ip.names, "")
	}
	ip.names[funcIdx] = name
	return name
}

// FuncName returns a human-readable name for a function-space index: the
// import's "module.field" for imported functions, the export name when the
// function is exported, or "func[N]".
func (cm *CompiledModule) FuncName(funcIdx uint32) string {
	m := cm.m
	if int(funcIdx) < m.numImportedFuncs {
		n := 0
		for _, im := range m.Imports {
			if im.Kind != ExternFunc {
				continue
			}
			if n == int(funcIdx) {
				return im.Module + "." + im.Name
			}
			n++
		}
	}
	for _, e := range m.Exports {
		if e.Kind == ExternFunc && e.Index == funcIdx {
			return e.Name
		}
	}
	return fmt.Sprintf("func[%d]", funcIdx)
}

// invokeProfiled wraps dispatch with shadow-stack bookkeeping. The pop runs
// in a defer so traps unwinding through panic still record every live frame
// (with the cost accumulated up to the fault).
func (in *Instance) invokeProfiled(funcIdx uint32, args []uint64) []uint64 {
	ip := in.prof
	name := ip.funcName(in, funcIdx)
	if len(ip.path) > 0 {
		ip.path = append(ip.path, ';')
	}
	ip.path = append(ip.path, name...)
	ip.stack = append(ip.stack, profFrame{
		name:       name,
		startNs:    time.Now().UnixNano(),
		startInstr: in.InstrCount,
		pathLen:    len(ip.path),
	})
	defer func() {
		top := len(ip.stack) - 1
		fr := ip.stack[top]
		ip.stack = ip.stack[:top]
		totalNs := time.Now().UnixNano() - fr.startNs
		totalFuel := in.InstrCount - fr.startInstr
		ip.p.record(string(ip.path[:fr.pathLen]), fr.name,
			totalFuel-fr.childFuel, totalFuel, totalNs-fr.childNs, totalNs)
		if top > 0 {
			ip.stack[top-1].childFuel += totalFuel
			ip.stack[top-1].childNs += totalNs
		}
		// Truncate back to the parent's path (drop ";name" or "name").
		cut := fr.pathLen - len(fr.name)
		if cut > 0 {
			cut-- // the joining ';'
		}
		ip.path = ip.path[:cut]
	}()
	return in.dispatch(funcIdx, args)
}
